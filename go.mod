module ugs

go 1.24
