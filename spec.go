package ugs

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is a serializable sparsifier configuration: the method name plus the
// subset of functional options that affect the output. It exists so callers
// that receive configurations over a wire — the ugs-serve HTTP service, job
// queues, config files — can validate them, build the Sparsifier they
// describe, and key caches on them.
//
// The zero value of every field means "method default", mirroring the
// functional options: two Specs that resolve to the same effective
// configuration produce the same Key even when one spells a default out and
// the other omits it. Entropy is a pointer because an explicit 0 (a true
// h = 0, the HZero sentinel) differs from "use the paper's default 0.05".
type Spec struct {
	// Method is the registry name ("gdb", "emd", "lp", "ni", "ss", or a
	// custom registration). Required.
	Method string `json:"method"`
	// Discrepancy is "absolute" or "relative"; empty selects absolute.
	Discrepancy string `json:"discrepancy,omitempty"`
	// Backbone is "spanning" or "random"; empty selects spanning.
	Backbone string `json:"backbone,omitempty"`
	// CutOrder is the cut order k (GDB only); 0 selects k = 1 and -1
	// requests the k = n rule (KAll).
	CutOrder int `json:"cut_order,omitempty"`
	// Entropy is the entropy parameter h ∈ [0, 1]; nil selects the default
	// 0.05, an explicit 0 a true zero.
	Entropy *float64 `json:"entropy,omitempty"`
	// Tau is the convergence threshold; 0 selects the default 1e-9·|V|.
	Tau float64 `json:"tau,omitempty"`
	// MaxIters bounds the outer iteration loop; 0 selects the method
	// default.
	MaxIters int `json:"max_iters,omitempty"`
	// Seed drives all randomness; runs are deterministic given
	// (graph, alpha, Spec).
	Seed int64 `json:"seed,omitempty"`
	// DenseSweeps disables the GDB/EMD sweep worklist (ablation only; the
	// output is identical either way, so Key ignores it).
	DenseSweeps bool `json:"dense_sweeps,omitempty"`
}

// normalized returns s with empty optional fields replaced by their canonical
// defaults, so equivalent Specs compare and hash identically.
func (s Spec) normalized() Spec {
	if s.Discrepancy == "" {
		s.Discrepancy = Absolute.String()
	}
	if s.Backbone == "" {
		s.Backbone = BackboneSpanning.String()
	}
	if s.CutOrder == 0 {
		s.CutOrder = 1
	}
	return s
}

// Key returns a canonical string identifying the sparsification output the
// Spec describes on a given input: equal Keys guarantee bit-identical output
// graphs on the same (graph, alpha). It is the cache key used by ugs-serve,
// prefixed there with the graph and alpha. Key is exact — every
// output-affecting field appears in fixed order with defaults spelled out —
// and excludes DenseSweeps, which by contract does not change the output.
func (s Spec) Key() string {
	n := s.normalized()
	var b strings.Builder
	b.WriteString(n.Method)
	b.WriteString("|d=")
	b.WriteString(n.Discrepancy)
	b.WriteString("|b=")
	b.WriteString(n.Backbone)
	b.WriteString("|k=")
	b.WriteString(strconv.Itoa(n.CutOrder))
	b.WriteString("|h=")
	if n.Entropy == nil {
		b.WriteString("default")
	} else {
		b.WriteString(strconv.FormatFloat(*n.Entropy, 'g', -1, 64))
	}
	b.WriteString("|tau=")
	b.WriteString(strconv.FormatFloat(n.Tau, 'g', -1, 64))
	b.WriteString("|it=")
	b.WriteString(strconv.Itoa(n.MaxIters))
	b.WriteString("|seed=")
	b.WriteString(strconv.FormatInt(n.Seed, 10))
	return b.String()
}

// Options translates the Spec into the functional options it stands for,
// validating each field. Fields at their zero value contribute no option, so
// method defaults apply exactly as with a hand-written option list.
func (s Spec) Options() ([]Option, error) {
	if s.Method == "" {
		return nil, fmt.Errorf("ugs: Spec without a method")
	}
	opts := []Option{WithSeed(s.Seed)}
	if s.Discrepancy != "" {
		d, err := ParseDiscrepancy(s.Discrepancy)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithDiscrepancy(d))
	}
	if s.Backbone != "" {
		b, err := ParseBackbone(s.Backbone)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithBackbone(b))
	}
	if s.CutOrder != 0 {
		opts = append(opts, WithCutOrder(s.CutOrder))
	}
	if s.Entropy != nil {
		opts = append(opts, WithEntropy(*s.Entropy))
	}
	if s.Tau != 0 {
		opts = append(opts, WithTau(s.Tau))
	}
	if s.MaxIters != 0 {
		opts = append(opts, WithMaxIters(s.MaxIters))
	}
	if s.DenseSweeps {
		opts = append(opts, WithDenseSweeps())
	}
	// Functional options validate when applied; apply them to a throwaway
	// config now so a bad Spec fails here rather than at Lookup time.
	if _, err := newConfig(opts); err != nil {
		return nil, err
	}
	return opts, nil
}

// Sparsifier resolves the Spec to a configured Sparsifier through the
// registry, appending any extra options (typically WithProgress, which is
// not part of a Spec because it does not affect the output).
func (s Spec) Sparsifier(extra ...Option) (Sparsifier, error) {
	opts, err := s.Options()
	if err != nil {
		return nil, err
	}
	return Lookup(s.Method, append(opts, extra...)...)
}
