package ugs_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (each regenerates the experiment at CI scale —
// run `go run ./cmd/ugs-exp -full <id>` for paper-scale numbers), plus the
// ablation benchmarks called out in DESIGN.md and micro-benchmarks of the
// hot paths. Sparsifiers are resolved through the registry API
// (ugs.Lookup + functional options) — the same path production callers use.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"ugs"
	"ugs/internal/core"
	"ugs/internal/exp"
	"ugs/internal/mc"
	"ugs/internal/queries"
	"ugs/internal/ugraph"
)

// benchExperiment regenerates one table/figure per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	ctx := exp.NewContext(exp.Config{Seed: 42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkTable2DegreeDiscrepancy(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig4CutDiscrepancy(b *testing.B)      { benchExperiment(b, "fig4a") }
func BenchmarkFig4bTime(b *testing.B)               { benchExperiment(b, "fig4b") }
func BenchmarkFig5EntropyParam(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6Benchmarks(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7Density(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8Entropy(b *testing.B)             { benchExperiment(b, "fig8") }
func BenchmarkFig9Time(b *testing.B)                { benchExperiment(b, "fig9") }
func BenchmarkFig10Queries(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11QueriesDensity(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12Variance(b *testing.B)           { benchExperiment(b, "fig12") }

// benchGraph is the shared fixture for the method and ablation benchmarks.
func benchGraph(b *testing.B) *ugs.Graph {
	b.Helper()
	return ugs.FlickrLike(300, 42)
}

// benchSparsify resolves a registry method and runs one sparsification,
// failing the benchmark on any error.
func benchSparsify(b *testing.B, g *ugs.Graph, alpha float64, name string, opts ...ugs.Option) *ugs.Graph {
	b.Helper()
	sp, err := ugs.Lookup(name, opts...)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sp.Sparsify(context.Background(), g, alpha)
	if err != nil {
		b.Fatal(err)
	}
	return res.Graph
}

// ---- Ablation benchmarks (design choices called out in DESIGN.md) ----

// BenchmarkAblationBackbone compares the two backbone constructions feeding
// the same GDB optimizer at small α, where the paper observes the spanning
// backbone's connectivity guarantee trading against degree accuracy.
func BenchmarkAblationBackbone(b *testing.B) {
	g := benchGraph(b)
	for _, bb := range []struct {
		name string
		kind ugs.Backbone
	}{{"spanning", ugs.BackboneSpanning}, {"random", ugs.BackboneRandom}} {
		b.Run(bb.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSparsify(b, g, 0.08, "gdb", ugs.WithBackbone(bb.kind), ugs.WithSeed(int64(i)))
			}
		})
	}
}

// BenchmarkAblationHeap compares EMD's vertex-heap E-phase against the
// naive global-scan formulation (Section 4.3's cost analysis).
func BenchmarkAblationHeap(b *testing.B) {
	g := benchGraph(b)
	backbone, err := core.SpanningBackbone(g, 0.2, core.BGIOptions{}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name  string
		naive bool
	}{{"vertex-heap", false}, {"naive-scan", true}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := core.EMD(context.Background(), g, backbone, core.EMDOptions{
					H: 0.05, MaxRounds: 2, NaiveEPhase: v.naive,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEntropyParam sweeps h, isolating the cost/benefit of the
// entropy cap (Figure 5's design knob; runtime is roughly h-independent,
// accuracy is not). WithEntropy(0) requests a true h = 0.
func BenchmarkAblationEntropyParam(b *testing.B) {
	g := benchGraph(b)
	for _, h := range []struct {
		name string
		val  float64
	}{{"h0", 0}, {"h05", 0.05}, {"h1", 1}} {
		b.Run(h.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSparsify(b, g, 0.16, "gdb", ugs.WithEntropy(h.val), ugs.WithSeed(1))
			}
		})
	}
}

// ---- Micro-benchmarks of the hot paths ----

func BenchmarkWorldSampling(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(1))
	w := ugraph.NewWorld(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SampleWorldInto(rng, w)
	}
}

// BenchmarkWorldSamplingSeeded measures the engine's per-sample primitive:
// reseed and redraw a bitset world from a deterministic stream.
func BenchmarkWorldSamplingSeeded(b *testing.B) {
	g := benchGraph(b)
	w := ugraph.NewWorld(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SampleWorldSeeded(int64(i), w)
	}
}

// BenchmarkWorldBatchSampling measures the batch engine's fill primitive
// at each lane width: fill a lane-transposed WorldBatch from VecLanes
// deterministic streams (one tile transpose per 64 edges per lane word on
// top of the raw draws).
func BenchmarkWorldBatchSampling(b *testing.B) {
	g := benchGraph(b)
	run := func(b *testing.B, fill func(seeds []int64), lanes int) {
		seeds := make([]int64, lanes)
		var next int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for l := range seeds {
				seeds[l] = next
				next++
			}
			fill(seeds)
		}
	}
	b.Run("64", func(b *testing.B) {
		wb := ugs.NewWorldBatch[ugs.Vec64](g)
		run(b, func(s []int64) { ugs.SampleWorldBatch(g, s, wb) }, 64)
	})
	b.Run("128", func(b *testing.B) {
		wb := ugs.NewWorldBatch[ugs.Vec128](g)
		run(b, func(s []int64) { ugs.SampleWorldBatch(g, s, wb) }, 128)
	})
	b.Run("256", func(b *testing.B) {
		wb := ugs.NewWorldBatch[ugs.Vec256](g)
		run(b, func(s []int64) { ugs.SampleWorldBatch(g, s, wb) }, 256)
	})
}

func BenchmarkSparsifyGDB(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		benchSparsify(b, g, 0.16, "gdb", ugs.WithSeed(1))
	}
}

// BenchmarkAblationSweeps compares the epoch-stamped worklist against dense
// sweeps on the same GDB run (the PR 3 construction-path ablation; outputs
// are identical, only the amount of recomputation differs).
func BenchmarkAblationSweeps(b *testing.B) {
	g := benchGraph(b)
	for _, v := range []struct {
		name string
		opts []ugs.Option
	}{
		{"worklist", []ugs.Option{ugs.WithSeed(1)}},
		{"dense", []ugs.Option{ugs.WithSeed(1), ugs.WithDenseSweeps()}},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSparsify(b, g, 0.16, "gdb", v.opts...)
			}
		})
	}
}

// scaledGraphs caches the large generated fixtures for the per-sweep and
// per-round microbenchmarks; generation is O(N²) and shared across
// sub-benchmarks.
var scaledGraphs = map[int]*ugs.Graph{}

// benchScaledGraph returns a Chung–Lu social graph with approximately the
// requested number of edges (average degree 20, Flickr-like probabilities).
func benchScaledGraph(b *testing.B, edges int) *ugs.Graph {
	b.Helper()
	g, ok := scaledGraphs[edges]
	if !ok {
		var err error
		g, err = ugs.GenerateSocial(ugs.SocialConfig{N: edges / 10, AvgDegree: 20, MeanProb: 0.09, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		scaledGraphs[edges] = g
	}
	return g
}

// benchScaledBackbone builds the α = 0.3 spanning backbone once per fixture.
func benchScaledBackbone(b *testing.B, g *ugs.Graph) []int {
	b.Helper()
	backbone, err := core.SpanningBackbone(g, 0.3, core.BGIOptions{}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return backbone
}

// BenchmarkGDBSweep measures the GDB sweep engine (tracker construction +
// sweeps to convergence + finalize) on a prebuilt backbone at |E| ≈ 10k and
// 100k, isolating the Algorithm 2 hot path from backbone construction.
func BenchmarkGDBSweep(b *testing.B) {
	for _, edges := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("E%dk", edges/1000), func(b *testing.B) {
			g := benchScaledGraph(b, edges)
			backbone := benchScaledBackbone(b, g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.GDB(context.Background(), g, backbone, core.GDBOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEMDRound measures two full E+M rounds of Algorithm 3 (enough to
// exercise the persistent vertex heap across rounds) at |E| ≈ 10k and 100k.
func BenchmarkEMDRound(b *testing.B) {
	for _, edges := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("E%dk", edges/1000), func(b *testing.B) {
			g := benchScaledGraph(b, edges)
			backbone := benchScaledBackbone(b, g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.EMD(context.Background(), g, backbone, core.EMDOptions{MaxRounds: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSparsifyEMD(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		benchSparsify(b, g, 0.16, "emd", ugs.WithSeed(1))
	}
}

func BenchmarkSparsifyNI(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		benchSparsify(b, g, 0.16, "ni", ugs.WithSeed(1))
	}
}

func BenchmarkSparsifySS(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		benchSparsify(b, g, 0.16, "ss", ugs.WithSeed(1))
	}
}

func BenchmarkPageRankPerWorld(b *testing.B) {
	g := benchGraph(b)
	w := g.SampleWorld(rand.New(rand.NewSource(1)))
	ws := queries.NewWorkspace(g)
	out := make([]float64, g.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.PageRank(w, 0.85, 30, out)
	}
}

func BenchmarkClusteringPerWorld(b *testing.B) {
	g := benchGraph(b)
	w := g.SampleWorld(rand.New(rand.NewSource(1)))
	ws := queries.NewWorkspace(g)
	out := make([]float64, g.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.ClusteringCoefficients(w, out)
	}
}

func BenchmarkReliabilityMC(b *testing.B) {
	g := benchGraph(b)
	pairs := ugs.RandomPairs(g.NumVertices(), 50, rand.New(rand.NewSource(1)))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ugs.Reliability(ctx, g, pairs, mc.Options{Samples: 50, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationQueryEngine compares the bit-parallel 64-world batch
// engine against the scalar one-world-per-traversal path on the RL, SP and
// connectivity estimators (the PR 4 query-path ablation; estimates are
// bit-identical, only traversal count differs).
func BenchmarkAblationQueryEngine(b *testing.B) {
	g := benchGraph(b)
	pairs := ugs.RandomPairs(g.NumVertices(), 50, rand.New(rand.NewSource(1)))
	ctx := context.Background()
	for _, v := range []struct {
		name   string
		scalar bool
	}{{"batch", false}, {"scalar", true}} {
		opts := mc.Options{Samples: 50, Seed: 1, Scalar: v.scalar}
		b.Run("reliability/"+v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ugs.Reliability(ctx, g, pairs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("shortestdist/"+v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ugs.ShortestDistance(ctx, g, pairs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("connected/"+v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ugs.ConnectedProbability(ctx, g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Wide-lane widths on a budget large enough to fill 256 lanes, plus the
	// sequential-stopping schedule against the fixed default.
	for _, lanes := range []int{64, 128, 256} {
		opts := mc.Options{Samples: 512, Seed: 1, Lanes: lanes}
		b.Run(fmt.Sprintf("reliability/512x%d", lanes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ugs.Reliability(ctx, g, pairs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("reliability/adaptive", func(b *testing.B) {
		opts := mc.Options{Seed: 1, Target: mc.WithConfidence(0.1, 0.05)}
		for i := 0; i < b.N; i++ {
			if _, _, err := ugs.ReliabilityRun(ctx, g, pairs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationStratified compares plain and stratified Monte-Carlo at
// an equal sample budget (the paper's [23]-style variance-reduction
// extension; same wall-clock order, lower variance).
func BenchmarkAblationStratified(b *testing.B) {
	g := benchGraph(b)
	ctx := context.Background()
	pred := func(w *ugs.World) bool { return w.Reachable(0, g.NumVertices()-1) }
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ugs.ConnectedProbability(ctx, g, mc.Options{Samples: 200, Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stratified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ugs.StratifiedProbabilityOf(ctx, g, ugs.StratifiedOptions{Samples: 200, Seed: int64(i)}, pred); err != nil {
				b.Fatal(err)
			}
		}
	})
}
