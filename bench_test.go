package ugs_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (each regenerates the experiment at CI scale —
// run `go run ./cmd/ugs-exp -full <id>` for paper-scale numbers), plus the
// ablation benchmarks called out in DESIGN.md and micro-benchmarks of the
// hot paths.

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"ugs"
	"ugs/internal/core"
	"ugs/internal/exp"
	"ugs/internal/mc"
	"ugs/internal/queries"
	"ugs/internal/ugraph"
)

// benchExperiment regenerates one table/figure per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	ctx := exp.NewContext(exp.Config{Seed: 42})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkTable2DegreeDiscrepancy(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig4CutDiscrepancy(b *testing.B)      { benchExperiment(b, "fig4a") }
func BenchmarkFig4bTime(b *testing.B)               { benchExperiment(b, "fig4b") }
func BenchmarkFig5EntropyParam(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6Benchmarks(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7Density(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8Entropy(b *testing.B)             { benchExperiment(b, "fig8") }
func BenchmarkFig9Time(b *testing.B)                { benchExperiment(b, "fig9") }
func BenchmarkFig10Queries(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11QueriesDensity(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12Variance(b *testing.B)           { benchExperiment(b, "fig12") }

// benchGraph is the shared fixture for the method and ablation benchmarks.
func benchGraph(b *testing.B) *ugs.Graph {
	b.Helper()
	return ugs.FlickrLike(300, 42)
}

// ---- Ablation benchmarks (design choices called out in DESIGN.md) ----

// BenchmarkAblationBackbone compares the two backbone constructions feeding
// the same GDB optimizer at small α, where the paper observes the spanning
// backbone's connectivity guarantee trading against degree accuracy.
func BenchmarkAblationBackbone(b *testing.B) {
	g := benchGraph(b)
	for _, bb := range []struct {
		name string
		kind ugs.Backbone
	}{{"spanning", ugs.BackboneSpanning}, {"random", ugs.BackboneRandom}} {
		b.Run(bb.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := ugs.Sparsify(g, 0.08, ugs.Options{
					Method:   ugs.MethodGDB,
					Backbone: bb.kind,
					Seed:     int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHeap compares EMD's vertex-heap E-phase against the
// naive global-scan formulation (Section 4.3's cost analysis).
func BenchmarkAblationHeap(b *testing.B) {
	g := benchGraph(b)
	backbone, err := core.SpanningBackbone(g, 0.2, core.BGIOptions{}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name  string
		naive bool
	}{{"vertex-heap", false}, {"naive-scan", true}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := core.EMD(context.Background(), g, backbone, core.EMDOptions{
					H: 0.05, MaxRounds: 2, NaiveEPhase: v.naive,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEntropyParam sweeps h, isolating the cost/benefit of the
// entropy cap (Figure 5's design knob; runtime is roughly h-independent,
// accuracy is not).
func BenchmarkAblationEntropyParam(b *testing.B) {
	g := benchGraph(b)
	for _, h := range []struct {
		name string
		val  float64
	}{{"h0", ugs.HZero}, {"h05", 0.05}, {"h1", 1}} {
		b.Run(h.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := ugs.Sparsify(g, 0.16, ugs.Options{Method: ugs.MethodGDB, H: h.val, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Micro-benchmarks of the hot paths ----

func BenchmarkWorldSampling(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(1))
	w := ugraph.NewWorld(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SampleWorldInto(rng, w)
	}
}

func BenchmarkSparsifyGDB(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := ugs.Sparsify(g, 0.16, ugs.Options{Method: ugs.MethodGDB, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparsifyEMD(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := ugs.Sparsify(g, 0.16, ugs.Options{Method: ugs.MethodEMD, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparsifyNI(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		if _, err := ugs.NISparsify(g, 0.16, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparsifySS(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		if _, err := ugs.SSSparsify(g, 0.16, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRankPerWorld(b *testing.B) {
	g := benchGraph(b)
	w := g.SampleWorld(rand.New(rand.NewSource(1)))
	out := make([]float64, g.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		queries.WorldPageRank(w, 0.85, 30, out)
	}
}

func BenchmarkClusteringPerWorld(b *testing.B) {
	g := benchGraph(b)
	w := g.SampleWorld(rand.New(rand.NewSource(1)))
	out := make([]float64, g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		queries.WorldClusteringCoefficients(w, out)
	}
}

func BenchmarkReliabilityMC(b *testing.B) {
	g := benchGraph(b)
	pairs := ugs.RandomPairs(g.NumVertices(), 50, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ugs.Reliability(g, pairs, mc.Options{Samples: 50, Seed: int64(i)})
	}
}

// BenchmarkAblationStratified compares plain and stratified Monte-Carlo at
// an equal sample budget (the paper's [23]-style variance-reduction
// extension; same wall-clock order, lower variance).
func BenchmarkAblationStratified(b *testing.B) {
	g := benchGraph(b)
	pred := func(w *ugs.World) bool { return w.Reachable(0, g.NumVertices()-1) }
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ugs.ConnectedProbability(g, mc.Options{Samples: 200, Seed: int64(i)})
		}
	})
	b.Run("stratified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ugs.StratifiedProbabilityOf(g, ugs.StratifiedOptions{Samples: 200, Seed: int64(i)}, pred)
		}
	})
}
