package queries

import (
	"errors"
	"math"
	"testing"

	"ugs/internal/mc"
	"ugs/internal/ugraph"
)

// singleEdge is the smallest analytically-known RL instance: one edge of
// probability p, so RL(0,1) = p exactly.
func singleEdge(p float64) *ugraph.Graph {
	return ugraph.MustNew(2, []ugraph.Edge{{U: 0, V: 1, P: p}})
}

// diamond is the two-path diamond: 0−1−3 and 0−2−3, every edge with
// probability p. RL(0,3) = 1 − (1 − p²)², and the conditional expected
// distance is computable from the path probabilities.
func diamond(p float64) *ugraph.Graph {
	return ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: p},
		{U: 1, V: 3, P: p},
		{U: 0, V: 2, P: p},
		{U: 2, V: 3, P: p},
	})
}

// TestAdaptiveReliabilityHitsTargetSingleEdge is the statistical contract
// of sequential stopping on the single-edge graph: the run must converge,
// and the estimate must be within eps of the true reliability p (the CI
// construction guarantees this with probability ≥ 1−delta; the fixed seed
// makes the check deterministic).
func TestAdaptiveReliabilityHitsTargetSingleEdge(t *testing.T) {
	pairs := []Pair{{S: 0, T: 1}}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		g := singleEdge(p)
		opts := mc.Options{Seed: 3, Target: mc.WithConfidence(0.02, 0.05)}
		rl, info, err := ReliabilityRun(bg(), g, pairs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Converged {
			t.Fatalf("p=%v: did not converge within %d samples", p, info.Samples)
		}
		if math.Abs(rl[0]-p) > 0.02 {
			t.Errorf("p=%v: adaptive RL = %v (%d samples), want within eps=0.02", p, rl[0], info.Samples)
		}
		// Extreme probabilities have small Bernoulli variance, so the CI
		// tightens with far fewer samples than p = 0.5 needs — the whole
		// point of adaptive stopping.
		if p != 0.5 && info.Samples >= 1<<17 {
			t.Errorf("p=%v: burned the full MaxSamples budget", p)
		}
	}
}

// TestAdaptiveReliabilityDiamond checks sequential stopping against the
// closed-form diamond reliability RL(0,3) = 1 − (1 − p²)².
func TestAdaptiveReliabilityDiamond(t *testing.T) {
	const p = 0.7
	want := 1 - math.Pow(1-p*p, 2)
	g := diamond(p)
	rl, info, err := ReliabilityRun(bg(), g, []Pair{{S: 0, T: 3}},
		mc.Options{Seed: 9, Target: mc.WithConfidence(0.03, 0.05)})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Converged {
		t.Fatalf("did not converge within %d samples", info.Samples)
	}
	if math.Abs(rl[0]-want) > 0.03 {
		t.Errorf("adaptive RL = %v (%d samples), want %.4f ± 0.03", rl[0], info.Samples, want)
	}
	if exact := mc.ExactProbabilityOf(g, func(w *ugraph.World) bool {
		return (w.Present(0) && w.Present(1)) || (w.Present(2) && w.Present(3))
	}); math.Abs(exact-want) > 1e-12 {
		t.Fatalf("closed form %v disagrees with exhaustive enumeration %v", want, exact)
	}
}

// TestAdaptiveStoppingSavesSamples pins the acceptance property: on an
// easy target (every pair's reliability far from 1/2, or a loose eps) the
// adaptive run stops below the fixed 500-sample default while still
// landing within eps.
func TestAdaptiveStoppingSavesSamples(t *testing.T) {
	g := singleEdge(0.95)
	rl, info, err := ReliabilityRun(bg(), g, []Pair{{S: 0, T: 1}},
		mc.Options{Seed: 7, Target: mc.WithConfidence(0.05, 0.05)})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Converged || info.Samples >= 500 {
		t.Errorf("adaptive run took %d samples (converged=%v), want convergence below the fixed default 500",
			info.Samples, info.Converged)
	}
	if math.Abs(rl[0]-0.95) > 0.05 {
		t.Errorf("estimate %v outside eps of 0.95", rl[0])
	}
}

// TestAdaptiveDeterministicAcrossWorkersAndWidths is the reproducibility
// contract for sequential stopping: the stopped sample count, round count
// and every estimate must be identical for any Workers value and for every
// explicit lane width, because stopping decisions happen only at round
// boundaries over deterministic accumulators.
func TestAdaptiveDeterministicAcrossWorkersAndWidths(t *testing.T) {
	g := diamond(0.6)
	pairs := []Pair{{S: 0, T: 3}, {S: 1, T: 2}}
	type outcome struct {
		rl   [2]float64
		info mc.RunInfo
	}
	run := func(workers, lanes int) outcome {
		opts := mc.Options{Seed: 13, Workers: workers, Lanes: lanes,
			Target: mc.WithConfidence(0.04, 0.05)}
		rl, info, err := ReliabilityRun(bg(), g, pairs, opts)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{rl: [2]float64{rl[0], rl[1]}, info: info}
	}
	ref := run(1, 64)
	for _, workers := range []int{1, 4, 8} {
		for _, lanes := range []int{0, 64, 128, 256} {
			if got := run(workers, lanes); got != ref {
				t.Fatalf("workers=%d lanes=%d: %+v != reference %+v", workers, lanes, got, ref)
			}
		}
	}
}

// TestAdaptiveConnectedProbability runs sequential stopping on the
// connectivity estimator against exhaustive enumeration.
func TestAdaptiveConnectedProbability(t *testing.T) {
	g := diamond(0.8)
	exact := mc.ExactProbabilityOf(g, func(w *ugraph.World) bool { return w.IsConnected() })
	got, info, err := ConnectedProbabilityRun(bg(), g,
		mc.Options{Seed: 17, Target: mc.WithConfidence(0.03, 0.05)})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Converged {
		t.Fatalf("did not converge within %d samples", info.Samples)
	}
	if math.Abs(got-exact) > 0.03 {
		t.Errorf("adaptive Pr[connected] = %v (%d samples), want %v ± 0.03", got, info.Samples, exact)
	}
}

// TestAdaptiveMaxSamplesCap: an unreachable eps must stop at MaxSamples
// and report Converged false rather than loop.
func TestAdaptiveMaxSamplesCap(t *testing.T) {
	g := singleEdge(0.5)
	tgt := &mc.Target{Eps: 0.001, Delta: 0.05, MinSamples: 64, MaxSamples: 512}
	_, info, err := ReliabilityRun(bg(), g, []Pair{{S: 0, T: 1}},
		mc.Options{Seed: 23, Target: tgt})
	if err != nil {
		t.Fatal(err)
	}
	if info.Converged || info.Samples != 512 {
		t.Errorf("info = %+v, want unconverged at the 512-sample cap", info)
	}
}

// TestEstimatorsRejectInvalidOptions: the typed validation errors must
// surface through the public estimators.
func TestEstimatorsRejectInvalidOptions(t *testing.T) {
	g := singleEdge(0.5)
	pairs := []Pair{{S: 0, T: 1}}
	if _, err := Reliability(bg(), g, pairs, mc.Options{Samples: -1}); !errors.Is(err, mc.ErrSampleCount) {
		t.Errorf("Reliability(Samples: -1) err = %v, want ErrSampleCount", err)
	}
	if _, err := ConnectedProbability(bg(), g, mc.Options{Lanes: 7}); !errors.Is(err, mc.ErrLaneWidth) {
		t.Errorf("ConnectedProbability(Lanes: 7) err = %v, want ErrLaneWidth", err)
	}
	bad := mc.Options{Scalar: true, Target: mc.WithConfidence(0.05, 0.05)}
	if _, _, err := ReliabilityRun(bg(), g, pairs, bad); !errors.Is(err, mc.ErrScalarTarget) {
		t.Errorf("ReliabilityRun(Scalar+Target) err = %v, want ErrScalarTarget", err)
	}
	if _, _, err := ConnectedProbabilityRun(bg(), g, mc.Options{Target: mc.WithConfidence(2, 0.05)}); !errors.Is(err, mc.ErrConfidence) {
		t.Errorf("ConnectedProbabilityRun(eps=2) err = %v, want ErrConfidence", err)
	}
}

// TestPlannerWidths pins the planner's structural decisions (the timing
// probe only picks among the wide widths, which are bit-identical anyway):
// vector queries and tiny budgets are scalar, budgets within one word stay
// at 64 lanes, explicit choices pass through, and large budgets get a wide
// width.
func TestPlannerWidths(t *testing.T) {
	g := diamond(0.5)
	cases := []struct {
		name string
		opts mc.Options
		kind Kind
		want func(int) bool
	}{
		{"vector always scalar", mc.Options{Samples: 5000}, KindVector, func(l int) bool { return l == 1 }},
		{"explicit scalar", mc.Options{Scalar: true, Samples: 5000}, KindPair, func(l int) bool { return l == 1 }},
		{"explicit 128", mc.Options{Lanes: 128, Samples: 10}, KindPair, func(l int) bool { return l == 128 }},
		{"tiny budget scalar", mc.Options{Samples: 4}, KindPair, func(l int) bool { return l == 1 }},
		{"one-word budget", mc.Options{Samples: 50}, KindConnectivity, func(l int) bool { return l == 64 }},
		{"large budget goes wide", mc.Options{Samples: 5000}, KindPair, func(l int) bool { return l == 64 || l == 128 || l == 256 }},
		{"adaptive goes wide", mc.Options{Target: mc.WithConfidence(0.01, 0.05)}, KindPair, func(l int) bool { return l >= 64 }},
	}
	for _, c := range cases {
		if got := PlanLanes(g, c.opts, c.kind); !c.want(got) {
			t.Errorf("%s: PlanLanes = %d", c.name, got)
		}
	}
	// The probe result is cached per graph: repeated calls agree.
	a := PlanLanes(g, mc.Options{Samples: 5000}, KindPair)
	for i := 0; i < 3; i++ {
		if b := PlanLanes(g, mc.Options{Samples: 5000}, KindPair); b != a {
			t.Fatalf("planner not stable: %d then %d", a, b)
		}
	}
}
