package queries

import (
	"sync"
	"time"

	"ugs/internal/ugraph"

	"ugs/internal/mc"
)

// Kind classifies a query for the execution planner: pair queries
// (reliability / shortest distance) fan one traversal out over many
// targets, connectivity sweeps every vertex once, and vector queries
// (PageRank, clustering) need real-valued per-world state that the
// bit-parallel engine cannot carry.
type Kind int

const (
	// KindPair is an s→t reachability / distance query (RL, SP).
	KindPair Kind = iota
	// KindConnectivity is the all-vertices-connected query.
	KindConnectivity
	// KindVector is a per-vertex real-valued query (PageRank, clustering
	// coefficients); always scalar worlds.
	KindVector
)

// Planner picks the lane width for estimator runs whose Options leave it to
// automatic (Lanes: 0). The choice is a pure execution decision — every
// width returns bit-identical estimates — so the planner optimizes
// throughput only: vector kinds are forced scalar, tiny budgets skip batch
// setup, small fixed budgets stay at one machine word, and large budgets go
// to whichever wide width a one-time per-graph calibration probe measures
// fastest (wider lanes amortize traversal control flow but touch more
// bytes per arc, so the winner is a property of the graph's size and
// structure, not a constant).
type Planner struct {
	mu    sync.Mutex
	plans map[*ugraph.Graph]int
}

// DefaultPlanner serves every run that does not carry its own planner.
var DefaultPlanner = &Planner{}

// probeRounds is how many fill+traversal rounds the calibration probe times
// per width. Two rounds keep the probe under a dozen traversals total while
// stepping past first-touch cache effects.
const probeRounds = 2

// planLanes resolves the lane width an estimator run will execute at: the
// explicit Options choice when one was made (Scalar / Lanes), otherwise the
// planner's pick for this graph, query kind and sample budget. The result
// is always one of 1, 64, 128, 256. opts must have passed Validate.
func planLanes(g *ugraph.Graph, opts mc.Options, kind Kind) int {
	if kind == KindVector || opts.Scalar || opts.Lanes == 1 {
		return 1
	}
	if opts.Lanes != 0 {
		return opts.Lanes
	}
	samples := opts.WithDefaults().Samples
	if opts.Target != nil {
		samples = opts.Target.WithDefaults().MaxSamples
	}
	// A batch fill costs one pass over the edge list regardless of how many
	// lanes are active; a handful of worlds is cheaper drawn scalar.
	if samples <= 8 {
		return 1
	}
	// One word of lanes already covers the whole budget: wider vectors
	// would traverse mostly-inactive lanes.
	if samples <= ugraph.BatchLanes {
		return ugraph.BatchLanes
	}
	return DefaultPlanner.wideLanes(g)
}

// PlanLanes reports the width planLanes would choose — the introspection
// hook behind the serve stats and the README decision table.
func PlanLanes(g *ugraph.Graph, opts mc.Options, kind Kind) int {
	return planLanes(g, opts, kind)
}

// wideLanes returns the calibrated wide width (64, 128 or 256) for g,
// probing on first use and caching per graph.
func (p *Planner) wideLanes(g *ugraph.Graph) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if lanes, ok := p.plans[g]; ok {
		return lanes
	}
	lanes := calibrate(g)
	if p.plans == nil {
		p.plans = map[*ugraph.Graph]int{}
	}
	p.plans[g] = lanes
	return lanes
}

// calibrate times one fill + one source-0 traversal per width on the actual
// graph and returns the width with the lowest per-world cost. The probe is
// a few O(|E|) passes — noise on tiny graphs is harmless because every
// width gives identical results — and runs once per (planner, graph).
func calibrate(g *ugraph.Graph) int {
	best, bestCost := ugraph.BatchLanes, probeWidth[ugraph.Vec64](g)
	if c := probeWidth[ugraph.Vec128](g); c < bestCost {
		best, bestCost = 2*ugraph.BatchLanes, c
	}
	if c := probeWidth[ugraph.Vec256](g); c < bestCost {
		best = 4 * ugraph.BatchLanes
	}
	return best
}

// probeWidth measures the per-world cost of the batch engine at width V on
// g: fill a full batch and traverse it from vertex 0, amortized over the
// lane count.
func probeWidth[V ugraph.Vec](g *ugraph.Graph) time.Duration {
	lanes := ugraph.VecLanes[V]()
	seeds := make([]int64, lanes)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	wb := ugraph.NewWorldBatch[V](g)
	bfs := NewMaskBFS[V](g.NumVertices())
	start := time.Now()
	for r := 0; r < probeRounds; r++ {
		ugraph.SampleBatchSeeded(g, seeds, wb)
		bfs.ReachFrom(wb, 0)
	}
	return time.Since(start) / time.Duration(probeRounds*lanes)
}
