package queries

import (
	"sync"
	"time"

	"ugs/internal/ugraph"

	"ugs/internal/mc"
)

// Kind classifies a query for the execution planner: pair queries
// (reliability / shortest distance) fan one traversal out over many
// targets, connectivity sweeps every vertex once, and vector queries
// (PageRank, clustering) need real-valued per-world state that the
// bit-parallel engine cannot carry.
type Kind int

const (
	// KindPair is an s→t reachability / distance query (RL, SP).
	KindPair Kind = iota
	// KindConnectivity is the all-vertices-connected query.
	KindConnectivity
	// KindVector is a per-vertex real-valued query (PageRank, clustering
	// coefficients); always scalar worlds.
	KindVector
)

// Planner picks the lane width for estimator runs whose Options leave it to
// automatic (Lanes: 0). The choice is a pure execution decision — every
// width returns bit-identical estimates — so the planner optimizes
// throughput only: vector kinds are forced scalar, tiny budgets skip batch
// setup, small fixed budgets stay at one machine word, and large budgets go
// to whichever wide width a one-time per-graph calibration probe measures
// fastest (wider lanes amortize traversal control flow but touch more
// bytes per arc, so the winner is a property of the graph's size and
// structure, not a constant).
type Planner struct {
	mu    sync.Mutex
	plans map[*ugraph.Graph]int
	fans  map[fanPlanKey]int
}

// fanPlanKey caches fan-out calibrations per (graph, lane width): the
// trade-off between per-source and grouped traversals depends on how much
// per-arc mask work a lane width does relative to the shared arc stream.
type fanPlanKey struct {
	g     *ugraph.Graph
	lanes int
}

// DefaultPlanner serves every run that does not carry its own planner.
var DefaultPlanner = &Planner{}

// probeRounds is how many fill+traversal rounds the calibration probe times
// per width. Two rounds keep the probe under a dozen traversals total while
// stepping past first-touch cache effects.
const probeRounds = 2

// planLanes resolves the lane width an estimator run will execute at: the
// explicit Options choice when one was made (Scalar / Lanes), otherwise the
// planner's pick for this graph, query kind and sample budget. The result
// is always one of 1, 64, 128, 256. opts must have passed Validate.
func planLanes(g *ugraph.Graph, opts mc.Options, kind Kind) int {
	if kind == KindVector || opts.Scalar || opts.Lanes == 1 {
		return 1
	}
	if opts.Lanes != 0 {
		return opts.Lanes
	}
	samples := opts.WithDefaults().Samples
	if opts.Target != nil {
		samples = opts.Target.WithDefaults().MaxSamples
	}
	// A batch fill costs one pass over the edge list regardless of how many
	// lanes are active; a handful of worlds is cheaper drawn scalar.
	if samples <= 8 {
		return 1
	}
	// One word of lanes already covers the whole budget: wider vectors
	// would traverse mostly-inactive lanes.
	if samples <= ugraph.BatchLanes {
		return ugraph.BatchLanes
	}
	return DefaultPlanner.wideLanes(g)
}

// PlanLanes reports the width planLanes would choose — the introspection
// hook behind the serve stats and the README decision table.
func PlanLanes(g *ugraph.Graph, opts mc.Options, kind Kind) int {
	return planLanes(g, opts, kind)
}

// wideLanes returns the calibrated wide width (64, 128 or 256) for g,
// probing on first use and caching per graph.
func (p *Planner) wideLanes(g *ugraph.Graph) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if lanes, ok := p.plans[g]; ok {
		return lanes
	}
	lanes := calibrate(g)
	if p.plans == nil {
		p.plans = map[*ugraph.Graph]int{}
	}
	p.plans[g] = lanes
	return lanes
}

// calibrate times one fill + one source-0 traversal per width on the actual
// graph and returns the width with the lowest per-world cost. The probe is
// a few O(|E|) passes — noise on tiny graphs is harmless because every
// width gives identical results — and runs once per (planner, graph).
func calibrate(g *ugraph.Graph) int {
	best, bestCost := ugraph.BatchLanes, probeWidth[ugraph.Vec64](g)
	if c := probeWidth[ugraph.Vec128](g); c < bestCost {
		best, bestCost = 2*ugraph.BatchLanes, c
	}
	if c := probeWidth[ugraph.Vec256](g); c < bestCost {
		best = 4 * ugraph.BatchLanes
	}
	return best
}

// probeWidth measures the per-world cost of the batch engine at width V on
// g: fill a full batch and traverse it from vertex 0, amortized over the
// lane count.
func probeWidth[V ugraph.Vec](g *ugraph.Graph) time.Duration {
	lanes := ugraph.VecLanes[V]()
	seeds := make([]int64, lanes)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	wb := ugraph.NewWorldBatch[V](g)
	bfs := NewMaskBFS[V](g.NumVertices())
	start := time.Now()
	for r := 0; r < probeRounds; r++ {
		ugraph.SampleBatchSeeded(g, seeds, wb)
		bfs.ReachFrom(wb, 0)
	}
	return time.Since(start) / time.Duration(probeRounds*lanes)
}

// planFanOut resolves the source group size a pair-estimator run uses:
// the explicit Options.FanOut when one was set, otherwise the planner's
// calibrated pick for this graph and lane width. The result is clamped to
// the number of distinct sources (a single-source query never pays group
// overhead) and is always in 1..mc.MaxFanOut. Like the lane width, fan-out
// is a pure execution decision — per-pair results are bit-identical across
// every value. opts must have passed Validate.
func planFanOut(g *ugraph.Graph, opts mc.Options, distinct, lanes int) int {
	fan := opts.FanOut
	if fan == 0 {
		if distinct < 2 {
			return 1
		}
		if lanes == 1 {
			// Scalar worlds: the grouped BFS walks each present arc of a
			// level once for all sources in the group at the cost of one
			// extra mask word per vertex, so sharing always amortizes —
			// take the full 64-source mask.
			fan = mc.MaxFanOut
		} else {
			fan = DefaultPlanner.fanOut(g, lanes)
		}
	}
	if fan > distinct {
		fan = distinct
	}
	if fan < 1 {
		fan = 1
	}
	return fan
}

// PlanFanOut reports the group size planFanOut would choose for a query
// with the given number of distinct sources — the introspection hook behind
// the serve stats and tests.
func PlanFanOut(g *ugraph.Graph, opts mc.Options, distinct int, kind Kind) int {
	return planFanOut(g, opts, distinct, planLanes(g, opts, kind))
}

// fanSizes lists, per lane width, the group sizes the fan-out probe tries
// against the per-source baseline — exactly the sizes msbfs_wide.go carries
// a hand-specialized kernel for, since the generic slot loop never beats
// per-source traversals at wide widths.
var fanSizes = map[int][]int{
	ugraph.BatchLanes:     {4, 8},
	2 * ugraph.BatchLanes: {4},
	4 * ugraph.BatchLanes: {2},
}

// fanOut returns the calibrated source group size for (g, lanes), probing
// on first use and caching per (graph, width).
func (p *Planner) fanOut(g *ugraph.Graph, lanes int) int {
	key := fanPlanKey{g: g, lanes: lanes}
	p.mu.Lock()
	defer p.mu.Unlock()
	if fan, ok := p.fans[key]; ok {
		return fan
	}
	var fan int
	switch lanes {
	case ugraph.BatchLanes:
		fan = probeFanOut[ugraph.Vec64](g, fanSizes[lanes])
	case 2 * ugraph.BatchLanes:
		fan = probeFanOut[ugraph.Vec128](g, fanSizes[lanes])
	default:
		fan = probeFanOut[ugraph.Vec256](g, fanSizes[4*ugraph.BatchLanes])
	}
	if p.fans == nil {
		p.fans = map[fanPlanKey]int{}
	}
	p.fans[key] = fan
	return fan
}

// probeFanOut times, on one filled batch of the actual graph, a sweep of
// per-source traversals against multi-source passes at each candidate group
// size, from sources spread across the vertex range. Like the width probe
// it is a handful of O(|E|) passes that runs once per (planner, graph,
// width); a noisy pick is harmless because every fan-out gives identical
// results.
func probeFanOut[V ugraph.Vec](g *ugraph.Graph, sizes []int) int {
	n := g.NumVertices()
	nsrc := 16
	if nsrc > n {
		nsrc = n
	}
	if nsrc < 2 {
		return 1
	}
	srcs := make([]int, nsrc)
	for i := range srcs {
		srcs[i] = i * n / nsrc
	}
	lanes := ugraph.VecLanes[V]()
	seeds := make([]int64, lanes)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	wb := ugraph.NewWorldBatch[V](g)
	ugraph.SampleBatchSeeded(g, seeds, wb)

	single := NewMaskBFS[V](n)
	start := time.Now()
	for r := 0; r < probeRounds; r++ {
		for _, s := range srcs {
			single.ReachFrom(wb, s)
		}
	}
	bestFan, bestCost := 1, time.Since(start)
	for _, fan := range sizes {
		if fan > nsrc {
			break
		}
		ms := NewMSBFS[V](n, fan)
		start = time.Now()
		for r := 0; r < probeRounds; r++ {
			for base := 0; base < nsrc; base += fan {
				end := base + fan
				if end > nsrc {
					end = nsrc
				}
				ms.ReachFrom(wb, srcs[base:end])
			}
		}
		if c := time.Since(start); c < bestCost {
			bestFan, bestCost = fan, c
		}
	}
	return bestFan
}
