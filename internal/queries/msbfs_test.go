package queries

import (
	"math/rand"
	"testing"

	"ugs/internal/mc"
	"ugs/internal/ugraph"
)

// probeGroup draws a random source group for a multi-source trial,
// occasionally with duplicate sources — allowed by the kernel contract and
// exercised here so a slot-mixing bug cannot hide behind distinctness.
func probeGroup(rng *rand.Rand, n int) []int {
	size := 1 + rng.Intn(12)
	srcs := make([]int, size)
	for i := range srcs {
		srcs[i] = rng.Intn(n)
	}
	return srcs
}

// checkMSBFSMatchesMaskBFS pins the multi-source kernel at one width: every
// source slot's reach masks and depth sums must equal a dedicated
// single-source MaskBFS traversal from that slot's source, bit for bit.
func checkMSBFSMatchesMaskBFS[V ugraph.Vec](t *testing.T, rng *rand.Rand, trial int) {
	t.Helper()
	g := randomQueryGraph(rng, 8+rng.Intn(40), 0.05+0.3*rng.Float64())
	n := g.NumVertices()
	lanes := 1 + rng.Intn(ugraph.VecLanes[V]())
	seeds := make([]int64, lanes)
	for l := range seeds {
		seeds[l] = rng.Int63()
	}
	wb := ugraph.NewWorldBatch[V](g)
	ugraph.SampleBatchSeeded(g, seeds, wb)
	single := NewMaskBFS[V](n)
	ms := NewMSBFS[V](n, 4) // deliberately smaller than some groups: exercises growth
	for round := 0; round < 3; round++ {
		srcs := probeGroup(rng, n)
		ms.ReachFrom(wb, srcs)
		for k, src := range srcs {
			reach := single.ReachFrom(wb, src)
			depthSum := single.DepthSums()
			for v := 0; v < n; v++ {
				if ms.Reach(v, k) != reach[v] {
					t.Fatalf("trial %d round %d srcs %v slot %d vertex %d: reach %v != single-source %v",
						trial, round, srcs, k, v, ms.Reach(v, k), reach[v])
				}
				if ms.DepthSum(v, k) != depthSum[v] {
					t.Fatalf("trial %d round %d srcs %v slot %d vertex %d: depthSum %d != single-source %d",
						trial, round, srcs, k, v, ms.DepthSum(v, k), depthSum[v])
				}
			}
		}
	}
}

func TestMSBFSMatchesMaskBFSPerSlot(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		checkMSBFSMatchesMaskBFS[ugraph.Vec64](t, rng, trial)
		checkMSBFSMatchesMaskBFS[ugraph.Vec128](t, rng, trial)
		checkMSBFSMatchesMaskBFS[ugraph.Vec256](t, rng, trial)
	}
}

// checkMSBFSSpecializedMatchesGeneric replays the generic runLevels
// reference on the exact state ReachFrom hands its width-specialized kernel
// (msbfs_wide.go) and demands bit-identical reach masks and depth sums —
// the multi-source analogue of TestMaskBFSSpecializedMatchesGeneric.
func checkMSBFSSpecializedMatchesGeneric[V ugraph.Vec](t *testing.T, rng *rand.Rand, trial int) {
	t.Helper()
	g := randomQueryGraph(rng, 8+rng.Intn(40), 0.05+0.3*rng.Float64())
	n := g.NumVertices()
	lanes := 1 + rng.Intn(ugraph.VecLanes[V]())
	seeds := make([]int64, lanes)
	for l := range seeds {
		seeds[l] = rng.Int63()
	}
	wb := ugraph.NewWorldBatch[V](g)
	ugraph.SampleBatchSeeded(g, seeds, wb)
	fast := NewMSBFS[V](n, 16)
	ref := NewMSBFS[V](n, 16)
	for round := 0; round < 3; round++ {
		srcs := probeGroup(rng, n)
		fast.ReachFrom(wb, srcs)
		off := ref.start(wb, srcs)
		ref.runLevels(off)
		for v := 0; v < n; v++ {
			for k := range srcs {
				if fast.Reach(v, k) != ref.Reach(v, k) {
					t.Fatalf("trial %d round %d srcs %v vertex %d slot %d: specialized reach %v != generic %v",
						trial, round, srcs, v, k, fast.Reach(v, k), ref.Reach(v, k))
				}
				if fast.DepthSum(v, k) != ref.DepthSum(v, k) {
					t.Fatalf("trial %d round %d srcs %v vertex %d slot %d: specialized depthSum %d != generic %d",
						trial, round, srcs, v, k, fast.DepthSum(v, k), ref.DepthSum(v, k))
				}
			}
		}
	}
}

func TestMSBFSSpecializedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 8; trial++ {
		checkMSBFSSpecializedMatchesGeneric[ugraph.Vec64](t, rng, trial)
		checkMSBFSSpecializedMatchesGeneric[ugraph.Vec128](t, rng, trial)
		checkMSBFSSpecializedMatchesGeneric[ugraph.Vec256](t, rng, trial)
	}
}

// TestMSWorldBFSMatchesScalarBFS pins the scalar multi-source kernel: every
// slot's distances over a sampled world must equal BFS.Distances from that
// slot's source.
func TestMSWorldBFSMatchesScalarBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 10; trial++ {
		g := randomQueryGraph(rng, 8+rng.Intn(40), 0.05+0.3*rng.Float64())
		n := g.NumVertices()
		w := g.SampleWorld(rng)
		ms := NewMSWorldBFS(n, 4)
		bfs := NewBFS(n)
		srcs := probeGroup(rng, n)
		ms.Run(w, srcs)
		for k, src := range srcs {
			dist := bfs.Distances(w, src)
			for v := 0; v < n; v++ {
				if got := ms.Dist(v, k); got != dist[v] {
					t.Fatalf("trial %d srcs %v slot %d vertex %d: dist %d != scalar BFS %d",
						trial, srcs, k, v, got, dist[v])
				}
			}
		}
	}
}

// multiPairCase builds a pair list that stresses the grouped estimators:
// several pairs sharing one source, duplicate pairs, and pairs whose
// sources collide with targets.
func multiPairCase(rng *rand.Rand, n, count int) []Pair {
	pairs := RandomPairs(n, count, rng)
	if count >= 4 && n >= 3 {
		pairs[1].S = pairs[0].S                       // shared source
		pairs[2] = pairs[0]                           // duplicate pair
		pairs[3] = Pair{S: pairs[0].T, T: pairs[0].S} // reversed
	}
	return pairs
}

// TestMultiSourceMatchesPerSource is the estimator-level contract of the
// multi-source engine: for every lane width (including scalar worlds and
// the auto plan), worker count and fan-out, grouped traversals must produce
// bit-identical per-pair SP and RL estimates to the per-source ablation
// (FanOut: 1) on the same seed — over pair lists with shared and duplicate
// sources.
func TestMultiSourceMatchesPerSource(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	g := randomQueryGraph(rng, 60, 0.12)
	pairs := multiPairCase(rng, g.NumVertices(), 40)

	for _, lanes := range []int{1, 0, ugraph.BatchLanes, 2 * ugraph.BatchLanes, 4 * ugraph.BatchLanes} {
		var wantSP, wantRL []float64
		for _, workers := range []int{1, 8} {
			for _, fan := range []int{1, 0, 2, 7, 16, 64} {
				opts := mc.Options{Samples: 130, Seed: 99, Workers: workers, Lanes: lanes, FanOut: fan}
				sp, rl, err := ShortestDistanceAndReliability(bg(), g, pairs, opts)
				if err != nil {
					t.Fatalf("lanes=%d workers=%d fan=%d: %v", lanes, workers, fan, err)
				}
				if wantSP == nil {
					wantSP, wantRL = sp, rl
					continue
				}
				for i := range pairs {
					if rl[i] != wantRL[i] {
						t.Fatalf("lanes=%d workers=%d fan=%d pair %d: RL %v != per-source %v",
							lanes, workers, fan, i, rl[i], wantRL[i])
					}
					// NaN (never-connected pair) must match as NaN.
					if sp[i] != wantSP[i] && !(sp[i] != sp[i] && wantSP[i] != wantSP[i]) {
						t.Fatalf("lanes=%d workers=%d fan=%d pair %d: SP %v != per-source %v",
							lanes, workers, fan, i, sp[i], wantSP[i])
					}
				}
			}
		}
	}
}

// TestMultiSourceAcrossWidthsIdentical pins the cross-width contract in the
// multi-source regime: results must not depend on the lane width either.
func TestMultiSourceAcrossWidthsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	g := randomQueryGraph(rng, 40, 0.15)
	pairs := multiPairCase(rng, g.NumVertices(), 24)
	var wantSP, wantRL []float64
	for _, lanes := range []int{1, ugraph.BatchLanes, 2 * ugraph.BatchLanes, 4 * ugraph.BatchLanes} {
		opts := mc.Options{Samples: 257, Seed: 7, Workers: 4, Lanes: lanes, FanOut: 8}
		sp, rl, err := ShortestDistanceAndReliability(bg(), g, pairs, opts)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		if wantSP == nil {
			wantSP, wantRL = sp, rl
			continue
		}
		for i := range pairs {
			if rl[i] != wantRL[i] || (sp[i] != wantSP[i] && !(sp[i] != sp[i] && wantSP[i] != wantSP[i])) {
				t.Fatalf("lanes=%d pair %d: (SP %v, RL %v) != scalar (%v, %v)",
					lanes, i, sp[i], rl[i], wantSP[i], wantRL[i])
			}
		}
	}
}

// TestAdaptiveMultiPairDeterministicAcrossFanOuts pins sequential stopping
// in the multi-source regime: the stopping decision depends only on
// accumulated per-pair counts, which are fan-out-invariant, so the adaptive
// run must take the same rounds and return bit-identical estimates for
// every fan-out and worker count.
func TestAdaptiveMultiPairDeterministicAcrossFanOuts(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	g := randomQueryGraph(rng, 50, 0.1)
	pairs := multiPairCase(rng, g.NumVertices(), 16)
	var wantSP, wantRL []float64
	var wantInfo mc.RunInfo
	first := true
	for _, workers := range []int{1, 8} {
		for _, fan := range []int{1, 0, 8, 64} {
			opts := mc.Options{Seed: 11, Workers: workers, FanOut: fan,
				Target: mc.WithConfidence(0.05, 0.05)}
			sp, rl, info, err := ShortestDistanceAndReliabilityRun(bg(), g, pairs, opts)
			if err != nil {
				t.Fatalf("workers=%d fan=%d: %v", workers, fan, err)
			}
			if first {
				wantSP, wantRL, wantInfo = sp, rl, info
				first = false
				continue
			}
			if info != wantInfo {
				t.Fatalf("workers=%d fan=%d: run info %+v != %+v", workers, fan, info, wantInfo)
			}
			for i := range pairs {
				if rl[i] != wantRL[i] || (sp[i] != wantSP[i] && !(sp[i] != sp[i] && wantSP[i] != wantSP[i])) {
					t.Fatalf("workers=%d fan=%d pair %d: (SP %v, RL %v) != (%v, %v)",
						workers, fan, i, sp[i], rl[i], wantSP[i], wantRL[i])
				}
			}
		}
	}
}

// TestMSBFSZeroSteadyStateAllocs extends the zero-allocation guarantee to
// the multi-source kernels with warm, group-sized instances.
func TestMSBFSZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomQueryGraph(rng, 50, 0.2)
	n := g.NumVertices()
	srcs := []int{0, 7, 13, 21, 34, 42, 45, 49}

	seeds := make([]int64, ugraph.VecLanes[ugraph.Vec256]())
	for l := range seeds {
		seeds[l] = rng.Int63()
	}
	wb := ugraph.NewWorldBatch[ugraph.Vec256](g)
	ugraph.SampleBatchSeeded(g, seeds, wb)
	ms := NewMSBFS[ugraph.Vec256](n, len(srcs))
	ms.ReachFrom(wb, srcs)
	if allocs := testing.AllocsPerRun(50, func() { ms.ReachFrom(wb, srcs) }); allocs != 0 {
		t.Errorf("MSBFS.ReachFrom allocates %.1f per call with a warm instance, want 0", allocs)
	}

	w := g.SampleWorld(rand.New(rand.NewSource(5)))
	msw := NewMSWorldBFS(n, len(srcs))
	msw.Run(w, srcs)
	if allocs := testing.AllocsPerRun(50, func() { msw.Run(w, srcs) }); allocs != 0 {
		t.Errorf("MSWorldBFS.Run allocates %.1f per call with a warm instance, want 0", allocs)
	}
}

// TestPlanFanOut pins the planner's fan-out clamps: explicit choices are
// honored up to the distinct-source count, single-source queries never
// group, and the scalar path takes the full source mask automatically.
func TestPlanFanOut(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	g := randomQueryGraph(rng, 30, 0.2)
	cases := []struct {
		opts     mc.Options
		distinct int
		want     int
	}{
		{mc.Options{FanOut: 16}, 256, 16},       // explicit, plenty of sources
		{mc.Options{FanOut: 16}, 5, 5},          // clamped to distinct sources
		{mc.Options{FanOut: 1}, 256, 1},         // per-source ablation
		{mc.Options{}, 1, 1},                    // nothing to group
		{mc.Options{Scalar: true}, 256, 64},     // scalar auto: full mask
		{mc.Options{Scalar: true}, 10, 10},      // scalar auto, clamped
		{mc.Options{Lanes: 1, FanOut: 3}, 9, 3}, // explicit on scalar path
	}
	for i, c := range cases {
		o := c.opts.WithDefaults()
		if got := PlanFanOut(g, o, c.distinct, KindPair); got != c.want {
			t.Errorf("case %d (%+v, distinct=%d): fan-out %d, want %d", i, c.opts, c.distinct, got, c.want)
		}
	}
	// Auto on the batch path returns a calibrated size in range.
	if got := PlanFanOut(g, mc.Options{Samples: 500}.WithDefaults(), 256, KindPair); got < 1 || got > mc.MaxFanOut {
		t.Errorf("auto fan-out %d out of range [1,%d]", got, mc.MaxFanOut)
	}
}
