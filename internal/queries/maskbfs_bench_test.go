package queries

import (
	"testing"

	"ugs/internal/gen"
	"ugs/internal/ugraph"
)

// benchGraph is the shared mask-BFS benchmark fixture: dense enough that
// traversals hit the sweep path, small enough that the per-vertex lane
// state stays cache-resident at every width.
func benchGraph(b *testing.B) *ugraph.Graph {
	b.Helper()
	g, err := gen.Social(gen.SocialConfig{N: 300, AvgDegree: 20, MeanProb: 0.3, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchReachFrom measures one full-width traversal per iteration. ns/op
// divided by the lane count is the per-world cost the width sweep is
// chasing: wider vectors amortize the frontier bookkeeping and the arc
// stream walk over more worlds per cache line.
func benchReachFrom[V ugraph.Vec](b *testing.B, g *ugraph.Graph) {
	wb := ugraph.NewWorldBatch[V](g)
	seeds := make([]int64, ugraph.VecLanes[V]())
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	ugraph.SampleBatchSeeded(g, seeds, wb)
	bfs := NewMaskBFS[V](g.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs.ReachFrom(wb, i%g.NumVertices())
	}
}

func BenchmarkMaskBFSReachFrom(b *testing.B) {
	g := benchGraph(b)
	b.Run("lanes=64", func(b *testing.B) { benchReachFrom[ugraph.Vec64](b, g) })
	b.Run("lanes=128", func(b *testing.B) { benchReachFrom[ugraph.Vec128](b, g) })
	b.Run("lanes=256", func(b *testing.B) { benchReachFrom[ugraph.Vec256](b, g) })
}

// benchFill measures the batch sampling path: one full-width fill per
// iteration (so the 256-lane case draws 4× the worlds of the 64-lane one).
func benchFill[V ugraph.Vec](b *testing.B, g *ugraph.Graph) {
	wb := ugraph.NewWorldBatch[V](g)
	seeds := make([]int64, ugraph.VecLanes[V]())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := range seeds {
			seeds[l] = int64(i*len(seeds) + l)
		}
		ugraph.SampleBatchSeeded(g, seeds, wb)
	}
}

func BenchmarkWorldBatchFill(b *testing.B) {
	g := benchGraph(b)
	b.Run("lanes=64", func(b *testing.B) { benchFill[ugraph.Vec64](b, g) })
	b.Run("lanes=128", func(b *testing.B) { benchFill[ugraph.Vec128](b, g) })
	b.Run("lanes=256", func(b *testing.B) { benchFill[ugraph.Vec256](b, g) })
}
