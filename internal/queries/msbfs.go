package queries

import (
	"math/bits"

	"ugs/internal/ugraph"
)

// MSBFS is the multi-source companion of MaskBFS: one level-synchronous
// traversal carries per-vertex lane masks for a whole group of query
// sources, so each CSR arc of a level is loaded once and expanded for every
// source in the group. With wide world batches nearly every vertex is
// frontier-active at nearly every level for every source, so the union
// frontier of S sources costs far less arc traffic and level control flow
// than S separate traversals — the same amortization the lane transposition
// buys across worlds, applied across sources. The per-(source, lane)
// semantics are exactly S independent MaskBFS runs: source slots never mix,
// so reach masks and settle depths are bit-identical to S calls of
// MaskBFS.ReachFrom, which is what lets the pair estimators route through
// either kernel interchangeably.
//
// State is laid out as one interleaved record per vertex: rn[v*2S+k] holds
// vertex v's reach mask for source slot k and rn[v*2S+S+k] the lanes first
// reached during the current level ("next"). Reach and next share the
// record because the expansion loop needs both for every arc — the reach
// words to mask out settled lanes, the next words to accumulate new ones —
// and an arc's target is a random access: keeping them in one cache-line
// run makes the next-side touch an L1 hit instead of a second miss, which
// is what the traversal's throughput is bound by on out-of-cache graphs.
// Zero steady-state allocations with a warm instance sized for the group;
// not safe for concurrent use (the batch Monte-Carlo engine creates one per
// worker).
type MSBFS[V ugraph.Vec] struct {
	n        int     // vertices in the bound graph family
	group    int     // source slots of the current/last traversal
	rn       []V     // v*2*group + k: reach slot k; + group + k: next slot k
	cur      []V     // v*group + k: frontier lanes entering the current level
	depthSum []int64 // v*group + k: Σ over reached lanes of the settle depth
	curQ     []int32 // vertices with any nonzero cur slot
	nextQ    []int32 // vertices with any nonzero next slot

	arcTable[V]
}

// NewMSBFS returns a multi-source mask-BFS for graphs with n vertices,
// pre-sized for source groups of up to fan sources (larger groups grow the
// buffers on first use).
func NewMSBFS[V ugraph.Vec](n, fan int) *MSBFS[V] {
	if fan < 1 {
		fan = 1
	}
	return &MSBFS[V]{
		n:        n,
		rn:       make([]V, n*fan*2),
		cur:      make([]V, n*fan),
		depthSum: make([]int64, n*fan),
		curQ:     make([]int32, 0, n),
		nextQ:    make([]int32, 0, n),
	}
}

// ReachFrom runs one level-synchronous traversal from every source in srcs
// across every active lane of wb. Afterwards Reach(v, k) and DepthSum(v, k)
// expose, for source slot k (= srcs[k]), exactly what MaskBFS.ReachFrom
// from srcs[k] would report for v — bit for bit. Duplicate sources are
// allowed and simply settle the same vertex in several slots.
func (b *MSBFS[V]) ReachFrom(wb *ugraph.WorldBatch[V], srcs []int) {
	off := b.start(wb, srcs)
	// Same registerization story as MaskBFS.ReachFrom, with the group size
	// as a second specialization axis: the generic slot loop re-loads every
	// frontier word from memory per arc and pays a bounds check per slot,
	// so the planner-preferred (width, fan) combinations dispatch to
	// hand-specialized level loops (msbfs_wide.go) that view each vertex's
	// record as a fixed-size array and hold the whole frontier group in
	// scalar locals across the arc loop. Other group sizes fall back to the
	// generic reference loop, which is also what
	// TestMSBFSSpecializedMatchesGeneric replays against each kernel.
	switch bb := any(b).(type) {
	case *MSBFS[ugraph.Vec64]:
		switch b.group {
		case 4:
			runLevelsMS64x4(bb, off)
		case 8:
			runLevelsMS64x8(bb, off)
		default:
			b.runLevels(off)
		}
	case *MSBFS[ugraph.Vec128]:
		if b.group == 4 {
			runLevelsMS128x4(bb, off)
		} else {
			b.runLevels(off)
		}
	case *MSBFS[ugraph.Vec256]:
		if b.group == 2 {
			runLevelsMS256x2(bb, off)
		} else {
			b.runLevels(off)
		}
	default:
		b.runLevels(off)
	}
}

// Reach returns the reachability mask of vertex v for source slot k of the
// last ReachFrom: lane bit l is set iff v is reachable from srcs[k] in
// world lane l. Bits of inactive lanes are always zero.
func (b *MSBFS[V]) Reach(v, k int) V { return b.rn[v*2*b.group+k] }

// DepthSum returns Σ over reached lanes of vertex v's settle depth from
// source slot k of the last ReachFrom — the multi-source analogue of
// MaskBFS.DepthSums.
func (b *MSBFS[V]) DepthSum(v, k int) int64 { return b.depthSum[v*b.group+k] }

// start binds wb, sizes the per-vertex records for len(srcs) slots and
// resets them: reach/next/depthSum cleared, each source seeded with the
// active mask in its own slot, the frontier queue holding each distinct
// source once. It returns the CSR arc offsets the level loops index arcs
// with.
func (b *MSBFS[V]) start(wb *ugraph.WorldBatch[V], srcs []int) []int32 {
	b.bind(wb)
	s := len(srcs)
	b.group = s
	if need := b.n * s; len(b.cur) < need {
		b.rn = make([]V, need*2)
		b.cur = make([]V, need)
		b.depthSum = make([]int64, need)
	}
	var zero V
	for i := 0; i < b.n*s*2; i++ {
		b.rn[i] = zero
	}
	for i := 0; i < b.n*s; i++ {
		b.depthSum[i] = 0
	}
	// Invariant between calls: cur is all zero (every frontier entry set
	// during a level is cleared when the level is consumed), so a smaller
	// group reusing the same backing array starts clean.
	active := wb.ActiveMask()
	b.curQ = b.curQ[:0]
	for k, src := range srcs {
		row := b.cur[src*s : src*s+s]
		queued := false
		for _, c := range row {
			if !ugraph.VecIsZero(c) {
				queued = true
				break
			}
		}
		if !queued {
			b.curQ = append(b.curQ, int32(src))
		}
		b.rn[src*2*s+k] = active
		row[k] = active
	}
	b.nextQ = b.nextQ[:0]
	return wb.Graph().ArcOffsets()
}

// runLevels is the generic multi-source level loop — the reference
// semantics every specialized kernel must reproduce bit for bit. It mirrors
// MaskBFS.runLevels with one extra inner dimension: each arc's lane mask is
// applied to every source slot of the frontier vertex, and a vertex joins
// the next frontier when the union over its next slots goes nonzero. It
// returns the total number of arc expansions performed, the quantity
// source fan-out amortizes (one expansion covers the whole group).
func (b *MSBFS[V]) runLevels(off []int32) int64 {
	arcs := b.arcs
	s := b.group
	rn, cur, depthSum := b.rn, b.cur, b.depthSum
	var zero V
	curQ, nextQ := b.curQ, b.nextQ
	n := b.n
	depth := 0
	var visits int64
	for len(curQ) > 0 {
		depth++
		// Arc volume decides frontier recovery exactly as in the
		// single-source loop: per-arc expansion and per-vertex sweep both
		// scale by the slot count, so the crossover is unchanged.
		vol := 0
		for _, ui := range curQ {
			vol += int(off[ui+1] - off[ui])
		}
		visits += int64(vol)
		nextQ = nextQ[:0]
		if vol >= n/8 {
			for _, ui := range curQ {
				u := int(ui)
				fu := cur[u*s : u*s+s]
				for _, a := range arcs[off[u]:off[u+1]] {
					v := int(a.to)
					rv := rn[v*2*s : v*2*s+s]
					nv := rn[v*2*s+s : v*2*s+2*s]
					for k := range nv {
						nv[k] = ugraph.VecOr(nv[k], ugraph.VecFrontier(fu[k], a.mask, rv[k]))
					}
				}
				for k := range fu {
					fu[k] = zero
				}
			}
			for v := 0; v < n; v++ {
				nv := rn[v*2*s+s : v*2*s+2*s]
				var un V
				for _, m := range nv {
					un = ugraph.VecOr(un, m)
				}
				if ugraph.VecIsZero(un) {
					continue
				}
				rv := rn[v*2*s : v*2*s+s]
				cv := cur[v*s : v*s+s]
				dv := depthSum[v*s : v*s+s]
				for k := range nv {
					newly := nv[k]
					nv[k] = zero
					rv[k] = ugraph.VecOr(rv[k], newly)
					dv[k] += int64(depth) * int64(ugraph.VecOnesCount(newly))
					cv[k] = newly
				}
				nextQ = append(nextQ, int32(v))
			}
		} else {
			for _, ui := range curQ {
				u := int(ui)
				fu := cur[u*s : u*s+s]
				for _, a := range arcs[off[u]:off[u+1]] {
					v := int(a.to)
					rv := rn[v*2*s : v*2*s+s]
					nv := rn[v*2*s+s : v*2*s+2*s]
					var pre, post V
					for k := range nv {
						m := ugraph.VecFrontier(fu[k], a.mask, rv[k])
						p := nv[k]
						nv[k] = ugraph.VecOr(p, m)
						pre = ugraph.VecOr(pre, p)
						post = ugraph.VecOr(post, nv[k])
					}
					if ugraph.VecIsZero(pre) && !ugraph.VecIsZero(post) {
						nextQ = append(nextQ, int32(v))
					}
				}
				for k := range fu {
					fu[k] = zero
				}
			}
			for _, vi := range nextQ {
				v := int(vi)
				nv := rn[v*2*s+s : v*2*s+2*s]
				rv := rn[v*2*s : v*2*s+s]
				cv := cur[v*s : v*s+s]
				dv := depthSum[v*s : v*s+s]
				for k := range nv {
					newly := nv[k] // disjoint from reach: masked at insertion
					nv[k] = zero
					rv[k] = ugraph.VecOr(rv[k], newly)
					dv[k] += int64(depth) * int64(ugraph.VecOnesCount(newly))
					cv[k] = newly
				}
			}
		}
		curQ, nextQ = nextQ, curQ[:0]
	}
	b.curQ, b.nextQ = curQ[:0], nextQ[:0]
	return visits
}

// MSWorldBFS is the scalar-world counterpart of MSBFS: one breadth-first
// search over a single sampled world carries a 64-bit source mask per
// vertex (bit k = "reached from srcs[k]"), so each present arc of a level
// is walked once for up to 64 sources. Per-source distances are identical
// to one BFS.Distances call per source. Not safe for concurrent use.
type MSWorldBFS struct {
	n     int
	group int
	reach []uint64 // per-vertex mask of source slots that reached it
	cur   []uint64
	next  []uint64
	depth []int32 // v*group+k: settle depth; valid iff reach bit k set at v
	curQ  []int32
	nextQ []int32
}

// NewMSWorldBFS returns a scalar multi-source BFS for graphs with n
// vertices, pre-sized for source groups of up to fan (≤ 64) sources.
func NewMSWorldBFS(n, fan int) *MSWorldBFS {
	if fan < 1 {
		fan = 1
	}
	return &MSWorldBFS{
		n:     n,
		reach: make([]uint64, n),
		cur:   make([]uint64, n),
		next:  make([]uint64, n),
		depth: make([]int32, n*fan),
		curQ:  make([]int32, 0, n),
		nextQ: make([]int32, 0, n),
	}
}

// Run traverses w from every source in srcs (at most 64). Afterwards
// Dist(v, k) reports the hop distance from srcs[k] to v in this world, −1
// when unreachable — exactly BFS.Distances(w, srcs[k])[v].
func (b *MSWorldBFS) Run(w *ugraph.World, srcs []int) {
	if len(srcs) > 64 {
		panic("queries: MSWorldBFS carries at most 64 sources per run")
	}
	g := w.Graph()
	s := len(srcs)
	b.group = s
	if need := b.n * s; len(b.depth) < need {
		b.depth = make([]int32, need)
	}
	reach, cur, next := b.reach, b.cur, b.next
	for v := range reach {
		reach[v] = 0
	}
	// depth entries are only read where the corresponding reach bit is set,
	// and every such (v, k) is written this run — no clearing needed.
	b.curQ = b.curQ[:0]
	for k, src := range srcs {
		if reach[src] == 0 {
			b.curQ = append(b.curQ, int32(src))
		}
		reach[src] |= 1 << k
		cur[src] |= 1 << k
		b.depth[src*s+k] = 0
	}
	curQ, nextQ := b.curQ, b.nextQ[:0]
	depth := int32(0)
	for len(curQ) > 0 {
		depth++
		nextQ = nextQ[:0]
		for _, ui := range curQ {
			u := int(ui)
			fu := cur[u]
			cur[u] = 0
			for _, a := range g.Neighbors(u) {
				if !w.Present(a.ID) {
					continue
				}
				v := a.To
				m := fu &^ reach[v]
				if m == 0 {
					continue
				}
				if next[v] == 0 {
					nextQ = append(nextQ, int32(v))
				}
				next[v] |= m
			}
		}
		for _, vi := range nextQ {
			v := int(vi)
			newly := next[v] // disjoint from reach: masked at insertion
			next[v] = 0
			reach[v] |= newly
			cur[v] = newly
			for m := newly; m != 0; m &= m - 1 {
				b.depth[v*s+bits.TrailingZeros64(m)] = depth
			}
		}
		curQ, nextQ = nextQ, curQ[:0]
	}
	b.curQ, b.nextQ = curQ[:0], nextQ[:0]
}

// Dist returns the hop distance from source slot k to vertex v in the last
// Run's world, −1 when unreachable.
func (b *MSWorldBFS) Dist(v, k int) int {
	if b.reach[v]&(1<<k) == 0 {
		return -1
	}
	return int(b.depth[v*b.group+k])
}
