// Package queries implements the four graph queries of the paper's
// evaluation — PageRank (PR), shortest-path distance (SP), reliability (RL)
// and clustering coefficient (CC) — both as deterministic per-world
// algorithms and as Monte-Carlo estimators over uncertain graphs.
package queries

import (
	"ugs/internal/ugraph"
)

// WorldPageRank computes PageRank with the given damping factor on a single
// possible world by power iteration, treating the world's present edges as
// an undirected graph. Vertices with no present edges ("dangling") spread
// their mass uniformly. The out slice must have length |V|.
func WorldPageRank(w *ugraph.World, damping float64, iters int, out []float64) {
	g := w.Graph()
	n := g.NumVertices()
	deg := make([]int, n)
	for id, present := range w.Present {
		if present {
			e := g.Edge(id)
			deg[e.U]++
			deg[e.V]++
		}
	}
	cur := out
	next := make([]float64, n)
	init := 1 / float64(n)
	for v := range cur {
		cur[v] = init
	}
	for it := 0; it < iters; it++ {
		var dangling float64
		for v := range next {
			next[v] = 0
		}
		for v := 0; v < n; v++ {
			if deg[v] == 0 {
				dangling += cur[v]
				continue
			}
			share := cur[v] / float64(deg[v])
			for _, a := range g.Neighbors(v) {
				if w.Present[a.ID] {
					next[a.To] += share
				}
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := 0; v < n; v++ {
			next[v] = base + damping*next[v]
		}
		cur, next = next, cur
	}
	if &cur[0] != &out[0] {
		copy(out, cur)
	}
}

// WorldClusteringCoefficients writes each vertex's local clustering
// coefficient in the world into out (length |V|): the fraction of pairs of
// present neighbors that are themselves connected by a present edge.
// Vertices with fewer than two present neighbors have coefficient 0.
//
// Triangles incident to u are counted by marking u's present neighbors and
// scanning their present adjacency — O(Σ_{v∈N(u)} deg(v)) with pure array
// access, avoiding per-pair hash lookups.
func WorldClusteringCoefficients(w *ugraph.World, out []float64) {
	g := w.Graph()
	n := g.NumVertices()
	mark := make([]bool, n)
	var nbrs []int
	for u := 0; u < n; u++ {
		nbrs = nbrs[:0]
		for _, a := range g.Neighbors(u) {
			if w.Present[a.ID] {
				nbrs = append(nbrs, a.To)
				mark[a.To] = true
			}
		}
		k := len(nbrs)
		if k < 2 {
			out[u] = 0
			for _, v := range nbrs {
				mark[v] = false
			}
			continue
		}
		links := 0
		for _, v := range nbrs {
			for _, a := range g.Neighbors(v) {
				if w.Present[a.ID] && a.To != u && mark[a.To] {
					links++
				}
			}
		}
		// Each closed pair was seen from both endpoints.
		out[u] = float64(links) / float64(k*(k-1))
		for _, v := range nbrs {
			mark[v] = false
		}
	}
}

// BFS is a reusable breadth-first search over possible worlds, avoiding
// per-call allocation. It is not safe for concurrent use; create one per
// goroutine.
type BFS struct {
	dist  []int
	queue []int
}

// NewBFS returns a BFS sized for graphs with n vertices.
func NewBFS(n int) *BFS {
	return &BFS{dist: make([]int, n), queue: make([]int, 0, n)}
}

// Distances computes hop distances from src to every vertex in the world
// (−1 when unreachable). The returned slice is owned by the BFS and is
// overwritten by the next call.
func (b *BFS) Distances(w *ugraph.World, src int) []int {
	g := w.Graph()
	for i := range b.dist {
		b.dist[i] = -1
	}
	b.dist[src] = 0
	b.queue = append(b.queue[:0], src)
	for head := 0; head < len(b.queue); head++ {
		u := b.queue[head]
		for _, a := range g.Neighbors(u) {
			if w.Present[a.ID] && b.dist[a.To] < 0 {
				b.dist[a.To] = b.dist[u] + 1
				b.queue = append(b.queue, a.To)
			}
		}
	}
	return b.dist
}
