// Package queries implements the four graph queries of the paper's
// evaluation — PageRank (PR), shortest-path distance (SP), reliability (RL)
// and clustering coefficient (CC) — both as deterministic per-world
// algorithms and as Monte-Carlo estimators over uncertain graphs.
package queries

import (
	"math/bits"

	"ugs/internal/ugraph"
)

// Workspace holds the scratch buffers the per-world query kernels need —
// degree counts, a PageRank iteration vector, neighbor marks, a neighbor
// list and BFS state — sized for one graph's vertex count. Reusing one
// Workspace per goroutine makes every kernel run with zero steady-state
// allocations; the Monte-Carlo engine creates one per worker. A Workspace
// is not safe for concurrent use.
type Workspace struct {
	deg  []int     // per-vertex present degree (PageRank)
	aux  []float64 // PageRank's second power-iteration vector
	mark []bool    // neighbor marks (clustering coefficient)
	nbrs []int     // present-neighbor list (clustering coefficient)
	bfs  *BFS      // breadth-first search state (SP, RL, connectivity)
}

// NewWorkspace returns a workspace for worlds of g (any graph with the same
// vertex count works).
func NewWorkspace(g *ugraph.Graph) *Workspace {
	n := g.NumVertices()
	return &Workspace{
		deg:  make([]int, n),
		aux:  make([]float64, n),
		mark: make([]bool, n),
		nbrs: make([]int, 0, n),
		bfs:  NewBFS(n),
	}
}

// PageRank computes PageRank with the given damping factor on a single
// possible world by power iteration, treating the world's present edges as
// an undirected graph. Vertices with no present edges ("dangling") spread
// their mass uniformly. The out slice must have length |V|; every entry is
// overwritten.
func (ws *Workspace) PageRank(w *ugraph.World, damping float64, iters int, out []float64) {
	g := w.Graph()
	n := g.NumVertices()
	deg := ws.deg
	for v := range deg {
		deg[v] = 0
	}
	// Present-degree pass straight off the bitset words: 64 edges per
	// word, skipping absent edges without touching them.
	for wi, word := range w.Words() {
		for word != 0 {
			e := g.Edge(wi<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			deg[e.U]++
			deg[e.V]++
		}
	}
	cur := out
	next := ws.aux
	init := 1 / float64(n)
	for v := range cur {
		cur[v] = init
	}
	for it := 0; it < iters; it++ {
		var dangling float64
		for v := range next {
			next[v] = 0
		}
		for v := 0; v < n; v++ {
			if deg[v] == 0 {
				dangling += cur[v]
				continue
			}
			share := cur[v] / float64(deg[v])
			for _, a := range g.Neighbors(v) {
				if w.Present(a.ID) {
					next[a.To] += share
				}
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := 0; v < n; v++ {
			next[v] = base + damping*next[v]
		}
		cur, next = next, cur
	}
	if &cur[0] != &out[0] {
		copy(out, cur)
	}
}

// ClusteringCoefficients writes each vertex's local clustering coefficient
// in the world into out (length |V|): the fraction of pairs of present
// neighbors that are themselves connected by a present edge. Vertices with
// fewer than two present neighbors have coefficient 0. Every entry of out
// is overwritten.
//
// Triangles incident to u are counted by marking u's present neighbors and
// scanning their present adjacency — O(Σ_{v∈N(u)} deg(v)) with pure array
// access, avoiding per-pair hash lookups.
func (ws *Workspace) ClusteringCoefficients(w *ugraph.World, out []float64) {
	g := w.Graph()
	n := g.NumVertices()
	mark := ws.mark
	nbrs := ws.nbrs
	for u := 0; u < n; u++ {
		nbrs = nbrs[:0]
		for _, a := range g.Neighbors(u) {
			if w.Present(a.ID) {
				nbrs = append(nbrs, a.To)
				mark[a.To] = true
			}
		}
		k := len(nbrs)
		if k < 2 {
			out[u] = 0
			for _, v := range nbrs {
				mark[v] = false
			}
			continue
		}
		links := 0
		for _, v := range nbrs {
			for _, a := range g.Neighbors(v) {
				if w.Present(a.ID) && a.To != u && mark[a.To] {
					links++
				}
			}
		}
		// Each closed pair was seen from both endpoints.
		out[u] = float64(links) / float64(k*(k-1))
		for _, v := range nbrs {
			mark[v] = false
		}
	}
	ws.nbrs = nbrs
}

// Distances computes hop distances from src to every vertex in the world
// (−1 when unreachable). The returned slice is owned by the workspace and
// is overwritten by the next Distances or Connected call.
func (ws *Workspace) Distances(w *ugraph.World, src int) []int {
	return ws.bfs.Distances(w, src)
}

// Connected reports whether the world's present edges connect all vertices
// of the underlying graph, without allocating (unlike World.IsConnected).
func (ws *Workspace) Connected(w *ugraph.World) bool {
	return ws.bfs.Connected(w)
}

// WorldPageRank is Workspace.PageRank with a freshly allocated workspace —
// convenient for one-shot calls and the exact-enumeration oracle; use a
// Workspace for repeated evaluation.
func WorldPageRank(w *ugraph.World, damping float64, iters int, out []float64) {
	NewWorkspace(w.Graph()).PageRank(w, damping, iters, out)
}

// WorldClusteringCoefficients is Workspace.ClusteringCoefficients with a
// freshly allocated workspace — convenient for one-shot calls and the
// exact-enumeration oracle; use a Workspace for repeated evaluation.
func WorldClusteringCoefficients(w *ugraph.World, out []float64) {
	NewWorkspace(w.Graph()).ClusteringCoefficients(w, out)
}

// BFS is a reusable breadth-first search over possible worlds, avoiding
// per-call allocation. It is not safe for concurrent use; create one per
// goroutine (or use it through a Workspace).
type BFS struct {
	dist  []int
	queue []int
}

// NewBFS returns a BFS sized for graphs with n vertices.
func NewBFS(n int) *BFS {
	return &BFS{dist: make([]int, n), queue: make([]int, 0, n)}
}

// Connected reports whether the world's present edges connect all vertices
// of the underlying graph, reusing the BFS buffers.
func (b *BFS) Connected(w *ugraph.World) bool {
	g := w.Graph()
	if g.NumVertices() <= 1 {
		return true
	}
	for _, d := range b.Distances(w, 0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Distances computes hop distances from src to every vertex in the world
// (−1 when unreachable). The returned slice is owned by the BFS and is
// overwritten by the next call.
func (b *BFS) Distances(w *ugraph.World, src int) []int {
	g := w.Graph()
	for i := range b.dist {
		b.dist[i] = -1
	}
	b.dist[src] = 0
	b.queue = append(b.queue[:0], src)
	for head := 0; head < len(b.queue); head++ {
		u := b.queue[head]
		for _, a := range g.Neighbors(u) {
			if w.Present(a.ID) && b.dist[a.To] < 0 {
				b.dist[a.To] = b.dist[u] + 1
				b.queue = append(b.queue, a.To)
			}
		}
	}
	return b.dist
}
