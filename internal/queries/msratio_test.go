package queries

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"
	"time"

	"ugs/internal/gen"
	"ugs/internal/ugraph"
)

// TestMSRatio is a manually-invoked measurement harness (UGS_MSRATIO=1): it
// interleaves per-source and multi-source passes over the same sources and
// world batch within one process and reports the paired-ratio median, which
// stays meaningful on machines whose clock budget drifts between runs.
func TestMSRatio(t *testing.T) {
	if os.Getenv("UGS_MSRATIO") == "" {
		t.Skip("set UGS_MSRATIO=1 to run the interleaved ratio harness")
	}
	nv := 100000
	if s := os.Getenv("UGS_MSRATIO_N"); s != "" {
		fmt.Sscanf(s, "%d", &nv)
	}
	g, err := gen.Social(gen.SocialConfig{N: nv, AvgDegree: 24, MeanProb: 0.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	wb := ugraph.NewWorldBatch[ugraph.Vec64](g)
	seeds := make([]int64, 64)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	ugraph.SampleBatchSeeded(g, seeds, wb)
	const nsrc = 32
	srcs := make([]int, nsrc)
	for i := range srcs {
		srcs[i] = i * n / nsrc
	}
	// Arc-expansion counts: how many expansions the union frontier performs
	// vs one generic traversal per source over the same sources and worlds.
	cnt := NewMSBFS[ugraph.Vec64](n, 32)
	var perSource int64
	for _, s := range srcs {
		off := cnt.start(wb, []int{s})
		perSource += cnt.runLevels(off)
	}
	fmt.Printf("per-source arc expansions: %d\n", perSource)
	for _, fan := range []int{4, 8, 16, 32} {
		var multi int64
		for b := 0; b < nsrc; b += fan {
			off := cnt.start(wb, srcs[b:b+fan])
			multi += cnt.runLevels(off)
		}
		fmt.Printf("fan=%d arc expansions: %d (%.2fx fewer)\n", fan, multi, float64(perSource)/float64(multi))
	}
	// Scalar engine: per-source BFS.Distances vs one 32/64-slot MSWorldBFS.
	{
		w := g.SampleWorld(rand.New(rand.NewSource(7)))
		bfs := NewBFS(n)
		ms := NewMSWorldBFS(n, nsrc)
		var ratios []float64
		for rep := 0; rep < 6; rep++ {
			t0 := time.Now()
			for _, s := range srcs {
				bfs.Distances(w, s)
			}
			base := time.Since(t0)
			t1 := time.Now()
			ms.Run(w, srcs)
			multi := time.Since(t1)
			r := float64(base) / float64(multi)
			ratios = append(ratios, r)
			fmt.Printf("scalar rep=%d base=%v multi=%v ratio=%.2f\n", rep, base, multi, r)
		}
		sort.Float64s(ratios)
		fmt.Printf("scalar (%d sources) median ratio %.2f\n", nsrc, ratios[len(ratios)/2])
	}
	for _, fan := range []int{4, 8} {
		bfs := NewMaskBFS[ugraph.Vec64](n)
		ms := NewMSBFS[ugraph.Vec64](n, fan)
		var ratios []float64
		for rep := 0; rep < 6; rep++ {
			t0 := time.Now()
			for _, s := range srcs {
				bfs.ReachFrom(wb, s)
			}
			base := time.Since(t0)
			t1 := time.Now()
			for b := 0; b < nsrc; b += fan {
				ms.ReachFrom(wb, srcs[b:b+fan])
			}
			multi := time.Since(t1)
			r := float64(base) / float64(multi)
			ratios = append(ratios, r)
			fmt.Printf("fan=%d rep=%d base=%v multi=%v ratio=%.2f\n", fan, rep, base, multi, r)
		}
		sort.Float64s(ratios)
		fmt.Printf("fan=%d median ratio %.2f\n", fan, ratios[len(ratios)/2])
	}
}
