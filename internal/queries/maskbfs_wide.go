package queries

import (
	"math/bits"

	"ugs/internal/ugraph"
)

// Width-specialized level loops for the wide mask-BFS kernels.
//
// Go's SSA backend registerizes arrays only up to one element, so the
// generic runLevels — where every vector op collapses to a single register
// word at Vec64 — degrades badly at Vec128/Vec256: each VecFrontier/VecOr
// round-trips its [2]uint64 or [4]uint64 operands through the stack, three
// array copies per arc on the hottest line of the engine. These loops are
// line-for-line transcriptions of runLevels with the frontier words held in
// scalar locals and the per-arc state accessed through pointers, which is
// what the compiler needs to keep the whole inner loop in registers. They
// must stay bit-identical to runLevels; TestMaskBFSSpecializedMatchesGeneric
// replays the generic loop against each kernel, and the per-lane scalar-BFS
// oracle tests pin both to the reference semantics.

func runLevels64(b *MaskBFS[ugraph.Vec64], off []int32) {
	arcs := b.arcs
	reach, cur, next, depthSum := b.reach, b.cur, b.next, b.depthSum
	curQ, nextQ := b.curQ, b.nextQ
	n := len(reach)
	depth := 0
	for len(curQ) > 0 {
		depth++
		vol := 0
		for _, ui := range curQ {
			vol += int(off[ui+1] - off[ui])
		}
		nextQ = nextQ[:0]
		if vol >= n/8 {
			for _, ui := range curQ {
				u := int(ui)
				f0 := cur[u][0]
				cur[u] = ugraph.Vec64{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := a.to
					next[v][0] |= f0 & a.mask[0] &^ reach[v][0]
				}
			}
			for v := range next {
				if n0 := next[v][0]; n0 != 0 {
					next[v] = ugraph.Vec64{}
					reach[v][0] |= n0
					depthSum[v] += int64(depth) * int64(bits.OnesCount64(n0))
					cur[v] = ugraph.Vec64{n0}
					nextQ = append(nextQ, int32(v))
				}
			}
		} else {
			for _, ui := range curQ {
				u := int(ui)
				f0 := cur[u][0]
				cur[u] = ugraph.Vec64{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := a.to
					m0 := f0 & a.mask[0] &^ reach[v][0]
					p0 := next[v][0]
					next[v][0] = p0 | m0
					if p0 == 0 && m0 != 0 {
						nextQ = append(nextQ, int32(v))
					}
				}
			}
			for _, vi := range nextQ {
				v := int(vi)
				n0 := next[v][0] // disjoint from reach[v]: masked at insertion
				next[v] = ugraph.Vec64{}
				reach[v][0] |= n0
				depthSum[v] += int64(depth) * int64(bits.OnesCount64(n0))
				cur[v] = ugraph.Vec64{n0}
			}
		}
		curQ, nextQ = nextQ, curQ[:0]
	}
	b.curQ, b.nextQ = curQ[:0], nextQ[:0]
}

func runLevels128(b *MaskBFS[ugraph.Vec128], off []int32) {
	arcs := b.arcs
	reach, cur, next, depthSum := b.reach, b.cur, b.next, b.depthSum
	curQ, nextQ := b.curQ, b.nextQ
	n := len(reach)
	depth := 0
	for len(curQ) > 0 {
		depth++
		vol := 0
		for _, ui := range curQ {
			vol += int(off[ui+1] - off[ui])
		}
		nextQ = nextQ[:0]
		if vol >= n/8 {
			for _, ui := range curQ {
				u := int(ui)
				f0, f1 := cur[u][0], cur[u][1]
				cur[u] = ugraph.Vec128{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := a.to
					r := &reach[v]
					nx := &next[v]
					nx[0] |= f0 & a.mask[0] &^ r[0]
					nx[1] |= f1 & a.mask[1] &^ r[1]
				}
			}
			for v := range next {
				n0, n1 := next[v][0], next[v][1]
				if n0|n1 != 0 {
					next[v] = ugraph.Vec128{}
					reach[v][0] |= n0
					reach[v][1] |= n1
					depthSum[v] += int64(depth) * int64(bits.OnesCount64(n0)+bits.OnesCount64(n1))
					cur[v] = ugraph.Vec128{n0, n1}
					nextQ = append(nextQ, int32(v))
				}
			}
		} else {
			for _, ui := range curQ {
				u := int(ui)
				f0, f1 := cur[u][0], cur[u][1]
				cur[u] = ugraph.Vec128{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := a.to
					r := &reach[v]
					m0 := f0 & a.mask[0] &^ r[0]
					m1 := f1 & a.mask[1] &^ r[1]
					nx := &next[v]
					p0, p1 := nx[0], nx[1]
					nx[0] = p0 | m0
					nx[1] = p1 | m1
					if p0|p1 == 0 && m0|m1 != 0 {
						nextQ = append(nextQ, int32(v))
					}
				}
			}
			for _, vi := range nextQ {
				v := int(vi)
				n0, n1 := next[v][0], next[v][1] // disjoint from reach[v]: masked at insertion
				next[v] = ugraph.Vec128{}
				reach[v][0] |= n0
				reach[v][1] |= n1
				depthSum[v] += int64(depth) * int64(bits.OnesCount64(n0)+bits.OnesCount64(n1))
				cur[v] = ugraph.Vec128{n0, n1}
			}
		}
		curQ, nextQ = nextQ, curQ[:0]
	}
	b.curQ, b.nextQ = curQ[:0], nextQ[:0]
}

func runLevels256(b *MaskBFS[ugraph.Vec256], off []int32) {
	arcs := b.arcs
	reach, cur, next, depthSum := b.reach, b.cur, b.next, b.depthSum
	curQ, nextQ := b.curQ, b.nextQ
	n := len(reach)
	depth := 0
	for len(curQ) > 0 {
		depth++
		vol := 0
		for _, ui := range curQ {
			vol += int(off[ui+1] - off[ui])
		}
		nextQ = nextQ[:0]
		if vol >= n/8 {
			for _, ui := range curQ {
				u := int(ui)
				f0, f1, f2, f3 := cur[u][0], cur[u][1], cur[u][2], cur[u][3]
				cur[u] = ugraph.Vec256{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := a.to
					r := &reach[v]
					nx := &next[v]
					nx[0] |= f0 & a.mask[0] &^ r[0]
					nx[1] |= f1 & a.mask[1] &^ r[1]
					nx[2] |= f2 & a.mask[2] &^ r[2]
					nx[3] |= f3 & a.mask[3] &^ r[3]
				}
			}
			for v := range next {
				n0, n1, n2, n3 := next[v][0], next[v][1], next[v][2], next[v][3]
				if n0|n1|n2|n3 != 0 {
					next[v] = ugraph.Vec256{}
					reach[v][0] |= n0
					reach[v][1] |= n1
					reach[v][2] |= n2
					reach[v][3] |= n3
					depthSum[v] += int64(depth) * int64(bits.OnesCount64(n0)+bits.OnesCount64(n1)+bits.OnesCount64(n2)+bits.OnesCount64(n3))
					cur[v] = ugraph.Vec256{n0, n1, n2, n3}
					nextQ = append(nextQ, int32(v))
				}
			}
		} else {
			for _, ui := range curQ {
				u := int(ui)
				f0, f1, f2, f3 := cur[u][0], cur[u][1], cur[u][2], cur[u][3]
				cur[u] = ugraph.Vec256{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := a.to
					r := &reach[v]
					m0 := f0 & a.mask[0] &^ r[0]
					m1 := f1 & a.mask[1] &^ r[1]
					m2 := f2 & a.mask[2] &^ r[2]
					m3 := f3 & a.mask[3] &^ r[3]
					nx := &next[v]
					p0, p1, p2, p3 := nx[0], nx[1], nx[2], nx[3]
					nx[0] = p0 | m0
					nx[1] = p1 | m1
					nx[2] = p2 | m2
					nx[3] = p3 | m3
					if p0|p1|p2|p3 == 0 && m0|m1|m2|m3 != 0 {
						nextQ = append(nextQ, int32(v))
					}
				}
			}
			for _, vi := range nextQ {
				v := int(vi)
				n0, n1, n2, n3 := next[v][0], next[v][1], next[v][2], next[v][3] // disjoint from reach[v]
				next[v] = ugraph.Vec256{}
				reach[v][0] |= n0
				reach[v][1] |= n1
				reach[v][2] |= n2
				reach[v][3] |= n3
				depthSum[v] += int64(depth) * int64(bits.OnesCount64(n0)+bits.OnesCount64(n1)+bits.OnesCount64(n2)+bits.OnesCount64(n3))
				cur[v] = ugraph.Vec256{n0, n1, n2, n3}
			}
		}
		curQ, nextQ = nextQ, curQ[:0]
	}
	b.curQ, b.nextQ = curQ[:0], nextQ[:0]
}
