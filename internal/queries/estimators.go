package queries

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"ugs/internal/mc"
	"ugs/internal/ugraph"
)

// PageRankOptions tunes the PR estimator.
type PageRankOptions struct {
	Damping float64 // default 0.85
	Iters   int     // power iterations per world, default 30
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Iters == 0 {
		o.Iters = 30
	}
	return o
}

// ExpectedPageRank estimates each vertex's expected PageRank over the
// possible worlds of g.
func ExpectedPageRank(g *ugraph.Graph, opts mc.Options, pr PageRankOptions) []float64 {
	pr = pr.withDefaults()
	return mc.MeanVector(g, opts, g.NumVertices(), func(w *ugraph.World, out []float64) {
		WorldPageRank(w, pr.Damping, pr.Iters, out)
	})
}

// ExpectedClusteringCoefficients estimates each vertex's expected local
// clustering coefficient over the possible worlds of g.
func ExpectedClusteringCoefficients(g *ugraph.Graph, opts mc.Options) []float64 {
	return mc.MeanVector(g, opts, g.NumVertices(), WorldClusteringCoefficients)
}

// Pair is a source/target vertex pair for SP and RL queries.
type Pair struct{ S, T int }

// RandomPairs draws count distinct-endpoint vertex pairs uniformly at
// random (the paper evaluates SP and RL on 1000 random pairs).
func RandomPairs(n, count int, rng *rand.Rand) []Pair {
	pairs := make([]Pair, count)
	for i := range pairs {
		s := rng.Intn(n)
		t := rng.Intn(n - 1)
		if t >= s {
			t++
		}
		pairs[i] = Pair{S: s, T: t}
	}
	return pairs
}

// Reliability estimates, for each pair, the probability that T is reachable
// from S (the RL query).
func Reliability(g *ugraph.Graph, pairs []Pair, opts mc.Options) []float64 {
	res := pairStats(g, pairs, opts)
	out := make([]float64, len(pairs))
	for i, r := range res {
		out[i] = float64(r.reachable) / float64(r.samples)
	}
	return out
}

// ShortestDistance estimates, for each pair, the expected shortest-path
// distance conditioned on reachability: the average hop distance over the
// worlds that connect the pair, excluding disconnecting worlds (the SP
// query). Pairs never connected in any sample get NaN.
func ShortestDistance(g *ugraph.Graph, pairs []Pair, opts mc.Options) []float64 {
	res := pairStats(g, pairs, opts)
	out := make([]float64, len(pairs))
	for i, r := range res {
		if r.reachable == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = r.distSum / float64(r.reachable)
		}
	}
	return out
}

// ShortestDistanceAndReliability computes the SP and RL estimates of both
// queries from a single Monte-Carlo pass (one BFS per distinct source per
// world), which is how the experiment harness evaluates them together.
func ShortestDistanceAndReliability(g *ugraph.Graph, pairs []Pair, opts mc.Options) (sp, rl []float64) {
	res := pairStats(g, pairs, opts)
	sp = make([]float64, len(pairs))
	rl = make([]float64, len(pairs))
	for i, r := range res {
		rl[i] = float64(r.reachable) / float64(r.samples)
		if r.reachable == 0 {
			sp[i] = math.NaN()
		} else {
			sp[i] = r.distSum / float64(r.reachable)
		}
	}
	return sp, rl
}

type pairResult struct {
	reachable int
	samples   int
	distSum   float64
}

// pairStats runs one BFS per distinct source per world, sharing it across
// all pairs with that source.
func pairStats(g *ugraph.Graph, pairs []Pair, opts mc.Options) []pairResult {
	// Group pair indices by source.
	bySource := make(map[int][]int)
	for i, p := range pairs {
		bySource[p.S] = append(bySource[p.S], i)
	}
	sources := make([]int, 0, len(bySource))
	for s := range bySource {
		sources = append(sources, s)
	}
	sort.Ints(sources)

	res := make([]pairResult, len(pairs))
	var mu sync.Mutex
	bfsPool := sync.Pool{New: func() interface{} { return NewBFS(g.NumVertices()) }}

	mc.ForEachWorld(g, opts, func(_ int, w *ugraph.World) {
		bfs := bfsPool.Get().(*BFS)
		local := make([]pairResult, len(pairs))
		for _, s := range sources {
			dist := bfs.Distances(w, s)
			for _, i := range bySource[s] {
				local[i].samples++
				if d := dist[pairs[i].T]; d >= 0 {
					local[i].reachable++
					local[i].distSum += float64(d)
				}
			}
		}
		bfsPool.Put(bfs)
		mu.Lock()
		for i := range res {
			res[i].samples += local[i].samples
			res[i].reachable += local[i].reachable
			res[i].distSum += local[i].distSum
		}
		mu.Unlock()
	})
	return res
}

// ConnectedProbability estimates Pr[G is connected] — the introductory
// example query of the paper (Figure 1).
func ConnectedProbability(g *ugraph.Graph, opts mc.Options) float64 {
	return mc.ProbabilityOf(g, opts, func(w *ugraph.World) bool { return w.IsConnected() })
}
