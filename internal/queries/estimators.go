package queries

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"ugs/internal/mc"
	"ugs/internal/ugraph"
)

// PageRankOptions tunes the PR estimator.
type PageRankOptions struct {
	Damping float64 // default 0.85
	Iters   int     // power iterations per world, default 30
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Iters == 0 {
		o.Iters = 30
	}
	return o
}

// ExpectedPageRank estimates each vertex's expected PageRank over the
// possible worlds of g. A vector-valued query: always scalar worlds (the
// planner never routes it to the batch engine). Each engine worker reuses
// one Workspace, so the sample path does not allocate.
func ExpectedPageRank(ctx context.Context, g *ugraph.Graph, opts mc.Options, pr PageRankOptions) ([]float64, error) {
	pr = pr.withDefaults()
	return mc.MeanVectorLocal(ctx, g, opts, g.NumVertices(),
		func() *Workspace { return NewWorkspace(g) },
		func(w *ugraph.World, ws *Workspace, out []float64) {
			ws.PageRank(w, pr.Damping, pr.Iters, out)
		},
	)
}

// ExpectedClusteringCoefficients estimates each vertex's expected local
// clustering coefficient over the possible worlds of g. A vector-valued
// query: always scalar worlds. Each engine worker reuses one Workspace, so
// the sample path does not allocate.
func ExpectedClusteringCoefficients(ctx context.Context, g *ugraph.Graph, opts mc.Options) ([]float64, error) {
	return mc.MeanVectorLocal(ctx, g, opts, g.NumVertices(),
		func() *Workspace { return NewWorkspace(g) },
		func(w *ugraph.World, ws *Workspace, out []float64) {
			ws.ClusteringCoefficients(w, out)
		},
	)
}

// Pair is a source/target vertex pair for SP and RL queries.
type Pair struct{ S, T int }

// RandomPairs draws count distinct-endpoint vertex pairs uniformly at
// random (the paper evaluates SP and RL on 1000 random pairs). Self-pairs
// s == t are never produced — their reliability is trivially 1 and their
// distance trivially 0, which would skew the Figure 10 averages — so n must
// be at least 2 when count > 0.
func RandomPairs(n, count int, rng *rand.Rand) []Pair {
	if count > 0 && n < 2 {
		panic("queries: RandomPairs needs at least 2 vertices for distinct-endpoint pairs")
	}
	pairs := make([]Pair, count)
	for i := range pairs {
		// Draw t from the n−1 non-s vertices directly (shifting past s)
		// instead of rejection sampling: same uniform distribution over
		// distinct pairs, fixed two draws per pair.
		s := rng.Intn(n)
		t := rng.Intn(n - 1)
		if t >= s {
			t++
		}
		pairs[i] = Pair{S: s, T: t}
	}
	return pairs
}

// Reliability estimates, for each pair, the probability that T is reachable
// from S (the RL query). It runs on the bit-parallel batch engine at the
// width opts.Lanes selects (auto-planned by default) unless the scalar
// ablation is requested; every width is bit-identical.
func Reliability(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]float64, error) {
	out, _, err := ReliabilityRun(ctx, g, pairs, opts)
	return out, err
}

// ReliabilityRun is Reliability plus the run report: the worlds actually
// sampled and, for sequential-stopping runs (opts.Target), the rounds taken
// and whether the confidence target was met before MaxSamples.
func ReliabilityRun(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]float64, mc.RunInfo, error) {
	res, info, err := pairStats(ctx, g, pairs, opts)
	if err != nil {
		return nil, mc.RunInfo{}, err
	}
	out := make([]float64, len(pairs))
	for i, r := range res {
		out[i] = float64(r.reachable) / float64(r.samples)
	}
	return out, info, nil
}

// ShortestDistance estimates, for each pair, the expected shortest-path
// distance conditioned on reachability: the average hop distance over the
// worlds that connect the pair, excluding disconnecting worlds (the SP
// query). Pairs never connected in any sample get NaN.
func ShortestDistance(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]float64, error) {
	res, _, err := pairStats(ctx, g, pairs, opts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(pairs))
	for i, r := range res {
		if r.reachable == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = r.distSum / float64(r.reachable)
		}
	}
	return out, nil
}

// ShortestDistanceAndReliability computes the SP and RL estimates of both
// queries from a single Monte-Carlo pass (one traversal per distinct source
// per world batch — or per world under the scalar ablation), which is how
// the experiment harness evaluates them together.
func ShortestDistanceAndReliability(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) (sp, rl []float64, err error) {
	sp, rl, _, err = ShortestDistanceAndReliabilityRun(ctx, g, pairs, opts)
	return sp, rl, err
}

// ShortestDistanceAndReliabilityRun is ShortestDistanceAndReliability plus
// the run report (see ReliabilityRun).
func ShortestDistanceAndReliabilityRun(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) (sp, rl []float64, info mc.RunInfo, err error) {
	res, info, err := pairStats(ctx, g, pairs, opts)
	if err != nil {
		return nil, nil, mc.RunInfo{}, err
	}
	sp = make([]float64, len(pairs))
	rl = make([]float64, len(pairs))
	for i, r := range res {
		rl[i] = float64(r.reachable) / float64(r.samples)
		if r.reachable == 0 {
			sp[i] = math.NaN()
		} else {
			sp[i] = r.distSum / float64(r.reachable)
		}
	}
	return sp, rl, info, nil
}

type pairResult struct {
	reachable int
	samples   int
	distSum   float64
}

// groupPairsBySource groups pair indices by their source vertex so one
// traversal per (world-batch, source) serves every pair with that source.
func groupPairsBySource(pairs []Pair) (bySource map[int][]int, sources []int) {
	bySource = make(map[int][]int)
	for i, p := range pairs {
		bySource[p.S] = append(bySource[p.S], i)
	}
	sources = make([]int, 0, len(bySource))
	for s := range bySource {
		sources = append(sources, s)
	}
	sort.Ints(sources)
	return bySource, sources
}

func mergePairResults(dst, src []pairResult) {
	for i := range dst {
		dst[i].samples += src[i].samples
		dst[i].reachable += src[i].reachable
		dst[i].distSum += src[i].distSum
	}
}

// pairStats runs SP/RL accumulation for the pairs: a single fixed-budget
// engine pass at the planned lane width, or — when opts.Target asks for
// sequential stopping — deterministic doubling rounds until every pair's
// reliability confidence interval has half-width ≤ Eps (the SP estimate is
// a conditional mean over the same worlds, so it tightens alongside). All
// execution paths accumulate integer-valued quantities (hit counts and sums
// of hop distances, exact in float64), so their results are bit-identical
// on the same seed for every Workers value and every lane width.
func pairStats(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]pairResult, mc.RunInfo, error) {
	if err := opts.Validate(); err != nil {
		return nil, mc.RunInfo{}, err
	}
	if opts.Target != nil {
		return pairStatsAdaptive(ctx, g, pairs, opts)
	}
	lanes := planLanes(g, opts, KindPair)
	fan := planFanOut(g, opts, countDistinctSources(pairs), lanes)
	res, err := pairStatsFixed(ctx, g, pairs, opts, lanes, fan)
	if err != nil {
		return nil, mc.RunInfo{}, err
	}
	return res, mc.RunInfo{Samples: opts.WithDefaults().Samples, Rounds: 1, Converged: true}, nil
}

// countDistinctSources is the fan-out planner's input: a group can never
// usefully exceed the number of distinct traversal roots.
func countDistinctSources(pairs []Pair) int {
	seen := make(map[int]struct{}, len(pairs))
	for _, p := range pairs {
		seen[p.S] = struct{}{}
	}
	return len(seen)
}

// pairStatsFixed dispatches one fixed-budget pass to the engine width and
// source fan-out the planner (or explicit Options) chose: fan > 1 routes
// through the multi-source kernels, which group distinct sources into
// fan-sized traversal passes.
func pairStatsFixed(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options, lanes, fan int) ([]pairResult, error) {
	if fan > 1 {
		switch lanes {
		case 1:
			return pairStatsScalarMulti(ctx, g, pairs, opts, fan)
		case ugraph.BatchLanes:
			return pairStatsMulti[ugraph.Vec64](ctx, g, pairs, opts, fan)
		case 2 * ugraph.BatchLanes:
			return pairStatsMulti[ugraph.Vec128](ctx, g, pairs, opts, fan)
		default:
			return pairStatsMulti[ugraph.Vec256](ctx, g, pairs, opts, fan)
		}
	}
	switch lanes {
	case 1:
		return pairStatsScalar(ctx, g, pairs, opts)
	case ugraph.BatchLanes:
		return pairStatsBatch[ugraph.Vec64](ctx, g, pairs, opts)
	case 2 * ugraph.BatchLanes:
		return pairStatsBatch[ugraph.Vec128](ctx, g, pairs, opts)
	default:
		return pairStatsBatch[ugraph.Vec256](ctx, g, pairs, opts)
	}
}

// pairStatsAdaptive drives the sequential-stopping schedule: each round is
// a fixed-budget pass over the next stretch of the sample stream (via
// Options.Offset, so no world is ever redrawn), and between rounds every
// pair's Bernoulli reliability CI is checked against the target. The lane
// width and source fan-out are planned once and pinned for all rounds
// (fan-out never changes results, but pinning keeps every round on the
// calibrated execution plan).
func pairStatsAdaptive(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]pairResult, mc.RunInfo, error) {
	t := opts.Target.WithDefaults()
	lanes := planLanes(g, opts, KindPair)
	if lanes < ugraph.BatchLanes {
		lanes = ugraph.BatchLanes
	}
	fan := planFanOut(g, opts, countDistinctSources(pairs), lanes)
	acc := make([]pairResult, len(pairs))
	run := func(offset, n int) error {
		o := opts
		o.Target = nil
		o.Offset = opts.Offset + offset
		o.Samples = n
		o.Lanes = lanes
		o.FanOut = fan
		res, err := pairStatsFixed(ctx, g, pairs, o, lanes, fan)
		if err != nil {
			return err
		}
		mergePairResults(acc, res)
		return nil
	}
	met := func(total int) bool {
		for i := range acc {
			if t.HalfWidth(acc[i].reachable, total) > t.Eps {
				return false
			}
		}
		return true
	}
	info, err := mc.RunAdaptive(opts.Target, run, met)
	if err != nil {
		return nil, mc.RunInfo{}, err
	}
	for i := range acc {
		if hw := t.HalfWidth(acc[i].reachable, info.Samples); hw > info.AchievedEps {
			info.AchievedEps = hw
		}
	}
	return acc, info, nil
}

// pairStatsBatch runs one mask-BFS per distinct source per world batch: the
// traversal settles every lane's distance in a single pass, and the
// per-target reachability popcount and depth sum fold VecLanes[V] worlds of
// SP/RL evidence per pair in O(1). Each engine worker reuses one MaskBFS.
func pairStatsBatch[V ugraph.Vec](ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]pairResult, error) {
	bySource, sources := groupPairsBySource(pairs)
	return mc.ReduceBatch(ctx, g, opts,
		func() *MaskBFS[V] { return NewMaskBFS[V](g.NumVertices()) },
		func() []pairResult { return make([]pairResult, len(pairs)) },
		func(_ int, wb *ugraph.WorldBatch[V], bfs *MaskBFS[V], acc []pairResult) {
			lanes := wb.Lanes()
			for _, s := range sources {
				reach := bfs.ReachFrom(wb, s)
				depthSum := bfs.DepthSums()
				for _, i := range bySource[s] {
					t := pairs[i].T
					acc[i].samples += lanes
					acc[i].reachable += ugraph.VecOnesCount(reach[t])
					acc[i].distSum += float64(depthSum[t])
				}
			}
		},
		mergePairResults,
	)
}

// pairStatsMulti runs one multi-source mask-BFS per fan-sized group of
// distinct sources per world batch: the grouped traversal expands each CSR
// arc once per level for the whole group, amortizing the arc stream and
// level control flow across sources the way the lane transposition
// amortizes them across worlds. Source slots never mix, so every pair's
// reachability popcount and depth sum are the exact values the per-source
// path (pairStatsBatch) accumulates. Each engine worker reuses one MSBFS.
func pairStatsMulti[V ugraph.Vec](ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options, fan int) ([]pairResult, error) {
	bySource, sources := groupPairsBySource(pairs)
	return mc.ReduceBatch(ctx, g, opts,
		func() *MSBFS[V] { return NewMSBFS[V](g.NumVertices(), fan) },
		func() []pairResult { return make([]pairResult, len(pairs)) },
		func(_ int, wb *ugraph.WorldBatch[V], ms *MSBFS[V], acc []pairResult) {
			lanes := wb.Lanes()
			for base := 0; base < len(sources); base += fan {
				end := base + fan
				if end > len(sources) {
					end = len(sources)
				}
				grp := sources[base:end]
				ms.ReachFrom(wb, grp)
				for k, s := range grp {
					for _, i := range bySource[s] {
						t := pairs[i].T
						acc[i].samples += lanes
						acc[i].reachable += ugraph.VecOnesCount(ms.Reach(t, k))
						acc[i].distSum += float64(ms.DepthSum(t, k))
					}
				}
			}
		},
		mergePairResults,
	)
}

// pairStatsScalarMulti is the scalar-world ablation of pairStatsMulti: one
// source-bitmask BFS per fan-sized group per world, walking each present
// arc of a level once for the whole group. Per-pair results are exactly
// pairStatsScalar's.
func pairStatsScalarMulti(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options, fan int) ([]pairResult, error) {
	bySource, sources := groupPairsBySource(pairs)
	return mc.Reduce(ctx, g, opts,
		func() *MSWorldBFS { return NewMSWorldBFS(g.NumVertices(), fan) },
		func() []pairResult { return make([]pairResult, len(pairs)) },
		func(_ int, w *ugraph.World, ms *MSWorldBFS, acc []pairResult) {
			for base := 0; base < len(sources); base += fan {
				end := base + fan
				if end > len(sources) {
					end = len(sources)
				}
				grp := sources[base:end]
				ms.Run(w, grp)
				for k, s := range grp {
					for _, i := range bySource[s] {
						acc[i].samples++
						if d := ms.Dist(pairs[i].T, k); d >= 0 {
							acc[i].reachable++
							acc[i].distSum += float64(d)
						}
					}
				}
			}
		},
		mergePairResults,
	)
}

// pairStatsScalar runs one BFS per distinct source per world, sharing it
// across all pairs with that source. Each engine worker reuses one BFS;
// per-block accumulators keep the sample path lock- and allocation-free.
func pairStatsScalar(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]pairResult, error) {
	bySource, sources := groupPairsBySource(pairs)
	return mc.Reduce(ctx, g, opts,
		func() *BFS { return NewBFS(g.NumVertices()) },
		func() []pairResult { return make([]pairResult, len(pairs)) },
		func(_ int, w *ugraph.World, bfs *BFS, acc []pairResult) {
			for _, s := range sources {
				dist := bfs.Distances(w, s)
				for _, i := range bySource[s] {
					acc[i].samples++
					if d := dist[pairs[i].T]; d >= 0 {
						acc[i].reachable++
						acc[i].distSum += float64(d)
					}
				}
			}
		},
		mergePairResults,
	)
}

// hitStats is the Bernoulli accumulator of the connectivity estimator.
type hitStats struct{ hits, n int }

func mergeHitStats(dst, src *hitStats) {
	dst.hits += src.hits
	dst.n += src.n
}

// ConnectedProbability estimates Pr[G is connected] — the introductory
// example query of the paper (Figure 1). One mask-BFS plus an AND-sweep
// checks a full lane vector of sampled worlds per traversal; the scalar
// ablation walks one world per BFS instead. Hit counts are integers, so
// every path, width and Workers value agrees bit-identically.
func ConnectedProbability(ctx context.Context, g *ugraph.Graph, opts mc.Options) (float64, error) {
	p, _, err := ConnectedProbabilityRun(ctx, g, opts)
	return p, err
}

// ConnectedProbabilityRun is ConnectedProbability plus the run report (see
// ReliabilityRun).
func ConnectedProbabilityRun(ctx context.Context, g *ugraph.Graph, opts mc.Options) (float64, mc.RunInfo, error) {
	if err := opts.Validate(); err != nil {
		return 0, mc.RunInfo{}, err
	}
	if opts.Target != nil {
		return connectedAdaptive(ctx, g, opts)
	}
	st, err := connectedFixed(ctx, g, opts, planLanes(g, opts, KindConnectivity))
	if err != nil {
		return 0, mc.RunInfo{}, err
	}
	return float64(st.hits) / float64(st.n),
		mc.RunInfo{Samples: st.n, Rounds: 1, Converged: true}, nil
}

func connectedFixed(ctx context.Context, g *ugraph.Graph, opts mc.Options, lanes int) (*hitStats, error) {
	switch lanes {
	case 1:
		return mc.Reduce(ctx, g, opts,
			func() *BFS { return NewBFS(g.NumVertices()) },
			func() *hitStats { return &hitStats{} },
			func(_ int, w *ugraph.World, bfs *BFS, acc *hitStats) {
				acc.n++
				if bfs.Connected(w) {
					acc.hits++
				}
			},
			mergeHitStats,
		)
	case ugraph.BatchLanes:
		return connectedBatch[ugraph.Vec64](ctx, g, opts)
	case 2 * ugraph.BatchLanes:
		return connectedBatch[ugraph.Vec128](ctx, g, opts)
	default:
		return connectedBatch[ugraph.Vec256](ctx, g, opts)
	}
}

func connectedBatch[V ugraph.Vec](ctx context.Context, g *ugraph.Graph, opts mc.Options) (*hitStats, error) {
	return mc.ReduceBatch(ctx, g, opts,
		func() *MaskBFS[V] { return NewMaskBFS[V](g.NumVertices()) },
		func() *hitStats { return &hitStats{} },
		func(_ int, wb *ugraph.WorldBatch[V], bfs *MaskBFS[V], acc *hitStats) {
			acc.n += wb.Lanes()
			acc.hits += ugraph.VecOnesCount(bfs.ConnectedLanes(wb))
		},
		mergeHitStats,
	)
}

func connectedAdaptive(ctx context.Context, g *ugraph.Graph, opts mc.Options) (float64, mc.RunInfo, error) {
	t := opts.Target.WithDefaults()
	lanes := planLanes(g, opts, KindConnectivity)
	if lanes < ugraph.BatchLanes {
		lanes = ugraph.BatchLanes
	}
	acc := hitStats{}
	run := func(offset, n int) error {
		o := opts
		o.Target = nil
		o.Offset = opts.Offset + offset
		o.Samples = n
		o.Lanes = lanes
		st, err := connectedFixed(ctx, g, o, lanes)
		if err != nil {
			return err
		}
		mergeHitStats(&acc, st)
		return nil
	}
	met := func(total int) bool {
		return t.HalfWidth(acc.hits, total) <= t.Eps
	}
	info, err := mc.RunAdaptive(opts.Target, run, met)
	if err != nil {
		return 0, mc.RunInfo{}, err
	}
	info.AchievedEps = t.HalfWidth(acc.hits, info.Samples)
	return float64(acc.hits) / float64(acc.n), info, nil
}
