package queries

import (
	"context"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"ugs/internal/mc"
	"ugs/internal/ugraph"
)

// PageRankOptions tunes the PR estimator.
type PageRankOptions struct {
	Damping float64 // default 0.85
	Iters   int     // power iterations per world, default 30
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Iters == 0 {
		o.Iters = 30
	}
	return o
}

// ExpectedPageRank estimates each vertex's expected PageRank over the
// possible worlds of g. Each engine worker reuses one Workspace, so the
// sample path does not allocate.
func ExpectedPageRank(ctx context.Context, g *ugraph.Graph, opts mc.Options, pr PageRankOptions) ([]float64, error) {
	pr = pr.withDefaults()
	return mc.MeanVectorLocal(ctx, g, opts, g.NumVertices(),
		func() *Workspace { return NewWorkspace(g) },
		func(w *ugraph.World, ws *Workspace, out []float64) {
			ws.PageRank(w, pr.Damping, pr.Iters, out)
		},
	)
}

// ExpectedClusteringCoefficients estimates each vertex's expected local
// clustering coefficient over the possible worlds of g. Each engine worker
// reuses one Workspace, so the sample path does not allocate.
func ExpectedClusteringCoefficients(ctx context.Context, g *ugraph.Graph, opts mc.Options) ([]float64, error) {
	return mc.MeanVectorLocal(ctx, g, opts, g.NumVertices(),
		func() *Workspace { return NewWorkspace(g) },
		func(w *ugraph.World, ws *Workspace, out []float64) {
			ws.ClusteringCoefficients(w, out)
		},
	)
}

// Pair is a source/target vertex pair for SP and RL queries.
type Pair struct{ S, T int }

// RandomPairs draws count distinct-endpoint vertex pairs uniformly at
// random (the paper evaluates SP and RL on 1000 random pairs). Self-pairs
// s == t are never produced — their reliability is trivially 1 and their
// distance trivially 0, which would skew the Figure 10 averages — so n must
// be at least 2 when count > 0.
func RandomPairs(n, count int, rng *rand.Rand) []Pair {
	if count > 0 && n < 2 {
		panic("queries: RandomPairs needs at least 2 vertices for distinct-endpoint pairs")
	}
	pairs := make([]Pair, count)
	for i := range pairs {
		// Draw t from the n−1 non-s vertices directly (shifting past s)
		// instead of rejection sampling: same uniform distribution over
		// distinct pairs, fixed two draws per pair.
		s := rng.Intn(n)
		t := rng.Intn(n - 1)
		if t >= s {
			t++
		}
		pairs[i] = Pair{S: s, T: t}
	}
	return pairs
}

// Reliability estimates, for each pair, the probability that T is reachable
// from S (the RL query). It runs on the bit-parallel 64-world batch engine
// unless opts.Scalar selects the per-world path; both are bit-identical.
func Reliability(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]float64, error) {
	res, err := pairStats(ctx, g, pairs, opts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(pairs))
	for i, r := range res {
		out[i] = float64(r.reachable) / float64(r.samples)
	}
	return out, nil
}

// ShortestDistance estimates, for each pair, the expected shortest-path
// distance conditioned on reachability: the average hop distance over the
// worlds that connect the pair, excluding disconnecting worlds (the SP
// query). Pairs never connected in any sample get NaN.
func ShortestDistance(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]float64, error) {
	res, err := pairStats(ctx, g, pairs, opts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(pairs))
	for i, r := range res {
		if r.reachable == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = r.distSum / float64(r.reachable)
		}
	}
	return out, nil
}

// ShortestDistanceAndReliability computes the SP and RL estimates of both
// queries from a single Monte-Carlo pass (one traversal per distinct source
// per 64-world batch — or per world under opts.Scalar), which is how the
// experiment harness evaluates them together.
func ShortestDistanceAndReliability(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) (sp, rl []float64, err error) {
	res, err := pairStats(ctx, g, pairs, opts)
	if err != nil {
		return nil, nil, err
	}
	sp = make([]float64, len(pairs))
	rl = make([]float64, len(pairs))
	for i, r := range res {
		rl[i] = float64(r.reachable) / float64(r.samples)
		if r.reachable == 0 {
			sp[i] = math.NaN()
		} else {
			sp[i] = r.distSum / float64(r.reachable)
		}
	}
	return sp, rl, nil
}

type pairResult struct {
	reachable int
	samples   int
	distSum   float64
}

// groupPairsBySource groups pair indices by their source vertex so one
// traversal per (world-batch, source) serves every pair with that source.
func groupPairsBySource(pairs []Pair) (bySource map[int][]int, sources []int) {
	bySource = make(map[int][]int)
	for i, p := range pairs {
		bySource[p.S] = append(bySource[p.S], i)
	}
	sources = make([]int, 0, len(bySource))
	for s := range bySource {
		sources = append(sources, s)
	}
	sort.Ints(sources)
	return bySource, sources
}

func mergePairResults(dst, src []pairResult) {
	for i := range dst {
		dst[i].samples += src[i].samples
		dst[i].reachable += src[i].reachable
		dst[i].distSum += src[i].distSum
	}
}

// pairStats dispatches SP/RL accumulation to the bit-parallel batch engine,
// or to the per-world scalar path when opts.Scalar requests the ablation.
// Both paths accumulate integer-valued quantities (hit counts and sums of
// hop distances, exact in float64), so their results are bit-identical on
// the same seed for every Workers value.
func pairStats(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]pairResult, error) {
	if opts.Scalar {
		return pairStatsScalar(ctx, g, pairs, opts)
	}
	return pairStatsBatch(ctx, g, pairs, opts)
}

// pairStatsBatch runs one mask-BFS per distinct source per 64-world batch:
// the traversal settles every lane's distance in a single pass, and the
// per-target reachability popcount and depth sum fold 64 worlds of SP/RL
// evidence per pair in O(1). Each engine worker reuses one MaskBFS.
func pairStatsBatch(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]pairResult, error) {
	bySource, sources := groupPairsBySource(pairs)
	return mc.ReduceBatch(ctx, g, opts,
		func() *MaskBFS { return NewMaskBFS(g.NumVertices()) },
		func() []pairResult { return make([]pairResult, len(pairs)) },
		func(_ int, wb *ugraph.WorldBatch, bfs *MaskBFS, acc []pairResult) {
			lanes := wb.Lanes()
			for _, s := range sources {
				reach := bfs.ReachFrom(wb, s)
				depthSum := bfs.DepthSums()
				for _, i := range bySource[s] {
					t := pairs[i].T
					acc[i].samples += lanes
					acc[i].reachable += bits.OnesCount64(reach[t])
					acc[i].distSum += float64(depthSum[t])
				}
			}
		},
		mergePairResults,
	)
}

// pairStatsScalar runs one BFS per distinct source per world, sharing it
// across all pairs with that source. Each engine worker reuses one BFS;
// per-block accumulators keep the sample path lock- and allocation-free.
func pairStatsScalar(ctx context.Context, g *ugraph.Graph, pairs []Pair, opts mc.Options) ([]pairResult, error) {
	bySource, sources := groupPairsBySource(pairs)
	return mc.Reduce(ctx, g, opts,
		func() *BFS { return NewBFS(g.NumVertices()) },
		func() []pairResult { return make([]pairResult, len(pairs)) },
		func(_ int, w *ugraph.World, bfs *BFS, acc []pairResult) {
			for _, s := range sources {
				dist := bfs.Distances(w, s)
				for _, i := range bySource[s] {
					acc[i].samples++
					if d := dist[pairs[i].T]; d >= 0 {
						acc[i].reachable++
						acc[i].distSum += float64(d)
					}
				}
			}
		},
		mergePairResults,
	)
}

// ConnectedProbability estimates Pr[G is connected] — the introductory
// example query of the paper (Figure 1). One mask-BFS plus an AND-sweep
// checks 64 sampled worlds per traversal; opts.Scalar selects the one-world
// BFS path instead (the ablation). Hit counts are integers, so the two
// paths and every Workers value agree bit-identically.
func ConnectedProbability(ctx context.Context, g *ugraph.Graph, opts mc.Options) (float64, error) {
	opts = opts.WithDefaults()
	var hits *int
	var err error
	if opts.Scalar {
		hits, err = mc.Reduce(ctx, g, opts,
			func() *BFS { return NewBFS(g.NumVertices()) },
			func() *int { return new(int) },
			func(_ int, w *ugraph.World, bfs *BFS, acc *int) {
				if bfs.Connected(w) {
					*acc++
				}
			},
			func(dst, src *int) { *dst += *src },
		)
	} else {
		hits, err = mc.ReduceBatch(ctx, g, opts,
			func() *MaskBFS { return NewMaskBFS(g.NumVertices()) },
			func() *int { return new(int) },
			func(_ int, wb *ugraph.WorldBatch, bfs *MaskBFS, acc *int) {
				*acc += bits.OnesCount64(bfs.ConnectedLanes(wb))
			},
			func(dst, src *int) { *dst += *src },
		)
	}
	if err != nil {
		return 0, err
	}
	return float64(*hits) / float64(opts.Samples), nil
}
