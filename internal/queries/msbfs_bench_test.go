package queries

import (
	"testing"

	"ugs/internal/ugraph"
)

// benchMSReachFrom measures one grouped traversal per iteration against the
// per-source loop it replaces: fan=1 runs len(srcs) MaskBFS traversals,
// fan>1 runs ceil(len(srcs)/fan) MSBFS passes over the same sources. ns/op
// at equal width is directly comparable — both settle the identical
// (source, lane) state.
func benchMSReachFrom[V ugraph.Vec](b *testing.B, g *ugraph.Graph, fan, nsrc int) {
	wb := ugraph.NewWorldBatch[V](g)
	seeds := make([]int64, ugraph.VecLanes[V]())
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	ugraph.SampleBatchSeeded(g, seeds, wb)
	n := g.NumVertices()
	srcs := make([]int, nsrc)
	for i := range srcs {
		srcs[i] = i * n / nsrc
	}
	b.ReportAllocs()
	b.ResetTimer()
	if fan <= 1 {
		bfs := NewMaskBFS[V](n)
		for i := 0; i < b.N; i++ {
			for _, s := range srcs {
				bfs.ReachFrom(wb, s)
			}
		}
		return
	}
	ms := NewMSBFS[V](n, fan)
	for i := 0; i < b.N; i++ {
		for base := 0; base < nsrc; base += fan {
			end := base + fan
			if end > nsrc {
				end = nsrc
			}
			ms.ReachFrom(wb, srcs[base:end])
		}
	}
}

func BenchmarkMSBFSReachFrom(b *testing.B) {
	g := benchGraph(b)
	for _, w := range []struct {
		name string
		run  func(b *testing.B, fan, nsrc int)
	}{
		{"lanes=64", func(b *testing.B, fan, nsrc int) { benchMSReachFrom[ugraph.Vec64](b, g, fan, nsrc) }},
		{"lanes=128", func(b *testing.B, fan, nsrc int) { benchMSReachFrom[ugraph.Vec128](b, g, fan, nsrc) }},
		{"lanes=256", func(b *testing.B, fan, nsrc int) { benchMSReachFrom[ugraph.Vec256](b, g, fan, nsrc) }},
	} {
		for _, fan := range []int{1, 4, 8, 16, 32} {
			name := w.name + "/fan=" + itoa(fan)
			b.Run(name, func(b *testing.B) { w.run(b, fan, 32) })
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
