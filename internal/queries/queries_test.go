package queries

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ugs/internal/mc"
	"ugs/internal/ugraph"
)

func fullWorld(g *ugraph.Graph) *ugraph.World {
	mask := make([]bool, g.NumEdges())
	for i := range mask {
		mask[i] = true
	}
	return ugraph.WorldFromMask(g, mask)
}

func bg() context.Context { return context.Background() }

func TestWorldPageRankUniformOnRegularGraph(t *testing.T) {
	// On a cycle (2-regular), PageRank is uniform.
	b := ugraph.NewBuilder(6)
	for i := 0; i < 6; i++ {
		if err := b.AddEdge(i, (i+1)%6, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Graph()
	out := make([]float64, 6)
	WorldPageRank(fullWorld(g), 0.85, 50, out)
	var sum float64
	for v, pr := range out {
		sum += pr
		if math.Abs(pr-1.0/6.0) > 1e-9 {
			t.Errorf("PR[%d] = %v, want 1/6", v, pr)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PageRank sums to %v, want 1", sum)
	}
}

func TestWorldPageRankFavorsHub(t *testing.T) {
	// Star: the hub must outrank every leaf, and mass must sum to 1 even
	// with dangling vertices (leaf 4 is isolated in this world).
	g := ugraph.MustNew(5, []ugraph.Edge{
		{U: 0, V: 1, P: 1},
		{U: 0, V: 2, P: 1},
		{U: 0, V: 3, P: 1},
		{U: 0, V: 4, P: 1},
	})
	w := ugraph.WorldFromMask(g, []bool{true, true, true, false})
	out := make([]float64, 5)
	WorldPageRank(w, 0.85, 60, out)
	var sum float64
	for _, pr := range out {
		sum += pr
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PageRank sums to %v, want 1", sum)
	}
	for v := 1; v <= 3; v++ {
		if out[0] <= out[v] {
			t.Errorf("hub PR %v not above leaf %d PR %v", out[0], v, out[v])
		}
	}
}

func TestWorldClusteringCoefficients(t *testing.T) {
	// Triangle plus pendant: triangle vertices have CC as computed over
	// present neighbors.
	g := ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: 1},
		{U: 1, V: 2, P: 1},
		{U: 0, V: 2, P: 1},
		{U: 2, V: 3, P: 1},
	})
	out := make([]float64, 4)
	WorldClusteringCoefficients(fullWorld(g), out)
	if out[0] != 1 || out[1] != 1 {
		t.Errorf("triangle-only vertices CC = %v,%v, want 1,1", out[0], out[1])
	}
	// Vertex 2 has neighbors {0,1,3}: one closed pair of three.
	if math.Abs(out[2]-1.0/3.0) > 1e-12 {
		t.Errorf("CC[2] = %v, want 1/3", out[2])
	}
	if out[3] != 0 {
		t.Errorf("pendant CC = %v, want 0", out[3])
	}

	// Dropping edge (0,1) opens the triangle: all coefficients 0.
	w := ugraph.WorldFromMask(g, []bool{false, true, true, true})
	WorldClusteringCoefficients(w, out)
	for v, cc := range out {
		if cc != 0 {
			t.Errorf("open triangle: CC[%d] = %v, want 0", v, cc)
		}
	}
}

func TestWorkspaceKernelsMatchOneShotAndDoNotAllocate(t *testing.T) {
	// A reused Workspace must produce exactly the one-shot results, with
	// zero steady-state allocations — the engine's per-worker contract.
	rng := rand.New(rand.NewSource(3))
	b := ugraph.NewBuilder(40)
	for u := 0; u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			if rng.Float64() < 0.15 {
				if err := b.AddEdge(u, v, 0.3+0.7*rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	g := b.Graph()
	w := g.SampleWorld(rng)
	n := g.NumVertices()

	ws := NewWorkspace(g)
	got := make([]float64, n)
	want := make([]float64, n)

	ws.PageRank(w, 0.85, 30, got)
	WorldPageRank(w, 0.85, 30, want)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("workspace PageRank[%d] = %v, one-shot %v", v, got[v], want[v])
		}
	}
	ws.ClusteringCoefficients(w, got)
	WorldClusteringCoefficients(w, want)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("workspace CC[%d] = %v, one-shot %v", v, got[v], want[v])
		}
	}
	if ws.Connected(w) != w.IsConnected() {
		t.Fatal("workspace Connected disagrees with World.IsConnected")
	}

	// Warm the workspace, then require zero allocations per kernel call.
	for name, fn := range map[string]func(){
		"PageRank":               func() { ws.PageRank(w, 0.85, 10, got) },
		"ClusteringCoefficients": func() { ws.ClusteringCoefficients(w, got) },
		"Distances":              func() { ws.Distances(w, 0) },
		"Connected":              func() { ws.Connected(w) },
	} {
		fn()
		if allocs := testing.AllocsPerRun(50, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per call with a warm workspace, want 0", name, allocs)
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := ugraph.MustNew(5, []ugraph.Edge{
		{U: 0, V: 1, P: 1},
		{U: 1, V: 2, P: 1},
		{U: 2, V: 3, P: 1},
	})
	bfs := NewBFS(5)
	d := bfs.Distances(fullWorld(g), 0)
	want := []int{0, 1, 2, 3, -1}
	for v := range want {
		if d[v] != want[v] {
			t.Errorf("dist[%d] = %d, want %d", v, d[v], want[v])
		}
	}
}

func TestReliabilityAgainstExact(t *testing.T) {
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
		{U: 0, V: 2, P: 0.5},
	})
	// Exact reliability 0→2: direct (0.5) or via 1 (0.25), inclusion-
	// exclusion: 1 − (1−0.5)(1−0.25) = 0.625.
	exact := mc.ExactProbabilityOf(g, func(w *ugraph.World) bool { return w.Reachable(0, 2) })
	if math.Abs(exact-0.625) > 1e-12 {
		t.Fatalf("exact reliability = %v, want 0.625", exact)
	}
	got, err := Reliability(bg(), g, []Pair{{S: 0, T: 2}}, mc.Options{Samples: 20000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-exact) > 0.02 {
		t.Errorf("estimated reliability %v, want ≈%v", got[0], exact)
	}
}

func TestShortestDistanceConditionedOnReachability(t *testing.T) {
	// Path 0-1-2 with certain edges plus uncertain shortcut (0,2).
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 1},
		{U: 1, V: 2, P: 1},
		{U: 0, V: 2, P: 0.5},
	})
	// Distance 0→2 is 1 with probability 0.5 (shortcut), else 2: mean 1.5.
	got, err := ShortestDistance(bg(), g, []Pair{{S: 0, T: 2}}, mc.Options{Samples: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1.5) > 0.05 {
		t.Errorf("expected distance %v, want ≈1.5", got[0])
	}
}

func TestShortestDistanceUnreachableIsNaN(t *testing.T) {
	g := ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: 0.9},
		{U: 2, V: 3, P: 0.9},
	})
	got, err := ShortestDistance(bg(), g, []Pair{{S: 0, T: 3}}, mc.Options{Samples: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[0]) {
		t.Errorf("distance across components = %v, want NaN", got[0])
	}
	rel, err := Reliability(bg(), g, []Pair{{S: 0, T: 3}}, mc.Options{Samples: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rel[0] != 0 {
		t.Errorf("reliability across components = %v, want 0", rel[0])
	}
}

func TestExpectedPageRankMatchesExactOnTinyGraph(t *testing.T) {
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.7},
		{U: 1, V: 2, P: 0.4},
	})
	prOpts := PageRankOptions{Damping: 0.85, Iters: 40}
	exact := mc.ExactMeanVector(g, 3, func(w *ugraph.World, out []float64) {
		WorldPageRank(w, prOpts.Damping, prOpts.Iters, out)
	})
	est, err := ExpectedPageRank(bg(), g, mc.Options{Samples: 20000, Seed: 7}, prOpts)
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact {
		if math.Abs(est[v]-exact[v]) > 0.01 {
			t.Errorf("E[PR[%d]] = %v, want ≈%v", v, est[v], exact[v])
		}
	}
}

func TestExpectedClusteringMatchesExactOnTinyGraph(t *testing.T) {
	b := ugraph.NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 0.6); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Graph()
	exact := mc.ExactMeanVector(g, 4, WorldClusteringCoefficients)
	est, err := ExpectedClusteringCoefficients(bg(), g, mc.Options{Samples: 20000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact {
		if math.Abs(est[v]-exact[v]) > 0.02 {
			t.Errorf("E[CC[%d]] = %v, want ≈%v", v, est[v], exact[v])
		}
	}
}

// TestEstimatorsBitIdenticalAcrossWorkers pins the determinism contract at
// the estimator level: same seed, any Workers, identical floats.
func TestEstimatorsBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	b := ugraph.NewBuilder(30)
	for u := 0; u < 30; u++ {
		for v := u + 1; v < 30; v++ {
			if rng.Float64() < 0.2 {
				if err := b.AddEdge(u, v, 0.2+0.8*rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	g := b.Graph()
	pairs := RandomPairs(g.NumVertices(), 15, rng)
	opts := func(workers int) mc.Options {
		return mc.Options{Samples: 123, Seed: 9, Workers: workers}
	}

	prRef, err := ExpectedPageRank(bg(), g, opts(1), PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spRef, rlRef, err := ShortestDistanceAndReliability(bg(), g, pairs, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		pr, err := ExpectedPageRank(bg(), g, opts(workers), PageRankOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for v := range prRef {
			if pr[v] != prRef[v] {
				t.Fatalf("Workers=%d: PR[%d] = %v != %v", workers, v, pr[v], prRef[v])
			}
		}
		sp, rl, err := ShortestDistanceAndReliability(bg(), g, pairs, opts(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range spRef {
			spSame := sp[i] == spRef[i] || (math.IsNaN(sp[i]) && math.IsNaN(spRef[i]))
			if !spSame || rl[i] != rlRef[i] {
				t.Fatalf("Workers=%d: pair %d (SP=%v RL=%v) != (SP=%v RL=%v)",
					workers, i, sp[i], rl[i], spRef[i], rlRef[i])
			}
		}
	}
}

func TestEstimatorsHonorCancelledContext(t *testing.T) {
	g := ugraph.MustNew(3, []ugraph.Edge{{U: 0, V: 1, P: 0.5}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExpectedPageRank(ctx, g, mc.Options{Samples: 50}, PageRankOptions{}); err != context.Canceled {
		t.Errorf("ExpectedPageRank err = %v, want context.Canceled", err)
	}
	if _, err := Reliability(ctx, g, []Pair{{S: 0, T: 1}}, mc.Options{Samples: 50}); err != context.Canceled {
		t.Errorf("Reliability err = %v, want context.Canceled", err)
	}
	if _, err := ConnectedProbability(ctx, g, mc.Options{Samples: 50}); err != context.Canceled {
		t.Errorf("ConnectedProbability err = %v, want context.Canceled", err)
	}
}

func TestRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pairs := RandomPairs(10, 500, rng)
	if len(pairs) != 500 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.S == p.T {
			t.Fatal("self-pair generated")
		}
		if p.S < 0 || p.S >= 10 || p.T < 0 || p.T >= 10 {
			t.Fatal("pair endpoint out of range")
		}
	}
}

func TestConnectedProbabilityFigure1(t *testing.T) {
	b := ugraph.NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 0.3); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Graph()
	got, err := ConnectedProbability(bg(), g, mc.Options{Samples: 20000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2186) > 0.02 {
		t.Errorf("Pr[connected] ≈ %v, want ≈0.219", got)
	}
}
