package queries

import (
	"math"
	"math/rand"
	"testing"

	"ugs/internal/mc"
	"ugs/internal/ugraph"
)

func fullWorld(g *ugraph.Graph) *ugraph.World {
	mask := make([]bool, g.NumEdges())
	for i := range mask {
		mask[i] = true
	}
	return ugraph.WorldFromMask(g, mask)
}

func TestWorldPageRankUniformOnRegularGraph(t *testing.T) {
	// On a cycle (2-regular), PageRank is uniform.
	b := ugraph.NewBuilder(6)
	for i := 0; i < 6; i++ {
		if err := b.AddEdge(i, (i+1)%6, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Graph()
	out := make([]float64, 6)
	WorldPageRank(fullWorld(g), 0.85, 50, out)
	var sum float64
	for v, pr := range out {
		sum += pr
		if math.Abs(pr-1.0/6.0) > 1e-9 {
			t.Errorf("PR[%d] = %v, want 1/6", v, pr)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PageRank sums to %v, want 1", sum)
	}
}

func TestWorldPageRankFavorsHub(t *testing.T) {
	// Star: the hub must outrank every leaf, and mass must sum to 1 even
	// with dangling vertices (leaf 4 is isolated in this world).
	g := ugraph.MustNew(5, []ugraph.Edge{
		{U: 0, V: 1, P: 1},
		{U: 0, V: 2, P: 1},
		{U: 0, V: 3, P: 1},
		{U: 0, V: 4, P: 1},
	})
	w := ugraph.WorldFromMask(g, []bool{true, true, true, false})
	out := make([]float64, 5)
	WorldPageRank(w, 0.85, 60, out)
	var sum float64
	for _, pr := range out {
		sum += pr
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PageRank sums to %v, want 1", sum)
	}
	for v := 1; v <= 3; v++ {
		if out[0] <= out[v] {
			t.Errorf("hub PR %v not above leaf %d PR %v", out[0], v, out[v])
		}
	}
}

func TestWorldClusteringCoefficients(t *testing.T) {
	// Triangle plus pendant: triangle vertices have CC as computed over
	// present neighbors.
	g := ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: 1},
		{U: 1, V: 2, P: 1},
		{U: 0, V: 2, P: 1},
		{U: 2, V: 3, P: 1},
	})
	out := make([]float64, 4)
	WorldClusteringCoefficients(fullWorld(g), out)
	if out[0] != 1 || out[1] != 1 {
		t.Errorf("triangle-only vertices CC = %v,%v, want 1,1", out[0], out[1])
	}
	// Vertex 2 has neighbors {0,1,3}: one closed pair of three.
	if math.Abs(out[2]-1.0/3.0) > 1e-12 {
		t.Errorf("CC[2] = %v, want 1/3", out[2])
	}
	if out[3] != 0 {
		t.Errorf("pendant CC = %v, want 0", out[3])
	}

	// Dropping edge (0,1) opens the triangle: all coefficients 0.
	w := ugraph.WorldFromMask(g, []bool{false, true, true, true})
	WorldClusteringCoefficients(w, out)
	for v, cc := range out {
		if cc != 0 {
			t.Errorf("open triangle: CC[%d] = %v, want 0", v, cc)
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := ugraph.MustNew(5, []ugraph.Edge{
		{U: 0, V: 1, P: 1},
		{U: 1, V: 2, P: 1},
		{U: 2, V: 3, P: 1},
	})
	bfs := NewBFS(5)
	d := bfs.Distances(fullWorld(g), 0)
	want := []int{0, 1, 2, 3, -1}
	for v := range want {
		if d[v] != want[v] {
			t.Errorf("dist[%d] = %d, want %d", v, d[v], want[v])
		}
	}
}

func TestReliabilityAgainstExact(t *testing.T) {
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
		{U: 0, V: 2, P: 0.5},
	})
	// Exact reliability 0→2: direct (0.5) or via 1 (0.25), inclusion-
	// exclusion: 1 − (1−0.5)(1−0.25) = 0.625.
	exact := mc.ExactProbabilityOf(g, func(w *ugraph.World) bool { return w.Reachable(0, 2) })
	if math.Abs(exact-0.625) > 1e-12 {
		t.Fatalf("exact reliability = %v, want 0.625", exact)
	}
	got := Reliability(g, []Pair{{S: 0, T: 2}}, mc.Options{Samples: 20000, Seed: 4})
	if math.Abs(got[0]-exact) > 0.02 {
		t.Errorf("estimated reliability %v, want ≈%v", got[0], exact)
	}
}

func TestShortestDistanceConditionedOnReachability(t *testing.T) {
	// Path 0-1-2 with certain edges plus uncertain shortcut (0,2).
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 1},
		{U: 1, V: 2, P: 1},
		{U: 0, V: 2, P: 0.5},
	})
	// Distance 0→2 is 1 with probability 0.5 (shortcut), else 2: mean 1.5.
	got := ShortestDistance(g, []Pair{{S: 0, T: 2}}, mc.Options{Samples: 20000, Seed: 5})
	if math.Abs(got[0]-1.5) > 0.05 {
		t.Errorf("expected distance %v, want ≈1.5", got[0])
	}
}

func TestShortestDistanceUnreachableIsNaN(t *testing.T) {
	g := ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: 0.9},
		{U: 2, V: 3, P: 0.9},
	})
	got := ShortestDistance(g, []Pair{{S: 0, T: 3}}, mc.Options{Samples: 200, Seed: 6})
	if !math.IsNaN(got[0]) {
		t.Errorf("distance across components = %v, want NaN", got[0])
	}
	rel := Reliability(g, []Pair{{S: 0, T: 3}}, mc.Options{Samples: 200, Seed: 6})
	if rel[0] != 0 {
		t.Errorf("reliability across components = %v, want 0", rel[0])
	}
}

func TestExpectedPageRankMatchesExactOnTinyGraph(t *testing.T) {
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.7},
		{U: 1, V: 2, P: 0.4},
	})
	prOpts := PageRankOptions{Damping: 0.85, Iters: 40}
	exact := mc.ExactMeanVector(g, 3, func(w *ugraph.World, out []float64) {
		WorldPageRank(w, prOpts.Damping, prOpts.Iters, out)
	})
	est := ExpectedPageRank(g, mc.Options{Samples: 20000, Seed: 7}, prOpts)
	for v := range exact {
		if math.Abs(est[v]-exact[v]) > 0.01 {
			t.Errorf("E[PR[%d]] = %v, want ≈%v", v, est[v], exact[v])
		}
	}
}

func TestExpectedClusteringMatchesExactOnTinyGraph(t *testing.T) {
	b := ugraph.NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 0.6); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Graph()
	exact := mc.ExactMeanVector(g, 4, WorldClusteringCoefficients)
	est := ExpectedClusteringCoefficients(g, mc.Options{Samples: 20000, Seed: 8})
	for v := range exact {
		if math.Abs(est[v]-exact[v]) > 0.02 {
			t.Errorf("E[CC[%d]] = %v, want ≈%v", v, est[v], exact[v])
		}
	}
}

func TestRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pairs := RandomPairs(10, 500, rng)
	if len(pairs) != 500 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.S == p.T {
			t.Fatal("self-pair generated")
		}
		if p.S < 0 || p.S >= 10 || p.T < 0 || p.T >= 10 {
			t.Fatal("pair endpoint out of range")
		}
	}
}

func TestConnectedProbabilityFigure1(t *testing.T) {
	b := ugraph.NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 0.3); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Graph()
	got := ConnectedProbability(g, mc.Options{Samples: 20000, Seed: 10})
	if math.Abs(got-0.2186) > 0.02 {
		t.Errorf("Pr[connected] ≈ %v, want ≈0.219", got)
	}
}
