package queries

import (
	"math/bits"

	"ugs/internal/ugraph"
)

// MaskBFS is a reusable bit-parallel breadth-first search over the 64 world
// lanes of a ugraph.WorldBatch. One level-synchronous traversal propagates a
// per-vertex lane mask (bit l = "reached in world l") over the graph's CSR
// adjacency, answering connectivity, reliability and hop-distance queries
// for all lanes at once: an edge transmits exactly the frontier lanes that
// contain it (frontier & edgeMask), and a vertex settles each lane at the
// level it is first reached in that lane.
//
// Zero steady-state allocations with a warm instance. Not safe for
// concurrent use; create one per goroutine (the batch Monte-Carlo engine
// creates one per worker).
type MaskBFS struct {
	reach    []uint64 // lanes in which each vertex has been reached
	cur      []uint64 // frontier lanes entering the current level
	next     []uint64 // lanes first reached during the current level
	depthSum []int64  // Σ over reached lanes of the lane's settle depth
	curQ     []int32  // vertices with nonzero cur bits
	nextQ    []int32  // vertices with nonzero next bits

	// Per-arc gather table in CSR arc order: each entry packs the arc's
	// target vertex with the bound batch's lane mask of the arc's edge, so
	// the traversal's inner loop consumes one sequential 16-byte stream
	// instead of chasing masks[arc.ID] per arc. The gather costs one 2|E|
	// pass per batch fill and is amortized over every traversal of that
	// fill (one per distinct query source); cache keys make staleness
	// impossible.
	arcs     []packedArc
	boundG   *ugraph.Graph
	boundWB  *ugraph.WorldBatch
	boundSeq uint64
}

// packedArc is one CSR arc fused with its edge's lane mask for the bound
// batch fill.
type packedArc struct {
	mask uint64
	to   int32
}

// NewMaskBFS returns a mask-BFS sized for graphs with n vertices. The
// per-arc tables are sized on first use.
func NewMaskBFS(n int) *MaskBFS {
	return &MaskBFS{
		reach:    make([]uint64, n),
		cur:      make([]uint64, n),
		next:     make([]uint64, n),
		depthSum: make([]int64, n),
		curQ:     make([]int32, 0, n),
		nextQ:    make([]int32, 0, n),
	}
}

// bind refreshes the per-arc gather table for wb's current fill (no-op
// when already bound to this graph, batch and fill sequence).
func (b *MaskBFS) bind(wb *ugraph.WorldBatch) {
	g := wb.Graph()
	if b.boundG != g {
		arcs := g.Arcs()
		if cap(b.arcs) < len(arcs) {
			b.arcs = make([]packedArc, len(arcs))
		}
		b.arcs = b.arcs[:len(arcs)]
		b.boundG = g
		b.boundWB = nil
	}
	if b.boundWB != wb || b.boundSeq != wb.FillSeq() {
		masks := wb.EdgeMasks()
		for j, a := range g.Arcs() {
			b.arcs[j] = packedArc{mask: masks[a.ID], to: int32(a.To)}
		}
		b.boundWB, b.boundSeq = wb, wb.FillSeq()
	}
}

// ReachFrom runs one level-synchronous traversal from src across every
// active lane of wb. It returns the per-vertex reachability masks: bit l of
// the result's entry v is set iff v is reachable from src in world lane l.
// The slice is owned by the MaskBFS and overwritten by the next call; bits
// of inactive lanes are always zero.
//
// Per-lane hop distances are folded into DepthSums as each (vertex, lane)
// settles: lane l of vertex v contributes its BFS distance the moment v is
// first reached in lane l, which is exactly the scalar BFS distance of v in
// world l. Unreached lanes contribute nothing (reachability masks record
// which lanes count).
func (b *MaskBFS) ReachFrom(wb *ugraph.WorldBatch, src int) []uint64 {
	b.bind(wb)
	off := wb.Graph().ArcOffsets()
	arcs := b.arcs
	reach, cur, next, depthSum := b.reach, b.cur, b.next, b.depthSum
	for v := range reach {
		reach[v] = 0
		depthSum[v] = 0
	}
	// Invariant between calls: cur and next are all zero (every entry set
	// during a level is cleared when the level is consumed).
	active := wb.ActiveMask()
	reach[src] = active
	cur[src] = active
	curQ := append(b.curQ[:0], int32(src))
	nextQ := b.nextQ[:0]
	n := len(reach)
	depth := 0
	for len(curQ) > 0 {
		depth++
		// Arc volume of the level decides how the next frontier is
		// recovered. Lane masks intersect unpredictably, so the expansion
		// loop is kept branch-free (always-executed L1 loads are cheaper
		// than data-dependent skips that mispredict); on dense levels even
		// the first-touch queue push is dropped and the frontier is
		// rebuilt by a sequential sweep of next instead.
		vol := 0
		for _, ui := range curQ {
			vol += int(off[ui+1] - off[ui])
		}
		nextQ = nextQ[:0]
		if vol >= n/8 {
			for _, ui := range curQ {
				u := int(ui)
				fu := cur[u]
				cur[u] = 0
				for _, a := range arcs[off[u]:off[u+1]] {
					v := int(a.to)
					next[v] |= fu & a.mask &^ reach[v]
				}
			}
			for v, newly := range next {
				if newly != 0 {
					next[v] = 0
					reach[v] |= newly
					depthSum[v] += int64(depth) * int64(bits.OnesCount64(newly))
					cur[v] = newly
					nextQ = append(nextQ, int32(v))
				}
			}
		} else {
			for _, ui := range curQ {
				u := int(ui)
				fu := cur[u]
				cur[u] = 0
				for _, a := range arcs[off[u]:off[u+1]] {
					v := int(a.to)
					m := fu & a.mask &^ reach[v]
					prev := next[v]
					nv := prev | m
					next[v] = nv
					if prev == 0 && nv != 0 {
						nextQ = append(nextQ, int32(v))
					}
				}
			}
			for _, vi := range nextQ {
				v := int(vi)
				newly := next[v] // disjoint from reach[v]: masked at insertion
				next[v] = 0
				reach[v] |= newly
				depthSum[v] += int64(depth) * int64(bits.OnesCount64(newly))
				cur[v] = newly
			}
		}
		curQ, nextQ = nextQ, curQ[:0]
	}
	b.curQ, b.nextQ = curQ[:0], nextQ[:0]
	return reach
}

// DepthSums exposes the per-vertex sums of settle depths over reached lanes
// computed by the last ReachFrom: entry v is Σ_{l reachable} dist_l(src, v).
// Together with popcount of the reach mask this yields the conditional mean
// shortest distance without per-lane extraction. Owned by the MaskBFS.
func (b *MaskBFS) DepthSums() []int64 { return b.depthSum }

// ConnectedLanes reports the mask of lanes whose world connects all
// vertices of the underlying graph — the 64-world generalization of
// BFS.Connected, computed by one traversal from vertex 0 and an AND-sweep
// over the reachability masks.
func (b *MaskBFS) ConnectedLanes(wb *ugraph.WorldBatch) uint64 {
	if wb.Graph().NumVertices() <= 1 {
		return wb.ActiveMask()
	}
	lanes := wb.ActiveMask()
	for _, r := range b.ReachFrom(wb, 0) {
		lanes &= r
		if lanes == 0 {
			break
		}
	}
	return lanes
}
