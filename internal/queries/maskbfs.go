package queries

import (
	"ugs/internal/ugraph"
)

// MaskBFS is a reusable bit-parallel breadth-first search over the world
// lanes of a ugraph.WorldBatch — 64, 128 or 256 lanes depending on the
// vector width V. One level-synchronous traversal propagates a per-vertex
// lane mask (bit l = "reached in world l") over the graph's CSR adjacency,
// answering connectivity, reliability and hop-distance queries for all
// lanes at once: an edge transmits exactly the frontier lanes that contain
// it (frontier & edgeMask), and a vertex settles each lane at the level it
// is first reached in that lane. The vector helpers (ugraph.VecFrontier and
// friends) instantiate to straight-line word ops, so the V=Vec64 kernel is
// the original single-word loop and the wider widths simply carry more
// worlds per cache line of traversal state.
//
// Zero steady-state allocations with a warm instance. Not safe for
// concurrent use; create one per goroutine (the batch Monte-Carlo engine
// creates one per worker).
type MaskBFS[V ugraph.Vec] struct {
	reach    []V     // lanes in which each vertex has been reached
	cur      []V     // frontier lanes entering the current level
	next     []V     // lanes first reached during the current level
	depthSum []int64 // Σ over reached lanes of the lane's settle depth
	curQ     []int32 // vertices with nonzero cur bits
	nextQ    []int32 // vertices with nonzero next bits

	arcTable[V]
}

// packedArc is one CSR arc fused with its edge's lane mask for the bound
// batch fill.
type packedArc[V ugraph.Vec] struct {
	mask V
	to   int32
}

// arcTable is the per-arc gather table shared by the single- and
// multi-source mask-BFS kernels, in CSR arc order: each entry packs the
// arc's target vertex with the bound batch's lane mask of the arc's edge,
// so a traversal's inner loop consumes one sequential stream instead of
// chasing masks[arc.ID] per arc. The gather costs one 2|E| pass per batch
// fill and is amortized over every traversal of that fill (one per distinct
// query source, or one per source group on the multi-source engine); cache
// keys make staleness impossible.
type arcTable[V ugraph.Vec] struct {
	arcs     []packedArc[V]
	boundG   *ugraph.Graph
	boundWB  *ugraph.WorldBatch[V]
	boundSeq uint64
}

// NewMaskBFS returns a mask-BFS sized for graphs with n vertices. The
// per-arc tables are sized on first use.
func NewMaskBFS[V ugraph.Vec](n int) *MaskBFS[V] {
	return &MaskBFS[V]{
		reach:    make([]V, n),
		cur:      make([]V, n),
		next:     make([]V, n),
		depthSum: make([]int64, n),
		curQ:     make([]int32, 0, n),
		nextQ:    make([]int32, 0, n),
	}
}

// bind refreshes the per-arc gather table for wb's current fill (no-op
// when already bound to this graph, batch and fill sequence).
func (b *arcTable[V]) bind(wb *ugraph.WorldBatch[V]) {
	g := wb.Graph()
	if b.boundG != g {
		arcs := g.Arcs()
		if cap(b.arcs) < len(arcs) {
			b.arcs = make([]packedArc[V], len(arcs))
		}
		b.arcs = b.arcs[:len(arcs)]
		b.boundG = g
		b.boundWB = nil
	}
	if b.boundWB != wb || b.boundSeq != wb.FillSeq() {
		masks := wb.EdgeMasks()
		for j, a := range g.Arcs() {
			b.arcs[j] = packedArc[V]{mask: masks[a.ID], to: int32(a.To)}
		}
		b.boundWB, b.boundSeq = wb, wb.FillSeq()
	}
}

// ReachFrom runs one level-synchronous traversal from src across every
// active lane of wb. It returns the per-vertex reachability masks: lane bit
// l of the result's entry v is set iff v is reachable from src in world
// lane l. The slice is owned by the MaskBFS and overwritten by the next
// call; bits of inactive lanes are always zero.
//
// Per-lane hop distances are folded into DepthSums as each (vertex, lane)
// settles: lane l of vertex v contributes its BFS distance the moment v is
// first reached in lane l, which is exactly the scalar BFS distance of v in
// world l. Unreached lanes contribute nothing (reachability masks record
// which lanes count).
func (b *MaskBFS[V]) ReachFrom(wb *ugraph.WorldBatch[V], src int) []V {
	off := b.start(wb, src)
	// The compiler only keeps arrays of length ≤ 1 in registers, so the
	// generic level loop would bounce each multi-word vector through memory
	// three times per arc (and even the one-word width pays for per-arc
	// struct copies). Every width dispatches to a hand-specialized level
	// loop (maskbfs_wide.go) that holds the frontier words in scalar locals;
	// each is a transcription of runLevels, the generic reference the
	// equivalence tests replay (TestMaskBFSSpecializedMatchesGeneric).
	switch bb := any(b).(type) {
	case *MaskBFS[ugraph.Vec64]:
		runLevels64(bb, off)
	case *MaskBFS[ugraph.Vec128]:
		runLevels128(bb, off)
	case *MaskBFS[ugraph.Vec256]:
		runLevels256(bb, off)
	default:
		b.runLevels(off)
	}
	return b.reach
}

// start binds wb and resets the traversal state: reach/depthSum cleared,
// src seeded in every active lane, the frontier queue holding src. It
// returns the CSR arc offsets the level loops index arcs with.
func (b *MaskBFS[V]) start(wb *ugraph.WorldBatch[V], src int) []int32 {
	b.bind(wb)
	reach := b.reach
	var zero V
	for v := range reach {
		reach[v] = zero
		b.depthSum[v] = 0
	}
	// Invariant between calls: cur and next are all zero (every entry set
	// during a level is cleared when the level is consumed).
	active := wb.ActiveMask()
	reach[src] = active
	b.cur[src] = active
	b.curQ = append(b.curQ[:0], int32(src))
	b.nextQ = b.nextQ[:0]
	return wb.Graph().ArcOffsets()
}

// runLevels is the generic level-synchronous expansion loop — the reference
// semantics every specialized kernel must reproduce bit for bit.
func (b *MaskBFS[V]) runLevels(off []int32) {
	arcs := b.arcs
	reach, cur, next, depthSum := b.reach, b.cur, b.next, b.depthSum
	var zero V
	curQ, nextQ := b.curQ, b.nextQ
	n := len(reach)
	depth := 0
	for len(curQ) > 0 {
		depth++
		// Arc volume of the level decides how the next frontier is
		// recovered. Lane masks intersect unpredictably, so the expansion
		// loop is kept branch-free (always-executed L1 loads are cheaper
		// than data-dependent skips that mispredict); on dense levels even
		// the first-touch queue push is dropped and the frontier is
		// rebuilt by a sequential sweep of next instead.
		vol := 0
		for _, ui := range curQ {
			vol += int(off[ui+1] - off[ui])
		}
		nextQ = nextQ[:0]
		if vol >= n/8 {
			for _, ui := range curQ {
				u := int(ui)
				fu := cur[u]
				cur[u] = zero
				for _, a := range arcs[off[u]:off[u+1]] {
					v := int(a.to)
					next[v] = ugraph.VecOr(next[v], ugraph.VecFrontier(fu, a.mask, reach[v]))
				}
			}
			for v := range next {
				if newly := next[v]; !ugraph.VecIsZero(newly) {
					next[v] = zero
					reach[v] = ugraph.VecOr(reach[v], newly)
					depthSum[v] += int64(depth) * int64(ugraph.VecOnesCount(newly))
					cur[v] = newly
					nextQ = append(nextQ, int32(v))
				}
			}
		} else {
			for _, ui := range curQ {
				u := int(ui)
				fu := cur[u]
				cur[u] = zero
				for _, a := range arcs[off[u]:off[u+1]] {
					v := int(a.to)
					m := ugraph.VecFrontier(fu, a.mask, reach[v])
					prev := next[v]
					nv := ugraph.VecOr(prev, m)
					next[v] = nv
					if ugraph.VecIsZero(prev) && !ugraph.VecIsZero(nv) {
						nextQ = append(nextQ, int32(v))
					}
				}
			}
			for _, vi := range nextQ {
				v := int(vi)
				newly := next[v] // disjoint from reach[v]: masked at insertion
				next[v] = zero
				reach[v] = ugraph.VecOr(reach[v], newly)
				depthSum[v] += int64(depth) * int64(ugraph.VecOnesCount(newly))
				cur[v] = newly
			}
		}
		curQ, nextQ = nextQ, curQ[:0]
	}
	b.curQ, b.nextQ = curQ[:0], nextQ[:0]
}

// DepthSums exposes the per-vertex sums of settle depths over reached lanes
// computed by the last ReachFrom: entry v is Σ_{l reachable} dist_l(src, v).
// Together with popcount of the reach mask this yields the conditional mean
// shortest distance without per-lane extraction. Owned by the MaskBFS.
func (b *MaskBFS[V]) DepthSums() []int64 { return b.depthSum }

// ConnectedLanes reports the mask of lanes whose world connects all
// vertices of the underlying graph — the wide-world generalization of
// BFS.Connected, computed by one traversal from vertex 0 and an AND-sweep
// over the reachability masks.
func (b *MaskBFS[V]) ConnectedLanes(wb *ugraph.WorldBatch[V]) V {
	if wb.Graph().NumVertices() <= 1 {
		return wb.ActiveMask()
	}
	lanes := wb.ActiveMask()
	for _, r := range b.ReachFrom(wb, 0) {
		lanes = ugraph.VecAnd(lanes, r)
		if ugraph.VecIsZero(lanes) {
			break
		}
	}
	return lanes
}
