package queries

import (
	"math"
	"math/rand"
	"testing"

	"ugs/internal/mc"
	"ugs/internal/ugraph"
)

func randomQueryGraph(rng *rand.Rand, n int, density float64) *ugraph.Graph {
	b := ugraph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				if err := b.AddEdge(u, v, 0.05+0.9*rng.Float64()); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.Graph()
}

// checkMaskBFSPerLane pins the traversal kernel at one width: reachability
// bits and settle-depth sums of a mask-BFS must agree with a scalar BFS run
// on each extracted lane, for full and ragged batches.
func checkMaskBFSPerLane[V ugraph.Vec](t *testing.T, rng *rand.Rand, trial int) {
	t.Helper()
	g := randomQueryGraph(rng, 8+rng.Intn(30), 0.1+0.2*rng.Float64())
	lanes := 1 + rng.Intn(ugraph.VecLanes[V]())
	seeds := make([]int64, lanes)
	for l := range seeds {
		seeds[l] = rng.Int63()
	}
	wb := ugraph.NewWorldBatch[V](g)
	ugraph.SampleBatchSeeded(g, seeds, wb)
	mb := NewMaskBFS[V](g.NumVertices())
	bfs := NewBFS(g.NumVertices())
	w := ugraph.NewWorld(g)
	for src := 0; src < g.NumVertices(); src += 1 + g.NumVertices()/4 {
		reach := mb.ReachFrom(wb, src)
		depthSum := mb.DepthSums()
		wantReach := make([]V, g.NumVertices())
		wantDepth := make([]int64, g.NumVertices())
		for l := 0; l < lanes; l++ {
			wb.ExtractLane(l, w)
			for v, d := range bfs.Distances(w, src) {
				if d >= 0 {
					wantReach[v] = ugraph.VecSetBit(wantReach[v], l)
					wantDepth[v] += int64(d)
				}
			}
		}
		for v := range wantReach {
			if reach[v] != wantReach[v] {
				t.Fatalf("trial %d src %d vertex %d: reach %v != scalar %v",
					trial, src, v, reach[v], wantReach[v])
			}
			if depthSum[v] != wantDepth[v] {
				t.Fatalf("trial %d src %d vertex %d: depthSum %d != scalar %d",
					trial, src, v, depthSum[v], wantDepth[v])
			}
		}
	}
}

func TestMaskBFSMatchesScalarBFSPerLane(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		checkMaskBFSPerLane[ugraph.Vec64](t, rng, trial)
		checkMaskBFSPerLane[ugraph.Vec128](t, rng, trial)
		checkMaskBFSPerLane[ugraph.Vec256](t, rng, trial)
	}
}

func checkConnectedLanes[V ugraph.Vec](t *testing.T, rng *rand.Rand, trial int) {
	t.Helper()
	g := randomQueryGraph(rng, 5+rng.Intn(20), 0.3)
	lanes := 1 + rng.Intn(ugraph.VecLanes[V]())
	seeds := make([]int64, lanes)
	for l := range seeds {
		seeds[l] = rng.Int63()
	}
	wb := ugraph.NewWorldBatch[V](g)
	ugraph.SampleBatchSeeded(g, seeds, wb)
	got := NewMaskBFS[V](g.NumVertices()).ConnectedLanes(wb)
	bfs := NewBFS(g.NumVertices())
	w := ugraph.NewWorld(g)
	var want V
	for l := 0; l < lanes; l++ {
		wb.ExtractLane(l, w)
		if bfs.Connected(w) {
			want = ugraph.VecSetBit(want, l)
		}
	}
	if got != want {
		t.Fatalf("trial %d: ConnectedLanes %v != scalar %v", trial, got, want)
	}
}

func TestMaskBFSConnectedLanesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 8; trial++ {
		checkConnectedLanes[ugraph.Vec64](t, rng, trial)
		checkConnectedLanes[ugraph.Vec128](t, rng, trial)
		checkConnectedLanes[ugraph.Vec256](t, rng, trial)
	}
}

func checkMaskBFSAllocs[V ugraph.Vec](t *testing.T, rng *rand.Rand, width string) {
	t.Helper()
	g := randomQueryGraph(rng, 50, 0.2)
	seeds := make([]int64, ugraph.VecLanes[V]())
	for l := range seeds {
		seeds[l] = rng.Int63()
	}
	wb := ugraph.NewWorldBatch[V](g)
	ugraph.SampleBatchSeeded(g, seeds, wb)
	mb := NewMaskBFS[V](g.NumVertices())
	mb.ReachFrom(wb, 0)
	for name, fn := range map[string]func(){
		"ReachFrom":      func() { mb.ReachFrom(wb, 0) },
		"ConnectedLanes": func() { mb.ConnectedLanes(wb) },
	} {
		if allocs := testing.AllocsPerRun(50, fn); allocs != 0 {
			t.Errorf("%s[%s] allocates %.1f per call with a warm MaskBFS, want 0", name, width, allocs)
		}
	}
}

func TestMaskBFSZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checkMaskBFSAllocs[ugraph.Vec64](t, rng, "64")
	checkMaskBFSAllocs[ugraph.Vec256](t, rng, "256")
}

// TestBatchScalarEquivalence is the engine-level contract of the PR: every
// mask-BFS batch width (64, 128, 256 and the auto-planned one) and the
// per-world scalar path must produce bit-identical estimates for
// Reliability, ShortestDistance and ConnectedProbability on the same seeds,
// across worker counts and for sample counts not divisible by the lane
// width (ragged final batch).
func TestBatchScalarEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomQueryGraph(rng, 40, 0.12)
	pairs := RandomPairs(g.NumVertices(), 25, rng)
	for _, samples := range []int{1, 50, 64, 100, 130, 257} {
		for _, workers := range []int{1, 8} {
			scalar := mc.Options{Samples: samples, Seed: 77, Workers: workers, Scalar: true}
			rlS, err := Reliability(bg(), g, pairs, scalar)
			if err != nil {
				t.Fatal(err)
			}
			spS, rlS2, err := ShortestDistanceAndReliability(bg(), g, pairs, scalar)
			if err != nil {
				t.Fatal(err)
			}
			cpS, err := ConnectedProbability(bg(), g, scalar)
			if err != nil {
				t.Fatal(err)
			}
			for _, lanes := range []int{0, 64, 128, 256} {
				base := mc.Options{Samples: samples, Seed: 77, Workers: workers, Lanes: lanes}

				rlB, err := Reliability(bg(), g, pairs, base)
				if err != nil {
					t.Fatal(err)
				}
				spB, rlB2, err := ShortestDistanceAndReliability(bg(), g, pairs, base)
				if err != nil {
					t.Fatal(err)
				}
				for i := range pairs {
					if rlB[i] != rlS[i] || rlB2[i] != rlS2[i] {
						t.Fatalf("samples=%d workers=%d lanes=%d pair %d: RL batch %v/%v != scalar %v/%v",
							samples, workers, lanes, i, rlB[i], rlB2[i], rlS[i], rlS2[i])
					}
					spSame := spB[i] == spS[i] || (math.IsNaN(spB[i]) && math.IsNaN(spS[i]))
					if !spSame {
						t.Fatalf("samples=%d workers=%d lanes=%d pair %d: SP batch %v != scalar %v",
							samples, workers, lanes, i, spB[i], spS[i])
					}
				}

				cpB, err := ConnectedProbability(bg(), g, base)
				if err != nil {
					t.Fatal(err)
				}
				if cpB != cpS {
					t.Fatalf("samples=%d workers=%d lanes=%d: ConnectedProbability batch %v != scalar %v",
						samples, workers, lanes, cpB, cpS)
				}
			}
		}
	}
}

// TestBatchEstimatorsBitIdenticalAcrossWorkers pins determinism of the
// batch path on its own: same seed, any Workers, identical floats.
func TestBatchEstimatorsBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := randomQueryGraph(rng, 35, 0.15)
	pairs := RandomPairs(g.NumVertices(), 12, rng)
	opts := func(workers int) mc.Options {
		return mc.Options{Samples: 650, Seed: 5, Workers: workers} // 11 batches, ragged tail
	}
	spRef, rlRef, err := ShortestDistanceAndReliability(bg(), g, pairs, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	cpRef, err := ConnectedProbability(bg(), g, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		sp, rl, err := ShortestDistanceAndReliability(bg(), g, pairs, opts(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range spRef {
			spSame := sp[i] == spRef[i] || (math.IsNaN(sp[i]) && math.IsNaN(spRef[i]))
			if !spSame || rl[i] != rlRef[i] {
				t.Fatalf("Workers=%d pair %d: (SP=%v RL=%v) != (SP=%v RL=%v)",
					workers, i, sp[i], rl[i], spRef[i], rlRef[i])
			}
		}
		cp, err := ConnectedProbability(bg(), g, opts(workers))
		if err != nil {
			t.Fatal(err)
		}
		if cp != cpRef {
			t.Fatalf("Workers=%d: ConnectedProbability %v != %v", workers, cp, cpRef)
		}
	}
}

// TestRandomPairsDistinctEndpoints pins the no-self-pair guarantee down to
// the smallest legal vertex count, where a buggy shift would collide.
func TestRandomPairsDistinctEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{2, 3, 10} {
		for _, p := range RandomPairs(n, 2000, rng) {
			if p.S == p.T {
				t.Fatalf("n=%d: self-pair (%d,%d)", n, p.S, p.T)
			}
			if p.S < 0 || p.S >= n || p.T < 0 || p.T >= n {
				t.Fatalf("n=%d: endpoint out of range (%d,%d)", n, p.S, p.T)
			}
		}
	}
	// n=2 must produce both orientations, nothing else.
	seen := map[Pair]bool{}
	for _, p := range RandomPairs(2, 200, rng) {
		seen[p] = true
	}
	if !seen[Pair{S: 0, T: 1}] || !seen[Pair{S: 1, T: 0}] || len(seen) != 2 {
		t.Fatalf("n=2 pair support = %v, want exactly {(0,1),(1,0)}", seen)
	}
	// Too few vertices for distinct endpoints must fail loudly, not emit
	// self-pairs.
	defer func() {
		if recover() == nil {
			t.Error("RandomPairs(1, 1) did not panic")
		}
	}()
	RandomPairs(1, 1, rng)
}

// checkSpecializedMatchesGeneric replays the generic runLevels reference on
// the exact state ReachFrom hands its width-specialized kernel and demands
// bit-identical reach masks and depth sums. ReachFrom's scalar-local level
// loops (maskbfs_wide.go) exist purely for speed; any semantic drift from
// the generic loop is a bug this catches directly, without routing through
// the scalar-BFS oracle.
func checkSpecializedMatchesGeneric[V ugraph.Vec](t *testing.T, rng *rand.Rand, trial int) {
	t.Helper()
	g := randomQueryGraph(rng, 8+rng.Intn(40), 0.05+0.3*rng.Float64())
	lanes := 1 + rng.Intn(ugraph.VecLanes[V]())
	seeds := make([]int64, lanes)
	for l := range seeds {
		seeds[l] = rng.Int63()
	}
	wb := ugraph.NewWorldBatch[V](g)
	ugraph.SampleBatchSeeded(g, seeds, wb)
	fast := NewMaskBFS[V](g.NumVertices())
	ref := NewMaskBFS[V](g.NumVertices())
	for src := 0; src < g.NumVertices(); src += 1 + g.NumVertices()/3 {
		gotReach := fast.ReachFrom(wb, src)
		off := ref.start(wb, src)
		ref.runLevels(off)
		for v := range gotReach {
			if gotReach[v] != ref.reach[v] {
				t.Fatalf("trial %d src %d vertex %d: specialized reach %v != generic %v",
					trial, src, v, gotReach[v], ref.reach[v])
			}
			if fast.depthSum[v] != ref.depthSum[v] {
				t.Fatalf("trial %d src %d vertex %d: specialized depthSum %d != generic %d",
					trial, src, v, fast.depthSum[v], ref.depthSum[v])
			}
		}
	}
}

func TestMaskBFSSpecializedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 10; trial++ {
		checkSpecializedMatchesGeneric[ugraph.Vec64](t, rng, trial)
		checkSpecializedMatchesGeneric[ugraph.Vec128](t, rng, trial)
		checkSpecializedMatchesGeneric[ugraph.Vec256](t, rng, trial)
	}
}
