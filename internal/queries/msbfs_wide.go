package queries

import (
	"math/bits"

	"ugs/internal/ugraph"
)

// Fan-specialized level loops for the multi-source mask-BFS kernel.
//
// The generic MSBFS.runLevels pays two costs per (arc, slot) that these
// kernels eliminate: it re-loads every frontier word from memory per arc
// and bounds-checks three runtime-length slot slices. Each specialization
// here fixes the (lane width, group size) pair at compile time, so the
// frontier group lives in scalar locals across the frontier vertex's arc
// loop and the target's interleaved reach+next record converts to one
// fixed-size array pointer — a single bounds check and a single cache-line
// run for the whole random access an arc performs. The new-lane words are
// computed into locals first and the record's next side is only touched
// when one of them is nonzero, keeping the common already-settled arc at
// one loaded line with no stores.
//
// Frontier recovery matches the generic loop decision for decision: a
// vertex joins the candidate queue when the union over its next slots goes
// zero → nonzero (the pre/post test the generic loop folds per arc is one
// OR chain here because the next words share the just-loaded record), the
// dense sweep recovers the frontier from the next side of every record,
// and the dense/sparse crossover scales the single-source vol ≥ n/8 rule
// by the group size since per-arc expansion and per-vertex sweep both
// scale by it. Mode choice never affects results: reach, depth sums and
// level structure stay bit-identical to the reference, which
// TestMSBFSSpecializedMatchesGeneric replays against every kernel.
//
// The specialized group sizes (64×4, 64×8, 128×4, 256×2) are the ones the
// fan-out planner probes; other sizes run the generic loop.

func runLevelsMS64x4(b *MSBFS[ugraph.Vec64], off []int32) {
	arcs := b.arcs
	rn, cur, depthSum := b.rn, b.cur, b.depthSum
	curQ, nextQ := b.curQ, b.nextQ
	n := b.n
	depth := 0
	for len(curQ) > 0 {
		depth++
		vol := 0
		for _, ui := range curQ {
			vol += int(off[ui+1] - off[ui])
		}
		nextQ = nextQ[:0]
		if vol >= n*4/8 {
			for _, ui := range curQ {
				u := int(ui)
				f := (*[4]ugraph.Vec64)(cur[u*4:])
				f0, f1, f2, f3 := f[0][0], f[1][0], f[2][0], f[3][0]
				*f = [4]ugraph.Vec64{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := int(a.to)
					m := a.mask[0]
					q := (*[8]ugraph.Vec64)(rn[v*8:])
					t0 := f0 & m &^ q[0][0]
					t1 := f1 & m &^ q[1][0]
					t2 := f2 & m &^ q[2][0]
					t3 := f3 & m &^ q[3][0]
					if t0|t1|t2|t3 == 0 {
						continue
					}
					q[4][0] |= t0
					q[5][0] |= t1
					q[6][0] |= t2
					q[7][0] |= t3
				}
			}
			for v := 0; v < n; v++ {
				q := (*[8]ugraph.Vec64)(rn[v*8:])
				n0, n1, n2, n3 := q[4][0], q[5][0], q[6][0], q[7][0]
				if n0|n1|n2|n3 == 0 {
					continue
				}
				settleMS64x4(q, cur, depthSum, v, depth, n0, n1, n2, n3)
				nextQ = append(nextQ, int32(v))
			}
		} else {
			for _, ui := range curQ {
				u := int(ui)
				f := (*[4]ugraph.Vec64)(cur[u*4:])
				f0, f1, f2, f3 := f[0][0], f[1][0], f[2][0], f[3][0]
				*f = [4]ugraph.Vec64{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := int(a.to)
					m := a.mask[0]
					q := (*[8]ugraph.Vec64)(rn[v*8:])
					t0 := f0 & m &^ q[0][0]
					t1 := f1 & m &^ q[1][0]
					t2 := f2 & m &^ q[2][0]
					t3 := f3 & m &^ q[3][0]
					if t0|t1|t2|t3 == 0 {
						continue
					}
					pre := q[4][0] | q[5][0] | q[6][0] | q[7][0]
					q[4][0] |= t0
					q[5][0] |= t1
					q[6][0] |= t2
					q[7][0] |= t3
					if pre == 0 {
						nextQ = append(nextQ, int32(v))
					}
				}
			}
			for _, vi := range nextQ {
				v := int(vi)
				q := (*[8]ugraph.Vec64)(rn[v*8:])
				n0, n1, n2, n3 := q[4][0], q[5][0], q[6][0], q[7][0] // disjoint from reach: masked at insertion
				settleMS64x4(q, cur, depthSum, v, depth, n0, n1, n2, n3)
			}
		}
		curQ, nextQ = nextQ, curQ[:0]
	}
	b.curQ, b.nextQ = curQ[:0], nextQ[:0]
}

// settleMS64x4 folds one vertex's newly-reached group into the reach side
// of its record, the frontier for the next level and the per-slot depth
// sums — shared by the dense sweep and the sparse candidate pass of the
// 64×4 kernel.
func settleMS64x4(q *[8]ugraph.Vec64, cur []ugraph.Vec64, depthSum []int64, v, depth int, n0, n1, n2, n3 uint64) {
	q[0][0] |= n0
	q[1][0] |= n1
	q[2][0] |= n2
	q[3][0] |= n3
	q[4][0], q[5][0], q[6][0], q[7][0] = 0, 0, 0, 0
	d := (*[4]int64)(depthSum[v*4:])
	dd := int64(depth)
	d[0] += dd * int64(bits.OnesCount64(n0))
	d[1] += dd * int64(bits.OnesCount64(n1))
	d[2] += dd * int64(bits.OnesCount64(n2))
	d[3] += dd * int64(bits.OnesCount64(n3))
	c := (*[4]ugraph.Vec64)(cur[v*4:])
	c[0][0], c[1][0], c[2][0], c[3][0] = n0, n1, n2, n3
}

func runLevelsMS64x8(b *MSBFS[ugraph.Vec64], off []int32) {
	arcs := b.arcs
	rn, cur, depthSum := b.rn, b.cur, b.depthSum
	curQ, nextQ := b.curQ, b.nextQ
	n := b.n
	depth := 0
	for len(curQ) > 0 {
		depth++
		vol := 0
		for _, ui := range curQ {
			vol += int(off[ui+1] - off[ui])
		}
		nextQ = nextQ[:0]
		if vol >= n {
			for _, ui := range curQ {
				u := int(ui)
				f := (*[8]ugraph.Vec64)(cur[u*8:])
				f0, f1, f2, f3 := f[0][0], f[1][0], f[2][0], f[3][0]
				f4, f5, f6, f7 := f[4][0], f[5][0], f[6][0], f[7][0]
				*f = [8]ugraph.Vec64{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := int(a.to)
					m := a.mask[0]
					q := (*[16]ugraph.Vec64)(rn[v*16:])
					t0 := f0 & m &^ q[0][0]
					t1 := f1 & m &^ q[1][0]
					t2 := f2 & m &^ q[2][0]
					t3 := f3 & m &^ q[3][0]
					t4 := f4 & m &^ q[4][0]
					t5 := f5 & m &^ q[5][0]
					t6 := f6 & m &^ q[6][0]
					t7 := f7 & m &^ q[7][0]
					if t0|t1|t2|t3|t4|t5|t6|t7 == 0 {
						continue
					}
					q[8][0] |= t0
					q[9][0] |= t1
					q[10][0] |= t2
					q[11][0] |= t3
					q[12][0] |= t4
					q[13][0] |= t5
					q[14][0] |= t6
					q[15][0] |= t7
				}
			}
			for v := 0; v < n; v++ {
				q := (*[16]ugraph.Vec64)(rn[v*16:])
				n0, n1, n2, n3 := q[8][0], q[9][0], q[10][0], q[11][0]
				n4, n5, n6, n7 := q[12][0], q[13][0], q[14][0], q[15][0]
				if n0|n1|n2|n3|n4|n5|n6|n7 == 0 {
					continue
				}
				settleMS64x8(q, cur, depthSum, v, depth, n0, n1, n2, n3, n4, n5, n6, n7)
				nextQ = append(nextQ, int32(v))
			}
		} else {
			for _, ui := range curQ {
				u := int(ui)
				f := (*[8]ugraph.Vec64)(cur[u*8:])
				f0, f1, f2, f3 := f[0][0], f[1][0], f[2][0], f[3][0]
				f4, f5, f6, f7 := f[4][0], f[5][0], f[6][0], f[7][0]
				*f = [8]ugraph.Vec64{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := int(a.to)
					m := a.mask[0]
					q := (*[16]ugraph.Vec64)(rn[v*16:])
					t0 := f0 & m &^ q[0][0]
					t1 := f1 & m &^ q[1][0]
					t2 := f2 & m &^ q[2][0]
					t3 := f3 & m &^ q[3][0]
					t4 := f4 & m &^ q[4][0]
					t5 := f5 & m &^ q[5][0]
					t6 := f6 & m &^ q[6][0]
					t7 := f7 & m &^ q[7][0]
					if t0|t1|t2|t3|t4|t5|t6|t7 == 0 {
						continue
					}
					pre := q[8][0] | q[9][0] | q[10][0] | q[11][0] |
						q[12][0] | q[13][0] | q[14][0] | q[15][0]
					q[8][0] |= t0
					q[9][0] |= t1
					q[10][0] |= t2
					q[11][0] |= t3
					q[12][0] |= t4
					q[13][0] |= t5
					q[14][0] |= t6
					q[15][0] |= t7
					if pre == 0 {
						nextQ = append(nextQ, int32(v))
					}
				}
			}
			for _, vi := range nextQ {
				v := int(vi)
				q := (*[16]ugraph.Vec64)(rn[v*16:])
				n0, n1, n2, n3 := q[8][0], q[9][0], q[10][0], q[11][0] // disjoint from reach: masked at insertion
				n4, n5, n6, n7 := q[12][0], q[13][0], q[14][0], q[15][0]
				settleMS64x8(q, cur, depthSum, v, depth, n0, n1, n2, n3, n4, n5, n6, n7)
			}
		}
		curQ, nextQ = nextQ, curQ[:0]
	}
	b.curQ, b.nextQ = curQ[:0], nextQ[:0]
}

// settleMS64x8 is settleMS64x4 for the 64×8 kernel.
func settleMS64x8(q *[16]ugraph.Vec64, cur []ugraph.Vec64, depthSum []int64, v, depth int, n0, n1, n2, n3, n4, n5, n6, n7 uint64) {
	q[0][0] |= n0
	q[1][0] |= n1
	q[2][0] |= n2
	q[3][0] |= n3
	q[4][0] |= n4
	q[5][0] |= n5
	q[6][0] |= n6
	q[7][0] |= n7
	q[8] = ugraph.Vec64{}
	q[9] = ugraph.Vec64{}
	q[10] = ugraph.Vec64{}
	q[11] = ugraph.Vec64{}
	q[12] = ugraph.Vec64{}
	q[13] = ugraph.Vec64{}
	q[14] = ugraph.Vec64{}
	q[15] = ugraph.Vec64{}
	d := (*[8]int64)(depthSum[v*8:])
	dd := int64(depth)
	d[0] += dd * int64(bits.OnesCount64(n0))
	d[1] += dd * int64(bits.OnesCount64(n1))
	d[2] += dd * int64(bits.OnesCount64(n2))
	d[3] += dd * int64(bits.OnesCount64(n3))
	d[4] += dd * int64(bits.OnesCount64(n4))
	d[5] += dd * int64(bits.OnesCount64(n5))
	d[6] += dd * int64(bits.OnesCount64(n6))
	d[7] += dd * int64(bits.OnesCount64(n7))
	c := (*[8]ugraph.Vec64)(cur[v*8:])
	c[0][0], c[1][0], c[2][0], c[3][0] = n0, n1, n2, n3
	c[4][0], c[5][0], c[6][0], c[7][0] = n4, n5, n6, n7
}

func runLevelsMS128x4(b *MSBFS[ugraph.Vec128], off []int32) {
	arcs := b.arcs
	rn, cur, depthSum := b.rn, b.cur, b.depthSum
	curQ, nextQ := b.curQ, b.nextQ
	n := b.n
	depth := 0
	for len(curQ) > 0 {
		depth++
		vol := 0
		for _, ui := range curQ {
			vol += int(off[ui+1] - off[ui])
		}
		nextQ = nextQ[:0]
		if vol >= n*4/8 {
			for _, ui := range curQ {
				u := int(ui)
				f := (*[4]ugraph.Vec128)(cur[u*4:])
				f00, f01, f10, f11 := f[0][0], f[0][1], f[1][0], f[1][1]
				f20, f21, f30, f31 := f[2][0], f[2][1], f[3][0], f[3][1]
				*f = [4]ugraph.Vec128{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := int(a.to)
					m0, m1 := a.mask[0], a.mask[1]
					q := (*[8]ugraph.Vec128)(rn[v*8:])
					t00 := f00 & m0 &^ q[0][0]
					t01 := f01 & m1 &^ q[0][1]
					t10 := f10 & m0 &^ q[1][0]
					t11 := f11 & m1 &^ q[1][1]
					t20 := f20 & m0 &^ q[2][0]
					t21 := f21 & m1 &^ q[2][1]
					t30 := f30 & m0 &^ q[3][0]
					t31 := f31 & m1 &^ q[3][1]
					if t00|t01|t10|t11|t20|t21|t30|t31 == 0 {
						continue
					}
					q[4][0] |= t00
					q[4][1] |= t01
					q[5][0] |= t10
					q[5][1] |= t11
					q[6][0] |= t20
					q[6][1] |= t21
					q[7][0] |= t30
					q[7][1] |= t31
				}
			}
			for v := 0; v < n; v++ {
				q := (*[8]ugraph.Vec128)(rn[v*8:])
				n00, n01, n10, n11 := q[4][0], q[4][1], q[5][0], q[5][1]
				n20, n21, n30, n31 := q[6][0], q[6][1], q[7][0], q[7][1]
				if n00|n01|n10|n11|n20|n21|n30|n31 == 0 {
					continue
				}
				settleMS128x4(q, cur, depthSum, v, depth, n00, n01, n10, n11, n20, n21, n30, n31)
				nextQ = append(nextQ, int32(v))
			}
		} else {
			for _, ui := range curQ {
				u := int(ui)
				f := (*[4]ugraph.Vec128)(cur[u*4:])
				f00, f01, f10, f11 := f[0][0], f[0][1], f[1][0], f[1][1]
				f20, f21, f30, f31 := f[2][0], f[2][1], f[3][0], f[3][1]
				*f = [4]ugraph.Vec128{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := int(a.to)
					m0, m1 := a.mask[0], a.mask[1]
					q := (*[8]ugraph.Vec128)(rn[v*8:])
					t00 := f00 & m0 &^ q[0][0]
					t01 := f01 & m1 &^ q[0][1]
					t10 := f10 & m0 &^ q[1][0]
					t11 := f11 & m1 &^ q[1][1]
					t20 := f20 & m0 &^ q[2][0]
					t21 := f21 & m1 &^ q[2][1]
					t30 := f30 & m0 &^ q[3][0]
					t31 := f31 & m1 &^ q[3][1]
					if t00|t01|t10|t11|t20|t21|t30|t31 == 0 {
						continue
					}
					pre := q[4][0] | q[4][1] | q[5][0] | q[5][1] |
						q[6][0] | q[6][1] | q[7][0] | q[7][1]
					q[4][0] |= t00
					q[4][1] |= t01
					q[5][0] |= t10
					q[5][1] |= t11
					q[6][0] |= t20
					q[6][1] |= t21
					q[7][0] |= t30
					q[7][1] |= t31
					if pre == 0 {
						nextQ = append(nextQ, int32(v))
					}
				}
			}
			for _, vi := range nextQ {
				v := int(vi)
				q := (*[8]ugraph.Vec128)(rn[v*8:])
				n00, n01, n10, n11 := q[4][0], q[4][1], q[5][0], q[5][1] // disjoint from reach
				n20, n21, n30, n31 := q[6][0], q[6][1], q[7][0], q[7][1]
				settleMS128x4(q, cur, depthSum, v, depth, n00, n01, n10, n11, n20, n21, n30, n31)
			}
		}
		curQ, nextQ = nextQ, curQ[:0]
	}
	b.curQ, b.nextQ = curQ[:0], nextQ[:0]
}

// settleMS128x4 is settleMS64x4 for the 128×4 kernel: two words per slot.
func settleMS128x4(q *[8]ugraph.Vec128, cur []ugraph.Vec128, depthSum []int64, v, depth int, n00, n01, n10, n11, n20, n21, n30, n31 uint64) {
	q[0][0] |= n00
	q[0][1] |= n01
	q[1][0] |= n10
	q[1][1] |= n11
	q[2][0] |= n20
	q[2][1] |= n21
	q[3][0] |= n30
	q[3][1] |= n31
	q[4] = ugraph.Vec128{}
	q[5] = ugraph.Vec128{}
	q[6] = ugraph.Vec128{}
	q[7] = ugraph.Vec128{}
	d := (*[4]int64)(depthSum[v*4:])
	dd := int64(depth)
	d[0] += dd * int64(bits.OnesCount64(n00)+bits.OnesCount64(n01))
	d[1] += dd * int64(bits.OnesCount64(n10)+bits.OnesCount64(n11))
	d[2] += dd * int64(bits.OnesCount64(n20)+bits.OnesCount64(n21))
	d[3] += dd * int64(bits.OnesCount64(n30)+bits.OnesCount64(n31))
	c := (*[4]ugraph.Vec128)(cur[v*4:])
	c[0] = ugraph.Vec128{n00, n01}
	c[1] = ugraph.Vec128{n10, n11}
	c[2] = ugraph.Vec128{n20, n21}
	c[3] = ugraph.Vec128{n30, n31}
}

func runLevelsMS256x2(b *MSBFS[ugraph.Vec256], off []int32) {
	arcs := b.arcs
	rn, cur, depthSum := b.rn, b.cur, b.depthSum
	curQ, nextQ := b.curQ, b.nextQ
	n := b.n
	depth := 0
	for len(curQ) > 0 {
		depth++
		vol := 0
		for _, ui := range curQ {
			vol += int(off[ui+1] - off[ui])
		}
		nextQ = nextQ[:0]
		if vol >= n*2/8 {
			for _, ui := range curQ {
				u := int(ui)
				f := (*[2]ugraph.Vec256)(cur[u*2:])
				f00, f01, f02, f03 := f[0][0], f[0][1], f[0][2], f[0][3]
				f10, f11, f12, f13 := f[1][0], f[1][1], f[1][2], f[1][3]
				*f = [2]ugraph.Vec256{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := int(a.to)
					m0, m1, m2, m3 := a.mask[0], a.mask[1], a.mask[2], a.mask[3]
					q := (*[4]ugraph.Vec256)(rn[v*4:])
					t00 := f00 & m0 &^ q[0][0]
					t01 := f01 & m1 &^ q[0][1]
					t02 := f02 & m2 &^ q[0][2]
					t03 := f03 & m3 &^ q[0][3]
					t10 := f10 & m0 &^ q[1][0]
					t11 := f11 & m1 &^ q[1][1]
					t12 := f12 & m2 &^ q[1][2]
					t13 := f13 & m3 &^ q[1][3]
					if t00|t01|t02|t03|t10|t11|t12|t13 == 0 {
						continue
					}
					q[2][0] |= t00
					q[2][1] |= t01
					q[2][2] |= t02
					q[2][3] |= t03
					q[3][0] |= t10
					q[3][1] |= t11
					q[3][2] |= t12
					q[3][3] |= t13
				}
			}
			for v := 0; v < n; v++ {
				q := (*[4]ugraph.Vec256)(rn[v*4:])
				n00, n01, n02, n03 := q[2][0], q[2][1], q[2][2], q[2][3]
				n10, n11, n12, n13 := q[3][0], q[3][1], q[3][2], q[3][3]
				if n00|n01|n02|n03|n10|n11|n12|n13 == 0 {
					continue
				}
				settleMS256x2(q, cur, depthSum, v, depth, n00, n01, n02, n03, n10, n11, n12, n13)
				nextQ = append(nextQ, int32(v))
			}
		} else {
			for _, ui := range curQ {
				u := int(ui)
				f := (*[2]ugraph.Vec256)(cur[u*2:])
				f00, f01, f02, f03 := f[0][0], f[0][1], f[0][2], f[0][3]
				f10, f11, f12, f13 := f[1][0], f[1][1], f[1][2], f[1][3]
				*f = [2]ugraph.Vec256{}
				for j := off[u]; j < off[u+1]; j++ {
					a := &arcs[j]
					v := int(a.to)
					m0, m1, m2, m3 := a.mask[0], a.mask[1], a.mask[2], a.mask[3]
					q := (*[4]ugraph.Vec256)(rn[v*4:])
					t00 := f00 & m0 &^ q[0][0]
					t01 := f01 & m1 &^ q[0][1]
					t02 := f02 & m2 &^ q[0][2]
					t03 := f03 & m3 &^ q[0][3]
					t10 := f10 & m0 &^ q[1][0]
					t11 := f11 & m1 &^ q[1][1]
					t12 := f12 & m2 &^ q[1][2]
					t13 := f13 & m3 &^ q[1][3]
					if t00|t01|t02|t03|t10|t11|t12|t13 == 0 {
						continue
					}
					pre := q[2][0] | q[2][1] | q[2][2] | q[2][3] |
						q[3][0] | q[3][1] | q[3][2] | q[3][3]
					q[2][0] |= t00
					q[2][1] |= t01
					q[2][2] |= t02
					q[2][3] |= t03
					q[3][0] |= t10
					q[3][1] |= t11
					q[3][2] |= t12
					q[3][3] |= t13
					if pre == 0 {
						nextQ = append(nextQ, int32(v))
					}
				}
			}
			for _, vi := range nextQ {
				v := int(vi)
				q := (*[4]ugraph.Vec256)(rn[v*4:])
				n00, n01, n02, n03 := q[2][0], q[2][1], q[2][2], q[2][3] // disjoint from reach
				n10, n11, n12, n13 := q[3][0], q[3][1], q[3][2], q[3][3]
				settleMS256x2(q, cur, depthSum, v, depth, n00, n01, n02, n03, n10, n11, n12, n13)
			}
		}
		curQ, nextQ = nextQ, curQ[:0]
	}
	b.curQ, b.nextQ = curQ[:0], nextQ[:0]
}

// settleMS256x2 is settleMS64x4 for the 256×2 kernel: four words per slot.
func settleMS256x2(q *[4]ugraph.Vec256, cur []ugraph.Vec256, depthSum []int64, v, depth int, n00, n01, n02, n03, n10, n11, n12, n13 uint64) {
	q[0][0] |= n00
	q[0][1] |= n01
	q[0][2] |= n02
	q[0][3] |= n03
	q[1][0] |= n10
	q[1][1] |= n11
	q[1][2] |= n12
	q[1][3] |= n13
	q[2] = ugraph.Vec256{}
	q[3] = ugraph.Vec256{}
	d := (*[2]int64)(depthSum[v*2:])
	dd := int64(depth)
	d[0] += dd * int64(bits.OnesCount64(n00)+bits.OnesCount64(n01)+bits.OnesCount64(n02)+bits.OnesCount64(n03))
	d[1] += dd * int64(bits.OnesCount64(n10)+bits.OnesCount64(n11)+bits.OnesCount64(n12)+bits.OnesCount64(n13))
	c := (*[2]ugraph.Vec256)(cur[v*2:])
	c[0] = ugraph.Vec256{n00, n01, n02, n03}
	c[1] = ugraph.Vec256{n10, n11, n12, n13}
}
