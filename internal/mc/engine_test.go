package mc

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"ugs/internal/ugraph"
)

// popCountRun tallies present (edge, lane) pairs over a full run at width V
// — an integer accumulator, so every width and worker count must agree
// exactly.
func popCountRun[V ugraph.Vec](t *testing.T, g *ugraph.Graph, opts Options) int {
	t.Helper()
	n, err := ReduceBatch(context.Background(), g, opts,
		func() struct{} { return struct{}{} },
		func() *int { return new(int) },
		func(_ int, wb *ugraph.WorldBatch[V], _ struct{}, acc *int) {
			*acc += wb.PopCount()
		},
		func(dst, src *int) { *dst += *src },
	)
	if err != nil {
		t.Fatal(err)
	}
	return *n
}

// TestReduceBatchBitIdenticalAcrossWidths is the tentpole's core oracle:
// the same (Seed, Samples) run must produce identical integer accumulations
// at 64, 128 and 256 lanes — and for a scalar Reduce over the same stream —
// including ragged final batches at every width.
func TestReduceBatchBitIdenticalAcrossWidths(t *testing.T) {
	g := bridgedCommunities()
	for _, samples := range []int{1, 63, 64, 100, 333, 777} {
		opts := Options{Samples: samples, Seed: 11, Workers: 4}
		scalar, err := Reduce(context.Background(), g, opts,
			func() struct{} { return struct{}{} },
			func() *int { return new(int) },
			func(_ int, w *ugraph.World, _ struct{}, acc *int) { *acc += w.NumEdges() },
			func(dst, src *int) { *dst += *src },
		)
		if err != nil {
			t.Fatal(err)
		}
		w64 := popCountRun[ugraph.Vec64](t, g, opts)
		w128 := popCountRun[ugraph.Vec128](t, g, opts)
		w256 := popCountRun[ugraph.Vec256](t, g, opts)
		if w64 != *scalar || w128 != *scalar || w256 != *scalar {
			t.Fatalf("samples=%d: widths disagree: scalar=%d 64=%d 128=%d 256=%d",
				samples, *scalar, w64, w128, w256)
		}
	}
}

// TestReduceBatchWideLanesMatchScalarWorlds pins per-lane bit-identity at
// the widest width: lane l of the 256-lane batch starting at sample s is
// the world the scalar sampler draws for index s+l.
func TestReduceBatchWideLanesMatchScalarWorlds(t *testing.T) {
	g := bridgedCommunities()
	const samples = 300 // one full + one ragged 256-lane batch
	scalar := make([][]uint64, samples)
	err := ForEachWorld(context.Background(), g, Options{Samples: samples, Seed: 9, Workers: 4}, func(i int, w *ugraph.World) {
		scalar[i] = append([]uint64(nil), w.Words()...)
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReduceBatch(context.Background(), g, Options{Samples: samples, Seed: 9, Workers: 4},
		func() *ugraph.World { return ugraph.NewWorld(g) },
		func() struct{} { return struct{}{} },
		func(start int, wb *ugraph.WorldBatch[ugraph.Vec256], w *ugraph.World, _ struct{}) {
			for l := 0; l < wb.Lanes(); l++ {
				wb.ExtractLane(l, w)
				for wi, word := range w.Words() {
					if word != scalar[start+l][wi] {
						t.Errorf("sample %d word %d: 256-lane batch %064b != scalar %064b",
							start+l, wi, word, scalar[start+l][wi])
					}
				}
			}
		},
		func(_, _ struct{}) {},
	)
	if err != nil {
		t.Fatal(err)
	}
}

// TestReduceOffsetShiftsSampleStream pins the Offset contract: a run over
// [0, n) splits exactly into a run over [0, k) and one with Offset k over
// the remaining n−k samples.
func TestReduceOffsetShiftsSampleStream(t *testing.T) {
	g := bridgedCommunities()
	count := func(samples, offset int) int {
		n, err := Reduce(context.Background(), g, Options{Samples: samples, Seed: 5, Offset: offset, Workers: 3},
			func() struct{} { return struct{}{} },
			func() *int { return new(int) },
			func(_ int, w *ugraph.World, _ struct{}, acc *int) { *acc += w.NumEdges() },
			func(dst, src *int) { *dst += *src },
		)
		if err != nil {
			t.Fatal(err)
		}
		return *n
	}
	countBatch := func(samples, offset int) int {
		return popCountRun[ugraph.Vec128](t, g, Options{Samples: samples, Seed: 5, Offset: offset, Workers: 3})
	}
	full := count(500, 0)
	if got := count(130, 0) + count(370, 130); got != full {
		t.Errorf("scalar: [0,130)+[130,500) = %d, full run = %d", got, full)
	}
	if got := countBatch(130, 0) + countBatch(370, 130); got != full {
		t.Errorf("batch: [0,130)+[130,500) = %d, full run = %d", got, full)
	}
}

// mapFillCache is a minimal FillCache for tests, counting fills vs hits.
type mapFillCache struct {
	mu     sync.Mutex
	blocks map[ugraph.FillKey][]uint64
	fills  int
	hits   int
}

func newMapFillCache() *mapFillCache {
	return &mapFillCache{blocks: map[ugraph.FillKey][]uint64{}}
}

func (c *mapFillCache) GetOrFill(key ugraph.FillKey, fill func() []uint64) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.blocks[key]; ok {
		c.hits++
		return b
	}
	c.fills++
	b := fill()
	c.blocks[key] = b
	return b
}

// TestReduceBatchFillCacheBitIdentical verifies the cache path end to end:
// cached runs agree bit-for-bit with uncached ones at every width (the
// same 64-lane blocks serve 64- and 256-lane batches), repeat runs hit the
// cache, and ragged tails bypass it.
func TestReduceBatchFillCacheBitIdentical(t *testing.T) {
	g := bridgedCommunities()
	const samples = 300 // 4 full 64-lane blocks + a ragged 44-lane tail
	base := Options{Samples: samples, Seed: 21, Workers: 4}
	plain64 := popCountRun[ugraph.Vec64](t, g, base)
	plain256 := popCountRun[ugraph.Vec256](t, g, base)

	cache := newMapFillCache()
	cached := base
	cache64 := cached
	cache64.FillCache, cache64.FillID = cache, "g1"
	if got := popCountRun[ugraph.Vec64](t, g, cache64); got != plain64 {
		t.Fatalf("cached 64-lane run %d != plain %d", got, plain64)
	}
	if cache.fills != 4 {
		t.Fatalf("first run filled %d blocks, want 4 (ragged tail bypasses cache)", cache.fills)
	}
	if got := popCountRun[ugraph.Vec256](t, g, cache64); got != plain256 {
		t.Fatalf("cached 256-lane run %d != plain %d", got, plain256)
	}
	if cache.fills != 4 || cache.hits == 0 {
		t.Fatalf("256-lane run should reuse the 64-lane blocks: fills=%d hits=%d", cache.fills, cache.hits)
	}
}

// TestOptionsValidate pins the typed rejection of nonsensical combinations.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want error
	}{
		{"negative samples", Options{Samples: -1}, ErrSampleCount},
		{"negative offset", Options{Offset: -5}, ErrSampleCount},
		{"bad lane width", Options{Lanes: 32}, ErrLaneWidth},
		{"scalar contradicts lanes", Options{Scalar: true, Lanes: 128}, ErrLaneWidth},
		{"target with scalar", Options{Scalar: true, Target: WithConfidence(0.05, 0.05)}, ErrScalarTarget},
		{"target with lanes 1", Options{Lanes: 1, Target: WithConfidence(0.05, 0.05)}, ErrScalarTarget},
		{"eps zero", Options{Target: &Target{Eps: 0}}, ErrConfidence},
		{"eps too big", Options{Target: &Target{Eps: 1.5}}, ErrConfidence},
		{"delta out of range", Options{Target: &Target{Eps: 0.1, Delta: 1}}, ErrConfidence},
		{"min above max", Options{Target: &Target{Eps: 0.1, MinSamples: 100, MaxSamples: 10}}, ErrConfidence},
	}
	for _, c := range cases {
		if err := c.opts.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: Validate() = %v, want errors.Is(err, %v)", c.name, err, c.want)
		}
	}
	good := []Options{
		{},
		{Samples: 500, Lanes: 256, Workers: 3},
		{Scalar: true},
		{Lanes: 128, Target: WithConfidence(0.02, 0.1)},
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
	if _, err := Reduce(context.Background(), triangle(), Options{Samples: -3},
		func() struct{} { return struct{}{} },
		func() struct{} { return struct{}{} },
		func(int, *ugraph.World, struct{}, struct{}) {},
		func(_, _ struct{}) {},
	); !errors.Is(err, ErrSampleCount) {
		t.Errorf("Reduce with negative samples: err = %v, want ErrSampleCount", err)
	}
}

// TestParseFormatLanes round-trips the flag encoding.
func TestParseFormatLanes(t *testing.T) {
	for s, want := range map[string]int{"": 0, "auto": 0, "1": 1, "64": 64, "128": 128, "256": 256} {
		got, err := ParseLanes(s)
		if err != nil || got != want {
			t.Errorf("ParseLanes(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	for _, s := range []string{"2", "512", "wide", "-64"} {
		if _, err := ParseLanes(s); !errors.Is(err, ErrLaneWidth) {
			t.Errorf("ParseLanes(%q) err = %v, want ErrLaneWidth", s, err)
		}
	}
	for _, lanes := range []int{0, 1, 64, 128, 256} {
		back, err := ParseLanes(FormatLanes(lanes))
		if err != nil || back != lanes {
			t.Errorf("round-trip %d → %q → %d, %v", lanes, FormatLanes(lanes), back, err)
		}
	}
}

// TestTargetZQuantile pins the normal quantile against known values.
func TestTargetZQuantile(t *testing.T) {
	if z := (Target{Eps: 0.1, Delta: 0.05}).Z(); math.Abs(z-1.959964) > 1e-5 {
		t.Errorf("Z(delta=0.05) = %v, want ≈1.96", z)
	}
	if z := (Target{Eps: 0.1, Delta: 0.01}).Z(); math.Abs(z-2.575829) > 1e-5 {
		t.Errorf("Z(delta=0.01) = %v, want ≈2.576", z)
	}
	ht := Target{Eps: 0.1}
	if hw := ht.HalfWidth(0, 0); !math.IsInf(hw, 1) {
		t.Errorf("HalfWidth(0,0) = %v, want +Inf", hw)
	}
	// p=0.5, n=384 is almost exactly the 0.05-eps boundary at 95%.
	if hw := ht.HalfWidth(192, 384); math.Abs(hw-0.05) > 0.001 {
		t.Errorf("HalfWidth(192, 384) = %v, want ≈0.05", hw)
	}
}

// TestRunAdaptiveSchedule pins the deterministic doubling schedule and the
// convergence bookkeeping of the sequential-stopping driver.
func TestRunAdaptiveSchedule(t *testing.T) {
	tgt := &Target{Eps: 0.05, MinSamples: 100, MaxSamples: 1000}
	var rounds [][2]int
	info, err := RunAdaptive(tgt,
		func(offset, n int) error {
			rounds = append(rounds, [2]int{offset, n})
			return nil
		},
		func(total int) bool { return total >= 400 },
	)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 100}, {100, 100}, {200, 200}}
	if len(rounds) != len(want) {
		t.Fatalf("rounds = %v, want %v", rounds, want)
	}
	for i := range want {
		if rounds[i] != want[i] {
			t.Fatalf("round %d = %v, want %v", i, rounds[i], want[i])
		}
	}
	if !info.Converged || info.Samples != 400 || info.Rounds != 3 {
		t.Errorf("info = %+v, want converged at 400 samples in 3 rounds", info)
	}

	// Never converging: the driver must stop at MaxSamples, clamping the
	// final round, and report Converged false.
	rounds = nil
	info, err = RunAdaptive(tgt,
		func(offset, n int) error {
			rounds = append(rounds, [2]int{offset, n})
			return nil
		},
		func(total int) bool { return false },
	)
	if err != nil {
		t.Fatal(err)
	}
	if info.Converged || info.Samples != 1000 {
		t.Errorf("info = %+v, want unconverged at the 1000-sample cap", info)
	}
	last := rounds[len(rounds)-1]
	if last[0]+last[1] != 1000 {
		t.Errorf("final round %v does not land exactly on MaxSamples", last)
	}

	// Errors propagate.
	wantErr := errors.New("boom")
	if _, err := RunAdaptive(tgt, func(int, int) error { return wantErr }, func(int) bool { return false }); !errors.Is(err, wantErr) {
		t.Errorf("RunAdaptive err = %v, want %v", err, wantErr)
	}
}
