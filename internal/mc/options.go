package mc

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"

	"ugs/internal/ugraph"
)

// Options configures a Monte-Carlo run.
type Options struct {
	// Samples is the number of possible worlds to draw on the fixed-budget
	// path. Default 500 (the paper's query-evaluation setting); negative
	// values are rejected by Validate. When Target is set, Samples is
	// ignored — the sequential-stopping schedule decides the budget.
	Samples int
	// Seed makes runs reproducible. Sample i is always drawn from a
	// deterministic function of (Seed, Offset+i), so results do not depend
	// on scheduling or Workers.
	Seed int64
	// Workers is the parallelism; 0 means GOMAXPROCS.
	Workers int
	// Scalar forces estimators that support the bit-parallel batch engine
	// (reliability, shortest distance, connectivity) onto the
	// one-world-per-traversal path. It is the ablation and debugging
	// switch: both paths are bit-identical on the same Seed, the batch
	// path is just faster. Equivalent to Lanes: 1.
	Scalar bool
	// Lanes selects the batch width for estimators that support the
	// bit-parallel engine: 0 is automatic (the planner picks from graph
	// size and query shape), 1 is the scalar ablation, and 64, 128 or 256
	// select an explicit WorldBatch width. The width is an execution
	// choice only — estimates are bit-identical across all of them.
	Lanes int
	// FanOut selects how many distinct query sources a pair estimator
	// traversal carries at once: 0 is automatic (the planner probes whether
	// grouping pays on this graph), 1 forces one traversal per source (the
	// per-source ablation), and 2..64 pin an explicit group size. Like
	// Lanes, it is an execution choice only — per-pair estimates are
	// bit-identical across every fan-out.
	FanOut int
	// Target, when non-nil, switches supporting estimators from the fixed
	// Samples budget to sequential stopping: batches are drawn in
	// deterministic rounds until the normal-approximation confidence
	// interval of every tracked estimate has half-width ≤ Target.Eps at
	// confidence 1−Target.Delta (or Target.MaxSamples is hit).
	Target *Target
	// Offset shifts the deterministic sample stream: sample i of this run
	// draws from (Seed, Offset+i). The adaptive runner uses it to extend a
	// run round by round without redrawing earlier samples; it is not a
	// result-space knob (two runs covering the same stream indices agree).
	Offset int
	// FillCache, when non-nil together with a non-empty FillID, lets the
	// batch engine reuse sampled 64-lane fill blocks across runs: full
	// 64-aligned blocks are fetched from (or inserted into) the cache
	// keyed by (FillID, Seed, block index) instead of re-sampled. FillID
	// must identify the graph's exact content (a content-versioned name);
	// results are bit-identical with and without a cache.
	FillCache ugraph.FillCache
	FillID    string
}

// Typed validation errors: each nonsensical Options combination is rejected
// with an error wrapping one of these sentinels, so callers can map them to
// request-level failures with errors.Is.
var (
	// ErrSampleCount rejects negative fixed sample budgets and negative
	// stream offsets — runs that would silently produce empty or undefined
	// estimates.
	ErrSampleCount = errors.New("mc: invalid sample count")
	// ErrLaneWidth rejects lane widths outside {0 (auto), 1 (scalar), 64,
	// 128, 256}.
	ErrLaneWidth = errors.New("mc: invalid lane width")
	// ErrScalarTarget rejects a confidence target combined with the scalar
	// ablation (Scalar or Lanes: 1): sequential stopping runs on the batch
	// engine.
	ErrScalarTarget = errors.New("mc: confidence target requires the batch engine")
	// ErrConfidence rejects confidence targets with out-of-range Eps,
	// Delta or an empty sample schedule.
	ErrConfidence = errors.New("mc: invalid confidence target")
	// ErrSourceFanOut rejects fan-outs outside {0 (auto), 1 (per-source),
	// 2..64}: the multi-source kernels carry at most 64 sources per pass.
	ErrSourceFanOut = errors.New("mc: invalid source fan-out")
)

// MaxFanOut is the largest source group a multi-source traversal carries:
// the scalar kernel packs sources into one 64-bit mask per vertex, and the
// batch kernels size their per-vertex state arrays by it.
const MaxFanOut = 64

// Validate rejects nonsensical option combinations with typed errors
// (wrapping the Err* sentinels above). The engine entry points call it, so
// estimators fail fast instead of silently running a meaningless
// configuration.
func (o Options) Validate() error {
	if o.Samples < 0 {
		return fmt.Errorf("%w: fixed run with %d samples", ErrSampleCount, o.Samples)
	}
	if o.Offset < 0 {
		return fmt.Errorf("%w: negative stream offset %d", ErrSampleCount, o.Offset)
	}
	switch o.Lanes {
	case 0, 1, ugraph.BatchLanes, 2 * ugraph.BatchLanes, 4 * ugraph.BatchLanes:
	default:
		return fmt.Errorf("%w: %d (want auto=0, 1, 64, 128 or 256)", ErrLaneWidth, o.Lanes)
	}
	if o.Scalar && o.Lanes > 1 {
		return fmt.Errorf("%w: Scalar contradicts Lanes %d", ErrLaneWidth, o.Lanes)
	}
	if o.FanOut < 0 || o.FanOut > MaxFanOut {
		return fmt.Errorf("%w: %d (want auto=0, 1, or 2..%d)", ErrSourceFanOut, o.FanOut, MaxFanOut)
	}
	if o.Target != nil {
		if o.Scalar || o.Lanes == 1 {
			return fmt.Errorf("%w: remove the Scalar/Lanes:1 ablation or the Target", ErrScalarTarget)
		}
		if err := o.Target.validate(); err != nil {
			return err
		}
	}
	return nil
}

// WithDefaults returns o with zero fields replaced by their defaults
// (Samples 500, Workers GOMAXPROCS). It is idempotent; estimators apply it
// once so the sample count they normalize by matches the engine's.
func (o Options) WithDefaults() Options {
	if o.Samples == 0 {
		o.Samples = 500
	}
	if o.Workers <= 0 {
		o.Workers = defaultWorkers()
	}
	if o.Scalar && o.Lanes == 0 {
		o.Lanes = 1
	}
	return o
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ParseLanes resolves a -lanes flag value: "auto" (or "") is the planner,
// "1" the scalar ablation, "64"/"128"/"256" the explicit batch widths.
func ParseLanes(s string) (int, error) {
	switch s {
	case "", "auto":
		return 0, nil
	case "1", "64", "128", "256":
		n, _ := strconv.Atoi(s)
		return n, nil
	}
	return 0, fmt.Errorf("%w: %q (want auto, 1, 64, 128 or 256)", ErrLaneWidth, s)
}

// FormatLanes is the inverse of ParseLanes.
func FormatLanes(lanes int) string {
	if lanes == 0 {
		return "auto"
	}
	return strconv.Itoa(lanes)
}

// ParseFanOut resolves a -fan-out flag value: "auto" (or "") leaves the
// group size to the planner, "1" forces the per-source ablation, and
// "2".."64" pin an explicit multi-source group size.
func ParseFanOut(s string) (int, error) {
	if s == "" || s == "auto" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 || n > MaxFanOut {
		return 0, fmt.Errorf("%w: %q (want auto or 1..%d)", ErrSourceFanOut, s, MaxFanOut)
	}
	return n, nil
}

// FormatFanOut is the inverse of ParseFanOut.
func FormatFanOut(fan int) string {
	if fan == 0 {
		return "auto"
	}
	return strconv.Itoa(fan)
}
