package mc

import (
	"context"
	"math"
	"testing"

	"ugs/internal/stats"
	"ugs/internal/ugraph"
)

// bridgedCommunities builds two cliques joined by a few p=0.5 bridges: the
// bridges carry maximal entropy and dominate the variance of cross-community
// reliability, the ideal stratification target.
func bridgedCommunities() *ugraph.Graph {
	b := ugraph.NewBuilder(12)
	clique := func(lo, hi int) {
		for u := lo; u < hi; u++ {
			for v := u + 1; v < hi; v++ {
				if err := b.AddEdge(u, v, 0.9); err != nil {
					panic(err)
				}
			}
		}
	}
	clique(0, 6)
	clique(6, 12)
	for i := 0; i < 3; i++ {
		if err := b.AddEdge(i, 6+i, 0.5); err != nil {
			panic(err)
		}
	}
	return b.Graph()
}

func reachable03to9(w *ugraph.World) bool { return w.Reachable(0, 9) }

// mustStratified / mustProbability unwrap the (value, error) pair for tests
// that run with a background context, where the error is always nil.
func mustStratified(t *testing.T, g *ugraph.Graph, opts StratifiedOptions, pred func(w *ugraph.World) bool) float64 {
	t.Helper()
	v, err := StratifiedProbabilityOf(context.Background(), g, opts, pred)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func mustProbability(t *testing.T, g *ugraph.Graph, opts Options, pred func(w *ugraph.World) bool) float64 {
	t.Helper()
	v, err := ProbabilityOf(context.Background(), g, opts, pred)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestStratifiedMatchesExact(t *testing.T) {
	g := ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.3},
		{U: 2, V: 3, P: 0.7},
		{U: 0, V: 3, P: 0.4},
	})
	pred := func(w *ugraph.World) bool { return w.Reachable(0, 3) }
	exact := ExactProbabilityOf(g, pred)
	got := mustStratified(t, g, StratifiedOptions{Samples: 8000, StratifyEdges: 2, Seed: 1}, pred)
	if math.Abs(got-exact) > 0.02 {
		t.Errorf("stratified estimate %v, exact %v", got, exact)
	}
}

func TestStratifiedFullConditioningIsExact(t *testing.T) {
	// Conditioning on every edge enumerates all strata: the estimate is
	// exact regardless of the per-stratum samples.
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.35},
		{U: 1, V: 2, P: 0.65},
	})
	pred := func(w *ugraph.World) bool { return w.Reachable(0, 2) }
	exact := ExactProbabilityOf(g, pred)
	got := mustStratified(t, g, StratifiedOptions{Samples: 8, StratifyEdges: 2, Seed: 2}, pred)
	if math.Abs(got-exact) > 1e-12 {
		t.Errorf("fully conditioned estimate %v, want exact %v", got, exact)
	}
}

func TestStratifiedZeroEdgesIsPlainMC(t *testing.T) {
	g := bridgedCommunities()
	got := mustStratified(t, g, StratifiedOptions{Samples: 4000, StratifyEdges: -1, Seed: 3}, reachable03to9)
	plain := mustProbability(t, g, Options{Samples: 4000, Seed: 3}, reachable03to9)
	if math.Abs(got-plain) > 0.05 {
		t.Errorf("r=0 stratified %v far from plain MC %v", got, plain)
	}
}

func TestStratifiedReducesVariance(t *testing.T) {
	// Same sample budget, repeated estimators: stratifying on the
	// max-entropy bridges must cut the variance of cross-community
	// reliability.
	g := bridgedCommunities()
	const budget = 300
	const runs = 40
	_, plainVar := stats.EstimatorVariance(runs, func(run int) float64 {
		return mustProbability(t, g, Options{Samples: budget, Seed: int64(run) * 17}, reachable03to9)
	})
	_, stratVar := stats.EstimatorVariance(runs, func(run int) float64 {
		return mustStratified(t, g, StratifiedOptions{
			Samples: budget, StratifyEdges: 3, Seed: int64(run) * 17,
		}, reachable03to9)
	})
	if stratVar >= plainVar {
		t.Errorf("stratified variance %v not below plain MC %v", stratVar, plainVar)
	}
}

func TestStratifiedUnbiasedAcrossSeeds(t *testing.T) {
	g := bridgedCommunities()
	exact := 0.0
	// Exact value via plain MC with a huge budget (graph has 33 edges —
	// too many to enumerate).
	exact = mustProbability(t, g, Options{Samples: 60000, Seed: 99}, reachable03to9)
	mean, _ := stats.EstimatorVariance(30, func(run int) float64 {
		return mustStratified(t, g, StratifiedOptions{
			Samples: 400, StratifyEdges: 3, Seed: int64(run)*29 + 5,
		}, reachable03to9)
	})
	if math.Abs(mean-exact) > 0.02 {
		t.Errorf("stratified mean %v far from reference %v (bias?)", mean, exact)
	}
}

func TestTopEntropyEdges(t *testing.T) {
	g := ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: 0.99}, // low entropy
		{U: 1, V: 2, P: 0.5},  // max entropy
		{U: 2, V: 3, P: 0.4},
		{U: 0, V: 3, P: 0.05}, // low entropy
	})
	top := topEntropyEdges(g, 2)
	if top[0] != 1 || top[1] != 2 {
		t.Errorf("topEntropyEdges = %v, want [1 2]", top)
	}
}

func TestStratifiedIndependentOfWorkers(t *testing.T) {
	g := bridgedCommunities()
	opts := func(workers int) StratifiedOptions {
		return StratifiedOptions{Samples: 600, StratifyEdges: 3, Seed: 7, Workers: workers}
	}
	ref := mustStratified(t, g, opts(1), reachable03to9)
	for _, workers := range []int{2, 8} {
		if got := mustStratified(t, g, opts(workers), reachable03to9); got != ref {
			t.Errorf("Workers=%d estimate %v differs from Workers=1 estimate %v", workers, got, ref)
		}
	}
}
