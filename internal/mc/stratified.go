package mc

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ugs/internal/ugraph"
)

// Stratified sampling (after Li et al., "Efficient and accurate query
// evaluation on uncertain graphs via recursive stratified sampling", ICDE
// 2014 — the paper's reference [23] for variance-reduced estimators).
//
// The sample space is partitioned by conditioning on the r highest-entropy
// edges: each of the 2^r assignments is a stratum with known probability
// π_s, the per-stratum sample budget is allocated proportionally to π_s,
// and the estimator Σ_s π_s·mean_s is unbiased with variance never above
// plain Monte-Carlo's. The highest-entropy edges are exactly the ones
// whose random presence contributes most variance — the same entropy
// argument that motivates sparsification itself.

// StratifiedOptions configures a stratified estimator.
type StratifiedOptions struct {
	// Samples is the total sample budget across all strata. Default 500.
	Samples int
	// StratifyEdges is r, the number of highest-entropy edges to condition
	// on (2^r strata). Capped so that 2^r ≤ Samples. Default 6.
	StratifyEdges int
	// Seed makes runs reproducible.
	Seed int64
	// Workers is the parallelism across strata; 0 means GOMAXPROCS.
	Workers int
}

func (o StratifiedOptions) withDefaults() StratifiedOptions {
	if o.Samples == 0 {
		o.Samples = 500
	}
	if o.StratifyEdges == 0 {
		o.StratifyEdges = 6
	}
	for o.StratifyEdges > 0 && 1<<uint(o.StratifyEdges) > o.Samples {
		o.StratifyEdges--
	}
	return o
}

// StratifiedProbabilityOf estimates Pr[pred(world)] by stratified sampling.
// With StratifyEdges = 0 it degenerates to plain Monte-Carlo. Each stratum
// is seeded deterministically from (Seed, stratum), so the estimate is
// independent of Workers and scheduling. Cancelling ctx stops the run
// promptly and returns the context's error.
func StratifiedProbabilityOf(ctx context.Context, g *ugraph.Graph, opts StratifiedOptions, pred func(w *ugraph.World) bool) (float64, error) {
	opts = opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	r := opts.StratifyEdges
	if r < 0 {
		r = 0 // negative requests plain Monte-Carlo explicitly
	}
	if r > g.NumEdges() {
		r = g.NumEdges()
	}
	condition := topEntropyEdges(g, r)

	numStrata := 1 << uint(r)
	type stratum struct {
		mask int
		prob float64
		n    int
	}
	strata := make([]stratum, 0, numStrata)
	for mask := 0; mask < numStrata; mask++ {
		pi := 1.0
		for bit, id := range condition {
			if mask&(1<<uint(bit)) != 0 {
				pi *= g.Prob(id)
			} else {
				pi *= 1 - g.Prob(id)
			}
		}
		if pi == 0 {
			continue
		}
		strata = append(strata, stratum{mask: mask, prob: pi})
	}
	// Proportional allocation with at least one sample per stratum, then
	// distribute the remainder to the largest strata.
	used := 0
	for i := range strata {
		n := int(math.Floor(float64(opts.Samples) * strata[i].prob))
		if n < 1 {
			n = 1
		}
		strata[i].n = n
		used += n
	}
	for i := 0; used < opts.Samples; i, used = i+1, used+1 {
		strata[i%len(strata)].n++
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(strata) {
		workers = len(strata)
	}
	results := make([]float64, len(strata))
	var next atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := ugraph.NewWorld(g)
			for !stopped.Load() {
				si := int(next.Add(1)) - 1
				if si >= len(strata) {
					return
				}
				s := strata[si]
				smp := ugraph.NewSampler(sampleSeed(opts.Seed, s.mask))
				hits := 0
				for i := 0; i < s.n; i++ {
					if i%cancelStride == 0 && ctx.Err() != nil {
						stopped.Store(true)
						return
					}
					g.SampleWorldWith(&smp, w)
					for bit, id := range condition {
						w.Set(id, s.mask&(1<<uint(bit)) != 0)
					}
					if pred(w) {
						hits++
					}
				}
				results[si] = s.prob * float64(hits) / float64(s.n)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, err
	}

	var est float64
	for _, v := range results {
		est += v
	}
	return est, nil
}

// topEntropyEdges returns the ids of the r edges with the highest binary
// entropy (ties broken by id).
func topEntropyEdges(g *ugraph.Graph, r int) []int {
	ids := make([]int, g.NumEdges())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ha, hb := ugraph.EdgeEntropy(g.Prob(ids[a])), ugraph.EdgeEntropy(g.Prob(ids[b]))
		if ha != hb {
			return ha > hb
		}
		return ids[a] < ids[b]
	})
	return ids[:r]
}
