package mc

import (
	"testing"
	"time"
)

// TestRunAdaptiveDeadlineStopsEarly: with a deadline in the past after the
// first round, the run returns the first round's samples instead of doubling
// to MaxSamples — and still reports them (never zero rounds).
func TestRunAdaptiveDeadlineStopsEarly(t *testing.T) {
	target := &Target{Eps: 0.001, MinSamples: 64, MaxSamples: 1 << 16,
		Deadline: time.Now().Add(30 * time.Millisecond)}
	rounds := 0
	run := func(offset, n int) error {
		rounds++
		time.Sleep(40 * time.Millisecond) // first round already blows the deadline
		return nil
	}
	met := func(total int) bool { return false } // never converges on its own
	info, err := RunAdaptive(target, run, met)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 || info.Rounds != 1 {
		t.Fatalf("ran %d rounds (info %d), want exactly 1", rounds, info.Rounds)
	}
	if info.Samples != 64 {
		t.Fatalf("samples = %d, want first-round 64", info.Samples)
	}
	if info.Converged {
		t.Fatal("deadline-stopped run reported Converged")
	}
}

// TestRunAdaptivePredictiveStop: the run skips a round predicted to
// overshoot, even when the deadline has not yet passed.
func TestRunAdaptivePredictiveStop(t *testing.T) {
	target := &Target{Eps: 0.001, MinSamples: 64, MaxSamples: 1 << 16,
		Deadline: time.Now().Add(80 * time.Millisecond)}
	rounds := 0
	run := func(offset, n int) error {
		rounds++
		time.Sleep(50 * time.Millisecond)
		return nil
	}
	// After round 1 (~50ms), ~30ms headroom remains but the next round is
	// predicted at ~100ms → stop without starting it.
	info, err := RunAdaptive(target, run, func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 {
		t.Fatalf("ran %d rounds, want 1 (predictive stop)", rounds)
	}
	if info.Converged {
		t.Fatal("predictively stopped run reported Converged")
	}
}

// TestRunAdaptiveNoDeadlineUnchanged: without a deadline the schedule is the
// pure doubling schedule, timing-independent.
func TestRunAdaptiveNoDeadlineUnchanged(t *testing.T) {
	target := &Target{Eps: 0.01, MinSamples: 100, MaxSamples: 1000}
	var offsets, budgets []int
	run := func(offset, n int) error {
		offsets = append(offsets, offset)
		budgets = append(budgets, n)
		return nil
	}
	info, err := RunAdaptive(target, run, func(total int) bool { return total >= 400 })
	if err != nil {
		t.Fatal(err)
	}
	wantOff, wantN := []int{0, 100, 200}, []int{100, 100, 200}
	for i := range wantOff {
		if offsets[i] != wantOff[i] || budgets[i] != wantN[i] {
			t.Fatalf("schedule offsets %v budgets %v, want %v %v", offsets, budgets, wantOff, wantN)
		}
	}
	if !info.Converged || info.Samples != 400 {
		t.Fatalf("info = %+v, want converged at 400", info)
	}
}
