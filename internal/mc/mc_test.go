package mc

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ugs/internal/ugraph"
)

func triangle() *ugraph.Graph {
	return ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.25},
		{U: 0, V: 2, P: 0.75},
	})
}

func TestForEachWorldCountsAndIndependenceFromWorkers(t *testing.T) {
	g := triangle()
	run := func(workers int) []int {
		edgeCounts := make([]int, g.NumEdges())
		var mu sync.Mutex
		err := ForEachWorld(context.Background(), g, Options{Samples: 400, Seed: 1, Workers: workers}, func(i int, w *ugraph.World) {
			mu.Lock()
			w.ForEachPresent(func(id int) { edgeCounts[id]++ })
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		return edgeCounts
	}
	a := run(1)
	b := run(8)
	for id := range a {
		if a[id] != b[id] {
			t.Errorf("edge %d: counts differ across worker counts: %d vs %d", id, a[id], b[id])
		}
	}
	// Frequencies must track probabilities.
	for id, e := range g.Edges() {
		freq := float64(a[id]) / 400
		if math.Abs(freq-e.P) > 0.08 {
			t.Errorf("edge %d frequency %.3f, want ≈%.2f", id, freq, e.P)
		}
	}
}

func TestForEachWorldVisitsEverySampleIndexOnce(t *testing.T) {
	g := triangle()
	const samples = 333 // not a multiple of the block size
	seen := make([]int32, samples)
	err := ForEachWorld(context.Background(), g, Options{Samples: samples, Seed: 3, Workers: 7}, func(i int, w *ugraph.World) {
		atomic.AddInt32(&seen[i], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("sample %d visited %d times, want exactly once", i, n)
		}
	}
}

func TestProbabilityOfAgainstExact(t *testing.T) {
	g := triangle()
	pred := func(w *ugraph.World) bool { return w.IsConnected() }
	exact := ExactProbabilityOf(g, pred)
	est, err := ProbabilityOf(context.Background(), g, Options{Samples: 20000, Seed: 2}, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-est) > 0.02 {
		t.Errorf("MC estimate %.4f vs exact %.4f", est, exact)
	}
}

func TestExactProbabilityGoldenFigure1(t *testing.T) {
	b := ugraph.NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 0.3); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Graph()
	pr := ExactProbabilityOf(g, func(w *ugraph.World) bool { return w.IsConnected() })
	if math.Abs(pr-0.2186) > 0.0005 {
		t.Errorf("Pr[connected] = %.4f, want ≈0.2186 (paper: 0.219)", pr)
	}
}

func degFn(w *ugraph.World, out []float64) {
	gg := w.Graph()
	w.ForEachPresent(func(id int) {
		e := gg.Edge(id)
		out[e.U]++
		out[e.V]++
	})
}

func TestMeanVectorAgainstExact(t *testing.T) {
	g := triangle()
	// Per-world vector: degree of each vertex. Exact expectation is the
	// expected degree.
	exact := ExactMeanVector(g, 3, degFn)
	for u := 0; u < 3; u++ {
		if math.Abs(exact[u]-g.ExpectedDegree(u)) > 1e-12 {
			t.Errorf("exact mean degree[%d] = %v, want %v", u, exact[u], g.ExpectedDegree(u))
		}
	}
	est, err := MeanVector(context.Background(), g, Options{Samples: 20000, Seed: 3}, 3, degFn)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		if math.Abs(est[u]-exact[u]) > 0.03 {
			t.Errorf("MC mean degree[%d] = %v, want ≈%v", u, est[u], exact[u])
		}
	}
}

func TestMeanVectorDeterministicBySeed(t *testing.T) {
	g := triangle()
	fn := func(w *ugraph.World, out []float64) {
		out[0] = float64(w.NumEdges())
	}
	a, err := MeanVector(context.Background(), g, Options{Samples: 100, Seed: 7, Workers: 3}, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeanVector(context.Background(), g, Options{Samples: 100, Seed: 7, Workers: 5}, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("results differ across worker counts: %v vs %v", a[0], b[0])
	}
	c, err := MeanVector(context.Background(), g, Options{Samples: 100, Seed: 8}, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] == c[0] {
		t.Error("different seeds produced identical estimates (suspicious)")
	}
}

// TestMeanVectorBitIdenticalAcrossWorkers is the engine's determinism
// contract: per-sample seeding plus fixed accumulation blocks merged in
// block order make the result bit-identical — floating-point summation
// order included — for every worker count.
func TestMeanVectorBitIdenticalAcrossWorkers(t *testing.T) {
	g := bridgedCommunities()
	fn := func(w *ugraph.World, out []float64) {
		// Non-associative-friendly values: different summation orders
		// would produce different last bits.
		degFn(w, out)
		for j := range out {
			out[j] = math.Sqrt(out[j] + 0.1)
		}
	}
	var ref []float64
	for _, workers := range []int{1, 2, 3, 8, 16} {
		got, err := MeanVector(context.Background(), g, Options{Samples: 777, Seed: 11, Workers: workers}, g.NumVertices(), fn)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("Workers=%d: entry %d = %v differs from Workers=1 value %v (not bit-identical)",
					workers, j, got[j], ref[j])
			}
		}
	}
}

func TestForEachWorldCancelledContextStopsEarly(t *testing.T) {
	g := bridgedCommunities()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const samples = 1_000_000
	var visits atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- ForEachWorld(ctx, g, Options{Samples: samples, Seed: 5, Workers: 4}, func(i int, w *ugraph.World) {
			if visits.Add(1) == 10 {
				cancel()
			}
		})
	}()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("ForEachWorld returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ForEachWorld did not return after cancellation (deadlock?)")
	}
	if v := visits.Load(); v >= samples {
		t.Fatalf("visited all %d samples despite cancellation", v)
	}
}

func TestForEachWorldAlreadyCancelledContext(t *testing.T) {
	g := triangle()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := ForEachWorld(ctx, g, Options{Samples: 100, Seed: 1}, func(i int, w *ugraph.World) { called = true })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("fn invoked despite pre-cancelled context")
	}
}

func TestStratifiedCancelledContext(t *testing.T) {
	g := bridgedCommunities()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := StratifiedProbabilityOf(ctx, g, StratifiedOptions{Samples: 4000, Seed: 1}, reachable03to9); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestNegativeWorkersFallsBackToDefault pins the Workers <= 0 clamp in
// Options.WithDefaults: a caller computing Workers as numCPU-k on a small
// machine must still get a running engine, not zero goroutines.
func TestNegativeWorkersFallsBackToDefault(t *testing.T) {
	g := triangle()
	got, err := ProbabilityOf(context.Background(), g, Options{Samples: 200, Seed: 4, Workers: -3},
		func(w *ugraph.World) bool { return w.NumEdges() > 0 })
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got > 1 {
		t.Fatalf("estimate %v with negative Workers, want a probability in (0, 1]", got)
	}
}

// TestReduceBatchCoversEverySampleExactlyOnce checks the batch tiling: the
// union of (start, start+Lanes) ranges across all batches must partition the
// sample range, including a ragged final batch.
func TestReduceBatchCoversEverySampleExactlyOnce(t *testing.T) {
	g := triangle()
	const samples = 333 // 6 batches, final batch of 13 lanes
	seen := make([]int32, samples)
	_, err := ReduceBatch(context.Background(), g, Options{Samples: samples, Seed: 3, Workers: 7},
		func() struct{} { return struct{}{} },
		func() struct{} { return struct{}{} },
		func(start int, wb *ugraph.WorldBatch[ugraph.Vec64], _, _ struct{}) {
			for l := 0; l < wb.Lanes(); l++ {
				atomic.AddInt32(&seen[start+l], 1)
			}
		},
		func(_, _ struct{}) {},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("sample %d covered %d times, want exactly once", i, n)
		}
	}
}

// TestReduceBatchLanesMatchScalarWorlds pins the engine-level seeding
// contract: lane l of the batch starting at sample s is the world the
// scalar engine draws for sample index s+l.
func TestReduceBatchLanesMatchScalarWorlds(t *testing.T) {
	g := bridgedCommunities()
	const samples = 100
	scalar := make([][]uint64, samples)
	err := ForEachWorld(context.Background(), g, Options{Samples: samples, Seed: 9, Workers: 4}, func(i int, w *ugraph.World) {
		scalar[i] = append([]uint64(nil), w.Words()...)
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReduceBatch(context.Background(), g, Options{Samples: samples, Seed: 9, Workers: 4},
		func() *ugraph.World { return ugraph.NewWorld(g) },
		func() struct{} { return struct{}{} },
		func(start int, wb *ugraph.WorldBatch[ugraph.Vec64], w *ugraph.World, _ struct{}) {
			for l := 0; l < wb.Lanes(); l++ {
				wb.ExtractLane(l, w)
				for wi, word := range w.Words() {
					if word != scalar[start+l][wi] {
						t.Errorf("sample %d word %d: batch lane %064b != scalar %064b",
							start+l, wi, word, scalar[start+l][wi])
					}
				}
			}
		},
		func(_, _ struct{}) {},
	)
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceBatchBitIdenticalAcrossWorkers(t *testing.T) {
	g := bridgedCommunities()
	run := func(workers int) int {
		hits, err := ReduceBatch(context.Background(), g, Options{Samples: 777, Seed: 11, Workers: workers},
			func() struct{} { return struct{}{} },
			func() *int { return new(int) },
			func(_ int, wb *ugraph.WorldBatch[ugraph.Vec64], _ struct{}, acc *int) {
				*acc += wb.PopCount()
			},
			func(dst, src *int) { *dst += *src },
		)
		if err != nil {
			t.Fatal(err)
		}
		return *hits
	}
	ref := run(1)
	for _, workers := range []int{2, 3, 8, 16} {
		if got := run(workers); got != ref {
			t.Fatalf("Workers=%d: present-edge total %d != %d", workers, got, ref)
		}
	}
}

func TestReduceBatchAlreadyCancelledContext(t *testing.T) {
	g := triangle()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	_, err := ReduceBatch(ctx, g, Options{Samples: 100, Seed: 1},
		func() struct{} { return struct{}{} },
		func() struct{} { return struct{}{} },
		func(int, *ugraph.WorldBatch[ugraph.Vec64], struct{}, struct{}) { called = true },
		func(_, _ struct{}) {},
	)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("visit invoked despite pre-cancelled context")
	}
}

func TestReduceBatchCancelledContextStopsEarly(t *testing.T) {
	g := bridgedCommunities()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const samples = 10_000_000
	var visits atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := ReduceBatch(ctx, g, Options{Samples: samples, Seed: 5, Workers: 4},
			func() struct{} { return struct{}{} },
			func() struct{} { return struct{}{} },
			func(int, *ugraph.WorldBatch[ugraph.Vec64], struct{}, struct{}) {
				if visits.Add(1) == 10 {
					cancel()
				}
			},
			func(_, _ struct{}) {},
		)
		done <- err
	}()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("ReduceBatch returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ReduceBatch did not return after cancellation (deadlock?)")
	}
	if v := visits.Load(); v >= samples/64 {
		t.Fatalf("visited all %d batches despite cancellation", v)
	}
}

func TestSampleSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := sampleSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate sample seed at i=%d", i)
		}
		seen[s] = true
	}
}
