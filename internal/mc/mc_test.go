package mc

import (
	"math"
	"sync"
	"testing"

	"ugs/internal/ugraph"
)

func triangle() *ugraph.Graph {
	return ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.25},
		{U: 0, V: 2, P: 0.75},
	})
}

func TestForEachWorldCountsAndIndependenceFromWorkers(t *testing.T) {
	g := triangle()
	run := func(workers int) []int {
		edgeCounts := make([]int, g.NumEdges())
		var mu sync.Mutex
		ForEachWorld(g, Options{Samples: 400, Seed: 1, Workers: workers}, func(i int, w *ugraph.World) {
			mu.Lock()
			for id, p := range w.Present {
				if p {
					edgeCounts[id]++
				}
			}
			mu.Unlock()
		})
		return edgeCounts
	}
	a := run(1)
	b := run(8)
	for id := range a {
		if a[id] != b[id] {
			t.Errorf("edge %d: counts differ across worker counts: %d vs %d", id, a[id], b[id])
		}
	}
	// Frequencies must track probabilities.
	for id, e := range g.Edges() {
		freq := float64(a[id]) / 400
		if math.Abs(freq-e.P) > 0.08 {
			t.Errorf("edge %d frequency %.3f, want ≈%.2f", id, freq, e.P)
		}
	}
}

func TestProbabilityOfAgainstExact(t *testing.T) {
	g := triangle()
	pred := func(w *ugraph.World) bool { return w.IsConnected() }
	exact := ExactProbabilityOf(g, pred)
	est := ProbabilityOf(g, Options{Samples: 20000, Seed: 2}, pred)
	if math.Abs(exact-est) > 0.02 {
		t.Errorf("MC estimate %.4f vs exact %.4f", est, exact)
	}
}

func TestExactProbabilityGoldenFigure1(t *testing.T) {
	b := ugraph.NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 0.3); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Graph()
	pr := ExactProbabilityOf(g, func(w *ugraph.World) bool { return w.IsConnected() })
	if math.Abs(pr-0.2186) > 0.0005 {
		t.Errorf("Pr[connected] = %.4f, want ≈0.2186 (paper: 0.219)", pr)
	}
}

func TestMeanVectorAgainstExact(t *testing.T) {
	g := triangle()
	// Per-world vector: degree of each vertex. Exact expectation is the
	// expected degree.
	degFn := func(w *ugraph.World, out []float64) {
		gg := w.Graph()
		for id, present := range w.Present {
			if present {
				e := gg.Edge(id)
				out[e.U]++
				out[e.V]++
			}
		}
	}
	exact := ExactMeanVector(g, 3, degFn)
	for u := 0; u < 3; u++ {
		if math.Abs(exact[u]-g.ExpectedDegree(u)) > 1e-12 {
			t.Errorf("exact mean degree[%d] = %v, want %v", u, exact[u], g.ExpectedDegree(u))
		}
	}
	est := MeanVector(g, Options{Samples: 20000, Seed: 3}, 3, degFn)
	for u := 0; u < 3; u++ {
		if math.Abs(est[u]-exact[u]) > 0.03 {
			t.Errorf("MC mean degree[%d] = %v, want ≈%v", u, est[u], exact[u])
		}
	}
}

func TestMeanVectorDeterministicBySeed(t *testing.T) {
	g := triangle()
	fn := func(w *ugraph.World, out []float64) {
		out[0] = float64(w.NumEdges())
	}
	a := MeanVector(g, Options{Samples: 100, Seed: 7, Workers: 3}, 1, fn)
	b := MeanVector(g, Options{Samples: 100, Seed: 7, Workers: 5}, 1, fn)
	if a[0] != b[0] {
		t.Errorf("results differ across worker counts: %v vs %v", a[0], b[0])
	}
	c := MeanVector(g, Options{Samples: 100, Seed: 8}, 1, fn)
	if a[0] == c[0] {
		t.Error("different seeds produced identical estimates (suspicious)")
	}
}

func TestSampleSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := sampleSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate sample seed at i=%d", i)
		}
		seen[s] = true
	}
}
