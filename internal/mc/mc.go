// Package mc is the Monte-Carlo engine for possible-world query evaluation
// on uncertain graphs (Equation 1 of the paper). Sampling is sharded across
// workers in fixed blocks with deterministic per-sample seeding and
// per-block accumulators merged in block order, so results are bit-identical
// for every worker count; the sample path performs no locking and no
// steady-state allocation. The batch engine is generic over the world-lane
// width (64/128/256 lanes per traversal, see ugraph.Vec), fixed budgets can
// be replaced by sequential-stopping targets (Target, RunAdaptive), and
// sampled fill blocks can be shared across runs through a ugraph.FillCache.
// Exhaustive exact evaluation on tiny graphs is provided as a testing
// oracle.
package mc

import (
	"context"
	"sync"
	"sync/atomic"

	"ugs/internal/ugraph"
)

// sampleSeed derives the rng seed for sample i using a splitmix64-style
// scramble, avoiding correlation between consecutive samples.
func sampleSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// maxBlocks bounds the number of accumulation blocks a run is split into.
// Block boundaries are a function of Samples alone — never of Workers or
// scheduling — so merging block accumulators in index order yields
// bit-identical results (floating-point summation order included) for every
// worker count. It also caps the memory held in per-block accumulators and
// the merge fan-in. Effective parallelism is min(Workers, blocks), so the
// cap sits well above realistic core counts.
const maxBlocks = 128

// cancelStride is how many samples a worker processes between context
// checks inside one block.
const cancelStride = 256

// blockDims splits samples into fixed blocks: size is the per-block sample
// count, count the number of blocks.
func blockDims(samples int) (size, count int) {
	size = (samples + maxBlocks - 1) / maxBlocks
	if size < 1 {
		size = 1
	}
	count = (samples + size - 1) / size
	return size, count
}

// Reduce is the engine's core primitive: it draws opts.Samples possible
// worlds of g and folds them into an accumulator of type A.
//
// The sample range is split into fixed blocks (see maxBlocks). Workers claim
// blocks from an atomic counter; each block gets a fresh accumulator from
// newAcc, filled by visit over the block's samples in ascending index order.
// Completed blocks are folded into the result strictly in block index order
// (a finished block whose predecessors are still running is parked until
// they complete, then folded and released — so at most the out-of-order
// suffix of accumulators is live at once, not all blocks). Sample i is
// always drawn from the deterministic stream (opts.Seed, opts.Offset+i), so
// the merged result is bit-identical for every Workers value —
// floating-point accumulation order included.
//
// newLocal runs once per worker goroutine and provides reusable scratch
// (e.g. a queries.Workspace); with scratch reuse the per-sample path
// performs zero allocations. visit must only touch its own local and acc.
// merge folds src into dst; calls are serialized and happen between blocks,
// never on the per-sample path.
//
// On cancellation Reduce stops promptly (workers re-check the context every
// cancelStride samples), returns the zero A and ctx.Err(). Invalid options
// (Validate) are rejected before any sampling.
func Reduce[L, A any](ctx context.Context, g *ugraph.Graph, opts Options,
	newLocal func() L,
	newAcc func() A,
	visit func(i int, w *ugraph.World, local L, acc A),
	merge func(dst, src A),
) (A, error) {
	var zero A
	if err := opts.Validate(); err != nil {
		return zero, err
	}
	opts = opts.WithDefaults()
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	size, blocks := blockDims(opts.Samples)
	return runBlocks(ctx, blocks, opts.Workers, newAcc, merge,
		func() (runBlock func(b int, acc A, cancelled func() bool) bool) {
			local := newLocal()
			w := ugraph.NewWorld(g)
			return func(b int, acc A, cancelled func() bool) bool {
				lo := b * size
				hi := lo + size
				if hi > opts.Samples {
					hi = opts.Samples
				}
				for i := lo; i < hi; i++ {
					if (i-lo)%cancelStride == 0 && cancelled() {
						return false
					}
					g.SampleWorldSeeded(sampleSeed(opts.Seed, opts.Offset+i), w)
					visit(i, w, local, acc)
				}
				return true
			}
		})
}

// batchCancelStride is how many batches a worker processes between context
// checks inside one block (~4·64 samples at the narrowest width, matching
// cancelStride).
const batchCancelStride = 4

// ReduceBatch is Reduce over lane-transposed world batches of width V: it
// draws opts.Samples possible worlds in runs of up to ugraph.VecLanes[V]
// lanes and folds each WorldBatch into an accumulator of type A. Lane l of
// the batch starting at sample index s is drawn from the same deterministic
// stream as scalar sample s+l, and blocks are fixed runs of whole batches
// merged in block index order — so a batch kernel whose accumulator is
// order-insensitive (integer counters, exact integer-valued sums) produces
// results bit-identical to the scalar path — and to every other width — for
// every Workers value.
//
// visit receives the global index of the batch's first sample and a
// WorldBatch that is reused by the calling goroutine (it must not be
// retained); the final batch may be ragged (Lanes() < VecLanes[V]). When
// opts.FillCache is set (with a FillID), full 64-aligned fill blocks are
// fetched from the cache instead of re-sampled; results are identical
// either way. Cancellation semantics match Reduce.
func ReduceBatch[V ugraph.Vec, L, A any](ctx context.Context, g *ugraph.Graph, opts Options,
	newLocal func() L,
	newAcc func() A,
	visit func(start int, wb *ugraph.WorldBatch[V], local L, acc A),
	merge func(dst, src A),
) (A, error) {
	var zero A
	if err := opts.Validate(); err != nil {
		return zero, err
	}
	opts = opts.WithDefaults()
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	width := ugraph.VecLanes[V]()
	batches := (opts.Samples + width - 1) / width
	size, blocks := blockDims(batches)
	return runBlocks(ctx, blocks, opts.Workers, newAcc, merge,
		func() (runBlock func(b int, acc A, cancelled func() bool) bool) {
			local := newLocal()
			wb := ugraph.NewWorldBatch[V](g)
			filler := newBatchFiller[V](g, opts)
			return func(b int, acc A, cancelled func() bool) bool {
				lo := b * size
				hi := lo + size
				if hi > batches {
					hi = batches
				}
				for k := lo; k < hi; k++ {
					if (k-lo)%batchCancelStride == 0 && cancelled() {
						return false
					}
					start := k * width
					lanes := opts.Samples - start
					if lanes > width {
						lanes = width
					}
					filler.fill(wb, start, lanes)
					visit(start, wb, local, acc)
				}
				return true
			}
		})
}

// batchFiller fills one worker's WorldBatch for a batch starting at a given
// sample index: directly via SampleBatchSeeded, or — when a FillCache is
// configured — by assembling cached 64-lane blocks (full, 64-aligned stream
// blocks only; ragged or unaligned lane groups are sampled fresh into
// worker-local scratch). Both paths are bit-identical.
type batchFiller[V ugraph.Vec] struct {
	g       *ugraph.Graph
	opts    Options
	seeds   [ugraph.MaxBatchLanes]int64
	blocks  [][]uint64 // per-word block views for LoadBlocks
	scratch [][]uint64 // lazily allocated non-cached fills, one per word
}

func newBatchFiller[V ugraph.Vec](g *ugraph.Graph, opts Options) *batchFiller[V] {
	words := ugraph.VecLanes[V]() / ugraph.BatchLanes
	f := &batchFiller[V]{g: g, opts: opts}
	if opts.FillCache != nil && opts.FillID != "" {
		f.blocks = make([][]uint64, words)
		f.scratch = make([][]uint64, words)
	}
	return f
}

func (f *batchFiller[V]) fill(wb *ugraph.WorldBatch[V], start, lanes int) {
	if f.blocks == nil {
		for l := 0; l < lanes; l++ {
			f.seeds[l] = sampleSeed(f.opts.Seed, f.opts.Offset+start+l)
		}
		ugraph.SampleBatchSeeded(f.g, f.seeds[:lanes], wb)
		return
	}
	base := f.opts.Offset + start
	words := (lanes + ugraph.BatchLanes - 1) / ugraph.BatchLanes
	for k := 0; k < words; k++ {
		blo := base + k*ugraph.BatchLanes
		bl := lanes - k*ugraph.BatchLanes
		if bl > ugraph.BatchLanes {
			bl = ugraph.BatchLanes
		}
		if bl == ugraph.BatchLanes && blo%ugraph.BatchLanes == 0 {
			key := ugraph.FillKey{Graph: f.opts.FillID, Seed: f.opts.Seed, Block: blo / ugraph.BatchLanes}
			f.blocks[k] = f.opts.FillCache.GetOrFill(key, func() []uint64 {
				dst := make([]uint64, f.g.NumEdges())
				var bs [ugraph.BatchLanes]int64
				for l := 0; l < ugraph.BatchLanes; l++ {
					bs[l] = sampleSeed(f.opts.Seed, blo+l)
				}
				ugraph.FillBlock(f.g, bs[:], dst)
				return dst
			})
			continue
		}
		if f.scratch[k] == nil {
			f.scratch[k] = make([]uint64, f.g.NumEdges())
		}
		for l := 0; l < bl; l++ {
			f.seeds[l] = sampleSeed(f.opts.Seed, blo+l)
		}
		ugraph.FillBlock(f.g, f.seeds[:bl], f.scratch[k])
		f.blocks[k] = f.scratch[k]
	}
	ugraph.LoadBlocks(wb, f.blocks[:words], lanes)
}

// runBlocks is the shared block engine behind Reduce and ReduceBatch:
// workers claim block indices off an atomic counter and fill one accumulator
// per block via the per-worker runBlock closure (built once per goroutine by
// newWorker, so worker-local scratch — World, WorldBatch, kernel workspaces
// — is reused across blocks); completed blocks are folded strictly in block
// index order. runBlock returns false to signal cancellation.
func runBlocks[A any](ctx context.Context, blocks, workers int,
	newAcc func() A,
	merge func(dst, src A),
	newWorker func() func(b int, acc A, cancelled func() bool) bool,
) (A, error) {
	var zero A
	if workers > blocks {
		workers = blocks
	}

	// In-order streaming merge: parked holds finished blocks awaiting their
	// predecessors; folding always happens in ascending block order, and a
	// folded block's accumulator is released immediately.
	var (
		mergeMu   sync.Mutex
		parked    = make([]A, blocks)
		ready     = make([]bool, blocks)
		merged    A
		hasMerged bool
		nextFold  int
	)
	publish := func(b int, acc A) {
		mergeMu.Lock()
		parked[b] = acc
		ready[b] = true
		for nextFold < blocks && ready[nextFold] {
			if !hasMerged {
				merged = parked[nextFold]
				hasMerged = true
			} else {
				merge(merged, parked[nextFold])
			}
			parked[nextFold] = zero
			nextFold++
		}
		mergeMu.Unlock()
	}

	var next atomic.Int64
	var stopped atomic.Bool
	cancelled := func() bool {
		if ctx.Err() != nil {
			stopped.Store(true)
			return true
		}
		return false
	}
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := newWorker()
			for !stopped.Load() {
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return
				}
				acc := newAcc()
				if !run(b, acc, cancelled) {
					return
				}
				publish(b, acc)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	return merged, nil
}

// ForEachWorld draws opts.Samples possible worlds of g and invokes fn for
// each, in parallel. fn receives the sample index and a World that is reused
// by the calling goroutine: it must not be retained. fn must be safe for
// concurrent invocation on distinct indices. Cancelling ctx stops the run
// promptly and returns the context's error.
func ForEachWorld(ctx context.Context, g *ugraph.Graph, opts Options, fn func(i int, w *ugraph.World)) error {
	_, err := Reduce(ctx, g, opts,
		func() struct{} { return struct{}{} },
		func() struct{} { return struct{}{} },
		func(i int, w *ugraph.World, _, _ struct{}) { fn(i, w) },
		func(_, _ struct{}) {},
	)
	return err
}

// MeanVectorLocal runs fn over sampled worlds, where fn writes a per-entity
// vector of dim values for its world into out (out is zeroed before each
// call), and returns the element-wise mean across samples. Each engine
// worker owns one L from newLocal — reusable kernel scratch such as a
// queries.Workspace — so the sample path runs without allocating.
func MeanVectorLocal[L any](ctx context.Context, g *ugraph.Graph, opts Options, dim int, newLocal func() L, fn func(w *ugraph.World, local L, out []float64)) ([]float64, error) {
	opts = opts.WithDefaults()
	type state struct {
		local   L
		scratch []float64
	}
	sum, err := Reduce(ctx, g, opts,
		func() *state { return &state{local: newLocal(), scratch: make([]float64, dim)} },
		func() []float64 { return make([]float64, dim) },
		func(_ int, w *ugraph.World, s *state, acc []float64) {
			for j := range s.scratch {
				s.scratch[j] = 0
			}
			fn(w, s.local, s.scratch)
			for j, v := range s.scratch {
				acc[j] += v
			}
		},
		func(dst, src []float64) {
			for j, v := range src {
				dst[j] += v
			}
		},
	)
	if err != nil {
		return nil, err
	}
	inv := 1 / float64(opts.Samples)
	for j := range sum {
		sum[j] *= inv
	}
	return sum, nil
}

// MeanVector is MeanVectorLocal without worker-local scratch — the
// workhorse for vector-valued queries whose kernel needs no workspace.
func MeanVector(ctx context.Context, g *ugraph.Graph, opts Options, dim int, fn func(w *ugraph.World, out []float64)) ([]float64, error) {
	return MeanVectorLocal(ctx, g, opts, dim,
		func() struct{} { return struct{}{} },
		func(w *ugraph.World, _ struct{}, out []float64) { fn(w, out) },
	)
}

// ProbabilityOf estimates Pr[pred(world)] by Monte-Carlo sampling.
func ProbabilityOf(ctx context.Context, g *ugraph.Graph, opts Options, pred func(w *ugraph.World) bool) (float64, error) {
	opts = opts.WithDefaults()
	hits, err := Reduce(ctx, g, opts,
		func() struct{} { return struct{}{} },
		func() *int { return new(int) },
		func(_ int, w *ugraph.World, _ struct{}, acc *int) {
			if pred(w) {
				*acc++
			}
		},
		func(dst, src *int) { *dst += *src },
	)
	if err != nil {
		return 0, err
	}
	return float64(*hits) / float64(opts.Samples), nil
}

// ExactProbabilityOf computes Pr[pred(world)] by exhaustive possible-world
// enumeration (Equation 1). Exponential in |E|; tiny graphs only.
func ExactProbabilityOf(g *ugraph.Graph, pred func(w *ugraph.World) bool) float64 {
	var pr float64
	ugraph.EnumerateWorlds(g, func(w *ugraph.World, p float64) {
		if pred(w) {
			pr += p
		}
	})
	return pr
}

// ExactMeanVector computes the exact expectation of a vector-valued
// per-world function by exhaustive enumeration. Tiny graphs only.
func ExactMeanVector(g *ugraph.Graph, dim int, fn func(w *ugraph.World, out []float64)) []float64 {
	mean := make([]float64, dim)
	out := make([]float64, dim)
	ugraph.EnumerateWorlds(g, func(w *ugraph.World, p float64) {
		for j := range out {
			out[j] = 0
		}
		fn(w, out)
		for j, v := range out {
			mean[j] += p * v
		}
	})
	return mean
}
