// Package mc is the Monte-Carlo engine for possible-world query evaluation
// on uncertain graphs (Equation 1 of the paper). It samples worlds in
// parallel with deterministic per-sample seeding, so results are independent
// of the worker count, and provides exact exhaustive evaluation for tiny
// graphs as a testing oracle.
package mc

import (
	"math/rand"
	"runtime"
	"sync"

	"ugs/internal/ugraph"
)

// Options configures a Monte-Carlo run.
type Options struct {
	// Samples is the number of possible worlds to draw. Default 500 (the
	// paper's query-evaluation setting).
	Samples int
	// Seed makes runs reproducible. Sample i is always drawn from a
	// deterministic function of (Seed, i), so results do not depend on
	// scheduling or Workers.
	Seed int64
	// Workers is the parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Samples == 0 {
		o.Samples = 500
	}
	if o.Workers <= 0 {
		o.Workers = defaultWorkers()
	}
	return o
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// sampleSeed derives the rng seed for sample i using a splitmix64-style
// scramble, avoiding correlation between consecutive samples.
func sampleSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// ForEachWorld draws opts.Samples possible worlds of g and invokes fn for
// each, in parallel. fn receives the sample index and a World that is reused
// by the calling goroutine: it must not be retained. fn must be safe for
// concurrent invocation on distinct indices.
func ForEachWorld(g *ugraph.Graph, opts Options, fn func(i int, w *ugraph.World)) {
	opts = opts.withDefaults()
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < opts.Workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := ugraph.NewWorld(g)
			for i := range next {
				rng := rand.New(rand.NewSource(sampleSeed(opts.Seed, i)))
				g.SampleWorldInto(rng, w)
				fn(i, w)
			}
		}()
	}
	for i := 0; i < opts.Samples; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// MeanVector runs fn over sampled worlds, where fn writes a per-entity
// vector of dim values for its world into out, and returns the element-wise
// mean across samples. It is the workhorse for vector-valued queries
// (PageRank, clustering coefficient).
func MeanVector(g *ugraph.Graph, opts Options, dim int, fn func(w *ugraph.World, out []float64)) []float64 {
	opts = opts.withDefaults()
	mean := make([]float64, dim)
	var mu sync.Mutex
	scratchPool := sync.Pool{New: func() interface{} { return make([]float64, dim) }}

	ForEachWorld(g, opts, func(i int, w *ugraph.World) {
		out := scratchPool.Get().([]float64)
		for j := range out {
			out[j] = 0
		}
		fn(w, out)
		mu.Lock()
		for j, v := range out {
			mean[j] += v
		}
		mu.Unlock()
		scratchPool.Put(out)
	})

	inv := 1 / float64(opts.Samples)
	for j := range mean {
		mean[j] *= inv
	}
	return mean
}

// ProbabilityOf estimates Pr[pred(world)] by Monte-Carlo sampling.
func ProbabilityOf(g *ugraph.Graph, opts Options, pred func(w *ugraph.World) bool) float64 {
	opts = opts.withDefaults()
	var total int64
	var mu sync.Mutex
	ForEachWorld(g, opts, func(i int, w *ugraph.World) {
		if pred(w) {
			mu.Lock()
			total++
			mu.Unlock()
		}
	})
	return float64(total) / float64(opts.Samples)
}

// ExactProbabilityOf computes Pr[pred(world)] by exhaustive possible-world
// enumeration (Equation 1). Exponential in |E|; tiny graphs only.
func ExactProbabilityOf(g *ugraph.Graph, pred func(w *ugraph.World) bool) float64 {
	var pr float64
	ugraph.EnumerateWorlds(g, func(w *ugraph.World, p float64) {
		if pred(w) {
			pr += p
		}
	})
	return pr
}

// ExactMeanVector computes the exact expectation of a vector-valued
// per-world function by exhaustive enumeration. Tiny graphs only.
func ExactMeanVector(g *ugraph.Graph, dim int, fn func(w *ugraph.World, out []float64)) []float64 {
	mean := make([]float64, dim)
	out := make([]float64, dim)
	ugraph.EnumerateWorlds(g, func(w *ugraph.World, p float64) {
		for j := range out {
			out[j] = 0
		}
		fn(w, out)
		for j, v := range out {
			mean[j] += p * v
		}
	})
	return mean
}
