package mc

import (
	"fmt"
	"math"
	"time"
)

// Target is a sequential-stopping accuracy target: keep sampling until the
// normal-approximation confidence interval of the estimate has half-width at
// most Eps at confidence 1−Delta. Estimators that track several quantities
// at once (per-pair reliabilities) stop when every tracked estimate meets
// the target.
//
// Stopping is batch-granular and deterministic: rounds are a pure function
// of the Target (MinSamples doubling up to MaxSamples), decisions are made
// only between rounds from deterministic accumulators, and each round is a
// fixed-budget engine run — so for a fixed seed the stopped sample count and
// the estimate are reproducible across worker counts and lane widths.
type Target struct {
	// Eps is the confidence-interval half-width to reach, in the units of
	// the estimate (reliability and connectivity are probabilities, so
	// Eps 0.01 means ±1 percentage point).
	Eps float64
	// Delta is the allowed miss probability: 0.05 (the default) asks for a
	// 95% confidence interval.
	Delta float64
	// MinSamples is the first round's budget (default 128): the normal
	// approximation needs some mass before half-widths mean anything.
	MinSamples int
	// MaxSamples caps the total budget (default 131072). A run stopping at
	// the cap reports Converged false.
	MaxSamples int
	// Deadline, when non-zero, bounds the run in wall-clock time: a new
	// round is skipped if it is predicted (2× the previous round, since
	// budgets double) to overshoot the deadline, and the run returns
	// whatever accuracy the completed rounds achieved (Converged false).
	// This is the graceful-degradation escape hatch: a deadline-bounded run
	// trades the schedule's timing-independence for an answer that arrives
	// in time, so only serving paths under pressure should set it.
	Deadline time.Time
}

// WithConfidence returns the sequential-stopping target with CI half-width
// eps at confidence 1−delta — the Options.Target value behind the
// "-confidence eps,delta" flags. A delta of 0 selects the default 0.05.
func WithConfidence(eps, delta float64) *Target {
	return &Target{Eps: eps, Delta: delta}
}

// WithDefaults returns t with zero fields replaced by their defaults.
func (t Target) WithDefaults() Target {
	if t.Delta == 0 {
		t.Delta = 0.05
	}
	if t.MinSamples == 0 {
		t.MinSamples = 128
	}
	if t.MaxSamples == 0 {
		t.MaxSamples = 1 << 17
	}
	return t
}

func (t Target) validate() error {
	d := t.WithDefaults()
	if !(d.Eps > 0 && d.Eps < 1) {
		return fmt.Errorf("%w: eps %v outside (0,1)", ErrConfidence, t.Eps)
	}
	if !(d.Delta > 0 && d.Delta < 1) {
		return fmt.Errorf("%w: delta %v outside (0,1)", ErrConfidence, t.Delta)
	}
	if t.MinSamples < 0 || t.MaxSamples < 0 || d.MinSamples > d.MaxSamples {
		return fmt.Errorf("%w: sample schedule min %d / max %d", ErrConfidence, t.MinSamples, t.MaxSamples)
	}
	return nil
}

// Z returns the two-sided normal quantile of the target's confidence level:
// the CI half-width at n samples is Z·σ̂/√n. Delta 0.05 gives the familiar
// 1.96.
func (t Target) Z() float64 {
	return math.Sqrt2 * math.Erfinv(1-t.WithDefaults().Delta)
}

// HalfWidth is the normal-approximation CI half-width of a Bernoulli
// estimate with hits successes in n draws, at the target's confidence.
func (t Target) HalfWidth(hits, n int) float64 {
	if n == 0 {
		return math.Inf(1)
	}
	p := float64(hits) / float64(n)
	return t.Z() * math.Sqrt(p*(1-p)/float64(n))
}

// RunInfo reports what a Monte-Carlo run actually did: the worlds sampled,
// the adaptive rounds taken (1 for fixed-budget runs), and whether a
// sequential-stopping run met its target before MaxSamples.
type RunInfo struct {
	Samples   int
	Rounds    int
	Converged bool
	// AchievedEps is the widest CI half-width across the run's tracked
	// estimates at stop, filled by adaptive estimators (0 for fixed-budget
	// runs). For a converged run it is ≤ Target.Eps; for a degraded run it
	// tells the client how much accuracy the answer actually carries.
	AchievedEps float64
}

// RunAdaptive drives a sequential-stopping run in deterministic rounds:
// run(offset, n) must evaluate stream samples [offset, offset+n) with a
// fixed-budget engine pass and fold them into caller-held accumulators;
// met(total) inspects those accumulators between rounds and reports whether
// every tracked estimate meets the target with total samples drawn. Round
// budgets double from MinSamples and are clamped at MaxSamples, so the
// schedule — and therefore the stopped estimate — depends only on the
// Target and the met decisions, never on timing or Workers.
// Deadline-bounded runs additionally stop between rounds when the deadline
// has passed or the next round is predicted to overshoot it; at least one
// round always runs, so a deadline-bounded query degrades to a coarse answer
// rather than no answer.
func RunAdaptive(t *Target, run func(offset, n int) error, met func(total int) bool) (RunInfo, error) {
	d := t.WithDefaults()
	info := RunInfo{}
	var lastRound time.Duration
	for info.Samples < d.MaxSamples {
		if info.Rounds > 0 && !d.Deadline.IsZero() {
			now := time.Now()
			// The next round doubles the total, i.e. redraws as many worlds
			// as every round so far combined: predict 2× the last duration.
			if !now.Before(d.Deadline) || now.Add(2*lastRound).After(d.Deadline) {
				return info, nil
			}
		}
		n := d.MinSamples
		if info.Samples > 0 {
			n = info.Samples // double the total each round
		}
		if rest := d.MaxSamples - info.Samples; n > rest {
			n = rest
		}
		start := time.Now()
		if err := run(info.Samples, n); err != nil {
			return RunInfo{}, err
		}
		lastRound = time.Since(start)
		info.Samples += n
		info.Rounds++
		if met(info.Samples) {
			info.Converged = true
			return info, nil
		}
	}
	return info, nil
}
