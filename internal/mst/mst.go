// Package mst computes maximum spanning trees and forests of uncertain
// graphs, using edge probabilities as weights. It also provides the iterated
// forest decomposition that underlies both Backbone Graph Initialization
// (Algorithm 1 of the paper) and the Nagamochi–Ibaraki benchmark.
package mst

import (
	"sort"

	"ugs/internal/ds"
	"ugs/internal/ugraph"
)

// MaximumSpanningForest returns the edge identifiers of a maximum-weight
// spanning forest of g (weights = probabilities), computed with Kruskal's
// algorithm. On a connected graph the result is a maximum spanning tree.
// Ties are broken by edge identifier, making the result deterministic.
func MaximumSpanningForest(g *ugraph.Graph) []int {
	d := NewForestDecomposer(g)
	return d.NextForest()
}

// ForestDecomposer iteratively peels maximum spanning forests off a graph:
// each call to NextForest computes a maximum spanning forest of the edges
// not returned by any previous call, removes those edges from the available
// set, and returns them. Once the edge set is exhausted NextForest returns
// nil.
//
// This is the decomposition used by BGI: the first forest is a maximum
// spanning tree of G, the second a maximum spanning forest of G minus the
// tree, and so on.
type ForestDecomposer struct {
	g      *ugraph.Graph
	sorted []int // all edge IDs, by descending probability
	used   []bool
	left   int
	uf     *ds.UnionFind
}

// NewForestDecomposer prepares a decomposer for g. The edge ordering is
// computed once and reused across forests.
func NewForestDecomposer(g *ugraph.Graph) *ForestDecomposer {
	ids := make([]int, g.NumEdges())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		pa, pb := g.Prob(ids[a]), g.Prob(ids[b])
		if pa != pb {
			return pa > pb
		}
		return ids[a] < ids[b]
	})
	return &ForestDecomposer{
		g:      g,
		sorted: ids,
		used:   make([]bool, g.NumEdges()),
		left:   g.NumEdges(),
		uf:     ds.NewUnionFind(g.NumVertices()),
	}
}

// Remaining reports how many edges have not yet been returned by NextForest.
func (d *ForestDecomposer) Remaining() int { return d.left }

// NextForest returns the next maximum spanning forest over the remaining
// edges, or nil when no edges remain.
func (d *ForestDecomposer) NextForest() []int {
	if d.left == 0 {
		return nil
	}
	d.uf.Reset()
	var forest []int
	for _, id := range d.sorted {
		if d.used[id] {
			continue
		}
		e := d.g.Edge(id)
		if d.uf.Union(e.U, e.V) {
			forest = append(forest, id)
			d.used[id] = true
			d.left--
		}
	}
	return forest
}

// Weight sums the probabilities of the given edges of g.
func Weight(g *ugraph.Graph, edgeIDs []int) float64 {
	var w float64
	for _, id := range edgeIDs {
		w += g.Prob(id)
	}
	return w
}
