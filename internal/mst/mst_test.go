package mst

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ugs/internal/ds"
	"ugs/internal/ugraph"
)

func randomGraph(rng *rand.Rand, n int, density float64) *ugraph.Graph {
	b := ugraph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				if err := b.AddEdge(u, v, 0.01+0.99*rng.Float64()); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.Graph()
}

// bruteMaxForestWeight enumerates all edge subsets of a tiny graph and
// returns the maximum total weight of an acyclic subset (i.e. the weight of
// a maximum spanning forest).
func bruteMaxForestWeight(g *ugraph.Graph) float64 {
	m := g.NumEdges()
	best := 0.0
	for mask := 0; mask < 1<<uint(m); mask++ {
		uf := ds.NewUnionFind(g.NumVertices())
		w := 0.0
		acyclic := true
		for id := 0; id < m; id++ {
			if mask&(1<<uint(id)) == 0 {
				continue
			}
			e := g.Edge(id)
			if !uf.Union(e.U, e.V) {
				acyclic = false
				break
			}
			w += e.P
		}
		if acyclic && w > best {
			best = w
		}
	}
	return best
}

func TestMaximumSpanningForestAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(6), 0.5)
		if g.NumEdges() == 0 || g.NumEdges() > 14 {
			return true
		}
		got := Weight(g, MaximumSpanningForest(g))
		want := bruteMaxForestWeight(g)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMaximumSpanningForestIsSpanningOnConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 30, 0.3)
	lc, _, err := g.LargestComponent()
	if err != nil {
		t.Fatal(err)
	}
	forest := MaximumSpanningForest(lc)
	if len(forest) != lc.NumVertices()-1 {
		t.Fatalf("forest has %d edges, want %d (spanning tree)", len(forest), lc.NumVertices()-1)
	}
	// Tree must be acyclic and span all vertices.
	uf := ds.NewUnionFind(lc.NumVertices())
	for _, id := range forest {
		e := lc.Edge(id)
		if !uf.Union(e.U, e.V) {
			t.Fatal("forest contains a cycle")
		}
	}
	if uf.Sets() != 1 {
		t.Errorf("forest spans %d components, want 1", uf.Sets())
	}
}

func TestForestDecomposerPartitionsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 20, 0.4)
	d := NewForestDecomposer(g)
	seen := make([]bool, g.NumEdges())
	total := 0
	for {
		f := d.NextForest()
		if f == nil {
			break
		}
		if len(f) == 0 {
			t.Fatal("NextForest returned empty non-nil forest")
		}
		uf := ds.NewUnionFind(g.NumVertices())
		for _, id := range f {
			if seen[id] {
				t.Fatalf("edge %d in two forests", id)
			}
			seen[id] = true
			e := g.Edge(id)
			if !uf.Union(e.U, e.V) {
				t.Fatal("forest contains a cycle")
			}
		}
		total += len(f)
	}
	if total != g.NumEdges() {
		t.Errorf("forests covered %d edges, want %d", total, g.NumEdges())
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d after exhaustion", d.Remaining())
	}
	if d.NextForest() != nil {
		t.Error("NextForest after exhaustion not nil")
	}
}

// TestForestDecomposerMaximality checks the NI-style invariant that each
// successive forest is maximal: an edge left for a later forest could not
// have been added to an earlier one without creating a cycle... which for
// Kruskal on descending weights means each forest is itself a maximum
// spanning forest of the remaining edges.
func TestForestDecomposerMaximality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(5), 0.6)
		if g.NumEdges() == 0 || g.NumEdges() > 12 {
			return true
		}
		d := NewForestDecomposer(g)
		removed := map[int]bool{}
		for {
			forest := d.NextForest()
			if forest == nil {
				break
			}
			// Rebuild the remaining-graph and compare weights.
			var restIDs []int
			for id := 0; id < g.NumEdges(); id++ {
				if !removed[id] {
					restIDs = append(restIDs, id)
				}
			}
			rest, err := g.EdgeSubgraph(restIDs)
			if err != nil {
				return false
			}
			want := bruteMaxForestWeight(rest)
			if math.Abs(Weight(g, forest)-want) > 1e-9 {
				return false
			}
			for _, id := range forest {
				removed[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := ugraph.MustNew(3, nil)
	if f := MaximumSpanningForest(g); f != nil {
		t.Errorf("forest of edgeless graph = %v, want nil", f)
	}
}
