// Package spanner adapts the Baswana–Sen randomized (2t−1)-spanner to
// uncertain graphs, as the paper's benchmark SS (Section 3.2 and Algorithm 5
// of the appendix):
//
//  1. Transform probabilities to weights w_e = −log p_e, so low-weight paths
//     are the most probable paths of the uncertain graph.
//  2. Run Baswana–Sen clustering for t−1 rounds to obtain a (2t−1)-spanner
//     of expected size O(t·n^{1+1/t}).
//  3. Calibrate the integer stretch parameter t so the spanner fits the
//     α|E| edge budget (t can only move in integer steps).
//  4. Fill any remaining budget by Bernoulli sampling of leftover edges.
//
// The spanner keeps the original edge probabilities: unlike the proposed
// methods, SS performs no probability redistribution — which is precisely
// why it underperforms on uncertain graphs (Section 6).
package spanner

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ugs/internal/core"
	"ugs/internal/ugraph"
)

// Options tunes the SS benchmark sparsifier.
type Options struct {
	// MaxT bounds the stretch-parameter search. Default 32.
	MaxT int
	// Seed drives cluster sampling and fill-up.
	Seed int64
	// Progress, when non-nil, receives a RunStats snapshot after every
	// spanner construction of the stretch-parameter search.
	Progress func(core.RunStats)
}

func (o *Options) defaults() {
	if o.MaxT == 0 {
		o.MaxT = 32
	}
}

// Sparsify reduces g to α·|E| edges with the SS benchmark. The returned
// RunStats reports the spanner constructions of the stretch search
// (Iterations), the final stretch parameter (StretchT) and the raw spanner
// size before truncation/fill-up (AuxEdges). Cancelling ctx aborts between
// spanner constructions and returns the context's error.
func Sparsify(ctx context.Context, g *ugraph.Graph, alpha float64, opts Options) (*ugraph.Graph, *core.RunStats, error) {
	opts.defaults()
	if !(alpha > 0 && alpha < 1) {
		return nil, nil, fmt.Errorf("spanner: sparsification ratio α = %v outside (0,1)", alpha)
	}
	m := g.NumEdges()
	target := int(math.Round(alpha * float64(m)))
	if target < 1 || target >= m {
		return nil, nil, fmt.Errorf("spanner: α = %v yields invalid target %d of %d edges", alpha, target, m)
	}

	weights := make([]float64, m)
	for id, e := range g.Edges() {
		weights[id] = -math.Log(e.P)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	n := float64(g.NumVertices())

	// Initial t from α|E| = t·n^{1+1/t}; expected spanner size decreases
	// with t, so search upward from the smallest t whose expected size
	// fits, rerunning while the realized size overshoots. One scratch
	// serves every spanner construction of the search.
	t := 1
	for t < opts.MaxT && float64(t)*math.Pow(n, 1+1/float64(t)) > float64(target) {
		t++
	}
	sc := newBSScratch(g.NumVertices(), m)
	var edges []int
	builds := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		edges = baswanaSen(g, weights, t, rand.New(rand.NewSource(rng.Int63())), sc)
		builds++
		if opts.Progress != nil {
			opts.Progress(core.RunStats{Iterations: builds, StretchT: t, AuxEdges: len(edges)})
		}
		if len(edges) <= target || t >= opts.MaxT {
			break
		}
		t++
	}
	spannerEdges := len(edges)
	if len(edges) > target {
		// Budget is binding even at MaxT: keep the lightest edges (the
		// most probable ones) deterministically.
		sortByWeight(edges, weights)
		edges = edges[:target]
	}

	in := make([]bool, m)
	for _, id := range edges {
		in[id] = true
	}
	selected := append([]int(nil), edges...)
	for len(selected) < target {
		progressed := false
		for _, id := range rng.Perm(m) {
			if len(selected) >= target {
				break
			}
			if in[id] {
				continue
			}
			if rng.Float64() < g.Prob(id) {
				in[id] = true
				selected = append(selected, id)
				progressed = true
			}
		}
		if !progressed {
			for _, id := range g.SortedEdgeIDsByProb() {
				if len(selected) >= target {
					break
				}
				if !in[id] {
					in[id] = true
					selected = append(selected, id)
				}
			}
		}
	}

	sort.Ints(selected)                  // canonical output edge order
	out, err := g.EdgeSubgraph(selected) // keeps original probabilities
	if err != nil {
		return nil, nil, err
	}
	stats := &core.RunStats{Iterations: builds, StretchT: t, AuxEdges: spannerEdges}
	return out, stats, nil
}

// bsScratch holds every buffer one Baswana–Sen construction needs, so the
// stretch-parameter search of Sparsify reuses a single allocation set across
// spanner builds (previously each build allocated per-vertex adjacency maps
// in every clustering round — thousands of allocations per SparsifySS).
//
// The per-vertex "least-weight edge to each adjacent cluster" table is keyed
// by cluster center (0..n-1) for live clusters and by n+v for a retired
// neighbor v, with bestID[key] < 0 meaning absent; touched keys are recorded
// and reset after each vertex, keeping the table warm across rounds.
type bsScratch struct {
	present   []bool
	inSpanner []bool
	spanner   []int
	cluster   []int
	next      []int
	isCenter  []bool
	centers   []int
	sampled   []bool
	bestID    []int32
	bestW     []float64
	touched   []int32
}

func newBSScratch(n, m int) *bsScratch {
	sc := &bsScratch{
		present:   make([]bool, m),
		inSpanner: make([]bool, m),
		spanner:   make([]int, 0, m),
		cluster:   make([]int, n),
		next:      make([]int, n),
		isCenter:  make([]bool, n),
		centers:   make([]int, 0, n),
		sampled:   make([]bool, n),
		bestID:    make([]int32, 2*n),
		bestW:     make([]float64, 2*n),
		touched:   make([]int32, 0, n),
	}
	for i := range sc.bestID {
		sc.bestID[i] = -1
	}
	return sc
}

// BaswanaSen computes a (2t−1)-spanner of g under the given edge weights and
// returns the selected edge identifiers. The expected size is
// O(t·n^{1+1/t}). The algorithm performs t−1 clustering rounds followed by a
// vertex–cluster joining round; t = 1 returns all edges (a 1-spanner).
func BaswanaSen(g *ugraph.Graph, weights []float64, t int, rng *rand.Rand) []int {
	return baswanaSen(g, weights, t, rng, newBSScratch(g.NumVertices(), g.NumEdges()))
}

// baswanaSen is BaswanaSen on caller-provided scratch. The returned slice
// aliases sc.spanner and is invalidated by the next call with the same
// scratch.
func baswanaSen(g *ugraph.Graph, weights []float64, t int, rng *rand.Rand, sc *bsScratch) []int {
	n := g.NumVertices()
	m := g.NumEdges()
	present := sc.present
	inSpanner := sc.inSpanner
	for i := 0; i < m; i++ {
		present[i] = true
		inSpanner[i] = false
	}
	spanner := sc.spanner[:0]
	add := func(id int) {
		if !inSpanner[id] {
			inSpanner[id] = true
			spanner = append(spanner, id)
		}
	}

	// bestOf records edge id as the candidate least-weight edge for key,
	// with the same weight-then-id tie-break the map version used.
	touched := sc.touched[:0]
	bestOf := func(key, id int) {
		switch {
		case sc.bestID[key] < 0:
			touched = append(touched, int32(key))
			sc.bestID[key] = int32(id)
			sc.bestW[key] = weights[id]
		case weights[id] < sc.bestW[key] || (weights[id] == sc.bestW[key] && id < int(sc.bestID[key])):
			sc.bestID[key] = int32(id)
			sc.bestW[key] = weights[id]
		}
	}
	resetTouched := func() {
		for _, key := range touched {
			sc.bestID[key] = -1
		}
		touched = touched[:0]
	}

	// cluster[v] = center of v's cluster, or -1 once v has fallen out of
	// the clustering (its remaining edges were fully resolved).
	cluster := sc.cluster
	for v := range cluster {
		cluster[v] = v
	}
	next := sc.next
	sampleProb := math.Pow(float64(n), -1/float64(t))

	for round := 1; round <= t-1; round++ {
		// Sample cluster centers, drawing in sorted order so results are
		// deterministic for a given rng seed.
		centers := sc.centers[:0]
		for _, c := range cluster {
			if c >= 0 && !sc.isCenter[c] {
				sc.isCenter[c] = true
				centers = append(centers, c)
			}
		}
		sort.Ints(centers)
		for _, c := range centers {
			sc.sampled[c] = rng.Float64() < sampleProb
		}

		for v := range next {
			if cluster[v] >= 0 && sc.sampled[cluster[v]] {
				next[v] = cluster[v] // sampled clusters survive
			} else {
				next[v] = -1
			}
		}

		for u := 0; u < n; u++ {
			if cluster[u] < 0 || sc.sampled[cluster[u]] {
				continue
			}
			// Least-weight edge from u to each adjacent cluster.
			for _, a := range g.Neighbors(u) {
				if !present[a.ID] {
					continue
				}
				c := cluster[a.To]
				if c < 0 || c == cluster[u] {
					continue
				}
				bestOf(c, a.ID)
			}

			// Least-weight edge into a sampled adjacent cluster, if any.
			eStarID, eStarW := -1, math.Inf(1)
			for _, key := range touched {
				c := int(key)
				if b := int(sc.bestID[c]); sc.sampled[c] && (sc.bestW[c] < eStarW || (sc.bestW[c] == eStarW && b < eStarID)) {
					eStarID, eStarW = b, sc.bestW[c]
				}
			}

			if eStarID < 0 {
				// No sampled neighbor: connect to every adjacent cluster
				// and retire u from the clustering.
				for _, key := range touched {
					c := int(key)
					add(int(sc.bestID[c]))
					removeClusterEdges(g, present, cluster, u, c)
				}
			} else {
				add(eStarID)
				joined := cluster[g.Edge(eStarID).Other(u)]
				next[u] = joined
				removeClusterEdges(g, present, cluster, u, joined)
				for _, key := range touched {
					c := int(key)
					if c != joined && sc.bestW[c] < eStarW {
						add(int(sc.bestID[c]))
						removeClusterEdges(g, present, cluster, u, c)
					}
				}
			}
			resetTouched()
		}

		// Reset the per-round center marks before cluster is overwritten.
		for _, c := range centers {
			sc.isCenter[c] = false
			sc.sampled[c] = false
		}
		sc.centers = centers[:0]
		cluster, next = next, cluster
		// Discard intra-cluster edges.
		for id := 0; id < m; id++ {
			if !present[id] {
				continue
			}
			e := g.Edge(id)
			if cluster[e.U] >= 0 && cluster[e.U] == cluster[e.V] {
				present[id] = false
			}
		}
	}

	// Vertex–cluster joining: each vertex keeps its least-weight edge to
	// every adjacent final cluster (and to each retired neighbor, keyed by
	// n + neighbor so retired vertices count individually).
	for u := 0; u < n; u++ {
		for _, a := range g.Neighbors(u) {
			if !present[a.ID] {
				continue
			}
			key := cluster[a.To]
			if key < 0 {
				key = n + a.To
			}
			bestOf(key, a.ID)
		}
		for _, key := range touched {
			add(int(sc.bestID[key]))
		}
		resetTouched()
	}
	sc.touched = touched[:0]
	sc.spanner = spanner
	return spanner
}

// removeClusterEdges discards all present edges between u and the cluster
// with the given center.
func removeClusterEdges(g *ugraph.Graph, present []bool, cluster []int, u, center int) {
	for _, a := range g.Neighbors(u) {
		if present[a.ID] && cluster[a.To] == center {
			present[a.ID] = false
		}
	}
}

func sortByWeight(ids []int, weights []float64) {
	sort.Slice(ids, func(a, b int) bool {
		wa, wb := weights[ids[a]], weights[ids[b]]
		if wa != wb {
			return wa < wb
		}
		return ids[a] < ids[b]
	})
}
