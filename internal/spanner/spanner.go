// Package spanner adapts the Baswana–Sen randomized (2t−1)-spanner to
// uncertain graphs, as the paper's benchmark SS (Section 3.2 and Algorithm 5
// of the appendix):
//
//  1. Transform probabilities to weights w_e = −log p_e, so low-weight paths
//     are the most probable paths of the uncertain graph.
//  2. Run Baswana–Sen clustering for t−1 rounds to obtain a (2t−1)-spanner
//     of expected size O(t·n^{1+1/t}).
//  3. Calibrate the integer stretch parameter t so the spanner fits the
//     α|E| edge budget (t can only move in integer steps).
//  4. Fill any remaining budget by Bernoulli sampling of leftover edges.
//
// The spanner keeps the original edge probabilities: unlike the proposed
// methods, SS performs no probability redistribution — which is precisely
// why it underperforms on uncertain graphs (Section 6).
package spanner

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ugs/internal/core"
	"ugs/internal/ugraph"
)

// Options tunes the SS benchmark sparsifier.
type Options struct {
	// MaxT bounds the stretch-parameter search. Default 32.
	MaxT int
	// Seed drives cluster sampling and fill-up.
	Seed int64
	// Progress, when non-nil, receives a RunStats snapshot after every
	// spanner construction of the stretch-parameter search.
	Progress func(core.RunStats)
}

func (o *Options) defaults() {
	if o.MaxT == 0 {
		o.MaxT = 32
	}
}

// Sparsify reduces g to α·|E| edges with the SS benchmark. The returned
// RunStats reports the spanner constructions of the stretch search
// (Iterations), the final stretch parameter (StretchT) and the raw spanner
// size before truncation/fill-up (AuxEdges). Cancelling ctx aborts between
// spanner constructions and returns the context's error.
func Sparsify(ctx context.Context, g *ugraph.Graph, alpha float64, opts Options) (*ugraph.Graph, *core.RunStats, error) {
	opts.defaults()
	if !(alpha > 0 && alpha < 1) {
		return nil, nil, fmt.Errorf("spanner: sparsification ratio α = %v outside (0,1)", alpha)
	}
	m := g.NumEdges()
	target := int(math.Round(alpha * float64(m)))
	if target < 1 || target >= m {
		return nil, nil, fmt.Errorf("spanner: α = %v yields invalid target %d of %d edges", alpha, target, m)
	}

	weights := make([]float64, m)
	for id, e := range g.Edges() {
		weights[id] = -math.Log(e.P)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	n := float64(g.NumVertices())

	// Initial t from α|E| = t·n^{1+1/t}; expected spanner size decreases
	// with t, so search upward from the smallest t whose expected size
	// fits, rerunning while the realized size overshoots.
	t := 1
	for t < opts.MaxT && float64(t)*math.Pow(n, 1+1/float64(t)) > float64(target) {
		t++
	}
	var edges []int
	builds := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		edges = BaswanaSen(g, weights, t, rand.New(rand.NewSource(rng.Int63())))
		builds++
		if opts.Progress != nil {
			opts.Progress(core.RunStats{Iterations: builds, StretchT: t, AuxEdges: len(edges)})
		}
		if len(edges) <= target || t >= opts.MaxT {
			break
		}
		t++
	}
	spannerEdges := len(edges)
	if len(edges) > target {
		// Budget is binding even at MaxT: keep the lightest edges (the
		// most probable ones) deterministically.
		sortByWeight(edges, weights)
		edges = edges[:target]
	}

	in := make([]bool, m)
	for _, id := range edges {
		in[id] = true
	}
	selected := append([]int(nil), edges...)
	for len(selected) < target {
		progressed := false
		for _, id := range rng.Perm(m) {
			if len(selected) >= target {
				break
			}
			if in[id] {
				continue
			}
			if rng.Float64() < g.Prob(id) {
				in[id] = true
				selected = append(selected, id)
				progressed = true
			}
		}
		if !progressed {
			for _, id := range g.SortedEdgeIDsByProb() {
				if len(selected) >= target {
					break
				}
				if !in[id] {
					in[id] = true
					selected = append(selected, id)
				}
			}
		}
	}

	sort.Ints(selected)                  // canonical output edge order
	out, err := g.EdgeSubgraph(selected) // keeps original probabilities
	if err != nil {
		return nil, nil, err
	}
	stats := &core.RunStats{Iterations: builds, StretchT: t, AuxEdges: spannerEdges}
	return out, stats, nil
}

// BaswanaSen computes a (2t−1)-spanner of g under the given edge weights and
// returns the selected edge identifiers. The expected size is
// O(t·n^{1+1/t}). The algorithm performs t−1 clustering rounds followed by a
// vertex–cluster joining round; t = 1 returns all edges (a 1-spanner).
func BaswanaSen(g *ugraph.Graph, weights []float64, t int, rng *rand.Rand) []int {
	n := g.NumVertices()
	m := g.NumEdges()
	present := make([]bool, m)
	for i := range present {
		present[i] = true
	}
	inSpanner := make([]bool, m)
	var spanner []int
	add := func(id int) {
		if !inSpanner[id] {
			inSpanner[id] = true
			spanner = append(spanner, id)
		}
	}

	// cluster[v] = center of v's cluster, or -1 once v has fallen out of
	// the clustering (its remaining edges were fully resolved).
	cluster := make([]int, n)
	for v := range cluster {
		cluster[v] = v
	}
	sampleProb := math.Pow(float64(n), -1/float64(t))

	for round := 1; round <= t-1; round++ {
		// Sample cluster centers, drawing in sorted order so results are
		// deterministic for a given rng seed.
		centerSet := make(map[int]bool)
		for _, c := range cluster {
			if c >= 0 {
				centerSet[c] = true
			}
		}
		centers := make([]int, 0, len(centerSet))
		for c := range centerSet {
			centers = append(centers, c)
		}
		sort.Ints(centers)
		sampled := make(map[int]bool)
		for _, c := range centers {
			if rng.Float64() < sampleProb {
				sampled[c] = true
			}
		}

		next := make([]int, n)
		for v := range next {
			if cluster[v] >= 0 && sampled[cluster[v]] {
				next[v] = cluster[v] // sampled clusters survive
			} else {
				next[v] = -1
			}
		}

		for u := 0; u < n; u++ {
			if cluster[u] < 0 || sampled[cluster[u]] {
				continue
			}
			// Least-weight edge from u to each adjacent cluster.
			type best struct {
				id int
				w  float64
			}
			adj := make(map[int]best)
			for _, a := range g.Neighbors(u) {
				if !present[a.ID] {
					continue
				}
				c := cluster[a.To]
				if c < 0 || c == cluster[u] {
					continue
				}
				if b, ok := adj[c]; !ok || weights[a.ID] < b.w || (weights[a.ID] == b.w && a.ID < b.id) {
					adj[c] = best{a.ID, weights[a.ID]}
				}
			}

			// Least-weight edge into a sampled adjacent cluster, if any.
			eStar := best{-1, math.Inf(1)}
			for c, b := range adj {
				if sampled[c] && (b.w < eStar.w || (b.w == eStar.w && b.id < eStar.id)) {
					eStar = b
				}
			}

			if eStar.id < 0 {
				// No sampled neighbor: connect to every adjacent cluster
				// and retire u from the clustering.
				for c, b := range adj {
					add(b.id)
					removeClusterEdges(g, present, cluster, u, c)
				}
			} else {
				add(eStar.id)
				joined := cluster[g.Edge(eStar.id).Other(u)]
				next[u] = joined
				removeClusterEdges(g, present, cluster, u, joined)
				for c, b := range adj {
					if c != joined && b.w < eStar.w {
						add(b.id)
						removeClusterEdges(g, present, cluster, u, c)
					}
				}
			}
		}

		cluster = next
		// Discard intra-cluster edges.
		for id := 0; id < m; id++ {
			if !present[id] {
				continue
			}
			e := g.Edge(id)
			if cluster[e.U] >= 0 && cluster[e.U] == cluster[e.V] {
				present[id] = false
			}
		}
	}

	// Vertex–cluster joining: each vertex keeps its least-weight edge to
	// every adjacent final cluster (and to each retired neighbor,
	// identified by the neighbor itself).
	for u := 0; u < n; u++ {
		type best struct {
			id int
			w  float64
		}
		adj := make(map[int]best)
		for _, a := range g.Neighbors(u) {
			if !present[a.ID] {
				continue
			}
			key := cluster[a.To]
			if key < 0 {
				key = -2 - a.To // retired vertices count individually
			}
			if b, ok := adj[key]; !ok || weights[a.ID] < b.w || (weights[a.ID] == b.w && a.ID < b.id) {
				adj[key] = best{a.ID, weights[a.ID]}
			}
		}
		for _, b := range adj {
			add(b.id)
		}
	}
	return spanner
}

// removeClusterEdges discards all present edges between u and the cluster
// with the given center.
func removeClusterEdges(g *ugraph.Graph, present []bool, cluster []int, u, center int) {
	for _, a := range g.Neighbors(u) {
		if present[a.ID] && cluster[a.To] == center {
			present[a.ID] = false
		}
	}
}

func sortByWeight(ids []int, weights []float64) {
	sort.Slice(ids, func(a, b int) bool {
		wa, wb := weights[ids[a]], weights[ids[b]]
		if wa != wb {
			return wa < wb
		}
		return ids[a] < ids[b]
	})
}
