package spanner

import (
	"container/heap"
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ugs/internal/ugraph"
)

func randomConnectedGraph(rng *rand.Rand, n int, density float64) *ugraph.Graph {
	b := ugraph.NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		if err := b.AddEdge(perm[i], perm[rng.Intn(i)], 0.05+0.9*rng.Float64()); err != nil {
			panic(err)
		}
	}
	g := b.Graph()
	b2 := ugraph.NewBuilder(n)
	for _, e := range g.Edges() {
		if err := b2.AddEdge(e.U, e.V, e.P); err != nil {
			panic(err)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < density {
				if err := b2.AddEdge(u, v, 0.05+0.9*rng.Float64()); err != nil {
					panic(err)
				}
			}
		}
	}
	return b2.Graph()
}

// dijkstra computes single-source shortest path distances over the subset of
// edges marked allowed (nil = all edges).
func dijkstra(g *ugraph.Graph, weights []float64, allowed []bool, src int) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, a := range g.Neighbors(it.v) {
			if allowed != nil && !allowed[a.ID] {
				continue
			}
			nd := it.d + weights[a.ID]
			if nd < dist[a.To] {
				dist[a.To] = nd
				heap.Push(pq, distItem{a.To, nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int
	d float64
}
type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func TestBaswanaSenStretchGuarantee(t *testing.T) {
	// A (2t−1)-spanner must satisfy dist_spanner(u,v) ≤ (2t−1)·dist_G(u,v)
	// for all pairs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 8+rng.Intn(20), 0.3)
		weights := make([]float64, g.NumEdges())
		for id, e := range g.Edges() {
			weights[id] = -math.Log(e.P)
		}
		tpar := 1 + rng.Intn(3)
		spanner := BaswanaSen(g, weights, tpar, rng)
		allowed := make([]bool, g.NumEdges())
		for _, id := range spanner {
			allowed[id] = true
		}
		stretch := float64(2*tpar - 1)
		for src := 0; src < g.NumVertices(); src++ {
			dg := dijkstra(g, weights, nil, src)
			dsp := dijkstra(g, weights, allowed, src)
			for v := range dg {
				if math.IsInf(dg[v], 1) {
					continue
				}
				if dsp[v] > stretch*dg[v]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBaswanaSenT1IsWholeGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnectedGraph(rng, 15, 0.4)
	weights := make([]float64, g.NumEdges())
	for id, e := range g.Edges() {
		weights[id] = -math.Log(e.P)
	}
	spanner := BaswanaSen(g, weights, 1, rng)
	if len(spanner) != g.NumEdges() {
		t.Errorf("t=1 spanner has %d edges, want all %d", len(spanner), g.NumEdges())
	}
}

func TestBaswanaSenSparsifiesDenseGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnectedGraph(rng, 60, 0.8)
	weights := make([]float64, g.NumEdges())
	for id, e := range g.Edges() {
		weights[id] = -math.Log(e.P)
	}
	spanner := BaswanaSen(g, weights, 3, rng)
	if len(spanner) >= g.NumEdges()*3/4 {
		t.Errorf("t=3 spanner kept %d of %d edges; no sparsification", len(spanner), g.NumEdges())
	}
}

func TestSparsifyBudgetAndOriginalProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnectedGraph(rng, 40, 0.4)
	for _, alpha := range []float64{0.16, 0.32, 0.64} {
		out, _, err := Sparsify(context.Background(), g, alpha, Options{Seed: 5})
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		want := int(math.Round(alpha * float64(g.NumEdges())))
		if out.NumEdges() != want {
			t.Errorf("alpha=%v: %d edges, want %d", alpha, out.NumEdges(), want)
		}
		// SS performs no probability redistribution.
		for i := 0; i < out.NumEdges(); i++ {
			e := out.Edge(i)
			id, ok := g.EdgeID(e.U, e.V)
			if !ok {
				t.Fatalf("edge (%d,%d) not in original", e.U, e.V)
			}
			if out.Prob(i) != g.Prob(id) {
				t.Errorf("edge (%d,%d): probability changed %v -> %v", e.U, e.V, g.Prob(id), out.Prob(i))
			}
		}
	}
}

func TestSparsifyDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomConnectedGraph(rng, 30, 0.3)
	a, _, err := Sparsify(context.Background(), g, 0.3, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Sparsify(context.Background(), g, 0.3, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different graphs")
	}
}

func TestSparsifyErrors(t *testing.T) {
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
	})
	for _, alpha := range []float64{0, 1, -0.5, 2} {
		if _, _, err := Sparsify(context.Background(), g, alpha, Options{}); err == nil {
			t.Errorf("alpha=%v accepted", alpha)
		}
	}
}

// TestBaswanaSenSteadyStateAllocsZero pins the scratch-reuse contract: with
// a warm bsScratch, one spanner construction performs no allocations, so the
// stretch-parameter search of Sparsify no longer pays per-build churn
// (previously each build allocated per-vertex cluster maps every round).
func TestBaswanaSenSteadyStateAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomConnectedGraph(rng, 60, 0.4)
	weights := make([]float64, g.NumEdges())
	for id, e := range g.Edges() {
		weights[id] = -math.Log(e.P)
	}
	sc := newBSScratch(g.NumVertices(), g.NumEdges())
	build := func() { baswanaSen(g, weights, 3, rand.New(rand.NewSource(9)), sc) }
	build() // warm the scratch
	// Budget 2: the per-build rand.New(rand.NewSource(...)) in this test
	// harness accounts for the only allocations; the construction itself
	// must not add any.
	if allocs := testing.AllocsPerRun(30, build); allocs > 2 {
		t.Errorf("warm baswanaSen run allocates %.1f per build, want ≤ 2 (rng only)", allocs)
	}
}

// TestBaswanaSenScratchReuseMatchesFreshScratch guards the reset logic: a
// reused scratch must produce exactly the edge set a fresh one does.
func TestBaswanaSenScratchReuseMatchesFreshScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomConnectedGraph(rng, 40, 0.5)
	weights := make([]float64, g.NumEdges())
	for id, e := range g.Edges() {
		weights[id] = -math.Log(e.P)
	}
	sc := newBSScratch(g.NumVertices(), g.NumEdges())
	// Dirty the scratch with constructions at other stretch parameters.
	baswanaSen(g, weights, 4, rand.New(rand.NewSource(1)), sc)
	baswanaSen(g, weights, 2, rand.New(rand.NewSource(2)), sc)
	for tpar := 1; tpar <= 4; tpar++ {
		want := BaswanaSen(g, weights, tpar, rand.New(rand.NewSource(33)))
		got := baswanaSen(g, weights, tpar, rand.New(rand.NewSource(33)), sc)
		sort.Ints(want)
		gotSorted := append([]int(nil), got...)
		sort.Ints(gotSorted)
		if len(gotSorted) != len(want) {
			t.Fatalf("t=%d: reused scratch selected %d edges, fresh %d", tpar, len(gotSorted), len(want))
		}
		for i := range want {
			if gotSorted[i] != want[i] {
				t.Fatalf("t=%d: edge sets differ at %d: %d vs %d", tpar, i, gotSorted[i], want[i])
			}
		}
	}
}

// TestSparsifyAllocBudget is the SparsifySS churn regression test: the full
// stretch search on this fixture stayed near 3.8k allocs/op before scratch
// reuse; the bound leaves room only for the per-build rng, the output
// subgraph and O(1) bookkeeping.
func TestSparsifyAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnectedGraph(rng, 40, 0.4)
	run := func() {
		if _, _, err := Sparsify(context.Background(), g, 0.16, Options{Seed: 5}); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs > 120 {
		t.Errorf("SparsifySS allocates %.1f per run on the 40-vertex fixture, want ≤ 120", allocs)
	}
}

func TestSparsifyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 10+rng.Intn(25), 0.25+0.3*rng.Float64())
		alpha := 0.2 + 0.5*rng.Float64()
		out, _, err := Sparsify(context.Background(), g, alpha, Options{Seed: seed})
		if err != nil {
			return false
		}
		return out.NumEdges() == int(math.Round(alpha*float64(g.NumEdges())))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
