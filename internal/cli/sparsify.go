// Package cli implements the entry points of the ugs command-line tools as
// ordinary functions: each Run* takes its argument vector and output
// streams and returns a process exit code. The cmd/ wrappers adapt them to
// main(); tests drive the full binaries in-process — same flag parsing,
// same exit codes, no subprocess — which is how the end-to-end pipeline
// suite exercises generate → sparsify → re-sparsify → experiment.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ugs"
)

// RunSparsify is the ugs command: sparsify an uncertain graph file.
func RunSparsify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ugs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "input graph file, text or .ugsb (required)")
		out      = fs.String("out", "", "output graph file; .ugsb writes binary (optional)")
		alpha    = fs.Float64("alpha", 0.25, "sparsification ratio α ∈ (0,1)")
		method   = fs.String("method", "gdb", "sparsifier: "+strings.Join(ugs.Methods(), ", "))
		disc     = fs.String("discrepancy", "absolute", "objective: absolute or relative")
		back     = fs.String("backbone", "spanning", "backbone: spanning or random")
		k        = fs.Int("k", 1, "cut order to preserve (GDB only; -1 for k=n)")
		h        = fs.Float64("h", 0.05, "entropy parameter in [0,1]")
		seed     = fs.Int64("seed", 1, "random seed")
		timeout  = fs.Duration("timeout", 0, "abort the run after this duration (0 = unbounded)")
		progress = fs.Bool("progress", false, "stream per-iteration statistics to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "ugs: -in is required")
		fs.Usage()
		return 2
	}

	sp, err := buildSparsifier(stderr, *method, *disc, *back, *k, *h, *seed, *progress)
	if err != nil {
		fmt.Fprintln(stderr, "ugs:", err)
		return 1
	}

	g, err := loadGraphAuto(*in)
	if err != nil {
		fmt.Fprintln(stderr, "ugs:", err)
		return 1
	}
	defer g.Close()
	fmt.Fprintf(stdout, "input:  %v  entropy=%.2f bits\n", g, g.Entropy())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	res, err := sp.Sparsify(ctx, g, *alpha)
	if err != nil {
		fmt.Fprintln(stderr, "ugs:", err)
		return 1
	}
	elapsed := time.Since(start)
	sparse := res.Graph

	rng := rand.New(rand.NewSource(*seed))
	fmt.Fprintf(stdout, "output: %v  entropy=%.2f bits (%.0f%% of original)\n",
		sparse, sparse.Entropy(), 100*ugs.RelativeEntropy(sparse, g))
	fmt.Fprintf(stdout, "method: %s  iterations=%d\n", sp.Name(), res.Stats.Iterations)
	fmt.Fprintf(stdout, "degree discrepancy MAE: absolute=%.4g relative=%.4g\n",
		ugs.MAEDegreeDiscrepancy(g, sparse, ugs.Absolute),
		ugs.MAEDegreeDiscrepancy(g, sparse, ugs.Relative))
	fmt.Fprintf(stdout, "sampled cut discrepancy MAE (k≤10): %.4g\n",
		ugs.MAECutDiscrepancy(g, sparse, 10, 100, rng))
	fmt.Fprintf(stdout, "elapsed: %v\n", elapsed)

	if *out != "" {
		if err := writeGraphAuto(*out, sparse); err != nil {
			fmt.Fprintln(stderr, "ugs:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	return 0
}

// buildSparsifier translates the flag values into a registry lookup. There
// is deliberately no per-method switch here: unknown methods fail inside
// Lookup with the registered alternatives listed.
func buildSparsifier(stderr io.Writer, method, disc, back string, k int, h float64, seed int64, progress bool) (ugs.Sparsifier, error) {
	d, err := ugs.ParseDiscrepancy(disc)
	if err != nil {
		return nil, err
	}
	b, err := ugs.ParseBackbone(back)
	if err != nil {
		return nil, err
	}
	opts := []ugs.Option{
		ugs.WithSeed(seed),
		ugs.WithDiscrepancy(d),
		ugs.WithBackbone(b),
		ugs.WithCutOrder(k),
		ugs.WithEntropy(h),
	}
	if progress {
		opts = append(opts, ugs.WithProgress(func(s ugs.RunStats) {
			fmt.Fprintln(stderr, progressLine(method, s))
		}))
	}
	return ugs.Lookup(method, opts...)
}

// progressLine renders the RunStats fields the named method actually
// populates: the D1 objective for gdb/emd (plus swaps for emd), pivot
// batches for lp, ε for NI calibrations, the stretch parameter for SS.
// Custom registrations get the generic iteration count.
func progressLine(method string, s ugs.RunStats) string {
	line := fmt.Sprintf("iter %d", s.Iterations)
	switch method {
	case "gdb":
		return fmt.Sprintf("%s  D1=%.6g", line, s.ObjectiveD1)
	case "emd":
		return fmt.Sprintf("%s  D1=%.6g swaps=%d", line, s.ObjectiveD1, s.Swaps)
	case "ni":
		return fmt.Sprintf("%s  ε=%.4g candidates=%d", line, s.Epsilon, s.AuxEdges)
	case "ss":
		return fmt.Sprintf("%s  t=%d candidates=%d", line, s.StretchT, s.AuxEdges)
	default:
		// lp reports pivot batches; custom methods report whatever their
		// Iterations field counts.
		return line
	}
}
