package cli

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ugs"
	"ugs/internal/serve"
)

// parseEdits reads the text edit-batch format from r: one edit per line,
// "insert <u> <v> <p>", "reweight <u> <v> <p>" or "delete <u> <v>", with
// blank lines and '#' comments ignored.
func parseEdits(r io.Reader) ([]ugs.EdgeEdit, error) {
	var edits []ugs.EdgeEdit
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		op, err := ugs.ParseEditOp(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		want := 4
		if op == ugs.EditDelete {
			want = 3
		}
		if len(fields) != want {
			return nil, fmt.Errorf("line %d: %s takes %d fields, got %d", line, op, want, len(fields))
		}
		u, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: vertex %q: %v", line, fields[1], err)
		}
		v, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("line %d: vertex %q: %v", line, fields[2], err)
		}
		ed := ugs.EdgeEdit{Op: op, U: u, V: v}
		if want == 4 {
			if ed.P, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return nil, fmt.Errorf("line %d: probability %q: %v", line, fields[3], err)
			}
		}
		edits = append(edits, ed)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edits) == 0 {
		return nil, fmt.Errorf("no edits")
	}
	return edits, nil
}

// RunPatch is the "ugs patch" verb: apply one atomic edge-edit batch, either
// to a running ugs-serve instance (-server, via PATCH
// /v1/graphs/{name}/edges) or to a local graph file (-in/-out). The batch
// comes from -edits (a file, or "-" for stdin) in the text format parseEdits
// documents.
func RunPatch(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ugs patch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		editsPath = fs.String("edits", "", `edit batch file, "-" for stdin (required); lines: insert|reweight <u> <v> <p>, delete <u> <v>`)
		server    = fs.String("server", "", "ugs-serve base URL; patches the named stored graph")
		graph     = fs.String("graph", "", "stored graph name (server mode, required)")
		expect    = fs.Int("expect-version", 0, "apply only if the stored graph is at this version (0 = unconditional)")
		in        = fs.String("in", "", "input graph file, text or .ugsb (local mode, required)")
		out       = fs.String("out", "", "output graph file (local mode, required)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "ugs patch:", err)
		return 1
	}
	if *editsPath == "" {
		fmt.Fprintln(stderr, "ugs patch: -edits is required")
		fs.Usage()
		return 2
	}
	var src io.Reader = os.Stdin
	if *editsPath != "-" {
		f, err := os.Open(*editsPath)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		src = f
	}
	edits, err := parseEdits(src)
	if err != nil {
		return fail(fmt.Errorf("%s: %w", *editsPath, err))
	}

	if *server != "" {
		if *graph == "" {
			fmt.Fprintln(stderr, "ugs patch: -graph is required with -server")
			return 2
		}
		specs := make([]serve.EditSpec, len(edits))
		for i, ed := range edits {
			specs[i] = serve.EditSpec{Op: ed.Op.String(), U: ed.U, V: ed.V, P: ed.P}
		}
		resp, err := serve.NewClient(*server).Patch(context.Background(), *graph,
			&serve.PatchRequest{Edits: specs, ExpectVersion: *expect})
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "patched %s: version %d, %d edit(s) applied, %d vertices, %d edges\n",
			resp.Graph, resp.Version, resp.Applied, resp.Info.Vertices, resp.Info.Edges)
		return 0
	}

	if *in == "" || *out == "" {
		fmt.Fprintln(stderr, "ugs patch: -in and -out are required (or -server and -graph)")
		fs.Usage()
		return 2
	}
	g, err := loadGraphAuto(*in)
	if err != nil {
		return fail(err)
	}
	defer g.Close()
	res, err := ugs.ApplyEdits(g, edits)
	if err != nil {
		return fail(err)
	}
	if err := writeGraphAuto(*out, res.Graph); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "patched %s -> %s: %d edit(s) applied (%d inserted), %d vertices, %d edges\n",
		*in, *out, len(edits), len(res.InsertedIDs), res.Graph.NumVertices(), res.Graph.NumEdges())
	return 0
}
