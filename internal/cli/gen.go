package cli

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"

	"ugs"
)

// RunGen is the ugs-gen command: generate synthetic uncertain graphs in the
// text interchange format.
func RunGen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ugs-gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind    = fs.String("kind", "social", "generator: social, flickr, twitter, densify")
		n       = fs.Int("n", 1000, "number of vertices")
		avgdeg  = fs.Float64("avgdeg", 20, "average structural degree (social)")
		meanp   = fs.Float64("meanp", 0.09, "mean edge probability")
		density = fs.Float64("density", 0.15, "fraction of complete graph (densify)")
		seed    = fs.Int64("seed", 1, "random seed")
		stream  = fs.Bool("stream", false, "stream a social graph straight to a .ugsb file in O(N) memory (million-edge scale)")
		out     = fs.String("out", "", "output file; .ugsb writes binary (required)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "ugs-gen: -out is required")
		fs.Usage()
		return 2
	}

	if *stream {
		if *kind != "social" {
			fmt.Fprintln(stderr, "ugs-gen: -stream supports -kind social only")
			return 2
		}
		if filepath.Ext(*out) != ".ugsb" {
			fmt.Fprintln(stderr, "ugs-gen: -stream writes the binary format; -out must end in .ugsb")
			return 2
		}
		n, m, err := ugs.StreamSocial(ugs.SocialConfig{
			N: *n, AvgDegree: *avgdeg, MeanProb: *meanp, Seed: *seed,
		}, *out)
		if err != nil {
			fmt.Fprintln(stderr, "ugs-gen:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s: %d vertices, %d edges (%s)\n", *out, n, m, humanBytes(fileSize(*out)))
		return 0
	}

	var g *ugs.Graph
	var err error
	switch *kind {
	case "social":
		g, err = ugs.GenerateSocial(ugs.SocialConfig{
			N: *n, AvgDegree: *avgdeg, MeanProb: *meanp, Seed: *seed,
		})
	case "flickr":
		g = ugs.FlickrLike(*n, *seed)
	case "twitter":
		g = ugs.TwitterLike(*n, *seed)
	case "densify":
		var base *ugs.Graph
		base, err = ugs.GenerateSocial(ugs.SocialConfig{
			N: *n, AvgDegree: 10, MeanProb: *meanp, Seed: *seed,
		})
		if err == nil {
			g, err = ugs.Densify(base, *density, *meanp, *seed+1)
		}
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(stderr, "ugs-gen:", err)
		return 1
	}

	if err := writeGraphAuto(*out, g); err != nil {
		fmt.Fprintln(stderr, "ugs-gen:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: %v  entropy=%.2f bits\n", *out, g, g.Entropy())
	return 0
}
