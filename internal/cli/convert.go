package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ugs"
)

// loadGraphAuto loads a graph by extension: a .ugsb file is opened as a
// fully validated memory mapping (no parsing), anything else is parsed as
// the text interchange format under trusted local-file limits.
func loadGraphAuto(path string) (*ugs.Graph, error) {
	if filepath.Ext(path) == ".ugsb" {
		return ugs.OpenMappedGraph(path)
	}
	return ugs.ReadGraphFile(path)
}

// writeGraphAuto writes a graph by extension: .ugsb binary (lossless),
// anything else text (which drops p = 0 edges, per the format contract).
func writeGraphAuto(path string, g *ugs.Graph) error {
	if filepath.Ext(path) == ".ugsb" {
		return ugs.WriteBinaryGraphFile(path, g)
	}
	return ugs.WriteGraphFile(path, g)
}

// RunConvert is the "ugs convert" verb: translate a graph between the text
// interchange format and the .ugsb binary format, in either direction (the
// output extension selects the target). Text → .ugsb is the usual
// direction: the binary file loads via mmap with no parsing, which is what
// ugs-serve's memory-budgeted store and the sparsify/query tools want for
// large graphs.
func RunConvert(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ugs convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in  = fs.String("in", "", "input graph file, text or .ugsb (required)")
		out = fs.String("out", "", "output graph file; a .ugsb extension writes binary, anything else text (required)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" || *out == "" {
		fmt.Fprintln(stderr, "ugs convert: -in and -out are required")
		fs.Usage()
		return 2
	}

	g, err := loadGraphAuto(*in)
	if err != nil {
		fmt.Fprintln(stderr, "ugs convert:", err)
		return 1
	}
	defer g.Close()
	if err := writeGraphAuto(*out, g); err != nil {
		fmt.Fprintln(stderr, "ugs convert:", err)
		return 1
	}

	inSize, outSize := fileSize(*in), fileSize(*out)
	fmt.Fprintf(stdout, "converted %s (%s) -> %s (%s): %d vertices, %d edges\n",
		*in, humanBytes(inSize), *out, humanBytes(outSize), g.NumVertices(), g.NumEdges())
	return 0
}

func fileSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}

// humanBytes renders a byte count with a binary suffix.
func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// parseBytes parses a byte size with an optional K/M/G binary suffix
// ("512M", "2G", "1048576"). Empty means 0.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad byte size %q (want e.g. 512M, 2G)", s)
	}
	return v * mult, nil
}
