package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ugs"
	"ugs/internal/faults"
	"ugs/internal/serve"
)

// parseConfidence parses a -confidence flag value "eps" or "eps,delta"
// into a sequential-stopping target (eps half-width at confidence
// 1−delta; delta defaults to 0.05). Empty means no target.
func parseConfidence(s string) (eps, delta float64, ok bool, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, 0, false, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > 2 {
		return 0, 0, false, fmt.Errorf("want \"eps\" or \"eps,delta\", got %q", s)
	}
	if eps, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
		return 0, 0, false, fmt.Errorf("eps: %v", err)
	}
	if len(parts) == 2 {
		if delta, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
			return 0, 0, false, fmt.Errorf("delta: %v", err)
		}
	}
	if !(eps > 0 && eps < 1) || delta < 0 || delta >= 1 {
		return 0, 0, false, fmt.Errorf("eps %v outside (0,1) or delta %v outside [0,1)", eps, delta)
	}
	return eps, delta, true, nil
}

// RunServe is the ugs-serve command: a long-lived HTTP JSON service over
// the sparsifier core. It installs SIGINT/SIGTERM handling and shuts down
// gracefully: in-flight requests drain, async jobs are cancelled through
// their contexts and awaited.
func RunServe(args []string, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return RunServeContext(ctx, args, stdout, stderr)
}

// RunServeContext is RunServe under a caller-supplied lifetime context —
// the in-process testing entry point: cancel ctx to trigger the same
// graceful shutdown a signal would.
func RunServeContext(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ugs-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8471", "listen address (host:port; port 0 picks a free port)")
		graphs      = fs.String("graphs", "", "directory of *.ugsb / *.ugs / *.txt graph files to load at startup")
		cacheSize   = fs.Int("cache", 128, "resident sparsified results (LRU entries)")
		queryCache  = fs.Int("query-cache", 1024, "cached query results (LRU entries)")
		workers     = fs.Int("workers", 0, "Monte-Carlo parallelism per flight (0 = GOMAXPROCS)")
		maxSamples  = fs.Int("max-samples", 20000, "per-request Monte-Carlo sample cap")
		storeBudget = fs.String("store-budget", "", "resident graph-bytes budget with K/M/G suffixes, e.g. 512M (empty = unlimited)")
		convertDir  = fs.String("convert-dir", "", "directory for .ugsb sidecars of converted text graphs and uploads (default: a temp dir)")
		drain       = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for requests and jobs")
		lanes       = fs.String("lanes", "auto", "default query engine width: auto (planner), 1 (scalar ablation), 64, 128 or 256 world lanes")
		fanOut      = fs.String("fan-out", "auto", "default pair-query source group size: auto (planner), 1 (per-source ablation) or 2..64 sources per traversal")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this side listener (e.g. localhost:6060; empty = disabled)")
		confidence  = fs.String("confidence", "", "default adaptive stopping target \"eps[,delta]\": sample until every estimate's CI half-width ≤ eps at confidence 1−delta (empty = fixed budgets)")
		worldCache  = fs.String("world-cache", "64M", "sampled-world cache budget with K/M/G suffixes (0 disables)")
		reqTimeout  = fs.Duration("request-timeout", 0, "per-request wall-clock cap for queries and sparsifications (0 = unbounded; a request's timeout_ms can only tighten it)")
		maxCost     = fs.String("max-cost", "", "admission-control capacity in cost units (samples × graph arcs) with K/M/G suffixes, e.g. 2G (empty = no admission control)")
		maxQueue    = fs.Int("max-queue", 64, "admission wait-queue length before shedding with 429 (negative = unbounded)")
		drainForce  = fs.Duration("drain-timeout", 5*time.Second, "extra budget for jobs to exit after forced cancellation when the -drain budget expires")
		faultsSpec  = fs.String("faults", "", "deterministic fault-injection spec \"point:action[=arg][@rate],...\", e.g. 'store.open:err@0.3' (testing only)")
		faultsSeed  = fs.Int64("faults-seed", 1, "seed for the fault injector's deterministic draws")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	budget, err := parseBytes(*storeBudget)
	if err != nil {
		fmt.Fprintln(stderr, "ugs-serve: -store-budget:", err)
		return 2
	}
	laneWidth, err := ugs.ParseLanes(*lanes)
	if err != nil {
		fmt.Fprintln(stderr, "ugs-serve: -lanes:", err)
		return 2
	}
	fanWidth, err := ugs.ParseFanOut(*fanOut)
	if err != nil {
		fmt.Fprintln(stderr, "ugs-serve: -fan-out:", err)
		return 2
	}
	var defConfidence *serve.Confidence
	if eps, delta, ok, err := parseConfidence(*confidence); err != nil {
		fmt.Fprintln(stderr, "ugs-serve: -confidence:", err)
		return 2
	} else if ok {
		if laneWidth == 1 {
			fmt.Fprintln(stderr, "ugs-serve: -confidence requires the batch engine; drop -lanes 1")
			return 2
		}
		defConfidence = &serve.Confidence{Eps: eps, Delta: delta}
	}
	worldBudget, err := parseBytes(*worldCache)
	if err != nil {
		fmt.Fprintln(stderr, "ugs-serve: -world-cache:", err)
		return 2
	}
	if worldBudget == 0 {
		worldBudget = -1 // explicit 0 disables; Config 0 means "default"
	}
	costCap, err := parseBytes(*maxCost)
	if err != nil {
		fmt.Fprintln(stderr, "ugs-serve: -max-cost:", err)
		return 2
	}
	injector, err := faults.Parse(*faultsSpec, *faultsSeed)
	if err != nil {
		fmt.Fprintln(stderr, "ugs-serve: -faults:", err)
		return 2
	}
	if injector != nil {
		fmt.Fprintf(stderr, "ugs-serve: FAULT INJECTION ACTIVE: %s (seed %d)\n", injector, *faultsSeed)
	}

	// The server base context deliberately does NOT derive from ctx: a
	// signal must first stop the listener and drain in-flight requests
	// (srv.Shutdown below), and only then cancel background work. A child
	// context would abort every in-flight sparsify the instant the signal
	// arrived, defeating the drain budget.
	srvCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	server, err := serve.New(srvCtx, serve.Config{
		GraphDir:          *graphs,
		SparsifyCacheSize: *cacheSize,
		QueryCacheSize:    *queryCache,
		Workers:           *workers,
		MaxSamples:        *maxSamples,
		StoreBudgetBytes:  budget,
		ConvertDir:        *convertDir,
		Lanes:             laneWidth,
		FanOut:            fanWidth,
		Confidence:        defConfidence,
		WorldCacheBytes:   worldBudget,
		RequestTimeout:    *reqTimeout,
		MaxCost:           costCap,
		MaxQueue:          *maxQueue,
		Faults:            injector,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ugs-serve:", err)
		return 1
	}
	defer server.Close()

	// The pprof endpoints ride a separate listener on their own mux, so
	// profiling is opt-in and never reachable through the service address
	// (the service mux stays closed-world for untrusted clients).
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "ugs-serve: -pprof:", err)
			return 1
		}
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Handler: pprofMux, ReadHeaderTimeout: 10 * time.Second}
		defer pprofSrv.Close()
		go func() { _ = pprofSrv.Serve(pln) }()
		fmt.Fprintf(stdout, "ugs-serve: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ugs-serve:", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return srvCtx },
	}
	fmt.Fprintf(stdout, "ugs-serve: %d graphs resident, listening on http://%s\n",
		server.Store().Len(), ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "ugs-serve:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: flip the drain gate (new requests get a typed 503
	// while connections stay answerable), stop accepting and drain in-flight
	// requests, cancel background work (jobs, flights) through the server
	// context, and wait for jobs to exit. A job that ignores cancellation
	// cannot wedge the shutdown: after the -drain budget its context is
	// force-cancelled, and after -drain-timeout more the process exits
	// regardless, reporting the stuck job.
	fmt.Fprintln(stdout, "ugs-serve: shutting down")
	server.StartDrain()
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), *drain)
	defer shutdownCancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "ugs-serve: shutdown:", err)
	}
	cancel()
	if !server.DrainJobs(*drain) {
		fmt.Fprintln(stderr, "ugs-serve: jobs did not drain within", *drain, "— forcing cancellation")
		server.CancelJobs()
		if !server.DrainJobs(*drainForce) {
			fmt.Fprintln(stderr, "ugs-serve: jobs still running after forced cancel; exiting anyway")
			<-serveErr
			return 1
		}
	}
	<-serveErr // Serve has returned ErrServerClosed by now
	fmt.Fprintln(stdout, "ugs-serve: bye")
	return 0
}
