package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ugs"
	"ugs/internal/exp"
)

// RunExp is the ugs-exp command: regenerate the paper's tables and figures
// on the synthetic stand-in datasets.
func RunExp(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ugs-exp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list available experiments")
		full    = fs.Bool("full", false, "paper-scale parameters (slow)")
		seed    = fs.Int64("seed", 42, "random seed")
		workers = fs.Int("workers", 0, "Monte-Carlo parallelism (0 = GOMAXPROCS)")
		scalar  = fs.Bool("scalar-queries", false, "use the scalar one-world-per-traversal estimators instead of the bit-parallel 64-world batch engine (ablation; results are bit-identical)")
		timeout = fs.Duration("timeout", 0, "abort the batch after this duration, checked between sparsification runs (0 = unbounded)")
		lanes   = fs.String("lanes", "auto", "batch-engine width: auto (planner), 1 (scalar ablation), 64, 128 or 256 world lanes; results are bit-identical at any width")
		fanOut  = fs.String("fan-out", "auto", "pair-query source group size: auto (planner), 1 (per-source ablation) or 2..64 sources per traversal; results are bit-identical at any fan-out")
		conf    = fs.String("confidence", "", "adaptive stopping target \"eps[,delta]\" for the pair estimators: sample until every CI half-width ≤ eps at confidence 1−delta (empty = fixed budgets)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	laneWidth, err := ugs.ParseLanes(*lanes)
	if err != nil {
		fmt.Fprintln(stderr, "ugs-exp: -lanes:", err)
		return 2
	}
	if *scalar && laneWidth > 1 {
		fmt.Fprintf(stderr, "ugs-exp: -scalar-queries contradicts -lanes %d\n", laneWidth)
		return 2
	}
	fanWidth, err := ugs.ParseFanOut(*fanOut)
	if err != nil {
		fmt.Fprintln(stderr, "ugs-exp: -fan-out:", err)
		return 2
	}
	confEps, confDelta, confSet, err := parseConfidence(*conf)
	if err != nil {
		fmt.Fprintln(stderr, "ugs-exp: -confidence:", err)
		return 2
	}
	if confSet && (*scalar || laneWidth == 1) {
		fmt.Fprintln(stderr, "ugs-exp: -confidence requires the batch engine; drop -scalar-queries / -lanes 1")
		return 2
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	ids := fs.Args()
	if len(ids) == 0 {
		fmt.Fprintln(stderr, "ugs-exp: specify experiment ids or \"all\" (see -list)")
		return 2
	}

	runCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}
	// Once the run is cancelled (first signal or timeout), unregister the
	// signal capture so a second Ctrl-C kills the process immediately
	// instead of being swallowed while a Monte-Carlo phase drains.
	go func() {
		<-runCtx.Done()
		stop()
	}()
	ctx := exp.NewContext(exp.Config{
		Full: *full, Seed: *seed, Workers: *workers, ScalarQueries: *scalar,
		Lanes: laneWidth, FanOut: fanWidth, ConfEps: confEps, ConfDelta: confDelta, Ctx: runCtx,
	})
	var experiments []exp.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		experiments = exp.All()
	} else {
		for _, id := range ids {
			e, ok := exp.ByID(id)
			if !ok {
				fmt.Fprintf(stderr, "ugs-exp: unknown experiment %q (see -list)\n", id)
				return 2
			}
			experiments = append(experiments, e)
		}
	}

	for _, e := range experiments {
		if err := runCtx.Err(); err != nil {
			fmt.Fprintf(stderr, "ugs-exp: aborted before %s: %v\n", e.ID, err)
			return 1
		}
		start := time.Now()
		if err := e.Run(stdout, ctx); err != nil {
			fmt.Fprintf(stderr, "ugs-exp: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
