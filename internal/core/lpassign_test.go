package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ugs/internal/ugraph"
)

func TestLPAssignRecoversFullGraph(t *testing.T) {
	// With the backbone equal to the whole edge set, the LP optimum
	// reproduces the original probabilities' degree vector exactly
	// (discrepancy 0 at every vertex).
	rng := rand.New(rand.NewSource(21))
	g := randomConnectedGraph(rng, 15, 0.4)
	backbone := make([]int, g.NumEdges())
	for i := range backbone {
		backbone[i] = i
	}
	out, _, err := LPAssign(context.Background(), g, backbone, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mae := MAEDegreeDiscrepancy(g, out, Absolute); mae > 1e-6 {
		t.Errorf("full-backbone LP MAE = %v, want ≈0", mae)
	}
}

func TestLPAssignOptimalForL1(t *testing.T) {
	// LP minimizes Σ|δA| (Theorem 1), so its degree-discrepancy L1 norm
	// must never exceed GDB's on the same backbone.
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 20, 0.35)
		backbone, err := SpanningBackbone(g, 0.4, BGIOptions{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		lpOut, _, err := LPAssign(context.Background(), g, backbone, nil)
		if err != nil {
			t.Fatal(err)
		}
		gdbOut, _, err := GDB(context.Background(), g, backbone, GDBOptions{H: 1, MaxIters: 200})
		if err != nil {
			t.Fatal(err)
		}
		lpMAE := MAEDegreeDiscrepancy(g, lpOut, Absolute)
		gdbMAE := MAEDegreeDiscrepancy(g, gdbOut, Absolute)
		if lpMAE > gdbMAE+1e-7 {
			t.Errorf("seed %d: LP MAE %v exceeds GDB MAE %v", seed, lpMAE, gdbMAE)
		}
	}
}

func TestLPAssignLemma1LegalVertices(t *testing.T) {
	// Lemma 1: there is an optimal assignment with d'_u ≤ d_u everywhere;
	// the LP formulation enforces it as a hard constraint.
	rng := rand.New(rand.NewSource(33))
	g := randomConnectedGraph(rng, 18, 0.4)
	backbone, err := SpanningBackbone(g, 0.35, BGIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := LPAssign(context.Background(), g, backbone, nil)
	if err != nil {
		t.Fatal(err)
	}
	d0 := g.ExpectedDegrees()
	d1 := out.ExpectedDegrees()
	for u := range d0 {
		if d1[u] > d0[u]+1e-6 {
			t.Errorf("vertex %d: sparsified degree %v exceeds original %v", u, d1[u], d0[u])
		}
	}
}

func TestLPAssignProbabilitiesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := randomConnectedGraph(rng, 16, 0.4)
	backbone, err := SpanningBackbone(g, 0.5, BGIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := LPAssign(context.Background(), g, backbone, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < out.NumEdges(); i++ {
		p := out.Prob(i)
		if p < -1e-9 || p > 1+1e-9 || math.IsNaN(p) {
			t.Errorf("edge %d probability %v outside [0,1]", i, p)
		}
	}
}

func TestLPAssignEmptyBackbone(t *testing.T) {
	g := ugraph.MustNew(3, []ugraph.Edge{{U: 0, V: 1, P: 0.5}})
	if _, _, err := LPAssign(context.Background(), g, nil, nil); err == nil {
		t.Error("empty backbone accepted")
	}
}
