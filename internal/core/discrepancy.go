// Package core implements the paper's uncertain-graph sparsification
// framework: Backbone Graph Initialization (Algorithm 1), Gradient Descent
// Backbone (Algorithm 2), Expectation-Maximization Degree (Algorithm 3), the
// optimal LP probability assignment (Theorem 1), and the k-cut update rules
// (Equations 13–16).
package core

import (
	"math"
	"math/rand"

	"ugs/internal/ugraph"
)

// Discrepancy selects which discrepancy a sparsifier minimizes.
type Discrepancy int

const (
	// Absolute minimizes δA(u) = d_u(G) − d_u(G'), emphasizing
	// high-degree vertices.
	Absolute Discrepancy = iota
	// Relative minimizes δR(u) = δA(u) / d_u(G), treating all degrees
	// equally.
	Relative
)

// String implements fmt.Stringer.
func (d Discrepancy) String() string {
	switch d {
	case Absolute:
		return "absolute"
	case Relative:
		return "relative"
	}
	return "unknown"
}

// tracker maintains the sparsifier's incremental state over the original
// graph's edge identifiers: current probabilities (0 for edges outside the
// backbone), current expected degrees, and the global missing probability
// mass Σ_e (p_G(e) − p_cur(e)) needed by the k-cut rules.
type tracker struct {
	g          *ugraph.Graph
	origDeg    []float64 // d_u(G)
	curDeg     []float64 // d_u(G') under current probabilities
	cur        []float64 // current probability per original edge id
	inBackbone []bool
	missing    float64 // Σ_e p_G(e) − p_cur(e) over all original edges
}

func newTracker(g *ugraph.Graph, backbone []int) *tracker {
	t := &tracker{
		g:          g,
		origDeg:    g.ExpectedDegrees(),
		curDeg:     make([]float64, g.NumVertices()),
		cur:        make([]float64, g.NumEdges()),
		inBackbone: make([]bool, g.NumEdges()),
		missing:    g.TotalProb(),
	}
	for _, id := range backbone {
		t.inBackbone[id] = true
		t.setProb(id, g.Prob(id))
	}
	return t
}

// setProb changes the current probability of edge id, updating degrees and
// the missing-mass accumulator.
func (t *tracker) setProb(id int, p float64) {
	e := t.g.Edge(id)
	dp := p - t.cur[id]
	t.curDeg[e.U] += dp
	t.curDeg[e.V] += dp
	t.missing -= dp
	t.cur[id] = p
}

// deltaA returns the absolute degree discrepancy of u under the current
// probabilities.
func (t *tracker) deltaA(u int) float64 { return t.origDeg[u] - t.curDeg[u] }

// delta returns the discrepancy of u of the requested type. For vertices
// isolated in G the relative discrepancy is defined as 0 (they have no
// incident probability mass to preserve).
func (t *tracker) delta(u int, dt Discrepancy) float64 {
	dA := t.deltaA(u)
	if dt == Relative {
		if t.origDeg[u] == 0 {
			return 0
		}
		return dA / t.origDeg[u]
	}
	return dA
}

// pi returns the π(u) normalizer of Equation (7): 1 for absolute
// discrepancy, C_G(u) (the expected degree in G) for relative.
func (t *tracker) pi(u int, dt Discrepancy) float64 {
	if dt == Relative {
		if d := t.origDeg[u]; d > 0 {
			return d
		}
	}
	return 1
}

// objectiveD1 evaluates D1 = Σ_u δ²(u), the squared-discrepancy objective of
// GDB and EMD.
func (t *tracker) objectiveD1(dt Discrepancy) float64 {
	var sum float64
	for u := 0; u < t.g.NumVertices(); u++ {
		d := t.delta(u, dt)
		sum += d * d
	}
	return sum
}

// missingAround returns Δ̂(e) of Equation (13): the probability deficit
// p_G(e1) − p̂(e1) summed over ALL original edges e1 with neither endpoint
// in {u0, v0}; eliminated edges contribute their full probability (p̂ = 0),
// exactly as a k-cut's discrepancy counts them. Edges incident to either
// endpoint contribute δA(u0) + δA(v0), with the doubly counted edge e added
// back.
//
// Note that the Δ̂ weight in Equation (14) decays as Θ(1/n), so on very
// small dense graphs the rule is dominated by the global deficit and can
// saturate probabilities; this is inherent to the published rule, not an
// implementation artifact.
func (t *tracker) missingAround(id int) float64 {
	e := t.g.Edge(id)
	own := t.g.Prob(id) - t.cur[id]
	return t.missing - t.deltaA(e.U) - t.deltaA(e.V) + own
}

// finalize materializes the sparsified uncertain graph from the current
// backbone membership and probabilities.
func (t *tracker) finalize() (*ugraph.Graph, error) {
	var ids []int
	for id, in := range t.inBackbone {
		if in {
			ids = append(ids, id)
		}
	}
	sub, err := t.g.EdgeSubgraph(ids)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		sub.SetProb(i, t.cur[id])
	}
	return sub, nil
}

// DegreeDiscrepancies returns δ(u) for every vertex, comparing the expected
// degrees of sparse against those of orig. Both graphs must share the vertex
// set. Used by the evaluation harness.
func DegreeDiscrepancies(orig, sparse *ugraph.Graph, dt Discrepancy) []float64 {
	d0 := orig.ExpectedDegrees()
	d1 := sparse.ExpectedDegrees()
	out := make([]float64, len(d0))
	for u := range d0 {
		delta := d0[u] - d1[u]
		if dt == Relative {
			if d0[u] == 0 {
				delta = 0
			} else {
				delta /= d0[u]
			}
		}
		out[u] = delta
	}
	return out
}

// MAEDegreeDiscrepancy returns the mean absolute error of the degree
// discrepancy over all vertices (the metric of Table 2 and Figure 6).
func MAEDegreeDiscrepancy(orig, sparse *ugraph.Graph, dt Discrepancy) float64 {
	ds := DegreeDiscrepancies(orig, sparse, dt)
	var sum float64
	for _, d := range ds {
		sum += math.Abs(d)
	}
	return sum / float64(len(ds))
}

// ExpectedCut returns the expected cut size of the vertex set S (given as a
// membership mask) in g: the sum of probabilities of edges with exactly one
// endpoint in S (Definition 1).
func ExpectedCut(g *ugraph.Graph, inS []bool) float64 {
	var c float64
	for _, e := range g.Edges() {
		if inS[e.U] != inS[e.V] {
			c += e.P
		}
	}
	return c
}

// MAECutDiscrepancy estimates the mean absolute cut discrepancy between orig
// and sparse by sampling, for each k = 1..maxK, cutsPerK uniformly random
// vertex sets of cardinality k (the protocol of Figure 4(a)). The discrepancy
// of each sampled cut is |C_G(S) − C_G'(S)|; the result is the grand mean.
func MAECutDiscrepancy(orig, sparse *ugraph.Graph, maxK, cutsPerK int, rng *rand.Rand) float64 {
	n := orig.NumVertices()
	if maxK > n {
		maxK = n
	}
	inS := make([]bool, n)
	var sum float64
	var count int
	for k := 1; k <= maxK; k++ {
		for c := 0; c < cutsPerK; c++ {
			perm := rng.Perm(n)
			for _, v := range perm[:k] {
				inS[v] = true
			}
			d := ExpectedCut(orig, inS) - ExpectedCut(sparse, inS)
			sum += math.Abs(d)
			count++
			for _, v := range perm[:k] {
				inS[v] = false
			}
		}
	}
	return sum / float64(count)
}
