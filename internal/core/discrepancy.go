// Package core implements the paper's uncertain-graph sparsification
// framework: Backbone Graph Initialization (Algorithm 1), Gradient Descent
// Backbone (Algorithm 2), Expectation-Maximization Degree (Algorithm 3), the
// optimal LP probability assignment (Theorem 1), and the k-cut update rules
// (Equations 13–16).
package core

import (
	"math"
	"math/rand"

	"ugs/internal/ugraph"
)

// Discrepancy selects which discrepancy a sparsifier minimizes.
type Discrepancy int

const (
	// Absolute minimizes δA(u) = d_u(G) − d_u(G'), emphasizing
	// high-degree vertices.
	Absolute Discrepancy = iota
	// Relative minimizes δR(u) = δA(u) / d_u(G), treating all degrees
	// equally.
	Relative
)

// String implements fmt.Stringer.
func (d Discrepancy) String() string {
	switch d {
	case Absolute:
		return "absolute"
	case Relative:
		return "relative"
	}
	return "unknown"
}

// tracker maintains the sparsifier's incremental state over the original
// graph's edge identifiers: current probabilities (0 for edges outside the
// backbone), current expected degrees, the global missing probability mass
// Σ_e (p_G(e) − p_cur(e)) needed by the k-cut rules, and the D1 objective
// under both discrepancy types, all updated in O(1) per probability change.
//
// Every change also advances a logical clock and stamps the two endpoints
// (and the global-mass stamp), which drives the epoch worklist of gdbSweeps
// and the heap refresh of EMD's E-phase: an edge whose endpoints carry no
// stamp newer than its last visit would recompute the exact same step, so
// it can be skipped without changing the result.
type tracker struct {
	g          *ugraph.Graph
	n          int       // |V|
	eu, ev     []int32   // edge endpoints, flattened for cache density
	origP      []float64 // p_G(e), the original probabilities
	origDeg    []float64 // d_u(G)
	invSq      []float64 // 1/d_u(G)², 0 for isolated vertices (δR weights)
	curDeg     []float64 // d_u(G') under current probabilities
	cur        []float64 // current probability per original edge id
	inBackbone []bool
	nBackbone  int     // backbone cardinality (swaps keep it constant)
	missing    float64 // Σ_e p_G(e) − p_cur(e) over all original edges

	d1Abs, d1Rel float64 // incrementally maintained Σ_u δ²(u) per objective

	tick       int64   // logical clock, advanced by every probability change
	vertStamp  []int64 // tick at which δ(u) last changed
	massStamp  int64   // tick at which the global missing mass last changed
	visitStamp []int64 // tick at which gdbSweeps last visited each edge
}

func newTracker(g *ugraph.Graph, backbone []int) *tracker {
	n, m := g.NumVertices(), g.NumEdges()
	t := &tracker{
		g:          g,
		n:          n,
		eu:         make([]int32, m),
		ev:         make([]int32, m),
		origP:      make([]float64, m),
		origDeg:    g.ExpectedDegrees(),
		invSq:      make([]float64, n),
		curDeg:     make([]float64, n),
		cur:        make([]float64, m),
		inBackbone: make([]bool, m),
		nBackbone:  len(backbone),
		missing:    g.TotalProb(),
		vertStamp:  make([]int64, n),
		visitStamp: make([]int64, m),
	}
	for id, e := range g.Edges() {
		t.eu[id], t.ev[id] = int32(e.U), int32(e.V)
		t.origP[id] = e.P
	}
	// All probability mass starts missing: D1 = Σ_u d_u(G)² (δR ≡ 1).
	for u, d := range t.origDeg {
		t.d1Abs += d * d
		if d > 0 {
			t.d1Rel++
			t.invSq[u] = 1 / (d * d)
		}
	}
	for _, id := range backbone {
		t.inBackbone[id] = true
		t.setProb(id, t.origP[id])
	}
	return t
}

// setProb changes the current probability of edge id, updating degrees, the
// missing-mass accumulator, both D1 objectives, and the worklist stamps —
// all in O(1).
func (t *tracker) setProb(id int, p float64) {
	dp := p - t.cur[id]
	if dp == 0 {
		return
	}
	u, v := int(t.eu[id]), int(t.ev[id])
	dAu := t.origDeg[u] - t.curDeg[u]
	dAv := t.origDeg[v] - t.curDeg[v]
	nu, nv := dAu-dp, dAv-dp
	su := nu*nu - dAu*dAu
	sv := nv*nv - dAv*dAv
	t.d1Abs += su + sv
	t.d1Rel += su*t.invSq[u] + sv*t.invSq[v]
	t.curDeg[u] += dp
	t.curDeg[v] += dp
	t.missing -= dp
	t.cur[id] = p
	t.tick++
	t.vertStamp[u] = t.tick
	t.vertStamp[v] = t.tick
	t.massStamp = t.tick
}

// deltaA returns the absolute degree discrepancy of u under the current
// probabilities.
func (t *tracker) deltaA(u int) float64 { return t.origDeg[u] - t.curDeg[u] }

// delta returns the discrepancy of u of the requested type. For vertices
// isolated in G the relative discrepancy is defined as 0 (they have no
// incident probability mass to preserve).
func (t *tracker) delta(u int, dt Discrepancy) float64 {
	dA := t.deltaA(u)
	if dt == Relative {
		if t.origDeg[u] == 0 {
			return 0
		}
		return dA / t.origDeg[u]
	}
	return dA
}

// pi returns the π(u) normalizer of Equation (7): 1 for absolute
// discrepancy, C_G(u) (the expected degree in G) for relative.
func (t *tracker) pi(u int, dt Discrepancy) float64 {
	if dt == Relative {
		if d := t.origDeg[u]; d > 0 {
			return d
		}
	}
	return 1
}

// cachedD1 returns the incrementally maintained D1 = Σ_u δ²(u). It is O(1);
// use objectiveD1 for an exact rescan that also resyncs the accumulators.
func (t *tracker) cachedD1(dt Discrepancy) float64 {
	if dt == Relative {
		return t.d1Rel
	}
	return t.d1Abs
}

// objectiveD1 evaluates D1 = Σ_u δ²(u) exactly by rescanning every vertex,
// and resyncs both incremental accumulators to the exact values, bounding
// the float drift of the O(1) updates. Called at convergence decisions; the
// per-update bookkeeping is cachedD1.
func (t *tracker) objectiveD1(dt Discrepancy) float64 {
	var abs, rel float64
	for u := 0; u < t.g.NumVertices(); u++ {
		dA := t.origDeg[u] - t.curDeg[u]
		abs += dA * dA
		if o := t.origDeg[u]; o > 0 {
			r := dA / o
			rel += r * r
		}
	}
	t.d1Abs, t.d1Rel = abs, rel
	return t.cachedD1(dt)
}

// missingAround returns Δ̂(e) of Equation (13): the probability deficit
// p_G(e1) − p̂(e1) summed over ALL original edges e1 with neither endpoint
// in {u0, v0}; eliminated edges contribute their full probability (p̂ = 0),
// exactly as a k-cut's discrepancy counts them. Edges incident to either
// endpoint contribute δA(u0) + δA(v0), with the doubly counted edge e added
// back.
//
// Note that the Δ̂ weight in Equation (14) decays as Θ(1/n), so on very
// small dense graphs the rule is dominated by the global deficit and can
// saturate probabilities; this is inherent to the published rule, not an
// implementation artifact.
func (t *tracker) missingAround(id int) float64 {
	own := t.origP[id] - t.cur[id]
	return t.missing - t.deltaA(int(t.eu[id])) - t.deltaA(int(t.ev[id])) + own
}

// finalize materializes the sparsified uncertain graph from the current
// backbone membership and probabilities.
func (t *tracker) finalize() (*ugraph.Graph, error) {
	ids := make([]int, 0, t.nBackbone)
	for id, in := range t.inBackbone {
		if in {
			ids = append(ids, id)
		}
	}
	sub, err := t.g.EdgeSubgraph(ids)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		sub.SetProb(i, t.cur[id])
	}
	return sub, nil
}

// DegreeDiscrepancies returns δ(u) for every vertex, comparing the expected
// degrees of sparse against those of orig. Both graphs must share the vertex
// set. Used by the evaluation harness.
func DegreeDiscrepancies(orig, sparse *ugraph.Graph, dt Discrepancy) []float64 {
	d0 := orig.ExpectedDegrees()
	d1 := sparse.ExpectedDegrees()
	out := make([]float64, len(d0))
	for u := range d0 {
		delta := d0[u] - d1[u]
		if dt == Relative {
			if d0[u] == 0 {
				delta = 0
			} else {
				delta /= d0[u]
			}
		}
		out[u] = delta
	}
	return out
}

// MAEDegreeDiscrepancy returns the mean absolute error of the degree
// discrepancy over all vertices (the metric of Table 2 and Figure 6).
func MAEDegreeDiscrepancy(orig, sparse *ugraph.Graph, dt Discrepancy) float64 {
	ds := DegreeDiscrepancies(orig, sparse, dt)
	var sum float64
	for _, d := range ds {
		sum += math.Abs(d)
	}
	return sum / float64(len(ds))
}

// ExpectedCut returns the expected cut size of the vertex set S (given as a
// membership mask) in g: the sum of probabilities of edges with exactly one
// endpoint in S (Definition 1). The cost is O(|E|); when S itself is at
// hand and small, ExpectedCutOf is cheaper.
func ExpectedCut(g *ugraph.Graph, inS []bool) float64 {
	var c float64
	for _, e := range g.Edges() {
		if inS[e.U] != inS[e.V] {
			c += e.P
		}
	}
	return c
}

// ExpectedCutOf returns the expected cut size of the vertex set S, given
// both as an explicit vertex list and as its membership mask (inS[v] must be
// true exactly for v ∈ S). It scans only the adjacency of S — O(Σ_{v∈S}
// deg v) instead of O(|E|) — which is what makes sampled small-k cut
// evaluation cheap.
func ExpectedCutOf(g *ugraph.Graph, s []int, inS []bool) float64 {
	var c float64
	for _, u := range s {
		for _, a := range g.Neighbors(u) {
			if !inS[a.To] {
				c += g.Prob(a.ID)
			}
		}
	}
	return c
}

// MAECutDiscrepancy estimates the mean absolute cut discrepancy between orig
// and sparse by sampling, for each k = 1..maxK, cutsPerK uniformly random
// vertex sets of cardinality k (the protocol of Figure 4(a)). The discrepancy
// of each sampled cut is |C_G(S) − C_G'(S)|; the result is the grand mean.
//
// Each set is drawn by a partial Fisher–Yates shuffle over a persistent
// permutation buffer (k swaps and k RNG draws per cut, not a full
// rng.Perm(n)), and both cuts are evaluated over the adjacency of S only.
// The sampled-set sequence is deterministic for a fixed seed.
func MAECutDiscrepancy(orig, sparse *ugraph.Graph, maxK, cutsPerK int, rng *rand.Rand) float64 {
	n := orig.NumVertices()
	if maxK > n {
		maxK = n
	}
	inS := make([]bool, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var sum float64
	var count int
	for k := 1; k <= maxK; k++ {
		for c := 0; c < cutsPerK; c++ {
			// Partial Fisher–Yates: after k swaps, perm[:k] is a uniform
			// random k-subset of the vertices.
			for i := 0; i < k; i++ {
				j := i + rng.Intn(n-i)
				perm[i], perm[j] = perm[j], perm[i]
			}
			s := perm[:k]
			for _, v := range s {
				inS[v] = true
			}
			d := ExpectedCutOf(orig, s, inS) - ExpectedCutOf(sparse, s, inS)
			sum += math.Abs(d)
			count++
			for _, v := range s {
				inS[v] = false
			}
		}
	}
	return sum / float64(count)
}
