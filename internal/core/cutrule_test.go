package core

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBinomSum(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{5, -1, 0},
		{5, 0, 1},
		{5, 1, 6},  // 1 + 5
		{5, 2, 16}, // 1 + 5 + 10
		{5, 5, 32}, // 2^5
		{5, 9, 32}, // clamped at n
		{0, 0, 1},
		{10, 3, 176}, // 1 + 10 + 45 + 120
	}
	for _, tc := range cases {
		if got := binomSum(tc.n, tc.k); got.Cmp(big.NewInt(tc.want)) != 0 {
			t.Errorf("binomSum(%d,%d) = %v, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestBinomSumFullRangeIsPowerOfTwo(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw % 60)
		want := new(big.Int).Lsh(big.NewInt(1), uint(n))
		return binomSum(n, n).Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCutRuleCoeffsK2MatchesEquation15(t *testing.T) {
	// Equation (15): stp = [(n−2)(δu+δv) + 4Δ] / (2n−2).
	for _, n := range []int{5, 10, 100, 2000} {
		c := cutRuleCoeffs(n, 2)
		wantDeg := float64(n-2) / float64(2*n-2)
		wantAround := 4.0 / float64(2*n-2)
		if math.Abs(c.degreeCoef-wantDeg) > 1e-12 {
			t.Errorf("n=%d: degreeCoef = %v, want %v", n, c.degreeCoef, wantDeg)
		}
		if math.Abs(c.aroundCoef-wantAround) > 1e-12 {
			t.Errorf("n=%d: aroundCoef = %v, want %v", n, c.aroundCoef, wantAround)
		}
	}
}

func TestCutRuleCoeffsLargeKStable(t *testing.T) {
	// Coefficient ratios must stay finite and sane even when the raw
	// binomial sums overflow float64 (n = 400, k = 200: C(400,200) ≈ 1e119).
	c := cutRuleCoeffs(400, 200)
	if !(c.degreeCoef > 0 && c.degreeCoef < 1) {
		t.Errorf("degreeCoef = %v, want in (0,1)", c.degreeCoef)
	}
	if !(c.aroundCoef > 0 && c.aroundCoef < 4) {
		t.Errorf("aroundCoef = %v, want in (0,4)", c.aroundCoef)
	}
}

func TestCutRuleCoeffsCached(t *testing.T) {
	a := cutRuleCoeffs(50, 3)
	b := cutRuleCoeffs(50, 3)
	if a != b {
		t.Error("cache returned different values")
	}
}

// TestGeneralRuleReducesToDegreeRuleAtK1 checks that Equation (14) with
// k = 1 produces exactly the Equation (9) absolute step, i.e. the
// coefficient ratios are (1/2, 0).
func TestGeneralRuleReducesToDegreeRuleAtK1(t *testing.T) {
	for _, n := range []int{5, 50, 1000} {
		denom := new(big.Float).SetInt(binomSum(n-2, 0))
		denom.Mul(denom, big.NewFloat(2))
		deg := new(big.Float).SetInt(binomSum(n-3, 0))
		ratio, _ := new(big.Float).Quo(deg, denom).Float64()
		if ratio != 0.5 {
			t.Errorf("n=%d: k=1 degree ratio = %v, want 0.5", n, ratio)
		}
		if binomSum(n-4, -1).Sign() != 0 {
			t.Errorf("n=%d: k=1 around term nonzero", n)
		}
	}
}
