package core

import (
	"math/big"
	"sync"
)

// This file implements the cut-preservation update rules of Section 5.
//
// The general rule (Equation 14) moves an edge's probability by
//
//	stp = [ (n−3 ¦ k−1)_Σ · (δA(u0) + δA(v0)) + 4·(n−4 ¦ k−2)_Σ · Δ̂(e) ]
//	      / ( 2·(n−2 ¦ k−1)_Σ )
//
// where (n ¦ k)_Σ = Σ_{i=0..k} C(n, i) is the paper's enumeration function
// (0 for k < 0, 1 for k = 0 so that the rule degenerates to the degree rule
// at k = 1), and Δ̂(e) is the missing probability mass over edges incident
// to neither endpoint of e.
//
// The binomial sums overflow float64 almost immediately, so coefficients are
// evaluated exactly with math/big and only their *ratios* — which are
// bounded — are converted to float64. Ratios depend only on (n, k) and are
// cached.

// cutCoeffs are the float64 ratios of the Equation (14) rule:
// stp = degreeCoef·(δA(u0)+δA(v0)) + aroundCoef·Δ̂(e).
type cutCoeffs struct {
	degreeCoef float64
	aroundCoef float64
}

var (
	cutCoeffMu    sync.Mutex
	cutCoeffCache = map[[2]int]cutCoeffs{}
)

// binomSum returns (n ¦ k)_Σ = Σ_{i=0..k} C(n, i) as a big.Int, with the
// conventions (n ¦ k)_Σ = 0 for k < 0 and C(n, i) = 0 for i > n. n must be
// non-negative.
func binomSum(n, k int) *big.Int {
	sum := new(big.Int)
	if k < 0 {
		return sum
	}
	if k > n {
		k = n
	}
	term := big.NewInt(1) // C(n, 0)
	sum.Set(term)
	for i := 1; i <= k; i++ {
		// C(n, i) = C(n, i−1) · (n−i+1) / i
		term.Mul(term, big.NewInt(int64(n-i+1)))
		term.Div(term, big.NewInt(int64(i)))
		sum.Add(sum, term)
	}
	return sum
}

// cutRuleCoeffs returns the cached Equation (14) coefficient ratios for a
// graph with n vertices and cut order k (2 ≤ k < n).
func cutRuleCoeffs(n, k int) cutCoeffs {
	key := [2]int{n, k}
	cutCoeffMu.Lock()
	defer cutCoeffMu.Unlock()
	if c, ok := cutCoeffCache[key]; ok {
		return c
	}
	denom := new(big.Float).SetInt(binomSum(n-2, k-1))
	denom.Mul(denom, big.NewFloat(2))
	deg := new(big.Float).SetInt(binomSum(n-3, k-1))
	around := new(big.Float).SetInt(binomSum(n-4, k-2))
	around.Mul(around, big.NewFloat(4))
	var c cutCoeffs
	c.degreeCoef, _ = new(big.Float).Quo(deg, denom).Float64()
	c.aroundCoef, _ = new(big.Float).Quo(around, denom).Float64()
	cutCoeffCache[key] = c
	return c
}

// KAll requests the k = n update rule (Equation 16), which redistributes the
// cumulative missing probability of eliminated edges over all remaining
// ones.
//
// Note on the formula: Equation (16) as printed sums p_{e1} − p̂_{e1} over
// e1 ∈ E′\{e}, which is identically zero at initialization (backbone edges
// start at their original probabilities) and would leave the graph
// untouched. The behaviors the paper describes — "distributes the
// cumulative probability of eliminated edges", "assigns the maximum
// probability p = 1 to all available edges" at small α, and by far the
// worst accuracy at larger α — all require the sum to range over E\{e},
// where eliminated edges contribute their full probability. That reading is
// implemented here.
const KAll = -1

// step computes the optimal (unclamped) probability change for backbone edge
// id under the requested discrepancy type and cut order k:
//
//   - k = 1: Equation (8), the degree-preservation step, with π weighting
//     for the relative variant;
//   - 2 ≤ k < n: Equation (13)/(14) via cached coefficient ratios;
//   - k = KAll (or k ≥ n): Equation (16).
//
// The caller applies the ⌊0·⌉1 clamp and the entropy cap of Equation (9).
func (t *tracker) step(id int, dt Discrepancy, k int) float64 {
	n := t.n
	if k >= n {
		k = KAll
	}
	switch {
	case k == 1:
		u, v := int(t.eu[id]), int(t.ev[id])
		dAu := t.origDeg[u] - t.curDeg[u]
		dAv := t.origDeg[v] - t.curDeg[v]
		if dt == Absolute {
			// π ≡ 1: (1·δA(u) + 1·δA(v)) / 2, the hot default path.
			return (dAu + dAv) * 0.5
		}
		pu, pv := t.pi(u, dt), t.pi(v, dt)
		return (pv*dAu + pu*dAv) / (pu + pv)
	case k == KAll:
		// Σ_{e1∈E\{e}} (p_G(e1) − p_cur(e1)): the total missing mass,
		// excluding e's own deficit (see the KAll doc comment).
		return t.missing - (t.origP[id] - t.cur[id])
	case k >= 2:
		c := cutRuleCoeffs(n, k)
		return c.degreeCoef*(t.deltaA(int(t.eu[id]))+t.deltaA(int(t.ev[id]))) + c.aroundCoef*t.missingAround(id)
	default:
		panic("core: cut order k must be ≥ 1 or KAll")
	}
}
