package core

import (
	"context"
	"fmt"
	"sort"

	"ugs/internal/ugraph"
)

// DynOptions configures a Dynamic sparsifier. Only the degree-preserving
// methods are supported (MethodGDB and MethodEMD, both at k = 1): the k-cut
// rules read global state that an incremental repair cannot re-dirty
// precisely.
type DynOptions struct {
	// Method is MethodGDB (default) or MethodEMD.
	Method Method
	// Discrepancy selects the δA or δR objective. Default Absolute.
	Discrepancy Discrepancy
	// Backbone selects the initial backbone construction. Default
	// BackboneSpanning.
	Backbone Backbone
	// H, Tau and MaxIters tune the initial optimization exactly as in
	// Options (MaxIters bounds GDB sweeps or EMD rounds). Zero values
	// select the usual defaults.
	H        float64
	Tau      float64
	MaxIters int
	// RepairSweeps bounds the worklist sweeps one Repair call runs — the
	// bounded-work-per-update knob of the dynamic sparsifier. Default 8.
	RepairSweeps int
	// Seed drives the initial backbone randomization.
	Seed int64
	// BGI tunes the spanning backbone construction.
	BGI BGIOptions
}

func (o *DynOptions) defaults() {
	if o.RepairSweeps == 0 {
		o.RepairSweeps = 8
	}
}

// Dynamic is an incrementally repairable sparsifier: it owns the current
// base graph, the backbone membership and the D1 tracker of its last
// optimization, and updates all three under streaming edge-edit batches
// without re-running from scratch.
//
// The dynamic pipeline is deterministic replay semantics: the state after any
// sequence of edit batches is a pure function of (initial graph, DynOptions,
// the ordered batches). Repair reproduces — bit for bit — what a from-scratch
// rebuild of the same pipeline state would compute: rebuild the post-edit
// graph, carry each surviving edge's current probability, apply the same
// backbone maintenance rule, build a fresh tracker and run the same capped
// sweeps densely. The differential suite in repair_test.go enforces exactly
// that equivalence. Repair is therefore a bounded-work maintenance step, not
// a full re-optimization; when edits have drifted the graph far from the
// state the initial backbone was built for, a fresh sparsification remains
// the quality-recovery path.
//
// Dynamic is not safe for concurrent use.
type Dynamic struct {
	opts     DynOptions
	alpha    float64
	g        *ugraph.Graph
	t        *tracker
	backbone []int // always sorted ascending; the sweep order of repairs
}

// RepairStats reports one Repair call.
type RepairStats struct {
	// Edits is the batch size applied.
	Edits int
	// Structural reports whether the batch changed the edge set.
	Structural bool
	// BackboneAdded and BackboneRemoved count membership maintenance: edges
	// pulled in to refill the α·|E| budget and edges evicted over it (a
	// deleted backbone edge leaves implicitly and is not counted).
	BackboneAdded, BackboneRemoved int
	// DirtyVertices counts vertices whose discrepancy state changed — the
	// worklist region the repair sweeps start from.
	DirtyVertices int
	// Sweeps and EdgeVisits report the bounded re-optimization actually
	// performed (Sweeps ≤ DynOptions.RepairSweeps).
	Sweeps, EdgeVisits int
	// ObjectiveD1 is the exact objective after the repair.
	ObjectiveD1 float64
}

// NewDynamic builds the initial sparsified state: backbone construction plus
// a full GDB or EMD optimization, with the tracker kept for later repairs.
//
// The backbone is sorted ascending before optimizing, giving the dynamic
// pipeline a canonical sweep order that backbone maintenance preserves across
// repairs; initial results can therefore differ (in float ulps) from a plain
// Sparsify call, which sweeps in construction order.
func NewDynamic(ctx context.Context, g *ugraph.Graph, alpha float64, opts DynOptions) (*Dynamic, error) {
	opts.defaults()
	if opts.Method != MethodGDB && opts.Method != MethodEMD {
		return nil, fmt.Errorf("core: dynamic sparsification supports gdb and emd only (got %v)", opts.Method)
	}
	backbone, err := BuildBackbone(g, alpha, Options{Backbone: opts.Backbone, Seed: opts.Seed, BGI: opts.BGI})
	if err != nil {
		return nil, err
	}
	sort.Ints(backbone)
	t := newTracker(g, backbone)
	switch opts.Method {
	case MethodGDB:
		gOpts := GDBOptions{Discrepancy: opts.Discrepancy, K: 1, H: opts.H, Tau: opts.Tau, MaxIters: opts.MaxIters}
		gOpts.defaults(g.NumVertices())
		if _, err := gdbSweeps(ctx, t, backbone, gOpts); err != nil {
			return nil, err
		}
	case MethodEMD:
		eOpts := EMDOptions{Discrepancy: opts.Discrepancy, H: opts.H, Tau: opts.Tau, MaxRounds: opts.MaxIters}
		eOpts.defaults(g.NumVertices())
		if _, err := emdRun(ctx, t, &backbone, eOpts); err != nil {
			return nil, err
		}
		// ePhase rebuilds the list ascending each round, but a zero-round
		// run (MaxRounds exhausted immediately) keeps the input order; keep
		// the canonical order unconditionally.
		sort.Ints(backbone)
	}
	return &Dynamic{opts: opts, alpha: alpha, g: g, t: t, backbone: backbone}, nil
}

// Graph returns the current (post-edit) base graph. Callers must not mutate
// it.
func (d *Dynamic) Graph() *ugraph.Graph { return d.g }

// Backbone returns a copy of the current backbone edge ids (ascending, in
// the current graph's id space).
func (d *Dynamic) Backbone() []int { return append([]int(nil), d.backbone...) }

// Prob returns the current sparsified probability of edge id (0 outside the
// backbone).
func (d *Dynamic) Prob(id int) float64 { return d.t.cur[id] }

// ObjectiveD1 returns the exact current objective.
func (d *Dynamic) ObjectiveD1() float64 { return d.t.objectiveD1(d.opts.Discrepancy) }

// Sparsified materializes the current sparsified uncertain graph.
func (d *Dynamic) Sparsified() (*ugraph.Graph, error) { return d.t.finalize() }

// Repair applies one edit batch to the base graph and restores the
// sparsified state with bounded work: carry per-edge state across the edit,
// maintain the backbone budget deterministically, re-dirty exactly the
// vertices whose discrepancy state changed, and re-run up to RepairSweeps
// worklist sweeps from the existing tracker. The batch is atomic — a
// validation error leaves the state untouched.
func (d *Dynamic) Repair(ctx context.Context, edits []ugraph.EdgeEdit) (*RepairStats, error) {
	res, err := ugraph.ApplyEdits(d.g, edits)
	if err != nil {
		return nil, err
	}
	stats := &RepairStats{Edits: len(edits), Structural: res.Structural}
	t := d.t
	if res.Structural {
		d.remap(res)
	} else {
		// Reweight-only: ids are stable, only the target probabilities moved.
		for id, e := range res.Graph.Edges() {
			t.origP[id] = e.P
		}
	}
	d.g = res.Graph
	t.g = res.Graph

	stats.BackboneAdded, stats.BackboneRemoved = d.maintainBackbone()
	stats.DirtyVertices = t.resyncAfterEdits()

	sOpts := GDBOptions{Discrepancy: d.opts.Discrepancy, K: 1, H: d.opts.H, Tau: d.opts.Tau,
		MaxIters: d.opts.RepairSweeps}
	sOpts.defaults(d.g.NumVertices())
	sOpts.MaxIters = d.opts.RepairSweeps // defaults() must not widen the cap
	run, err := gdbSweeps(ctx, t, d.backbone, sOpts)
	if err != nil {
		return nil, err
	}
	stats.Sweeps, stats.EdgeVisits, stats.ObjectiveD1 = run.Iterations, run.EdgeVisits, run.ObjectiveD1
	return stats, nil
}

// remap rebuilds the tracker's per-edge arrays in the post-edit id space:
// surviving edges carry their probability, membership and visit stamp across
// the compaction; inserted edges start outside the backbone with stamp 0
// (always dirty if later pulled in).
func (d *Dynamic) remap(res *ugraph.EditResult) {
	t := d.t
	ng := res.Graph
	m := ng.NumEdges()
	eu := make([]int32, m)
	ev := make([]int32, m)
	origP := make([]float64, m)
	cur := make([]float64, m)
	inB := make([]bool, m)
	visit := make([]int64, m)
	for id, e := range ng.Edges() {
		eu[id], ev[id] = int32(e.U), int32(e.V)
		origP[id] = e.P
	}
	nBackbone := 0
	for old, nw := range res.OldToNew {
		if nw < 0 {
			continue
		}
		cur[nw] = t.cur[old]
		visit[nw] = t.visitStamp[old]
		if t.inBackbone[old] {
			inB[nw] = true
			nBackbone++
		}
	}
	t.eu, t.ev, t.origP, t.cur, t.inBackbone, t.visitStamp = eu, ev, origP, cur, inB, visit
	t.nBackbone = nBackbone
}

// maintainBackbone restores the α·|E| edge budget after an edit batch with a
// deterministic, history-independent rule: deleted members are already gone;
// a deficit is refilled from non-members in descending probability (ties to
// the lower id), each entering at its graph probability; a surplus evicts
// members in ascending probability (ties to the higher id). Membership is
// otherwise stable — reweights and budget-neutral batches cause no churn.
// Probabilities are written directly (no incremental bookkeeping): the
// subsequent resyncAfterEdits rebuilds every accumulator from scratch, so
// repaired numeric state is bit-identical to a fresh tracker's.
func (d *Dynamic) maintainBackbone() (added, removed int) {
	t := d.t
	m := d.g.NumEdges()
	target := TargetEdges(d.g, d.alpha)
	if target < 1 {
		target = 1
	}
	if target > m {
		target = m
	}
	switch {
	case t.nBackbone < target:
		cand := make([]int, 0, m-t.nBackbone)
		for id := 0; id < m; id++ {
			if !t.inBackbone[id] {
				cand = append(cand, id)
			}
		}
		sort.Slice(cand, func(a, b int) bool {
			pa, pb := t.origP[cand[a]], t.origP[cand[b]]
			if pa != pb {
				return pa > pb
			}
			return cand[a] < cand[b]
		})
		for _, id := range cand[:target-t.nBackbone] {
			t.inBackbone[id] = true
			t.cur[id] = t.origP[id]
			added++
		}
		t.nBackbone = target
	case t.nBackbone > target:
		members := make([]int, 0, t.nBackbone)
		for id := 0; id < m; id++ {
			if t.inBackbone[id] {
				members = append(members, id)
			}
		}
		sort.Slice(members, func(a, b int) bool {
			pa, pb := t.origP[members[a]], t.origP[members[b]]
			if pa != pb {
				return pa < pb
			}
			return members[a] > members[b]
		})
		for _, id := range members[:t.nBackbone-target] {
			t.inBackbone[id] = false
			t.cur[id] = 0
			removed++
		}
		t.nBackbone = target
	}
	// Rebuild the canonical ascending sweep order from membership.
	d.backbone = d.backbone[:0]
	for id := 0; id < m; id++ {
		if t.inBackbone[id] {
			d.backbone = append(d.backbone, id)
		}
	}
	return added, removed
}

// resyncAfterEdits rebuilds every numeric accumulator from scratch and
// re-dirties exactly the vertices whose state changed; it returns the dirty
// count. This is the keystone of the repair ≡ from-scratch guarantee, in two
// halves:
//
// Bit-identity. Incremental patching (origDeg[u] += Δp and friends) would
// leave accumulators ulps away from a fresh tracker's, and an ulp is enough
// to flip a discrete branch (the entropy cap, the [0,1] clamp) into a
// macroscopically different probability sequence. Instead every accumulator
// is recomputed with the exact float expressions, in the exact order, that
// building a fresh tracker over the post-edit graph and replaying the carried
// probabilities (ascending id, via setProb from zero) would use — so the
// repaired tracker and a from-scratch one agree on every bit.
//
// Worklist exactness. A sweep may skip an edge only if its recomputed step
// would provably be zero: the k = 1 step is a pure function of the endpoint
// discrepancies, and an unstamped vertex has bit-identical origDeg and curDeg
// before and after the resync, so a skipped edge recomputes exactly the
// zero step of its last visit. Stamping precisely the changed vertices (not
// just the edited region) also covers resync-induced ulp shifts on vertices
// whose accumulation history differed from the fresh ascending order.
func (t *tracker) resyncAfterEdits() int {
	n := t.n
	newOrig := t.g.ExpectedDegrees()
	newCur := make([]float64, n)
	var missing float64
	for id := range t.cur {
		if c := t.cur[id]; c != 0 {
			newCur[t.eu[id]] += c
			newCur[t.ev[id]] += c
		}
		missing += t.origP[id] - t.cur[id]
	}
	t.tick++
	dirty := 0
	for u := 0; u < n; u++ {
		if newOrig[u] != t.origDeg[u] || newCur[u] != t.curDeg[u] {
			t.vertStamp[u] = t.tick
			dirty++
		}
	}
	t.origDeg, t.curDeg = newOrig, newCur
	for u := 0; u < n; u++ {
		t.invSq[u] = 0
		if d := t.origDeg[u]; d > 0 {
			t.invSq[u] = 1 / (d * d)
		}
	}
	t.missing = missing
	t.massStamp = t.tick
	t.objectiveD1(Absolute) // exact-resync both D1 accumulators
	return dirty
}
