package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ugs/internal/ugraph"
)

// pathWithShortcut builds the analytically solvable instance used across the
// GDB tests: a triangle 0-1-2 with all probabilities 0.5, sparsified to the
// backbone {(0,1), (1,2)}. The optimal degree-preserving assignment is
// p = 2/3 on both backbone edges with D1 = 1/3.
func pathWithShortcut() (*ugraph.Graph, []int) {
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
		{U: 0, V: 2, P: 0.5},
	})
	return g, []int{0, 1}
}

func TestGDBConvergesToAnalyticOptimum(t *testing.T) {
	g, backbone := pathWithShortcut()
	out, stats, err := GDB(context.Background(), g, backbone, GDBOptions{H: 1, Tau: 1e-12, MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEdges() != 2 {
		t.Fatalf("output has %d edges, want 2", out.NumEdges())
	}
	for id := 0; id < 2; id++ {
		if got := out.Prob(id); math.Abs(got-2.0/3.0) > 1e-4 {
			t.Errorf("edge %d probability = %v, want 2/3", id, got)
		}
	}
	if math.Abs(stats.ObjectiveD1-1.0/3.0) > 1e-4 {
		t.Errorf("D1 = %v, want 1/3", stats.ObjectiveD1)
	}
}

func TestGDBImprovesObjectiveAndEntropyPaperStyle(t *testing.T) {
	// A Figure 2-style scenario: a 4-vertex graph with 5 edges sparsified
	// to a 3-edge backbone. GDB must reduce D1 relative to the untouched
	// backbone and must not raise entropy above the original graph's.
	g := ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: 0.4},
		{U: 0, V: 2, P: 0.2},
		{U: 0, V: 3, P: 0.2},
		{U: 1, V: 3, P: 0.4},
		{U: 2, V: 3, P: 0.1},
	})
	backbone := []int{2, 3, 4} // edges (0,3), (1,3), (2,3)
	before, err := g.EdgeSubgraph(backbone)
	if err != nil {
		t.Fatal(err)
	}
	d1Before := sumSquares(DegreeDiscrepancies(g, before, Absolute))

	out, stats, err := GDB(context.Background(), g, backbone, GDBOptions{H: 1, Tau: 1e-12, MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ObjectiveD1 >= d1Before {
		t.Errorf("GDB did not improve D1: %v -> %v", d1Before, stats.ObjectiveD1)
	}
	if out.Entropy() > g.Entropy() {
		t.Errorf("GDB raised entropy: %v -> %v", g.Entropy(), out.Entropy())
	}
	// D1 from stats must agree with an independent recomputation.
	if recomputed := sumSquares(DegreeDiscrepancies(g, out, Absolute)); math.Abs(recomputed-stats.ObjectiveD1) > 1e-9 {
		t.Errorf("stats D1 %v disagrees with recomputation %v", stats.ObjectiveD1, recomputed)
	}
}

func sumSquares(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return s
}

func TestGDBObjectiveMonotoneAcrossSweeps(t *testing.T) {
	// For the absolute variant each coordinate step exactly minimizes (or
	// partially descends) a convex parabola, so D1 is non-increasing in
	// the sweep count.
	rng := rand.New(rand.NewSource(8))
	g := randomConnectedGraph(rng, 30, 0.3)
	backbone, err := SpanningBackbone(g, 0.4, BGIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for iters := 1; iters <= 6; iters++ {
		_, stats, err := GDB(context.Background(), g, backbone, GDBOptions{H: 0.05, Tau: 0, MaxIters: iters})
		if err != nil {
			t.Fatal(err)
		}
		if stats.ObjectiveD1 > prev+1e-9 {
			t.Errorf("D1 increased at %d sweeps: %v -> %v", iters, prev, stats.ObjectiveD1)
		}
		prev = stats.ObjectiveD1
	}
}

func TestGDBEntropyParameterTradeoff(t *testing.T) {
	// Figure 5: h = 1 gives the best discrepancy but the highest entropy;
	// h = 0 blocks entropy-raising steps entirely.
	rng := rand.New(rand.NewSource(9))
	g := randomConnectedGraph(rng, 40, 0.25)
	backbone, err := SpanningBackbone(g, 0.3, BGIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	outFull, statsFull, err := GDB(context.Background(), g, backbone, GDBOptions{H: 1, MaxIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	outZero, statsZero, err := GDB(context.Background(), g, backbone, GDBOptions{H: HZero, MaxIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	if statsFull.ObjectiveD1 > statsZero.ObjectiveD1 {
		t.Errorf("h=1 D1 (%v) worse than h=0 D1 (%v)", statsFull.ObjectiveD1, statsZero.ObjectiveD1)
	}
	if outFull.Entropy() < outZero.Entropy() {
		t.Errorf("h=1 entropy (%v) below h=0 entropy (%v)", outFull.Entropy(), outZero.Entropy())
	}
}

func TestGDBH0NeverRaisesEdgeEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomConnectedGraph(rng, 25, 0.3)
	backbone, err := SpanningBackbone(g, 0.4, BGIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := GDB(context.Background(), g, backbone, GDBOptions{H: HZero, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < out.NumEdges(); i++ {
		e := out.Edge(i)
		id, ok := g.EdgeID(e.U, e.V)
		if !ok {
			t.Fatalf("output edge (%d,%d) missing from original", e.U, e.V)
		}
		if ugraph.EdgeEntropy(out.Prob(i)) > ugraph.EdgeEntropy(g.Prob(id))+1e-12 {
			t.Errorf("edge %d entropy rose: p %v -> %v", id, g.Prob(id), out.Prob(i))
		}
	}
}

func TestGDBCutOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnectedGraph(rng, 20, 0.4)
	backbone, err := SpanningBackbone(g, 0.4, BGIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, KAll} {
		out, _, err := GDB(context.Background(), g, backbone, GDBOptions{K: k, H: 0.05, MaxIters: 30})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if out.NumEdges() != len(backbone) {
			t.Errorf("k=%d: %d edges, want %d", k, out.NumEdges(), len(backbone))
		}
		for i := 0; i < out.NumEdges(); i++ {
			if p := out.Prob(i); p < 0 || p > 1 {
				t.Errorf("k=%d: probability %v outside [0,1]", k, p)
			}
		}
	}
}

func TestGDBK2PreservesCutsBetterThanKAll(t *testing.T) {
	// The k = n rule is "random probability reassignment" and should be
	// clearly worse at preserving sampled cut sizes than the k = 2 rule
	// (Table 2 / Figure 4 finding: GDB_n is by far the worst variant).
	// The instance mirrors the paper's datasets: low mean probability, so
	// the backbone has headroom to compensate (with E[p] near 0.5 even
	// p = 1 everywhere cannot absorb the eliminated mass and every rule
	// saturates identically).
	rng := rand.New(rand.NewSource(12))
	base := randomConnectedGraph(rng, 120, 0.12)
	b := ugraph.NewBuilder(base.NumVertices())
	for _, e := range base.Edges() {
		if err := b.AddEdge(e.U, e.V, 0.05+0.2*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Graph()
	backbone, err := SpanningBackbone(g, 0.4, BGIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := GDB(context.Background(), g, backbone, GDBOptions{K: 2, H: 0.05, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	outN, _, err := GDB(context.Background(), g, backbone, GDBOptions{K: KAll, H: 0.05, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	evalRng := rand.New(rand.NewSource(99))
	mae2 := MAECutDiscrepancy(g, out2, 5, 100, evalRng)
	evalRng = rand.New(rand.NewSource(99))
	maeN := MAECutDiscrepancy(g, outN, 5, 100, evalRng)
	if mae2 >= maeN {
		t.Errorf("k=2 cut MAE (%v) not better than k=n (%v)", mae2, maeN)
	}
}

func TestRelativeVsAbsoluteTargeting(t *testing.T) {
	// Relative discrepancy treats all degrees equally; absolute favors
	// hubs. Both must produce valid graphs and reduce their own objective
	// versus the raw backbone.
	rng := rand.New(rand.NewSource(13))
	g := randomConnectedGraph(rng, 35, 0.3)
	backbone, err := SpanningBackbone(g, 0.35, BGIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := g.EdgeSubgraph(backbone)
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []Discrepancy{Absolute, Relative} {
		out, stats, err := GDB(context.Background(), g, backbone, GDBOptions{Discrepancy: dt, H: 0.5, MaxIters: 100})
		if err != nil {
			t.Fatalf("%v: %v", dt, err)
		}
		before := sumSquares(DegreeDiscrepancies(g, raw, dt))
		if stats.ObjectiveD1 > before {
			t.Errorf("%v: D1 %v worse than raw backbone %v", dt, stats.ObjectiveD1, before)
		}
		if out.NumEdges() != len(backbone) {
			t.Errorf("%v: edge count changed", dt)
		}
	}
}

func TestGDBQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 8+rng.Intn(20), 0.2+0.4*rng.Float64())
		alpha := 0.3 + 0.5*rng.Float64()
		backbone, err := SpanningBackbone(g, alpha, BGIOptions{}, rng)
		if err != nil {
			return false
		}
		out, _, err := GDB(context.Background(), g, backbone, GDBOptions{H: 0.05, MaxIters: 20})
		if err != nil {
			return false
		}
		if out.NumEdges() != len(backbone) {
			return false
		}
		for i := range backbone {
			p := out.Prob(i)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			// Output edges must exist in the original graph.
			e := out.Edge(i)
			if !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
