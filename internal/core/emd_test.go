package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ugs/internal/ugraph"
)

// starWithWeakLink builds an instance where a structural swap is clearly
// beneficial: a hub 0 with three strong spokes plus one weak leaf-leaf edge.
// A backbone holding the weak edge instead of a spoke leaves a whole spoke's
// probability mass unaccounted for, which EMD can fix by swapping.
func starWithWeakLink() (*ugraph.Graph, []int) {
	g := ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: 0.9}, // 0
		{U: 0, V: 2, P: 0.9}, // 1
		{U: 0, V: 3, P: 0.9}, // 2
		{U: 1, V: 2, P: 0.1}, // 3
	})
	return g, []int{0, 3} // spoke (0,1) and the weak link (1,2)
}

func TestEMDSwapsImproveOverGDB(t *testing.T) {
	g, backbone := starWithWeakLink()
	gdbOut, gdbStats, err := GDB(context.Background(), g, backbone, GDBOptions{H: 1, MaxIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	emdOut, emdStats, err := EMD(context.Background(), g, backbone, EMDOptions{H: 1, MaxRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if emdStats.Swaps == 0 {
		t.Error("EMD performed no swaps on an instance built to require one")
	}
	if emdOut.NumEdges() != len(backbone) {
		t.Errorf("EMD changed edge count: %d", emdOut.NumEdges())
	}
	if emdStats.ObjectiveD1 >= gdbStats.ObjectiveD1 {
		t.Errorf("EMD D1 (%v) not better than GDB D1 (%v)", emdStats.ObjectiveD1, gdbStats.ObjectiveD1)
	}
	_ = gdbOut
	// The optimal 2-edge structure keeps two strong spokes and drops the
	// weak leaf-leaf edge (retaining it strands a full unit of hub mass,
	// while keeping vertex 3's 0.9 discrepancy costs less than 1.0 at
	// vertex 2 would). EMD must discover that swap.
	if emdOut.HasEdge(1, 2) {
		t.Error("EMD retained the weak (1,2) edge")
	}
	if !emdOut.HasEdge(0, 2) {
		t.Error("EMD did not swap in spoke (0,2)")
	}
}

func TestEMDPreservesEdgeCountAndValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 8+rng.Intn(16), 0.25+0.35*rng.Float64())
		alpha := 0.3 + 0.4*rng.Float64()
		backbone, err := SpanningBackbone(g, alpha, BGIOptions{}, rng)
		if err != nil {
			return false
		}
		out, _, err := EMD(context.Background(), g, backbone, EMDOptions{H: 0.05, MaxRounds: 5})
		if err != nil {
			return false
		}
		if out.NumEdges() != len(backbone) {
			return false
		}
		for i := 0; i < out.NumEdges(); i++ {
			p := out.Prob(i)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			e := out.Edge(i)
			if !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEMDGenerallyBeatsGDBOnDegreeMAE(t *testing.T) {
	// Paper, Table 2: EMD improves on the corresponding GDB variant by
	// restructuring the backbone (for moderate/large α). Tested in
	// aggregate over several random graphs to avoid flakiness on any
	// single instance.
	wins, total := 0, 0
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 40, 0.25)
		backbone, err := SpanningBackbone(g, 0.4, BGIOptions{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		gdbOut, _, err := GDB(context.Background(), g, backbone, GDBOptions{H: 0.05, MaxIters: 100})
		if err != nil {
			t.Fatal(err)
		}
		emdOut, _, err := EMD(context.Background(), g, backbone, EMDOptions{H: 0.05, MaxRounds: 15})
		if err != nil {
			t.Fatal(err)
		}
		gdbMAE := MAEDegreeDiscrepancy(g, gdbOut, Absolute)
		emdMAE := MAEDegreeDiscrepancy(g, emdOut, Absolute)
		if emdMAE <= gdbMAE+1e-12 {
			wins++
		}
		total++
	}
	if wins*2 < total {
		t.Errorf("EMD beat GDB on only %d/%d instances", wins, total)
	}
}

func TestEMDNaiveEPhaseAlsoImproves(t *testing.T) {
	// The naive (global-scan) E-phase must match or beat the heap-guided
	// one on objective quality — it considers strictly more candidates —
	// while both satisfy the structural invariants.
	rng := rand.New(rand.NewSource(77))
	g := randomConnectedGraph(rng, 30, 0.3)
	backbone, err := SpanningBackbone(g, 0.35, BGIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	heapOut, heapStats, err := EMD(context.Background(), g, backbone, EMDOptions{H: 0.05, MaxRounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	naiveOut, naiveStats, err := EMD(context.Background(), g, backbone, EMDOptions{H: 0.05, MaxRounds: 8, NaiveEPhase: true})
	if err != nil {
		t.Fatal(err)
	}
	if naiveOut.NumEdges() != len(backbone) || heapOut.NumEdges() != len(backbone) {
		t.Error("edge count changed")
	}
	raw, err := g.EdgeSubgraph(backbone)
	if err != nil {
		t.Fatal(err)
	}
	before := sumSquares(DegreeDiscrepancies(g, raw, Absolute))
	if naiveStats.ObjectiveD1 > before || heapStats.ObjectiveD1 > before {
		t.Errorf("E-phase variants degraded D1: naive %v, heap %v, raw %v",
			naiveStats.ObjectiveD1, heapStats.ObjectiveD1, before)
	}
}

func TestEMDRejectsNothing(t *testing.T) {
	// EMD on a backbone that is already optimal (full graph edge set is
	// not allowed, so use a near-complete backbone): must terminate
	// without error and without degrading D1.
	g := ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
		{U: 2, V: 3, P: 0.5},
		{U: 0, V: 3, P: 0.5},
	})
	backbone := []int{0, 1, 2}
	raw, err := g.EdgeSubgraph(backbone)
	if err != nil {
		t.Fatal(err)
	}
	before := sumSquares(DegreeDiscrepancies(g, raw, Absolute))
	_, stats, err := EMD(context.Background(), g, backbone, EMDOptions{H: 1, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ObjectiveD1 > before {
		t.Errorf("EMD degraded D1: %v -> %v", before, stats.ObjectiveD1)
	}
}
