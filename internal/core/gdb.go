package core

import (
	"context"
	"math"

	"ugs/internal/ugraph"
)

// GDBOptions tunes Gradient Descent Backbone (Algorithm 2).
type GDBOptions struct {
	// Discrepancy selects the δA or δR objective. Default Absolute.
	Discrepancy Discrepancy
	// K is the cut order to preserve: 1 preserves expected degrees
	// (Equation 9), values in [2, n) preserve expected k-cuts
	// (Equation 14), and KAll applies the k = n redistribution rule
	// (Equation 16). Default 1.
	K int
	// H ∈ [0, 1] is the entropy parameter: when the optimal step would
	// increase an edge's entropy, only the fraction H of the step is
	// applied. Default 0.05 (the paper's recommended balanced setting).
	H float64
	// Tau is the convergence threshold on the improvement of the
	// objective D1 between iterations. Default 1e-9·|V|.
	Tau float64
	// MaxIters bounds the number of full sweeps. Default 200.
	MaxIters int
	// DenseSweeps disables the epoch-stamped worklist: every sweep
	// recomputes the update step of every backbone edge, as the
	// pre-worklist implementation did. The worklist skips exactly the
	// edges whose recomputed step would be a no-op (neither endpoint
	// discrepancy — nor, for k ≠ 1, the global missing mass — changed
	// since the edge's last visit), so both modes produce identical
	// output; the flag exists for ablation benchmarks and equivalence
	// tests.
	DenseSweeps bool
	// Progress, when non-nil, receives a RunStats snapshot after every
	// completed sweep.
	Progress func(RunStats)
}

func (o *GDBOptions) defaults(n int) {
	if o.K == 0 {
		o.K = 1
	}
	if o.H == 0 {
		o.H = 0.05
	}
	if o.Tau == 0 {
		o.Tau = 1e-9 * float64(n)
	}
	if o.MaxIters == 0 {
		o.MaxIters = 200
	}
}

// hExplicitZero lets callers request a true h = 0 (discard any
// entropy-increasing step), which the zero-value default of GDBOptions.H
// would otherwise turn into 0.05.
const hExplicitZero = -1

func effectiveH(h float64) float64 {
	if h == hExplicitZero {
		return 0
	}
	return h
}

// GDB runs Gradient Descent Backbone over the given backbone edge set of g
// and returns the sparsified uncertain graph together with run statistics.
// The backbone structure is not modified; only edge probabilities are.
// Cancelling ctx aborts between sweeps and returns the context's error.
func GDB(ctx context.Context, g *ugraph.Graph, backbone []int, opts GDBOptions) (*ugraph.Graph, *RunStats, error) {
	opts.defaults(g.NumVertices())
	t := newTracker(g, backbone)
	stats, err := gdbSweeps(ctx, t, backbone, opts)
	if err != nil {
		return nil, nil, err
	}
	out, err := t.finalize()
	if err != nil {
		return nil, nil, err
	}
	return out, &stats, nil
}

// RunStats reports a sparsifier run. It is the uniform statistics type of
// every method behind the ugs registry; fields not produced by a method are
// left at zero.
type RunStats struct {
	// Iterations counts the method's outer loop: GDB sweeps, EMD rounds,
	// LP pivots and bound flips, NI calibration reruns, or SS spanner
	// constructions.
	Iterations int
	// ObjectiveD1 is the final D1 = Σ_u δ²(u) (GDB, EMD, LP).
	ObjectiveD1 float64
	// Swaps is the total number of E-phase edge swaps (EMD only).
	Swaps int
	// Epsilon is the final calibrated sampling parameter ε (NI only).
	Epsilon float64
	// StretchT is the final stretch parameter t, for a (2t−1)-spanner
	// (SS only).
	StretchT int
	// AuxEdges counts the edges selected before budget truncation and
	// Bernoulli fill-up: NI-core selections or raw spanner edges
	// (NI and SS only).
	AuxEdges int
	// EdgeVisits counts the edge-update steps actually computed across
	// GDB sweeps (including EMD's M-phases). With the epoch worklist this
	// is at most — and usually far below — Iterations × |backbone|, which
	// is what dense sweeps perform.
	EdgeVisits int
}

// gdbSweeps is the iterative core of Algorithm 2, shared with EMD's M-phase.
// It mutates the tracker in place. The context is checked once per sweep.
//
// Each sweep walks the backbone in order but, unless DenseSweeps is set,
// only recomputes the update step of edges that are dirty: an edge is clean
// when neither endpoint's discrepancy (nor, for k ≠ 1 rules that read the
// global missing mass, any probability at all) has changed since the edge
// was last visited. A clean edge would recompute the exact same step it
// already applied to a fixed point — a guaranteed no-op — so skipping it
// leaves the probability sequence, and therefore the output, bit-identical
// to a dense sweep. Visit stamps are taken *before* the update, so an edge
// whose own update changes its endpoints re-dirties itself (the entropy cap
// and the [0,1] clamp make single visits partial steps).
//
// Convergence is decided on the O(1) incrementally-maintained objective;
// when it signals convergence (and on MaxIters exhaustion) the objective is
// recomputed exactly, bounding float drift in the reported D1.
func gdbSweeps(ctx context.Context, t *tracker, backbone []int, opts GDBOptions) (RunStats, error) {
	h := effectiveH(opts.H)
	// The k ≠ 1 update rules read the global missing mass, so any
	// probability change anywhere dirties every edge.
	globalMass := opts.K != 1
	prev := t.objectiveD1(opts.Discrepancy)
	iters, visits := 0, 0
	converged := false
	for iters < opts.MaxIters {
		if err := ctx.Err(); err != nil {
			return RunStats{}, err
		}
		for _, id := range backbone {
			if !opts.DenseSweeps {
				stamp := t.vertStamp[t.eu[id]]
				if s := t.vertStamp[t.ev[id]]; s > stamp {
					stamp = s
				}
				if globalMass && t.massStamp > stamp {
					stamp = t.massStamp
				}
				if stamp <= t.visitStamp[id] {
					continue
				}
				t.visitStamp[id] = t.tick
			}
			gdbUpdateEdge(t, id, opts.Discrepancy, opts.K, h)
			visits++
		}
		iters++
		d1 := t.cachedD1(opts.Discrepancy)
		if opts.Progress != nil {
			opts.Progress(RunStats{Iterations: iters, ObjectiveD1: d1, EdgeVisits: visits})
		}
		if math.Abs(prev-d1) <= opts.Tau {
			prev = t.objectiveD1(opts.Discrepancy)
			converged = true
			break
		}
		prev = d1
	}
	if !converged {
		prev = t.objectiveD1(opts.Discrepancy)
	}
	return RunStats{Iterations: iters, ObjectiveD1: prev, EdgeVisits: visits}, nil
}

// gdbUpdateEdge applies the Equation (9) update to a single edge: take the
// optimal step, clamp to [0, 1], and if the (unclamped) assignment would
// increase the edge's entropy apply only the fraction h of the step.
func gdbUpdateEdge(t *tracker, id int, dt Discrepancy, k int, h float64) {
	old := t.cur[id]
	stp := t.step(id, dt, k)
	p := old + stp
	switch {
	case p < 0:
		p = 0
	case p > 1:
		p = 1
	case ugraph.EntropyGreater(p, old):
		p = old + h*stp
	}
	if p != old {
		t.setProb(id, p)
	}
}
