package core

import (
	"context"
	"fmt"
	"math/rand"

	"ugs/internal/ugraph"
)

// Method selects a sparsification algorithm.
type Method int

const (
	// MethodGDB is Gradient Descent Backbone (Algorithm 2): the backbone
	// structure is kept fixed and only probabilities are optimized.
	MethodGDB Method = iota
	// MethodEMD is Expectation-Maximization Degree (Algorithm 3): both
	// the backbone structure and the probabilities are optimized.
	MethodEMD
	// MethodLP solves the Theorem 1 linear program for the optimal
	// probability assignment on the backbone (slow; small graphs only).
	MethodLP
	// MethodNI is the Nagamochi–Ibaraki cut-sparsifier benchmark
	// (implemented by internal/ni; core.Sparsify does not dispatch it).
	MethodNI
	// MethodSS is the Baswana–Sen spanner benchmark (implemented by
	// internal/spanner; core.Sparsify does not dispatch it).
	MethodSS
)

// methodNames maps every Method to its canonical (registry) name.
var methodNames = map[Method]string{
	MethodGDB: "gdb",
	MethodEMD: "emd",
	MethodLP:  "lp",
	MethodNI:  "ni",
	MethodSS:  "ss",
}

// String returns the canonical lowercase method name ("gdb", "emd", "lp",
// "ni", "ss"), which round-trips through ParseMethod.
func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// ParseMethod is the inverse of Method.String: it resolves a canonical
// method name (case-sensitive, lowercase) to its Method value.
func ParseMethod(s string) (Method, error) {
	for m, name := range methodNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown method %q", s)
}

// ParseDiscrepancy is the inverse of Discrepancy.String.
func ParseDiscrepancy(s string) (Discrepancy, error) {
	switch s {
	case Absolute.String():
		return Absolute, nil
	case Relative.String():
		return Relative, nil
	}
	return 0, fmt.Errorf("core: unknown discrepancy %q", s)
}

// ParseBackbone is the inverse of Backbone.String.
func ParseBackbone(s string) (Backbone, error) {
	switch s {
	case BackboneSpanning.String():
		return BackboneSpanning, nil
	case BackboneRandom.String():
		return BackboneRandom, nil
	}
	return 0, fmt.Errorf("core: unknown backbone %q", s)
}

// Options configures Sparsify. The zero value requests the paper's
// recommended defaults: GDB, absolute discrepancy, spanning (BGI) backbone,
// k = 1, h = 0.05.
type Options struct {
	Method      Method
	Discrepancy Discrepancy
	Backbone    Backbone
	// K is the cut order (GDB only; EMD and LP are defined for k = 1).
	// Use KAll for the k = n redistribution rule. Default 1.
	K int
	// H is the entropy parameter in [0, 1]; use HZero to request a true
	// zero. Default 0.05.
	H float64
	// Tau is the convergence threshold; MaxIters bounds GDB sweeps or EMD
	// rounds. Zero values select defaults.
	Tau      float64
	MaxIters int
	// Seed drives backbone randomization. Runs are fully deterministic
	// given (graph, alpha, Options).
	Seed int64
	// DenseSweeps disables the epoch worklist in GDB sweeps (including
	// EMD's M-phase); see GDBOptions.DenseSweeps. Ablation only — output
	// is identical either way.
	DenseSweeps bool
	// Progress, when non-nil, receives a RunStats snapshot after every
	// GDB sweep, EMD round, or batch of LP pivots.
	Progress func(RunStats)
	// BGI tunes the spanning backbone construction.
	BGI BGIOptions
}

// HZero requests a true h = 0 entropy parameter (a zero H field means
// "default", which is 0.05).
const HZero = hExplicitZero

// Sparsify reduces g to α·|E| edges with the configured method and returns
// the sparsified uncertain graph along with run statistics. The input graph
// is not modified. Cancelling ctx aborts the iteration loops and returns the
// context's error.
func Sparsify(ctx context.Context, g *ugraph.Graph, alpha float64, opts Options) (*ugraph.Graph, *RunStats, error) {
	backbone, err := BuildBackbone(g, alpha, opts)
	if err != nil {
		return nil, nil, err
	}
	switch opts.Method {
	case MethodGDB:
		return GDB(ctx, g, backbone, GDBOptions{
			Discrepancy: opts.Discrepancy,
			K:           opts.K,
			H:           opts.H,
			Tau:         opts.Tau,
			MaxIters:    opts.MaxIters,
			DenseSweeps: opts.DenseSweeps,
			Progress:    opts.Progress,
		})
	case MethodEMD:
		if opts.K > 1 || opts.K == KAll {
			return nil, nil, fmt.Errorf("core: EMD supports only k = 1 (got %d)", opts.K)
		}
		return EMD(ctx, g, backbone, EMDOptions{
			Discrepancy: opts.Discrepancy,
			H:           opts.H,
			Tau:         opts.Tau,
			MaxRounds:   opts.MaxIters,
			DenseSweeps: opts.DenseSweeps,
			Progress:    opts.Progress,
		})
	case MethodLP:
		return LPAssign(ctx, g, backbone, opts.Progress)
	case MethodNI, MethodSS:
		return nil, nil, fmt.Errorf("core: method %v is implemented outside core; resolve it through the ugs registry", opts.Method)
	default:
		return nil, nil, fmt.Errorf("core: unknown method %d", opts.Method)
	}
}

// BuildBackbone constructs the backbone edge set for the configured backbone
// type. It is exposed separately so callers can reuse one backbone across
// several probability-assignment methods (as the paper's Table 2 does).
func BuildBackbone(g *ugraph.Graph, alpha float64, opts Options) ([]int, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	switch opts.Backbone {
	case BackboneSpanning:
		return SpanningBackbone(g, alpha, opts.BGI, rng)
	case BackboneRandom:
		return RandomBackbone(g, alpha, rng)
	default:
		return nil, fmt.Errorf("core: unknown backbone type %d", opts.Backbone)
	}
}
