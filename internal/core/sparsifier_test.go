package core

import (
	"context"
	"math/rand"
	"testing"

	"ugs/internal/ugraph"
)

func TestSparsifyAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	g := randomConnectedGraph(rng, 25, 0.4)
	for _, m := range []Method{MethodGDB, MethodEMD, MethodLP} {
		t.Run(m.String(), func(t *testing.T) {
			out, stats, err := Sparsify(context.Background(), g, 0.4, Options{Method: m, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if out.NumVertices() != g.NumVertices() {
				t.Errorf("vertex set changed: %d", out.NumVertices())
			}
			if want := TargetEdges(g, 0.4); out.NumEdges() != want {
				t.Errorf("edge count %d, want %d", out.NumEdges(), want)
			}
			if stats == nil {
				t.Error("nil stats")
			}
			for _, e := range out.Edges() {
				if !g.HasEdge(e.U, e.V) {
					t.Errorf("edge (%d,%d) not in original graph", e.U, e.V)
				}
			}
			// Sparsification must reduce entropy (the framework's second
			// objective).
			if out.Entropy() >= g.Entropy() {
				t.Errorf("entropy not reduced: %v -> %v", g.Entropy(), out.Entropy())
			}
		})
	}
}

func TestSparsifyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := randomConnectedGraph(rng, 30, 0.3)
	a, _, err := Sparsify(context.Background(), g, 0.3, Options{Method: MethodEMD, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Sparsify(context.Background(), g, 0.3, Options{Method: MethodEMD, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different sparsifications")
	}
}

func TestSparsifyErrors(t *testing.T) {
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
		{U: 0, V: 2, P: 0.5},
	})
	if _, _, err := Sparsify(context.Background(), g, 1.2, Options{}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, _, err := Sparsify(context.Background(), g, 0.5, Options{Method: Method(99)}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, _, err := Sparsify(context.Background(), g, 0.5, Options{Method: MethodEMD, K: 2}); err == nil {
		t.Error("EMD with k=2 accepted")
	}
	if _, _, err := Sparsify(context.Background(), g, 0.5, Options{Backbone: Backbone(99)}); err == nil {
		t.Error("unknown backbone accepted")
	}
}

func TestSparsifyRandomBackboneVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g := randomConnectedGraph(rng, 30, 0.3)
	out, _, err := Sparsify(context.Background(), g, 0.3, Options{
		Method:      MethodGDB,
		Backbone:    BackboneRandom,
		Discrepancy: Relative,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := TargetEdges(g, 0.3); out.NumEdges() != want {
		t.Errorf("edge count %d, want %d", out.NumEdges(), want)
	}
}

func TestMAECutDiscrepancyIdenticalGraphsIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := randomConnectedGraph(rng, 20, 0.3)
	if mae := MAECutDiscrepancy(g, g, 5, 50, rng); mae != 0 {
		t.Errorf("MAE between identical graphs = %v, want 0", mae)
	}
}

func TestExpectedCut(t *testing.T) {
	g := ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.25},
		{U: 2, V: 3, P: 0.125},
	})
	inS := []bool{true, true, false, false}
	if got := ExpectedCut(g, inS); got != 0.25 {
		t.Errorf("ExpectedCut = %v, want 0.25", got)
	}
	// Complement must give the same cut.
	comp := []bool{false, false, true, true}
	if got := ExpectedCut(g, comp); got != 0.25 {
		t.Errorf("complement cut = %v, want 0.25", got)
	}
	// Singleton cut equals expected degree.
	single := []bool{false, true, false, false}
	if got := ExpectedCut(g, single); got != g.ExpectedDegree(1) {
		t.Errorf("singleton cut = %v, want %v", got, g.ExpectedDegree(1))
	}
}
