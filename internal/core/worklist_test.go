package core

// Tests for the epoch-stamped worklist engine: worklist and dense sweeps
// must produce identical sparsifiers (the worklist skips only provably
// no-op steps), steady-state sweeps must not allocate, and the worklist
// must do strictly less work than dense sweeps once the optimization
// quiesces locally.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ugs/internal/ugraph"
)

// assertSameSparsifier verifies two runs produced the same edge set with
// the same probabilities.
func assertSameSparsifier(t *testing.T, label string, a, b *ugraph.Graph) {
	t.Helper()
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: edge counts differ: %d vs %d", label, a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < a.NumEdges(); i++ {
		ea, eb := a.Edge(i), b.Edge(i)
		if ea.U != eb.U || ea.V != eb.V {
			t.Fatalf("%s: edge %d differs: (%d,%d) vs (%d,%d)", label, i, ea.U, ea.V, eb.U, eb.V)
		}
		if math.Abs(ea.P-eb.P) > 1e-9 {
			t.Errorf("%s: p(%d,%d) = %v vs %v", label, ea.U, ea.V, ea.P, eb.P)
		}
	}
}

func TestGDBWorklistMatchesDenseSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, dt := range []Discrepancy{Absolute, Relative} {
		for _, k := range []int{1, 2, KAll} {
			g := randomConnectedGraph(rng, 60, 0.2)
			backbone, err := SpanningBackbone(g, 0.35, BGIOptions{}, rng)
			if err != nil {
				t.Fatal(err)
			}
			opts := GDBOptions{Discrepancy: dt, K: k, H: 0.05, MaxIters: 80}
			outW, statsW, err := GDB(context.Background(), g, backbone, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.DenseSweeps = true
			outD, statsD, err := GDB(context.Background(), g, backbone, opts)
			if err != nil {
				t.Fatal(err)
			}
			label := dt.String() + "/k=" + map[int]string{1: "1", 2: "2", KAll: "n"}[k]
			assertSameSparsifier(t, label, outW, outD)
			if math.Abs(statsW.ObjectiveD1-statsD.ObjectiveD1) > 1e-9 {
				t.Errorf("%s: D1 differs: worklist %v vs dense %v", label, statsW.ObjectiveD1, statsD.ObjectiveD1)
			}
			if statsW.Iterations != statsD.Iterations {
				t.Errorf("%s: iteration counts differ: %d vs %d", label, statsW.Iterations, statsD.Iterations)
			}
			if statsW.EdgeVisits > statsD.EdgeVisits {
				t.Errorf("%s: worklist visited more edges (%d) than dense (%d)", label, statsW.EdgeVisits, statsD.EdgeVisits)
			}
		}
	}
}

func TestEMDWorklistMatchesDenseSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for _, dt := range []Discrepancy{Absolute, Relative} {
		g := randomConnectedGraph(rng, 50, 0.25)
		backbone, err := SpanningBackbone(g, 0.3, BGIOptions{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		opts := EMDOptions{Discrepancy: dt, H: 0.05, MaxRounds: 8}
		outW, statsW, err := EMD(context.Background(), g, backbone, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.DenseSweeps = true
		outD, statsD, err := EMD(context.Background(), g, backbone, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSparsifier(t, "emd/"+dt.String(), outW, outD)
		if math.Abs(statsW.ObjectiveD1-statsD.ObjectiveD1) > 1e-9 {
			t.Errorf("emd/%v: D1 differs: worklist %v vs dense %v", dt, statsW.ObjectiveD1, statsD.ObjectiveD1)
		}
		if statsW.Swaps != statsD.Swaps {
			t.Errorf("emd/%v: swap counts differ: %d vs %d", dt, statsW.Swaps, statsD.Swaps)
		}
	}
}

// TestFigure2GoldenHoldsUnderDenseSweeps reruns the paper's Figure 2 worked
// example with the worklist disabled: the golden D1 = 0.36 optimum and the
// converged probabilities must be mode-independent.
func TestFigure2GoldenHoldsUnderDenseSweeps(t *testing.T) {
	g, backbone := figure2Graph(t)
	for _, dense := range []bool{false, true} {
		out, stats, err := GDB(context.Background(), g, backbone,
			GDBOptions{H: 1, Tau: 1e-14, MaxIters: 1000, DenseSweeps: dense})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(stats.ObjectiveD1-0.36) > 1e-6 {
			t.Errorf("dense=%v: converged D1 = %v, want 0.36 (paper)", dense, stats.ObjectiveD1)
		}
		want := map[[2]int]float64{{0, 3}: 0.5, {1, 3}: 0.5, {2, 3}: 0.0}
		for i := 0; i < out.NumEdges(); i++ {
			e := out.Edge(i)
			if p, ok := want[[2]int{e.U, e.V}]; !ok || math.Abs(e.P-p) > 1e-6 {
				t.Errorf("dense=%v: p(%d,%d) = %v, want %v", dense, e.U, e.V, e.P, p)
			}
		}
	}
}

// TestGDBWorklistSkipsQuiescentEdges pins down the worklist's reason to
// exist: on a graph whose optimization quiesces region by region, later
// sweeps must recompute strictly fewer edge steps than the dense schedule.
func TestGDBWorklistSkipsQuiescentEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnectedGraph(rng, 120, 0.15)
	backbone, err := SpanningBackbone(g, 0.4, BGIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// h = 1 applies full coordinate steps, so edges reach their local fixed
	// points (and go quiescent) quickly.
	_, stats, err := GDB(context.Background(), g, backbone, GDBOptions{H: 1, Tau: 1e-12, MaxIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	dense := stats.Iterations * len(backbone)
	if stats.EdgeVisits >= dense {
		t.Errorf("worklist computed %d edge steps over %d sweeps, no fewer than dense %d",
			stats.EdgeVisits, stats.Iterations, dense)
	}
}

// TestGDBSweepsSteadyStateAllocsZero verifies the sweep engine itself —
// tracker updates, worklist stamps, incremental objective, convergence
// checks — runs without allocating once the tracker exists.
func TestGDBSweepsSteadyStateAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomConnectedGraph(rng, 80, 0.2)
	backbone, err := SpanningBackbone(g, 0.35, BGIOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	opts := GDBOptions{H: 0.05, MaxIters: 5}
	opts.defaults(g.NumVertices())
	tr := newTracker(g, backbone)
	ctx := context.Background()
	if _, err := gdbSweeps(ctx, tr, backbone, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := gdbSweeps(ctx, tr, backbone, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state GDB sweeps allocate %v times per run, want 0", allocs)
	}
}
