package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"ugs/internal/gen"
	"ugs/internal/mc"
	"ugs/internal/queries"
	"ugs/internal/ugraph"
)

// The differential gate of the dynamic sparsifier: after every edit batch,
// the incrementally repaired state must equal — backbone edge set identical,
// probabilities within 1e-9 (bit-equal in practice) — a from-scratch replay
// of the same pipeline state: rebuild the post-edit graph independently,
// carry each surviving edge's probability by endpoint pair, apply the same
// deterministic backbone-maintenance rule, build a fresh tracker and run the
// same capped sweeps *densely* (no worklist). Any under-dirtying bug in
// Repair's worklist stamping, any drift in its accumulator resync, or any
// divergence in its maintenance rule breaks the comparison.

func repairKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

type refEdge struct {
	u, v int
	p    float64
}

// scratchPipeline is the independent from-scratch replica of a Dynamic's
// state. It shares no code with Repair beyond the tracker/sweep primitives
// both are specified against.
type scratchPipeline struct {
	n     int
	alpha float64
	opts  DynOptions
	recs  []refEdge // edge records in graph id order
	inBB  map[uint64]bool
	cur   map[uint64]float64
}

func newScratchPipeline(d *Dynamic) *scratchPipeline {
	g := d.Graph()
	s := &scratchPipeline{
		n:     g.NumVertices(),
		alpha: d.alpha,
		opts:  d.opts, // defaults already applied by NewDynamic
		inBB:  make(map[uint64]bool),
		cur:   make(map[uint64]float64),
	}
	for _, e := range g.Edges() {
		s.recs = append(s.recs, refEdge{e.U, e.V, e.P})
	}
	for _, id := range d.Backbone() {
		e := g.Edge(id)
		k := repairKey(e.U, e.V)
		s.inBB[k] = true
		s.cur[k] = d.Prob(id)
	}
	return s
}

// apply replays one edit batch from scratch and returns the rebuilt graph,
// the ascending backbone ids and the freshly optimized tracker.
func (s *scratchPipeline) apply(tt *testing.T, ctx context.Context, batch []ugraph.EdgeEdit) (*ugraph.Graph, []int, *tracker) {
	tt.Helper()

	// Post-edit edge records: survivors keep their relative order (reweights
	// in place), inserts append in batch order normalized u < v — the same
	// canonical order ApplyEdits documents.
	del := make(map[uint64]bool)
	rew := make(map[uint64]float64)
	var ins []refEdge
	for _, ed := range batch {
		switch ed.Op {
		case ugraph.EditDelete:
			del[repairKey(ed.U, ed.V)] = true
		case ugraph.EditReweight:
			rew[repairKey(ed.U, ed.V)] = ed.P
		case ugraph.EditInsert:
			u, v := ed.U, ed.V
			if u > v {
				u, v = v, u
			}
			ins = append(ins, refEdge{u, v, ed.P})
		}
	}
	recs := s.recs[:0:0]
	for _, r := range s.recs {
		k := repairKey(r.u, r.v)
		if del[k] {
			delete(s.inBB, k)
			delete(s.cur, k)
			continue
		}
		if p, ok := rew[k]; ok {
			r.p = p
		}
		recs = append(recs, r)
	}
	recs = append(recs, ins...)
	s.recs = recs

	b := ugraph.NewBuilder(s.n)
	for _, r := range recs {
		if err := b.AddEdge(r.u, r.v, r.p); err != nil {
			tt.Fatal(err)
		}
	}
	g := b.Graph()

	// Deterministic backbone maintenance, restated independently: refill a
	// deficit from non-members by (p desc, id asc) at graph probability;
	// evict a surplus by (p asc, id desc).
	m := len(recs)
	target := TargetEdges(g, s.alpha)
	if target < 1 {
		target = 1
	}
	if target > m {
		target = m
	}
	switch {
	case len(s.inBB) < target:
		var cand []int
		for id, r := range recs {
			if !s.inBB[repairKey(r.u, r.v)] {
				cand = append(cand, id)
			}
		}
		sort.Slice(cand, func(a, b int) bool {
			pa, pb := recs[cand[a]].p, recs[cand[b]].p
			if pa != pb {
				return pa > pb
			}
			return cand[a] < cand[b]
		})
		for _, id := range cand[:target-len(s.inBB)] {
			k := repairKey(recs[id].u, recs[id].v)
			s.inBB[k] = true
			s.cur[k] = recs[id].p
		}
	case len(s.inBB) > target:
		var members []int
		for id, r := range recs {
			if s.inBB[repairKey(r.u, r.v)] {
				members = append(members, id)
			}
		}
		sort.Slice(members, func(a, b int) bool {
			pa, pb := recs[members[a]].p, recs[members[b]].p
			if pa != pb {
				return pa < pb
			}
			return members[a] > members[b]
		})
		for _, id := range members[:len(members)-target] {
			k := repairKey(recs[id].u, recs[id].v)
			delete(s.inBB, k)
			delete(s.cur, k)
		}
	}

	// Fresh tracker over the rebuilt graph, carried probabilities replayed
	// ascending by id, then the same capped sweeps — dense, so the worklist
	// optimization is out of the picture and the repaired side's skips must
	// prove themselves exact.
	t := newTracker(g, nil)
	var bb []int
	for id := 0; id < m; id++ {
		k := repairKey(recs[id].u, recs[id].v)
		if s.inBB[k] {
			t.inBackbone[id] = true
			t.nBackbone++
			bb = append(bb, id)
		}
		if c := s.cur[k]; c != 0 {
			t.setProb(id, c)
		}
	}
	o := GDBOptions{Discrepancy: s.opts.Discrepancy, K: 1, H: s.opts.H, Tau: s.opts.Tau, DenseSweeps: true}
	o.defaults(s.n)
	o.MaxIters = s.opts.RepairSweeps
	if _, err := gdbSweeps(ctx, t, bb, o); err != nil {
		tt.Fatal(err)
	}
	for _, id := range bb {
		s.cur[repairKey(recs[id].u, recs[id].v)] = t.cur[id]
	}
	return g, bb, t
}

// randomBatch draws a valid batch of the given size against the current edge
// records: existing pairs split between delete and reweight, absent pairs
// insert.
func randomBatch(rng *rand.Rand, n int, recs []refEdge, size int) []ugraph.EdgeEdit {
	have := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		have[repairKey(r.u, r.v)] = true
	}
	touched := make(map[uint64]bool, size)
	var batch []ugraph.EdgeEdit
	for len(batch) < size {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || touched[repairKey(u, v)] {
			continue
		}
		touched[repairKey(u, v)] = true
		p := 0.02 + 0.98*rng.Float64()
		switch {
		case !have[repairKey(u, v)]:
			batch = append(batch, ugraph.EdgeEdit{Op: ugraph.EditInsert, U: u, V: v, P: p})
		case rng.Intn(2) == 0:
			batch = append(batch, ugraph.EdgeEdit{Op: ugraph.EditDelete, U: u, V: v})
		default:
			batch = append(batch, ugraph.EdgeEdit{Op: ugraph.EditReweight, U: u, V: v, P: p})
		}
	}
	return batch
}

func dynamicTestGraph(t *testing.T) *ugraph.Graph {
	t.Helper()
	g, err := gen.Social(gen.SocialConfig{N: 160, AvgDegree: 8, MeanProb: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func assertRepairedEqualsScratch(t *testing.T, tag string, d *Dynamic, g *ugraph.Graph, bb []int, tr *tracker) {
	t.Helper()
	if !d.Graph().Equal(g) {
		t.Fatalf("%s: repaired base graph diverged from scratch rebuild", tag)
	}
	got := d.Backbone()
	if len(got) != len(bb) {
		t.Fatalf("%s: backbone size %d != scratch %d", tag, len(got), len(bb))
	}
	for i := range got {
		if got[i] != bb[i] {
			t.Fatalf("%s: backbone[%d] = edge %d != scratch edge %d", tag, i, got[i], bb[i])
		}
	}
	for _, id := range bb {
		if diff := math.Abs(d.Prob(id) - tr.cur[id]); diff > 1e-9 {
			e := g.Edge(id)
			t.Fatalf("%s: edge %d (%d-%d): repaired p=%.17g scratch p=%.17g (diff %g)",
				tag, id, e.U, e.V, d.Prob(id), tr.cur[id], diff)
		}
	}
	if dg, ds := d.ObjectiveD1(), tr.objectiveD1(d.opts.Discrepancy); math.Abs(dg-ds) > 1e-9 {
		t.Fatalf("%s: objective %.17g != scratch %.17g", tag, dg, ds)
	}
}

// TestRepairMatchesScratch is the differential suite proper: {gdb, emd} ×
// {Absolute, Relative} × a sequence of randomized edit batches spanning
// sizes 1..64 (inserts, deletes, reweights mixed).
func TestRepairMatchesScratch(t *testing.T) {
	base := dynamicTestGraph(t)
	ctx := context.Background()
	sizes := []int{1, 2, 3, 7, 16, 33, 64, 5, 24, 1}
	for _, method := range []Method{MethodGDB, MethodEMD} {
		for _, dt := range []Discrepancy{Absolute, Relative} {
			t.Run(fmt.Sprintf("%v_%v", method, dt), func(t *testing.T) {
				d, err := NewDynamic(ctx, base, 0.4, DynOptions{
					Method: method, Discrepancy: dt, Seed: 11,
				})
				if err != nil {
					t.Fatal(err)
				}
				ref := newScratchPipeline(d)
				rng := rand.New(rand.NewSource(int64(97 + 13*int(method) + int(dt))))
				for step, size := range sizes {
					batch := randomBatch(rng, ref.n, ref.recs, size)
					if _, err := d.Repair(ctx, batch); err != nil {
						t.Fatalf("batch %d (%d edits): %v", step, size, err)
					}
					g, bb, tr := ref.apply(t, ctx, batch)
					assertRepairedEqualsScratch(t, fmt.Sprintf("batch %d (%d edits)", step, size), d, g, bb, tr)
				}
			})
		}
	}
}

// TestRepairStats sanity-checks the per-call accounting: bounded sweeps, a
// localized dirty region for small batches, and backbone budget maintenance
// under structural churn.
func TestRepairStats(t *testing.T) {
	base := dynamicTestGraph(t)
	ctx := context.Background()
	d, err := NewDynamic(ctx, base, 0.4, DynOptions{Seed: 5, RepairSweeps: 6})
	if err != nil {
		t.Fatal(err)
	}
	e := base.Edge(0)
	st, err := d.Repair(ctx, []ugraph.EdgeEdit{{Op: ugraph.EditReweight, U: e.U, V: e.V, P: 0.999}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Structural {
		t.Error("reweight-only batch reported structural")
	}
	if st.Sweeps > 6 {
		t.Errorf("Sweeps = %d exceeds RepairSweeps", st.Sweeps)
	}
	if st.DirtyVertices < 1 || st.DirtyVertices >= base.NumVertices() {
		t.Errorf("DirtyVertices = %d; want a small nonzero region for a 1-edit batch", st.DirtyVertices)
	}
	// Deleting backbone edges must refill the budget; the invariant target =
	// round(alpha·|E|) holds after every repair.
	var batch []ugraph.EdgeEdit
	for _, id := range d.Backbone()[:8] {
		de := d.Graph().Edge(id)
		batch = append(batch, ugraph.EdgeEdit{Op: ugraph.EditDelete, U: de.U, V: de.V})
	}
	st, err = d.Repair(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Structural {
		t.Error("delete batch not reported structural")
	}
	if st.BackboneAdded == 0 {
		t.Error("deleting backbone edges refilled nothing")
	}
	if want := TargetEdges(d.Graph(), 0.4); len(d.Backbone()) != want {
		t.Errorf("backbone size %d after repair; want %d", len(d.Backbone()), want)
	}
}

// TestRepairRejectsInvalidBatch checks atomicity: a rejected batch leaves the
// dynamic state untouched and fully usable.
func TestRepairRejectsInvalidBatch(t *testing.T) {
	base := dynamicTestGraph(t)
	ctx := context.Background()
	d, err := NewDynamic(ctx, base, 0.4, DynOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	before := d.ObjectiveD1()
	bbBefore := d.Backbone()
	if _, err := d.Repair(ctx, []ugraph.EdgeEdit{{Op: ugraph.EditInsert, U: 0, V: 0, P: 0.5}}); err == nil {
		t.Fatal("self-loop insert accepted")
	}
	if _, err := d.Repair(ctx, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if d.ObjectiveD1() != before || len(d.Backbone()) != len(bbBefore) {
		t.Fatal("rejected batch mutated dynamic state")
	}
	e := base.Edge(1)
	if _, err := d.Repair(ctx, []ugraph.EdgeEdit{{Op: ugraph.EditReweight, U: e.U, V: e.V, P: 0.5}}); err != nil {
		t.Fatalf("state unusable after rejected batches: %v", err)
	}
}

// TestDynamicRejectsCutMethods: the k-cut rules read global state the
// incremental repair cannot re-dirty precisely, so NewDynamic refuses them.
func TestDynamicRejectsCutMethods(t *testing.T) {
	base := dynamicTestGraph(t)
	if _, err := NewDynamic(context.Background(), base, 0.4, DynOptions{Method: MethodNI}); err == nil {
		t.Fatal("NewDynamic accepted a non-degree method")
	}
}

// TestRepairQueryDeterminism runs the post-repair sparsified graph through
// the Monte-Carlo query engine at Workers 1 and 8: results must be
// bit-identical, and under -race the 8-worker run exercises the repaired
// graph's shared read paths.
func TestRepairQueryDeterminism(t *testing.T) {
	base := dynamicTestGraph(t)
	ctx := context.Background()
	d, err := NewDynamic(ctx, base, 0.4, DynOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	ref := newScratchPipeline(d)
	for _, size := range []int{4, 32} {
		batch := randomBatch(rng, ref.n, ref.recs, size)
		if _, err := d.Repair(ctx, batch); err != nil {
			t.Fatal(err)
		}
		g, bb, tr := ref.apply(t, ctx, batch)
		assertRepairedEqualsScratch(t, fmt.Sprintf("%d edits", size), d, g, bb, tr)
	}
	sg, err := d.Sparsified()
	if err != nil {
		t.Fatal(err)
	}
	pairs := []queries.Pair{{S: 0, T: 1}, {S: 2, T: 9}, {S: 5, T: 40}}
	var got [][]float64
	for _, workers := range []int{1, 8} {
		r, err := queries.Reliability(ctx, sg, pairs, mc.Options{Samples: 2000, Seed: 17, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	for i := range pairs {
		if got[0][i] != got[1][i] {
			t.Fatalf("pair %d: Workers=1 → %.17g, Workers=8 → %.17g", i, got[0][i], got[1][i])
		}
	}
}
