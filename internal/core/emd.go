package core

import (
	"context"
	"math"

	"ugs/internal/ds"
	"ugs/internal/ugraph"
)

// EMDOptions tunes Expectation-Maximization Degree (Algorithm 3).
//
// EMD preserves expected degrees only (k = 1): the edge-gain definition of
// Equation (10) would require enumerating all k-cuts containing an edge for
// k > 1, which is intractable (Section 5).
type EMDOptions struct {
	// Discrepancy selects the δA or δR objective. Default Absolute.
	Discrepancy Discrepancy
	// H is the entropy parameter shared with the inner GDB (see
	// GDBOptions.H). Default 0.05.
	H float64
	// Tau is the convergence threshold on the improvement of D1 between
	// EM rounds. Default 1e-9·|V|.
	Tau float64
	// MaxRounds bounds the number of E+M rounds. Default 30.
	MaxRounds int
	// MPhaseIters bounds the GDB sweeps inside each M-phase. Default 50.
	MPhaseIters int
	// NaiveEPhase switches the E-phase to the paper's "intuitive
	// approach": instead of consulting the vertex heap Hv, every
	// candidate edge in E\E_b is scanned for the globally best gain.
	// It is asymptotically slower — Θ((1−α)|E|) work per backbone edge
	// versus O(deg(v_H) + log|V|) — and exists for the heap-ablation
	// benchmark (Section 4.3 cost analysis).
	NaiveEPhase bool
	// DenseSweeps disables the epoch worklist inside the M-phase's GDB
	// sweeps (see GDBOptions.DenseSweeps). Output is identical either
	// way; ablation and equivalence testing only.
	DenseSweeps bool
	// Progress, when non-nil, receives a RunStats snapshot after every
	// completed E+M round.
	Progress func(RunStats)
}

func (o *EMDOptions) defaults(n int) {
	if o.H == 0 {
		o.H = 0.05
	}
	if o.Tau == 0 {
		o.Tau = 1e-9 * float64(n)
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 30
	}
	if o.MPhaseIters == 0 {
		o.MPhaseIters = 50
	}
}

// EMD runs Expectation-Maximization Degree over the given backbone of g:
// each round swaps backbone edges for higher-gain edges from E\E_b (E-phase,
// driven by the vertex max-heap Hv) and then re-optimizes probabilities with
// GDB (M-phase). It returns the sparsified graph and run statistics.
// Cancelling ctx aborts between rounds (and between the M-phase's inner
// sweeps) and returns the context's error.
func EMD(ctx context.Context, g *ugraph.Graph, backbone []int, opts EMDOptions) (*ugraph.Graph, *RunStats, error) {
	opts.defaults(g.NumVertices())
	t := newTracker(g, backbone)
	bb := append([]int(nil), backbone...)
	stats, err := emdRun(ctx, t, &bb, opts)
	if err != nil {
		return nil, nil, err
	}
	out, err := t.finalize()
	if err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}

// emdRun is the E+M optimization loop over an existing tracker and backbone
// id list, both mutated in place. Split out of EMD so the dynamic sparsifier
// can run it and keep the tracker (and the final backbone) for later repairs.
// opts must already have defaults applied.
func emdRun(ctx context.Context, t *tracker, bb *[]int, opts EMDOptions) (*RunStats, error) {
	g := t.g
	h := effectiveH(opts.H)

	mOpts := GDBOptions{
		Discrepancy: opts.Discrepancy,
		K:           1,
		H:           opts.H,
		Tau:         opts.Tau,
		MaxIters:    opts.MPhaseIters,
		DenseSweeps: opts.DenseSweeps,
	}
	mOpts.defaults(g.NumVertices())

	var st *ePhaseState
	if !opts.NaiveEPhase {
		st = newEPhaseState(t, opts.Discrepancy)
	}
	stats := &RunStats{}
	prev := t.objectiveD1(opts.Discrepancy)
	for stats.Iterations < opts.MaxRounds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.NaiveEPhase {
			stats.Swaps += ePhaseNaive(t, bb, opts.Discrepancy, h)
		} else {
			stats.Swaps += ePhase(t, bb, opts.Discrepancy, h, st)
		}
		// M-phase re-optimizes from the original probabilities of the new
		// backbone, exactly as GDB(G, G'_b, h) would (Algorithm 2, lines
		// 1–3).
		for _, id := range *bb {
			t.setProb(id, g.Prob(id))
		}
		mStats, err := gdbSweeps(ctx, t, *bb, mOpts)
		if err != nil {
			return nil, err
		}
		stats.EdgeVisits += mStats.EdgeVisits
		stats.Iterations++
		d1 := t.cachedD1(opts.Discrepancy)
		if opts.Progress != nil {
			opts.Progress(RunStats{Iterations: stats.Iterations, ObjectiveD1: d1, Swaps: stats.Swaps, EdgeVisits: stats.EdgeVisits})
		}
		if math.Abs(prev-d1) <= opts.Tau {
			break
		}
		prev = d1
	}
	stats.ObjectiveD1 = t.objectiveD1(opts.Discrepancy)
	return stats, nil
}

// ePhaseState carries the E-phase's data structures across EMD rounds so
// they are built once per run instead of once per round: the vertex max-heap
// Hv and the backbone snapshot scratch buffer. Between rounds the M-phase
// changes many discrepancies; rather than re-pushing all n vertices, resync
// replays only the vertices stamped by the tracker since the heap was last
// in sync.
type ePhaseState struct {
	hv       *ds.IndexedMaxHeap
	snapshot []int
	syncTick int64 // tracker tick up to which hv priorities are current
}

// newEPhaseState builds the vertex heap over all n vertices with their
// current |δ| priorities.
func newEPhaseState(t *tracker, dt Discrepancy) *ePhaseState {
	n := t.g.NumVertices()
	st := &ePhaseState{hv: ds.NewIndexedMaxHeap(n), syncTick: t.tick}
	for u := 0; u < n; u++ {
		st.hv.Push(u, math.Abs(t.delta(u, dt)))
	}
	return st
}

// resync refreshes the heap priorities of exactly the vertices whose
// discrepancy changed since the last E-phase (O(changed · log n), instead of
// rebuilding the heap from scratch).
func (st *ePhaseState) resync(t *tracker, dt Discrepancy) {
	for u, stamp := range t.vertStamp {
		if stamp > st.syncTick {
			st.hv.Update(u, math.Abs(t.delta(u, dt)))
		}
	}
	st.syncTick = t.tick
}

// ePhase is the E-phase of Algorithm 3 (lines 6–20): for every backbone
// edge, tentatively remove it, and re-insert either it or the best-gain edge
// incident to the vertex of maximum |δ| (the top of the heap Hv). It updates
// the tracker and the backbone id list in place and reports the number of
// actual swaps.
func ePhase(t *tracker, bb *[]int, dt Discrepancy, h float64, st *ePhaseState) int {
	g := t.g
	st.resync(t, dt)
	hv := st.hv
	refresh := func(u, v int) {
		hv.Update(u, math.Abs(t.delta(u, dt)))
		hv.Update(v, math.Abs(t.delta(v, dt)))
	}

	swaps := 0
	snapshot := append(st.snapshot[:0], *bb...)
	for _, id := range snapshot {
		if !t.inBackbone[id] {
			continue // already swapped back in and processed
		}
		t.setProb(id, 0)
		t.inBackbone[id] = false
		refresh(int(t.eu[id]), int(t.ev[id]))

		vH, _ := hv.Top()

		bestID := id
		bestP, bestGain := t.candidate(id, dt, h)
		for _, a := range g.Neighbors(vH) {
			if t.inBackbone[a.ID] || a.ID == id {
				continue
			}
			p, gain := t.candidate(a.ID, dt, h)
			if gain > bestGain {
				bestID, bestP, bestGain = a.ID, p, gain
			}
		}

		t.setProb(bestID, bestP)
		t.inBackbone[bestID] = true
		refresh(int(t.eu[bestID]), int(t.ev[bestID]))
		if bestID != id {
			swaps++
		}
	}
	st.snapshot = snapshot
	st.syncTick = t.tick // refresh() kept hv current throughout the phase

	// Rebuild the backbone id list from membership (ascending, hence
	// deterministic), reusing the caller's slice.
	*bb = (*bb)[:0]
	for id, in := range t.inBackbone {
		if in {
			*bb = append(*bb, id)
		}
	}
	return swaps
}

// ePhaseNaive is the E-phase without the vertex heap: every non-backbone
// edge competes for each slot, taking the globally maximal gain. Quadratic
// in the edge count; benchmark ablation only.
func ePhaseNaive(t *tracker, bb *[]int, dt Discrepancy, h float64) int {
	g := t.g
	swaps := 0
	snapshot := append([]int(nil), *bb...)
	for _, id := range snapshot {
		if !t.inBackbone[id] {
			continue
		}
		t.setProb(id, 0)
		t.inBackbone[id] = false

		bestID := id
		bestP, bestGain := t.candidate(id, dt, h)
		for cand := 0; cand < g.NumEdges(); cand++ {
			if t.inBackbone[cand] || cand == id {
				continue
			}
			p, gain := t.candidate(cand, dt, h)
			if gain > bestGain {
				bestID, bestP, bestGain = cand, p, gain
			}
		}

		t.setProb(bestID, bestP)
		t.inBackbone[bestID] = true
		if bestID != id {
			swaps++
		}
	}
	*bb = (*bb)[:0]
	for id, in := range t.inBackbone {
		if in {
			*bb = append(*bb, id)
		}
	}
	return swaps
}

// candidate evaluates an absent edge (current probability 0) as an insertion
// candidate: its best probability under the Equation (9) rule and the
// resulting gain of Equation (10),
//
//	g(e) = δ̂²(u0)|₀ − δ̂²(u0)|_p + δ̂²(v0)|₀ − δ̂²(v0)|_p.
func (t *tracker) candidate(id int, dt Discrepancy, h float64) (p, gain float64) {
	u, v := int(t.eu[id]), int(t.ev[id])
	pu, pv := t.pi(u, dt), t.pi(v, dt)
	stp := (pv*t.deltaA(u) + pu*t.deltaA(v)) / (pu + pv)
	p = stp // from p̂ = 0
	switch {
	case p < 0:
		p = 0
	case p > 1:
		p = 1
	case ugraph.EntropyGreater(p, 0):
		// H(0) = 0, so any positive probability raises entropy: cap.
		p = h * stp
	}
	du0, dv0 := t.delta(u, dt), t.delta(v, dt)
	duP := (t.deltaA(u) - p) / pu
	dvP := (t.deltaA(v) - p) / pv
	if dt == Absolute {
		duP, dvP = t.deltaA(u)-p, t.deltaA(v)-p
	}
	gain = du0*du0 - duP*duP + dv0*dv0 - dvP*dvP
	return p, gain
}
