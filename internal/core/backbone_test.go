package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ugs/internal/ds"
	"ugs/internal/ugraph"
)

func randomConnectedGraph(rng *rand.Rand, n int, density float64) *ugraph.Graph {
	b := ugraph.NewBuilder(n)
	// Random spanning tree first to guarantee connectivity.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		if err := b.AddEdge(perm[i], perm[rng.Intn(i)], 0.05+0.9*rng.Float64()); err != nil {
			panic(err)
		}
	}
	g := b.Graph()
	b2 := ugraph.NewBuilder(n)
	for _, e := range g.Edges() {
		if err := b2.AddEdge(e.U, e.V, e.P); err != nil {
			panic(err)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < density {
				if err := b2.AddEdge(u, v, 0.05+0.9*rng.Float64()); err != nil {
					panic(err)
				}
			}
		}
	}
	return b2.Graph()
}

func checkBackbone(t *testing.T, g *ugraph.Graph, backbone []int, alpha float64) {
	t.Helper()
	want := TargetEdges(g, alpha)
	if len(backbone) != want {
		t.Errorf("backbone has %d edges, want %d", len(backbone), want)
	}
	seen := map[int]bool{}
	for _, id := range backbone {
		if id < 0 || id >= g.NumEdges() {
			t.Fatalf("backbone edge id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("backbone edge id %d duplicated", id)
		}
		seen[id] = true
	}
}

func TestSpanningBackboneConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnectedGraph(rng, 60, 0.2)
	for _, alpha := range []float64{0.16, 0.32, 0.64} {
		backbone, err := SpanningBackbone(g, alpha, BGIOptions{}, rng)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		checkBackbone(t, g, backbone, alpha)
		// With the spanning phase included, the backbone must connect the
		// graph whenever the budget allows a spanning tree.
		if TargetEdges(g, alpha) >= g.NumVertices()-1 {
			uf := ds.NewUnionFind(g.NumVertices())
			for _, id := range backbone {
				e := g.Edge(id)
				uf.Union(e.U, e.V)
			}
			if uf.Sets() != 1 {
				t.Errorf("alpha=%v: spanning backbone disconnected (%d components)", alpha, uf.Sets())
			}
		}
	}
}

func TestSpanningBackboneDeterministicBySeed(t *testing.T) {
	g := randomConnectedGraph(rand.New(rand.NewSource(2)), 40, 0.3)
	a, err := SpanningBackbone(g, 0.3, BGIOptions{}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpanningBackbone(g, 0.3, BGIOptions{}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("different sizes for same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backbones diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRandomBackbone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnectedGraph(rng, 50, 0.3)
	backbone, err := RandomBackbone(g, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkBackbone(t, g, backbone, 0.25)
}

func TestRandomBackboneFavorsHighProbabilityEdges(t *testing.T) {
	// A graph with half high-probability and half low-probability edges:
	// Bernoulli backbone sampling must pick mostly high-probability ones.
	b := ugraph.NewBuilder(40)
	for i := 0; i < 20; i++ {
		if err := b.AddEdge(i, (i+1)%20, 0.95); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(20+i, 20+(i+1)%20, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Graph()
	rng := rand.New(rand.NewSource(4))
	backbone, err := RandomBackbone(g, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	high := 0
	for _, id := range backbone {
		if g.Prob(id) > 0.5 {
			high++
		}
	}
	if high < 15 {
		t.Errorf("only %d of %d backbone edges are high-probability", high, len(backbone))
	}
}

func TestBackboneAlphaValidation(t *testing.T) {
	g := randomConnectedGraph(rand.New(rand.NewSource(5)), 10, 0.5)
	rng := rand.New(rand.NewSource(5))
	for _, alpha := range []float64{0, -0.1, 1, 1.5} {
		if _, err := SpanningBackbone(g, alpha, BGIOptions{}, rng); err == nil {
			t.Errorf("alpha=%v accepted", alpha)
		}
		if _, err := RandomBackbone(g, alpha, rng); err == nil {
			t.Errorf("alpha=%v accepted by random backbone", alpha)
		}
	}
	// α so small the target rounds to zero edges.
	if _, err := SpanningBackbone(g, 1e-9, BGIOptions{}, rng); err == nil {
		t.Error("α yielding zero edges accepted")
	}
}

func TestSpanningBackbonePropertySubsetAndSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 10+rng.Intn(30), 0.2+0.3*rng.Float64())
		alpha := 0.2 + 0.6*rng.Float64()
		backbone, err := SpanningBackbone(g, alpha, BGIOptions{}, rng)
		if err != nil {
			return false
		}
		if len(backbone) != TargetEdges(g, alpha) {
			return false
		}
		seen := map[int]bool{}
		for _, id := range backbone {
			if id < 0 || id >= g.NumEdges() || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
