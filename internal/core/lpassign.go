package core

import (
	"context"
	"fmt"

	"ugs/internal/lp"
	"ugs/internal/ugraph"
)

// LPAssign computes the optimal probability assignment for the given
// backbone by solving the linear program of Theorem 1:
//
//	maximize   Σ_e p'_e
//	subject to A_b·p' ≤ d,  p'_e ∈ [0, 1]
//
// where A_b is the incidence matrix of the backbone and d the expected
// degree vector of g. The optimum minimizes the total absolute degree
// discrepancy Δ1 (with entropy parameter h = 0, i.e. no entropy control).
//
// The solver is a dense simplex: memory is Θ(|V|·(|E_b|+|V|)) and time grows
// quickly with size, mirroring the paper's observation that LP "fails to
// terminate within reasonable time" on large graphs. Use GDB or EMD beyond a
// few thousand backbone edges. Cancelling ctx aborts the simplex mid-solve;
// progress (when non-nil) receives periodic pivot-count snapshots.
func LPAssign(ctx context.Context, g *ugraph.Graph, backbone []int, progress func(RunStats)) (*ugraph.Graph, *RunStats, error) {
	n := g.NumVertices()
	m := len(backbone)
	if m == 0 {
		return nil, nil, fmt.Errorf("core: empty backbone")
	}

	prob := &lp.Problem{
		C:     make([]float64, m),
		A:     make([][]float64, n),
		B:     g.ExpectedDegrees(),
		Upper: make([]float64, m),
	}
	for j := 0; j < m; j++ {
		prob.C[j] = 1
		prob.Upper[j] = 1
	}
	for u := 0; u < n; u++ {
		prob.A[u] = make([]float64, m)
	}
	for j, id := range backbone {
		e := g.Edge(id)
		prob.A[e.U][j] = 1
		prob.A[e.V][j] = 1
	}

	var report func(iter int)
	if progress != nil {
		report = func(iter int) { progress(RunStats{Iterations: iter}) }
	}
	sol, err := lp.SolveContext(ctx, prob, report)
	if err != nil {
		return nil, nil, fmt.Errorf("core: LP probability assignment: %w", err)
	}

	t := newTracker(g, backbone)
	for j, id := range backbone {
		t.setProb(id, sol.X[j])
	}
	out, err := t.finalize()
	if err != nil {
		return nil, nil, err
	}
	return out, &RunStats{Iterations: sol.Iterations, ObjectiveD1: t.objectiveD1(Absolute)}, nil
}
