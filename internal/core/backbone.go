package core

import (
	"fmt"
	"math"
	"math/rand"

	"ugs/internal/mst"
	"ugs/internal/ugraph"
)

// Backbone selects how the initial unweighted backbone graph G_b is built.
type Backbone int

const (
	// BackboneSpanning is Algorithm 1 (BGI): iterated maximum spanning
	// forests up to α'|E| edges, then Bernoulli sampling of the remainder.
	// It guarantees a connected backbone whenever the input graph is
	// connected and α|E| ≥ |V|−1.
	BackboneSpanning Backbone = iota
	// BackboneRandom samples edges in random order, keeping edge e with
	// probability p_e, until α|E| edges are collected. It does not
	// guarantee connectivity (the paper's "random backbone", no -t suffix).
	BackboneRandom
)

// String implements fmt.Stringer.
func (b Backbone) String() string {
	switch b {
	case BackboneSpanning:
		return "spanning"
	case BackboneRandom:
		return "random"
	}
	return "unknown"
}

// TargetEdges returns |E'| = round(α·|E|), the sparsified edge budget.
func TargetEdges(g *ugraph.Graph, alpha float64) int {
	return int(math.Round(alpha * float64(g.NumEdges())))
}

// validateAlpha checks the sparsification ratio against the graph.
func validateAlpha(g *ugraph.Graph, alpha float64) (int, error) {
	if !(alpha > 0 && alpha < 1) {
		return 0, fmt.Errorf("core: sparsification ratio α = %v outside (0,1)", alpha)
	}
	target := TargetEdges(g, alpha)
	if target < 1 {
		return 0, fmt.Errorf("core: α = %v yields an empty sparsified graph (|E| = %d)", alpha, g.NumEdges())
	}
	if target >= g.NumEdges() {
		return 0, fmt.Errorf("core: α = %v yields no sparsification (target %d of %d edges)", alpha, target, g.NumEdges())
	}
	return target, nil
}

// BGIOptions tunes Backbone Graph Initialization.
type BGIOptions struct {
	// SpanningFrac bounds the spanning phase at SpanningFrac·α·|E| edges
	// (the paper's 0.5·α). Default 0.5.
	SpanningFrac float64
	// MaxForests bounds the number of maximum spanning forests peeled off
	// (the paper uses the first six). Default 6.
	MaxForests int
}

func (o *BGIOptions) defaults() {
	if o.SpanningFrac == 0 {
		o.SpanningFrac = 0.5
	}
	if o.MaxForests == 0 {
		o.MaxForests = 6
	}
}

// SpanningBackbone implements Algorithm 1 (BGI). It returns the edge
// identifiers of the backbone: maximum spanning forests are peeled off the
// graph until min(SpanningFrac·α·|E|, MaxForests forests) edges are
// collected, and the remaining budget is filled by Bernoulli sampling the
// leftover edges with their probabilities.
func SpanningBackbone(g *ugraph.Graph, alpha float64, opts BGIOptions, rng *rand.Rand) ([]int, error) {
	opts.defaults()
	target, err := validateAlpha(g, alpha)
	if err != nil {
		return nil, err
	}

	spanCap := int(math.Floor(opts.SpanningFrac * float64(target)))
	backbone := make([]int, 0, target)
	in := make([]bool, g.NumEdges())

	dec := mst.NewForestDecomposer(g)
	for f := 0; f < opts.MaxForests && len(backbone) < spanCap; f++ {
		forest := dec.NextForest()
		if forest == nil {
			break
		}
		for _, id := range forest {
			if len(backbone) >= target {
				break
			}
			backbone = append(backbone, id)
			in[id] = true
		}
	}

	fillBernoulli(g, &backbone, in, target, rng)
	return backbone, nil
}

// RandomBackbone samples edges of g in random order, keeping each edge with
// its probability, until α|E| edges are collected.
func RandomBackbone(g *ugraph.Graph, alpha float64, rng *rand.Rand) ([]int, error) {
	target, err := validateAlpha(g, alpha)
	if err != nil {
		return nil, err
	}
	backbone := make([]int, 0, target)
	in := make([]bool, g.NumEdges())
	fillBernoulli(g, &backbone, in, target, rng)
	return backbone, nil
}

// fillBernoulli repeatedly passes over the edges not yet selected, in random
// order, keeping edge e with probability p_e, until the backbone reaches
// target edges. Because every probability is positive the process
// terminates with certainty; a pass that selects nothing (possible only with
// pathologically small probabilities) falls back to accepting the highest-
// probability remaining edges.
func fillBernoulli(g *ugraph.Graph, backbone *[]int, in []bool, target int, rng *rand.Rand) {
	for len(*backbone) < target {
		progressed := false
		for _, id := range rng.Perm(g.NumEdges()) {
			if len(*backbone) >= target {
				return
			}
			if in[id] {
				continue
			}
			if rng.Float64() < g.Prob(id) {
				in[id] = true
				*backbone = append(*backbone, id)
				progressed = true
			}
		}
		if !progressed {
			for _, id := range g.SortedEdgeIDsByProb() {
				if len(*backbone) >= target {
					return
				}
				if !in[id] {
					in[id] = true
					*backbone = append(*backbone, id)
				}
			}
		}
	}
}
