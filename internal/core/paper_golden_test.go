package core

// Golden tests reconstructing the paper's worked examples (Figures 2 and 3)
// numerically. The figure annotations let the Figure 2(a) graph be
// recovered exactly: the initial backbone objective D1 = 0.56 and the
// converged D1 = 0.36 both come out to the digit.

import (
	"context"
	"math"
	"testing"

	"ugs/internal/ugraph"
)

// figure2Graph reconstructs the paper's Figure 2(a) instance.
//
// Vertices u1..u4 map to 0..3. Edges (with probabilities):
//
//	(u1,u2)=0.4  (u1,u3)=0.2  (u1,u4)=0.2  (u2,u4)=0.4  (u3,u4)=0.1
//
// The bold backbone is the star at u4: {(u1,u4), (u2,u4), (u3,u4)}.
// Expected degrees: d(u1)=0.8, d(u2)=0.8, d(u3)=0.3, d(u4)=0.7, which give
// the figure's annotated backbone discrepancies δ(u1)=0.6, δ(u4)=0 and the
// worked step p'(u1,u4) = 0.2 + (0.6+0)/2 = 0.5.
func figure2Graph(t testing.TB) (g *ugraph.Graph, backbone []int) {
	t.Helper()
	g = ugraph.MustNew(4, []ugraph.Edge{
		{U: 0, V: 1, P: 0.4}, // (u1,u2)
		{U: 0, V: 2, P: 0.2}, // (u1,u3)
		{U: 0, V: 3, P: 0.2}, // (u1,u4)
		{U: 1, V: 3, P: 0.4}, // (u2,u4)
		{U: 2, V: 3, P: 0.1}, // (u3,u4)
	})
	return g, []int{2, 3, 4}
}

func TestFigure2GraphEntropyIs385(t *testing.T) {
	g, _ := figure2Graph(t)
	if got := g.Entropy(); math.Abs(got-3.855) > 0.01 {
		t.Errorf("H(G) = %.4f, want 3.85 (paper)", got)
	}
}

func TestFigure2InitialObjectiveIs056(t *testing.T) {
	g, backbone := figure2Graph(t)
	raw, err := g.EdgeSubgraph(backbone)
	if err != nil {
		t.Fatal(err)
	}
	d1 := sumSquares(DegreeDiscrepancies(g, raw, Absolute))
	if math.Abs(d1-0.56) > 1e-12 {
		t.Errorf("initial D1 = %v, want 0.56 (paper)", d1)
	}
}

func TestFigure2GDBFirstStepMatchesWorkedExample(t *testing.T) {
	// The paper's worked step: for edge (u1,u4) with δ(u1)=0.6, δ(u4)=0,
	// p' = 0.2 + (0.6+0)/2 = 0.5.
	g, backbone := figure2Graph(t)
	tr := newTracker(g, backbone)
	if d := tr.deltaA(0); math.Abs(d-0.6) > 1e-12 {
		t.Fatalf("δ(u1) = %v, want 0.6", d)
	}
	if d := tr.deltaA(3); math.Abs(d) > 1e-12 {
		t.Fatalf("δ(u4) = %v, want 0", d)
	}
	stp := tr.step(2, Absolute, 1) // edge (u1,u4)
	if math.Abs(stp-0.3) > 1e-12 {
		t.Fatalf("step = %v, want 0.3", stp)
	}
	gdbUpdateEdge(tr, 2, Absolute, 1, 1)
	if p := tr.cur[2]; math.Abs(p-0.5) > 1e-12 {
		t.Errorf("p'(u1,u4) = %v, want 0.5 (paper)", p)
	}
}

func TestFigure2GDBConvergesToD1of036(t *testing.T) {
	// The analytic optimum of D1 on the star backbone is
	// p(u1,u4)=p(u2,u4)=0.5, p(u3,u4)=0, with D1 = 4·0.3² = 0.36 — the
	// exact improvement (0.56 → 0.36) the paper reports for GDB with h=1.
	g, backbone := figure2Graph(t)
	out, stats, err := GDB(context.Background(), g, backbone, GDBOptions{H: 1, Tau: 1e-14, MaxIters: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.ObjectiveD1-0.36) > 1e-6 {
		t.Errorf("converged D1 = %v, want 0.36 (paper)", stats.ObjectiveD1)
	}
	wantProbs := map[[2]int]float64{
		{0, 3}: 0.5, // (u1,u4)
		{1, 3}: 0.5, // (u2,u4)
		{2, 3}: 0.0, // (u3,u4)
	}
	for i := 0; i < out.NumEdges(); i++ {
		e := out.Edge(i)
		want, ok := wantProbs[[2]int{e.U, e.V}]
		if !ok {
			t.Fatalf("unexpected edge (%d,%d)", e.U, e.V)
		}
		if math.Abs(e.P-want) > 1e-6 {
			t.Errorf("p(%d,%d) = %v, want %v", e.U, e.V, e.P, want)
		}
	}
	// Entropy must drop from 3.85 (the paper's figure reports 2.60 for a
	// slightly different assignment; the converged optimum gives 2.0).
	if out.Entropy() >= g.Entropy() {
		t.Errorf("entropy did not drop: %v -> %v", g.Entropy(), out.Entropy())
	}
}

func TestFigure3EMDFirstSwapSelectsU1U2(t *testing.T) {
	// Figure 3, first E-phase iteration: removing (u1,u4) makes u1 the top
	// of Hv (δ=0.8); among u1's candidate edges, (u1,u2) has the highest
	// gain and enters the backbone — exactly as Figure 3(b) shows.
	g, backbone := figure2Graph(t)
	tr := newTracker(g, backbone)

	// Remove (u1,u4) as the E-phase would.
	tr.setProb(2, 0)
	tr.inBackbone[2] = false
	if d := tr.deltaA(0); math.Abs(d-0.8) > 1e-12 {
		t.Fatalf("δ(u1) after removal = %v, want 0.8 (paper's Hv top)", d)
	}

	// u1's candidates: the removed (u1,u4)=id2, (u1,u2)=id0, (u1,u3)=id1.
	_, gainU1U4 := tr.candidate(2, Absolute, 1)
	pU1U2, gainU1U2 := tr.candidate(0, Absolute, 1)
	_, gainU1U3 := tr.candidate(1, Absolute, 1)
	if !(gainU1U2 > gainU1U4 && gainU1U2 > gainU1U3) {
		t.Errorf("gains (u1,u2)=%v (u1,u4)=%v (u1,u3)=%v: (u1,u2) must win",
			gainU1U2, gainU1U4, gainU1U3)
	}
	if pU1U2 <= 0 || pU1U2 > 1 {
		t.Errorf("best probability for (u1,u2) = %v", pU1U2)
	}

	// A full EMD run on the instance must strictly improve on GDB (the
	// paper reports ∆1 dropping from 1.2 to 0.2 after restructuring).
	_, gdbStats, err := GDB(context.Background(), g, backbone, GDBOptions{H: 1, MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	emdOut, emdStats, err := EMD(context.Background(), g, backbone, EMDOptions{H: 1, MaxRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if emdStats.ObjectiveD1 >= gdbStats.ObjectiveD1 {
		t.Errorf("EMD D1 %v not below GDB D1 %v", emdStats.ObjectiveD1, gdbStats.ObjectiveD1)
	}
	if !emdOut.HasEdge(0, 1) {
		t.Error("EMD output lacks (u1,u2), the Figure 3 swap target")
	}
}
