package ds

// IndexedMaxHeap is a binary max-heap over the fixed item set 0..n-1 keyed
// by float64 priorities, supporting O(log n) in-place priority updates. It
// backs the vertex heap Hv of the EMD algorithm, which repeatedly reads the
// vertex of maximum |discrepancy| and adjusts priorities as edges are
// swapped.
//
// Items may be absent from the heap (after Pop or before Push); Contains
// distinguishes membership.
type IndexedMaxHeap struct {
	items []int     // heap order: items[i] is the item at heap position i
	pos   []int     // pos[item] = heap position, or -1 if absent
	prio  []float64 // prio[item] = current priority
}

// NewIndexedMaxHeap returns an empty heap over the item universe 0..n-1.
func NewIndexedMaxHeap(n int) *IndexedMaxHeap {
	h := &IndexedMaxHeap{
		items: make([]int, 0, n),
		pos:   make([]int, n),
		prio:  make([]float64, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of items currently in the heap.
func (h *IndexedMaxHeap) Len() int { return len(h.items) }

// Contains reports whether item is currently in the heap.
func (h *IndexedMaxHeap) Contains(item int) bool { return h.pos[item] >= 0 }

// Priority returns the priority last assigned to item (meaningful only if
// the item is or was in the heap).
func (h *IndexedMaxHeap) Priority(item int) float64 { return h.prio[item] }

// Push inserts item with the given priority. It panics if the item is
// already present.
func (h *IndexedMaxHeap) Push(item int, priority float64) {
	if h.pos[item] >= 0 {
		panic("ds: Push of item already in heap")
	}
	h.prio[item] = priority
	h.pos[item] = len(h.items)
	h.items = append(h.items, item)
	h.up(len(h.items) - 1)
}

// Top returns the item with maximum priority without removing it. It panics
// on an empty heap.
func (h *IndexedMaxHeap) Top() (item int, priority float64) {
	if len(h.items) == 0 {
		panic("ds: Top of empty heap")
	}
	it := h.items[0]
	return it, h.prio[it]
}

// Pop removes and returns the item with maximum priority. It panics on an
// empty heap.
func (h *IndexedMaxHeap) Pop() (item int, priority float64) {
	it, pr := h.Top()
	h.Remove(it)
	return it, pr
}

// Remove deletes item from the heap. It panics if the item is absent.
func (h *IndexedMaxHeap) Remove(item int) {
	i := h.pos[item]
	if i < 0 {
		panic("ds: Remove of item not in heap")
	}
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	h.pos[item] = -1
	if i < last {
		h.down(i)
		h.up(i)
	}
}

// Update changes the priority of item, restoring heap order. If the item is
// absent it is inserted instead, so Update doubles as upsert.
func (h *IndexedMaxHeap) Update(item int, priority float64) {
	i := h.pos[item]
	if i < 0 {
		h.Push(item, priority)
		return
	}
	old := h.prio[item]
	h.prio[item] = priority
	if priority > old {
		h.up(i)
	} else if priority < old {
		h.down(i)
	}
}

func (h *IndexedMaxHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i]] = i
	h.pos[h.items[j]] = j
}

func (h *IndexedMaxHeap) less(i, j int) bool {
	return h.prio[h.items[i]] > h.prio[h.items[j]] // max-heap
}

func (h *IndexedMaxHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedMaxHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
