package ds

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIndexedMaxHeapBasic(t *testing.T) {
	h := NewIndexedMaxHeap(4)
	if h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
	h.Push(0, 1.0)
	h.Push(1, 3.0)
	h.Push(2, 2.0)
	if it, pr := h.Top(); it != 1 || pr != 3.0 {
		t.Errorf("Top = (%d,%v), want (1,3)", it, pr)
	}
	if !h.Contains(1) || h.Contains(3) {
		t.Error("Contains wrong")
	}
	if it, _ := h.Pop(); it != 1 {
		t.Errorf("Pop = %d, want 1", it)
	}
	if h.Contains(1) {
		t.Error("popped item still contained")
	}
	if it, _ := h.Pop(); it != 2 {
		t.Errorf("Pop = %d, want 2", it)
	}
	if it, _ := h.Pop(); it != 0 {
		t.Errorf("Pop = %d, want 0", it)
	}
	if h.Len() != 0 {
		t.Error("heap not empty after pops")
	}
}

func TestIndexedMaxHeapUpdate(t *testing.T) {
	h := NewIndexedMaxHeap(3)
	h.Push(0, 1)
	h.Push(1, 2)
	h.Push(2, 3)
	h.Update(0, 10) // raise
	if it, _ := h.Top(); it != 0 {
		t.Errorf("after raise Top = %d, want 0", it)
	}
	h.Update(0, -1) // lower
	if it, _ := h.Top(); it != 2 {
		t.Errorf("after lower Top = %d, want 2", it)
	}
	h.Update(0, h.Priority(0)) // no-op
	if h.Len() != 3 {
		t.Error("no-op update changed size")
	}
	h.Remove(2)
	if h.Contains(2) || h.Len() != 2 {
		t.Error("Remove failed")
	}
	h.Update(2, 5) // upsert re-inserts
	if it, _ := h.Top(); it != 2 {
		t.Errorf("after upsert Top = %d, want 2", it)
	}
}

func TestIndexedMaxHeapPanics(t *testing.T) {
	h := NewIndexedMaxHeap(2)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Top empty", func() { h.Top() })
	mustPanic("Pop empty", func() { h.Pop() })
	mustPanic("Remove absent", func() { h.Remove(0) })
	h.Push(0, 1)
	mustPanic("double Push", func() { h.Push(0, 2) })
}

// TestIndexedMaxHeapSortsRandomInput verifies heap order via heapsort against
// the standard library sort, under random priorities and random updates.
func TestIndexedMaxHeapSortsRandomInput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		h := NewIndexedMaxHeap(n)
		prio := make([]float64, n)
		for i := 0; i < n; i++ {
			prio[i] = rng.NormFloat64()
			h.Push(i, prio[i])
		}
		// Random updates.
		for k := 0; k < n; k++ {
			i := rng.Intn(n)
			prio[i] = rng.NormFloat64()
			h.Update(i, prio[i])
		}
		want := append([]float64(nil), prio...)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		for i := 0; i < n; i++ {
			_, pr := h.Pop()
			if pr != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestIndexedMaxHeapRandomOps exercises interleaved push/pop/update/remove
// against a naive slice model.
func TestIndexedMaxHeapRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 50
	h := NewIndexedMaxHeap(n)
	model := map[int]float64{}
	for step := 0; step < 3000; step++ {
		item := rng.Intn(n)
		switch op := rng.Intn(4); {
		case op == 0 && !h.Contains(item):
			p := rng.NormFloat64()
			h.Push(item, p)
			model[item] = p
		case op == 1 && h.Len() > 0:
			it, pr := h.Pop()
			wantIt, wantPr := bestOf(model)
			if pr != wantPr {
				t.Fatalf("step %d: Pop priority %v, want %v", step, pr, wantPr)
			}
			_ = wantIt // ties may pick a different item with equal priority
			delete(model, it)
		case op == 2:
			p := rng.NormFloat64()
			h.Update(item, p)
			model[item] = p
		case op == 3 && h.Contains(item):
			h.Remove(item)
			delete(model, item)
		}
		if h.Len() != len(model) {
			t.Fatalf("step %d: len %d, model %d", step, h.Len(), len(model))
		}
		if h.Len() > 0 {
			_, pr := h.Top()
			if _, wantPr := bestOf(model); pr != wantPr {
				t.Fatalf("step %d: Top priority %v, want %v", step, pr, wantPr)
			}
		}
	}
}

func bestOf(m map[int]float64) (int, float64) {
	first := true
	var bi int
	var bp float64
	for i, p := range m {
		if first || p > bp {
			bi, bp = i, p
			first = false
		}
	}
	return bi, bp
}
