package ds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasic(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 || uf.Len() != 5 {
		t.Fatalf("new union-find: sets=%d len=%d", uf.Sets(), uf.Len())
	}
	if uf.Connected(0, 1) {
		t.Error("fresh elements connected")
	}
	if !uf.Union(0, 1) {
		t.Error("first union returned false")
	}
	if uf.Union(1, 0) {
		t.Error("repeated union returned true")
	}
	if !uf.Connected(0, 1) {
		t.Error("union did not connect")
	}
	uf.Union(2, 3)
	uf.Union(1, 3)
	if uf.Sets() != 2 {
		t.Errorf("sets = %d, want 2", uf.Sets())
	}
	if !uf.Connected(0, 2) {
		t.Error("transitive connectivity broken")
	}
	if uf.Connected(0, 4) {
		t.Error("4 should remain isolated")
	}
}

func TestUnionFindReset(t *testing.T) {
	uf := NewUnionFind(4)
	uf.Union(0, 1)
	uf.Union(2, 3)
	uf.Reset()
	if uf.Sets() != 4 || uf.Connected(0, 1) || uf.Connected(2, 3) {
		t.Error("Reset did not restore singletons")
	}
}

// TestUnionFindAgainstNaive checks union-find against a naive
// component-labeling model under random union sequences.
func TestUnionFindAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		uf := NewUnionFind(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for k := 0; k < 3*n; k++ {
			x, y := rng.Intn(n), rng.Intn(n)
			if x == y {
				continue
			}
			naiveConnected := label[x] == label[y]
			if uf.Connected(x, y) != naiveConnected {
				return false
			}
			merged := uf.Union(x, y)
			if merged == naiveConnected {
				return false
			}
			if !naiveConnected {
				relabel(label[y], label[x])
			}
		}
		// Final set count must agree.
		distinct := map[int]bool{}
		for _, l := range label {
			distinct[l] = true
		}
		return uf.Sets() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
