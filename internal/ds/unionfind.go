// Package ds provides the core data structures shared by the sparsification
// algorithms: a disjoint-set union (union-find) and an indexed binary heap
// with in-place priority updates.
package ds

// UnionFind is a disjoint-set forest with union by rank and path halving.
// Elements are dense integers 0..n-1.
type UnionFind struct {
	parent []int
	rank   []byte
	sets   int
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]byte, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool {
	return uf.Find(x) == uf.Find(y)
}

// Sets reports the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// Len reports the number of elements.
func (uf *UnionFind) Len() int { return len(uf.parent) }

// Reset returns every element to its own singleton set, reusing storage.
func (uf *UnionFind) Reset() {
	for i := range uf.parent {
		uf.parent[i] = i
		uf.rank[i] = 0
	}
	uf.sets = len(uf.parent)
}
