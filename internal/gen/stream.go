package gen

import (
	"fmt"
	"math"
	"math/rand"

	"ugs/internal/ugsb"
)

// StreamSocial generates the same family of graphs as Social — a Chung–Lu
// power-law graph with clipped-exponential edge probabilities, bridged to a
// single connected component — but streams the edges straight into a .ugsb
// file instead of building the graph in memory. Sampling uses the
// Miller–Hagberg skipping algorithm: for each vertex u the candidate
// neighbors v > u are visited by geometric jumps sized to an upper-bound
// probability (valid because the weight sequence is non-increasing), with a
// q/p acceptance correction — O(N+M) expected work rather than the O(N²)
// pair enumeration of Social. Memory is O(N) (the weight vector, the
// writer's degree counters and a union-find); the O(M) CSR scatter happens
// in the writer through a file mapping, so million-edge corpora never
// materialize in the heap.
//
// The RNG consumption differs from Social's pair enumeration, so the two
// generators produce different (identically distributed) graphs for the
// same seed. The result is deterministic per (config, seed).
func StreamSocial(cfg SocialConfig, path string) (vertices, edges int, err error) {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		return 0, 0, fmt.Errorf("gen: need at least 2 vertices, got %d", cfg.N)
	}
	if cfg.AvgDegree <= 0 || cfg.AvgDegree >= float64(cfg.N) {
		return 0, 0, fmt.Errorf("gen: average degree %v out of range", cfg.AvgDegree)
	}
	if !(cfg.MeanProb > 0 && cfg.MeanProb <= 1) {
		return 0, 0, fmt.Errorf("gen: mean probability %v outside (0,1]", cfg.MeanProb)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Power-law weights exactly as in Social: w_i ∝ (i+i₀)^(−1/(γ−1)),
	// scaled so Σw equals the requested total degree. The sequence is
	// decreasing in i, which Miller–Hagberg requires.
	n := cfg.N
	w := make([]float64, n)
	var sum float64
	beta := 1 / (cfg.Exponent - 1)
	const i0 = 3
	for i := range w {
		w[i] = math.Pow(float64(i+i0), -beta)
		sum += w[i]
	}
	scale := cfg.AvgDegree * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	total := cfg.AvgDegree * float64(n) // = Σw after scaling

	wtr, err := ugsb.Create(path, n)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if err != nil {
			wtr.Abort()
		}
	}()

	uf := newUnionFind(n)
	m := 0
	add := func(u, v int) error {
		if aerr := wtr.AddEdge(u, v, drawProb(rng, cfg.MeanProb)); aerr != nil {
			return aerr
		}
		uf.union(u, v)
		m++
		return nil
	}

	for u := 0; u < n-1; u++ {
		v := u + 1
		p := math.Min(1, w[u]*w[v]/total)
		for v < n && p > 0 {
			if p < 1 {
				r := rng.Float64()
				if r == 0 {
					break // log(0) = −∞: the jump clears the row
				}
				v += int(math.Log(r) / math.Log(1-p))
			}
			if v >= n {
				break
			}
			// q ≤ p because w is non-increasing; accept with q/p to
			// correct the upper-bound jump distribution.
			q := math.Min(1, w[u]*w[v]/total)
			if rng.Float64()*p < q {
				if err = add(u, v); err != nil {
					return 0, 0, err
				}
			}
			p = q
			v++
		}
	}

	// Bridge every component to the largest one (the sparsification
	// framework assumes a connected graph), as connect does for Social.
	// Component roots stand in for random representatives; cross-component
	// pairs cannot duplicate an existing edge.
	largest := 0
	for v := 1; v < n; v++ {
		if uf.size[uf.find(v)] > uf.size[uf.find(largest)] {
			largest = v
		}
	}
	largest = uf.find(largest)
	for v := 0; v < n; v++ {
		if uf.find(v) == v && v != largest {
			if err = add(v, largest); err != nil {
				return 0, 0, err
			}
			largest = uf.find(largest) // the merge may have re-rooted
		}
	}

	if err = wtr.Finalize(); err != nil {
		return 0, 0, err
	}
	return n, m, nil
}

// unionFind is a weighted quick-union with path halving.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != int32(x) {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = int(uf.parent[x])
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = int32(ra)
	uf.size[ra] += uf.size[rb]
}
