package gen

import (
	"math"
	"sort"
	"testing"

	"ugs/internal/ugraph"
)

func TestSocialBasicShape(t *testing.T) {
	g, err := Social(SocialConfig{N: 500, AvgDegree: 12, MeanProb: 0.09, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	avgDeg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if avgDeg < 6 || avgDeg > 20 {
		t.Errorf("average degree %v far from target 12", avgDeg)
	}
	if mp := g.MeanProb(); mp < 0.05 || mp > 0.14 {
		t.Errorf("mean probability %v far from target 0.09", mp)
	}
	if !g.IsConnected() {
		t.Error("generator must return a connected graph")
	}
	for _, e := range g.Edges() {
		if !(e.P > 0 && e.P <= 1) {
			t.Fatalf("invalid probability %v", e.P)
		}
	}
}

func TestSocialDegreeSkew(t *testing.T) {
	g, err := Social(SocialConfig{N: 800, AvgDegree: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.Degree(v)
	}
	sort.Ints(degs)
	median := degs[len(degs)/2]
	max := degs[len(degs)-1]
	if max < 4*median {
		t.Errorf("degree distribution not skewed: max %d, median %d", max, median)
	}
}

func TestFlickrAndTwitterPresets(t *testing.T) {
	f := FlickrLike(300, 3)
	tw := TwitterLike(300, 3)
	fDens := float64(f.NumEdges()) / float64(f.NumVertices())
	tDens := float64(tw.NumEdges()) / float64(tw.NumVertices())
	if fDens <= tDens {
		t.Errorf("Flickr-like density %v not above Twitter-like %v", fDens, tDens)
	}
	if f.MeanProb() >= tw.MeanProb() {
		t.Errorf("Flickr-like E[p] %v not below Twitter-like %v", f.MeanProb(), tw.MeanProb())
	}
}

func TestSocialDeterministic(t *testing.T) {
	a, err := Social(SocialConfig{N: 200, AvgDegree: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Social(SocialConfig{N: 200, AvgDegree: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different graphs")
	}
}

func TestSocialErrors(t *testing.T) {
	if _, err := Social(SocialConfig{N: 1}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := Social(SocialConfig{N: 10, AvgDegree: 100}); err == nil {
		t.Error("average degree above N accepted")
	}
	if _, err := Social(SocialConfig{N: 10, AvgDegree: 2, MeanProb: 2}); err == nil {
		t.Error("mean probability above 1 accepted")
	}
}

func TestDensify(t *testing.T) {
	base, err := Social(SocialConfig{N: 100, AvgDegree: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, density := range []float64{0.15, 0.3} {
		g, err := Densify(base, density, 0.09, 6)
		if err != nil {
			t.Fatalf("density %v: %v", density, err)
		}
		want := int(math.Round(density * 100 * 99 / 2))
		if g.NumEdges() != want {
			t.Errorf("density %v: %d edges, want %d", density, g.NumEdges(), want)
		}
		// All base edges must survive with their probabilities.
		for _, e := range base.Edges() {
			id, ok := g.EdgeID(e.U, e.V)
			if !ok || g.Prob(id) != e.P {
				t.Fatalf("base edge (%d,%d) lost or changed", e.U, e.V)
			}
		}
	}
}

func TestDensifyErrors(t *testing.T) {
	base, err := Social(SocialConfig{N: 50, AvgDegree: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Densify(base, 0.05, 0.09, 1); err == nil {
		t.Error("target below base edge count accepted")
	}
	if _, err := Densify(base, 1.5, 0.09, 1); err == nil {
		t.Error("density above 1 accepted")
	}
}

func TestForestFire(t *testing.T) {
	g, err := Social(SocialConfig{N: 400, AvgDegree: 12, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sub, orig, err := ForestFire(g, 120, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 120 || len(orig) != 120 {
		t.Fatalf("sample has %d vertices, want 120", sub.NumVertices())
	}
	// Induced-subgraph property: every sampled edge maps to an original
	// edge with the same probability.
	for _, e := range sub.Edges() {
		id, ok := g.EdgeID(orig[e.U], orig[e.V])
		if !ok {
			t.Fatalf("edge (%d,%d) not present in original", orig[e.U], orig[e.V])
		}
		if g.Prob(id) != e.P {
			t.Fatalf("edge probability changed")
		}
	}
	// Distinct vertices.
	seen := map[int]bool{}
	for _, v := range orig {
		if seen[v] {
			t.Fatal("duplicate vertex in sample")
		}
		seen[v] = true
	}
}

func TestForestFireErrors(t *testing.T) {
	g := ugraph.MustNew(3, []ugraph.Edge{{U: 0, V: 1, P: 0.5}})
	if _, _, err := ForestFire(g, 0, 0.5, 1); err == nil {
		t.Error("target 0 accepted")
	}
	if _, _, err := ForestFire(g, 5, 0.5, 1); err == nil {
		t.Error("target above N accepted")
	}
	if _, _, err := ForestFire(g, 2, 1.5, 1); err == nil {
		t.Error("pf out of range accepted")
	}
}
