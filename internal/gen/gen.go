// Package gen generates the synthetic uncertain graphs used by the
// experiment harness in place of the paper's proprietary datasets:
//
//   - Social: a Chung–Lu power-law graph with an uncertain-edge probability
//     mixture, standing in for the Flickr and Twitter datasets (the paper's
//     findings depend on density, degree skew and mean edge probability,
//     all of which are matched — see DESIGN.md §3);
//   - Densify: the paper's own synthetic construction (Table 1): an induced
//     base graph plus uniform random edges up to a target density;
//   - ForestFire: the subgraph-sampling procedure of Leskovec & Faloutsos
//     used by the paper to build the reduced Flickr instance.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ugs/internal/ugraph"
)

// SocialConfig parameterizes the Chung–Lu social-network generator.
type SocialConfig struct {
	// N is the number of vertices.
	N int
	// AvgDegree is the target average structural degree |E|·2/|V|.
	AvgDegree float64
	// Exponent is the power-law exponent of the expected-degree sequence
	// (default 2.5, typical for social networks).
	Exponent float64
	// MeanProb is the target mean edge probability (Flickr ≈ 0.09,
	// Twitter ≈ 0.15). Probabilities follow a clipped exponential
	// mixture: most mass near zero with a long tail, as in real uncertain
	// social graphs.
	MeanProb float64
	// Seed drives all randomness.
	Seed int64
}

func (c SocialConfig) withDefaults() SocialConfig {
	if c.N == 0 {
		c.N = 1000
	}
	if c.AvgDegree == 0 {
		c.AvgDegree = 20
	}
	if c.Exponent == 0 {
		c.Exponent = 2.5
	}
	if c.MeanProb == 0 {
		c.MeanProb = 0.09
	}
	return c
}

// FlickrLike returns a scaled-down analog of the paper's Flickr dataset:
// dense (high average degree), low mean edge probability.
func FlickrLike(n int, seed int64) *ugraph.Graph {
	g, err := Social(SocialConfig{N: n, AvgDegree: 40, MeanProb: 0.09, Seed: seed})
	if err != nil {
		panic(err) // static config cannot fail
	}
	return g
}

// TwitterLike returns a scaled-down analog of the paper's Twitter dataset:
// sparser than Flickr with higher mean edge probability.
func TwitterLike(n int, seed int64) *ugraph.Graph {
	g, err := Social(SocialConfig{N: n, AvgDegree: 15, MeanProb: 0.15, Seed: seed})
	if err != nil {
		panic(err)
	}
	return g
}

// Social generates a connected uncertain graph with a power-law degree
// distribution via the Chung–Lu model: vertices receive expected-degree
// weights w_i ∝ (i+i₀)^(−1/(γ−1)) and each pair (i,j) is linked with
// probability min(1, w_i·w_j/Σw). Pair enumeration is O(N²).
func Social(cfg SocialConfig) (*ugraph.Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		return nil, fmt.Errorf("gen: need at least 2 vertices, got %d", cfg.N)
	}
	if cfg.AvgDegree <= 0 || cfg.AvgDegree >= float64(cfg.N) {
		return nil, fmt.Errorf("gen: average degree %v out of range", cfg.AvgDegree)
	}
	if !(cfg.MeanProb > 0 && cfg.MeanProb <= 1) {
		return nil, fmt.Errorf("gen: mean probability %v outside (0,1]", cfg.MeanProb)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Power-law weights, shifted to avoid a degenerate hub, scaled to the
	// requested total degree.
	n := cfg.N
	w := make([]float64, n)
	var sum float64
	beta := 1 / (cfg.Exponent - 1)
	const i0 = 3
	for i := range w {
		w[i] = math.Pow(float64(i+i0), -beta)
		sum += w[i]
	}
	scale := cfg.AvgDegree * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	total := cfg.AvgDegree * float64(n) // = Σw after scaling

	b := ugraph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pLink := w[i] * w[j] / total
			if pLink > 1 {
				pLink = 1
			}
			if rng.Float64() < pLink {
				if err := b.AddEdge(i, j, drawProb(rng, cfg.MeanProb)); err != nil {
					return nil, err
				}
			}
		}
	}
	g := b.Graph()
	return connect(g, cfg.MeanProb, rng)
}

// drawProb samples an edge probability from a clipped exponential with the
// given mean: mass concentrates near zero with a long tail, clipped to
// [0.01, 1].
func drawProb(rng *rand.Rand, mean float64) float64 {
	p := rng.ExpFloat64() * mean
	if p < 0.01 {
		p = 0.01
	}
	if p > 1 {
		p = 1
	}
	return p
}

// connect joins the components of g by adding uncertain edges between a
// random representative of each component and a random vertex of the
// largest, yielding a connected graph as the sparsification framework
// assumes.
func connect(g *ugraph.Graph, meanProb float64, rng *rand.Rand) (*ugraph.Graph, error) {
	comp, k := g.Components()
	if k <= 1 {
		return g, nil
	}
	members := make([][]int, k)
	for v, c := range comp {
		members[c] = append(members[c], v)
	}
	sort.Slice(members, func(a, b int) bool { return len(members[a]) > len(members[b]) })

	b := ugraph.NewBuilder(g.NumVertices())
	for _, e := range g.Edges() {
		if err := b.AddEdge(e.U, e.V, e.P); err != nil {
			return nil, err
		}
	}
	main := members[0]
	for _, comp := range members[1:] {
		u := comp[rng.Intn(len(comp))]
		v := main[rng.Intn(len(main))]
		if err := b.AddEdge(u, v, drawProb(rng, meanProb)); err != nil {
			return nil, err
		}
	}
	return b.Graph(), nil
}

// Densify implements the paper's synthetic construction (Table 1): starting
// from base, random vertex pairs are connected until the edge count reaches
// density·N(N−1)/2, with new probabilities drawn from the same clipped
// exponential mixture.
func Densify(base *ugraph.Graph, density, meanProb float64, seed int64) (*ugraph.Graph, error) {
	if !(density > 0 && density <= 1) {
		return nil, fmt.Errorf("gen: density %v outside (0,1]", density)
	}
	n := base.NumVertices()
	target := int(math.Round(density * float64(n) * float64(n-1) / 2))
	if target < base.NumEdges() {
		return nil, fmt.Errorf("gen: base already has %d edges, above target %d", base.NumEdges(), target)
	}
	rng := rand.New(rand.NewSource(seed))
	b := ugraph.NewBuilder(n)
	for _, e := range base.Edges() {
		if err := b.AddEdge(e.U, e.V, e.P); err != nil {
			return nil, err
		}
	}
	have := base.NumEdges()
	exists := make(map[[2]int]bool, target)
	for _, e := range base.Edges() {
		exists[[2]int{e.U, e.V}] = true
	}
	for have < target {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if exists[[2]int{u, v}] {
			continue
		}
		exists[[2]int{u, v}] = true
		if err := b.AddEdge(u, v, drawProb(rng, meanProb)); err != nil {
			return nil, err
		}
		have++
	}
	return b.Graph(), nil
}

// ForestFire samples an induced subgraph with targetVertices vertices by the
// forest-fire process of Leskovec & Faloutsos: repeatedly pick a random
// unburned ambassador and spread fire to geometric numbers of unburned
// neighbors (forward-burning probability pf). It returns the induced
// subgraph and the original vertex identifiers.
func ForestFire(g *ugraph.Graph, targetVertices int, pf float64, seed int64) (*ugraph.Graph, []int, error) {
	n := g.NumVertices()
	if targetVertices < 1 || targetVertices > n {
		return nil, nil, fmt.Errorf("gen: target %d outside [1,%d]", targetVertices, n)
	}
	if !(pf > 0 && pf < 1) {
		return nil, nil, fmt.Errorf("gen: forward-burning probability %v outside (0,1)", pf)
	}
	rng := rand.New(rand.NewSource(seed))
	burned := make([]bool, n)
	var order []int
	burn := func(v int) {
		burned[v] = true
		order = append(order, v)
	}

	var queue []int
	for len(order) < targetVertices {
		// New ambassador.
		amb := rng.Intn(n)
		for burned[amb] {
			amb = rng.Intn(n)
		}
		burn(amb)
		queue = append(queue[:0], amb)
		for len(queue) > 0 && len(order) < targetVertices {
			u := queue[0]
			queue = queue[1:]
			// Geometric number of links to follow: mean pf/(1−pf).
			x := 0
			for rng.Float64() < pf {
				x++
			}
			if x == 0 {
				continue
			}
			// Burn up to x random unburned neighbors.
			var cand []int
			for _, a := range g.Neighbors(u) {
				if !burned[a.To] {
					cand = append(cand, a.To)
				}
			}
			rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
			if x > len(cand) {
				x = len(cand)
			}
			for _, v := range cand[:x] {
				if len(order) >= targetVertices {
					break
				}
				burn(v)
				queue = append(queue, v)
			}
		}
	}
	sub, orig, err := g.InducedSubgraph(order)
	if err != nil {
		return nil, nil, err
	}
	return sub, orig, nil
}
