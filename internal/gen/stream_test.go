package gen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ugs/internal/ugraph"
)

func TestStreamSocialProducesValidConnectedGraph(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.ugsb")
	cfg := SocialConfig{N: 3000, AvgDegree: 12, MeanProb: 0.1, Seed: 5}
	n, m, err := StreamSocial(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3000 || m == 0 {
		t.Fatalf("n=%d m=%d", n, m)
	}

	// Full validation must pass, and the mapped view must agree with the
	// reported counts.
	g, err := ugraph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.NumVertices() != n || g.NumEdges() != m {
		t.Fatalf("mapped counts %d/%d, want %d/%d", g.NumVertices(), g.NumEdges(), n, m)
	}
	if _, k := g.Components(); k != 1 {
		t.Fatalf("graph has %d components, want 1 (bridging failed)", k)
	}
	// Average degree should be in the neighborhood of the target (Chung–Lu
	// with min-clamp biases slightly; a factor-of-2 corridor catches real
	// breakage without flaking).
	avg := 2 * float64(m) / float64(n)
	if avg < cfg.AvgDegree/2 || avg > cfg.AvgDegree*2 {
		t.Fatalf("average degree %.2f far from target %v", avg, cfg.AvgDegree)
	}
	for _, e := range g.Edges() {
		if !(e.P >= 0.01 && e.P <= 1) {
			t.Fatalf("edge probability %v outside the clipped range", e.P)
		}
	}
}

func TestStreamSocialDeterministic(t *testing.T) {
	dir := t.TempDir()
	cfg := SocialConfig{N: 500, AvgDegree: 8, MeanProb: 0.12, Seed: 7}
	p1, p2 := filepath.Join(dir, "a.ugsb"), filepath.Join(dir, "b.ugsb")
	if _, _, err := StreamSocial(cfg, p1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := StreamSocial(cfg, p2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different files")
	}

	cfg.Seed = 8
	p3 := filepath.Join(dir, "c.ugsb")
	if _, _, err := StreamSocial(cfg, p3); err != nil {
		t.Fatal(err)
	}
	b3, err := os.ReadFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b3) {
		t.Fatal("different seeds produced identical files")
	}
}
