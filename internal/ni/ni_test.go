package ni

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ugs/internal/ugraph"
)

func randomConnectedGraph(rng *rand.Rand, n int, density float64) *ugraph.Graph {
	b := ugraph.NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		if err := b.AddEdge(perm[i], perm[rng.Intn(i)], 0.05+0.9*rng.Float64()); err != nil {
			panic(err)
		}
	}
	g := b.Graph()
	b2 := ugraph.NewBuilder(n)
	for _, e := range g.Edges() {
		if err := b2.AddEdge(e.U, e.V, e.P); err != nil {
			panic(err)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < density {
				if err := b2.AddEdge(u, v, 0.05+0.9*rng.Float64()); err != nil {
					panic(err)
				}
			}
		}
	}
	return b2.Graph()
}

func TestSparsifyBudgetAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnectedGraph(rng, 40, 0.3)
	for _, alpha := range []float64{0.16, 0.32, 0.64} {
		out, _, err := Sparsify(context.Background(), g, alpha, Options{Seed: 7})
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		want := int(math.Round(alpha * float64(g.NumEdges())))
		if out.NumEdges() != want {
			t.Errorf("alpha=%v: %d edges, want %d", alpha, out.NumEdges(), want)
		}
		for i := 0; i < out.NumEdges(); i++ {
			p := out.Prob(i)
			if !(p > 0 && p <= 1) {
				t.Errorf("alpha=%v: probability %v outside (0,1]", alpha, p)
			}
			e := out.Edge(i)
			if !g.HasEdge(e.U, e.V) {
				t.Errorf("alpha=%v: edge (%d,%d) not in original", alpha, e.U, e.V)
			}
		}
	}
}

func TestSparsifyRedistributesProbability(t *testing.T) {
	// NI compensates sampling by inflating weights (w' = w/ℓ), so some
	// kept edges must end with higher probability than they started.
	// Probabilities may only *drop* by the quantization error of the
	// integer transform w = ⌊p/p_min⌉, which is at most p_min/2.
	rng := rand.New(rand.NewSource(2))
	g := randomConnectedGraph(rng, 50, 0.25)
	pmin := 1.0
	for _, e := range g.Edges() {
		if e.P < pmin {
			pmin = e.P
		}
	}
	out, _, err := Sparsify(context.Background(), g, 0.25, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	raised := 0
	for i := 0; i < out.NumEdges(); i++ {
		e := out.Edge(i)
		id, _ := g.EdgeID(e.U, e.V)
		if out.Prob(i) < g.Prob(id)-pmin/2-1e-9 {
			t.Errorf("edge (%d,%d): probability dropped beyond quantization error: %v -> %v",
				e.U, e.V, g.Prob(id), out.Prob(i))
		}
		if out.Prob(i) > g.Prob(id)+1e-9 {
			raised++
		}
	}
	if raised == 0 {
		t.Error("no edge probability was raised; NI redistribution absent")
	}
}

func TestNIIndexFavorsBridges(t *testing.T) {
	// Two dense cliques joined by a single bridge: the bridge has NI index
	// 1 (it appears in the first spanning forest and is immediately
	// exhausted at low weight), so it is sampled with the highest
	// probability, while intra-clique edges are exhausted late and mostly
	// dropped. The bridge must survive in (nearly) every run.
	b := ugraph.NewBuilder(20)
	addClique := func(lo, hi int) {
		for u := lo; u < hi; u++ {
			for v := u + 1; v < hi; v++ {
				if err := b.AddEdge(u, v, 0.5); err != nil {
					panic(err)
				}
			}
		}
	}
	addClique(0, 10)
	addClique(10, 20)
	if err := b.AddEdge(9, 10, 0.5); err != nil {
		t.Fatal(err)
	}
	g := b.Graph()

	const runs = 20
	bridgeSurvived := 0
	cliqueKept := 0
	for seed := int64(0); seed < runs; seed++ {
		out, _, err := Sparsify(context.Background(), g, 0.3, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if out.HasEdge(9, 10) {
			bridgeSurvived++
			cliqueKept += out.NumEdges() - 1
		} else {
			cliqueKept += out.NumEdges()
		}
	}
	bridgeFreq := float64(bridgeSurvived) / runs
	cliqueFreq := float64(cliqueKept) / (runs * float64(g.NumEdges()-1))
	if bridgeFreq <= cliqueFreq {
		t.Errorf("bridge survival %.2f not above clique-edge survival %.2f", bridgeFreq, cliqueFreq)
	}
}

func TestSparsifyDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomConnectedGraph(rng, 30, 0.3)
	a, _, err := Sparsify(context.Background(), g, 0.3, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Sparsify(context.Background(), g, 0.3, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different graphs")
	}
}

func TestSparsifyTruncatesWhenCalibrationExhausted(t *testing.T) {
	// A uniform-probability clique makes every weight 1, so edges exhaust
	// in the first forests where ℓ is large: with a single calibration
	// run and a negligible θ the core overshoots the tiny budget and the
	// deterministic truncation path must still deliver exactly the target
	// edge count.
	b := ugraph.NewBuilder(20)
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			if err := b.AddEdge(u, v, 0.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Graph()
	out, stats, err := Sparsify(context.Background(), g, 0.05, Options{Seed: 1, MaxCalibrations: 1, Theta: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Round(0.05 * float64(g.NumEdges())))
	if stats.AuxEdges <= want {
		t.Skipf("core kept only %d edges (≤ target %d); truncation not exercised", stats.AuxEdges, want)
	}
	if out.NumEdges() != want {
		t.Errorf("truncated output has %d edges, want %d", out.NumEdges(), want)
	}
	if stats.Iterations != 1 {
		t.Errorf("calibrations = %d, want 1", stats.Iterations)
	}
}

func TestSparsifyCalibrationShrinksEpsilonWhenUnderBudget(t *testing.T) {
	// A generous budget (α = 0.64) lets the downward calibration search
	// run: the final ε must not exceed the initial estimate.
	rng := rand.New(rand.NewSource(9))
	g := randomConnectedGraph(rng, 40, 0.4)
	n := float64(g.NumVertices())
	initial := math.Sqrt(n * math.Log(n) / (0.64 * float64(g.NumEdges())))
	out, stats, err := Sparsify(context.Background(), g, 0.64, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epsilon > initial+1e-12 {
		t.Errorf("final ε %v above initial %v despite under-budget start", stats.Epsilon, initial)
	}
	if stats.AuxEdges > out.NumEdges() {
		t.Errorf("core selected %d edges, above final %d", stats.AuxEdges, out.NumEdges())
	}
}

func TestSparsifyErrors(t *testing.T) {
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
	})
	for _, alpha := range []float64{0, 1, -0.5, 2} {
		if _, _, err := Sparsify(context.Background(), g, alpha, Options{}); err == nil {
			t.Errorf("alpha=%v accepted", alpha)
		}
	}
}

func TestSparsifyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 10+rng.Intn(25), 0.2+0.3*rng.Float64())
		alpha := 0.2 + 0.5*rng.Float64()
		out, _, err := Sparsify(context.Background(), g, alpha, Options{Seed: seed})
		if err != nil {
			return false
		}
		want := int(math.Round(alpha * float64(g.NumEdges())))
		if out.NumEdges() != want {
			return false
		}
		for i := 0; i < out.NumEdges(); i++ {
			if p := out.Prob(i); !(p > 0 && p <= 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
