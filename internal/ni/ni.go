// Package ni adapts the Nagamochi–Ibaraki cut-based deterministic
// sparsifier to uncertain graphs, exactly as the paper's benchmark NI
// (Section 3.2 and Algorithm 4 of the appendix):
//
//  1. Transform probabilities to integer weights w_e = ⌊p_e/p_min⌉ (round to
//     nearest, at least 1), so expected cut sizes are proportional to
//     deterministic cut weights.
//  2. Run the NI core: peel contiguous spanning forests, decrementing edge
//     weights; when an edge's weight is exhausted at forest round r, sample
//     it with probability ℓ_e = min(log|V| / (ε²·r), 1) and, if kept, assign
//     w'_e = w_e/ℓ_e. The round r at which an edge is exhausted is its NI
//     index — a lower bound on its connectivity — so edges in dense regions
//     (large r) are sampled with low probability and compensated with large
//     weights.
//  3. Calibrate ε so the output has at most α|E| edges (the expected size is
//     only asymptotic), approaching the minimal such ε from below.
//  4. Fill the remaining budget by Bernoulli sampling of leftover edges with
//     their original probabilities, and transform weights back through
//     p'_e = min(w'_e·p_min, 1).
package ni

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ugs/internal/core"
	"ugs/internal/ds"
	"ugs/internal/ugraph"
)

// Options tunes the NI benchmark sparsifier.
type Options struct {
	// Theta is the multiplicative calibration factor for ε (the paper's
	// "small factor θ"). Default 0.1.
	Theta float64
	// MaxCalibrations bounds calibration reruns. Default 40.
	MaxCalibrations int
	// Seed drives edge sampling.
	Seed int64
	// Progress, when non-nil, receives a RunStats snapshot after every
	// calibration run of the NI core.
	Progress func(core.RunStats)
}

func (o *Options) defaults() {
	if o.Theta == 0 {
		o.Theta = 0.1
	}
	if o.MaxCalibrations == 0 {
		o.MaxCalibrations = 40
	}
}

// Sparsify reduces g to α·|E| edges with the NI benchmark. The returned
// RunStats reports the calibration count (Iterations), the final calibrated
// ε (Epsilon) and the NI-core selections before truncation/fill-up
// (AuxEdges). Cancelling ctx aborts between calibration runs and returns the
// context's error.
func Sparsify(ctx context.Context, g *ugraph.Graph, alpha float64, opts Options) (*ugraph.Graph, *core.RunStats, error) {
	opts.defaults()
	if !(alpha > 0 && alpha < 1) {
		return nil, nil, fmt.Errorf("ni: sparsification ratio α = %v outside (0,1)", alpha)
	}
	target := int(math.Round(alpha * float64(g.NumEdges())))
	if target < 1 || target >= g.NumEdges() {
		return nil, nil, fmt.Errorf("ni: α = %v yields invalid target %d of %d edges", alpha, target, g.NumEdges())
	}

	pmin := math.Inf(1)
	for _, e := range g.Edges() {
		if e.P < pmin {
			pmin = e.P
		}
	}
	weights := make([]int, g.NumEdges())
	for id, e := range g.Edges() {
		w := int(math.Round(e.P / pmin))
		if w < 1 {
			w = 1
		}
		weights[id] = w
	}

	n := float64(g.NumVertices())
	eps := math.Sqrt(n * math.Log(n) / (alpha * float64(g.NumEdges())))
	rng := rand.New(rand.NewSource(opts.Seed))

	// Calibration: find (approximately) the minimal ε whose output does
	// not exceed the edge budget.
	calibrations := 0
	run := func(eps float64) (map[int]float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		kept := niCore(g, weights, eps, rand.New(rand.NewSource(rng.Int63())))
		calibrations++
		if opts.Progress != nil {
			opts.Progress(core.RunStats{Iterations: calibrations, Epsilon: eps, AuxEdges: len(kept)})
		}
		return kept, nil
	}
	kept, err := run(eps)
	if err != nil {
		return nil, nil, err
	}
	coreEdges := len(kept)
	if len(kept) > target {
		for len(kept) > target && calibrations < opts.MaxCalibrations {
			eps *= 1 + opts.Theta
			if kept, err = run(eps); err != nil {
				return nil, nil, err
			}
		}
		coreEdges = len(kept)
		if len(kept) > target {
			// Calibration exhausted without fitting the budget; honor it
			// by keeping the largest-weight selections.
			kept = truncate(kept, target)
		}
	} else {
		for calibrations < opts.MaxCalibrations {
			cand := eps / (1 + opts.Theta)
			keptCand, err := run(cand)
			if err != nil {
				return nil, nil, err
			}
			if len(keptCand) > target {
				break
			}
			eps, kept = cand, keptCand
		}
	}

	// Inverse transform with the probability cap at 1. Map iteration order
	// is randomized, so sort ids to keep the output deterministic.
	coreIDs := make([]int, 0, len(kept))
	for id := range kept {
		coreIDs = append(coreIDs, id)
	}
	sort.Ints(coreIDs)
	selected := make([]int, 0, target)
	probs := make([]float64, 0, target)
	in := make([]bool, g.NumEdges())
	for _, id := range coreIDs {
		selected = append(selected, id)
		probs = append(probs, math.Min(kept[id]*pmin, 1))
		in[id] = true
	}

	// Fill the remaining budget by Bernoulli sampling of leftover edges
	// with their original probabilities.
	for len(selected) < target {
		progressed := false
		for _, id := range rng.Perm(g.NumEdges()) {
			if len(selected) >= target {
				break
			}
			if in[id] {
				continue
			}
			if rng.Float64() < g.Prob(id) {
				in[id] = true
				selected = append(selected, id)
				probs = append(probs, g.Prob(id))
				progressed = true
			}
		}
		if !progressed {
			for _, id := range g.SortedEdgeIDsByProb() {
				if len(selected) >= target {
					break
				}
				if !in[id] {
					in[id] = true
					selected = append(selected, id)
					probs = append(probs, g.Prob(id))
				}
			}
		}
	}

	out, err := g.EdgeSubgraph(selected)
	if err != nil {
		return nil, nil, err
	}
	for i := range selected {
		out.SetProb(i, probs[i])
	}
	stats := &core.RunStats{Iterations: calibrations, Epsilon: eps, AuxEdges: coreEdges}
	return out, stats, nil
}

// niCore is Algorithm 4: contiguous spanning forests with weight decrements
// and exhaustion-time sampling. It returns the sampled edges with their
// rescaled weights w_e/ℓ_e.
func niCore(g *ugraph.Graph, origWeights []int, eps float64, rng *rand.Rand) map[int]float64 {
	n := g.NumVertices()
	m := g.NumEdges()
	w := make([]int, m)
	copy(w, origWeights)
	remaining := m
	logN := math.Log(float64(n))

	kept := make(map[int]float64)
	uf := ds.NewUnionFind(n)
	var prevForest, forest []int

	for r := 1; remaining > 0; r++ {
		uf.Reset()
		forest = forest[:0]
		// Contiguity: edges of the previous forest that still carry weight
		// must be offered first, then the rest in deterministic order.
		for _, id := range prevForest {
			if w[id] > 0 {
				e := g.Edge(id)
				if uf.Union(e.U, e.V) {
					forest = append(forest, id)
				}
			}
		}
		for id := 0; id < m; id++ {
			if w[id] <= 0 {
				continue
			}
			e := g.Edge(id)
			if uf.Union(e.U, e.V) {
				forest = append(forest, id)
			}
		}
		if len(forest) == 0 {
			break // isolated leftovers cannot occur, but guard anyway
		}
		for _, id := range forest {
			w[id]--
			if w[id] == 0 {
				remaining--
				le := math.Min(logN/(eps*eps*float64(r)), 1)
				if rng.Float64() < le {
					kept[id] = float64(origWeights[id]) / le
				}
			}
		}
		prevForest = append(prevForest[:0], forest...)
	}
	return kept
}

// truncate keeps the target highest-weight entries (deterministic by id on
// ties).
func truncate(kept map[int]float64, target int) map[int]float64 {
	type kv struct {
		id int
		w  float64
	}
	all := make([]kv, 0, len(kept))
	for id, w := range kept {
		all = append(all, kv{id, w})
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].w > all[j-1].w || (all[j].w == all[j-1].w && all[j].id < all[j-1].id)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	out := make(map[int]float64, target)
	for _, e := range all[:target] {
		out[e.id] = e.w
	}
	return out
}
