// Package stats provides the evaluation metrics of the paper: the earth
// mover's distance between empirical result distributions (Equation 17),
// mean absolute error, and the unbiased variance of repeated Monte-Carlo
// estimators used for the relative-variance experiments (Figure 12).
package stats

import (
	"math"
	"sort"
)

// EarthMovers computes the earth mover's distance between the empirical
// cumulative distributions of two observation samples (Equation 17):
//
//	Dem = Σ_i |F_a(x_i) − F_b(x_i)| · (x_i − x_{i−1})
//
// over the ordered union {x_0 < x_1 < …} of observed values. NaN
// observations (e.g. never-connected SP pairs) are dropped. If either sample
// is empty after filtering, the result is NaN.
func EarthMovers(a, b []float64) float64 {
	sa := sortedFinite(a)
	sb := sortedFinite(b)
	if len(sa) == 0 || len(sb) == 0 {
		return math.NaN()
	}
	// Ordered union of observed values.
	union := make([]float64, 0, len(sa)+len(sb))
	i, j := 0, 0
	for i < len(sa) || j < len(sb) {
		var x float64
		switch {
		case i >= len(sa):
			x = sb[j]
		case j >= len(sb):
			x = sa[i]
		case sa[i] <= sb[j]:
			x = sa[i]
		default:
			x = sb[j]
		}
		for i < len(sa) && sa[i] == x {
			i++
		}
		for j < len(sb) && sb[j] == x {
			j++
		}
		union = append(union, x)
	}

	var d float64
	prev := union[0]
	for _, x := range union[1:] {
		fa := cdfAt(sa, prev)
		fb := cdfAt(sb, prev)
		d += math.Abs(fa-fb) * (x - prev)
		prev = x
	}
	return d
}

func sortedFinite(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	sort.Float64s(out)
	return out
}

// cdfAt returns the fraction of sorted observations ≤ x.
func cdfAt(sorted []float64, x float64) float64 {
	return float64(sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))) / float64(len(sorted))
}

// MAE returns the mean absolute error between paired observations,
// skipping pairs where either value is NaN. Slices must have equal length.
func MAE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MAE length mismatch")
	}
	var sum float64
	n := 0
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		sum += math.Abs(a[i] - b[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (divides by n−1), NaN for
// fewer than two observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// EstimatorVariance runs a Monte-Carlo estimator `runs` times (the run index
// seeds each repetition) and returns the mean and unbiased variance of its
// outputs — the paper's σ̂ estimator for Figure 12 (100 repetitions).
func EstimatorVariance(runs int, estimate func(run int) float64) (mean, variance float64) {
	out := make([]float64, runs)
	for r := range out {
		out[r] = estimate(r)
	}
	return Mean(out), Variance(out)
}

// ConfidenceWidth returns the 95% confidence interval width of an MC
// estimator with standard deviation sigma over n samples:
// CW = 3.92·σ/√n (Section 6.3).
func ConfidenceWidth(sigma float64, n int) float64 {
	return 3.92 * sigma / math.Sqrt(float64(n))
}

// SamplesForWidth returns the number of MC samples needed to reach the given
// 95% confidence width with estimator standard deviation sigma.
func SamplesForWidth(sigma, width float64) int {
	n := math.Pow(3.92*sigma/width, 2)
	return int(math.Ceil(n))
}
