package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEarthMoversIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d := EarthMovers(a, a); d != 0 {
		t.Errorf("Dem(a,a) = %v, want 0", d)
	}
}

func TestEarthMoversPointMasses(t *testing.T) {
	// Point mass at 0 vs point mass at 1: all mass moves distance 1.
	a := []float64{0, 0, 0}
	b := []float64{1, 1, 1}
	if d := EarthMovers(a, b); math.Abs(d-1) > 1e-12 {
		t.Errorf("Dem = %v, want 1", d)
	}
}

func TestEarthMoversShift(t *testing.T) {
	// Shifting a sample by c moves Dem by exactly c.
	a := []float64{0.1, 0.5, 0.9, 1.3}
	b := make([]float64, len(a))
	for i, x := range a {
		b[i] = x + 0.25
	}
	if d := EarthMovers(a, b); math.Abs(d-0.25) > 1e-12 {
		t.Errorf("Dem = %v, want 0.25", d)
	}
}

func TestEarthMoversKnownAsymmetricCase(t *testing.T) {
	// a = {0, 1}, b = {1, 1}: half of a's mass must travel distance 1.
	d := EarthMovers([]float64{0, 1}, []float64{1, 1})
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("Dem = %v, want 0.5", d)
	}
}

func TestEarthMoversSkipsNaNAndInf(t *testing.T) {
	a := []float64{1, math.NaN(), 2}
	b := []float64{1, 2, math.Inf(1)}
	if d := EarthMovers(a, b); d != 0 {
		t.Errorf("Dem = %v, want 0 after filtering", d)
	}
	if d := EarthMovers([]float64{math.NaN()}, []float64{1}); !math.IsNaN(d) {
		t.Errorf("Dem with empty filtered sample = %v, want NaN", d)
	}
}

func TestEarthMoversMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		mk := func() []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			return xs
		}
		a, b, c := mk(), mk(), mk()
		dab := EarthMovers(a, b)
		dba := EarthMovers(b, a)
		dac := EarthMovers(a, c)
		dcb := EarthMovers(c, b)
		// Non-negativity, symmetry, triangle inequality.
		return dab >= 0 && math.Abs(dab-dba) < 1e-9 && dab <= dac+dcb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMAE(t *testing.T) {
	if got := MAE([]float64{1, 2, 3}, []float64{2, 2, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("MAE = %v, want 1", got)
	}
	if got := MAE([]float64{1, math.NaN()}, []float64{3, 5}); math.Abs(got-2) > 1e-12 {
		t.Errorf("MAE with NaN = %v, want 2", got)
	}
	if got := MAE([]float64{math.NaN()}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("MAE all-NaN = %v, want NaN", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Sample variance with n−1: Σ(x−5)² = 32, /7.
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs must give NaN")
	}
}

func TestEstimatorVariance(t *testing.T) {
	mean, v := EstimatorVariance(100, func(run int) float64 {
		rng := rand.New(rand.NewSource(int64(run)))
		return rng.NormFloat64()
	})
	if math.Abs(mean) > 0.35 {
		t.Errorf("mean of standard normals = %v, want ≈0", mean)
	}
	if v < 0.5 || v > 1.6 {
		t.Errorf("variance of standard normals = %v, want ≈1", v)
	}
	// A constant estimator has zero variance.
	_, v0 := EstimatorVariance(10, func(int) float64 { return 3 })
	if v0 != 0 {
		t.Errorf("variance of constant = %v, want 0", v0)
	}
}

func TestConfidenceWidthAndSamples(t *testing.T) {
	cw := ConfidenceWidth(2, 100)
	if math.Abs(cw-3.92*2/10) > 1e-12 {
		t.Errorf("ConfidenceWidth = %v", cw)
	}
	// Round trip: samples needed to achieve that width at same sigma.
	if n := SamplesForWidth(2, cw); n != 100 {
		t.Errorf("SamplesForWidth = %d, want 100", n)
	}
	// Quartering the width needs 16x the samples.
	if n := SamplesForWidth(2, cw/4); n != 1600 {
		t.Errorf("SamplesForWidth = %d, want 1600", n)
	}
}
