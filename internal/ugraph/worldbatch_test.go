package ugraph

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestTranspose64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		var in, want [64]uint64
		for i := range in {
			in[i] = rng.Uint64()
		}
		for r := 0; r < 64; r++ {
			for c := 0; c < 64; c++ {
				want[c] |= (in[r] >> uint(c) & 1) << uint(r)
			}
		}
		got := in
		transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: transpose64 mismatch", trial)
		}
		// Transposing twice is the identity.
		transpose64(&got)
		if got != in {
			t.Fatalf("trial %d: double transpose is not the identity", trial)
		}
	}
}

func randomBatchGraph(rng *rand.Rand, n int, density float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				if err := b.AddEdge(u, v, 0.05+0.9*rng.Float64()); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.Graph()
}

// checkBatchLanesBitIdentical fills a V-wide batch from the given seeds and
// verifies every lane against the scalar sampler, through both ExtractLane
// and LaneMask.
func checkBatchLanesBitIdentical[V Vec](t *testing.T, g *Graph, seeds []int64, label string) {
	t.Helper()
	b := NewWorldBatch[V](g)
	SampleBatchSeeded(g, seeds, b)
	if b.Lanes() != len(seeds) {
		t.Fatalf("%s: Lanes() = %d, want %d", label, b.Lanes(), len(seeds))
	}
	scalar := NewWorld(g)
	lane := NewWorld(g)
	for l := range seeds {
		g.SampleWorldSeeded(seeds[l], scalar)
		b.ExtractLane(l, lane)
		for wi := range scalar.bits {
			if scalar.bits[wi] != lane.bits[wi] {
				t.Fatalf("%s lane %d word %d: batch %064b != scalar %064b",
					label, l, wi, lane.bits[wi], scalar.bits[wi])
			}
		}
		for id := 0; id < g.NumEdges(); id++ {
			if got := VecBit(b.LaneMask(id), l); got != scalar.Present(id) {
				t.Fatalf("%s edge %d lane %d: batch %v scalar %v", label, id, l, got, scalar.Present(id))
			}
		}
	}
}

// TestSampleBatchSeededLanesBitIdenticalToScalarSampler is the batch
// engine's foundational contract at every width: lane l of a batch equals
// the world the scalar per-sample primitive draws from the same seed, bit
// for bit, for every edge-count residue mod 64 (full and partial final
// tiles) and for ragged lane counts (including counts that leave whole
// words of a wide vector inactive).
func TestSampleBatchSeededLanesBitIdenticalToScalarSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	widths := map[string]struct {
		max   int
		check func(t *testing.T, g *Graph, seeds []int64, label string)
	}{
		"64":  {64, checkBatchLanesBitIdentical[Vec64]},
		"128": {128, checkBatchLanesBitIdentical[Vec128]},
		"256": {256, checkBatchLanesBitIdentical[Vec256]},
	}
	for _, n := range []int{3, 9, 17, 40} {
		g := randomBatchGraph(rng, n, 0.4)
		for name, w := range widths {
			for _, lanes := range []int{1, 5, 64, 100, 130, 256} {
				if lanes > w.max {
					continue
				}
				seeds := make([]int64, lanes)
				for l := range seeds {
					seeds[l] = rng.Int63()
				}
				w.check(t, g, seeds, fmt.Sprintf("n=%d w=%s lanes=%d", n, name, lanes))
			}
		}
	}
}

func TestSampleBatchSeededInactiveLanesStayZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomBatchGraph(rng, 20, 0.5)
	b := NewWorldBatch[Vec64](g)
	g.SampleBatchSeeded([]int64{1, 2, 3}, b)
	if b.ActiveMask() != (Vec64{0b111}) {
		t.Fatalf("ActiveMask = %b, want 111", b.ActiveMask())
	}
	for id, m := range b.EdgeMasks() {
		if !VecIsZero(VecAndNot(m, b.ActiveMask())) {
			t.Fatalf("edge %d has bits outside the 3 active lanes: %064b", id, m)
		}
	}
	if b.PopCount() == 0 {
		t.Fatal("batch of a dense graph sampled no edges at all (suspicious)")
	}
}

// TestSampleBatchSeededWideInactiveWordsStayZero pins the wide-width
// equivalent: a 70-lane fill of a 256-lane batch must leave words 2 and 3
// of every edge mask zero.
func TestSampleBatchSeededWideInactiveWordsStayZero(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomBatchGraph(rng, 20, 0.5)
	b := NewWorldBatch[Vec256](g)
	seeds := make([]int64, 70)
	for l := range seeds {
		seeds[l] = rng.Int63()
	}
	SampleBatchSeeded(g, seeds, b)
	for id, m := range b.EdgeMasks() {
		if !VecIsZero(VecAndNot(m, b.ActiveMask())) {
			t.Fatalf("edge %d has bits outside the 70 active lanes: %v", id, m)
		}
	}
}

func TestSampleBatchSeededDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomBatchGraph(rng, 40, 0.3)
	b := NewWorldBatch[Vec64](g)
	seeds := make([]int64, 64)
	for l := range seeds {
		seeds[l] = int64(l + 1)
	}
	g.SampleBatchSeeded(seeds, b)
	if allocs := testing.AllocsPerRun(20, func() { g.SampleBatchSeeded(seeds, b) }); allocs != 0 {
		t.Errorf("SampleBatchSeeded allocates %.1f per call, want 0", allocs)
	}
	wide := NewWorldBatch[Vec256](g)
	wideSeeds := make([]int64, 256)
	for l := range wideSeeds {
		wideSeeds[l] = int64(l + 1)
	}
	SampleBatchSeeded(g, wideSeeds, wide)
	if allocs := testing.AllocsPerRun(20, func() { SampleBatchSeeded(g, wideSeeds, wide) }); allocs != 0 {
		t.Errorf("SampleBatchSeeded[Vec256] allocates %.1f per call, want 0", allocs)
	}
}

func TestSampleBatchSeededPanicsOnBadLaneCount(t *testing.T) {
	g := MustNew(2, []Edge{{U: 0, V: 1, P: 0.5}})
	for _, seeds := range [][]int64{nil, make([]int64, 65)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleBatchSeeded(%d seeds) did not panic", len(seeds))
				}
			}()
			g.SampleBatchSeeded(seeds, NewWorldBatch[Vec64](g))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SampleBatchSeeded[Vec256](257 seeds) did not panic")
			}
		}()
		SampleBatchSeeded(g, make([]int64, 257), NewWorldBatch[Vec256](g))
	}()
}

// TestFillBlockLoadBlocksMatchesDirectSampling is the fill-cache layout
// property: a V-wide batch is exactly len(V) consecutive 64-lane fill
// blocks, so loading blocks produced by FillBlock for consecutive seed
// groups must be bit-identical to one direct SampleBatchSeeded over the
// concatenated seeds — including ragged final blocks.
func TestFillBlockLoadBlocksMatchesDirectSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomBatchGraph(rng, 30, 0.4)
	check := func(lanes int, direct, loaded interface {
		Lanes() int
		PopCount() int
	}, masksEqual func() bool) {
		t.Helper()
		if direct.Lanes() != loaded.Lanes() {
			t.Fatalf("lanes=%d: Lanes %d != %d", lanes, loaded.Lanes(), direct.Lanes())
		}
		if !masksEqual() {
			t.Fatalf("lanes=%d: LoadBlocks masks differ from direct sampling", lanes)
		}
	}
	for _, lanes := range []int{1, 63, 64, 65, 128, 190, 256} {
		seeds := make([]int64, lanes)
		for l := range seeds {
			seeds[l] = rng.Int63()
		}
		direct := NewWorldBatch[Vec256](g)
		SampleBatchSeeded(g, seeds, direct)

		words := (lanes + BatchLanes - 1) / BatchLanes
		blocks := make([][]uint64, words)
		for k := 0; k < words; k++ {
			lo := k * BatchLanes
			hi := lo + BatchLanes
			if hi > lanes {
				hi = lanes
			}
			blocks[k] = make([]uint64, g.NumEdges())
			FillBlock(g, seeds[lo:hi], blocks[k])
		}
		loaded := NewWorldBatch[Vec256](g)
		LoadBlocks(loaded, blocks, lanes)

		check(lanes, direct, loaded, func() bool {
			dm, lm := direct.EdgeMasks(), loaded.EdgeMasks()
			for e := range dm {
				if dm[e] != lm[e] {
					return false
				}
			}
			return true
		})
	}
}

// TestLoadBlocksPanicsOnBadShape pins the guard rails of the cache-load
// path: lane counts out of range, missing blocks, wrong block lengths.
func TestLoadBlocksPanicsOnBadShape(t *testing.T) {
	g := MustNew(3, []Edge{{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.5}})
	good := [][]uint64{make([]uint64, 2), make([]uint64, 2)}
	for name, fn := range map[string]func(){
		"zero lanes":      func() { LoadBlocks(NewWorldBatch[Vec128](g), good, 0) },
		"too many lanes":  func() { LoadBlocks(NewWorldBatch[Vec128](g), good, 129) },
		"missing block":   func() { LoadBlocks(NewWorldBatch[Vec128](g), good[:1], 128) },
		"short block":     func() { LoadBlocks(NewWorldBatch[Vec64](g), [][]uint64{make([]uint64, 1)}, 64) },
		"fillblock seeds": func() { FillBlock(g, nil, make([]uint64, 2)) },
		"fillblock dst":   func() { FillBlock(g, []int64{1}, make([]uint64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestVecHelpers pins the word-vector primitives the kernels are written
// against.
func TestVecHelpers(t *testing.T) {
	if got := VecLanes[Vec64](); got != 64 {
		t.Errorf("VecLanes[Vec64] = %d", got)
	}
	if got := VecLanes[Vec128](); got != 128 {
		t.Errorf("VecLanes[Vec128] = %d", got)
	}
	if got := VecLanes[Vec256](); got != 256 {
		t.Errorf("VecLanes[Vec256] = %d", got)
	}
	if got := VecOnes[Vec128](70); got != (Vec128{^uint64(0), 0x3F}) {
		t.Errorf("VecOnes[Vec128](70) = %x", got)
	}
	if got := VecOnes[Vec256](256); got != (Vec256{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}) {
		t.Errorf("VecOnes[Vec256](256) = %x", got)
	}
	a := Vec128{0b1100, 0b1010}
	b := Vec128{0b1010, 0b0110}
	if got := VecAnd(a, b); got != (Vec128{0b1000, 0b0010}) {
		t.Errorf("VecAnd = %b", got)
	}
	if got := VecOr(a, b); got != (Vec128{0b1110, 0b1110}) {
		t.Errorf("VecOr = %b", got)
	}
	if got := VecAndNot(a, b); got != (Vec128{0b0100, 0b1000}) {
		t.Errorf("VecAndNot = %b", got)
	}
	if got := VecFrontier(a, b, Vec128{0b1000, 0}); got != (Vec128{0, 0b0010}) {
		t.Errorf("VecFrontier = %b", got)
	}
	if !VecIsZero(Vec256{}) || VecIsZero(Vec256{0, 0, 1, 0}) {
		t.Error("VecIsZero misclassifies")
	}
	if got := VecOnesCount(Vec256{1, 3, 7, 15}); got != 10 {
		t.Errorf("VecOnesCount = %d", got)
	}
	v := VecSetBit(Vec256{}, 200)
	if !VecBit(v, 200) || VecBit(v, 199) || VecOnesCount(v) != 1 {
		t.Errorf("VecSetBit/VecBit round-trip failed: %x", v)
	}
}
