package ugraph

import (
	"math/rand"
	"testing"
)

func TestTranspose64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		var in, want [64]uint64
		for i := range in {
			in[i] = rng.Uint64()
		}
		for r := 0; r < 64; r++ {
			for c := 0; c < 64; c++ {
				want[c] |= (in[r] >> uint(c) & 1) << uint(r)
			}
		}
		got := in
		transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: transpose64 mismatch", trial)
		}
		// Transposing twice is the identity.
		transpose64(&got)
		if got != in {
			t.Fatalf("trial %d: double transpose is not the identity", trial)
		}
	}
}

func randomBatchGraph(rng *rand.Rand, n int, density float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				if err := b.AddEdge(u, v, 0.05+0.9*rng.Float64()); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.Graph()
}

// TestSampleBatchSeededLanesBitIdenticalToScalarSampler is the batch
// engine's foundational contract: lane l of a batch equals the world the
// scalar per-sample primitive draws from the same seed, bit for bit, for
// every edge-count residue mod 64 (full and partial final tiles) and for
// ragged lane counts.
func TestSampleBatchSeededLanesBitIdenticalToScalarSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{3, 9, 17, 40} {
		g := randomBatchGraph(rng, n, 0.4)
		for _, lanes := range []int{1, 5, 64} {
			seeds := make([]int64, lanes)
			for l := range seeds {
				seeds[l] = rng.Int63()
			}
			b := NewWorldBatch(g)
			g.SampleBatchSeeded(seeds, b)
			if b.Lanes() != lanes {
				t.Fatalf("n=%d lanes=%d: Lanes() = %d", n, lanes, b.Lanes())
			}
			scalar := NewWorld(g)
			lane := NewWorld(g)
			for l := 0; l < lanes; l++ {
				g.SampleWorldSeeded(seeds[l], scalar)
				b.ExtractLane(l, lane)
				for wi := range scalar.bits {
					if scalar.bits[wi] != lane.bits[wi] {
						t.Fatalf("n=%d lanes=%d lane %d word %d: batch %064b != scalar %064b",
							n, lanes, l, wi, lane.bits[wi], scalar.bits[wi])
					}
				}
				for id := 0; id < g.NumEdges(); id++ {
					if got := b.LaneMask(id)>>uint(l)&1 == 1; got != scalar.Present(id) {
						t.Fatalf("edge %d lane %d: batch %v scalar %v", id, l, got, scalar.Present(id))
					}
				}
			}
		}
	}
}

func TestSampleBatchSeededInactiveLanesStayZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomBatchGraph(rng, 20, 0.5)
	b := NewWorldBatch(g)
	g.SampleBatchSeeded([]int64{1, 2, 3}, b)
	if b.ActiveMask() != 0b111 {
		t.Fatalf("ActiveMask = %b, want 111", b.ActiveMask())
	}
	for id, m := range b.EdgeMasks() {
		if m&^b.ActiveMask() != 0 {
			t.Fatalf("edge %d has bits outside the 3 active lanes: %064b", id, m)
		}
	}
	if b.PopCount() == 0 {
		t.Fatal("batch of a dense graph sampled no edges at all (suspicious)")
	}
}

func TestSampleBatchSeededDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomBatchGraph(rng, 40, 0.3)
	b := NewWorldBatch(g)
	seeds := make([]int64, 64)
	for l := range seeds {
		seeds[l] = int64(l + 1)
	}
	g.SampleBatchSeeded(seeds, b)
	if allocs := testing.AllocsPerRun(20, func() { g.SampleBatchSeeded(seeds, b) }); allocs != 0 {
		t.Errorf("SampleBatchSeeded allocates %.1f per call, want 0", allocs)
	}
}

func TestSampleBatchSeededPanicsOnBadLaneCount(t *testing.T) {
	g := MustNew(2, []Edge{{U: 0, V: 1, P: 0.5}})
	for _, seeds := range [][]int64{nil, make([]int64, 65)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleBatchSeeded(%d seeds) did not panic", len(seeds))
				}
			}()
			g.SampleBatchSeeded(seeds, NewWorldBatch(g))
		}()
	}
}
