package ugraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// k4 builds the Figure 1(a) graph: the complete graph on 4 vertices with all
// edge probabilities 0.3.
func k4(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 0.3); err != nil {
				t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
			}
		}
	}
	return b.Graph()
}

func TestBuilderValidation(t *testing.T) {
	cases := []struct {
		name    string
		u, v    int
		p       float64
		wantErr bool
	}{
		{"valid", 0, 1, 0.5, false},
		{"valid p=1", 0, 1, 1.0, false},
		{"self loop", 1, 1, 0.5, true},
		{"u out of range", -1, 1, 0.5, true},
		{"v out of range", 0, 5, 0.5, true},
		{"p zero", 0, 1, 0, true},
		{"p negative", 0, 1, -0.1, true},
		{"p above one", 0, 1, 1.1, true},
		{"p NaN", 0, 1, math.NaN(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(3)
			err := b.AddEdge(tc.u, tc.v, tc.p)
			if (err != nil) != tc.wantErr {
				t.Errorf("AddEdge(%d,%d,%v) error = %v, wantErr %v", tc.u, tc.v, tc.p, err, tc.wantErr)
			}
		})
	}
}

func TestBuilderDuplicate(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0, 0.5); err == nil {
		t.Error("reversed duplicate edge accepted")
	}
	if err := b.AddEdge(0, 1, 0.7); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestEdgeNormalization(t *testing.T) {
	g := MustNew(3, []Edge{{U: 2, V: 0, P: 0.4}})
	e := g.Edge(0)
	if e.U != 0 || e.V != 2 {
		t.Errorf("edge endpoints not normalized: got (%d,%d)", e.U, e.V)
	}
	if id, ok := g.EdgeID(2, 0); !ok || id != 0 {
		t.Errorf("EdgeID(2,0) = %d,%v; want 0,true", id, ok)
	}
	if !g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Error("HasEdge wrong")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 1, V: 5, P: 0.2}
	if e.Other(1) != 5 || e.Other(5) != 1 {
		t.Error("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	e.Other(3)
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := MustNew(4, []Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 0, V: 2, P: 0.25},
		{U: 0, V: 3, P: 0.25},
		{U: 1, V: 2, P: 1.0},
	})
	if got := g.Degree(0); got != 3 {
		t.Errorf("Degree(0) = %d, want 3", got)
	}
	if got := g.ExpectedDegree(0); got != 1.0 {
		t.Errorf("ExpectedDegree(0) = %v, want 1.0", got)
	}
	d := g.ExpectedDegrees()
	for u := 0; u < 4; u++ {
		if math.Abs(d[u]-g.ExpectedDegree(u)) > 1e-12 {
			t.Errorf("ExpectedDegrees[%d] = %v disagrees with ExpectedDegree %v", u, d[u], g.ExpectedDegree(u))
		}
	}
	if got := g.TotalProb(); got != 2.0 {
		t.Errorf("TotalProb = %v, want 2.0", got)
	}
	if got := g.MeanProb(); got != 0.5 {
		t.Errorf("MeanProb = %v, want 0.5", got)
	}
	// Adjacency must mirror the edge list.
	seen := 0
	for u := 0; u < 4; u++ {
		for _, a := range g.Neighbors(u) {
			e := g.Edge(a.ID)
			if e.U != u && e.V != u {
				t.Errorf("adjacency of %d references edge (%d,%d)", u, e.U, e.V)
			}
			if e.Other(u) != a.To {
				t.Errorf("arc to %d disagrees with edge %v", a.To, e)
			}
			seen++
		}
	}
	if seen != 2*g.NumEdges() {
		t.Errorf("adjacency has %d arcs, want %d", seen, 2*g.NumEdges())
	}
}

func TestSetProb(t *testing.T) {
	g := MustNew(2, []Edge{{U: 0, V: 1, P: 0.5}})
	g.SetProb(0, 0) // zero allowed post-construction
	if g.Prob(0) != 0 {
		t.Errorf("Prob after SetProb(0,0) = %v", g.Prob(0))
	}
	defer func() {
		if recover() == nil {
			t.Error("SetProb out of range did not panic")
		}
	}()
	g.SetProb(0, 1.5)
}

func TestCloneAndEqual(t *testing.T) {
	g := k4(t)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.SetProb(0, 0.9)
	if g.Equal(c) {
		t.Error("mutating clone affected equality")
	}
	if g.Prob(0) != 0.3 {
		t.Error("mutating clone changed original")
	}
}

func TestEntropyGoldenFigure2(t *testing.T) {
	// The paper's Figure 2 graph has five edges with probabilities
	// 0.4, 0.2, 0.4, 0.2, 0.1 and reports H(G) = 3.85 (bits).
	g := MustNew(4, []Edge{
		{U: 0, V: 1, P: 0.4},
		{U: 0, V: 2, P: 0.2},
		{U: 0, V: 3, P: 0.4},
		{U: 1, V: 3, P: 0.2},
		{U: 2, V: 3, P: 0.1},
	})
	if got := g.Entropy(); math.Abs(got-3.85) > 0.01 {
		t.Errorf("Entropy = %.4f, want ≈3.85", got)
	}
	// And the GDB output with three edges at 0.3, 0.5, 0.2 has H = 2.60.
	out := MustNew(4, []Edge{
		{U: 0, V: 1, P: 0.3},
		{U: 0, V: 3, P: 0.5},
		{U: 2, V: 3, P: 0.2},
	})
	if got := out.Entropy(); math.Abs(got-2.60) > 0.01 {
		t.Errorf("sparsified Entropy = %.4f, want ≈2.60", got)
	}
	if rel := RelativeEntropy(out, g); rel >= 1 || rel <= 0 {
		t.Errorf("RelativeEntropy = %v, want in (0,1)", rel)
	}
}

func TestEdgeEntropyProperties(t *testing.T) {
	if EdgeEntropy(0) != 0 || EdgeEntropy(1) != 0 {
		t.Error("H(0) and H(1) must be 0")
	}
	if got := EdgeEntropy(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("H(0.5) = %v, want 1 bit", got)
	}
	// Symmetry H(p) = H(1-p) and concavity peak at 0.5.
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		return math.Abs(EdgeEntropy(p)-EdgeEntropy(1-p)) < 1e-9 && EdgeEntropy(p) <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrConnectedGoldenFigure1(t *testing.T) {
	// Figure 1: Pr[K4 with p=0.3 is connected] = 0.219.
	g := k4(t)
	var pr float64
	EnumerateWorlds(g, func(w *World, p float64) {
		if w.IsConnected() {
			pr += p
		}
	})
	if math.Abs(pr-0.2186) > 0.0005 {
		t.Errorf("Pr[connected] = %.4f, want ≈0.2186", pr)
	}

	// Figure 1(b): spanning tree with three edges at 0.6 → 0.216.
	sp := MustNew(4, []Edge{
		{U: 0, V: 1, P: 0.6},
		{U: 1, V: 2, P: 0.6},
		{U: 2, V: 3, P: 0.6},
	})
	var prSp float64
	EnumerateWorlds(sp, func(w *World, p float64) {
		if w.IsConnected() {
			prSp += p
		}
	})
	if math.Abs(prSp-0.216) > 1e-9 {
		t.Errorf("Pr[sparsified connected] = %.6f, want 0.216", prSp)
	}
}

func TestEnumerateWorldsProbabilitiesSumToOne(t *testing.T) {
	g := MustNew(3, []Edge{
		{U: 0, V: 1, P: 0.37},
		{U: 1, V: 2, P: 0.81},
		{U: 0, V: 2, P: 0.09},
	})
	var total float64
	count := 0
	EnumerateWorlds(g, func(w *World, p float64) {
		total += p
		count++
		if math.Abs(w.Prob()-p) > 1e-12 {
			t.Errorf("World.Prob() = %v disagrees with enumeration %v", w.Prob(), p)
		}
	})
	if count != 8 {
		t.Errorf("enumerated %d worlds, want 8", count)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("world probabilities sum to %v, want 1", total)
	}
}

func TestSampleWorldFrequency(t *testing.T) {
	g := MustNew(3, []Edge{
		{U: 0, V: 1, P: 0.2},
		{U: 1, V: 2, P: 0.7},
	})
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	counts := make([]int, g.NumEdges())
	w := NewWorld(g)
	for i := 0; i < n; i++ {
		g.SampleWorldInto(rng, w)
		w.ForEachPresent(func(id int) { counts[id]++ })
	}
	for id, e := range g.Edges() {
		freq := float64(counts[id]) / n
		if math.Abs(freq-e.P) > 0.02 {
			t.Errorf("edge %d empirical frequency %.3f, want ≈%.3f", id, freq, e.P)
		}
	}
}

func TestWorldNeighborsAndHasEdge(t *testing.T) {
	g := MustNew(3, []Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 0, V: 2, P: 0.5},
	})
	w := WorldFromMask(g, []bool{true, false})
	if !w.HasEdge(0, 1) || w.HasEdge(0, 2) || w.HasEdge(1, 2) {
		t.Error("HasEdge wrong")
	}
	var ns []int
	w.Neighbors(0, func(v int) bool { ns = append(ns, v); return true })
	if len(ns) != 1 || ns[0] != 1 {
		t.Errorf("Neighbors(0) = %v, want [1]", ns)
	}
	if got := w.NumEdges(); got != 1 {
		t.Errorf("NumEdges = %d, want 1", got)
	}
}

func TestComponentsAndConnectivity(t *testing.T) {
	g := MustNew(5, []Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
		{U: 3, V: 4, P: 0.5},
	})
	comp, k := g.Components()
	if k != 2 {
		t.Fatalf("components = %d, want 2", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] {
		t.Errorf("component labels %v inconsistent", comp)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	conn := MustNew(2, []Edge{{U: 0, V: 1, P: 0.1}})
	if !conn.IsConnected() {
		t.Error("connected graph reported disconnected")
	}
	if empty := MustNew(1, nil); !empty.IsConnected() {
		t.Error("single vertex graph must be connected")
	}
}

func TestWorldDistance(t *testing.T) {
	// Path 0-1-2-3 plus shortcut 0-3.
	g := MustNew(4, []Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
		{U: 2, V: 3, P: 0.5},
		{U: 0, V: 3, P: 0.5},
	})
	all := WorldFromMask(g, []bool{true, true, true, true})
	if d := all.Distance(0, 3); d != 1 {
		t.Errorf("Distance(0,3) with shortcut = %d, want 1", d)
	}
	noShortcut := WorldFromMask(g, []bool{true, true, true, false})
	if d := noShortcut.Distance(0, 3); d != 3 {
		t.Errorf("Distance(0,3) path = %d, want 3", d)
	}
	if d := noShortcut.Distance(2, 2); d != 0 {
		t.Errorf("Distance(2,2) = %d, want 0", d)
	}
	none := NewWorld(g)
	if d := none.Distance(0, 3); d != -1 {
		t.Errorf("Distance in empty world = %d, want -1", d)
	}
	if none.Reachable(0, 3) {
		t.Error("Reachable in empty world")
	}
	if !none.Reachable(1, 1) {
		t.Error("vertex must reach itself")
	}
}

func TestEdgeSubgraph(t *testing.T) {
	g := k4(t)
	sub, err := g.EdgeSubgraph([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 4 || sub.NumEdges() != 3 {
		t.Fatalf("subgraph %v, want 4 vertices 3 edges", sub)
	}
	for i, id := range []int{0, 2, 4} {
		if sub.Edge(i) != g.Edge(id) {
			t.Errorf("subgraph edge %d = %v, want %v", i, sub.Edge(i), g.Edge(id))
		}
	}
	if _, err := g.EdgeSubgraph([]int{0, 0}); err == nil {
		t.Error("duplicate edge ids accepted")
	}
	if _, err := g.EdgeSubgraph([]int{99}); err == nil {
		t.Error("out-of-range edge id accepted")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := k4(t)
	sub, orig, err := g.InducedSubgraph([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("induced subgraph %v, want 2 vertices 1 edge", sub)
	}
	if orig[0] != 3 || orig[1] != 1 {
		t.Errorf("mapping %v, want [3 1]", orig)
	}
	if _, _, err := g.InducedSubgraph([]int{1, 1}); err == nil {
		t.Error("duplicate vertices accepted")
	}
	if _, _, err := g.InducedSubgraph([]int{9}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestLargestComponent(t *testing.T) {
	g := MustNew(6, []Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
		{U: 2, V: 0, P: 0.5},
		{U: 3, V: 4, P: 0.5},
	})
	lc, orig, err := g.LargestComponent()
	if err != nil {
		t.Fatal(err)
	}
	if lc.NumVertices() != 3 || lc.NumEdges() != 3 {
		t.Errorf("largest component %v, want triangle", lc)
	}
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, v := range orig {
		if !want[v] {
			t.Errorf("largest component contains unexpected vertex %d", v)
		}
	}
}

func TestSortedEdgeIDsByProb(t *testing.T) {
	g := MustNew(4, []Edge{
		{U: 0, V: 1, P: 0.2},
		{U: 1, V: 2, P: 0.9},
		{U: 2, V: 3, P: 0.2},
		{U: 0, V: 3, P: 0.5},
	})
	ids := g.SortedEdgeIDsByProb()
	want := []int{1, 3, 0, 2} // 0.9, 0.5, then ties 0.2 by id
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("SortedEdgeIDsByProb = %v, want %v", ids, want)
		}
	}
}

func TestGraphQuickInvariants(t *testing.T) {
	// Random graphs: adjacency degree sums, expected degree sum = 2·TotalProb.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					if err := b.AddEdge(u, v, 0.05+0.95*rng.Float64()); err != nil {
						return false
					}
				}
			}
		}
		g := b.Graph()
		var degSum float64
		structural := 0
		for u := 0; u < n; u++ {
			degSum += g.ExpectedDegree(u)
			structural += g.Degree(u)
		}
		return math.Abs(degSum-2*g.TotalProb()) < 1e-9 && structural == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
