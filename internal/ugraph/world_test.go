package ugraph

import (
	"math"
	"testing"
)

// pathGraph returns a path with m edges (m+1 vertices), all probability p —
// handy for crossing the 64-edge word boundary of the bitset.
func pathGraph(m int, p float64) *Graph {
	b := NewBuilder(m + 1)
	for i := 0; i < m; i++ {
		if err := b.AddEdge(i, i+1, p); err != nil {
			panic(err)
		}
	}
	return b.Graph()
}

func TestWorldBitsetAccessorsAcrossWordBoundary(t *testing.T) {
	const m = 130 // three words: 64 + 64 + 2
	g := pathGraph(m, 0.5)
	w := NewWorld(g)
	if got := len(w.Words()); got != 3 {
		t.Fatalf("words = %d, want 3", got)
	}
	for _, id := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if w.Present(id) {
			t.Fatalf("fresh world has edge %d present", id)
		}
		w.Set(id, true)
		if !w.Present(id) {
			t.Fatalf("Set(%d, true) not visible", id)
		}
	}
	if got := w.PopCount(); got != 8 {
		t.Fatalf("PopCount = %d, want 8", got)
	}
	var seen []int
	w.ForEachPresent(func(id int) { seen = append(seen, id) })
	want := []int{0, 1, 63, 64, 65, 127, 128, 129}
	if len(seen) != len(want) {
		t.Fatalf("ForEachPresent visited %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ForEachPresent visited %v, want %v", seen, want)
		}
	}
	w.Set(64, false)
	if w.Present(64) || w.PopCount() != 7 {
		t.Fatal("Set(64, false) did not clear the bit")
	}
}

func TestSampleWorldSeededDeterministicAndFrequencyCorrect(t *testing.T) {
	g := pathGraph(100, 0.3)
	a, b := NewWorld(g), NewWorld(g)
	g.SampleWorldSeeded(42, a)
	g.SampleWorldSeeded(42, b)
	for i, word := range a.Words() {
		if word != b.Words()[i] {
			t.Fatal("equal seeds produced different worlds")
		}
	}
	g.SampleWorldSeeded(43, b)
	same := true
	for i, word := range a.Words() {
		if word != b.Words()[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical worlds (suspicious)")
	}

	// Empirical inclusion frequency across seeds must track p.
	const runs = 4000
	total := 0
	for seed := int64(0); seed < runs; seed++ {
		g.SampleWorldSeeded(seed, a)
		total += a.PopCount()
	}
	freq := float64(total) / float64(runs*g.NumEdges())
	if math.Abs(freq-0.3) > 0.01 {
		t.Errorf("seeded sampling frequency %.4f, want ≈0.3", freq)
	}
}

func TestSampleWorldSeededZeroAllocs(t *testing.T) {
	g := pathGraph(200, 0.5)
	w := NewWorld(g)
	allocs := testing.AllocsPerRun(100, func() {
		g.SampleWorldSeeded(7, w)
	})
	if allocs != 0 {
		t.Errorf("SampleWorldSeeded allocates %.1f per call, want 0", allocs)
	}
}

func TestSamplerStreamMatchesSeededSampling(t *testing.T) {
	// SampleWorldSeeded is exactly one SampleWorldWith draw from a fresh
	// Sampler — the engine relies on this equivalence.
	g := pathGraph(70, 0.5)
	a, b := NewWorld(g), NewWorld(g)
	g.SampleWorldSeeded(99, a)
	s := NewSampler(99)
	g.SampleWorldWith(&s, b)
	for i, word := range a.Words() {
		if word != b.Words()[i] {
			t.Fatal("SampleWorldSeeded diverges from SampleWorldWith on a fresh sampler")
		}
	}
}
