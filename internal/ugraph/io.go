package ugraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text interchange format is line-oriented:
//
//	# comments and blank lines are ignored
//	<numVertices> <numEdges>
//	<u> <v> <p>
//	...
//
// Endpoints are 0-based vertex identifiers; p is a probability in [0, 1].
// A probability of exactly 0 is legal on read for compatibility with files
// written by older versions; Write never emits one. Sparsifiers drive edge
// probabilities to zero (the ⌊0·⌉1 clamp of Equation 9) before discarding
// them, and a p = 0 edge is indistinguishable from an absent edge under
// possible-world semantics — so Write drops such edges, guaranteeing that
// any written graph can be re-read and re-sparsified.

// ReadLimits bounds the vertex and edge counts a text header may declare.
// The CSR offset table is allocated from the header's vertex count before
// any edge is read, so an adversarial one-line file declaring 2^40
// vertices would otherwise commit gigabytes. Zero fields take the strict
// default (2^24), which is the right guard for untrusted input such as
// HTTP uploads; trusted local files — binary-era graphs converted from
// text — can raise the caps via ReadWithLimits or TrustedReadLimits.
// Programmatic construction through New/Builder is not limited.
type ReadLimits struct {
	MaxVertices int
	MaxEdges    int
}

// strictHeaderCount is the default cap for untrusted readers.
const strictHeaderCount = 1 << 24

// TrustedReadLimits admits anything the .ugsb binary format itself could
// hold (2^30 vertices/edges) — for local files the operator chose to load.
var TrustedReadLimits = ReadLimits{MaxVertices: 1 << 30, MaxEdges: 1 << 30}

func (l ReadLimits) withDefaults() ReadLimits {
	if l.MaxVertices == 0 {
		l.MaxVertices = strictHeaderCount
	}
	if l.MaxEdges == 0 {
		l.MaxEdges = strictHeaderCount
	}
	return l
}

// Write serializes g in the text interchange format. Edges whose probability
// is exactly 0 are omitted (see the format contract above); the header's
// edge count reflects the edges actually written.
func Write(w io.Writer, g *Graph) error {
	m := 0
	for _, e := range g.Edges() {
		if e.P > 0 {
			m++
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), m); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if e.P == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.P); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text interchange format under the strict
// default ReadLimits — the right entry point for untrusted input.
func Read(r io.Reader) (*Graph, error) {
	return ReadWithLimits(r, ReadLimits{})
}

// ReadWithLimits parses a graph in the text interchange format, rejecting
// headers that declare more vertices or edges than lim allows.
func ReadWithLimits(r io.Reader, lim ReadLimits) (*Graph, error) {
	lim = lim.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}

	head, ok := next()
	if !ok {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("ugraph: empty input")
	}
	fields := strings.Fields(head)
	if len(fields) != 2 {
		return nil, fmt.Errorf("ugraph: line %d: want \"<numVertices> <numEdges>\", got %q", line, head)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("ugraph: line %d: bad vertex count %q", line, fields[0])
	}
	m, err := strconv.Atoi(fields[1])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("ugraph: line %d: bad edge count %q", line, fields[1])
	}
	if n > lim.MaxVertices || m > lim.MaxEdges {
		return nil, fmt.Errorf("ugraph: line %d: header declares %d vertices, %d edges; limits are %d, %d", line, n, m, lim.MaxVertices, lim.MaxEdges)
	}

	b := NewBuilder(n)
	var zeroEdges []int // indices of p = 0 edges, zeroed after construction
	for i := 0; i < m; i++ {
		s, ok := next()
		if !ok {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("ugraph: expected %d edges, got %d", m, i)
		}
		fields = strings.Fields(s)
		if len(fields) != 3 {
			return nil, fmt.Errorf("ugraph: line %d: want \"<u> <v> <p>\", got %q", line, s)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("ugraph: line %d: bad vertex %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("ugraph: line %d: bad vertex %q", line, fields[1])
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("ugraph: line %d: bad probability %q", line, fields[2])
		}
		if p == 0 {
			// Builder validation requires (0,1]; add with a placeholder and
			// zero it once the graph exists (SetProb allows 0).
			zeroEdges = append(zeroEdges, i)
			p = 1
		}
		if err := b.AddEdge(u, v, p); err != nil {
			return nil, fmt.Errorf("ugraph: line %d: %w", line, err)
		}
	}
	if s, extra := next(); extra {
		return nil, fmt.Errorf("ugraph: line %d: trailing content %q after %d edges", line, s, m)
	}
	g := b.Graph()
	for _, id := range zeroEdges {
		g.SetProb(id, 0)
	}
	return g, nil
}

// WriteFile serializes g to the named file.
func WriteFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile parses a graph from the named file. Local files are trusted
// input — the operator chose to load them — so the generous
// TrustedReadLimits apply rather than Read's strict upload caps.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadWithLimits(f, TrustedReadLimits)
}
