package ugraph

import "fmt"

// EdgeSubgraph returns a new graph over the same vertex set containing only
// the edges with the given identifiers, keeping their current probabilities.
// Duplicate identifiers are rejected.
func (g *Graph) EdgeSubgraph(edgeIDs []int) (*Graph, error) {
	b := NewBuilder(g.n)
	for _, id := range edgeIDs {
		if id < 0 || id >= len(g.edges) {
			return nil, fmt.Errorf("ugraph: edge id %d out of range", id)
		}
		e := g.edges[id]
		if err := b.AddEdge(e.U, e.V, e.P); err != nil {
			return nil, err
		}
	}
	return b.Graph(), nil
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// relabeled to 0..len(vertices)−1 in the given order, together with the
// mapping from new to original vertex identifiers. Duplicate vertices are
// rejected.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int, error) {
	remap := make(map[int]int, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("ugraph: vertex %d out of range", v)
		}
		if _, dup := remap[v]; dup {
			return nil, nil, fmt.Errorf("ugraph: duplicate vertex %d", v)
		}
		remap[v] = i
		orig[i] = v
	}
	b := NewBuilder(len(vertices))
	for _, e := range g.edges {
		u, okU := remap[e.U]
		v, okV := remap[e.V]
		if okU && okV {
			if err := b.AddEdge(u, v, e.P); err != nil {
				return nil, nil, err
			}
		}
	}
	return b.Graph(), orig, nil
}

// LargestComponent returns the induced subgraph of the largest connected
// component (ties broken by lowest vertex id) and the new→original vertex
// mapping.
func (g *Graph) LargestComponent() (*Graph, []int, error) {
	comp, k := g.Components()
	if k <= 1 {
		vs := make([]int, g.n)
		for i := range vs {
			vs[i] = i
		}
		return g.InducedSubgraph(vs)
	}
	sizes := make([]int, k)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c := 1; c < k; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	var vs []int
	for v, c := range comp {
		if c == best {
			vs = append(vs, v)
		}
	}
	return g.InducedSubgraph(vs)
}
