package ugraph

import (
	"math"
	"math/rand"
	"testing"
)

// randomGraph builds an arbitrary valid uncertain graph for CSR testing.
func randomGraph(t *testing.T, rng *rand.Rand, n int, density float64) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				if err := b.AddEdge(u, v, 0.01+0.99*rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.Graph()
}

func TestCSRAdjacencyConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(t, rng, 50, 0.2)

	off, arcs := g.ArcOffsets(), g.Arcs()
	if len(off) != g.NumVertices()+1 {
		t.Fatalf("ArcOffsets length %d, want |V|+1 = %d", len(off), g.NumVertices()+1)
	}
	if off[0] != 0 || int(off[g.NumVertices()]) != len(arcs) {
		t.Fatalf("offset bounds [%d, %d], want [0, %d]", off[0], off[g.NumVertices()], len(arcs))
	}
	if len(arcs) != 2*g.NumEdges() {
		t.Fatalf("arc array has %d entries, want 2|E| = %d", len(arcs), 2*g.NumEdges())
	}

	degSum := 0
	for u := 0; u < g.NumVertices(); u++ {
		nbrs := g.Neighbors(u)
		if len(nbrs) != g.Degree(u) {
			t.Fatalf("vertex %d: len(Neighbors) = %d, Degree = %d", u, len(nbrs), g.Degree(u))
		}
		degSum += len(nbrs)
		prevID := -1
		for _, a := range nbrs {
			e := g.Edge(a.ID)
			if e.Other(u) != a.To {
				t.Fatalf("vertex %d: arc to %d does not match edge %d = (%d,%d)", u, a.To, a.ID, e.U, e.V)
			}
			if a.ID <= prevID {
				t.Fatalf("vertex %d: arcs not in ascending edge-id order (%d after %d)", u, a.ID, prevID)
			}
			prevID = a.ID
		}
	}
	if degSum != 2*g.NumEdges() {
		t.Fatalf("degree sum %d, want 2|E| = %d", degSum, 2*g.NumEdges())
	}

	// Every edge appears exactly once in each endpoint's row.
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		for _, u := range [2]int{e.U, e.V} {
			found := 0
			for _, a := range g.Neighbors(u) {
				if a.ID == id {
					found++
					if a.To != e.Other(u) {
						t.Fatalf("edge %d: arc in row %d points to %d, want %d", id, u, a.To, e.Other(u))
					}
				}
			}
			if found != 1 {
				t.Fatalf("edge %d appears %d times in row %d, want 1", id, found, u)
			}
		}
	}
}

func TestCSRNeighborsIsArcSubslice(t *testing.T) {
	g := MustNew(4, []Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
		{U: 2, V: 3, P: 0.5},
	})
	off, arcs := g.ArcOffsets(), g.Arcs()
	for u := 0; u < g.NumVertices(); u++ {
		nbrs := g.Neighbors(u)
		want := arcs[off[u]:off[u+1]]
		if len(nbrs) != len(want) {
			t.Fatalf("vertex %d: Neighbors len %d, CSR row len %d", u, len(nbrs), len(want))
		}
		for i := range nbrs {
			if nbrs[i] != want[i] {
				t.Fatalf("vertex %d arc %d: %+v != CSR %+v", u, i, nbrs[i], want[i])
			}
		}
	}
}

func TestEntropyGreaterMatchesEdgeEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	probs := []float64{0, 1, 0.5, 0.25, 0.75, 0.01, 0.99}
	for i := 0; i < 200; i++ {
		probs = append(probs, rng.Float64())
	}
	for _, p := range probs {
		for _, q := range probs {
			hp, hq := EdgeEntropy(p), EdgeEntropy(q)
			if math.Abs(hp-hq) < 1e-12 {
				// Mathematically (near-)equal entropies — e.g. the
				// symmetric pair (0.99, 0.01) — where the log-based
				// evaluation itself is only ulp-accurate; the distance
				// comparator is the authoritative tie-breaker there.
				continue
			}
			if got, want := EntropyGreater(p, q), hp > hq; got != want {
				t.Fatalf("EntropyGreater(%v, %v) = %v, but H(p)=%v H(q)=%v", p, q, got, hp, hq)
			}
		}
	}
}
