package ugraph

import "math"

// EdgeEntropy returns the binary (base-2) entropy of a single edge
// probability: H(p) = −p·log2(p) − (1−p)·log2(1−p). By convention
// H(0) = H(1) = 0.
//
// The paper defines graph entropy as the joint entropy of independent edges,
// and its worked examples (e.g. Figure 2: 3.85 → 2.60) use base-2 logarithms.
func EdgeEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// EntropyGreater reports whether H(p) > H(q) for probabilities in [0, 1]
// without evaluating logarithms: binary entropy is symmetric about ½ and
// strictly increasing toward it, so the comparison reduces to which
// probability lies closer to ½. This is the comparator behind the
// sparsifiers' entropy caps, which sit on the hottest inner loop.
func EntropyGreater(p, q float64) bool {
	dp, dq := p-0.5, q-0.5
	if dp < 0 {
		dp = -dp
	}
	if dq < 0 {
		dq = -dq
	}
	return dp < dq
}

// Entropy returns H(G) = Σ_e H(p_e), the joint entropy of the graph's
// independent edges, in bits.
func (g *Graph) Entropy() float64 {
	var h float64
	for _, e := range g.edges {
		h += EdgeEntropy(e.P)
	}
	return h
}

// RelativeEntropy returns H(g) / H(base). It reports how much uncertainty a
// sparsified graph retains relative to its original. If base has zero
// entropy the result is 0 when g also has zero entropy and +Inf otherwise.
func RelativeEntropy(g, base *Graph) float64 {
	hb := base.Entropy()
	hg := g.Entropy()
	if hb == 0 {
		if hg == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return hg / hb
}
