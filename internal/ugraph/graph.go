// Package ugraph implements uncertain (probabilistic) undirected graphs
// under possible-world semantics.
//
// An uncertain graph G = (V, E, p) assigns each edge e an independent
// existence probability p(e) ∈ (0, 1]. G denotes a distribution over the
// 2^|E| deterministic graphs ("possible worlds") obtained by materializing
// each edge independently with its probability.
//
// Vertices are dense integers 0..N-1. Each undirected edge is stored once
// with normalized endpoints U < V and is identified by its index in the
// edge list. The package provides expected-degree and entropy computations,
// connectivity utilities, possible-world sampling, induced and edge
// subgraphs, and a plain-text interchange format.
package ugraph

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Edge is an undirected uncertain edge with existence probability P.
// Endpoints are normalized so that U < V.
type Edge struct {
	U, V int
	P    float64
}

// Other returns the endpoint of e that is not x.
// It panics if x is not an endpoint of e.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("ugraph: vertex %d is not an endpoint of edge (%d,%d)", x, e.U, e.V))
}

// Arc is a half-edge in an adjacency list: the neighboring vertex and the
// identifier of the underlying undirected edge.
type Arc struct {
	To int // neighbor vertex
	ID int // edge index in the graph's edge list
}

// Graph is an uncertain undirected graph. The zero value is an empty graph
// with no vertices; use New or a Builder to construct instances.
//
// Adjacency is stored in compressed sparse row (CSR) form: one flat arc
// array grouped by source vertex plus an offset table. Neighbors returns a
// subslice of the arc array, so iteration is a contiguous scan with no
// per-vertex slice-header indirection; BFS-style kernels can also walk
// ArcOffsets/Arcs directly.
//
// Graph is not safe for concurrent mutation. Concurrent readers are safe as
// long as no goroutine calls SetProb.
//
// A graph returned by OpenMapped is a read-only view whose CSR slices
// alias a file mapping: SetProb panics on it, Clone materializes a
// writable heap copy, and Close releases the mapping.
type Graph struct {
	n      int
	edges  []Edge         // one record per undirected edge, U < V
	arcOff []int32        // CSR row offsets: arcs of u are arcs[arcOff[u]:arcOff[u+1]]
	arcs   []Arc          // CSR arc array, grouped by source vertex, 2|E| entries
	index  map[uint64]int // packed (u,v) -> edge ID; may be built lazily

	indexOnce sync.Once // guards the lazy index build for mapped graphs
	readonly  bool      // true for mapped views: SetProb must not touch the pages
	backing   io.Closer // the file mapping behind a mapped view, nil otherwise
}

func pairKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// New constructs a graph with n vertices and the given edges. Endpoints are
// normalized; duplicate edges or invalid endpoints/probabilities return an
// error. Probabilities must lie in (0, 1].
func New(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.P); err != nil {
			return nil, err
		}
	}
	return b.Graph(), nil
}

// MustNew is like New but panics on error. It is intended for tests and
// package-level example graphs.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Builder incrementally assembles a Graph, validating each edge as it is
// added.
type Builder struct {
	n     int
	edges []Edge
	index map[uint64]int
	err   error
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, index: make(map[uint64]int)}
}

// AddEdge appends the undirected edge (u, v) with probability p.
func (b *Builder) AddEdge(u, v int, p float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("ugraph: edge (%d,%d) endpoint out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("ugraph: self-loop at vertex %d", u)
	}
	if !(p > 0 && p <= 1) {
		return fmt.Errorf("ugraph: edge (%d,%d) probability %v outside (0,1]", u, v, p)
	}
	k := pairKey(u, v)
	if _, dup := b.index[k]; dup {
		return fmt.Errorf("ugraph: duplicate edge (%d,%d)", u, v)
	}
	if u > v {
		u, v = v, u
	}
	b.index[k] = len(b.edges)
	b.edges = append(b.edges, Edge{U: u, V: v, P: p})
	return nil
}

// Graph finalizes the builder. The builder must not be reused afterwards.
func (b *Builder) Graph() *Graph {
	g := &Graph{n: b.n, edges: b.edges, index: b.index}
	g.buildAdjacency()
	return g
}

// buildAdjacency constructs the CSR arrays with a counting sort over the
// edge list. Arcs of each vertex appear in ascending edge-id order, matching
// the insertion order of the previous [][]Arc representation.
func (g *Graph) buildAdjacency() {
	g.arcOff = make([]int32, g.n+1)
	for _, e := range g.edges {
		g.arcOff[e.U+1]++
		g.arcOff[e.V+1]++
	}
	for u := 0; u < g.n; u++ {
		g.arcOff[u+1] += g.arcOff[u]
	}
	g.arcs = make([]Arc, 2*len(g.edges))
	next := make([]int32, g.n)
	copy(next, g.arcOff[:g.n])
	for id, e := range g.edges {
		g.arcs[next[e.U]] = Arc{To: e.V, ID: id}
		next[e.U]++
		g.arcs[next[e.V]] = Arc{To: e.U, ID: id}
		next[e.V]++
	}
}

// NumVertices reports |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given identifier.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns the graph's edge slice. The slice is owned by the graph and
// must not be modified; use SetProb to change probabilities.
func (g *Graph) Edges() []Edge { return g.edges }

// Prob returns the existence probability of edge id.
func (g *Graph) Prob(id int) float64 { return g.edges[id].P }

// SetProb overwrites the probability of edge id. Unlike construction-time
// validation, p = 0 is allowed here: sparsification algorithms drive edge
// probabilities to zero before discarding them.
func (g *Graph) SetProb(id int, p float64) {
	if g.readonly {
		panic("ugraph: SetProb on a read-only mapped graph (Clone it first)")
	}
	if !(p >= 0 && p <= 1) {
		panic(fmt.Sprintf("ugraph: SetProb(%d, %v) outside [0,1]", id, p))
	}
	g.edges[id].P = p
}

// EdgeID returns the identifier of edge (u, v) and whether it exists.
// Mapped graphs build the (u,v)→id index lazily on the first call (the
// only O(|E|) heap cost a mapped view ever pays, and only if asked).
func (g *Graph) EdgeID(u, v int) (int, bool) {
	g.indexOnce.Do(g.ensureIndex)
	id, ok := g.index[pairKey(u, v)]
	return id, ok
}

// ensureIndex builds the pair index if construction did not provide one.
func (g *Graph) ensureIndex() {
	if g.index != nil {
		return
	}
	idx := make(map[uint64]int, len(g.edges))
	for i, e := range g.edges {
		idx[pairKey(e.U, e.V)] = i
	}
	g.index = idx
}

// ReadOnly reports whether the graph is an immutable view (SetProb
// panics). Graphs returned by OpenMapped are read-only.
func (g *Graph) ReadOnly() bool { return g.readonly }

// Mapped reports whether the graph's CSR arrays alias a file mapping.
func (g *Graph) Mapped() bool { return g.backing != nil }

// Close releases the file mapping behind a graph opened with OpenMapped;
// it is a no-op for heap-resident graphs. The graph and every slice
// obtained from its accessors are invalid afterwards.
func (g *Graph) Close() error {
	if g.backing == nil {
		return nil
	}
	b := g.backing
	g.backing = nil
	g.edges, g.arcOff, g.arcs, g.index = nil, nil, nil, nil
	g.n = 0
	return b.Close()
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeID(u, v)
	return ok
}

// Neighbors returns the adjacency list of u as a view into the CSR arc
// array. The slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []Arc { return g.arcs[g.arcOff[u]:g.arcOff[u+1]] }

// Degree reports the number of edges incident to u (structural degree, not
// expected degree).
func (g *Graph) Degree(u int) int { return int(g.arcOff[u+1] - g.arcOff[u]) }

// ArcOffsets returns the CSR row-offset table: the arcs of vertex u occupy
// Arcs()[ArcOffsets()[u]:ArcOffsets()[u+1]]. The slice has length |V|+1, is
// owned by the graph and must not be modified.
func (g *Graph) ArcOffsets() []int32 { return g.arcOff }

// Arcs returns the flat CSR arc array (2|E| entries, grouped by source
// vertex in ascending edge-id order). The slice is owned by the graph and
// must not be modified.
func (g *Graph) Arcs() []Arc { return g.arcs }

// ExpectedDegree returns the expected degree of u: the sum of the
// probabilities of its incident edges. This equals the expected cut size of
// the singleton set {u}.
func (g *Graph) ExpectedDegree(u int) float64 {
	var d float64
	for _, a := range g.Neighbors(u) {
		d += g.edges[a.ID].P
	}
	return d
}

// ExpectedDegrees returns the expected degree of every vertex.
func (g *Graph) ExpectedDegrees() []float64 {
	d := make([]float64, g.n)
	for _, e := range g.edges {
		d[e.U] += e.P
		d[e.V] += e.P
	}
	return d
}

// TotalProb returns Σ_e p(e), the expected number of edges of a possible
// world.
func (g *Graph) TotalProb() float64 {
	var s float64
	for _, e := range g.edges {
		s += e.P
	}
	return s
}

// MeanProb returns the average edge probability E[p_e], or 0 for an empty
// edge set.
func (g *Graph) MeanProb() float64 {
	if len(g.edges) == 0 {
		return 0
	}
	return g.TotalProb() / float64(len(g.edges))
}

// Clone returns a deep, writable heap copy of the graph (including of a
// read-only mapped view). The pair index is rebuilt lazily on demand
// rather than copied, so cloning never races a concurrent lazy build on
// the source.
func (g *Graph) Clone() *Graph {
	edges := make([]Edge, len(g.edges))
	copy(edges, g.edges)
	c := &Graph{n: g.n, edges: edges}
	c.buildAdjacency()
	return c
}

// Equal reports whether g and h have identical vertex counts and edge sets
// (including probabilities, compared exactly).
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || len(g.edges) != len(h.edges) {
		return false
	}
	for i := range g.edges {
		if g.edges[i] != h.edges[i] {
			return false
		}
	}
	return true
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("ugraph.Graph{V: %d, E: %d, E[p]: %.4f}", g.n, len(g.edges), g.MeanProb())
}

// SortedEdgeIDsByProb returns edge identifiers ordered by descending
// probability, breaking ties by identifier for determinism.
func (g *Graph) SortedEdgeIDsByProb() []int {
	ids := make([]int, len(g.edges))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ea, eb := g.edges[ids[a]], g.edges[ids[b]]
		if ea.P != eb.P {
			return ea.P > eb.P
		}
		return ids[a] < ids[b]
	})
	return ids
}
