package ugraph

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestIORoundTrip(t *testing.T) {
	g := MustNew(5, []Edge{
		{U: 0, V: 1, P: 0.25},
		{U: 3, V: 4, P: 1},
		{U: 1, V: 4, P: 0.0625},
	})
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Read: %v\ninput:\n%s", err, sb.String())
	}
	if !g.Equal(got) {
		t.Errorf("round trip mismatch:\n%s", sb.String())
	}
}

func TestReadCommentsAndBlankLines(t *testing.T) {
	in := `
# a comment
3 2

0 1 0.5
# interior comment
1 2 0.25
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Errorf("got %v", g)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"header fields", "3\n"},
		{"negative n", "-1 0\n"},
		{"missing edges", "3 2\n0 1 0.5\n"},
		{"bad edge fields", "3 1\n0 1\n"},
		{"bad vertex", "3 1\nx 1 0.5\n"},
		{"bad prob", "3 1\n0 1 pow\n"},
		{"prob negative", "3 1\n0 1 -0.5\n"},
		{"prob above one", "3 1\n0 1 1.5\n"},
		{"self loop", "3 1\n1 1 0.5\n"},
		{"duplicate", "3 2\n0 1 0.5\n1 0 0.5\n"},
		{"trailing", "3 1\n0 1 0.5\n0 2 0.5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.in)); err == nil {
				t.Errorf("Read(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestReadZeroProbabilityEdge(t *testing.T) {
	// Files written by older versions may contain p = 0 edges; Read still
	// accepts them for compatibility.
	in := "3 2\n0 1 0\n1 2 0.5\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Prob(0) != 0 || g.Prob(1) != 0.5 {
		t.Errorf("probs = %v, %v; want 0, 0.5", g.Prob(0), g.Prob(1))
	}
}

func TestWriteDropsZeroProbabilityEdges(t *testing.T) {
	// A p = 0 edge is indistinguishable from an absent edge, and keeping
	// it would make the written file unreadable by strict consumers: Write
	// drops it and adjusts the header's edge count.
	g := MustNew(3, []Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.25},
	})
	g.SetProb(1, 0)
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 1 {
		t.Fatalf("read back %d edges, want 1:\n%s", back.NumEdges(), sb.String())
	}
	if !back.HasEdge(0, 1) || back.Prob(0) != 0.5 {
		t.Errorf("surviving edge wrong: %v", back.Edges())
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(30)
	for u := 0; u < 30; u++ {
		for v := u + 1; v < 30; v++ {
			if rng.Float64() < 0.2 {
				if err := b.AddEdge(u, v, rng.Float64()/2+0.25); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	g := b.Graph()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(got) {
		t.Error("file round trip mismatch")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("missing file read succeeded")
	}
}
