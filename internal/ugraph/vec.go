package ugraph

import "math/bits"

// Vec is the word-vector type behind the variable-width bit-parallel world
// engine: an array of machine words carrying one world lane per bit, so
// [1]uint64 is the 64-lane engine, [2]uint64 the 128-lane one and [4]uint64
// the 256-lane one. Lane l lives in bit l%64 of word l/64 — a V-wide batch
// is laid out exactly like len(V) consecutive 64-lane batches interleaved
// per edge, which is what lets width-agnostic caches (FillCache) serve every
// width from the same 64-lane blocks.
//
// The helpers below are the whole-vector bit operations the traversal
// kernels are written against; each instantiates to straight-line word ops
// with no loops or branches at the widths in the constraint.
type Vec interface {
	[1]uint64 | [2]uint64 | [4]uint64
}

// The three engine widths. Aliases, not defined types, so vector literals
// and plain array indexing interoperate freely with the generic kernels.
type (
	// Vec64 is the one-word, 64-lane vector (the PR 4 engine width).
	Vec64 = [1]uint64
	// Vec128 is the two-word, 128-lane vector.
	Vec128 = [2]uint64
	// Vec256 is the four-word, 256-lane vector.
	Vec256 = [4]uint64
)

// VecLanes reports the lane count of V: 64 bits per word.
func VecLanes[V Vec]() int {
	var v V
	return len(v) * 64
}

// VecOnes returns the vector with the low n lane bits set (the active mask
// of an n-lane batch). n must be in [0, VecLanes[V]()].
func VecOnes[V Vec](n int) V {
	var v V
	for i := 0; i < len(v); i++ {
		switch {
		case n >= 64:
			v[i] = ^uint64(0)
			n -= 64
		case n > 0:
			v[i] = 1<<uint(n) - 1
			n = 0
		}
	}
	return v
}

// VecAnd returns a & b.
func VecAnd[V Vec](a, b V) V {
	for i := 0; i < len(a); i++ {
		a[i] &= b[i]
	}
	return a
}

// VecOr returns a | b.
func VecOr[V Vec](a, b V) V {
	for i := 0; i < len(a); i++ {
		a[i] |= b[i]
	}
	return a
}

// VecAndNot returns a &^ b.
func VecAndNot[V Vec](a, b V) V {
	for i := 0; i < len(a); i++ {
		a[i] &^= b[i]
	}
	return a
}

// VecFrontier returns f & m &^ r — the one fused operation of the mask-BFS
// inner loop (frontier lanes that the edge transmits and that have not yet
// reached the target).
func VecFrontier[V Vec](f, m, r V) V {
	for i := 0; i < len(f); i++ {
		f[i] = f[i] & m[i] &^ r[i]
	}
	return f
}

// VecIsZero reports whether no lane bit is set.
func VecIsZero[V Vec](v V) bool {
	var acc uint64
	for i := 0; i < len(v); i++ {
		acc |= v[i]
	}
	return acc == 0
}

// VecOnesCount counts the set lane bits.
func VecOnesCount[V Vec](v V) int {
	n := 0
	for i := 0; i < len(v); i++ {
		n += bits.OnesCount64(v[i])
	}
	return n
}

// VecBit reports lane l of v.
func VecBit[V Vec](v V, l int) bool {
	return v[uint(l)>>6]>>(uint(l)&63)&1 == 1
}

// VecSetBit returns v with lane l set.
func VecSetBit[V Vec](v V, l int) V {
	v[uint(l)>>6] |= 1 << (uint(l) & 63)
	return v
}
