package ugraph

// Components labels each vertex with a connected-component identifier in
// [0, k) where k is the number of components, treating every edge as present
// regardless of probability. It returns the labels and k.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	k := 0
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = k
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, a := range g.Neighbors(u) {
				if comp[a.To] < 0 {
					comp[a.To] = k
					queue = append(queue, a.To)
				}
			}
		}
		k++
	}
	return comp, k
}

// IsConnected reports whether the graph is connected when every edge is
// treated as present. The empty graph and the single-vertex graph are
// connected.
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	_, k := g.Components()
	return k == 1
}

// IsConnected reports whether the world's materialized edges connect all
// vertices of the underlying graph.
func (w *World) IsConnected() bool {
	g := w.g
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.Neighbors(u) {
			if w.Present(a.ID) && !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == g.n
}

// Reachable reports whether t is reachable from s in this world.
func (w *World) Reachable(s, t int) bool {
	return w.Distance(s, t) >= 0
}

// Distance returns the unweighted shortest-path distance (hop count) from s
// to t in this world, or −1 if t is unreachable. Scratch buffers are
// allocated per call; use a BFS instance from internal/queries for repeated
// evaluation.
func (w *World) Distance(s, t int) int {
	if s == t {
		return 0
	}
	g := w.g
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.Neighbors(u) {
			if w.Present(a.ID) && dist[a.To] < 0 {
				dist[a.To] = dist[u] + 1
				if a.To == t {
					return dist[a.To]
				}
				queue = append(queue, a.To)
			}
		}
	}
	return -1
}
