package ugraph

import "math/rand"

// World is one possible deterministic materialization of an uncertain graph:
// Present[id] reports whether edge id exists in this world. A World is only
// meaningful together with the Graph it was sampled from.
type World struct {
	g       *Graph
	Present []bool
}

// Graph returns the uncertain graph this world was drawn from.
func (w *World) Graph() *Graph { return w.g }

// NumEdges counts the edges present in the world.
func (w *World) NumEdges() int {
	n := 0
	for _, p := range w.Present {
		if p {
			n++
		}
	}
	return n
}

// NewWorld returns an empty (all edges absent) world for g.
func NewWorld(g *Graph) *World {
	return &World{g: g, Present: make([]bool, g.NumEdges())}
}

// SampleWorld draws a possible world: each edge is included independently
// with its probability. The cost is O(|E|).
func (g *Graph) SampleWorld(rng *rand.Rand) *World {
	w := NewWorld(g)
	g.SampleWorldInto(rng, w)
	return w
}

// SampleWorldInto redraws w in place, avoiding allocation across samples.
// w must have been created for g.
func (g *Graph) SampleWorldInto(rng *rand.Rand, w *World) {
	for id, e := range g.edges {
		w.Present[id] = rng.Float64() < e.P
	}
}

// WorldFromMask builds a world from an explicit edge-presence mask. The mask
// is copied.
func WorldFromMask(g *Graph, mask []bool) *World {
	if len(mask) != g.NumEdges() {
		panic("ugraph: world mask length mismatch")
	}
	w := NewWorld(g)
	copy(w.Present, mask)
	return w
}

// Prob returns the probability of this exact world under the graph's
// independent-edge model: Π_present p_e × Π_absent (1−p_e).
func (w *World) Prob() float64 {
	pr := 1.0
	for id, e := range w.g.edges {
		if w.Present[id] {
			pr *= e.P
		} else {
			pr *= 1 - e.P
		}
	}
	return pr
}

// Neighbors iterates over the neighbors of u present in this world,
// invoking fn for each. Iteration stops early if fn returns false.
func (w *World) Neighbors(u int, fn func(v int) bool) {
	for _, a := range w.g.adj[u] {
		if w.Present[a.ID] {
			if !fn(a.To) {
				return
			}
		}
	}
}

// HasEdge reports whether edge (u, v) exists in this world.
func (w *World) HasEdge(u, v int) bool {
	id, ok := w.g.EdgeID(u, v)
	return ok && w.Present[id]
}

// EnumerateWorlds invokes fn for every possible world of g together with its
// probability. It is exponential in |E| and intended for exact evaluation on
// tiny graphs; it panics if g has more than MaxEnumerableEdges edges.
// Enumeration reuses a single World whose mask is rewritten between calls;
// fn must not retain it.
func EnumerateWorlds(g *Graph, fn func(w *World, prob float64)) {
	m := g.NumEdges()
	if m > MaxEnumerableEdges {
		panic("ugraph: too many edges for exhaustive world enumeration")
	}
	w := NewWorld(g)
	for mask := 0; mask < 1<<uint(m); mask++ {
		pr := 1.0
		for id := 0; id < m; id++ {
			if mask&(1<<uint(id)) != 0 {
				w.Present[id] = true
				pr *= g.edges[id].P
			} else {
				w.Present[id] = false
				pr *= 1 - g.edges[id].P
			}
		}
		fn(w, pr)
	}
}

// MaxEnumerableEdges bounds EnumerateWorlds (2^24 worlds ≈ 16.7M).
const MaxEnumerableEdges = 24
