package ugraph

import (
	"math/bits"
	"math/rand"
)

// World is one possible deterministic materialization of an uncertain graph,
// represented as a packed bitset with one bit per edge identifier. A World
// is only meaningful together with the Graph it was sampled from.
//
// The packed representation keeps a world of m edges in ⌈m/64⌉ machine
// words: sampling fills 64 edges per word write, presence tests are a single
// shift-and-mask, and counting present edges is a popcount sweep — the
// properties that make the Monte-Carlo engine's inner loop allocation-free
// and cache-friendly.
type World struct {
	g    *Graph
	bits []uint64
}

// Graph returns the uncertain graph this world was drawn from.
func (w *World) Graph() *Graph { return w.g }

// Present reports whether edge id exists in this world.
func (w *World) Present(id int) bool {
	return w.bits[uint(id)>>6]&(1<<(uint(id)&63)) != 0
}

// Set overwrites the presence of edge id.
func (w *World) Set(id int, present bool) {
	if present {
		w.bits[uint(id)>>6] |= 1 << (uint(id) & 63)
	} else {
		w.bits[uint(id)>>6] &^= 1 << (uint(id) & 63)
	}
}

// Words exposes the packed presence bitset: bit b of word i is edge 64·i+b.
// The slice is owned by the world; callers must treat it as read-only. It
// exists so query kernels can scan present edges word-at-a-time.
func (w *World) Words() []uint64 { return w.bits }

// PopCount counts the edges present in the world.
func (w *World) PopCount() int {
	n := 0
	for _, word := range w.bits {
		n += bits.OnesCount64(word)
	}
	return n
}

// NumEdges counts the edges present in the world (alias for PopCount).
func (w *World) NumEdges() int { return w.PopCount() }

// ForEachPresent invokes fn for every present edge identifier in ascending
// order.
func (w *World) ForEachPresent(fn func(id int)) {
	for wi, word := range w.bits {
		for word != 0 {
			fn(wi<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// NewWorld returns an empty (all edges absent) world for g.
func NewWorld(g *Graph) *World {
	return &World{g: g, bits: make([]uint64, (g.NumEdges()+63)/64)}
}

// Sampler is a small allocation-free PRNG (SplitMix64) for the Monte-Carlo
// hot path: reseeding is a single word store, so the engine can derive one
// deterministic stream per sample index without allocating a rand.Rand.
// The zero value is a valid (seed 0) sampler. Not safe for concurrent use.
type Sampler struct{ state uint64 }

// NewSampler returns a sampler with the given seed. Equal seeds produce
// identical streams.
func NewSampler(seed int64) Sampler { return Sampler{state: uint64(seed)} }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Sampler) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns the next pseudo-random float in [0, 1).
func (s *Sampler) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1p-53
}

// sampleWorldBits redraws w from the sampler stream, building each presence
// word from 64 independent edge draws and writing it once. Bits beyond the
// edge count stay zero, so PopCount needs no masking. Returns the advanced
// sampler state.
func (g *Graph) sampleWorldBits(s Sampler, w *World) Sampler {
	edges := g.edges
	for wi := range w.bits {
		base := wi << 6
		limit := len(edges) - base
		if limit > 64 {
			limit = 64
		}
		var word uint64
		for b := 0; b < limit; b++ {
			if s.Float64() < edges[base+b].P {
				word |= 1 << uint(b)
			}
		}
		w.bits[wi] = word
	}
	return s
}

// SampleWorld draws a possible world: each edge is included independently
// with its probability. The cost is O(|E|).
func (g *Graph) SampleWorld(rng *rand.Rand) *World {
	w := NewWorld(g)
	g.SampleWorldInto(rng, w)
	return w
}

// SampleWorldInto redraws w in place from a rand.Rand, avoiding allocation
// across samples. w must have been created for g.
func (g *Graph) SampleWorldInto(rng *rand.Rand, w *World) {
	edges := g.edges
	for wi := range w.bits {
		base := wi << 6
		limit := len(edges) - base
		if limit > 64 {
			limit = 64
		}
		var word uint64
		for b := 0; b < limit; b++ {
			if rng.Float64() < edges[base+b].P {
				word |= 1 << uint(b)
			}
		}
		w.bits[wi] = word
	}
}

// SampleWorldWith redraws w in place from an allocation-free Sampler stream,
// advancing it so consecutive calls draw independent worlds.
func (g *Graph) SampleWorldWith(s *Sampler, w *World) {
	*s = g.sampleWorldBits(*s, w)
}

// SampleWorldSeeded redraws w from a fresh deterministic stream for the
// given seed, with zero allocations. It is the Monte-Carlo engine's
// per-sample primitive: the world depends only on (g, seed).
func (g *Graph) SampleWorldSeeded(seed int64, w *World) {
	g.sampleWorldBits(NewSampler(seed), w)
}

// WorldFromMask builds a world from an explicit edge-presence mask. The mask
// is copied.
func WorldFromMask(g *Graph, mask []bool) *World {
	if len(mask) != g.NumEdges() {
		panic("ugraph: world mask length mismatch")
	}
	w := NewWorld(g)
	for id, present := range mask {
		w.Set(id, present)
	}
	return w
}

// Prob returns the probability of this exact world under the graph's
// independent-edge model: Π_present p_e × Π_absent (1−p_e).
func (w *World) Prob() float64 {
	pr := 1.0
	for id, e := range w.g.edges {
		if w.Present(id) {
			pr *= e.P
		} else {
			pr *= 1 - e.P
		}
	}
	return pr
}

// Neighbors iterates over the neighbors of u present in this world,
// invoking fn for each. Iteration stops early if fn returns false.
func (w *World) Neighbors(u int, fn func(v int) bool) {
	for _, a := range w.g.Neighbors(u) {
		if w.Present(a.ID) {
			if !fn(a.To) {
				return
			}
		}
	}
}

// HasEdge reports whether edge (u, v) exists in this world.
func (w *World) HasEdge(u, v int) bool {
	id, ok := w.g.EdgeID(u, v)
	return ok && w.Present(id)
}

// EnumerateWorlds invokes fn for every possible world of g together with its
// probability. It is exponential in |E| and intended for exact evaluation on
// tiny graphs; it panics if g has more than MaxEnumerableEdges edges.
// Enumeration reuses a single World whose bitset is rewritten between calls;
// fn must not retain it.
func EnumerateWorlds(g *Graph, fn func(w *World, prob float64)) {
	m := g.NumEdges()
	if m > MaxEnumerableEdges {
		panic("ugraph: too many edges for exhaustive world enumeration")
	}
	w := NewWorld(g)
	for mask := 0; mask < 1<<uint(m); mask++ {
		// m ≤ 64, so the enumeration mask is exactly the world's one word.
		if len(w.bits) > 0 {
			w.bits[0] = uint64(mask)
		}
		pr := 1.0
		for id := 0; id < m; id++ {
			if mask&(1<<uint(id)) != 0 {
				pr *= g.edges[id].P
			} else {
				pr *= 1 - g.edges[id].P
			}
		}
		fn(w, pr)
	}
}

// MaxEnumerableEdges bounds EnumerateWorlds (2^24 worlds ≈ 16.7M).
const MaxEnumerableEdges = 24
