package ugraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the text-format parser with arbitrary input: it must
// never panic, and any graph it accepts must round-trip through Write/Read
// to an equal graph — modulo p = 0 edges, which Write drops by contract.
func FuzzRead(f *testing.F) {
	f.Add("3 2\n0 1 0.5\n1 2 0.25\n")
	f.Add("# comment\n\n2 1\n0 1 1\n")
	f.Add("3 1\n0 1 0\n") // zero-probability edge (legacy sparsifier output)
	f.Add("0 0\n")
	f.Add("2 1\n0 1 1e-3\n")
	f.Add("1 0")
	f.Add("x y\n")
	f.Add("3 2\n0 1 0.5\n0 1 0.5\n") // duplicate
	f.Add("99999 1\n0 1 0.5\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write of accepted graph failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip Read failed: %v\noriginal input: %q", err, input)
		}
		var nonzero []int
		for id := 0; id < g.NumEdges(); id++ {
			if g.Prob(id) > 0 {
				nonzero = append(nonzero, id)
			}
		}
		want, err := g.EdgeSubgraph(nonzero)
		if err != nil {
			t.Fatalf("EdgeSubgraph of nonzero edges failed: %v", err)
		}
		if !want.Equal(back) {
			t.Fatalf("round trip not equal after dropping p=0 edges\ninput: %q", input)
		}
	})
}
