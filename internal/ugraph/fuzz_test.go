package ugraph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzRead exercises the text-format parser with arbitrary bytes: it must
// either reject the input with an error or return a valid graph — never
// panic, and never commit unbounded memory off a hostile header (the
// maxHeaderCount guard). Any accepted graph must round-trip through
// Write/Read to an equal graph — modulo p = 0 edges, which Write drops by
// contract.
func FuzzRead(f *testing.F) {
	f.Add([]byte("3 2\n0 1 0.5\n1 2 0.25\n"))
	f.Add([]byte("# comment\n\n2 1\n0 1 1\n"))
	f.Add([]byte("3 1\n0 1 0\n")) // zero-probability edge (legacy sparsifier output)
	f.Add([]byte("0 0\n"))
	f.Add([]byte("2 1\n0 1 1e-3\n"))
	f.Add([]byte("1 0"))
	f.Add([]byte("x y\n"))
	f.Add([]byte("3 2\n0 1 0.5\n0 1 0.5\n")) // duplicate
	f.Add([]byte("99999 1\n0 1 0.5\n"))
	f.Add([]byte("999999999999 0\n")) // hostile header: must error, not OOM
	f.Add([]byte("3 999999999\n0 1 0.5\n"))
	f.Add([]byte("2 1\n0 1 NaN\n"))
	f.Add([]byte("2 1\n0 1 +Inf\n"))
	// Seed the corpus with the committed example graphs, so mutations start
	// from realistic well-formed inputs.
	corpus, err := filepath.Glob(filepath.Join("..", "..", "examples", "graphs", "*.ugs"))
	if err != nil || len(corpus) == 0 {
		f.Fatalf("example graph corpus missing: %v (files %d)", err, len(corpus))
	}
	for _, path := range corpus {
		blob, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}

	f.Fuzz(func(t *testing.T, input []byte) {
		g, err := Read(bytes.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write of accepted graph failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip Read failed: %v\noriginal input: %q", err, input)
		}
		var nonzero []int
		for id := 0; id < g.NumEdges(); id++ {
			if g.Prob(id) > 0 {
				nonzero = append(nonzero, id)
			}
		}
		want, err := g.EdgeSubgraph(nonzero)
		if err != nil {
			t.Fatalf("EdgeSubgraph of nonzero edges failed: %v", err)
		}
		if !want.Equal(back) {
			t.Fatalf("round trip not equal after dropping p=0 edges\ninput: %q", input)
		}
	})
}

// TestReadRejectsHostileHeaders pins the maxHeaderCount guard: headers
// declaring absurd vertex or edge counts must error before any allocation
// proportional to the declared sizes.
func TestReadRejectsHostileHeaders(t *testing.T) {
	for _, input := range []string{
		"999999999999 0\n",
		"2000000000 1\n0 1 0.5\n",
		"3 999999999\n0 1 0.5\n",
	} {
		if _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("hostile header accepted: %q", input)
		}
	}
	// The committed example corpus stays well inside the limit.
	if _, err := Read(strings.NewReader("1000000 0\n")); err != nil {
		t.Errorf("legitimate large-but-bounded header rejected: %v", err)
	}
}
