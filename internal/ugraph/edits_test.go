package ugraph

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
)

func editTestGraph(t *testing.T) *Graph {
	t.Helper()
	return MustNew(6, []Edge{
		{U: 0, V: 1, P: 0.9},
		{U: 1, V: 2, P: 0.5},
		{U: 2, V: 3, P: 0.25},
		{U: 3, V: 4, P: 0.8},
		{U: 0, V: 4, P: 0.4},
	})
}

func TestApplyEditsReweightOnly(t *testing.T) {
	g := editTestGraph(t)
	res, err := ApplyEdits(g, []EdgeEdit{
		{Op: EditReweight, U: 1, V: 0, P: 0.1}, // reversed endpoints must resolve
		{Op: EditReweight, U: 2, V: 3, P: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Structural || res.OldToNew != nil || len(res.InsertedIDs) != 0 {
		t.Fatalf("reweight-only batch reported structural=%v oldToNew=%v inserted=%v",
			res.Structural, res.OldToNew, res.InsertedIDs)
	}
	if g.Prob(0) != 0.9 || g.Prob(2) != 0.25 {
		t.Fatalf("input graph was modified: %v", g.Edges())
	}
	ng := res.Graph
	if ng.Prob(0) != 0.1 || ng.Prob(2) != 1 || ng.Prob(1) != 0.5 {
		t.Fatalf("unexpected result probabilities: %v", ng.Edges())
	}
	// Identifiers are stable and the CSR adjacency is shared with the input.
	if &ng.arcs[0] != &g.arcs[0] {
		t.Error("reweight-only result should share the input's arc array")
	}
	if id, ok := ng.EdgeID(0, 1); !ok || id != 0 {
		t.Fatalf("EdgeID(0,1) = %d,%v; want 0,true", id, ok)
	}
}

func TestApplyEditsStructural(t *testing.T) {
	g := editTestGraph(t)
	res, err := ApplyEdits(g, []EdgeEdit{
		{Op: EditDelete, U: 1, V: 2},
		{Op: EditInsert, U: 5, V: 0, P: 0.7},
		{Op: EditReweight, U: 3, V: 4, P: 0.6},
		{Op: EditInsert, U: 2, V: 5, P: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Structural {
		t.Fatal("batch with insert/delete must be structural")
	}
	want := MustNew(6, []Edge{
		{U: 0, V: 1, P: 0.9},
		{U: 2, V: 3, P: 0.25},
		{U: 3, V: 4, P: 0.6},
		{U: 0, V: 4, P: 0.4},
		{U: 0, V: 5, P: 0.7},
		{U: 2, V: 5, P: 0.3},
	})
	if !res.Graph.Equal(want) {
		t.Fatalf("result %v\nwant %v", res.Graph.Edges(), want.Edges())
	}
	wantMap := []int32{0, -1, 1, 2, 3}
	for i, w := range wantMap {
		if res.OldToNew[i] != w {
			t.Fatalf("OldToNew = %v; want %v", res.OldToNew, wantMap)
		}
	}
	if len(res.InsertedIDs) != 2 || res.InsertedIDs[0] != 4 || res.InsertedIDs[1] != 5 {
		t.Fatalf("InsertedIDs = %v; want [4 5]", res.InsertedIDs)
	}
	// The input graph is untouched.
	if g.NumEdges() != 5 || !g.HasEdge(1, 2) {
		t.Fatalf("input graph was modified: %v", g.Edges())
	}
	// The rebuilt adjacency must be coherent.
	if res.Graph.Degree(5) != 2 || res.Graph.Degree(1) != 1 {
		t.Fatalf("degrees after rebuild: deg(5)=%d deg(1)=%d", res.Graph.Degree(5), res.Graph.Degree(1))
	}
}

func TestApplyEditsValidation(t *testing.T) {
	g := editTestGraph(t)
	cases := []struct {
		name  string
		edits []EdgeEdit
	}{
		{"empty batch", nil},
		{"endpoint out of range", []EdgeEdit{{Op: EditInsert, U: 0, V: 6, P: 0.5}}},
		{"negative endpoint", []EdgeEdit{{Op: EditDelete, U: -1, V: 2}}},
		{"self-loop", []EdgeEdit{{Op: EditInsert, U: 3, V: 3, P: 0.5}}},
		{"duplicate pair", []EdgeEdit{
			{Op: EditReweight, U: 0, V: 1, P: 0.5},
			{Op: EditReweight, U: 1, V: 0, P: 0.6},
		}},
		{"insert existing", []EdgeEdit{{Op: EditInsert, U: 0, V: 1, P: 0.5}}},
		{"delete missing", []EdgeEdit{{Op: EditDelete, U: 0, V: 2}}},
		{"reweight missing", []EdgeEdit{{Op: EditReweight, U: 0, V: 2, P: 0.5}}},
		{"reweight to zero", []EdgeEdit{{Op: EditReweight, U: 0, V: 1, P: 0}}},
		{"probability above one", []EdgeEdit{{Op: EditInsert, U: 0, V: 2, P: 1.5}}},
		{"probability NaN", []EdgeEdit{{Op: EditReweight, U: 0, V: 1, P: nan()}}},
		{"unknown op", []EdgeEdit{{Op: EditOp(99), U: 0, V: 1, P: 0.5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := ApplyEdits(g, tc.edits)
			if err == nil {
				t.Fatalf("want error, got result with %d edges", res.Graph.NumEdges())
			}
			var ee *EditError
			if !errors.As(err, &ee) {
				t.Fatalf("error %v is not an *EditError", err)
			}
		})
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestApplyEditsMapped(t *testing.T) {
	g := editTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.ugsb")
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	mg, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApplyEdits(mg, []EdgeEdit{{Op: EditReweight, U: 0, V: 1, P: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	// The result must not alias the mapping: closing it must leave the
	// result fully usable.
	if err := mg.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Graph.Prob(0) != 0.2 || res.Graph.Degree(0) != 2 {
		t.Fatalf("post-close result corrupt: %v", res.Graph.Edges())
	}
	res.Graph.SetProb(0, 0.5) // must not panic: the copy is writable
}

// TestApplyEditsMatchesRebuild cross-checks random batches against a naive
// reconstruction through the Builder.
func TestApplyEditsMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 30
	for trial := 0; trial < 50; trial++ {
		// Random base graph.
		b := NewBuilder(n)
		type rec struct {
			u, v int
			p    float64
		}
		var recs []rec
		have := make(map[uint64]int)
		for len(recs) < 60 {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if _, ok := have[pairKey(u, v)]; ok {
				continue
			}
			p := 0.05 + 0.95*rng.Float64()
			have[pairKey(u, v)] = len(recs)
			recs = append(recs, rec{u, v, p})
			if err := b.AddEdge(u, v, p); err != nil {
				t.Fatal(err)
			}
		}
		g := b.Graph()

		// Random valid batch.
		var edits []EdgeEdit
		touched := make(map[uint64]bool)
		for len(edits) < 1+rng.Intn(16) {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || touched[pairKey(u, v)] {
				continue
			}
			touched[pairKey(u, v)] = true
			_, exists := have[pairKey(u, v)]
			p := 0.05 + 0.95*rng.Float64()
			switch {
			case !exists:
				edits = append(edits, EdgeEdit{Op: EditInsert, U: u, V: v, P: p})
			case rng.Intn(2) == 0:
				edits = append(edits, EdgeEdit{Op: EditDelete, U: u, V: v})
			default:
				edits = append(edits, EdgeEdit{Op: EditReweight, U: u, V: v, P: p})
			}
		}
		res, err := ApplyEdits(g, edits)
		if err != nil {
			t.Fatal(err)
		}

		// Naive reconstruction: survivors in order, then inserts.
		del := make(map[uint64]bool)
		rew := make(map[uint64]float64)
		var ins []rec
		for _, ed := range edits {
			switch ed.Op {
			case EditDelete:
				del[pairKey(ed.U, ed.V)] = true
			case EditReweight:
				rew[pairKey(ed.U, ed.V)] = ed.P
			case EditInsert:
				ins = append(ins, rec{ed.U, ed.V, ed.P})
			}
		}
		nb := NewBuilder(n)
		for _, r := range recs {
			k := pairKey(r.u, r.v)
			if del[k] {
				continue
			}
			p := r.p
			if np, ok := rew[k]; ok {
				p = np
			}
			if err := nb.AddEdge(r.u, r.v, p); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range ins {
			if err := nb.AddEdge(r.u, r.v, r.p); err != nil {
				t.Fatal(err)
			}
		}
		if want := nb.Graph(); !res.Graph.Equal(want) {
			t.Fatalf("trial %d: ApplyEdits disagrees with rebuild\ngot  %v\nwant %v",
				trial, res.Graph.Edges(), want.Edges())
		}
		// OldToNew consistency: every surviving id maps onto the same pair.
		for old, nw := range res.OldToNew {
			if nw < 0 {
				continue
			}
			oe, ne := g.Edge(old), res.Graph.Edge(int(nw))
			if oe.U != ne.U || oe.V != ne.V {
				t.Fatalf("OldToNew[%d]=%d maps (%d,%d) onto (%d,%d)", old, nw, oe.U, oe.V, ne.U, ne.V)
			}
		}
	}
}

func TestEditLogReplay(t *testing.T) {
	g := editTestGraph(t)
	var log EditLog
	b1 := []EdgeEdit{{Op: EditReweight, U: 0, V: 1, P: 0.33}}
	b2 := []EdgeEdit{{Op: EditDelete, U: 2, V: 3}, {Op: EditInsert, U: 1, V: 5, P: 0.9}}
	log.Append(b1)
	log.Append(b2)
	if log.Batches() != 2 || log.Edits() != 3 {
		t.Fatalf("log = %d batches / %d edits; want 2/3", log.Batches(), log.Edits())
	}
	replayed, err := log.Replay(g)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ApplyEdits(g, b1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ApplyEdits(r1.Graph, b2)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Equal(r2.Graph) {
		t.Fatalf("replay %v\nwant %v", replayed.Edges(), r2.Graph.Edges())
	}
	log.Reset()
	if log.Batches() != 0 || log.Edits() != 0 {
		t.Fatal("Reset did not empty the log")
	}
}
