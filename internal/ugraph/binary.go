package ugraph

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"unsafe"

	"ugs/internal/ugsb"
)

// This file bridges Graph to the .ugsb binary format (internal/ugsb):
// WriteBinary serializes a graph's exact CSR state, and OpenMapped turns
// a .ugsb file back into a read-only Graph whose edge, arc and offset
// slices alias the file mapping directly — load is a map plus header
// validation, with no parsing and O(1) heap.
//
// Zero-copy aliasing requires that the in-memory record layouts match the
// on-disk spec: little-endian, 8-byte ints, Edge = {U,V int64, P float64}
// (24 bytes), Arc = {To,ID int64} (16 bytes). nativeRecordLayout verifies
// this once at startup by encoding sentinel records both ways; platforms
// where it fails (big-endian, 32-bit int) decode the same bytes into heap
// slices instead — slower, but byte-for-byte compatible.

// nativeRecordLayout reports whether Edge, Arc and int32 have exactly the
// on-disk record layout, making unsafe slice aliasing valid.
var nativeRecordLayout = func() bool {
	if unsafe.Sizeof(Edge{}) != ugsb.EdgeRecordSize || unsafe.Sizeof(Arc{}) != ugsb.ArcRecordSize {
		return false
	}
	var eb [ugsb.EdgeRecordSize]byte
	*(*Edge)(unsafe.Pointer(&eb[0])) = Edge{U: 0x0102030405060708, V: 0x1112131415161718, P: 0.73}
	var want [ugsb.EdgeRecordSize]byte
	ugsb.PutEdge(want[:], 0x0102030405060708, 0x1112131415161718, 0.73)
	if eb != want {
		return false
	}
	var ab [ugsb.ArcRecordSize]byte
	*(*Arc)(unsafe.Pointer(&ab[0])) = Arc{To: 0x2122232425262728, ID: 0x3132333435363738}
	var wantA [ugsb.ArcRecordSize]byte
	ugsb.PutArc(wantA[:], 0x2122232425262728, 0x3132333435363738)
	return ab == wantA
}()

// aliasSlice reinterprets b as a []T of length n, when alignment allows.
func aliasSlice[T any](b []byte, n int) ([]T, bool) {
	if n == 0 {
		return nil, true
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%unsafe.Alignof(*new(T)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*T)(p), n), true
}

// OpenMapped opens a .ugsb file as a read-only graph backed by a memory
// mapping: the CSR accessors (Neighbors, Degree, ArcOffsets, Arcs, Edges)
// are views over mapped file pages, so sparsifiers and the query engine
// run directly out of the page cache and cold pages are demand-faulted.
// The file is fully validated (checksums, offset monotonicity, record
// bounds) before use; see OpenMappedTrusted to skip the O(|E|) scan.
//
// Close the returned graph to release the mapping. SetProb panics on it;
// Clone materializes a writable heap copy.
func OpenMapped(path string) (*Graph, error) {
	f, err := ugsb.Open(path)
	if err != nil {
		return nil, err
	}
	return fromMapped(f)
}

// OpenMappedTrusted is OpenMapped with header-only validation: O(1)
// regardless of graph size, for files written by this process or another
// trusted producer (the store's converted sidecars, the gen tool).
func OpenMappedTrusted(path string) (*Graph, error) {
	f, err := ugsb.OpenTrusted(path)
	if err != nil {
		return nil, err
	}
	return fromMapped(f)
}

func fromMapped(f *ugsb.File) (*Graph, error) {
	n, m := f.NumVertices(), f.NumEdges()
	g := &Graph{n: n, readonly: true, backing: f}
	if nativeRecordLayout {
		edges, ok1 := aliasSlice[Edge](f.EdgeBytes(), m)
		arcOff, ok2 := aliasSlice[int32](f.ArcOffBytes(), n+1)
		arcs, ok3 := aliasSlice[Arc](f.ArcBytes(), 2*m)
		if ok1 && ok2 && ok3 {
			g.edges, g.arcOff, g.arcs = edges, arcOff, arcs
			return g, nil
		}
	}
	// Portable fallback: decode the sections into heap slices.
	g.edges = make([]Edge, m)
	eb := f.EdgeBytes()
	for i := range g.edges {
		u, v, p := ugsb.GetEdge(eb[i*ugsb.EdgeRecordSize:])
		g.edges[i] = Edge{U: int(u), V: int(v), P: p}
	}
	g.arcOff = make([]int32, n+1)
	ob := f.ArcOffBytes()
	for i := range g.arcOff {
		g.arcOff[i] = int32(binary.LittleEndian.Uint32(ob[i*ugsb.ArcOffSize:]))
	}
	g.arcs = make([]Arc, 2*m)
	ab := f.ArcBytes()
	for i := range g.arcs {
		to, id := ugsb.GetArc(ab[i*ugsb.ArcRecordSize:])
		g.arcs[i] = Arc{To: int(to), ID: int(id)}
	}
	return g, nil
}

// WriteBinary serializes g in the .ugsb binary format. Unlike the text
// Write, the encoding is lossless: p = 0 edges and exact float64 bits are
// preserved, so a written graph reopens Equal to the original.
func WriteBinary(w io.Writer, g *Graph) error {
	l, err := ugsb.LayoutFor(uint64(g.n), uint64(len(g.edges)))
	if err != nil {
		return err
	}
	// Pass 1: data checksum over the section bytes (streamed, no buffer
	// of the whole file); pass 2: header then sections.
	crc := crc32.NewIEEE()
	if err := writeSections(crc, g); err != nil {
		return err
	}
	var hdr [ugsb.HeaderSize]byte
	ugsb.EncodeHeader(hdr[:], ugsb.Header{
		Version:   ugsb.Version,
		N:         uint64(g.n),
		M:         uint64(len(g.edges)),
		EdgesOff:  l.EdgesOff,
		ArcOffOff: l.ArcOffOff,
		ArcsOff:   l.ArcsOff,
		FileSize:  l.FileSize,
		CRCData:   crc.Sum32(),
	})
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeSections(bw, g); err != nil {
		return err
	}
	return bw.Flush()
}

// writeSections streams the edges, arcOff (with padding) and arcs
// sections to w. On native-layout platforms the slices are written as raw
// bytes; otherwise records are encoded one at a time.
func writeSections(w io.Writer, g *Graph) error {
	if nativeRecordLayout {
		if _, err := w.Write(rawBytes(g.edges)); err != nil {
			return err
		}
		if _, err := w.Write(rawBytes(g.arcOff)); err != nil {
			return err
		}
		if err := writePad(w, len(g.arcOff)*ugsb.ArcOffSize); err != nil {
			return err
		}
		_, err := w.Write(rawBytes(g.arcs))
		return err
	}
	var rec [ugsb.EdgeRecordSize]byte
	for _, e := range g.edges {
		ugsb.PutEdge(rec[:], int64(e.U), int64(e.V), e.P)
		if _, err := w.Write(rec[:ugsb.EdgeRecordSize]); err != nil {
			return err
		}
	}
	for _, o := range g.arcOff {
		binary.LittleEndian.PutUint32(rec[:4], uint32(o))
		if _, err := w.Write(rec[:4]); err != nil {
			return err
		}
	}
	if err := writePad(w, len(g.arcOff)*ugsb.ArcOffSize); err != nil {
		return err
	}
	for _, a := range g.arcs {
		ugsb.PutArc(rec[:], int64(a.To), int64(a.ID))
		if _, err := w.Write(rec[:ugsb.ArcRecordSize]); err != nil {
			return err
		}
	}
	return nil
}

// writePad zero-pads the arcOff section (sectionLen bytes long) to the
// 8-byte boundary the arcs section starts on.
func writePad(w io.Writer, sectionLen int) error {
	if sectionLen%8 == 0 {
		return nil
	}
	pad := make([]byte, 8-sectionLen%8)
	_, err := w.Write(pad)
	return err
}

// rawBytes views a slice of fixed-size records as its underlying bytes.
func rawBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	size := int(unsafe.Sizeof(s[0]))
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*size)
}

// WriteBinaryFile serializes g to the named .ugsb file.
func WriteBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}
