package ugraph

import "fmt"

// EditOp enumerates the streaming edge-update operations.
type EditOp int

const (
	// EditInsert adds a new edge with probability P.
	EditInsert EditOp = iota
	// EditDelete removes an existing edge (P is ignored).
	EditDelete
	// EditReweight replaces the probability of an existing edge with P.
	EditReweight
)

// String returns the canonical lowercase operation name, which round-trips
// through ParseEditOp.
func (op EditOp) String() string {
	switch op {
	case EditInsert:
		return "insert"
	case EditDelete:
		return "delete"
	case EditReweight:
		return "reweight"
	}
	return fmt.Sprintf("editop(%d)", int(op))
}

// ParseEditOp is the inverse of EditOp.String.
func ParseEditOp(s string) (EditOp, error) {
	switch s {
	case "insert":
		return EditInsert, nil
	case "delete":
		return EditDelete, nil
	case "reweight":
		return EditReweight, nil
	}
	return 0, fmt.Errorf("ugraph: unknown edit op %q (want insert, delete or reweight)", s)
}

// EdgeEdit is one streaming update to an uncertain graph: insert, delete or
// reweight the undirected edge (U, V). Endpoint order does not matter.
type EdgeEdit struct {
	Op   EditOp
	U, V int
	P    float64 // new probability for insert/reweight; ignored for delete
}

// EditError reports why an edit batch was rejected. Batches are atomic: a
// single invalid edit rejects the whole batch and the graph is untouched.
type EditError struct {
	Index  int      // position of the offending edit in the batch; -1 for the batch itself
	Edit   EdgeEdit // the offending edit (zero value for batch-level errors)
	Reason string
}

func (e *EditError) Error() string {
	if e.Index < 0 {
		return "ugraph: invalid edit batch: " + e.Reason
	}
	return fmt.Sprintf("ugraph: edit %d (%s %d-%d): %s", e.Index, e.Edit.Op, e.Edit.U, e.Edit.V, e.Reason)
}

// EditResult is the outcome of ApplyEdits: the post-edit graph plus the edge
// identifier mapping a consumer of the old graph's ids needs to carry its
// per-edge state across the edit.
type EditResult struct {
	// Graph is the post-edit graph. The input graph is never modified.
	Graph *Graph
	// OldToNew maps every old edge id to its id in Graph, with -1 for
	// deleted edges. A nil map means the identity mapping (reweight-only
	// batch: edge ids are stable).
	OldToNew []int32
	// InsertedIDs holds the new-graph ids of inserted edges, in batch order.
	InsertedIDs []int
	// Structural reports whether the edge set changed (any insert or
	// delete). Reweight-only batches keep the CSR structure — the result
	// graph shares the adjacency arrays of a heap-resident input.
	Structural bool
}

// ApplyEdits applies a batch of edge edits to g and returns the resulting
// graph; g itself is never modified (mapped views included). The batch is
// validated as a whole against g before anything is applied, and is atomic:
// any invalid edit returns an *EditError and no result.
//
// Validation rules: endpoints must be existing vertices and distinct;
// insert/reweight probabilities must lie in (0, 1] (reweighting to zero is
// rejected — delete the edge instead); an inserted edge must not exist, a
// deleted or reweighted edge must; and at most one edit per undirected edge
// pair is allowed in a batch, so the outcome never depends on intra-batch
// ordering.
//
// A reweight-only batch preserves edge identifiers and shares the CSR
// adjacency of a heap-resident input (mapped inputs are copied, so the result
// never aliases a file mapping another goroutine could close). A structural
// batch compacts identifiers: surviving edges keep their relative order and
// inserted edges are appended in batch order, with the old-to-new mapping
// reported in the result.
func ApplyEdits(g *Graph, edits []EdgeEdit) (*EditResult, error) {
	if len(edits) == 0 {
		return nil, &EditError{Index: -1, Reason: "empty edit batch"}
	}
	n := g.NumVertices()
	seen := make(map[uint64]struct{}, len(edits))
	structural := false
	for i, ed := range edits {
		fail := func(reason string) error {
			return &EditError{Index: i, Edit: ed, Reason: reason}
		}
		if ed.U < 0 || ed.U >= n || ed.V < 0 || ed.V >= n {
			return nil, fail(fmt.Sprintf("endpoint out of range [0,%d)", n))
		}
		if ed.U == ed.V {
			return nil, fail("self-loop")
		}
		k := pairKey(ed.U, ed.V)
		if _, dup := seen[k]; dup {
			return nil, fail("duplicate edge pair in batch")
		}
		seen[k] = struct{}{}
		_, exists := g.EdgeID(ed.U, ed.V)
		switch ed.Op {
		case EditInsert:
			if exists {
				return nil, fail("edge already exists (use reweight)")
			}
			if !(ed.P > 0 && ed.P <= 1) {
				return nil, fail(fmt.Sprintf("probability %v outside (0,1]", ed.P))
			}
			structural = true
		case EditDelete:
			if !exists {
				return nil, fail("edge does not exist")
			}
			structural = true
		case EditReweight:
			if !exists {
				return nil, fail("edge does not exist (use insert)")
			}
			if !(ed.P > 0 && ed.P <= 1) {
				if ed.P == 0 {
					return nil, fail("probability 0 (use delete)")
				}
				return nil, fail(fmt.Sprintf("probability %v outside (0,1]", ed.P))
			}
		default:
			return nil, fail(fmt.Sprintf("unknown op %d", int(ed.Op)))
		}
	}
	if structural {
		return applyStructural(g, edits)
	}
	return applyReweights(g, edits)
}

// applyReweights handles a reweight-only batch: identifiers are stable, so
// only the edge records change. Heap inputs share their CSR adjacency and
// pair index (both immutable after construction); mapped inputs are fully
// copied onto the heap.
func applyReweights(g *Graph, edits []EdgeEdit) (*EditResult, error) {
	edges := make([]Edge, len(g.edges))
	copy(edges, g.edges)
	for _, ed := range edits {
		id, _ := g.EdgeID(ed.U, ed.V)
		edges[id].P = ed.P
	}
	ng := &Graph{n: g.n, edges: edges}
	if g.Mapped() {
		ng.buildAdjacency()
	} else {
		// The validation pass above resolved EdgeIDs, so g.index is built
		// and stable; adjacency arrays are immutable for heap graphs.
		ng.arcOff, ng.arcs, ng.index = g.arcOff, g.arcs, g.index
	}
	return &EditResult{Graph: ng}, nil
}

// applyStructural handles a batch with inserts or deletes: the edge list is
// rebuilt with survivors first (relative order preserved, probabilities
// reweighted in place) and inserts appended in batch order.
func applyStructural(g *Graph, edits []EdgeEdit) (*EditResult, error) {
	m := len(g.edges)
	deleted := make(map[int]bool)
	reweight := make(map[int]float64)
	var inserts []EdgeEdit
	for _, ed := range edits {
		switch ed.Op {
		case EditInsert:
			inserts = append(inserts, ed)
		case EditDelete:
			id, _ := g.EdgeID(ed.U, ed.V)
			deleted[id] = true
		case EditReweight:
			id, _ := g.EdgeID(ed.U, ed.V)
			reweight[id] = ed.P
		}
	}
	oldToNew := make([]int32, m)
	edges := make([]Edge, 0, m-len(deleted)+len(inserts))
	for id, e := range g.edges {
		if deleted[id] {
			oldToNew[id] = -1
			continue
		}
		if p, ok := reweight[id]; ok {
			e.P = p
		}
		oldToNew[id] = int32(len(edges))
		edges = append(edges, e)
	}
	insertedIDs := make([]int, 0, len(inserts))
	for _, ed := range inserts {
		u, v := ed.U, ed.V
		if u > v {
			u, v = v, u
		}
		insertedIDs = append(insertedIDs, len(edges))
		edges = append(edges, Edge{U: u, V: v, P: ed.P})
	}
	ng := &Graph{n: g.n, edges: edges}
	ng.buildAdjacency() // pair index rebuilt lazily on demand
	return &EditResult{Graph: ng, OldToNew: oldToNew, InsertedIDs: insertedIDs, Structural: true}, nil
}

// EditLog accumulates applied edit batches over a base graph so a storage
// layer can reconstruct the current graph from the base plus the log (the
// patch log behind evict/reload), compacting — rewriting the base and
// resetting the log — on whatever schedule it chooses.
type EditLog struct {
	batches [][]EdgeEdit
	edits   int
}

// Append records one applied batch. The slice is copied, so callers may
// reuse their buffer.
func (l *EditLog) Append(batch []EdgeEdit) {
	l.batches = append(l.batches, append([]EdgeEdit(nil), batch...))
	l.edits += len(batch)
}

// Batches reports how many batches the log holds.
func (l *EditLog) Batches() int { return len(l.batches) }

// Edits reports the total edit count across all batches.
func (l *EditLog) Edits() int { return l.edits }

// Snapshot returns a copy of the batch list safe to replay outside whatever
// lock guards the log (the batches themselves are immutable once appended).
func (l *EditLog) Snapshot() [][]EdgeEdit {
	if len(l.batches) == 0 {
		return nil
	}
	return append([][]EdgeEdit(nil), l.batches...)
}

// Replay applies the logged batches to base in order and returns the result.
func (l *EditLog) Replay(base *Graph) (*Graph, error) {
	return ReplayEdits(base, l.batches)
}

// Reset empties the log (after compaction rewrote the base).
func (l *EditLog) Reset() { l.batches, l.edits = nil, 0 }

// ReplayEdits applies a sequence of edit batches to base in order.
func ReplayEdits(base *Graph, batches [][]EdgeEdit) (*Graph, error) {
	g := base
	for i, batch := range batches {
		res, err := ApplyEdits(g, batch)
		if err != nil {
			return nil, fmt.Errorf("ugraph: replaying edit batch %d/%d: %w", i+1, len(batches), err)
		}
		g = res.Graph
	}
	return g, nil
}
