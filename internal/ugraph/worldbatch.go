package ugraph

// BatchLanes is the number of world lanes one machine word holds — the
// granularity of fill blocks and the width of the original 64-lane engine.
const BatchLanes = 64

// MaxBatchLanes is the widest supported batch (Vec256).
const MaxBatchLanes = 256

// WorldBatch is the lane-transposed representation of up to VecLanes[V]
// possible worlds: masks[e] holds, in lane bit l, whether edge e is present
// in world lane l. Where World packs 64 *edges* of one world per word, a
// WorldBatch packs the *worlds* of one edge per vector — the layout that
// lets a single graph traversal propagate per-vertex lane masks and answer
// connectivity/reliability/distance queries for every lane at once. The
// width is the type parameter: WorldBatch[Vec64] is the one-word 64-lane
// engine, WorldBatch[Vec128] and WorldBatch[Vec256] carry 128 and 256
// worlds per traversal.
//
// Lane l of a batch filled by SampleBatchSeeded is bit-identical to the
// World produced by SampleWorldSeeded with the same seed, at every width,
// so batch and scalar Monte-Carlo paths agree exactly. A WorldBatch is only
// meaningful together with the Graph it was sampled from and is not safe
// for concurrent use.
type WorldBatch[V Vec] struct {
	g     *Graph
	masks []V    // per-edge lane masks, len == NumEdges
	lanes int    // active lanes, 1..VecLanes[V] (0 before the first fill)
	seq   uint64 // fill sequence, bumped by every fill
}

// NewWorldBatch returns an empty batch for g with no active lanes.
func NewWorldBatch[V Vec](g *Graph) *WorldBatch[V] {
	return &WorldBatch[V]{g: g, masks: make([]V, g.NumEdges())}
}

// Graph returns the uncertain graph this batch was drawn from.
func (b *WorldBatch[V]) Graph() *Graph { return b.g }

// Lanes reports the number of active world lanes (the final batch of a
// Monte-Carlo run may be ragged, holding fewer than VecLanes[V]).
func (b *WorldBatch[V]) Lanes() int { return b.lanes }

// ActiveMask returns the vector with one bit set per active lane.
func (b *WorldBatch[V]) ActiveMask() V { return VecOnes[V](b.lanes) }

// EdgeMasks exposes the per-edge lane masks: lane bit l of EdgeMasks()[e]
// is the presence of edge e in lane l. The slice is owned by the batch;
// callers must treat it as read-only. Bits at or above Lanes() are zero.
func (b *WorldBatch[V]) EdgeMasks() []V { return b.masks }

// LaneMask returns the lane mask of edge id.
func (b *WorldBatch[V]) LaneMask(id int) V { return b.masks[id] }

// FillSeq returns the batch's fill sequence number, incremented by every
// fill (SampleBatchSeeded or LoadBlocks). Kernels that precompute
// batch-derived tables (for example per-arc mask gathers) key their caches
// on (batch, FillSeq) so a refilled batch is never served stale data.
func (b *WorldBatch[V]) FillSeq() uint64 { return b.seq }

// PopCount counts the present (edge, lane) pairs across the batch.
func (b *WorldBatch[V]) PopCount() int {
	n := 0
	for _, m := range b.masks {
		n += VecOnesCount(m)
	}
	return n
}

// ExtractLane writes world lane l into w, which must have been created for
// the batch's graph. It is the transpose of the fill path, used by tests and
// by callers that need one lane as a scalar World.
func (b *WorldBatch[V]) ExtractLane(l int, w *World) {
	if l < 0 || l >= b.lanes {
		panic("ugraph: world batch lane out of range")
	}
	word, shift := uint(l)>>6, uint(l)&63
	m := len(b.masks)
	for wi := range w.bits {
		base := wi << 6
		limit := m - base
		if limit > 64 {
			limit = 64
		}
		var out uint64
		for bit := 0; bit < limit; bit++ {
			out |= (b.masks[base+bit][word] >> shift & 1) << uint(bit)
		}
		w.bits[wi] = out
	}
}

// SampleBatchSeeded redraws the batch so that lane l is bit-identical to
// the world SampleWorldSeeded(seeds[l], w) produces: each lane draws its own
// deterministic SplitMix64 stream in ascending edge order. len(seeds) sets
// the active lane count and must be 1..VecLanes[V]. Zero allocations.
//
// The fill works tile-by-tile: for each group of 64 edges and each lane
// word, every lane of that word draws its 64-bit presence word (advancing
// all lane streams in lockstep through the edge list), and the resulting
// 64×64 bit matrix is transposed in place so the batch stores per-edge lane
// masks. Inactive lanes stay zero.
func SampleBatchSeeded[V Vec](g *Graph, seeds []int64, b *WorldBatch[V]) {
	lanes := len(seeds)
	if lanes == 0 || lanes > VecLanes[V]() {
		panic("ugraph: world batch needs 1..VecLanes lane seeds")
	}
	b.lanes = lanes
	b.seq++
	var vz V
	words := len(vz)
	var ss [MaxBatchLanes]Sampler
	for l, seed := range seeds {
		ss[l] = NewSampler(seed)
	}
	edges := g.edges
	m := len(edges)
	var tile [BatchLanes]uint64
	for base := 0; base < m; base += 64 {
		limit := m - base
		if limit > 64 {
			limit = 64
		}
		for k := 0; k < words; k++ {
			lo := k * BatchLanes
			if lo >= lanes {
				for bit := 0; bit < limit; bit++ {
					b.masks[base+bit][k] = 0
				}
				continue
			}
			hi := lanes - lo
			if hi > BatchLanes {
				hi = BatchLanes
			}
			for l := 0; l < hi; l++ {
				s := ss[lo+l]
				var word uint64
				for bit := 0; bit < limit; bit++ {
					if s.Float64() < edges[base+bit].P {
						word |= 1 << uint(bit)
					}
				}
				ss[lo+l] = s
				tile[l] = word
			}
			for l := hi; l < BatchLanes; l++ {
				tile[l] = 0
			}
			transpose64(&tile)
			for bit := 0; bit < limit; bit++ {
				b.masks[base+bit][k] = tile[bit]
			}
		}
	}
}

// SampleBatchSeeded is the 64-lane method form kept for the common width;
// wider batches use the package-level generic function.
func (g *Graph) SampleBatchSeeded(seeds []int64, b *WorldBatch[Vec64]) {
	SampleBatchSeeded(g, seeds, b)
}

// FillBlock samples one 64-lane mask block without a batch: bit l of dst[e]
// is the presence of edge e in the world SampleWorldSeeded(seeds[l]) draws.
// len(seeds) must be 1..64 and len(dst) == NumEdges; bits at or above
// len(seeds) are cleared. It is the width-agnostic unit of the fill cache —
// a V-wide batch is exactly len(V) consecutive blocks (see LoadBlocks).
func FillBlock(g *Graph, seeds []int64, dst []uint64) {
	lanes := len(seeds)
	if lanes == 0 || lanes > BatchLanes {
		panic("ugraph: fill block needs 1..64 lane seeds")
	}
	if len(dst) != g.NumEdges() {
		panic("ugraph: fill block length mismatch")
	}
	var ss [BatchLanes]Sampler
	for l, seed := range seeds {
		ss[l] = NewSampler(seed)
	}
	edges := g.edges
	m := len(edges)
	var tile [BatchLanes]uint64
	for base := 0; base < m; base += 64 {
		limit := m - base
		if limit > 64 {
			limit = 64
		}
		for l := 0; l < lanes; l++ {
			s := ss[l]
			var word uint64
			for bit := 0; bit < limit; bit++ {
				if s.Float64() < edges[base+bit].P {
					word |= 1 << uint(bit)
				}
			}
			ss[l] = s
			tile[l] = word
		}
		for l := lanes; l < BatchLanes; l++ {
			tile[l] = 0
		}
		transpose64(&tile)
		copy(dst[base:base+limit], tile[:limit])
	}
}

// LoadBlocks fills b from per-64-lane mask blocks: block k carries lanes
// [64k, 64k+64), so loading the blocks FillBlock produced for consecutive
// seed groups is bit-identical to one SampleBatchSeeded over the
// concatenated seeds. lanes sets the active count (1..VecLanes[V]); blocks
// must hold ceil(lanes/64) slices of length NumEdges whose bits at or above
// the block's active lane count are zero. Blocks are copied; the batch does
// not retain them.
func LoadBlocks[V Vec](b *WorldBatch[V], blocks [][]uint64, lanes int) {
	if lanes <= 0 || lanes > VecLanes[V]() {
		panic("ugraph: world batch lane count out of range")
	}
	words := (lanes + BatchLanes - 1) / BatchLanes
	if len(blocks) < words {
		panic("ugraph: not enough fill blocks for lane count")
	}
	m := len(b.masks)
	for k := 0; k < words; k++ {
		if len(blocks[k]) != m {
			panic("ugraph: fill block length mismatch")
		}
	}
	b.lanes = lanes
	b.seq++
	var vz V
	for e := 0; e < m; e++ {
		v := vz
		for k := 0; k < words; k++ {
			v[k] = blocks[k][e]
		}
		b.masks[e] = v
	}
}

// FillCache memoizes deterministic 64-lane fill blocks across Monte-Carlo
// runs: the Monte-Carlo engine, when given a cache, asks it for each full
// block of a run instead of re-sampling. Implementations must be safe for
// concurrent use and must return either a previously stored slice or the
// exact slice fill() produced; cached slices are shared and treated as
// immutable by all parties.
type FillCache interface {
	GetOrFill(key FillKey, fill func() []uint64) []uint64
}

// FillKey identifies one 64-lane fill block: the graph's cache identity
// (a content-versioned name — two graphs with different edge lists or
// probabilities must never share one), the run's base seed, and the block
// index: block k covers sample indices [64k, 64k+64) of the (Graph, Seed)
// sample stream.
type FillKey struct {
	Graph string
	Seed  int64
	Block int
}

// transpose64 transposes the 64×64 bit matrix in place under the LSB-first
// convention: bit c of a[r] moves to bit r of a[c]. Recursive block
// swapping (Hacker's Delight §7-3 adapted to LSB indexing): at each level
// the off-diagonal half-blocks are exchanged wholesale, then the recursion
// transposes within — 6 levels of word-parallel shuffles instead of 4096
// single-bit moves.
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
		j >>= 1
		m ^= m << uint(j)
	}
}
