package ugraph

import "math/bits"

// BatchLanes is the number of possible worlds a WorldBatch holds: one per
// bit of a machine word.
const BatchLanes = 64

// WorldBatch is the lane-transposed representation of up to 64 possible
// worlds: masks[e] holds, in bit l, whether edge e is present in world lane
// l. Where World packs 64 *edges* of one world per word, WorldBatch packs 64
// *worlds* of one edge per word — the layout that lets a single graph
// traversal propagate per-vertex lane masks and answer
// connectivity/reliability/distance queries for all lanes at once.
//
// Lane l of a batch filled by SampleBatchSeeded is bit-identical to the
// World produced by SampleWorldSeeded with the same seed, so batch and
// scalar Monte-Carlo paths agree exactly. A WorldBatch is only meaningful
// together with the Graph it was sampled from and is not safe for
// concurrent use.
type WorldBatch struct {
	g     *Graph
	masks []uint64 // per-edge lane masks, len == NumEdges
	lanes int      // active lanes, 1..64 (0 before the first fill)
	seq   uint64   // fill sequence, bumped by every SampleBatchSeeded
}

// NewWorldBatch returns an empty batch for g with no active lanes.
func NewWorldBatch(g *Graph) *WorldBatch {
	return &WorldBatch{g: g, masks: make([]uint64, g.NumEdges())}
}

// Graph returns the uncertain graph this batch was drawn from.
func (b *WorldBatch) Graph() *Graph { return b.g }

// Lanes reports the number of active world lanes (the final batch of a
// Monte-Carlo run may be ragged, holding fewer than 64).
func (b *WorldBatch) Lanes() int { return b.lanes }

// ActiveMask returns the mask with one bit set per active lane.
func (b *WorldBatch) ActiveMask() uint64 {
	if b.lanes >= BatchLanes {
		return ^uint64(0)
	}
	return 1<<uint(b.lanes) - 1
}

// EdgeMasks exposes the per-edge lane masks: bit l of EdgeMasks()[e] is the
// presence of edge e in lane l. The slice is owned by the batch; callers
// must treat it as read-only. Bits at or above Lanes() are zero.
func (b *WorldBatch) EdgeMasks() []uint64 { return b.masks }

// LaneMask returns the lane mask of edge id.
func (b *WorldBatch) LaneMask(id int) uint64 { return b.masks[id] }

// FillSeq returns the batch's fill sequence number, incremented by every
// SampleBatchSeeded call. Kernels that precompute batch-derived tables (for
// example per-arc mask gathers) key their caches on (batch, FillSeq) so a
// refilled batch is never served stale data.
func (b *WorldBatch) FillSeq() uint64 { return b.seq }

// PopCount counts the present (edge, lane) pairs across the batch.
func (b *WorldBatch) PopCount() int {
	n := 0
	for _, m := range b.masks {
		n += bits.OnesCount64(m)
	}
	return n
}

// ExtractLane writes world lane l into w, which must have been created for
// the batch's graph. It is the transpose of the fill path, used by tests and
// by callers that need one lane as a scalar World.
func (b *WorldBatch) ExtractLane(l int, w *World) {
	if l < 0 || l >= b.lanes {
		panic("ugraph: world batch lane out of range")
	}
	m := len(b.masks)
	for wi := range w.bits {
		base := wi << 6
		limit := m - base
		if limit > 64 {
			limit = 64
		}
		var word uint64
		for bit := 0; bit < limit; bit++ {
			word |= (b.masks[base+bit] >> uint(l) & 1) << uint(bit)
		}
		w.bits[wi] = word
	}
}

// SampleBatchSeeded redraws the batch so that lane l is bit-identical to
// the world SampleWorldSeeded(seeds[l], w) produces: each lane draws its own
// deterministic SplitMix64 stream in ascending edge order. len(seeds) sets
// the active lane count and must be 1..64. Zero allocations.
//
// The fill works tile-by-tile: for each group of 64 edges, every lane draws
// its 64-bit presence word (advancing all lane streams in lockstep through
// the edge list), and the resulting 64×64 bit matrix is transposed in place
// so the batch stores per-edge lane masks. Inactive lanes stay zero.
func (g *Graph) SampleBatchSeeded(seeds []int64, b *WorldBatch) {
	lanes := len(seeds)
	if lanes == 0 || lanes > BatchLanes {
		panic("ugraph: world batch needs 1..64 lane seeds")
	}
	b.lanes = lanes
	b.seq++
	var ss [BatchLanes]Sampler
	for l, seed := range seeds {
		ss[l] = NewSampler(seed)
	}
	edges := g.edges
	m := len(edges)
	var tile [BatchLanes]uint64
	for base := 0; base < m; base += 64 {
		limit := m - base
		if limit > 64 {
			limit = 64
		}
		for l := 0; l < lanes; l++ {
			s := ss[l]
			var word uint64
			for bit := 0; bit < limit; bit++ {
				if s.Float64() < edges[base+bit].P {
					word |= 1 << uint(bit)
				}
			}
			ss[l] = s
			tile[l] = word
		}
		for l := lanes; l < BatchLanes; l++ {
			tile[l] = 0
		}
		transpose64(&tile)
		copy(b.masks[base:base+limit], tile[:limit])
	}
}

// transpose64 transposes the 64×64 bit matrix in place under the LSB-first
// convention: bit c of a[r] moves to bit r of a[c]. Recursive block
// swapping (Hacker's Delight §7-3 adapted to LSB indexing): at each level
// the off-diagonal half-blocks are exchanged wholesale, then the recursion
// transposes within — 6 levels of word-parallel shuffles instead of 4096
// single-bit moves.
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
		j >>= 1
		m ^= m << uint(j)
	}
}
