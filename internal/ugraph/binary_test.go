package ugraph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ugs/internal/ugsb"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(7)
	edges := []struct {
		u, v int
		p    float64
	}{
		{0, 1, 0.5}, {1, 2, 0.25}, {2, 3, 1}, {3, 4, 0.125},
		{4, 5, 0.875}, {5, 6, 0.0625}, {0, 6, 0.99}, {2, 5, 0.01},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.u, e.v, e.p); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Graph()
	g.SetProb(3, 0) // binary format must preserve p = 0 edges losslessly
	return g
}

func writeTempBinary(t *testing.T, g *Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.ugsb")
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBinaryRoundTripMapped(t *testing.T) {
	g := testGraph(t)
	m, err := OpenMapped(writeTempBinary(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if !m.ReadOnly() || !m.Mapped() {
		t.Fatalf("mapped graph: ReadOnly=%v Mapped=%v, want true/true", m.ReadOnly(), m.Mapped())
	}
	if !g.Equal(m) {
		t.Fatalf("mapped graph not Equal to original:\n%v\n%v", g, m)
	}
	// CSR accessors must agree exactly.
	for u := 0; u < g.NumVertices(); u++ {
		if g.Degree(u) != m.Degree(u) {
			t.Fatalf("Degree(%d): %d != %d", u, g.Degree(u), m.Degree(u))
		}
		gn, mn := g.Neighbors(u), m.Neighbors(u)
		for i := range gn {
			if gn[i] != mn[i] {
				t.Fatalf("Neighbors(%d)[%d]: %v != %v", u, i, gn[i], mn[i])
			}
		}
	}
	for i, o := range g.ArcOffsets() {
		if m.ArcOffsets()[i] != o {
			t.Fatalf("ArcOffsets[%d]: %d != %d", i, m.ArcOffsets()[i], o)
		}
	}
	// Lazy pair index on the mapped view.
	for _, e := range g.Edges() {
		id, ok := m.EdgeID(e.U, e.V)
		want, _ := g.EdgeID(e.U, e.V)
		if !ok || id != want {
			t.Fatalf("EdgeID(%d,%d) = %d,%v want %d,true", e.U, e.V, id, ok, want)
		}
	}
	if m.HasEdge(0, 3) {
		t.Fatal("HasEdge(0,3) = true on mapped view, want false")
	}
}

func TestMappedGraphIsImmutable(t *testing.T) {
	g := testGraph(t)
	m, err := OpenMapped(writeTempBinary(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetProb on mapped graph did not panic")
			}
		}()
		m.SetProb(0, 0.1)
	}()

	c := m.Clone()
	if c.ReadOnly() || c.Mapped() {
		t.Fatal("Clone of mapped graph should be writable and heap-resident")
	}
	c.SetProb(0, 0.1)
	if m.Prob(0) == 0.1 {
		t.Fatal("mutating the clone leaked into the mapping")
	}
	if !g.Equal(m) {
		t.Fatal("mapped view changed")
	}
}

func TestOpenMappedTrusted(t *testing.T) {
	g := testGraph(t)
	path := writeTempBinary(t, g)
	m, err := OpenMappedTrusted(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !g.Equal(m) {
		t.Fatal("trusted open: not Equal to original")
	}
}

func TestWriteBinaryMatchesStreamingWriter(t *testing.T) {
	// WriteBinary (dumping an in-memory CSR) and ugsb.Writer (streaming
	// construction) must produce byte-identical files for the same edge
	// sequence.
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "w.ugsb")
	w, err := ugsb.Create(path, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if err := w.AddEdge(e.U, e.V, e.P); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	streamed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), streamed) {
		t.Fatalf("WriteBinary and ugsb.Writer bytes differ: %d vs %d bytes", buf.Len(), len(streamed))
	}
}

func TestBinaryRoundTripSampling(t *testing.T) {
	// Sampling kernels must be bit-identical over the mapped view.
	g := testGraph(t)
	m, err := OpenMapped(writeTempBinary(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	wg, wm := NewWorld(g), NewWorld(m)
	for seed := int64(0); seed < 32; seed++ {
		g.SampleWorldSeeded(seed, wg)
		m.SampleWorldSeeded(seed, wm)
		for id := 0; id < g.NumEdges(); id++ {
			if wg.Present(id) != wm.Present(id) {
				t.Fatalf("seed %d edge %d: heap %v != mapped %v", seed, id, wg.Present(id), wm.Present(id))
			}
		}
	}

	seeds := make([]int64, BatchLanes)
	for i := range seeds {
		seeds[i] = int64(i) * 7
	}
	bg, bm := NewWorldBatch[Vec64](g), NewWorldBatch[Vec64](m)
	g.SampleBatchSeeded(seeds, bg)
	m.SampleBatchSeeded(seeds, bm)
	for id := 0; id < g.NumEdges(); id++ {
		if bg.LaneMask(id) != bm.LaneMask(id) {
			t.Fatalf("batch edge %d: %x != %x", id, bg.LaneMask(id), bm.LaneMask(id))
		}
	}
}

func TestOpenMappedRejectsCorruption(t *testing.T) {
	g := testGraph(t)
	path := writeTempBinary(t, g)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(t *testing.T, mutate func([]byte)) string {
		t.Helper()
		b := bytes.Clone(orig)
		mutate(b)
		p := filepath.Join(t.TempDir(), "c.ugsb")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := []struct {
		name   string
		mutate func([]byte)
	}{
		{"magic", func(b []byte) { b[0] = 'X' }},
		{"version", func(b []byte) { b[4] = 99 }},
		{"header-field", func(b []byte) { b[16]++ }}, // n changes, header CRC mismatch
		{"section-byte", func(b []byte) { b[90]++ }}, // edge record byte, data CRC mismatch
		{"truncated", func(b []byte) { b[56] = 0 }},  // file size field
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := OpenMapped(corrupt(t, tc.mutate)); err == nil {
				t.Fatal("OpenMapped accepted a corrupt file")
			}
		})
	}

	t.Run("short", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "s.ugsb")
		if err := os.WriteFile(p, orig[:40], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenMapped(p); err == nil {
			t.Fatal("OpenMapped accepted a truncated file")
		}
	})
}

func TestReadLimits(t *testing.T) {
	hostile := []byte("20000000 3\n0 1 0.5\n1 2 0.5\n2 3 0.5\n")
	if _, err := Read(bytes.NewReader(hostile)); err == nil {
		t.Fatal("strict Read accepted a 2e7-vertex header")
	}
	g, err := ReadWithLimits(bytes.NewReader(hostile), ReadLimits{MaxVertices: 1 << 26})
	if err != nil {
		t.Fatalf("raised limits rejected a legal graph: %v", err)
	}
	if g.NumVertices() != 20000000 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
	// Edge limit is independent of the vertex limit.
	if _, err := ReadWithLimits(bytes.NewReader(hostile), ReadLimits{MaxVertices: 1 << 26, MaxEdges: 2}); err == nil {
		t.Fatal("MaxEdges=2 accepted 3 edges")
	}
}
