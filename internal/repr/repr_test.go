package repr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ugs/internal/mc"
	"ugs/internal/ugraph"
)

func randomGraph(rng *rand.Rand, n int, density float64) *ugraph.Graph {
	b := ugraph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				if err := b.AddEdge(u, v, 0.05+0.9*rng.Float64()); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.Graph()
}

func TestRepresentativeIsDeterministicSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 30, 0.3)
	rep := ExpectedDegreeRepresentative(g, Options{})
	if !IsDeterministic(rep) {
		t.Error("representative has fractional probabilities")
	}
	if Entropy(rep) != 0 {
		t.Errorf("representative entropy %v, want 0", Entropy(rep))
	}
	for _, e := range rep.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("edge (%d,%d) not in original", e.U, e.V)
		}
	}
}

func TestRewiringImprovesOnMostProbableWorld(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 5+rng.Intn(25), 0.2+0.4*rng.Float64())
		if g.NumEdges() == 0 {
			return true
		}
		base := DegreeObjective(g, MostProbableWorld(g))
		rep := ExpectedDegreeRepresentative(g, Options{})
		return DegreeObjective(g, rep) <= base+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRepresentativeDegreesCloseToExpected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 40, 0.25)
	rep := ExpectedDegreeRepresentative(g, Options{})
	want := g.ExpectedDegrees()
	var mae float64
	for u := 0; u < g.NumVertices(); u++ {
		mae += math.Abs(want[u] - float64(rep.Degree(u)))
	}
	mae /= float64(g.NumVertices())
	// Integer degrees cannot beat rounding error, but should stay within
	// one edge of the expectation on average.
	if mae > 1.0 {
		t.Errorf("degree MAE %v, want ≤ 1", mae)
	}
}

// TestRepresentativeCannotAnswerProbabilisticQueries demonstrates the
// paper's Section 2.3 argument: the representative collapses
// Pr[G connected] to 0 or 1, while the uncertain graph has a fractional
// answer — which a sparsified *uncertain* graph can approximate.
func TestRepresentativeCannotAnswerProbabilisticQueries(t *testing.T) {
	// Figure 1's K4 at p = 0.3: Pr[connected] ≈ 0.219.
	b := ugraph.NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 0.3); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Graph()
	exact := mc.ExactProbabilityOf(g, func(w *ugraph.World) bool { return w.IsConnected() })

	rep := ExpectedDegreeRepresentative(g, Options{})
	ans := ConnectivityAnswer(rep)
	if ans != 0 && ans != 1 {
		t.Fatalf("representative answer %v not boolean", ans)
	}
	if math.Abs(ans-exact) < 0.2 {
		t.Errorf("representative answer %v unexpectedly close to %v; the demonstration instance is broken", ans, exact)
	}
}

func TestMostProbableWorldRounding(t *testing.T) {
	g := ugraph.MustNew(3, []ugraph.Edge{
		{U: 0, V: 1, P: 0.6},
		{U: 1, V: 2, P: 0.4},
		{U: 0, V: 2, P: 0.5},
	})
	w := MostProbableWorld(g)
	if !w.HasEdge(0, 1) || w.HasEdge(1, 2) || !w.HasEdge(0, 2) {
		t.Errorf("rounding wrong: %v", w.Edges())
	}
	if !IsDeterministic(w) {
		t.Error("most probable world not deterministic")
	}
}

func TestRepresentativeDeterministicOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 25, 0.3)
	a := ExpectedDegreeRepresentative(g, Options{})
	b := ExpectedDegreeRepresentative(g, Options{})
	if !a.Equal(b) {
		t.Error("representative extraction not deterministic")
	}
}
