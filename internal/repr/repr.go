// Package repr extracts deterministic representative instances of uncertain
// graphs with preserved expected degrees, after Parchas et al., "The pursuit
// of a good possible world" (SIGMOD 2014) — the papers [29, 30] that the
// sparsification paper positions itself against (Section 2.3).
//
// A representative is a single deterministic graph (every probability 0 or
// 1) whose vertex degrees approximate the expected degrees of the uncertain
// graph. It is the zero-entropy limit of sparsification: queries run on it
// with conventional algorithms at minimal cost, but — unlike a sparsified
// uncertain graph — it cannot answer questions whose output is inherently
// probabilistic (reliability, Pr[connected], …), and it offers no control
// over the output edge count. Package ugs implements it as a comparator to
// make that contrast measurable.
package repr

import (
	"math"

	"ugs/internal/ds"
	"ugs/internal/ugraph"
)

// Options tunes representative extraction.
type Options struct {
	// MaxSweeps bounds the greedy rewiring passes. Default 50.
	MaxSweeps int
}

func (o *Options) defaults() {
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 50
	}
}

// ExpectedDegreeRepresentative returns a deterministic representative of g:
// a subset of E with all probabilities 1, chosen to minimize the squared
// expected-degree discrepancy Σ_u (d_u − deg_u)².
//
// The construction follows the ADR recipe of [29]: start from the most
// probable world (round each edge at p ≥ 0.5), then greedily flip the edge
// whose inclusion/exclusion most reduces the objective until a sweep makes
// no progress.
func ExpectedDegreeRepresentative(g *ugraph.Graph, opts Options) *ugraph.Graph {
	opts.defaults()
	n := g.NumVertices()
	m := g.NumEdges()

	include := make([]bool, m)
	deg := make([]float64, n) // current integer degrees (as float for math)
	want := g.ExpectedDegrees()
	for id, e := range g.Edges() {
		if e.P >= 0.5 {
			include[id] = true
			deg[e.U]++
			deg[e.V]++
		}
	}

	// flipGain returns the objective decrease of toggling edge id.
	flipGain := func(id int) float64 {
		e := g.Edge(id)
		du, dv := want[e.U]-deg[e.U], want[e.V]-deg[e.V]
		var step float64 = 1
		if include[id] {
			step = -1
		}
		// Δobjective = (du−step)²−du² + (dv−step)²−dv²; gain is −Δ.
		return -((du-step)*(du-step) - du*du + (dv-step)*(dv-step) - dv*dv)
	}

	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		improved := false
		for id := 0; id < m; id++ {
			if flipGain(id) > 1e-12 {
				e := g.Edge(id)
				if include[id] {
					include[id] = false
					deg[e.U]--
					deg[e.V]--
				} else {
					include[id] = true
					deg[e.U]++
					deg[e.V]++
				}
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	var ids []int
	for id, in := range include {
		if in {
			ids = append(ids, id)
		}
	}
	out, err := g.EdgeSubgraph(ids)
	if err != nil {
		panic(err) // ids are valid by construction
	}
	for i := range ids {
		out.SetProb(i, 1)
	}
	return out
}

// DegreeObjective evaluates Σ_u (d_u(G) − deg_u(rep))², the representative
// quality measure of [29].
func DegreeObjective(g, rep *ugraph.Graph) float64 {
	want := g.ExpectedDegrees()
	var sum float64
	for u := 0; u < g.NumVertices(); u++ {
		d := want[u] - float64(rep.Degree(u))
		sum += d * d
	}
	return sum
}

// MostProbableWorld returns the deterministic graph that rounds every edge
// at p ≥ 0.5 — the baseline the rewiring starts from.
func MostProbableWorld(g *ugraph.Graph) *ugraph.Graph {
	var ids []int
	for id, e := range g.Edges() {
		if e.P >= 0.5 {
			ids = append(ids, id)
		}
	}
	out, err := g.EdgeSubgraph(ids)
	if err != nil {
		panic(err)
	}
	for i := range ids {
		out.SetProb(i, 1)
	}
	return out
}

// IsDeterministic reports whether every edge probability of g is exactly 0
// or 1 (zero entropy).
func IsDeterministic(g *ugraph.Graph) bool {
	for _, e := range g.Edges() {
		if e.P != 0 && e.P != 1 {
			return false
		}
	}
	return true
}

// ConnectivityAnswer illustrates the paper's Section 2.3 argument: on a
// representative, "is the graph connected?" collapses to a 0/1 answer,
// whereas the uncertain graph (and its sparsifications) yield a
// probability. It returns that 0/1 answer.
func ConnectivityAnswer(rep *ugraph.Graph) float64 {
	// Only edges with p = 1 exist.
	uf := ds.NewUnionFind(rep.NumVertices())
	for _, e := range rep.Edges() {
		if e.P == 1 {
			uf.Union(e.U, e.V)
		}
	}
	if uf.Sets() == 1 {
		return 1
	}
	return 0
}

// Entropy of a representative is always zero; exposed for symmetry in
// comparisons.
func Entropy(rep *ugraph.Graph) float64 {
	var h float64
	for _, e := range rep.Edges() {
		h += ugraph.EdgeEntropy(e.P)
	}
	return math.Abs(h)
}
