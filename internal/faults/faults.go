// Package faults is a deterministic fault-injection harness for chaos
// testing the serving stack. Production code declares named injection
// points — plain strings like "store.open" or "batcher.flight" — and calls
// Check at each one; an Injector parsed from a spec decides, per hit, whether
// to inject an error, a panic, or a latency stall at that point. The nil
// Injector is the production default: every Check on it is a no-op compiled
// down to one pointer test, so instrumented code pays nothing when chaos is
// off.
//
// Decisions are deterministic: each point keeps its own hit counter, and the
// verdict for hit n is a pure function of (seed, point, n) via SplitMix64.
// Two runs with the same spec, seed and per-point call sequence inject at
// exactly the same hits, which is what makes recovery-path tests repeatable
// — and because counters are per point, interleaving across points does not
// perturb any point's schedule.
//
// # Spec grammar
//
//	spec   = rule *( ";" rule )
//	rule   = point ":" action [ "=" arg ] [ "@" rate ]
//	action = "err" | "panic" | "slow"
//	point  = injection-point name ([a-z0-9._-]+)
//	arg    = Go duration (required for slow, e.g. 50ms)
//	rate   = probability in (0, 1], default 1
//
// Examples:
//
//	store.open:err@0.3                   30% of store opens fail
//	handler.query:panic@0.05             1-in-20 query handlers panic
//	store.read:slow=50ms;job.run:err     50ms I/O stall, every job fails
package faults

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so recovery
// paths under test can tell injected failures from real ones with errors.Is.
var ErrInjected = errors.New("faults: injected error")

// PanicPrefix starts every injected panic value, so recovery middleware
// tests can assert the panic they caught was the injected one.
const PanicPrefix = "faults: injected panic"

// Action is what a rule does when its point fires.
type Action int

const (
	// ActErr returns an error wrapping ErrInjected.
	ActErr Action = iota
	// ActPanic panics with a PanicPrefix message.
	ActPanic
	// ActSlow sleeps for the rule's duration, ignoring any context — it
	// models a stuck syscall or an unresponsive disk, not a polite wait.
	ActSlow
)

func (a Action) String() string {
	switch a {
	case ActErr:
		return "err"
	case ActPanic:
		return "panic"
	default:
		return "slow"
	}
}

// rule is one parsed injection rule. hits counts evaluations (the decision
// index), injected counts the hits that actually fired.
type rule struct {
	point    string
	action   Action
	rate     float64
	delay    time.Duration
	hits     atomic.Int64
	injected atomic.Int64
}

// Injector decides fault injection at named points. The zero of the type is
// a *nil pointer*: all methods are nil-safe no-ops, so callers thread a
// possibly-nil *Injector without guards.
type Injector struct {
	seed  int64
	rules map[string]*rule
}

var pointRE = regexp.MustCompile(`^[a-z0-9._-]+$`)

// Parse builds an Injector from a spec (see the package grammar) and a seed.
// An empty spec returns nil — the no-op injector.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{seed: seed, rules: make(map[string]*rule)}
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, err := parseRule(raw)
		if err != nil {
			return nil, fmt.Errorf("faults: rule %q: %w", raw, err)
		}
		if _, dup := in.rules[r.point]; dup {
			return nil, fmt.Errorf("faults: duplicate rules for point %q", r.point)
		}
		in.rules[r.point] = r
	}
	if len(in.rules) == 0 {
		return nil, nil
	}
	return in, nil
}

func parseRule(raw string) (*rule, error) {
	point, rest, ok := strings.Cut(raw, ":")
	if !ok {
		return nil, errors.New(`want "point:action[=arg][@rate]"`)
	}
	if !pointRE.MatchString(point) {
		return nil, fmt.Errorf("invalid point name %q", point)
	}
	r := &rule{point: point, rate: 1}
	if rest, ok = cutRate(rest, r); !ok {
		return nil, fmt.Errorf("invalid rate in %q (want a probability in (0,1])", raw)
	}
	act, arg, hasArg := strings.Cut(rest, "=")
	switch act {
	case "err":
		r.action = ActErr
	case "panic":
		r.action = ActPanic
	case "slow":
		r.action = ActSlow
		if !hasArg {
			return nil, errors.New(`slow needs a duration: "slow=50ms"`)
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad slow duration %q", arg)
		}
		r.delay = d
		hasArg = false
	default:
		return nil, fmt.Errorf("unknown action %q (want err, panic or slow)", act)
	}
	if hasArg {
		return nil, fmt.Errorf("action %q takes no argument", act)
	}
	return r, nil
}

// cutRate splits a trailing "@rate" off rest, storing it into r. Reports
// false on an unparsable or out-of-range rate.
func cutRate(rest string, r *rule) (string, bool) {
	head, rate, ok := strings.Cut(rest, "@")
	if !ok {
		return rest, true
	}
	p, err := strconv.ParseFloat(rate, 64)
	if err != nil || !(p > 0 && p <= 1) {
		return "", false
	}
	r.rate = p
	return head, true
}

// splitmix64 is the same mixer the Monte-Carlo engine seeds worlds with:
// a full-avalanche hash of the counter, so consecutive hits decide
// independently.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes the point name into the decision stream, so distinct points
// with the same seed fire on different hit schedules.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// fires decides hit n of this rule under seed.
func (r *rule) fires(seed int64, n int64) bool {
	if r.rate >= 1 {
		return true
	}
	u := splitmix64(uint64(seed) ^ fnv64(r.point) ^ uint64(n))
	return float64(u>>11)/(1<<53) < r.rate
}

// Check evaluates the injection point: it returns an injected error, panics,
// or stalls according to the matching rule — or does nothing when the
// injector is nil, the point has no rule, or this hit's deterministic draw
// says pass. Safe for concurrent use.
func (in *Injector) Check(point string) error {
	if in == nil {
		return nil
	}
	r, ok := in.rules[point]
	if !ok {
		return nil
	}
	n := r.hits.Add(1)
	if !r.fires(in.seed, n) {
		return nil
	}
	r.injected.Add(1)
	switch r.action {
	case ActErr:
		return fmt.Errorf("%w at %s (hit %d)", ErrInjected, point, n)
	case ActPanic:
		panic(fmt.Sprintf("%s at %s (hit %d)", PanicPrefix, point, n))
	default:
		time.Sleep(r.delay)
		return nil
	}
}

// Enabled reports whether the injector has a rule for point, without
// consuming a hit — for call sites that need to know up front (e.g. tests).
func (in *Injector) Enabled(point string) bool {
	if in == nil {
		return false
	}
	_, ok := in.rules[point]
	return ok
}

// Counts returns the number of injected faults per point (points that never
// fired are included with 0). Nil-safe: returns nil.
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	out := make(map[string]int64, len(in.rules))
	for p, r := range in.rules {
		out[p] = r.injected.Load()
	}
	return out
}

// Total returns the total number of injected faults across all points.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	var n int64
	for _, r := range in.rules {
		n += r.injected.Load()
	}
	return n
}

// String renders the parsed spec back in canonical form (sorted by point).
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	parts := make([]string, 0, len(in.rules))
	for _, r := range in.rules {
		s := r.point + ":" + r.action.String()
		if r.action == ActSlow {
			s += "=" + r.delay.String()
		}
		if r.rate < 1 {
			s += "@" + strconv.FormatFloat(r.rate, 'g', -1, 64)
		}
		parts = append(parts, s)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}
