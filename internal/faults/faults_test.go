package faults

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "   ", ";", " ; ; "} {
		in, err := Parse(spec, 1)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if in != nil {
			t.Fatalf("Parse(%q) = %v, want nil injector", spec, in)
		}
	}
}

func TestParseValid(t *testing.T) {
	in, err := Parse("store.open:err@0.3; handler.query:panic ;store.read:slow=50ms;job.run:err", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"store.open", "handler.query", "store.read", "job.run"} {
		if !in.Enabled(p) {
			t.Errorf("point %s not enabled", p)
		}
	}
	if in.Enabled("batcher.flight") {
		t.Error("unruled point reported enabled")
	}
	want := "handler.query:panic;job.run:err;store.open:err@0.3;store.read:slow=50ms"
	if got := in.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseInvalid(t *testing.T) {
	bad := []string{
		"noaction",      // missing colon
		"p:frob",        // unknown action
		"p:err@0",       // rate must be > 0
		"p:err@1.5",     // rate must be <= 1
		"p:err@x",       // unparsable rate
		"p:slow",        // slow needs a duration
		"p:slow=banana", // bad duration
		"p:slow=-1s",    // non-positive duration
		"p:err=arg",     // err takes no argument
		"P.Q:err",       // uppercase point name
		"a:err;a:panic", // duplicate point
		"sp ace:err",    // space in point name
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Check("anything"); err != nil {
		t.Fatalf("nil Check: %v", err)
	}
	if in.Enabled("anything") || in.Counts() != nil || in.Total() != 0 || in.String() != "" {
		t.Fatal("nil injector not a no-op")
	}
}

func TestErrAlwaysFires(t *testing.T) {
	in, err := Parse("store.open:err", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		err := in.Check("store.open")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: got %v, want ErrInjected", i, err)
		}
	}
	if got := in.Counts()["store.open"]; got != 10 {
		t.Fatalf("injected count = %d, want 10", got)
	}
	if in.Total() != 10 {
		t.Fatalf("Total() = %d, want 10", in.Total())
	}
}

func TestPanicAction(t *testing.T) {
	in, err := Parse("handler.query:panic", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic")
		}
		if s, ok := v.(string); !ok || !strings.HasPrefix(s, PanicPrefix) {
			t.Fatalf("panic value %v lacks PanicPrefix", v)
		}
	}()
	_ = in.Check("handler.query")
}

func TestSlowAction(t *testing.T) {
	in, err := Parse("store.read:slow=30ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := in.Check("store.read"); err != nil {
		t.Fatalf("slow returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("slow returned after %v, want >= 30ms", d)
	}
}

// TestDeterministicSchedule: same (spec, seed) → identical fire pattern
// across runs, regardless of interleaving with other points.
func TestDeterministicSchedule(t *testing.T) {
	pattern := func(interleave bool) []bool {
		in, err := Parse("a.b:err@0.4;c.d:err@0.9", 42)
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 200; i++ {
			if interleave && i%3 == 0 {
				_ = in.Check("c.d") // extra traffic on another point
			}
			out = append(out, in.Check("a.b") != nil)
		}
		return out
	}
	base := pattern(false)
	inter := pattern(true)
	for i := range base {
		if base[i] != inter[i] {
			t.Fatalf("hit %d differs under interleaving: %v vs %v", i, base[i], inter[i])
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	fire := func(seed int64) int {
		in, _ := Parse("a.b:err@0.5", seed)
		mask := 0
		for i := 0; i < 16; i++ {
			if in.Check("a.b") != nil {
				mask |= 1 << i
			}
		}
		return mask
	}
	a, b := fire(1), fire(2)
	if a == b {
		t.Fatalf("seeds 1 and 2 produced identical 16-hit pattern %b", a)
	}
}

func TestRateApproximate(t *testing.T) {
	in, err := Parse("a.b:err@0.3", 99)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	hits := 0
	for i := 0; i < n; i++ {
		if in.Check("a.b") != nil {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.25 || got > 0.35 {
		t.Fatalf("rate 0.3 fired %.3f of %d hits", got, n)
	}
	if c := in.Counts()["a.b"]; c != int64(hits) {
		t.Fatalf("Counts = %d, want %d", c, hits)
	}
}

func TestConcurrentCheck(t *testing.T) {
	in, err := Parse("a.b:err@0.5", 5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = in.Check("a.b")
			}
		}()
	}
	wg.Wait()
	total := in.Total()
	if total < 3000 || total > 5000 {
		t.Fatalf("concurrent Total() = %d, want roughly half of 8000", total)
	}
}
