package exp

import (
	"fmt"
	"io"

	"ugs/internal/core"
	"ugs/internal/ugraph"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Figure 5: effect of entropy parameter h on GDB (Flickr reduced)",
		Run:   runFig5,
	})
}

func runFig5(w io.Writer, ctx *Context) error {
	s := ctx.Cfg.scale()
	g := ctx.FlickrReduced()
	hs := []float64{core.HZero, 0.01, 0.05, 0.1, 0.5, 1}
	hName := func(h float64) string {
		if h == core.HZero {
			return "h=0"
		}
		return fmt.Sprintf("h=%g", h)
	}

	mae := &table{
		title: "Figure 5(a): MAE of δA(u) vs α for entropy parameter h (GDB, Flickr reduced)",
		cols:  append([]string{"h"}, alphaCols(s.alphas)...),
	}
	ent := &table{
		title: "Figure 5(b): relative entropy H(G')/H(G) vs α for entropy parameter h",
		cols:  append([]string{"h"}, alphaCols(s.alphas)...),
	}
	for _, h := range hs {
		maeRow := []string{hName(h)}
		entRow := []string{hName(h)}
		for _, alpha := range s.alphas {
			out, _, err := core.Sparsify(ctx.Ctx(), g, alpha, core.Options{
				Method:   core.MethodGDB,
				Backbone: core.BackboneSpanning,
				H:        h,
				Seed:     ctx.Cfg.Seed,
			})
			if err != nil {
				return err
			}
			maeRow = append(maeRow, e3(core.MAEDegreeDiscrepancy(g, out, core.Absolute)))
			entRow = append(entRow, e3(ugraph.RelativeEntropy(out, g)))
		}
		mae.add(maeRow...)
		ent.add(entRow...)
	}
	if err := mae.fprint(w); err != nil {
		return err
	}
	return ent.fprint(w)
}
