package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ugs/internal/core"
	"ugs/internal/ugraph"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Figure 6: MAE of δA(u) and δA(S) vs α, methods vs benchmarks (real-like datasets)",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Figure 7: MAE of δA(u) and δA(S) vs graph density (synthetic, α=16%)",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8: relative entropy H(G')/H(G) vs α and density",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9: execution time of NI, GDB, EMD vs α (real-like datasets)",
		Run:   runFig9,
	})
}

func realLikeDatasets(ctx *Context) []struct {
	name string
	g    *ugraph.Graph
} {
	return []struct {
		name string
		g    *ugraph.Graph
	}{
		{"Flickr-like", ctx.Flickr()},
		{"Twitter-like", ctx.Twitter()},
	}
}

func runFig6(w io.Writer, ctx *Context) error {
	s := ctx.Cfg.scale()
	for _, ds := range realLikeDatasets(ctx) {
		deg := &table{
			title: fmt.Sprintf("Figure 6: MAE of δA(u) (%s)", ds.name),
			cols:  append([]string{"method"}, alphaCols(s.alphas)...),
		}
		cut := &table{
			title: fmt.Sprintf("Figure 6: MAE of δA(S) (%s)", ds.name),
			cols:  append([]string{"method"}, alphaCols(s.alphas)...),
		}
		for _, spec := range comparisonMethods() {
			degRow := []string{displayName(spec)}
			cutRow := []string{displayName(spec)}
			for _, alpha := range s.alphas {
				sparse, err := spec.Run(ctx.Ctx(), ds.g, alpha, ctx.Cfg.Seed)
				if err != nil {
					return err
				}
				degRow = append(degRow, e3(core.MAEDegreeDiscrepancy(ds.g, sparse, core.Absolute)))
				rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 200))
				cutRow = append(cutRow, e3(core.MAECutDiscrepancy(ds.g, sparse, s.cutMaxK, s.cutSamplesPerK, rng)))
			}
			deg.add(degRow...)
			cut.add(cutRow...)
		}
		if err := deg.fprint(w); err != nil {
			return err
		}
		if err := cut.fprint(w); err != nil {
			return err
		}
	}
	return nil
}

func runFig7(w io.Writer, ctx *Context) error {
	s := ctx.Cfg.scale()
	const alpha = 0.16
	family := ctx.DensityFamily()
	densCols := make([]string, len(family))
	for i, di := range family {
		densCols[i] = fmt.Sprintf("%.0f%%", di.Density*100)
	}
	deg := &table{
		title: "Figure 7(a): MAE of δA(u) vs density (synthetic, α=16%)",
		cols:  append([]string{"method"}, densCols...),
	}
	cut := &table{
		title: "Figure 7(b): MAE of δA(S) vs density (synthetic, α=16%)",
		cols:  append([]string{"method"}, densCols...),
	}
	for _, spec := range comparisonMethods() {
		degRow := []string{displayName(spec)}
		cutRow := []string{displayName(spec)}
		for _, di := range family {
			sparse, err := spec.Run(ctx.Ctx(), di.G, alpha, ctx.Cfg.Seed)
			if err != nil {
				return err
			}
			degRow = append(degRow, e3(core.MAEDegreeDiscrepancy(di.G, sparse, core.Absolute)))
			rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 300))
			cutRow = append(cutRow, e3(core.MAECutDiscrepancy(di.G, sparse, s.cutMaxK, s.cutSamplesPerK, rng)))
		}
		deg.add(degRow...)
		cut.add(cutRow...)
	}
	if err := deg.fprint(w); err != nil {
		return err
	}
	return cut.fprint(w)
}

func runFig8(w io.Writer, ctx *Context) error {
	s := ctx.Cfg.scale()
	for _, ds := range realLikeDatasets(ctx) {
		t := &table{
			title: fmt.Sprintf("Figure 8: relative entropy H(G')/H(G) vs α (%s)", ds.name),
			cols:  append([]string{"method"}, alphaCols(s.alphas)...),
		}
		for _, spec := range comparisonMethods() {
			row := []string{displayName(spec)}
			for _, alpha := range s.alphas {
				sparse, err := spec.Run(ctx.Ctx(), ds.g, alpha, ctx.Cfg.Seed)
				if err != nil {
					return err
				}
				row = append(row, e3(ugraph.RelativeEntropy(sparse, ds.g)))
			}
			t.add(row...)
		}
		if err := t.fprint(w); err != nil {
			return err
		}
	}

	// Figure 8(c): entropy vs density at fixed α = 16%.
	family := ctx.DensityFamily()
	densCols := make([]string, len(family))
	for i, di := range family {
		densCols[i] = fmt.Sprintf("%.0f%%", di.Density*100)
	}
	t := &table{
		title: "Figure 8(c): relative entropy vs density (synthetic, α=16%)",
		cols:  append([]string{"method"}, densCols...),
	}
	for _, spec := range comparisonMethods() {
		row := []string{displayName(spec)}
		for _, di := range family {
			sparse, err := spec.Run(ctx.Ctx(), di.G, 0.16, ctx.Cfg.Seed)
			if err != nil {
				return err
			}
			row = append(row, e3(ugraph.RelativeEntropy(sparse, di.G)))
		}
		t.add(row...)
	}
	return t.fprint(w)
}

func runFig9(w io.Writer, ctx *Context) error {
	s := ctx.Cfg.scale()
	methods := []MethodSpec{
		benchmarkNI(),
		proposedVariant(core.MethodGDB, core.Absolute, 1, false),
		proposedVariant(core.MethodEMD, core.Relative, 1, true),
	}
	for _, ds := range realLikeDatasets(ctx) {
		t := &table{
			title: fmt.Sprintf("Figure 9: execution time in seconds (%s)", ds.name),
			cols:  append([]string{"method"}, alphaCols(s.alphas)...),
		}
		for _, spec := range methods {
			row := []string{displayName(spec)}
			for _, alpha := range s.alphas {
				start := time.Now()
				if _, err := spec.Run(ctx.Ctx(), ds.g, alpha, ctx.Cfg.Seed); err != nil {
					return err
				}
				row = append(row, f4(time.Since(start).Seconds()))
			}
			t.add(row...)
		}
		if err := t.fprint(w); err != nil {
			return err
		}
	}
	return nil
}
