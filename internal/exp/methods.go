package exp

import (
	"context"
	"fmt"
	"strings"

	"ugs"
	"ugs/internal/core"
	"ugs/internal/ugraph"
)

// MethodSpec names a sparsifier configuration used by the experiments. Run
// resolves the method through the ugs registry, so every registered method
// — including future plug-ins — is drivable by the harness.
type MethodSpec struct {
	Name string
	Run  func(ctx context.Context, g *ugraph.Graph, alpha float64, seed int64) (*ugraph.Graph, error)
}

// registryMethod builds a MethodSpec that resolves name from the ugs
// registry with the given options plus a per-run seed.
func registryMethod(display, name string, opts ...ugs.Option) MethodSpec {
	return MethodSpec{
		Name: display,
		Run: func(ctx context.Context, g *ugraph.Graph, alpha float64, seed int64) (*ugraph.Graph, error) {
			sp, err := ugs.Lookup(name, append(append([]ugs.Option(nil), opts...), ugs.WithSeed(seed))...)
			if err != nil {
				return nil, err
			}
			res, err := sp.Sparsify(ctx, g, alpha)
			if err != nil {
				return nil, err
			}
			return res.Graph, nil
		},
	}
}

// proposedVariant builds a GDB/EMD/LP variant runner in the paper's
// naming scheme: superscript A/R (discrepancy), subscript k, suffix -t
// (spanning backbone).
func proposedVariant(method core.Method, dt core.Discrepancy, k int, spanning bool) MethodSpec {
	name := strings.ToUpper(method.String())
	switch dt {
	case core.Absolute:
		name += "^A"
	case core.Relative:
		name += "^R"
	}
	if k == core.KAll {
		name += "_n"
	} else if k > 1 {
		name += fmt.Sprintf("_%d", k)
	}
	backbone := core.BackboneRandom
	if spanning {
		name += "-t"
		backbone = core.BackboneSpanning
	}
	return registryMethod(name, method.String(),
		ugs.WithDiscrepancy(dt),
		ugs.WithBackbone(backbone),
		ugs.WithCutOrder(k))
}

// benchmarkNI is the cut-sparsifier benchmark.
func benchmarkNI() MethodSpec { return registryMethod("NI", "ni") }

// benchmarkSS is the spanner benchmark.
func benchmarkSS() MethodSpec { return registryMethod("SS", "ss") }

// comparisonMethods returns the four methods of the benchmark comparisons
// (Figures 6–12): NI, SS, and the paper's representative variants GDB
// (= GDB^A, random backbone) and EMD (= EMD^R-t, spanning backbone).
func comparisonMethods() []MethodSpec {
	return []MethodSpec{
		benchmarkNI(),
		benchmarkSS(),
		proposedVariant(core.MethodGDB, core.Absolute, 1, false),
		proposedVariant(core.MethodEMD, core.Relative, 1, true),
	}
}

// displayName maps the representative variants to their short paper names.
func displayName(spec MethodSpec) string {
	switch spec.Name {
	case "GDB^A":
		return "GDB"
	case "EMD^R-t":
		return "EMD"
	}
	return spec.Name
}
