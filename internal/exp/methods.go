package exp

import (
	"fmt"

	"ugs/internal/core"
	"ugs/internal/ni"
	"ugs/internal/spanner"
	"ugs/internal/ugraph"
)

// MethodSpec names a sparsifier configuration used by the experiments.
type MethodSpec struct {
	Name string
	Run  func(g *ugraph.Graph, alpha float64, seed int64) (*ugraph.Graph, error)
}

// proposedVariant builds a GDB/EMD/LP variant runner in the paper's
// naming scheme: superscript A/R (discrepancy), subscript k, suffix -t
// (spanning backbone).
func proposedVariant(method core.Method, dt core.Discrepancy, k int, spanning bool) MethodSpec {
	name := method.String()
	switch dt {
	case core.Absolute:
		name += "^A"
	case core.Relative:
		name += "^R"
	}
	if k == core.KAll {
		name += "_n"
	} else if k > 1 {
		name += fmt.Sprintf("_%d", k)
	}
	backbone := core.BackboneRandom
	if spanning {
		name += "-t"
		backbone = core.BackboneSpanning
	}
	return MethodSpec{
		Name: name,
		Run: func(g *ugraph.Graph, alpha float64, seed int64) (*ugraph.Graph, error) {
			out, _, err := core.Sparsify(g, alpha, core.Options{
				Method:      method,
				Discrepancy: dt,
				Backbone:    backbone,
				K:           k,
				Seed:        seed,
			})
			return out, err
		},
	}
}

// benchmarkNI is the cut-sparsifier benchmark.
func benchmarkNI() MethodSpec {
	return MethodSpec{
		Name: "NI",
		Run: func(g *ugraph.Graph, alpha float64, seed int64) (*ugraph.Graph, error) {
			res, err := ni.Sparsify(g, alpha, ni.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			return res.Graph, nil
		},
	}
}

// benchmarkSS is the spanner benchmark.
func benchmarkSS() MethodSpec {
	return MethodSpec{
		Name: "SS",
		Run: func(g *ugraph.Graph, alpha float64, seed int64) (*ugraph.Graph, error) {
			res, err := spanner.Sparsify(g, alpha, spanner.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			return res.Graph, nil
		},
	}
}

// comparisonMethods returns the four methods of the benchmark comparisons
// (Figures 6–12): NI, SS, and the paper's representative variants GDB
// (= GDB^A, random backbone) and EMD (= EMD^R-t, spanning backbone).
func comparisonMethods() []MethodSpec {
	return []MethodSpec{
		benchmarkNI(),
		benchmarkSS(),
		proposedVariant(core.MethodGDB, core.Absolute, 1, false),
		proposedVariant(core.MethodEMD, core.Relative, 1, true),
	}
}

// displayName maps the representative variants to their short paper names.
func displayName(spec MethodSpec) string {
	switch spec.Name {
	case "GDB^A":
		return "GDB"
	case "EMD^R-t":
		return "EMD"
	}
	return spec.Name
}
