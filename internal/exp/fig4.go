package exp

import (
	"io"
	"math/rand"
	"time"

	"ugs/internal/core"
)

func init() {
	register(Experiment{
		ID:    "fig4a",
		Title: "Figure 4(a): MAE of cut-size discrepancy δA(S) vs α (Flickr reduced)",
		Run:   runFig4a,
	})
	register(Experiment{
		ID:    "fig4b",
		Title: "Figure 4(b): execution time of LP, GDB, EMD vs α (Flickr reduced)",
		Run:   runFig4b,
	})
}

func runFig4a(w io.Writer, ctx *Context) error {
	s := ctx.Cfg.scale()
	g := ctx.FlickrReduced()
	variants := []MethodSpec{
		proposedVariant(core.MethodEMD, core.Relative, 1, true),
		proposedVariant(core.MethodEMD, core.Absolute, 1, false),
		proposedVariant(core.MethodGDB, core.Relative, 1, true),
		proposedVariant(core.MethodGDB, core.Absolute, 1, false),
		proposedVariant(core.MethodGDB, core.Absolute, 2, false),
		proposedVariant(core.MethodGDB, core.Absolute, core.KAll, false),
	}
	t := &table{
		title: "Figure 4(a): MAE of sampled cut discrepancy δA(S) (Flickr reduced)",
		cols:  append([]string{"variant"}, alphaCols(s.alphas)...),
	}
	for _, spec := range variants {
		row := []string{spec.Name}
		for _, alpha := range s.alphas {
			sparse, err := spec.Run(ctx.Ctx(), g, alpha, ctx.Cfg.Seed)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 100))
			row = append(row, e3(core.MAECutDiscrepancy(g, sparse, s.cutMaxK, s.cutSamplesPerK, rng)))
		}
		t.add(row...)
	}
	return t.fprint(w)
}

func runFig4b(w io.Writer, ctx *Context) error {
	s := ctx.Cfg.scale()
	g := ctx.FlickrReduced()
	variants := []MethodSpec{
		{Name: "LP", Run: proposedVariant(core.MethodLP, core.Absolute, 1, true).Run},
		{Name: "GDB", Run: proposedVariant(core.MethodGDB, core.Absolute, 1, true).Run},
		{Name: "EMD", Run: proposedVariant(core.MethodEMD, core.Relative, 1, true).Run},
	}
	t := &table{
		title: "Figure 4(b): execution time in seconds (Flickr reduced)",
		cols:  append([]string{"method"}, alphaCols(s.alphas)...),
	}
	for _, spec := range variants {
		row := []string{spec.Name}
		for _, alpha := range s.alphas {
			start := time.Now()
			if _, err := spec.Run(ctx.Ctx(), g, alpha, ctx.Cfg.Seed); err != nil {
				return err
			}
			row = append(row, f4(time.Since(start).Seconds()))
		}
		t.add(row...)
	}
	return t.fprint(w)
}
