package exp

import (
	"bytes"
	"strings"
	"testing"
)

func testContext() *Context {
	return NewContext(Config{Seed: 42})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig4a", "fig4b", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12",
	}
	all := All()
	got := map[string]bool{}
	for _, e := range all {
		if got[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		got[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %q not registered", id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) failed", id)
		}
	}
	if len(all) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(all), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestDatasetsCachedAndShaped(t *testing.T) {
	ctx := testContext()
	f1 := ctx.Flickr()
	f2 := ctx.Flickr()
	if f1 != f2 {
		t.Error("dataset not cached")
	}
	tw := ctx.Twitter()
	if float64(f1.NumEdges())/float64(f1.NumVertices()) <= float64(tw.NumEdges())/float64(tw.NumVertices()) {
		t.Error("Flickr-like must be denser than Twitter-like")
	}
	fr := ctx.FlickrReduced()
	if !fr.IsConnected() {
		t.Error("Flickr-reduced must be connected")
	}
	fam := ctx.DensityFamily()
	if len(fam) != 4 {
		t.Fatalf("density family size %d", len(fam))
	}
	for i := 1; i < len(fam); i++ {
		if fam[i].G.NumEdges() <= fam[i-1].G.NumEdges() {
			t.Error("density family not increasing")
		}
	}
}

// TestRunAllExperiments executes every experiment at CI scale and checks
// that each produces a non-empty table mentioning its methods.
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipping in -short mode")
	}
	ctx := testContext()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, ctx); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			if !strings.Contains(out, "==") {
				t.Errorf("%s output missing table header:\n%s", e.ID, out)
			}
		})
	}
}
