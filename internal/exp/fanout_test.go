package exp

import (
	"bytes"
	"testing"
)

// TestFig10FanOutIdentical reruns Figure 10 with the pair estimators forced
// onto the per-source path (FanOut: 1) and with the full multi-source group
// (FanOut: 64) and requires byte-identical tables: the source fan-out is an
// execution choice of the engine, never a result-space knob, so every figure
// number the harness reports must be independent of it.
func TestFig10FanOutIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipping in -short mode")
	}
	e, ok := ByID("fig10")
	if !ok {
		t.Fatal("fig10 not registered")
	}
	run := func(fan int) string {
		ctx := NewContext(Config{Seed: 42, FanOut: fan})
		var buf bytes.Buffer
		if err := e.Run(&buf, ctx); err != nil {
			t.Fatalf("fig10 with FanOut %d: %v", fan, err)
		}
		return buf.String()
	}
	perSource := run(1)
	grouped := run(64)
	if perSource != grouped {
		t.Errorf("fig10 output differs between FanOut 1 and FanOut 64:\n--- per-source ---\n%s\n--- grouped ---\n%s", perSource, grouped)
	}
}
