package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"ugs/internal/mc"
	"ugs/internal/queries"
	"ugs/internal/stats"
	"ugs/internal/ugraph"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10: earth mover's distance of PR, SP, RL, CC vs α (real-like datasets)",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11: earth mover's distance of PR and SP vs density (synthetic, α=16%)",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12: relative variance of MC estimators for PR, SP, RL, CC",
		Run:   runFig12,
	})
}

var queryNames = []string{"PR", "SP", "RL", "CC"}

// observations holds, for each query, the per-entity outcome distribution:
// expected PageRank and clustering coefficient per vertex, and expected
// conditional shortest-path distance and reliability per sampled pair.
type observations [4][]float64

// evalQueries evaluates the four queries on g. Pairs are shared between G
// and its sparsifications so the distributions are comparable.
func evalQueries(ctx context.Context, g *ugraph.Graph, pairs []queries.Pair, opts mc.Options) (observations, error) {
	var obs observations
	var err error
	if obs[0], err = queries.ExpectedPageRank(ctx, g, opts, queries.PageRankOptions{}); err != nil {
		return obs, err
	}
	if obs[1], obs[2], err = queries.ShortestDistanceAndReliability(ctx, g, pairs, opts); err != nil {
		return obs, err
	}
	if obs[3], err = queries.ExpectedClusteringCoefficients(ctx, g, opts); err != nil {
		return obs, err
	}
	return obs, nil
}

// mcOptions builds the Monte-Carlo engine options for a query run. SP, RL
// and connectivity estimates ride the bit-parallel batch engine unless
// Cfg.ScalarQueries selects the scalar ablation; Cfg.Lanes pins the width,
// Cfg.FanOut pins the multi-source group size the pair estimators batch
// their many distinct sources into, and Cfg.ConfEps switches the pair
// estimators to sequential stopping (vector queries keep the fixed budget —
// their per-vertex estimates have no shared stopping statistic).
func (c *Context) mcOptions(samples int) mc.Options {
	o := mc.Options{Samples: samples, Seed: c.Cfg.Seed + 1000, Workers: c.Cfg.Workers, Scalar: c.Cfg.ScalarQueries, Lanes: c.Cfg.Lanes, FanOut: c.Cfg.FanOut}
	if c.Cfg.ConfEps > 0 {
		t := mc.WithConfidence(c.Cfg.ConfEps, c.Cfg.ConfDelta)
		t.MaxSamples = samples * 16
		o.Target = t // Samples stays: vector queries keep the fixed budget
	}
	return o
}

func runFig10(w io.Writer, ctx *Context) error {
	s := ctx.Cfg.scale()
	for _, ds := range realLikeDatasets(ctx) {
		rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 400))
		pairs := queries.RandomPairs(ds.g.NumVertices(), s.pairs, rng)
		base, err := evalQueries(ctx.Ctx(), ds.g, pairs, ctx.mcOptions(s.mcSamples))
		if err != nil {
			return err
		}

		for q, qn := range queryNames {
			t := &table{
				title: fmt.Sprintf("Figure 10: D_em of %s vs α (%s)", qn, ds.name),
				cols:  append([]string{"method"}, alphaCols(s.alphas)...),
			}
			// One sparsification per (method, α), reused across queries via
			// caching below; evaluate lazily per query to keep memory low.
			for _, spec := range comparisonMethods() {
				row := []string{displayName(spec)}
				for _, alpha := range s.alphas {
					obs, err := ctx.sparseObservations(ds.name, ds.g, spec, alpha, pairs, s.mcSamples)
					if err != nil {
						return err
					}
					row = append(row, e3(stats.EarthMovers(base[q], obs[q])))
				}
				t.add(row...)
			}
			if err := t.fprint(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// sparseObservations caches query observations per (dataset, method, α) so
// the four per-query tables of Figure 10 reuse one sparsification + MC run.
func (c *Context) sparseObservations(dsName string, g *ugraph.Graph, spec MethodSpec, alpha float64, pairs []queries.Pair, samples int) (observations, error) {
	key := fmt.Sprintf("obs/%s/%s/%g", dsName, spec.Name, alpha)
	c.mu.Lock()
	if c.obsCache == nil {
		c.obsCache = make(map[string]observations)
	}
	if obs, ok := c.obsCache[key]; ok {
		c.mu.Unlock()
		return obs, nil
	}
	c.mu.Unlock()

	sparse, err := spec.Run(c.Ctx(), g, alpha, c.Cfg.Seed)
	if err != nil {
		return observations{}, err
	}
	obs, err := evalQueries(c.Ctx(), sparse, pairs, c.mcOptions(samples))
	if err != nil {
		return observations{}, err
	}

	c.mu.Lock()
	c.obsCache[key] = obs
	c.mu.Unlock()
	return obs, nil
}

func runFig11(w io.Writer, ctx *Context) error {
	s := ctx.Cfg.scale()
	const alpha = 0.16
	family := ctx.DensityFamily()
	densCols := make([]string, len(family))
	for i, di := range family {
		densCols[i] = fmt.Sprintf("%.0f%%", di.Density*100)
	}
	prT := &table{
		title: "Figure 11(a): D_em of PR vs density (synthetic, α=16%)",
		cols:  append([]string{"method"}, densCols...),
	}
	spT := &table{
		title: "Figure 11(b): D_em of SP vs density (synthetic, α=16%)",
		cols:  append([]string{"method"}, densCols...),
	}
	for _, spec := range comparisonMethods() {
		prRow := []string{displayName(spec)}
		spRow := []string{displayName(spec)}
		for _, di := range family {
			rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 500))
			pairs := queries.RandomPairs(di.G.NumVertices(), s.pairs, rng)
			base, err := evalQueries(ctx.Ctx(), di.G, pairs, ctx.mcOptions(s.mcSamples))
			if err != nil {
				return err
			}
			obs, err := ctx.sparseObservations(fmt.Sprintf("density-%g", di.Density), di.G, spec, alpha, pairs, s.mcSamples)
			if err != nil {
				return err
			}
			prRow = append(prRow, e3(stats.EarthMovers(base[0], obs[0])))
			spRow = append(spRow, e3(stats.EarthMovers(base[1], obs[1])))
		}
		prT.add(prRow...)
		spT.add(spRow...)
	}
	if err := prT.fprint(w); err != nil {
		return err
	}
	return spT.fprint(w)
}

// scalarEstimators returns the Φ(G) summaries whose run-to-run variance
// Figure 12 reports: the PageRank of the highest-expected-degree vertex,
// the mean conditional SP distance and mean reliability over fixed pairs,
// and the mean clustering coefficient. An estimator error (only possible on
// cancellation) surfaces as NaN; the surrounding experiment then aborts on
// its next context check.
func scalarEstimators(ctx context.Context, g *ugraph.Graph, pairs []queries.Pair, samples, workers int, scalarEngine bool) [4]func(run int) float64 {
	hub := 0
	d := g.ExpectedDegrees()
	for v, dv := range d {
		if dv > d[hub] {
			hub = v
		}
	}
	opts := func(run int) mc.Options {
		return mc.Options{Samples: samples, Seed: int64(run)*7919 + 13, Workers: workers, Scalar: scalarEngine}
	}
	return [4]func(run int) float64{
		func(run int) float64 {
			pr, err := queries.ExpectedPageRank(ctx, g, opts(run), queries.PageRankOptions{})
			if err != nil {
				return math.NaN()
			}
			return pr[hub]
		},
		func(run int) float64 {
			sp, _, err := queries.ShortestDistanceAndReliability(ctx, g, pairs, opts(run))
			if err != nil {
				return math.NaN()
			}
			return nanMean(sp)
		},
		func(run int) float64 {
			_, rl, err := queries.ShortestDistanceAndReliability(ctx, g, pairs, opts(run))
			if err != nil {
				return math.NaN()
			}
			return stats.Mean(rl)
		},
		func(run int) float64 {
			cc, err := queries.ExpectedClusteringCoefficients(ctx, g, opts(run))
			if err != nil {
				return math.NaN()
			}
			return stats.Mean(cc)
		},
	}
}

func nanMean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func runFig12(w io.Writer, ctx *Context) error {
	s := ctx.Cfg.scale()
	for _, ds := range realLikeDatasets(ctx) {
		rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 600))
		// Fewer pairs than fig10: each estimator runs varianceRuns times.
		pairs := queries.RandomPairs(ds.g.NumVertices(), s.pairs/2, rng)

		baseVar := [4]float64{}
		baseEst := scalarEstimators(ctx.Ctx(), ds.g, pairs, s.varianceSamples, ctx.Cfg.Workers, ctx.Cfg.ScalarQueries)
		for q := range baseEst {
			_, v := stats.EstimatorVariance(s.varianceRuns, baseEst[q])
			baseVar[q] = v
		}
		// Estimators swallow cancellation into NaN; abort here rather than
		// rendering (and reporting success for) a table of garbage rows.
		if err := ctx.Ctx().Err(); err != nil {
			return err
		}

		t := &table{
			title: fmt.Sprintf("Figure 12: relative variance σ̂(G')/σ̂(G) at α=16%% (%s)", ds.name),
			cols:  append([]string{"method"}, queryNames...),
		}
		for _, spec := range comparisonMethods() {
			sparse, err := spec.Run(ctx.Ctx(), ds.g, 0.16, ctx.Cfg.Seed)
			if err != nil {
				return err
			}
			est := scalarEstimators(ctx.Ctx(), sparse, pairs, s.varianceSamples, ctx.Cfg.Workers, ctx.Cfg.ScalarQueries)
			row := []string{displayName(spec)}
			for q := range est {
				_, v := stats.EstimatorVariance(s.varianceRuns, est[q])
				if baseVar[q] == 0 {
					row = append(row, "n/a")
				} else {
					row = append(row, e3(v/baseVar[q]))
				}
			}
			if err := ctx.Ctx().Err(); err != nil {
				return err
			}
			t.add(row...)
		}
		if err := t.fprint(w); err != nil {
			return err
		}
	}
	return nil
}
