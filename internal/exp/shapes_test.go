package exp

// Shape tests: the paper's qualitative findings, asserted programmatically
// at CI scale. These are the reproduction contract — EXPERIMENTS.md's
// checkmarks in executable form.

import (
	"context"
	"math/rand"
	"testing"

	"ugs/internal/core"
	"ugs/internal/ugraph"
)

func mustRun(t *testing.T, spec MethodSpec, g *ugraph.Graph, alpha float64, seed int64) *ugraph.Graph {
	t.Helper()
	out, err := spec.Run(context.Background(), g, alpha, seed)
	if err != nil {
		t.Fatalf("%s(α=%v): %v", spec.Name, alpha, err)
	}
	return out
}

// TestShapeFig6ProposedBeatBenchmarks: GDB and EMD must preserve expected
// degrees better than both NI and SS on both datasets for α ≥ 16%.
func TestShapeFig6ProposedBeatBenchmarks(t *testing.T) {
	ctx := testContext()
	methods := comparisonMethods() // NI, SS, GDB, EMD
	for _, ds := range realLikeDatasets(ctx) {
		for _, alpha := range []float64{0.16, 0.32, 0.64} {
			mae := map[string]float64{}
			for _, spec := range methods {
				out := mustRun(t, spec, ds.g, alpha, 1)
				mae[displayName(spec)] = core.MAEDegreeDiscrepancy(ds.g, out, core.Absolute)
			}
			for _, proposed := range []string{"GDB", "EMD"} {
				for _, bench := range []string{"NI", "SS"} {
					if mae[proposed] >= mae[bench] {
						t.Errorf("%s α=%v: %s MAE %v not below %s MAE %v",
							ds.name, alpha, proposed, mae[proposed], bench, mae[bench])
					}
				}
			}
		}
	}
}

// TestShapeFig8EntropyOrdering: the proposed methods reduce entropy more
// than SS (which performs no redistribution) at every α, and every method
// yields relative entropy < 1.
func TestShapeFig8EntropyOrdering(t *testing.T) {
	ctx := testContext()
	methods := comparisonMethods()
	for _, ds := range realLikeDatasets(ctx) {
		for _, alpha := range []float64{0.08, 0.16, 0.32, 0.64} {
			rel := map[string]float64{}
			for _, spec := range methods {
				out := mustRun(t, spec, ds.g, alpha, 1)
				rel[displayName(spec)] = ugraph.RelativeEntropy(out, ds.g)
			}
			for name, r := range rel {
				if r >= 1 {
					t.Errorf("%s α=%v: %s relative entropy %v ≥ 1", ds.name, alpha, name, r)
				}
			}
			if rel["EMD"] >= rel["SS"] {
				t.Errorf("%s α=%v: EMD entropy %v not below SS %v",
					ds.name, alpha, rel["EMD"], rel["SS"])
			}
			// The paper's GDB-vs-benchmarks entropy gap is a small-α claim
			// ("at least an order of magnitude less entropy for small α");
			// at α = 64% the methods converge.
			if alpha <= 0.32 && rel["GDB"] >= rel["SS"] {
				t.Errorf("%s α=%v: GDB entropy %v not below SS %v",
					ds.name, alpha, rel["GDB"], rel["SS"])
			}
		}
	}
}

// TestShapeTable2LPIsOptimal: LP's degree-discrepancy L1 norm lower-bounds
// every GDB variant on the same backbone (Theorem 1).
func TestShapeTable2LPIsOptimal(t *testing.T) {
	ctx := testContext()
	g := ctx.FlickrReduced()
	for _, spanning := range []bool{false, true} {
		lp := proposedVariant(core.MethodLP, core.Absolute, 1, spanning)
		gdbA := proposedVariant(core.MethodGDB, core.Absolute, 1, spanning)
		gdbR := proposedVariant(core.MethodGDB, core.Relative, 1, spanning)
		for _, alpha := range []float64{0.16, 0.32} {
			lpMAE := core.MAEDegreeDiscrepancy(g, mustRun(t, lp, g, alpha, 1), core.Absolute)
			for _, spec := range []MethodSpec{gdbA, gdbR} {
				m := core.MAEDegreeDiscrepancy(g, mustRun(t, spec, g, alpha, 1), core.Absolute)
				if lpMAE > m+1e-9 {
					t.Errorf("spanning=%v α=%v: LP MAE %v above %s MAE %v",
						spanning, alpha, lpMAE, spec.Name, m)
				}
			}
		}
	}
}

// TestShapeTable2GDBnWorst: the k = n rule is the worst variant for degree
// preservation at α ≥ 16% (Table 2's standout row).
func TestShapeTable2GDBnWorst(t *testing.T) {
	ctx := testContext()
	g := ctx.FlickrReduced()
	kn := proposedVariant(core.MethodGDB, core.Absolute, core.KAll, false)
	others := []MethodSpec{
		proposedVariant(core.MethodGDB, core.Absolute, 1, false),
		proposedVariant(core.MethodGDB, core.Absolute, 2, false),
		proposedVariant(core.MethodEMD, core.Absolute, 1, false),
	}
	for _, alpha := range []float64{0.16, 0.32, 0.64} {
		worst := core.MAEDegreeDiscrepancy(g, mustRun(t, kn, g, alpha, 1), core.Absolute)
		for _, spec := range others {
			m := core.MAEDegreeDiscrepancy(g, mustRun(t, spec, g, alpha, 1), core.Absolute)
			if m >= worst {
				t.Errorf("α=%v: %s MAE %v not below GDB_n %v", alpha, spec.Name, m, worst)
			}
		}
	}
}

// TestShapeFig5EntropyKnob: h = 1 must achieve better degree accuracy and
// higher entropy than h = 0 (Figure 5's trade-off).
func TestShapeFig5EntropyKnob(t *testing.T) {
	ctx := testContext()
	g := ctx.FlickrReduced()
	run := func(h float64) *ugraph.Graph {
		out, _, err := core.Sparsify(context.Background(), g, 0.32, core.Options{
			Method: core.MethodGDB, Backbone: core.BackboneSpanning, H: h, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	h0 := run(core.HZero)
	h1 := run(1)
	if m0, m1 := core.MAEDegreeDiscrepancy(g, h0, core.Absolute), core.MAEDegreeDiscrepancy(g, h1, core.Absolute); m1 >= m0 {
		t.Errorf("h=1 MAE %v not below h=0 MAE %v", m1, m0)
	}
	if e0, e1 := h0.Entropy(), h1.Entropy(); e1 <= e0 {
		t.Errorf("h=1 entropy %v not above h=0 entropy %v", e1, e0)
	}
}

// TestShapeFig7BenchmarkErrorGrowsWithDensity: NI's and SS's degree error
// must grow with density while GDB stays far below (Figure 7).
func TestShapeFig7BenchmarkErrorGrowsWithDensity(t *testing.T) {
	ctx := testContext()
	family := ctx.DensityFamily()
	lo, hi := family[0], family[len(family)-1]
	for _, spec := range []MethodSpec{benchmarkNI(), benchmarkSS()} {
		mLo := core.MAEDegreeDiscrepancy(lo.G, mustRun(t, spec, lo.G, 0.16, 1), core.Absolute)
		mHi := core.MAEDegreeDiscrepancy(hi.G, mustRun(t, spec, hi.G, 0.16, 1), core.Absolute)
		if mHi <= mLo {
			t.Errorf("%s: error did not grow with density (%v -> %v)", spec.Name, mLo, mHi)
		}
	}
	gdb := proposedVariant(core.MethodGDB, core.Absolute, 1, false)
	gdbHi := core.MAEDegreeDiscrepancy(hi.G, mustRun(t, gdb, hi.G, 0.16, 1), core.Absolute)
	niHi := core.MAEDegreeDiscrepancy(hi.G, mustRun(t, benchmarkNI(), hi.G, 0.16, 1), core.Absolute)
	if gdbHi >= niHi/2 {
		t.Errorf("at 90%% density GDB MAE %v not well below NI %v", gdbHi, niHi)
	}
}

// TestShapeFig4aKnCrossover: at α = 8% (below the expected edge count) the
// k = n rule is competitive on cut preservation, while for α ≥ 32% it is
// the worst variant (Figure 4(a)'s crossover).
func TestShapeFig4aKnCrossover(t *testing.T) {
	ctx := testContext()
	g := ctx.FlickrReduced()
	s := ctx.Cfg.scale()
	kn := proposedVariant(core.MethodGDB, core.Absolute, core.KAll, false)
	k1 := proposedVariant(core.MethodGDB, core.Absolute, 1, false)
	cutMAE := func(spec MethodSpec, alpha float64) float64 {
		out := mustRun(t, spec, g, alpha, 1)
		rng := rand.New(rand.NewSource(99))
		return core.MAECutDiscrepancy(g, out, s.cutMaxK, s.cutSamplesPerK, rng)
	}
	if knLate, k1Late := cutMAE(kn, 0.64), cutMAE(k1, 0.64); knLate <= k1Late {
		t.Errorf("α=64%%: GDB_n cut MAE %v not above GDB %v", knLate, k1Late)
	}
	// At 8% the ordering flips or at least tightens dramatically.
	knEarly, k1Early := cutMAE(kn, 0.08), cutMAE(k1, 0.08)
	if knEarly > 1.5*k1Early {
		t.Errorf("α=8%%: GDB_n cut MAE %v not competitive with GDB %v", knEarly, k1Early)
	}
}
