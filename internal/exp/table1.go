package exp

import (
	"fmt"
	"io"

	"ugs/internal/ugraph"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: characteristics of datasets",
		Run:   runTable1,
	})
}

func runTable1(w io.Writer, ctx *Context) error {
	t := &table{
		title: "Table 1: characteristics of datasets (synthetic stand-ins)",
		cols:  []string{"dataset", "vertices", "edges", "|E|/|V|", "E[p_e]", "E[d_u]"},
	}
	row := func(name string, g *ugraph.Graph) {
		d := g.ExpectedDegrees()
		var sum float64
		for _, x := range d {
			sum += x
		}
		t.add(name,
			fmt.Sprintf("%d", g.NumVertices()),
			fmt.Sprintf("%d", g.NumEdges()),
			f2(float64(g.NumEdges())/float64(g.NumVertices())),
			f2(g.MeanProb()),
			f2(sum/float64(g.NumVertices())),
		)
	}
	row("Flickr-like", ctx.Flickr())
	row("Twitter-like", ctx.Twitter())
	row("Flickr-reduced", ctx.FlickrReduced())
	for _, di := range ctx.DensityFamily() {
		row(fmt.Sprintf("Synthetic %.0f%%", di.Density*100), di.G)
	}
	return t.fprint(w)
}
