package exp

import (
	"io"

	"ugs/internal/core"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Table 2: MAE of absolute degree discrepancy δA(u), all variants (Flickr reduced)",
		Run:   runTable2,
	})
}

// table2Variants are the twelve rows of Table 2: LP and the GDB/EMD variants
// on random backbones, then the same on spanning (-t) backbones.
func table2Variants() []MethodSpec {
	lp := func(spanning bool) MethodSpec {
		return proposedVariant(core.MethodLP, core.Absolute, 1, spanning)
	}
	lpRand := lp(false)
	lpRand.Name = "LP"
	lpSpan := lp(true)
	lpSpan.Name = "LP-t"
	return []MethodSpec{
		lpRand,
		proposedVariant(core.MethodGDB, core.Absolute, 1, false),
		proposedVariant(core.MethodGDB, core.Relative, 1, false),
		proposedVariant(core.MethodGDB, core.Absolute, 2, false),
		proposedVariant(core.MethodGDB, core.Absolute, core.KAll, false),
		proposedVariant(core.MethodEMD, core.Absolute, 1, false),
		proposedVariant(core.MethodEMD, core.Relative, 1, false),
		lpSpan,
		proposedVariant(core.MethodGDB, core.Absolute, 1, true),
		proposedVariant(core.MethodGDB, core.Relative, 1, true),
		proposedVariant(core.MethodEMD, core.Absolute, 1, true),
		proposedVariant(core.MethodEMD, core.Relative, 1, true),
	}
}

func runTable2(w io.Writer, ctx *Context) error {
	s := ctx.Cfg.scale()
	g := ctx.FlickrReduced()
	t := &table{
		title: "Table 2: MAE of absolute degree discrepancy δA(u) (Flickr reduced)",
		cols:  append([]string{"variant"}, alphaCols(s.alphas)...),
	}
	for _, spec := range table2Variants() {
		row := []string{spec.Name}
		for _, alpha := range s.alphas {
			sparse, err := spec.Run(ctx.Ctx(), g, alpha, ctx.Cfg.Seed)
			if err != nil {
				return err
			}
			row = append(row, e3(core.MAEDegreeDiscrepancy(g, sparse, core.Absolute)))
		}
		t.add(row...)
	}
	return t.fprint(w)
}

func alphaCols(alphas []float64) []string {
	out := make([]string, len(alphas))
	for i, a := range alphas {
		out[i] = f2(a*100) + "%"
	}
	return out
}
