// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section on the synthetic stand-in
// datasets (see DESIGN.md §3 for the substitution rationale). Each
// experiment prints the same rows/series the paper reports; absolute values
// differ (different data, different hardware) but the shapes — method
// orderings, error magnitudes, crossovers — are the reproduction target.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"

	"ugs/internal/gen"
	"ugs/internal/ugraph"
)

// Config selects the experiment scale.
type Config struct {
	// Full switches from CI-scale parameters (seconds per experiment) to
	// paper-scale ones (minutes to hours).
	Full bool
	// Seed drives dataset generation and all randomized steps.
	Seed int64
	// Workers is the Monte-Carlo parallelism (0 = GOMAXPROCS).
	Workers int
	// ScalarQueries forces the Monte-Carlo estimators onto the scalar
	// one-world-per-traversal path instead of the bit-parallel 64-world
	// batch engine (the ablation; results are bit-identical either way).
	ScalarQueries bool
	// Lanes pins the batch-engine world width (64, 128 or 256 lanes).
	// 0 lets the planner choose; results are bit-identical at any width.
	Lanes int
	// FanOut pins the pair-estimator source group size (1 = one traversal
	// per source, the per-source ablation; 2..64 = explicit multi-source
	// groups). 0 lets the planner choose; results are bit-identical at any
	// fan-out.
	FanOut int
	// ConfEps, when > 0, switches the Monte-Carlo query phases to adaptive
	// sequential stopping: sample until every estimate's CI half-width is
	// ≤ ConfEps at confidence 1−ConfDelta (ConfDelta 0 means the 0.05
	// default), capped at the scale's fixed sample budget ×16.
	ConfEps   float64
	ConfDelta float64
	// Ctx, when non-nil, bounds every sparsification run: cancelling it
	// aborts the experiment batch. Nil means context.Background().
	Ctx context.Context
}

// scale bundles every size parameter in one place.
type scale struct {
	flickrN, flickrDeg   int
	twitterN, twitterDeg int
	reducedBase, reduced int
	densityN             int
	alphas               []float64
	densities            []float64
	mcSamples            int
	pairs                int
	varianceRuns         int
	varianceSamples      int
	cutSamplesPerK       int
	cutMaxK              int
}

func (c Config) scale() scale {
	if c.Full {
		return scale{
			flickrN: 2000, flickrDeg: 60,
			twitterN: 2000, twitterDeg: 25,
			reducedBase: 2000, reduced: 800,
			densityN:        500,
			alphas:          []float64{0.08, 0.16, 0.32, 0.64},
			densities:       []float64{0.15, 0.30, 0.50, 0.90},
			mcSamples:       500,
			pairs:           1000,
			varianceRuns:    100,
			varianceSamples: 200,
			cutSamplesPerK:  1000,
			cutMaxK:         40,
		}
	}
	return scale{
		flickrN: 200, flickrDeg: 25,
		twitterN: 220, twitterDeg: 12,
		reducedBase: 400, reduced: 150,
		densityN:        100,
		alphas:          []float64{0.08, 0.16, 0.32, 0.64},
		densities:       []float64{0.15, 0.30, 0.50, 0.90},
		mcSamples:       40,
		pairs:           100,
		varianceRuns:    8,
		varianceSamples: 40,
		cutSamplesPerK:  100,
		cutMaxK:         10,
	}
}

// Context carries the configuration and lazily built, cached datasets shared
// across experiments.
type Context struct {
	Cfg Config

	mu       sync.Mutex
	cache    map[string]*ugraph.Graph
	obsCache map[string]observations
}

// NewContext returns a fresh experiment context.
func NewContext(cfg Config) *Context {
	return &Context{Cfg: cfg, cache: make(map[string]*ugraph.Graph)}
}

// Ctx returns the cancellation context experiments run under.
func (c *Context) Ctx() context.Context {
	if c.Cfg.Ctx != nil {
		return c.Cfg.Ctx
	}
	return context.Background()
}

func (c *Context) cached(key string, build func() *ugraph.Graph) *ugraph.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.cache[key]; ok {
		return g
	}
	g := build()
	c.cache[key] = g
	return g
}

// Flickr returns the Flickr-like dataset (dense, E[p] ≈ 0.09).
func (c *Context) Flickr() *ugraph.Graph {
	s := c.Cfg.scale()
	return c.cached("flickr", func() *ugraph.Graph {
		g, err := gen.Social(gen.SocialConfig{
			N: s.flickrN, AvgDegree: float64(s.flickrDeg), MeanProb: 0.09, Seed: c.Cfg.Seed + 1,
		})
		if err != nil {
			panic(err)
		}
		return g
	})
}

// Twitter returns the Twitter-like dataset (sparser, E[p] ≈ 0.15).
func (c *Context) Twitter() *ugraph.Graph {
	s := c.Cfg.scale()
	return c.cached("twitter", func() *ugraph.Graph {
		g, err := gen.Social(gen.SocialConfig{
			N: s.twitterN, AvgDegree: float64(s.twitterDeg), MeanProb: 0.15, Seed: c.Cfg.Seed + 2,
		})
		if err != nil {
			panic(err)
		}
		return g
	})
}

// FlickrReduced returns the Forest-Fire sample of the Flickr-like graph
// (the paper's "Flickr reduced" used for Table 2 and Figures 4–5, where LP
// must stay tractable).
func (c *Context) FlickrReduced() *ugraph.Graph {
	s := c.Cfg.scale()
	return c.cached("flickr-reduced", func() *ugraph.Graph {
		base, err := gen.Social(gen.SocialConfig{
			N: s.reducedBase, AvgDegree: float64(s.flickrDeg), MeanProb: 0.09, Seed: c.Cfg.Seed + 3,
		})
		if err != nil {
			panic(err)
		}
		sub, _, err := gen.ForestFire(base, s.reduced, 0.6, c.Cfg.Seed+4)
		if err != nil {
			panic(err)
		}
		lc, _, err := sub.LargestComponent()
		if err != nil {
			panic(err)
		}
		return lc
	})
}

// DensityFamily returns the synthetic densification datasets of Table 1:
// an induced base graph plus random edges until 15/30/50/90% of the
// complete graph.
func (c *Context) DensityFamily() []DensityInstance {
	s := c.Cfg.scale()
	out := make([]DensityInstance, len(s.densities))
	for i, d := range s.densities {
		d := d
		g := c.cached(fmt.Sprintf("density-%g", d), func() *ugraph.Graph {
			base, err := gen.Social(gen.SocialConfig{
				N: s.densityN, AvgDegree: 10, MeanProb: 0.09, Seed: c.Cfg.Seed + 5,
			})
			if err != nil {
				panic(err)
			}
			dg, err := gen.Densify(base, d, 0.09, c.Cfg.Seed+6)
			if err != nil {
				panic(err)
			}
			return dg
		})
		out[i] = DensityInstance{Density: d, G: g}
	}
	return out
}

// DensityInstance is one member of the densification family.
type DensityInstance struct {
	Density float64 // fraction of the complete graph
	G       *ugraph.Graph
}

// Experiment is a runnable reproduction of one table or figure.
type Experiment struct {
	ID    string // e.g. "table2", "fig10"
	Title string
	Run   func(w io.Writer, ctx *Context) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment, ordered by ID registration.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up by its identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// table renders an aligned text table.
type table struct {
	title string
	cols  []string
	rows  [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, c := range t.cols {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c)
	}
	fmt.Fprintln(tw)
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }
func e3(x float64) string { return fmt.Sprintf("%.3e", x) }
