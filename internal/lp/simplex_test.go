package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	checkFeasible(t, p, s.X)
	return s
}

func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	const eps = 1e-6
	for j, xj := range x {
		if xj < -eps || xj > p.Upper[j]+eps {
			t.Errorf("x[%d] = %v violates bounds [0,%v]", j, xj, p.Upper[j])
		}
	}
	for i, row := range p.A {
		lhs := 0.0
		for j, a := range row {
			lhs += a * x[j]
		}
		if lhs > p.B[i]+eps {
			t.Errorf("constraint %d violated: %v > %v", i, lhs, p.B[i])
		}
	}
}

func TestKnownLPs(t *testing.T) {
	cases := []struct {
		name    string
		p       Problem
		wantObj float64
	}{
		{
			name: "shared capacity",
			p: Problem{
				C:     []float64{1, 1},
				A:     [][]float64{{1, 1}},
				B:     []float64{1.5},
				Upper: []float64{1, 1},
			},
			wantObj: 1.5,
		},
		{
			name: "weighted",
			p: Problem{
				C:     []float64{2, 1},
				A:     [][]float64{{1, 2}},
				B:     []float64{2},
				Upper: []float64{1, 1},
			},
			wantObj: 2.5, // x=1, y=0.5
		},
		{
			name: "all at upper bound",
			p: Problem{
				C:     []float64{1, 1, 1},
				A:     [][]float64{{1, 1, 1}},
				B:     []float64{10},
				Upper: []float64{1, 1, 1},
			},
			wantObj: 3,
		},
		{
			name: "binding zero rhs",
			p: Problem{
				C:     []float64{1, 1},
				A:     [][]float64{{1, 0}, {0, 1}},
				B:     []float64{0, 0.5},
				Upper: []float64{1, 1},
			},
			wantObj: 0.5,
		},
		{
			name: "negative costs ignored",
			p: Problem{
				C:     []float64{-1, 2},
				A:     [][]float64{{1, 1}},
				B:     []float64{1},
				Upper: []float64{1, 1},
			},
			wantObj: 2, // y=1, x=0
		},
		{
			name: "no constraints bind",
			p: Problem{
				C:     []float64{3, 4},
				A:     [][]float64{{1, 1}},
				B:     []float64{100},
				Upper: []float64{2, 2},
			},
			wantObj: 14,
		},
		{
			name: "zero upper bound variable",
			p: Problem{
				C:     []float64{5, 1},
				A:     [][]float64{{1, 1}},
				B:     []float64{3},
				Upper: []float64{0, 1},
			},
			wantObj: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := solveOK(t, &tc.p)
			if math.Abs(s.Objective-tc.wantObj) > 1e-6 {
				t.Errorf("objective = %v, want %v (x=%v)", s.Objective, tc.wantObj, s.X)
			}
		})
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		C:     []float64{1},
		A:     [][]float64{{-1}},
		B:     []float64{1},
		Upper: []float64{math.Inf(1)},
	}
	if _, err := Solve(p); err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Solve(&Problem{
		C: []float64{1}, A: [][]float64{{1}}, B: []float64{-1}, Upper: []float64{1},
	}); err == nil {
		t.Error("negative b accepted")
	}
	if _, err := Solve(&Problem{
		C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, Upper: []float64{1},
	}); err == nil {
		t.Error("ragged A accepted")
	}
	if _, err := Solve(&Problem{
		C: []float64{1}, A: [][]float64{{1}}, B: []float64{1}, Upper: []float64{-1},
	}); err == nil {
		t.Error("negative upper bound accepted")
	}
	if _, err := Solve(&Problem{
		C: []float64{1, 1}, A: [][]float64{{1}}, B: []float64{1}, Upper: []float64{1, 1},
	}); err == nil {
		t.Error("shape mismatch accepted")
	}
}

// bruteForceOpt enumerates candidate vertices of the feasible polytope
// {Ax ≤ b, 0 ≤ x ≤ u} by intersecting every choice of n active hyperplanes
// (constraint rows, lower bounds, upper bounds) and returns the best
// feasible objective. Exponential; only for n ≤ 3, m small.
type plane struct {
	a []float64
	b float64
}

func bruteForceOpt(p *Problem) float64 {
	n := len(p.C)
	var planes []plane
	for i, row := range p.A {
		planes = append(planes, plane{row, p.B[i]})
	}
	for j := 0; j < n; j++ {
		lo := make([]float64, n)
		lo[j] = 1
		planes = append(planes, plane{lo, 0})
		if !math.IsInf(p.Upper[j], 1) {
			hi := make([]float64, n)
			hi[j] = 1
			planes = append(planes, plane{hi, p.Upper[j]})
		}
	}
	best := math.Inf(-1)
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(planes, idx, n)
			if !ok {
				return
			}
			// Feasibility check.
			for j := 0; j < n; j++ {
				if x[j] < -1e-9 || x[j] > p.Upper[j]+1e-9 {
					return
				}
			}
			for i, row := range p.A {
				lhs := 0.0
				for j := range row {
					lhs += row[j] * x[j]
				}
				if lhs > p.B[i]+1e-9 {
					return
				}
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += p.C[j] * x[j]
			}
			if obj > best {
				best = obj
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

// solveSquare solves the n×n system given by the selected planes via
// Gaussian elimination with partial pivoting.
func solveSquare(planes []plane, idx []int, n int) ([]float64, bool) {
	m := make([][]float64, n)
	for r := 0; r < n; r++ {
		row := make([]float64, n+1)
		copy(row, planes[idx[r]].a)
		row[n] = planes[idx[r]].b
		m[r] = row
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, false // singular
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for k := col; k <= n; k++ {
			m[col][k] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col]
			for k := col; k <= n; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	x := make([]float64, n)
	for r := 0; r < n; r++ {
		x[r] = m[r][n]
	}
	return x, true
}

func TestSolveAgainstVertexEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(3)
		p := &Problem{
			C:     make([]float64, n),
			A:     make([][]float64, m),
			B:     make([]float64, m),
			Upper: make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.C[j] = rng.NormFloat64()
			p.Upper[j] = rng.Float64() * 2
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				// Mostly non-negative coefficients keep problems bounded and
				// mirror the incidence-matrix structure of the target LP.
				p.A[i][j] = rng.Float64()
			}
			p.B[i] = rng.Float64() * 2
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		want := bruteForceOpt(p)
		return math.Abs(s.Objective-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestBMatchingIdentity: with the backbone equal to the full graph, the
// probability-assignment LP has optimum Σ p_e (Lemma 1 corollary: the
// original probabilities are optimal and the per-vertex constraints cap the
// doubled sum at Σ d_u = 2 Σ p_e).
func TestBMatchingIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, m = 12, 30
	type edge struct{ u, v int }
	var edges []edge
	seen := map[[2]int]bool{}
	for len(edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, edge{u, v})
	}
	prob := make([]float64, m)
	deg := make([]float64, n)
	for i, e := range edges {
		prob[i] = rng.Float64()*0.9 + 0.05
		deg[e.u] += prob[i]
		deg[e.v] += prob[i]
	}
	p := &Problem{
		C:     make([]float64, m),
		A:     make([][]float64, n),
		B:     deg,
		Upper: make([]float64, m),
	}
	total := 0.0
	for i := range prob {
		p.C[i] = 1
		p.Upper[i] = 1
		total += prob[i]
	}
	for u := 0; u < n; u++ {
		p.A[u] = make([]float64, m)
	}
	for i, e := range edges {
		p.A[e.u][i] = 1
		p.A[e.v][i] = 1
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-total) > 1e-6 {
		t.Errorf("b-matching objective = %v, want Σp = %v", s.Objective, total)
	}
}
