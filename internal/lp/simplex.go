// Package lp implements a dense primal simplex solver for linear programs
// with bounded variables:
//
//	maximize    c·x
//	subject to  A·x ≤ b,   0 ≤ x ≤ u,   b ≥ 0
//
// This is exactly the shape of the optimal probability-assignment LP of the
// paper (Theorem 1): maximize Σ p'_e subject to A_b·p' ≤ d and p' ∈ [0,1],
// where A_b is the incidence matrix of the backbone graph and d the expected
// degree vector of the original graph.
//
// The solver handles variable upper bounds natively (nonbasic variables rest
// at either bound; bound flips avoid pivots), uses Dantzig pricing with an
// automatic switch to Bland's rule under prolonged degeneracy, and requires
// b ≥ 0 so that x = 0 is an initial basic feasible solution — a property the
// probability-assignment LP always satisfies. Passing a negative b entry
// returns ErrInfeasibleStart.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Errors returned by Solve.
var (
	ErrInfeasibleStart = errors.New("lp: b has a negative entry; x = 0 is not feasible")
	ErrUnbounded       = errors.New("lp: objective is unbounded")
	ErrIterationLimit  = errors.New("lp: iteration limit exceeded")
	ErrBadShape        = errors.New("lp: inconsistent problem dimensions")
)

// Problem is a bounded-variable LP in the canonical form documented at the
// package level. A is dense, row-major: A[i] is the i-th constraint row and
// must have len(A[i]) == len(C). Upper[j] may be math.Inf(1) for an
// unbounded-above variable.
type Problem struct {
	C     []float64   // objective coefficients, length n
	A     [][]float64 // m×n constraint matrix
	B     []float64   // right-hand side, length m, non-negative
	Upper []float64   // variable upper bounds, length n
}

// Solution is an optimal solution of a Problem.
type Solution struct {
	X          []float64 // optimal variable values, length n
	Objective  float64   // c·x at the optimum
	Iterations int       // simplex pivots + bound flips performed
}

const (
	tol  = 1e-9 // general feasibility/pricing tolerance
	tiny = 1e-12
)

type varStatus uint8

const (
	atLower varStatus = iota
	atUpper
	inBasis
)

// Solve optimizes the problem with the primal simplex method. The iteration
// limit scales with the problem size; ErrIterationLimit indicates a likely
// numerical cycling pathology rather than a valid unbounded/infeasible
// verdict.
func Solve(p *Problem) (*Solution, error) {
	return SolveContext(context.Background(), p, nil)
}

// checkEvery is how many simplex iterations pass between context checks and
// progress reports: frequent enough that cancellation is prompt even on
// large tableaus, rare enough to stay off the pivot hot path.
const checkEvery = 64

// SolveContext is Solve with cooperative cancellation and progress
// reporting: every checkEvery iterations the context is polled — returning
// ctx.Err() if it is done — and progress (when non-nil) receives the
// iteration count.
func SolveContext(ctx context.Context, p *Problem, progress func(iter int)) (*Solution, error) {
	m, n := len(p.B), len(p.C)
	if len(p.A) != m || len(p.Upper) != n {
		return nil, ErrBadShape
	}
	for i, row := range p.A {
		if len(row) != n {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrBadShape, i, len(row), n)
		}
	}
	for i, bi := range p.B {
		if bi < -tol {
			return nil, fmt.Errorf("%w: b[%d] = %v", ErrInfeasibleStart, i, bi)
		}
	}
	for j, uj := range p.Upper {
		if uj < 0 || math.IsNaN(uj) {
			return nil, fmt.Errorf("%w: upper[%d] = %v", ErrBadShape, j, uj)
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := newState(p)
	maxIter := 200 * (m + s.total)
	if maxIter < 2000 {
		maxIter = 2000
	}
	degenerate := 0
	bland := false

	for iter := 0; iter < maxIter; iter++ {
		if iter%checkEvery == 0 && iter > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if progress != nil {
				progress(iter)
			}
		}
		j, sigma := s.chooseEntering(bland)
		if j < 0 {
			return s.solution(iter), nil // optimal
		}
		step, leaving, leavingToUpper := s.ratioTest(j, sigma, bland)
		if math.IsInf(step, 1) {
			return nil, ErrUnbounded
		}
		if step < tiny {
			degenerate++
			if degenerate > 2*(m+s.total) {
				bland = true // anti-cycling fallback
			}
		} else {
			degenerate = 0
		}
		s.applyStep(j, sigma, step, leaving, leavingToUpper)
	}
	return nil, ErrIterationLimit
}

// state holds the simplex working data. Variables 0..n-1 are structural;
// n..n+m-1 are slacks for the ≤ constraints.
type state struct {
	m, n, total int
	tab         [][]float64 // m × total current tableau (B⁻¹[A|I])
	red         []float64   // reduced costs, length total
	bval        []float64   // current values of basic variables, per row
	basic       []int       // basic[i] = variable basic in row i
	status      []varStatus // per variable
	upper       []float64   // per variable (slacks: +Inf)
	cost        []float64   // per variable (slacks: 0)
}

func newState(p *Problem) *state {
	m, n := len(p.B), len(p.C)
	total := n + m
	s := &state{
		m: m, n: n, total: total,
		tab:    make([][]float64, m),
		red:    make([]float64, total),
		bval:   make([]float64, m),
		basic:  make([]int, m),
		status: make([]varStatus, total),
		upper:  make([]float64, total),
		cost:   make([]float64, total),
	}
	for i := 0; i < m; i++ {
		row := make([]float64, total)
		copy(row, p.A[i])
		row[n+i] = 1
		s.tab[i] = row
		s.bval[i] = p.B[i]
		s.basic[i] = n + i
		s.status[n+i] = inBasis
	}
	for j := 0; j < n; j++ {
		s.status[j] = atLower
		s.upper[j] = p.Upper[j]
		s.cost[j] = p.C[j]
		s.red[j] = p.C[j] // c_B = 0 initially (slack basis)
	}
	for j := n; j < total; j++ {
		s.upper[j] = math.Inf(1)
	}
	return s
}

// chooseEntering returns the entering variable and its direction sign
// (+1: increase from lower bound, −1: decrease from upper bound), or (−1, 0)
// at optimality.
func (s *state) chooseEntering(bland bool) (j int, sigma float64) {
	bestJ, bestSigma, bestScore := -1, 0.0, tol
	for v := 0; v < s.total; v++ {
		var score, sg float64
		switch s.status[v] {
		case atLower:
			score, sg = s.red[v], 1
		case atUpper:
			score, sg = -s.red[v], -1
		default:
			continue
		}
		if score <= tol {
			continue
		}
		if bland {
			return v, sg // first improving index
		}
		if score > bestScore {
			bestJ, bestSigma, bestScore = v, sg, score
		}
	}
	return bestJ, bestSigma
}

// ratioTest determines how far the entering variable j can move in direction
// sigma. It returns the step length, the leaving row (−1 for a bound flip of
// j itself), and whether the leaving basic variable exits at its upper
// bound.
func (s *state) ratioTest(j int, sigma float64, bland bool) (step float64, leaving int, leavingToUpper bool) {
	step = s.upper[j] // bound-flip distance (lower→upper or upper→lower)
	leaving = -1
	for i := 0; i < s.m; i++ {
		coef := sigma * s.tab[i][j]
		var limit float64
		var toUpper bool
		switch {
		case coef > tol:
			limit = s.bval[i] / coef // basic variable drops to 0
		case coef < -tol:
			ub := s.upper[s.basic[i]]
			if math.IsInf(ub, 1) {
				continue
			}
			limit = (ub - s.bval[i]) / -coef // basic variable rises to ub
			toUpper = true
		default:
			continue
		}
		if limit < 0 {
			limit = 0 // numerical guard: never step backwards
		}
		if limit < step-tiny || (bland && leaving >= 0 && math.Abs(limit-step) <= tiny && s.basic[i] < s.basic[leaving]) {
			step, leaving, leavingToUpper = limit, i, toUpper
		}
	}
	return step, leaving, leavingToUpper
}

// applyStep moves the entering variable by step·sigma, updating basic values
// and, unless the move is a pure bound flip, pivoting the tableau.
func (s *state) applyStep(j int, sigma, step float64, leaving int, leavingToUpper bool) {
	for i := 0; i < s.m; i++ {
		s.bval[i] -= sigma * step * s.tab[i][j]
	}
	if leaving < 0 {
		// Bound flip: j swaps bounds without entering the basis.
		if s.status[j] == atLower {
			s.status[j] = atUpper
		} else {
			s.status[j] = atLower
		}
		return
	}

	// Entering variable's new value.
	enterVal := sigma * step
	if s.status[j] == atUpper {
		enterVal += s.upper[j]
	}

	lv := s.basic[leaving]
	if leavingToUpper {
		s.status[lv] = atUpper
	} else {
		s.status[lv] = atLower
	}

	// Pivot row normalization.
	prow := s.tab[leaving]
	piv := prow[j]
	inv := 1 / piv
	for k := range prow {
		prow[k] *= inv
	}
	for i := 0; i < s.m; i++ {
		if i == leaving {
			continue
		}
		f := s.tab[i][j]
		if f == 0 {
			continue
		}
		row := s.tab[i]
		for k := range row {
			row[k] -= f * prow[k]
		}
	}
	rf := s.red[j]
	if rf != 0 {
		for k := range s.red {
			s.red[k] -= rf * prow[k]
		}
	}

	s.basic[leaving] = j
	s.status[j] = inBasis
	s.bval[leaving] = enterVal
}

// solution extracts variable values and recomputes the objective from
// scratch for accuracy.
func (s *state) solution(iters int) *Solution {
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if s.status[j] == atUpper {
			x[j] = s.upper[j]
		}
	}
	for i, v := range s.basic {
		if v < s.n {
			x[v] = s.bval[i]
		}
	}
	obj := 0.0
	for j := 0; j < s.n; j++ {
		// Clamp small negative noise from pivoting.
		if x[j] < 0 && x[j] > -1e-7 {
			x[j] = 0
		}
		if ub := s.upper[j]; x[j] > ub && x[j] < ub+1e-7 {
			x[j] = ub
		}
		obj += s.cost[j] * x[j]
	}
	return &Solution{X: x, Objective: obj, Iterations: iters}
}
