//go:build !unix

package ugsb

import (
	"io"
	"os"
)

// Fallback for platforms without syscall.Mmap: the "mapping" is a heap
// buffer holding the file contents. Readers lose demand paging but keep
// identical semantics; writers buffer in memory and flush on release.

func mmapRead(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

func mmapWrite(f *os.File, size int64) ([]byte, func() error, error) {
	if err := f.Truncate(size); err != nil {
		return nil, nil, err
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, nil, err
	}
	release := func() error {
		_, err := f.WriteAt(data, 0)
		return err
	}
	return data, release, nil
}
