package ugsb

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen feeds arbitrary bytes to the deep-validating Open path. The
// contract under hostile input is: an error, never a panic, never an
// allocation driven by unvalidated header fields (allocations are bounded
// by the real file size), and any file that passes must honor the
// structural invariants the accessors rely on.
func FuzzOpen(f *testing.F) {
	// Seeds: real files from the streaming writer (valid), the committed
	// corpus sample, and a few truncations/mutations of a valid file.
	dir := f.TempDir()
	mk := func(name string, n int, edges [][3]float64) []byte {
		path := filepath.Join(dir, name)
		w, err := Create(path, n)
		if err != nil {
			f.Fatal(err)
		}
		for _, e := range edges {
			if err := w.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Finalize(); err != nil {
			f.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}

	valid := mk("v.ugsb", 5, [][3]float64{{0, 1, 0.5}, {1, 2, 0.25}, {3, 4, 1}})
	f.Add(valid)
	f.Add(mk("e.ugsb", 2, nil)) // no edges
	f.Add(valid[:HeaderSize])   // header only
	f.Add(valid[:40])           // short header
	trunc := append([]byte(nil), valid...)
	trunc[0] = 'X'
	f.Add(trunc) // bad magic
	big := append([]byte(nil), valid...)
	big[16] = 0xFF // absurd vertex count, header CRC broken
	f.Add(big)

	if sample, err := os.ReadFile(filepath.Join("..", "..", "examples", "corpus", "sample-social.ugsb")); err == nil {
		f.Add(sample)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.ugsb")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		file, err := Open(path)
		if err != nil {
			return // rejected: fine
		}
		defer file.Close()

		// Accepted: every invariant the mapped-graph layer assumes must
		// hold, so walking the sections in bounds cannot fault.
		h := file.Header()
		n, m := file.NumVertices(), file.NumEdges()
		if uint64(n) != h.N || uint64(m) != h.M {
			t.Fatalf("count mismatch: %d/%d vs header %d/%d", n, m, h.N, h.M)
		}
		if len(file.EdgeBytes()) != m*EdgeRecordSize {
			t.Fatalf("edge section %d bytes for %d edges", len(file.EdgeBytes()), m)
		}
		if len(file.ArcOffBytes()) != (n+1)*ArcOffSize {
			t.Fatalf("arcOff section %d bytes for %d vertices", len(file.ArcOffBytes()), n)
		}
		if len(file.ArcBytes()) != 2*m*ArcRecordSize {
			t.Fatalf("arc section %d bytes for %d edges", len(file.ArcBytes()), m)
		}
		eb := file.EdgeBytes()
		for i := 0; i < m; i++ {
			u, v, p := GetEdge(eb[i*EdgeRecordSize:])
			if u < 0 || v <= u || v >= int64(n) {
				t.Fatalf("edge %d endpoints (%d,%d) broke normalization", i, u, v)
			}
			if !(p >= 0 && p <= 1) {
				t.Fatalf("edge %d probability %v", i, p)
			}
		}
	})
}
