// Package ugsb defines the .ugsb on-disk binary format for uncertain
// graphs: a versioned, little-endian serialization of the exact CSR
// representation internal/ugraph keeps in memory, laid out so that a
// memory-mapped file IS the graph — opening a .ugsb file is a map plus
// header validation, with zero parsing and near-zero heap.
//
// # Layout (version 1)
//
// All integers are little-endian. The file is a fixed 80-byte header
// followed by three 8-byte-aligned sections:
//
//	offset  size      field
//	     0     4      magic "UGSB"
//	     4     4      version (uint32, currently 1)
//	     8     8      flags (uint64, must be 0 in version 1)
//	    16     8      n — number of vertices (uint64)
//	    24     8      m — number of edges (uint64)
//	    32     8      edges section offset (uint64, = 80)
//	    40     8      arc-offset section offset (uint64)
//	    48     8      arcs section offset (uint64)
//	    56     8      total file size (uint64)
//	    64     4      CRC-32 (IEEE) of all section bytes [edgesOff, fileSize)
//	    68     4      reserved (0)
//	    72     4      CRC-32 (IEEE) of header bytes [0, 72)
//	    76     4      reserved (0)
//
//	edges   section: m × 24-byte records {u int64, v int64, p float64}
//	arcOff  section: (n+1) × 4-byte int32 CSR row offsets, zero-padded to 8
//	arcs    section: 2m × 16-byte records {to int64, id int64}
//
// Edge records are normalized (u < v) and ordered by edge identifier; the
// arcs section is the counting-sort CSR adjacency over those identifiers,
// exactly as ugraph.Builder produces it. Record fields are 64-bit so that
// on little-endian 64-bit platforms the mapped sections alias directly to
// []ugraph.Edge / []ugraph.Arc / []int32 without copying; other platforms
// decode the same bytes portably.
//
// Probabilities may be exactly 0 (a sparsifier's discarded edge), unlike
// the text format, making the binary encoding a lossless serialization of
// any in-memory graph.
package ugsb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	// Magic starts every .ugsb file.
	Magic = "UGSB"
	// Version is the current format version.
	Version = 1
	// HeaderSize is the fixed byte length of the header.
	HeaderSize = 80

	// EdgeRecordSize is the byte length of one edge record {u, v, p}.
	EdgeRecordSize = 24
	// ArcRecordSize is the byte length of one arc record {to, id}.
	ArcRecordSize = 16
	// ArcOffSize is the byte length of one CSR row offset (int32).
	ArcOffSize = 4

	// MaxCounts bounds the vertex and edge counts a header may declare:
	// CSR row offsets are int32 and count 2m arc records, so 2m (and, for
	// symmetry, n) must stay below 2^31.
	MaxCounts = 1 << 30
)

// Header is the decoded fixed-size file header.
type Header struct {
	Version   uint32
	Flags     uint64
	N, M      uint64
	EdgesOff  uint64
	ArcOffOff uint64
	ArcsOff   uint64
	FileSize  uint64
	CRCData   uint32
}

// Layout holds the section offsets and total size implied by (n, m).
type Layout struct {
	EdgesOff  uint64
	ArcOffOff uint64
	ArcsOff   uint64
	FileSize  uint64
}

func align8(x uint64) uint64 { return (x + 7) &^ 7 }

// LayoutFor computes the canonical section layout for a graph with n
// vertices and m edges, rejecting counts outside the format's limits.
func LayoutFor(n, m uint64) (Layout, error) {
	if n > MaxCounts || m > MaxCounts {
		return Layout{}, fmt.Errorf("ugsb: counts n=%d m=%d exceed format limit %d", n, m, MaxCounts)
	}
	var l Layout
	l.EdgesOff = HeaderSize
	l.ArcOffOff = align8(l.EdgesOff + m*EdgeRecordSize)
	l.ArcsOff = align8(l.ArcOffOff + (n+1)*ArcOffSize)
	l.FileSize = l.ArcsOff + 2*m*ArcRecordSize
	return l, nil
}

// EncodeHeader serializes h into dst, which must be at least HeaderSize
// bytes. The header CRC is computed here; h.CRCData must already be set.
func EncodeHeader(dst []byte, h Header) {
	_ = dst[:HeaderSize]
	copy(dst[0:4], Magic)
	binary.LittleEndian.PutUint32(dst[4:8], h.Version)
	binary.LittleEndian.PutUint64(dst[8:16], h.Flags)
	binary.LittleEndian.PutUint64(dst[16:24], h.N)
	binary.LittleEndian.PutUint64(dst[24:32], h.M)
	binary.LittleEndian.PutUint64(dst[32:40], h.EdgesOff)
	binary.LittleEndian.PutUint64(dst[40:48], h.ArcOffOff)
	binary.LittleEndian.PutUint64(dst[48:56], h.ArcsOff)
	binary.LittleEndian.PutUint64(dst[56:64], h.FileSize)
	binary.LittleEndian.PutUint32(dst[64:68], h.CRCData)
	binary.LittleEndian.PutUint32(dst[68:72], 0)
	binary.LittleEndian.PutUint32(dst[72:76], crc32.ChecksumIEEE(dst[0:72]))
	binary.LittleEndian.PutUint32(dst[76:80], 0)
}

// DecodeHeader parses and validates the fixed header: magic, version,
// flags, header CRC, count limits, and that the section offsets match the
// canonical layout for (n, m) and the actual file size. It does not touch
// section bytes.
func DecodeHeader(data []byte) (Header, error) {
	if len(data) < HeaderSize {
		return Header{}, fmt.Errorf("ugsb: file too short for header: %d bytes", len(data))
	}
	if string(data[0:4]) != Magic {
		return Header{}, fmt.Errorf("ugsb: bad magic %q", data[0:4])
	}
	var h Header
	h.Version = binary.LittleEndian.Uint32(data[4:8])
	if h.Version != Version {
		return Header{}, fmt.Errorf("ugsb: unsupported version %d (want %d)", h.Version, Version)
	}
	if got, want := binary.LittleEndian.Uint32(data[72:76]), crc32.ChecksumIEEE(data[0:72]); got != want {
		return Header{}, fmt.Errorf("ugsb: header checksum mismatch: %08x != %08x", got, want)
	}
	h.Flags = binary.LittleEndian.Uint64(data[8:16])
	if h.Flags != 0 {
		return Header{}, fmt.Errorf("ugsb: unknown flags %#x", h.Flags)
	}
	h.N = binary.LittleEndian.Uint64(data[16:24])
	h.M = binary.LittleEndian.Uint64(data[24:32])
	h.EdgesOff = binary.LittleEndian.Uint64(data[32:40])
	h.ArcOffOff = binary.LittleEndian.Uint64(data[40:48])
	h.ArcsOff = binary.LittleEndian.Uint64(data[48:56])
	h.FileSize = binary.LittleEndian.Uint64(data[56:64])
	h.CRCData = binary.LittleEndian.Uint32(data[64:68])

	l, err := LayoutFor(h.N, h.M)
	if err != nil {
		return Header{}, err
	}
	if h.EdgesOff != l.EdgesOff || h.ArcOffOff != l.ArcOffOff || h.ArcsOff != l.ArcsOff || h.FileSize != l.FileSize {
		return Header{}, fmt.Errorf("ugsb: section offsets do not match canonical layout for n=%d m=%d", h.N, h.M)
	}
	if h.FileSize != uint64(len(data)) {
		return Header{}, fmt.Errorf("ugsb: header declares %d bytes, file has %d", h.FileSize, len(data))
	}
	return h, nil
}

// PutEdge encodes one edge record into b.
func PutEdge(b []byte, u, v int64, p float64) {
	_ = b[:EdgeRecordSize]
	binary.LittleEndian.PutUint64(b[0:8], uint64(u))
	binary.LittleEndian.PutUint64(b[8:16], uint64(v))
	binary.LittleEndian.PutUint64(b[16:24], math.Float64bits(p))
}

// GetEdge decodes one edge record from b.
func GetEdge(b []byte) (u, v int64, p float64) {
	_ = b[:EdgeRecordSize]
	u = int64(binary.LittleEndian.Uint64(b[0:8]))
	v = int64(binary.LittleEndian.Uint64(b[8:16]))
	p = math.Float64frombits(binary.LittleEndian.Uint64(b[16:24]))
	return
}

// PutArc encodes one arc record into b.
func PutArc(b []byte, to, id int64) {
	_ = b[:ArcRecordSize]
	binary.LittleEndian.PutUint64(b[0:8], uint64(to))
	binary.LittleEndian.PutUint64(b[8:16], uint64(id))
}

// GetArc decodes one arc record from b.
func GetArc(b []byte) (to, id int64) {
	_ = b[:ArcRecordSize]
	to = int64(binary.LittleEndian.Uint64(b[0:8]))
	id = int64(binary.LittleEndian.Uint64(b[8:16]))
	return
}

// validateSections deep-checks the section bytes of a decoded header:
// the data CRC, CSR row-offset monotonicity and bounds, edge-record
// normalization and probability ranges, and arc-record bounds. It reads
// every mapped byte once, sequentially, and allocates nothing — the cost
// is a memory-bandwidth scan, not a parse.
func validateSections(data []byte, h Header) error {
	if got := crc32.ChecksumIEEE(data[h.EdgesOff:h.FileSize]); got != h.CRCData {
		return fmt.Errorf("ugsb: data checksum mismatch: %08x != %08x", got, h.CRCData)
	}
	n, m := int64(h.N), int64(h.M)

	edges := data[h.EdgesOff : h.EdgesOff+h.M*EdgeRecordSize]
	for i := int64(0); i < m; i++ {
		u, v, p := GetEdge(edges[i*EdgeRecordSize:])
		if u < 0 || v >= n || u >= v {
			return fmt.Errorf("ugsb: edge %d endpoints (%d,%d) not normalized within [0,%d)", i, u, v, n)
		}
		if !(p >= 0 && p <= 1) { // rejects NaN too
			return fmt.Errorf("ugsb: edge %d probability %v outside [0,1]", i, p)
		}
	}

	off := data[h.ArcOffOff : h.ArcOffOff+(h.N+1)*ArcOffSize]
	prev := int64(0)
	if first := int64(int32(binary.LittleEndian.Uint32(off[0:4]))); first != 0 {
		return fmt.Errorf("ugsb: arc offset table starts at %d, want 0", first)
	}
	for i := int64(1); i <= n; i++ {
		cur := int64(int32(binary.LittleEndian.Uint32(off[i*ArcOffSize:])))
		if cur < prev {
			return fmt.Errorf("ugsb: arc offset table not monotone at vertex %d: %d < %d", i, cur, prev)
		}
		prev = cur
	}
	if prev != 2*m {
		return fmt.Errorf("ugsb: arc offset table ends at %d, want 2m=%d", prev, 2*m)
	}
	// Padding between arcOff and arcs must be zero (it is covered by the
	// CRC, but reject structurally so trusted-open files written by other
	// tools stay canonical).
	for _, b := range data[h.ArcOffOff+(h.N+1)*ArcOffSize : h.ArcsOff] {
		if b != 0 {
			return fmt.Errorf("ugsb: nonzero section padding")
		}
	}

	arcs := data[h.ArcsOff:h.FileSize]
	for i := int64(0); i < 2*m; i++ {
		to, id := GetArc(arcs[i*ArcRecordSize:])
		if to < 0 || to >= n {
			return fmt.Errorf("ugsb: arc %d target %d outside [0,%d)", i, to, n)
		}
		if id < 0 || id >= m {
			return fmt.Errorf("ugsb: arc %d edge id %d outside [0,%d)", i, id, m)
		}
	}
	return nil
}
