package ugsb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Writer streams a .ugsb file without materializing the graph: edge
// records are appended to the file as they arrive, and Finalize builds
// the CSR adjacency by scattering arc records directly into the mapped
// output — heap usage is O(n) (one int32 degree counter per vertex), not
// O(m), so million-edge corpora can be generated without a Builder.
//
// The caller must not add the same undirected edge twice; the writer does
// not keep the O(m) index a duplicate check would need. (Open's deep
// validation does not detect duplicates either — they are semantically
// parallel edges, not a memory-safety hazard.)
type Writer struct {
	f    *os.File
	bw   *bufio.Writer
	n    int
	m    int
	deg  []int32
	rec  [EdgeRecordSize]byte
	done bool
}

// Create starts a .ugsb file for a graph with n vertices.
func Create(path string, n int) (*Writer, error) {
	if n < 0 || n > MaxCounts {
		return nil, fmt.Errorf("ugsb: vertex count %d outside [0,%d]", n, MaxCounts)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(HeaderSize, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<20), n: n, deg: make([]int32, n)}, nil
}

// NumEdges reports the number of edges added so far.
func (w *Writer) NumEdges() int { return w.m }

// AddEdge appends the undirected edge (u, v) with probability p.
// Endpoints are normalized to u < v; p may be exactly 0 (the binary
// format, unlike the text one, preserves zeroed edges losslessly).
func (w *Writer) AddEdge(u, v int, p float64) error {
	if u < 0 || u >= w.n || v < 0 || v >= w.n {
		return fmt.Errorf("ugsb: edge (%d,%d) endpoint out of range [0,%d)", u, v, w.n)
	}
	if u == v {
		return fmt.Errorf("ugsb: self-loop at vertex %d", u)
	}
	if !(p >= 0 && p <= 1) {
		return fmt.Errorf("ugsb: edge (%d,%d) probability %v outside [0,1]", u, v, p)
	}
	if w.m >= MaxCounts {
		return fmt.Errorf("ugsb: edge count limit %d reached", MaxCounts)
	}
	if u > v {
		u, v = v, u
	}
	PutEdge(w.rec[:], int64(u), int64(v), p)
	if _, err := w.bw.Write(w.rec[:]); err != nil {
		return err
	}
	w.deg[u]++
	w.deg[v]++
	w.m++
	return nil
}

// Finalize writes the CSR sections and header and closes the file. The
// arcs section is filled by scattering through a writable mapping of the
// output file, so the OS page cache — not the Go heap — backs the O(m)
// working set.
func (w *Writer) Finalize() error {
	if w.done {
		return fmt.Errorf("ugsb: writer already finalized")
	}
	w.done = true
	defer w.f.Close()

	l, err := LayoutFor(uint64(w.n), uint64(w.m))
	if err != nil {
		return err
	}
	// Row offsets: exclusive prefix sums of the degree counters. deg is
	// reused as the scatter cursor array afterwards.
	var buf [ArcOffSize]byte
	sum := int32(0)
	for u := 0; u < w.n; u++ {
		binary.LittleEndian.PutUint32(buf[:], uint32(sum))
		if _, err := w.bw.Write(buf[:]); err != nil {
			return err
		}
		d := w.deg[u]
		w.deg[u] = sum
		sum += d
	}
	binary.LittleEndian.PutUint32(buf[:], uint32(sum))
	if _, err := w.bw.Write(buf[:]); err != nil {
		return err
	}
	for pad := l.ArcOffOff + uint64(w.n+1)*ArcOffSize; pad < l.ArcsOff; pad++ {
		if err := w.bw.WriteByte(0); err != nil {
			return err
		}
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}

	data, release, err := mmapWrite(w.f, int64(l.FileSize))
	if err != nil {
		return err
	}
	edges := data[l.EdgesOff:l.ArcOffOff]
	arcs := data[l.ArcsOff:l.FileSize]
	for id := 0; id < w.m; id++ {
		u, v, _ := GetEdge(edges[id*EdgeRecordSize:])
		PutArc(arcs[int(w.deg[u])*ArcRecordSize:], v, int64(id))
		w.deg[u]++
		PutArc(arcs[int(w.deg[v])*ArcRecordSize:], u, int64(id))
		w.deg[v]++
	}
	EncodeHeader(data[:HeaderSize], Header{
		Version:   Version,
		N:         uint64(w.n),
		M:         uint64(w.m),
		EdgesOff:  l.EdgesOff,
		ArcOffOff: l.ArcOffOff,
		ArcsOff:   l.ArcsOff,
		FileSize:  l.FileSize,
		CRCData:   crc32.ChecksumIEEE(data[l.EdgesOff:l.FileSize]),
	})
	if err := release(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Abort discards a writer without finalizing, removing the partial file.
func (w *Writer) Abort() error {
	if w.done {
		return nil
	}
	w.done = true
	name := w.f.Name()
	w.f.Close()
	return os.Remove(name)
}
