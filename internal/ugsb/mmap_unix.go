//go:build unix

package ugsb

import (
	"fmt"
	"os"
	"syscall"
)

// mmapRead maps the file read-only. The returned release function unmaps;
// after it runs, the slice must not be touched.
func mmapRead(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("ugsb: mmap %s: %w", f.Name(), err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// mmapWrite maps the file read-write (shared), growing it to size first.
// The release function syncs and unmaps.
func mmapWrite(f *os.File, size int64) ([]byte, func() error, error) {
	if err := f.Truncate(size); err != nil {
		return nil, nil, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("ugsb: mmap rw %s: %w", f.Name(), err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
