package ugsb

import (
	"fmt"
	"os"
)

// File is an open, memory-mapped .ugsb file. Section accessors return
// subslices of the mapping; after Close they must not be touched. A File
// is safe for concurrent readers.
type File struct {
	path    string
	data    []byte
	release func() error
	hdr     Header
}

// Open maps the named .ugsb file read-only and fully validates it: header
// checks plus a sequential deep scan of every section (CRC, CSR offset
// monotonicity, edge/arc bounds). The scan allocates nothing; its cost is
// one read of the file at memory/disk bandwidth. Use OpenTrusted to skip
// the scan for files this process (or another trusted producer) wrote.
func Open(path string) (*File, error) { return open(path, true) }

// OpenTrusted maps the named .ugsb file read-only with header-only
// validation: magic, version, checksummed header fields, and section
// bounds against the real file size. Section bytes are not inspected, so
// opening is O(1) regardless of graph size — the out-of-core fast path
// for files from trusted producers. A corrupt trusted file yields wrong
// query results, not memory unsafety: all CSR indices are bounds-checked
// by the Go runtime when used.
func OpenTrusted(path string) (*File, error) { return open(path, false) }

func open(path string, deep bool) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < HeaderSize {
		return nil, fmt.Errorf("ugsb: %s: file too short for header: %d bytes", path, st.Size())
	}
	data, release, err := mmapRead(f, st.Size())
	if err != nil {
		return nil, err
	}
	hdr, err := DecodeHeader(data)
	if err != nil {
		release()
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	if deep {
		if err := validateSections(data, hdr); err != nil {
			release()
			return nil, fmt.Errorf("%w (%s)", err, path)
		}
	}
	return &File{path: path, data: data, release: release, hdr: hdr}, nil
}

// Path returns the file path the mapping was opened from.
func (f *File) Path() string { return f.path }

// Header returns the decoded header.
func (f *File) Header() Header { return f.hdr }

// NumVertices reports |V|.
func (f *File) NumVertices() int { return int(f.hdr.N) }

// NumEdges reports |E|.
func (f *File) NumEdges() int { return int(f.hdr.M) }

// Size reports the mapped file size in bytes.
func (f *File) Size() int64 { return int64(f.hdr.FileSize) }

// EdgeBytes returns the raw edges section (m × 24-byte records).
func (f *File) EdgeBytes() []byte {
	return f.data[f.hdr.EdgesOff : f.hdr.EdgesOff+f.hdr.M*EdgeRecordSize]
}

// ArcOffBytes returns the raw CSR row-offset section ((n+1) × 4 bytes).
func (f *File) ArcOffBytes() []byte {
	return f.data[f.hdr.ArcOffOff : f.hdr.ArcOffOff+(f.hdr.N+1)*ArcOffSize]
}

// ArcBytes returns the raw arcs section (2m × 16-byte records).
func (f *File) ArcBytes() []byte {
	return f.data[f.hdr.ArcsOff:f.hdr.FileSize]
}

// Close unmaps the file. Accessors and any slices derived from them are
// invalid afterwards.
func (f *File) Close() error {
	if f.release == nil {
		return nil
	}
	rel := f.release
	f.release = nil
	f.data = nil
	return rel()
}
