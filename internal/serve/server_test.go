package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ugs"
)

// newTestServer builds a server with one resident graph "g".
func newTestServer(t *testing.T, cfg Config) (*Server, *ugs.Graph) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := ugs.TwitterLike(80, 7)
	if err := s.Store().Add("g", g); err != nil {
		t.Fatal(err)
	}
	return s, g
}

// do runs one request against the handler and decodes the JSON response.
func do(t *testing.T, s *Server, method, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = httptest.NewRequest(method, path, bytes.NewReader(blob))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if out != nil && w.Code < 300 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %v\n%s", method, path, err, w.Body.String())
		}
	}
	return w
}

func sparsifyBody(graph string, alpha float64, method string, seed int64) map[string]any {
	return map[string]any{"graph": graph, "alpha": alpha, "method": method, "seed": seed}
}

func TestHealthAndGraphEndpoints(t *testing.T) {
	s, g := newTestServer(t, Config{})
	if w := do(t, s, "GET", "/healthz", nil, nil); w.Code != 200 {
		t.Errorf("healthz: %d", w.Code)
	}

	var list []GraphInfo
	if w := do(t, s, "GET", "/v1/graphs", nil, &list); w.Code != 200 || len(list) != 1 {
		t.Fatalf("list: %d %v", w.Code, list)
	}
	if list[0].Name != "g" || list[0].Edges != g.NumEdges() {
		t.Errorf("listed: %+v", list[0])
	}

	var info GraphInfo
	if w := do(t, s, "GET", "/v1/graphs/g", nil, &info); w.Code != 200 || info.Vertices != g.NumVertices() {
		t.Errorf("get: %d %+v", w.Code, info)
	}
	if w := do(t, s, "GET", "/v1/graphs/nope", nil, nil); w.Code != 404 {
		t.Errorf("missing graph: %d", w.Code)
	}

	// Upload round trip.
	var buf bytes.Buffer
	if err := ugs.WriteGraph(&buf, ugs.TwitterLike(40, 2)); err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/v1/graphs/up1", bytes.NewReader(buf.Bytes()))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != 201 {
		t.Fatalf("upload: %d %s", w.Code, w.Body.String())
	}
	if w := do(t, s, "GET", "/v1/graphs/up1", nil, &info); w.Code != 200 || info.Vertices != 40 {
		t.Errorf("uploaded graph: %d %+v", w.Code, info)
	}
	// Invalid uploads are rejected.
	r = httptest.NewRequest("POST", "/v1/graphs/bad", strings.NewReader("not a graph"))
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != 400 {
		t.Errorf("bad upload: %d", w.Code)
	}
	r = httptest.NewRequest("POST", "/v1/graphs/bad%2Fname", strings.NewReader("2 1\n0 1 0.5\n"))
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != 400 {
		t.Errorf("bad name: %d", w.Code)
	}
}

func TestSparsifyCacheHitDoesZeroWork(t *testing.T) {
	s, g := newTestServer(t, Config{})
	body := sparsifyBody("g", 0.3, "gdb", 1)

	var first SparsifyResponse
	if w := do(t, s, "POST", "/v1/sparsify", body, &first); w.Code != 200 {
		t.Fatalf("sparsify: %d %s", w.Code, w.Body.String())
	}
	if first.Cached {
		t.Error("first request reported cached")
	}
	if first.ID == "" || !strings.HasPrefix(first.ID, "sp-") {
		t.Errorf("id: %q", first.ID)
	}
	budget := int(math.Round(0.3 * float64(g.NumEdges())))
	if first.Graph.Edges != budget {
		t.Errorf("edges = %d, want α|E| = %d", first.Graph.Edges, budget)
	}
	if got := s.Computes(); got != 1 {
		t.Fatalf("computes after first request: %d", got)
	}

	// The acceptance criterion: a cache hit performs zero sparsifier work.
	var second SparsifyResponse
	if w := do(t, s, "POST", "/v1/sparsify", body, &second); w.Code != 200 {
		t.Fatalf("repeat: %d", w.Code)
	}
	if !second.Cached {
		t.Error("repeat request not served from cache")
	}
	if got := s.Computes(); got != 1 {
		t.Errorf("cache hit ran the sparsifier: computes = %d, want 1", got)
	}
	if second.ID != first.ID || second.Key != first.Key || second.Stats != first.Stats {
		t.Errorf("cached response differs:\n%+v\n%+v", second, first)
	}

	// A different spec is a different key.
	var third SparsifyResponse
	if w := do(t, s, "POST", "/v1/sparsify", sparsifyBody("g", 0.3, "gdb", 2), &third); w.Code != 200 {
		t.Fatalf("third: %d", w.Code)
	}
	if third.ID == first.ID {
		t.Error("different seed produced the same id")
	}
	if got := s.Computes(); got != 2 {
		t.Errorf("computes = %d, want 2", got)
	}
}

func TestSparsifyValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	cases := []struct {
		body map[string]any
		code int
	}{
		{sparsifyBody("nope", 0.3, "gdb", 1), 404},
		{sparsifyBody("g", 0, "gdb", 1), 400},
		{sparsifyBody("g", 1.5, "gdb", 1), 400},
		{sparsifyBody("g", 0.3, "bogus", 1), 400},
		{sparsifyBody("", 0.3, "gdb", 1), 400},
		{map[string]any{"graph": "g", "alpha": 0.3, "method": "gdb", "wat": 1}, 400},
	}
	for i, c := range cases {
		if w := do(t, s, "POST", "/v1/sparsify", c.body, nil); w.Code != c.code {
			t.Errorf("case %d: %d, want %d (%s)", i, w.Code, c.code, w.Body.String())
		}
	}
}

func TestQueryEndpointsAndDerivedGraphs(t *testing.T) {
	s, g := newTestServer(t, Config{})

	// Sparsify, then query the derived graph by its id.
	var sp SparsifyResponse
	if w := do(t, s, "POST", "/v1/sparsify", sparsifyBody("g", 0.4, "gdb", 1), &sp); w.Code != 200 {
		t.Fatalf("sparsify: %d", w.Code)
	}

	rng := rand.New(rand.NewSource(3))
	pairs := ugs.RandomPairs(g.NumVertices(), 6, rng)
	reqPairs := make([][2]int, len(pairs))
	for i, p := range pairs {
		reqPairs[i] = [2]int{p.S, p.T}
	}

	for _, target := range []string{"g", sp.ID} {
		var rel QueryResponse
		w := do(t, s, "POST", "/v1/query",
			map[string]any{"graph": target, "kind": "reliability", "pairs": reqPairs, "samples": 128, "seed": 5}, &rel)
		if w.Code != 200 {
			t.Fatalf("%s reliability: %d %s", target, w.Code, w.Body.String())
		}
		if len(rel.Values) != len(pairs) || rel.Cached {
			t.Fatalf("%s reliability shape: %d values cached=%v", target, len(rel.Values), rel.Cached)
		}
		for i, v := range rel.Values {
			if v == nil || *v < 0 || *v > 1 {
				t.Errorf("%s reliability[%d] = %v", target, i, v)
			}
		}

		// Distance shares the SP+RL pass: the repeat must be a cache hit.
		var dist QueryResponse
		w = do(t, s, "POST", "/v1/query",
			map[string]any{"graph": target, "kind": "distance", "pairs": reqPairs, "samples": 128, "seed": 5}, &dist)
		if w.Code != 200 || !dist.Cached {
			t.Errorf("%s distance after reliability: %d cached=%v (want shared cache entry)", target, w.Code, dist.Cached)
		}

		var conn QueryResponse
		w = do(t, s, "POST", "/v1/query",
			map[string]any{"graph": target, "kind": "connected", "samples": 64}, &conn)
		if w.Code != 200 || conn.Value == nil || *conn.Value < 0 || *conn.Value > 1 {
			t.Errorf("%s connected: %d %+v", target, w.Code, conn)
		}
	}

	// The HTTP-level equivalence half of the acceptance criterion: the
	// service's reliability numbers equal the direct library call.
	directSP, directRL, err := ugs.ShortestDistanceAndReliability(
		context.Background(), g, pairs, ugs.MCOptions{Seed: 5, Samples: 128})
	if err != nil {
		t.Fatal(err)
	}
	var rel, dist QueryResponse
	do(t, s, "POST", "/v1/query", map[string]any{"graph": "g", "kind": "reliability", "pairs": reqPairs, "samples": 128, "seed": 5}, &rel)
	do(t, s, "POST", "/v1/query", map[string]any{"graph": "g", "kind": "distance", "pairs": reqPairs, "samples": 128, "seed": 5}, &dist)
	for i := range pairs {
		if *rel.Values[i] != directRL[i] {
			t.Errorf("service RL[%d] = %v, direct %v", i, *rel.Values[i], directRL[i])
		}
		switch {
		case math.IsNaN(directSP[i]):
			if dist.Values[i] != nil {
				t.Errorf("service SP[%d] = %v, direct NaN", i, *dist.Values[i])
			}
		case dist.Values[i] == nil || *dist.Values[i] != directSP[i]:
			t.Errorf("service SP[%d] = %v, direct %v", i, dist.Values[i], directSP[i])
		}
	}

	// Download the derived graph and verify its shape.
	r := httptest.NewRequest("GET", "/v1/sparsify/"+sp.ID+"/graph", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != 200 {
		t.Fatalf("download: %d", w.Code)
	}
	back, err := ugs.ReadGraph(w.Body)
	if err != nil {
		t.Fatalf("downloaded graph unreadable: %v", err)
	}
	if back.NumVertices() != g.NumVertices() {
		t.Errorf("downloaded graph has %d vertices, want %d", back.NumVertices(), g.NumVertices())
	}
	if w := do(t, s, "GET", "/v1/sparsify/sp-doesnotexist/graph", nil, nil); w.Code != 404 {
		t.Errorf("missing derived graph: %d", w.Code)
	}
}

func TestQueryValidation(t *testing.T) {
	s, g := newTestServer(t, Config{MaxSamples: 500})
	n := g.NumVertices()
	cases := []struct {
		body map[string]any
		code int
	}{
		{map[string]any{"graph": "nope", "kind": "reliability", "pairs": [][2]int{{0, 1}}}, 404},
		{map[string]any{"graph": "g", "kind": "bogus", "pairs": [][2]int{{0, 1}}}, 400},
		{map[string]any{"graph": "g", "kind": "reliability"}, 400},
		{map[string]any{"graph": "g", "kind": "reliability", "pairs": [][2]int{{0, n}}}, 400},
		{map[string]any{"graph": "g", "kind": "reliability", "pairs": [][2]int{{-1, 1}}}, 400},
		{map[string]any{"graph": "g", "kind": "reliability", "pairs": [][2]int{{0, 1}}, "samples": 501}, 400},
		{map[string]any{"graph": "g", "kind": "connected", "pairs": [][2]int{{0, 1}}}, 400},
	}
	for i, c := range cases {
		if w := do(t, s, "POST", "/v1/query", c.body, nil); w.Code != c.code {
			t.Errorf("case %d: %d, want %d (%s)", i, w.Code, c.code, w.Body.String())
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	do(t, s, "POST", "/v1/sparsify", sparsifyBody("g", 0.3, "gdb", 1), nil)
	do(t, s, "POST", "/v1/sparsify", sparsifyBody("g", 0.3, "gdb", 1), nil)
	var st StatsResponse
	if w := do(t, s, "GET", "/v1/stats", nil, &st); w.Code != 200 {
		t.Fatalf("stats: %d", w.Code)
	}
	if st.Graphs != 1 || st.Computes != 1 || st.SparsifyCache.Hits != 1 || st.SparsifyCache.Misses != 1 {
		t.Errorf("stats: %+v", st)
	}
}

// TestConcurrentLoadSmoke is the -race smoke: goroutines mixing cache hits,
// misses, coalesced queries and stats reads against a live httptest server.
// Every identical request must observe identical values (the engine is
// deterministic), and repeat sparsifies must never recompute.
func TestConcurrentLoadSmoke(t *testing.T) {
	s, g := newTestServer(t, Config{SparsifyCacheSize: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(41))
	pairs := ugs.RandomPairs(g.NumVertices(), 5, rng)
	reqPairs := make([][2]int, len(pairs))
	for i, p := range pairs {
		reqPairs[i] = [2]int{p.S, p.T}
	}

	post := func(path string, body map[string]any, out any) error {
		blob, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(blob))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if out != nil {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		return nil
	}

	const workers = 16
	var (
		mu           sync.Mutex
		rlSeen       = make(map[int64][]*float64) // seed → first observed values
		adaptiveSeen = make(map[int64][]*float64)
		raceFail     bool
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				seed := int64(w % 2) // two distinct specs/queries → hits and misses
				var sp SparsifyResponse
				if err := post("/v1/sparsify", sparsifyBody("g", 0.35, "gdb", seed), &sp); err != nil {
					t.Error(err)
					return
				}
				var rel QueryResponse
				err := post("/v1/query", map[string]any{
					"graph": "g", "kind": "reliability", "pairs": reqPairs, "samples": 96, "seed": seed,
				}, &rel)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, ok := rlSeen[seed]; !ok {
					rlSeen[seed] = rel.Values
				} else {
					for j := range prev {
						if *prev[j] != *rel.Values[j] {
							raceFail = true
						}
					}
				}
				mu.Unlock()
				var conn QueryResponse
				if err := post("/v1/query", map[string]any{"graph": "g", "kind": "connected", "samples": 64, "seed": seed}, &conn); err != nil {
					t.Error(err)
					return
				}
				// Adaptive and per-vertex queries exercise the planner
				// calibration probe and the world-cache under concurrency;
				// adaptive results must be as deterministic as fixed ones.
				var adp QueryResponse
				err = post("/v1/query", map[string]any{
					"graph": "g", "kind": "reliability", "pairs": reqPairs, "seed": seed,
					"confidence": map[string]any{"eps": 0.1},
				}, &adp)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, ok := adaptiveSeen[seed]; !ok {
					adaptiveSeen[seed] = adp.Values
				} else {
					for j := range prev {
						if *prev[j] != *adp.Values[j] {
							raceFail = true
						}
					}
				}
				mu.Unlock()
				if err := post("/v1/query", map[string]any{"graph": "g", "kind": "pagerank", "samples": 24, "seed": seed}, nil); err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Get(ts.URL + "/v1/stats")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	if raceFail {
		t.Error("identical concurrent queries observed different values")
	}
	if got := s.Computes(); got != 2 {
		t.Errorf("computes = %d, want 2 (one per distinct spec; repeats must hit cache or share flights)", got)
	}
	st := s.batcher.Stats()
	if st.Requests == 0 {
		t.Error("batcher saw no requests")
	}
	t.Logf("batcher: %+v, sparsify cache: %+v, query cache: %+v", st, s.sparse.Stats(), s.queries.Stats())
}

// TestServerShutdownCancelsFlights: cancelling the base context makes
// in-flight background work fail fast rather than hang.
func TestServerShutdownCancelsFlights(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := New(ctx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store().Add("g", ugs.FlickrLike(200, 3)); err != nil {
		t.Fatal(err)
	}
	cancel()
	w := do(t, s, "POST", "/v1/sparsify", sparsifyBody("g", 0.3, "emd", 1), nil)
	if w.Code != 503 {
		t.Errorf("sparsify after shutdown: %d, want 503 (draining)", w.Code)
	}
	if !s.DrainJobs(time.Second) {
		t.Error("jobs did not drain")
	}
}

// TestQueryPageRankAndClustering: the per-vertex kinds must match the
// direct library calls bit-for-bit, cache on repeat, and reject the knobs
// that make no sense for vector queries (pairs, confidence).
func TestQueryPageRankAndClustering(t *testing.T) {
	s, g := newTestServer(t, Config{})

	directPR, err := ugs.ExpectedPageRank(context.Background(), g,
		ugs.MCOptions{Seed: 9, Samples: 40}, ugs.PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	directCC, err := ugs.ExpectedClusteringCoefficients(context.Background(), g,
		ugs.MCOptions{Seed: 9, Samples: 40})
	if err != nil {
		t.Fatal(err)
	}
	for kind, direct := range map[string][]float64{"pagerank": directPR, "clustering": directCC} {
		var resp QueryResponse
		body := map[string]any{"graph": "g", "kind": kind, "samples": 40, "seed": 9}
		if w := do(t, s, "POST", "/v1/query", body, &resp); w.Code != 200 {
			t.Fatalf("%s: %d %s", kind, w.Code, w.Body.String())
		}
		if len(resp.Values) != g.NumVertices() || resp.Samples != 40 || resp.Cached {
			t.Fatalf("%s shape: %d values samples=%d cached=%v", kind, len(resp.Values), resp.Samples, resp.Cached)
		}
		for v, got := range resp.Values {
			if got == nil || *got != direct[v] {
				t.Fatalf("%s[%d] = %v, direct %v", kind, v, got, direct[v])
			}
		}
		var again QueryResponse
		if w := do(t, s, "POST", "/v1/query", body, &again); w.Code != 200 || !again.Cached {
			t.Errorf("%s repeat: %d cached=%v, want cache hit", kind, w.Code, again.Cached)
		}

		bad := map[string]any{"graph": "g", "kind": kind, "pairs": [][2]int{{0, 1}}}
		if w := do(t, s, "POST", "/v1/query", bad, nil); w.Code != 400 {
			t.Errorf("%s with pairs: %d, want 400", kind, w.Code)
		}
		bad = map[string]any{"graph": "g", "kind": kind, "confidence": map[string]any{"eps": 0.05}}
		if w := do(t, s, "POST", "/v1/query", bad, nil); w.Code != 400 {
			t.Errorf("%s with confidence: %d, want 400", kind, w.Code)
		}
	}
}

// TestQueryLanesAreBitIdentical: explicit widths are execution knobs only —
// every lanes value returns the same estimates, and results are served
// from the shared width-agnostic cache entry.
func TestQueryLanesAreBitIdentical(t *testing.T) {
	s, g := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(7))
	pairs := ugs.RandomPairs(g.NumVertices(), 4, rng)
	reqPairs := make([][2]int, len(pairs))
	for i, p := range pairs {
		reqPairs[i] = [2]int{p.S, p.T}
	}

	var ref QueryResponse
	base := map[string]any{"graph": "g", "kind": "reliability", "pairs": reqPairs, "samples": 192, "seed": 3}
	if w := do(t, s, "POST", "/v1/query", base, &ref); w.Code != 200 {
		t.Fatalf("base query: %d %s", w.Code, w.Body.String())
	}
	for _, lanes := range []string{"auto", "1", "64", "128", "256"} {
		body := map[string]any{"graph": "g", "kind": "reliability", "pairs": reqPairs, "samples": 192, "seed": 3, "lanes": lanes}
		var resp QueryResponse
		if w := do(t, s, "POST", "/v1/query", body, &resp); w.Code != 200 {
			t.Fatalf("lanes=%s: %d %s", lanes, w.Code, w.Body.String())
		}
		if resp.Lanes != lanes {
			t.Errorf("lanes=%s echoed as %q", lanes, resp.Lanes)
		}
		if !resp.Cached {
			t.Errorf("lanes=%s: re-ran a width-agnostic cached query", lanes)
		}
		for i := range ref.Values {
			if *resp.Values[i] != *ref.Values[i] {
				t.Errorf("lanes=%s pair %d: %v != %v", lanes, i, *resp.Values[i], *ref.Values[i])
			}
		}
	}
	bad := map[string]any{"graph": "g", "kind": "reliability", "pairs": reqPairs, "lanes": "97"}
	if w := do(t, s, "POST", "/v1/query", bad, nil); w.Code != 400 {
		t.Errorf("lanes=97: %d, want 400", w.Code)
	}
	bad = map[string]any{"graph": "g", "kind": "connected", "lanes": "1", "confidence": map[string]any{"eps": 0.05}}
	if w := do(t, s, "POST", "/v1/query", bad, nil); w.Code != 400 {
		t.Errorf("scalar lanes + confidence: %d, want 400", w.Code)
	}
}

// TestQueryConfidenceAdaptive: adaptive requests bypass the batcher and
// must match a direct adaptive library call exactly — same estimates, same
// stopped sample count — and report their run shape.
func TestQueryConfidenceAdaptive(t *testing.T) {
	s, g := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(11))
	pairs := ugs.RandomPairs(g.NumVertices(), 3, rng)
	reqPairs := make([][2]int, len(pairs))
	for i, p := range pairs {
		reqPairs[i] = [2]int{p.S, p.T}
	}

	target := ugs.WithConfidence(0.05, 0)
	target.MaxSamples = s.cfg.MaxSamples // what the server itself applies
	_, directRL, directInfo, err := ugs.ShortestDistanceAndReliabilityRun(
		context.Background(), g, pairs, ugs.MCOptions{Seed: 21, Target: target})
	if err != nil {
		t.Fatal(err)
	}

	body := map[string]any{"graph": "g", "kind": "reliability", "pairs": reqPairs, "seed": 21,
		"confidence": map[string]any{"eps": 0.05}}
	var resp QueryResponse
	if w := do(t, s, "POST", "/v1/query", body, &resp); w.Code != 200 {
		t.Fatalf("adaptive query: %d %s", w.Code, w.Body.String())
	}
	if resp.Samples != directInfo.Samples || resp.Rounds != directInfo.Rounds {
		t.Errorf("run shape: samples=%d rounds=%d, direct %+v", resp.Samples, resp.Rounds, directInfo)
	}
	if resp.Converged == nil || *resp.Converged != directInfo.Converged {
		t.Errorf("converged = %v, direct %v", resp.Converged, directInfo.Converged)
	}
	for i := range pairs {
		if *resp.Values[i] != directRL[i] {
			t.Errorf("adaptive RL[%d] = %v, direct %v", i, *resp.Values[i], directRL[i])
		}
	}
	var again QueryResponse
	if w := do(t, s, "POST", "/v1/query", body, &again); w.Code != 200 || !again.Cached {
		t.Errorf("adaptive repeat: %d cached=%v, want cache hit", w.Code, again.Cached)
	}

	// Adaptive connectivity, same contract.
	cDirect, cInfo, err := ugs.ConnectedProbabilityRun(context.Background(), g,
		ugs.MCOptions{Seed: 4, Target: target})
	if err != nil {
		t.Fatal(err)
	}
	var conn QueryResponse
	cBody := map[string]any{"graph": "g", "kind": "connected", "seed": 4,
		"confidence": map[string]any{"eps": 0.05}}
	if w := do(t, s, "POST", "/v1/query", cBody, &conn); w.Code != 200 {
		t.Fatalf("adaptive connected: %d %s", w.Code, w.Body.String())
	}
	if conn.Value == nil || *conn.Value != cDirect || conn.Samples != cInfo.Samples {
		t.Errorf("adaptive connected: %+v, direct %v %+v", conn, cDirect, cInfo)
	}

	// samples + confidence is nonsense: the target decides the budget.
	bad := map[string]any{"graph": "g", "kind": "connected", "samples": 100,
		"confidence": map[string]any{"eps": 0.05}}
	if w := do(t, s, "POST", "/v1/query", bad, nil); w.Code != 400 {
		t.Errorf("samples+confidence: %d, want 400", w.Code)
	}
	bad = map[string]any{"graph": "g", "kind": "connected", "confidence": map[string]any{"eps": 2.0}}
	if w := do(t, s, "POST", "/v1/query", bad, nil); w.Code != 400 {
		t.Errorf("eps=2: %d, want 400", w.Code)
	}
}

// TestQueryWorldCacheShared: mixed query kinds over the same (graph, seed)
// stream share sampled worlds — the second kind's fills must be cache hits,
// visible in /v1/stats.
func TestQueryWorldCacheShared(t *testing.T) {
	s, g := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(13))
	pairs := ugs.RandomPairs(g.NumVertices(), 3, rng)
	reqPairs := make([][2]int, len(pairs))
	for i, p := range pairs {
		reqPairs[i] = [2]int{p.S, p.T}
	}

	if w := do(t, s, "POST", "/v1/query",
		map[string]any{"graph": "g", "kind": "reliability", "pairs": reqPairs, "samples": 256, "seed": 8}, nil); w.Code != 200 {
		t.Fatalf("reliability: %d", w.Code)
	}
	var st StatsResponse
	do(t, s, "GET", "/v1/stats", nil, &st)
	if st.WorldCache.Misses != 4 || st.WorldCache.Entries != 4 {
		t.Fatalf("after one 256-sample run: %+v, want 4 filled blocks", st.WorldCache)
	}
	// Different kind, same stream: all four blocks come from the cache.
	if w := do(t, s, "POST", "/v1/query",
		map[string]any{"graph": "g", "kind": "connected", "samples": 256, "seed": 8}, nil); w.Code != 200 {
		t.Fatalf("connected: %d", w.Code)
	}
	do(t, s, "GET", "/v1/stats", nil, &st)
	if st.WorldCache.Misses != 4 {
		t.Errorf("connectivity re-sampled worlds: %+v", st.WorldCache)
	}
	if st.WorldCache.Hits < 4 {
		t.Errorf("cross-kind reuse hits = %d, want ≥ 4", st.WorldCache.Hits)
	}
}
