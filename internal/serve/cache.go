package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Cache is a fixed-capacity LRU of computed values with singleflight
// admission: concurrent Do calls for the same key share one computation
// instead of racing to compute it in parallel. It is the mechanism behind
// the service's O(1) repeat-sparsify path — a hit returns the resident
// result without touching the sparsifier core at all.
//
// A non-positive capacity disables retention (every Do recomputes) but keeps
// the singleflight sharing, which is useful for tests and for callers that
// only want request coalescing.
type Cache[V any] struct {
	capacity int
	onEvict  func(key string, val V)

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight[V]

	hits      atomic.Int64
	misses    atomic.Int64
	shared    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry[V any] struct {
	key string
	val V
}

// flight is one in-progress computation; waiters block on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewCache returns a cache holding at most capacity values.
func NewCache[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight[V]),
	}
}

// OnEvict installs a callback invoked (outside the cache lock) for every
// entry dropped by LRU pressure. Install before first use.
func (c *Cache[V]) OnEvict(fn func(key string, val V)) { c.onEvict = fn }

// Get returns the cached value for key, refreshing its recency. It never
// computes and does not join in-flight computations.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.entries[key]; ok {
		c.ll.MoveToFront(elem)
		return elem.Value.(*cacheEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Do returns the value for key, computing it at most once across concurrent
// callers: a resident entry is returned immediately (cached = true); if the
// key is already being computed the caller waits for that flight's result;
// otherwise the caller runs compute itself and the successful result is
// inserted.
//
// compute runs without the cache lock held and should derive its lifetime
// from a server-scoped context rather than ctx: ctx only bounds this
// caller's wait, so a caller that gives up leaves the shared computation
// running for the others (and for the cache). Errors are not cached.
func (c *Cache[V]) Do(ctx context.Context, key string, compute func() (V, error)) (val V, cached bool, err error) {
	var zero V
	c.mu.Lock()
	if elem, ok := c.entries[key]; ok {
		c.ll.MoveToFront(elem)
		v := elem.Value.(*cacheEntry[V]).val
		c.mu.Unlock()
		c.hits.Add(1)
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.shared.Add(1)
		select {
		case <-f.done:
			return f.val, false, f.err
		case <-ctx.Done():
			return zero, false, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()
	c.misses.Add(1)

	f.val, f.err = compute()
	var evicted []cacheEntry[V]
	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil && c.capacity > 0 {
		c.entries[key] = c.ll.PushFront(&cacheEntry[V]{key: key, val: f.val})
		for c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			e := oldest.Value.(*cacheEntry[V])
			c.ll.Remove(oldest)
			delete(c.entries, e.key)
			evicted = append(evicted, *e)
		}
	}
	c.mu.Unlock()
	close(f.done)
	if c.onEvict != nil {
		for _, e := range evicted {
			c.evictions.Add(1)
			c.onEvict(e.key, e.val)
		}
	} else {
		c.evictions.Add(int64(len(evicted)))
	}
	return f.val, false, f.err
}

// Replace installs val under key, overwriting any resident entry — the
// stale-while-revalidate path: a background recompute swaps its fresh result
// in under the same key so later hits stop serving the degraded one. The
// displaced value (if any) is handed to the eviction callback. A no-op when
// retention is disabled.
func (c *Cache[V]) Replace(key string, val V) {
	if c.capacity <= 0 {
		return
	}
	var displaced *cacheEntry[V]
	c.mu.Lock()
	if elem, ok := c.entries[key]; ok {
		e := elem.Value.(*cacheEntry[V])
		displaced = &cacheEntry[V]{key: e.key, val: e.val}
		e.val = val
		c.ll.MoveToFront(elem)
	} else {
		c.entries[key] = c.ll.PushFront(&cacheEntry[V]{key: key, val: val})
		if c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			e := oldest.Value.(*cacheEntry[V])
			c.ll.Remove(oldest)
			delete(c.entries, e.key)
			displaced = e
			c.evictions.Add(1)
		}
	}
	c.mu.Unlock()
	if displaced != nil && c.onEvict != nil {
		c.onEvict(displaced.key, displaced.val)
	}
}

// Len reports the number of resident entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Shared    int64 `json:"shared"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the cache counters. Shared counts Do calls that joined an
// in-flight computation instead of starting their own.
func (c *Cache[V]) Stats() CacheStats {
	return CacheStats{
		Size:      c.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Shared:    c.shared.Load(),
		Evictions: c.evictions.Load(),
	}
}
