package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitMissAndLRUEviction(t *testing.T) {
	c := NewCache[int](2)
	ctx := context.Background()
	compute := func(v int) func() (int, error) {
		return func() (int, error) { return v, nil }
	}

	if v, cached, err := c.Do(ctx, "a", compute(1)); v != 1 || cached || err != nil {
		t.Fatalf("first Do: %d %v %v", v, cached, err)
	}
	if v, cached, _ := c.Do(ctx, "a", compute(99)); v != 1 || !cached {
		t.Fatalf("second Do recomputed: %d cached=%v", v, cached)
	}
	c.Do(ctx, "b", compute(2))
	c.Do(ctx, "a", compute(99)) // refresh a's recency
	c.Do(ctx, "c", compute(3))  // evicts b (least recently used)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a (recently used) was evicted")
	}
	st := c.Stats()
	if st.Size != 2 || st.Evictions != 1 || st.Hits != 2 || st.Misses != 3 {
		t.Errorf("stats: %+v", st)
	}
}

func TestCacheOnEvict(t *testing.T) {
	c := NewCache[string](1)
	var evicted []string
	c.OnEvict(func(key string, val string) { evicted = append(evicted, key+"="+val) })
	ctx := context.Background()
	c.Do(ctx, "x", func() (string, error) { return "1", nil })
	c.Do(ctx, "y", func() (string, error) { return "2", nil })
	if len(evicted) != 1 || evicted[0] != "x=1" {
		t.Errorf("evicted: %v", evicted)
	}
}

func TestCacheSingleflightSharesOneComputation(t *testing.T) {
	c := NewCache[int](4)
	ctx := context.Background()
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const waiters = 8
	results := make([]int, waiters)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, err := c.Do(ctx, "k", func() (int, error) {
			computes.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0] = v
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(ctx, "k", func() (int, error) {
				computes.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Waiters must be parked on the flight, not spinning their own
	// computations; give them a moment to enqueue, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Errorf("%d computations for %d concurrent callers", n, waiters)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d", i, v)
		}
	}
	if st := c.Stats(); st.Shared == 0 {
		t.Errorf("no shared flights recorded: %+v", st)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := NewCache[int](4)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, "k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, cached, err := c.Do(ctx, "k", func() (int, error) { return 7, nil })
	if v != 7 || cached || err != nil {
		t.Errorf("after error: %d %v %v (want fresh recompute)", v, cached, err)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := NewCache[int](4)
	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, "k", func() (int, error) { return 2, nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter: err = %v", err)
	}
	close(release)
}

func TestCacheZeroCapacityStillSingleflights(t *testing.T) {
	c := NewCache[int](0)
	ctx := context.Background()
	n := 0
	for i := 0; i < 3; i++ {
		v, cached, err := c.Do(ctx, "k", func() (int, error) { n++; return n, nil })
		if err != nil || cached || v != i+1 {
			t.Errorf("run %d: v=%d cached=%v err=%v", i, v, cached, err)
		}
	}
	if c.Len() != 0 {
		t.Errorf("zero-capacity cache retained %d entries", c.Len())
	}
}

func TestCacheManyKeysConcurrently(t *testing.T) {
	c := NewCache[string](8)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (w+i)%12)
				v, _, err := c.Do(ctx, key, func() (string, error) { return key, nil })
				if err != nil || v != key {
					t.Errorf("Do(%s) = %q, %v", key, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
}
