package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func mustAcquire(t *testing.T, l *Limiter, cost int64) func() {
	t.Helper()
	rel, err := l.Acquire(context.Background(), cost)
	if err != nil {
		t.Fatalf("Acquire(%d): %v", cost, err)
	}
	return rel
}

func TestLimiterAdmitsWithinCapacity(t *testing.T) {
	l := NewLimiter(10, 0)
	r1 := mustAcquire(t, l, 4)
	r2 := mustAcquire(t, l, 6)
	if got := l.Stats().InUse; got != 10 {
		t.Fatalf("InUse = %d, want 10", got)
	}
	r1()
	r1() // release is idempotent
	r2()
	if got := l.Stats().InUse; got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}
	if got := l.Stats().Admitted; got != 2 {
		t.Fatalf("Admitted = %d, want 2", got)
	}
}

func TestLimiterShedsWhenQueueFull(t *testing.T) {
	l := NewLimiter(1, 0) // no queue at all
	rel := mustAcquire(t, l, 1)
	defer rel()
	if _, err := l.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if got := l.Stats().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
}

func TestLimiterQueueFIFO(t *testing.T) {
	// Capacity equals one request's cost, so waiters are admitted strictly
	// one at a time: each admission is observable in queue order.
	l := NewLimiter(2, 10)
	rel := mustAcquire(t, l, 2)

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger entry so queue order is deterministic.
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			r := mustAcquire(t, l, 2)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}(i)
	}
	time.Sleep(120 * time.Millisecond) // let all three queue
	rel()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v, want [0 1 2]", order)
		}
	}
}

// A cheap request must not barge past a queued expensive one.
func TestLimiterNoBarging(t *testing.T) {
	l := NewLimiter(10, 10)
	rel := mustAcquire(t, l, 8) // 2 units free

	bigDone := make(chan struct{})
	go func() {
		r := mustAcquire(t, l, 10) // queues: does not fit
		close(bigDone)
		r()
	}()
	time.Sleep(50 * time.Millisecond) // big request is queued

	// Cost 2 fits the free capacity but must wait behind the big one.
	smallDone := make(chan struct{})
	go func() {
		r := mustAcquire(t, l, 2)
		close(smallDone)
		r()
	}()
	select {
	case <-smallDone:
		t.Fatal("small request barged past queued big request")
	case <-time.After(80 * time.Millisecond):
	}

	rel() // big admitted first, then small
	<-bigDone
	<-smallDone
}

func TestLimiterCancelWhileQueued(t *testing.T) {
	l := NewLimiter(1, 5)
	rel := mustAcquire(t, l, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	st := l.Stats()
	if st.Cancelled != 1 || st.Queued != 0 {
		t.Fatalf("Cancelled=%d Queued=%d, want 1, 0", st.Cancelled, st.Queued)
	}
	rel()
	// Capacity must be fully available again.
	mustAcquire(t, l, 1)()
}

func TestLimiterOversizedCostClamped(t *testing.T) {
	l := NewLimiter(5, 5)
	rel, err := l.Acquire(context.Background(), 1_000_000)
	if err != nil {
		t.Fatalf("oversized request rejected: %v", err)
	}
	if got := l.Stats().InUse; got != 5 {
		t.Fatalf("InUse = %d, want clamped 5", got)
	}
	rel()
}

func TestLimiterDisabled(t *testing.T) {
	var l *Limiter
	rel, err := l.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if p := l.Pressure(); p != 0 {
		t.Fatalf("nil Pressure = %v", p)
	}
	l0 := NewLimiter(0, 0)
	rel, err = l0.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

func TestLimiterPressure(t *testing.T) {
	l := NewLimiter(10, 10)
	if p := l.Pressure(); p != 0 {
		t.Fatalf("idle pressure = %v", p)
	}
	rel := mustAcquire(t, l, 5)
	if p := l.Pressure(); p != 0.5 {
		t.Fatalf("pressure = %v, want 0.5", p)
	}
	rel()
}
