package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"ugs"
)

func reliabilityBody(graph string, samples int, seed int64) map[string]any {
	return map[string]any{
		"graph": graph, "kind": "reliability",
		"pairs":   [][2]int{{0, 1}, {2, 9}, {4, 33}},
		"samples": samples, "seed": seed,
	}
}

func TestPatchEndpoint(t *testing.T) {
	s, g := newTestServer(t, Config{})

	// Pick a real edge to reweight and one to delete; insert needs an
	// absent pair.
	e0 := g.Edge(0)
	e1 := g.Edge(1)
	var iu, iv int
	for u := 0; u < g.NumVertices() && iu == iv; u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			if !g.HasEdge(u, v) {
				iu, iv = u, v
				break
			}
		}
	}
	body := map[string]any{"edits": []map[string]any{
		{"op": "reweight", "u": e0.U, "v": e0.V, "p": 0.123},
		{"op": "delete", "u": e1.U, "v": e1.V},
		{"op": "insert", "u": iu, "v": iv, "p": 0.77},
	}}
	var resp PatchResponse
	if w := do(t, s, "PATCH", "/v1/graphs/g/edges", body, &resp); w.Code != 200 {
		t.Fatalf("patch: %d %s", w.Code, w.Body.String())
	}
	if resp.Version != 2 || resp.Applied != 3 || resp.Info.Edges != g.NumEdges() {
		t.Fatalf("patch response: %+v (want version 2, applied 3, %d edges)", resp, g.NumEdges())
	}

	// The stored graph reflects the batch.
	pg, gid, release, err := s.Store().Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if gid != "g@2" {
		t.Errorf("gid = %q; want g@2", gid)
	}
	if id, ok := pg.EdgeID(e0.U, e0.V); !ok || pg.Prob(id) != 0.123 {
		t.Errorf("reweight not applied: %v %v", id, ok)
	}
	if pg.HasEdge(e1.U, e1.V) {
		t.Error("deleted edge still present")
	}
	if !pg.HasEdge(iu, iv) {
		t.Error("inserted edge missing")
	}

	// Conditional patch: stale expect_version is a typed 409 conflict.
	stale := map[string]any{
		"edits":          []map[string]any{{"op": "reweight", "u": e0.U, "v": e0.V, "p": 0.5}},
		"expect_version": 1,
	}
	w := do(t, s, "PATCH", "/v1/graphs/g/edges", stale, nil)
	if w.Code != 409 {
		t.Fatalf("stale expect_version: %d %s", w.Code, w.Body.String())
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code != string(CodeConflict) {
		t.Fatalf("conflict envelope: %v %s", err, w.Body.String())
	}

	// Matching expect_version applies and bumps again.
	stale["expect_version"] = 2
	if w := do(t, s, "PATCH", "/v1/graphs/g/edges", stale, &resp); w.Code != 200 || resp.Version != 3 {
		t.Fatalf("conditional patch: %d %+v", w.Code, resp)
	}

	// Error taxonomy: unknown graph, unknown op, invalid batch.
	if w := do(t, s, "PATCH", "/v1/graphs/nope/edges", body, nil); w.Code != 404 {
		t.Errorf("unknown graph: %d", w.Code)
	}
	bad := map[string]any{"edits": []map[string]any{{"op": "upsert", "u": 0, "v": 1, "p": 0.5}}}
	if w := do(t, s, "PATCH", "/v1/graphs/g/edges", bad, nil); w.Code != 400 {
		t.Errorf("unknown op: %d", w.Code)
	}
	dup := map[string]any{"edits": []map[string]any{
		{"op": "reweight", "u": e0.U, "v": e0.V, "p": 0.4},
		{"op": "reweight", "u": e0.V, "v": e0.U, "p": 0.6},
	}}
	if w := do(t, s, "PATCH", "/v1/graphs/g/edges", dup, nil); w.Code != 400 {
		t.Errorf("duplicate pair: %d %s", w.Code, w.Body.String())
	}
}

// TestPatchCacheCoherence is the stale-cache property test: after a PATCH,
// no pre-patch cached sparsify or query result is ever served — every cache
// key embeds the generation — and the post-patch query answer equals a
// from-scratch computation on the patched graph.
func TestPatchCacheCoherence(t *testing.T) {
	s, g := newTestServer(t, Config{WorldCacheBytes: 1 << 20})

	// Warm both caches at generation 1.
	var sp1 SparsifyResponse
	if w := do(t, s, "POST", "/v1/sparsify", sparsifyBody("g", 0.3, "gdb", 4), &sp1); w.Code != 200 || sp1.Cached {
		t.Fatalf("sparsify warm: %d %+v", w.Code, sp1)
	}
	var q1 QueryResponse
	if w := do(t, s, "POST", "/v1/query", reliabilityBody("g", 600, 9), &q1); w.Code != 200 || q1.Cached {
		t.Fatalf("query warm: %d %+v", w.Code, q1)
	}
	var q1b QueryResponse
	if w := do(t, s, "POST", "/v1/query", reliabilityBody("g", 600, 9), &q1b); w.Code != 200 || !q1b.Cached {
		t.Fatalf("query repeat should hit the cache: %d %+v", w.Code, q1b)
	}
	if worlds := s.worlds.Stats(); worlds.Entries == 0 {
		t.Fatal("world cache not exercised — the property below would be vacuous")
	}

	// Patch: delete one edge the queries depend on.
	e := g.Edge(0)
	body := map[string]any{"edits": []map[string]any{{"op": "delete", "u": e.U, "v": e.V}}}
	var pr PatchResponse
	if w := do(t, s, "PATCH", "/v1/graphs/g/edges", body, &pr); w.Code != 200 || pr.Version != 2 {
		t.Fatalf("patch: %d %+v", w.Code, pr)
	}

	// Identical requests must recompute — generation 1 entries unreachable.
	var sp2 SparsifyResponse
	if w := do(t, s, "POST", "/v1/sparsify", sparsifyBody("g", 0.3, "gdb", 4), &sp2); w.Code != 200 {
		t.Fatalf("sparsify post-patch: %d", w.Code)
	}
	if sp2.Cached {
		t.Fatal("stale sparsify entry served after patch")
	}
	if sp2.ID == sp1.ID || sp2.Key == sp1.Key {
		t.Fatalf("sparsify identity did not change: %q vs %q", sp2.Key, sp1.Key)
	}
	var q2 QueryResponse
	if w := do(t, s, "POST", "/v1/query", reliabilityBody("g", 600, 9), &q2); w.Code != 200 {
		t.Fatalf("query post-patch: %d", w.Code)
	}
	if q2.Cached {
		t.Fatal("stale query entry served after patch")
	}

	// The post-patch answer equals a from-scratch computation on the
	// patched graph (estimates are bit-identical across Workers/Lanes, so
	// the comparison is exact).
	res, err := ugs.ApplyEdits(g, []ugs.EdgeEdit{{Op: ugs.EditDelete, U: e.U, V: e.V}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ugs.Reliability(context.Background(), res.Graph,
		[]ugs.Pair{{S: 0, T: 1}, {S: 2, T: 9}, {S: 4, T: 33}}, ugs.MCOptions{Samples: 600, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range q2.Values {
		if v == nil || *v != want[i] {
			t.Fatalf("pair %d: served %v, from-scratch %v", i, v, want[i])
		}
	}
	// And the pre-patch answer differed (the deleted edge mattered), so the
	// coherence property above was not vacuous either.
	same := true
	for i, v := range q1.Values {
		if *v != *q2.Values[i] {
			same = false
		}
		_ = i
	}
	if same {
		t.Log("note: pre- and post-patch estimates coincide on this seed")
	}
}

// TestStorePatchEvictReplay: a patched graph stays evictable — the reload
// replays the patch log over the backing sidecar — and the log compacts
// after patchCompactBatches batches.
func TestStorePatchEvictReplay(t *testing.T) {
	store := NewStore(StoreConfig{BudgetBytes: 1 << 20, ConvertDir: t.TempDir()})
	defer store.Close()
	g := ugs.TwitterLike(60, 3)
	if err := store.Add("g", g); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	e0 := g.Edge(0)

	if _, gen, err := store.Patch(ctx, "g", []ugs.EdgeEdit{
		{Op: ugs.EditReweight, U: e0.U, V: e0.V, P: 0.111},
	}, 0); err != nil || gen != 2 {
		t.Fatalf("patch 1: gen=%d err=%v", gen, err)
	}
	e1 := g.Edge(1)
	if _, gen, err := store.Patch(ctx, "g", []ugs.EdgeEdit{
		{Op: ugs.EditDelete, U: e1.U, V: e1.V},
	}, 0); err != nil || gen != 3 {
		t.Fatalf("patch 2: gen=%d err=%v", gen, err)
	}

	// Force an evict/reload cycle and verify the replayed graph.
	store.mu.Lock()
	entry := store.entries["g"]
	if entry.log.Batches() != 2 {
		t.Fatalf("log holds %d batches; want 2", entry.log.Batches())
	}
	store.dropResidentLocked(entry)
	store.mu.Unlock()

	rg, gid, release, err := store.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	if gid != "g@3" {
		t.Errorf("gid after reload = %q; want g@3 (replay must not bump the generation)", gid)
	}
	if id, ok := rg.EdgeID(e0.U, e0.V); !ok || rg.Prob(id) != 0.111 {
		t.Error("reloaded graph lost the reweight patch")
	}
	if rg.HasEdge(e1.U, e1.V) {
		t.Error("reloaded graph resurrected the deleted edge")
	}
	release()

	// Two more batches cross the compaction threshold: sidecar rewritten,
	// log reset, reload needs no replay.
	for i := 0; i < 2; i++ {
		e := rg.Edge(2 + i)
		if _, _, err := store.Patch(ctx, "g", []ugs.EdgeEdit{
			{Op: ugs.EditReweight, U: e.U, V: e.V, P: 0.25},
		}, 0); err != nil {
			t.Fatal(err)
		}
	}
	store.mu.Lock()
	batches := entry.log.Batches()
	path := entry.path
	store.dropResidentLocked(entry)
	store.mu.Unlock()
	if batches != 0 {
		t.Fatalf("log holds %d batches after compaction; want 0", batches)
	}
	if !strings.Contains(path, ".g5.ugsb") {
		t.Errorf("compacted sidecar path %q; want generation-5 sidecar", path)
	}
	cg, gid, release, err := store.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if gid != "g@5" {
		t.Errorf("gid after compacted reload = %q; want g@5", gid)
	}
	if id, ok := cg.EdgeID(e0.U, e0.V); !ok || cg.Prob(id) != 0.111 {
		t.Error("compacted sidecar lost an earlier patch")
	}
}

func TestStorePatchConflicts(t *testing.T) {
	store := NewStore(StoreConfig{})
	defer store.Close()
	g := ugs.TwitterLike(40, 2)
	if err := store.Add("g", g); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	e := g.Edge(0)
	batch := []ugs.EdgeEdit{{Op: ugs.EditReweight, U: e.U, V: e.V, P: 0.5}}

	if _, _, err := store.Patch(ctx, "nope", batch, 0); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("unknown name: %v", err)
	}
	if _, _, err := store.Patch(ctx, "g", batch, 7); !errors.Is(err, ErrPatchConflict) {
		t.Errorf("stale expect: %v", err)
	}
	var ee *ugs.EditError
	if _, _, err := store.Patch(ctx, "g", []ugs.EdgeEdit{{Op: ugs.EditDelete, U: 0, V: 0}}, 0); !errors.As(err, &ee) {
		t.Errorf("invalid batch: %v", err)
	}
	// A failed patch must not bump the generation.
	if _, gid, release, err := store.Acquire("g"); err != nil || gid != "g@1" {
		t.Fatalf("gen moved on failed patches: %q %v", gid, err)
	} else {
		release()
	}
}

// FuzzEdgePatch hammers the PATCH decode boundary: arbitrary bodies must
// never panic the handler, and every non-2xx outcome must be a typed error
// envelope (bad_request for malformed batches, conflict for version races).
func FuzzEdgePatch(f *testing.F) {
	ctx, cancel := context.WithCancel(context.Background())
	f.Cleanup(cancel)
	s, err := New(ctx, Config{})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })
	if err := s.Store().Add("g", ugs.TwitterLike(60, 5)); err != nil {
		f.Fatal(err)
	}
	h := s.Handler()

	for _, seed := range []string{
		`{"edits":[{"op":"reweight","u":0,"v":1,"p":0.5}]}`,
		`{"edits":[{"op":"insert","u":0,"v":59,"p":1.5}]}`,
		`{"edits":[{"op":"insert","u":0,"v":59,"p":-0.5}]}`,
		`{"edits":[{"op":"insert","u":0,"v":59,"p":null}]}`,
		`{"edits":[{"op":"delete","u":-1,"v":2}]}`,
		`{"edits":[{"op":"delete","u":0,"v":999999}]}`,
		`{"edits":[{"op":"reweight","u":0,"v":1,"p":0.5},{"op":"delete","u":1,"v":0}]}`,
		`{"edits":[{"op":"upsert","u":0,"v":1,"p":0.5}]}`,
		`{"edits":[{"op":"insert","u":3,"v":3,"p":0.5}]}`,
		`{"edits":[],"expect_version":2}`,
		`{"edits":[{"op":"reweight","u":0,"v":1,"p":0.5}],"expect_version":999}`,
		`{"edits":[{"op":"reweight","u":0,"v":1,"p":1e309}]}`,
		`{"edits":[{"op":"reweight","u":9223372036854775807,"v":1,"p":0.5}]}`,
		`{"edits": 7}`,
		`{"unknown_field": true}`,
		`not json at all`,
		``,
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, body string) {
		r := httptest.NewRequest("PATCH", "/v1/graphs/g/edges", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		switch {
		case w.Code >= 200 && w.Code < 300:
			var resp PatchResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Version < 2 {
				t.Fatalf("2xx body not a PatchResponse: %v\n%s", err, w.Body.String())
			}
		case w.Code == 400 || w.Code == 404 || w.Code == 409 || w.Code == 413:
			var env struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code == "" {
				t.Fatalf("%d without typed envelope: %v\n%s", w.Code, err, w.Body.String())
			}
			if env.Error.Code == string(CodePanic) || env.Error.Code == string(CodeInternal) {
				t.Fatalf("decode boundary leaked %s:\n%s", env.Error.Code, w.Body.String())
			}
		default:
			t.Fatalf("unexpected status %d:\n%s", w.Code, w.Body.String())
		}
	})
}
