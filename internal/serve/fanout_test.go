package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"ugs"
)

// TestQueryFanOutIsBitIdentical: the fan_out request knob changes how many
// sources one traversal carries, never the estimates — every value must be
// served from the same fan-out-agnostic cache entry as the auto-planned
// query, echoing the requested setting.
func TestQueryFanOutIsBitIdentical(t *testing.T) {
	s, g := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(11))
	pairs := ugs.RandomPairs(g.NumVertices(), 16, rng)
	reqPairs := make([][2]int, len(pairs))
	for i, p := range pairs {
		reqPairs[i] = [2]int{p.S, p.T}
	}

	var ref QueryResponse
	base := map[string]any{"graph": "g", "kind": "reliability", "pairs": reqPairs, "samples": 128, "seed": 5}
	if w := do(t, s, "POST", "/v1/query", base, &ref); w.Code != 200 {
		t.Fatalf("base query: %d %s", w.Code, w.Body.String())
	}
	if ref.FanOut != "auto" {
		t.Errorf("default fan_out echoed as %q, want auto", ref.FanOut)
	}
	for _, fan := range []string{"auto", "1", "8", "64"} {
		body := map[string]any{"graph": "g", "kind": "reliability", "pairs": reqPairs, "samples": 128, "seed": 5, "fan_out": fan}
		var resp QueryResponse
		if w := do(t, s, "POST", "/v1/query", body, &resp); w.Code != 200 {
			t.Fatalf("fan_out=%s: %d %s", fan, w.Code, w.Body.String())
		}
		if resp.FanOut != fan {
			t.Errorf("fan_out=%s echoed as %q", fan, resp.FanOut)
		}
		if !resp.Cached {
			t.Errorf("fan_out=%s: re-ran a fan-out-agnostic cached query", fan)
		}
		for i := range ref.Values {
			if *resp.Values[i] != *ref.Values[i] {
				t.Errorf("fan_out=%s pair %d: %v != %v", fan, i, *resp.Values[i], *ref.Values[i])
			}
		}
	}
	for _, bad := range []string{"0", "97", "wide"} {
		body := map[string]any{"graph": "g", "kind": "reliability", "pairs": reqPairs, "fan_out": bad}
		if w := do(t, s, "POST", "/v1/query", body, nil); w.Code != 400 {
			t.Errorf("fan_out=%s: %d, want 400", bad, w.Code)
		}
	}
}

// TestCoalescedFanOutMatchesDirect: requests coalesced into one merged
// multi-source flight (explicit FanOut pinned, so the flight's grouped
// traversals carry several riders' sources at once) must each receive
// results bit-identical to a direct per-source library call.
func TestCoalescedFanOutMatchesDirect(t *testing.T) {
	g := ugs.TwitterLike(90, 13)
	rng := rand.New(rand.NewSource(41))
	const seed, samples, fan = 19, 128, 8
	b, firstStarted, release := gatedBatcher(t)

	reqPairs := [][]ugs.Pair{
		ugs.RandomPairs(g.NumVertices(), 6, rng),
		ugs.RandomPairs(g.NumVertices(), 4, rng),
		ugs.RandomPairs(g.NumVertices(), 5, rng),
	}

	type out struct {
		sp, rl []float64
		err    error
	}
	results := make([]out, len(reqPairs))
	var wg sync.WaitGroup
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp, rl, err := b.PairQuery(context.Background(), "g@1", g, reqPairs[i],
				ugs.MCOptions{Seed: seed, Samples: samples, FanOut: fan})
			results[i] = out{sp, rl, err}
		}()
	}
	launch(0)
	<-firstStarted
	for i := 1; i < len(reqPairs); i++ {
		launch(i)
	}
	waitForPending(t, b, groupKey{graph: "g@1", seed: seed, samples: samples, fanout: fan}, len(reqPairs)-1)
	close(release)
	wg.Wait()

	for i, res := range results {
		if res.err != nil {
			t.Fatalf("request %d: %v", i, res.err)
		}
		directSP, directRL, err := ugs.ShortestDistanceAndReliability(
			context.Background(), g, reqPairs[i], ugs.MCOptions{Seed: seed, Samples: samples, FanOut: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !sameFloats(res.sp, directSP) {
			t.Errorf("request %d: coalesced multi-source SP differs from direct per-source call\n got %v\nwant %v", i, res.sp, directSP)
		}
		if !sameFloats(res.rl, directRL) {
			t.Errorf("request %d: coalesced multi-source RL differs from direct per-source call\n got %v\nwant %v", i, res.rl, directRL)
		}
	}
}

// TestBatcherGroupsByFanOut: like seed and samples, an explicit fan-out is
// part of the group identity — requests pinning different fan-outs must fly
// separately (results are identical either way; the separation keeps the
// execution shape the client asked for).
func TestBatcherGroupsByFanOut(t *testing.T) {
	g := ugs.TwitterLike(60, 21)
	rng := rand.New(rand.NewSource(43))
	pairs := ugs.RandomPairs(g.NumVertices(), 4, rng)
	b := NewBatcher(context.Background(), 0)

	var wg sync.WaitGroup
	for _, fan := range []int{0, 1, 8} {
		wg.Add(1)
		go func(fan int) {
			defer wg.Done()
			sp, rl, err := b.PairQuery(context.Background(), "g@1", g, pairs,
				ugs.MCOptions{Seed: 3, Samples: 64, FanOut: fan})
			if err != nil {
				t.Errorf("fan=%d: %v", fan, err)
				return
			}
			directSP, directRL, err := ugs.ShortestDistanceAndReliability(
				context.Background(), g, pairs, ugs.MCOptions{Seed: 3, Samples: 64})
			if err != nil {
				t.Errorf("direct: %v", err)
				return
			}
			if !sameFloats(sp, directSP) || !sameFloats(rl, directRL) {
				t.Errorf("fan=%d: grouped run differs from direct", fan)
			}
		}(fan)
	}
	wg.Wait()
}
