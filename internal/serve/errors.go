package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// ErrorCode is the machine-readable class of an API error. Clients branch on
// the code, never on message text; every non-2xx response from the service
// carries exactly one.
type ErrorCode string

const (
	// CodeBadRequest — the request itself is malformed or inconsistent.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeUnknownGraph — the named graph is not registered.
	CodeUnknownGraph ErrorCode = "unknown_graph"
	// CodeQuarantined — the graph exists but its backing file is failing to
	// load; retry after the quarantine backoff.
	CodeQuarantined ErrorCode = "quarantined"
	// CodeOverloaded — shed by admission control; retry after backoff.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeDraining — the server is shutting down and no longer admits work.
	CodeDraining ErrorCode = "draining"
	// CodeDeadline — the request deadline expired before the answer was ready.
	CodeDeadline ErrorCode = "deadline_exceeded"
	// CodeNotFound — the resource (job, endpoint) does not exist.
	CodeNotFound ErrorCode = "not_found"
	// CodeConflict — the request conflicts with existing state.
	CodeConflict ErrorCode = "conflict"
	// CodeInternal — an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
	// CodePanic — a handler panicked; the panic was recovered and counted.
	CodePanic ErrorCode = "internal_panic"
)

// APIError is the wire shape of every error the service returns, wrapped in
// an envelope: {"error": {"code": ..., "message": ..., "retry_after_ms": ...}}.
// RetryAfterMS is present only on retryable rejections (overloaded,
// quarantined, draining) and mirrors the Retry-After header.
type APIError struct {
	Code         ErrorCode `json:"code"`
	Message      string    `json:"message"`
	RetryAfterMS int64     `json:"retry_after_ms,omitempty"`
}

// Error implements error so the client package can surface APIError directly.
func (e *APIError) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

type errorEnvelope struct {
	Error APIError `json:"error"`
}

// writeError emits the typed error envelope. A non-zero retryAfter also sets
// the Retry-After header (whole seconds, rounded up, per RFC 9110).
func writeError(w http.ResponseWriter, status int, code ErrorCode, msg string, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	var ms int64
	if retryAfter > 0 {
		ms = retryAfter.Milliseconds()
		secs := (retryAfter + time.Second - 1) / time.Second
		w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: APIError{Code: code, Message: msg, RetryAfterMS: ms}})
}

// responseTap wraps a ResponseWriter to record whether the handler committed
// a response, so panic recovery knows if it may still write an envelope.
type responseTap struct {
	http.ResponseWriter
	wrote bool
}

func (t *responseTap) WriteHeader(status int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(status)
}

func (t *responseTap) Write(p []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(p)
}

// recoverPanics converts handler panics into 500 internal_panic envelopes
// instead of killing the connection (and, without http.Server's own recovery,
// the process for non-HTTP callers). onPanic observes every recovered value
// for counting; the stack is reported there so operators see it once, not
// per client.
func recoverPanics(next http.Handler, onPanic func(v any, stack []byte)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tap := &responseTap{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if onPanic != nil {
				onPanic(v, debug.Stack())
			}
			if !tap.wrote {
				writeError(tap, http.StatusInternalServerError, CodePanic,
					fmt.Sprintf("recovered panic: %v", v), 0)
			}
		}()
		next.ServeHTTP(tap, r)
	})
}
