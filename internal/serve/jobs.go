package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ugs"
	"ugs/internal/faults"
)

// JobState is the lifecycle of an async sparsify job.
type JobState string

const (
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// maxFinishedJobs bounds how many finished (done/failed/canceled) jobs are
// retained for polling: a long-lived service must not accumulate one map
// entry per job ever submitted. The oldest-finished jobs are pruned first;
// running jobs are never pruned.
const maxFinishedJobs = 64

// Jobs runs sparsifications asynchronously: submit returns immediately with
// an ID, progress is polled, DELETE cancels through context cancellation,
// and shutdown waits for every worker goroutine to exit (each observes the
// server's base context, so graceful shutdown aborts long runs promptly).
type Jobs struct {
	base   context.Context
	wg     sync.WaitGroup
	faults *faults.Injector
	panics atomic.Int64

	mu  sync.Mutex
	seq int
	m   map[string]*Job
}

// Job is one asynchronous sparsification run.
type Job struct {
	id     string
	cancel context.CancelFunc

	mu         sync.Mutex
	state      JobState
	iterations int
	objective  float64
	result     *SparsifyResponse
	errMsg     string
	created    time.Time
	finished   time.Time
}

// NewJobs returns a job runner whose jobs live within base.
func NewJobs(base context.Context) *Jobs {
	return &Jobs{base: base, m: make(map[string]*Job)}
}

// Start launches compute on a fresh goroutine under a cancellable child of
// the base context and returns the registered job. compute reports progress
// through the callback it is handed (a ugs.WithProgress hook).
func (j *Jobs) Start(compute func(ctx context.Context, progress func(ugs.RunStats)) (*SparsifyResponse, error)) *Job {
	ctx, cancel := context.WithCancel(j.base)
	j.mu.Lock()
	j.seq++
	job := &Job{
		id:      fmt.Sprintf("job-%d", j.seq),
		cancel:  cancel,
		state:   JobRunning,
		created: time.Now(),
	}
	j.m[job.id] = job
	j.pruneLocked()
	j.mu.Unlock()

	j.wg.Add(1)
	go func() {
		defer j.wg.Done()
		defer cancel()
		res, err := j.runJob(ctx, job, compute)
		job.mu.Lock()
		defer job.mu.Unlock()
		job.finished = time.Now()
		switch {
		case err == nil:
			job.state = JobDone
			job.result = res
		case ctx.Err() != nil:
			job.state = JobCanceled
			job.errMsg = ctx.Err().Error()
		default:
			job.state = JobFailed
			job.errMsg = err.Error()
		}
	}()
	return job
}

// runJob executes compute with panic containment: a panicking sparsifier
// (or an injected job.run fault) fails this one job instead of killing the
// process — the job goroutine is outside any HTTP handler, so without this
// recover a single panic would take down the whole service.
func (j *Jobs) runJob(ctx context.Context, job *Job, compute func(ctx context.Context, progress func(ugs.RunStats)) (*SparsifyResponse, error)) (res *SparsifyResponse, err error) {
	defer func() {
		if v := recover(); v != nil {
			j.panics.Add(1)
			res, err = nil, fmt.Errorf("job %s: recovered panic: %v", job.id, v)
		}
	}()
	if err := j.faults.Check("job.run"); err != nil {
		return nil, err
	}
	return compute(ctx, job.onProgress)
}

// pruneLocked drops the oldest-finished jobs beyond maxFinishedJobs.
// Callers hold j.mu.
func (j *Jobs) pruneLocked() {
	var finished []*Job
	for _, job := range j.m {
		job.mu.Lock()
		if job.state != JobRunning {
			finished = append(finished, job)
		}
		job.mu.Unlock()
	}
	if len(finished) <= maxFinishedJobs {
		return
	}
	sort.Slice(finished, func(a, b int) bool {
		return finished[a].finishedAt().Before(finished[b].finishedAt())
	})
	for _, job := range finished[:len(finished)-maxFinishedJobs] {
		delete(j.m, job.id)
	}
}

func (job *Job) finishedAt() time.Time {
	job.mu.Lock()
	defer job.mu.Unlock()
	return job.finished
}

func (job *Job) onProgress(s ugs.RunStats) {
	job.mu.Lock()
	job.iterations = s.Iterations
	job.objective = s.ObjectiveD1
	job.mu.Unlock()
}

// Get returns the job with the given ID.
func (j *Jobs) Get(id string) (*Job, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	job, ok := j.m[id]
	return job, ok
}

// Cancel aborts a running job's context. It reports whether the job exists;
// cancelling a finished job is a no-op.
func (j *Jobs) Cancel(id string) bool {
	j.mu.Lock()
	job, ok := j.m[id]
	j.mu.Unlock()
	if ok {
		job.cancel()
	}
	return ok
}

// CancelAll force-cancels every running job's own context — the shutdown
// backstop when cancelling the base context was not enough (a compute that
// derived further child contexts, or a caller that never cancelled base).
func (j *Jobs) CancelAll() {
	j.mu.Lock()
	jobs := make([]*Job, 0, len(j.m))
	for _, job := range j.m {
		jobs = append(jobs, job)
	}
	j.mu.Unlock()
	for _, job := range jobs {
		job.cancel()
	}
}

// Panics reports the number of job panics recovered.
func (j *Jobs) Panics() int64 { return j.panics.Load() }

// Wait blocks until every job goroutine has exited or the timeout elapses,
// reporting whether the drain completed. Cancel the base context first to
// make running jobs exit.
func (j *Jobs) Wait(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		j.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// JobStatus is the JSON shape of a job snapshot.
type JobStatus struct {
	ID       string            `json:"id"`
	State    JobState          `json:"state"`
	Progress JobProgress       `json:"progress"`
	Result   *SparsifyResponse `json:"result,omitempty"`
	Error    string            `json:"error,omitempty"`
	Created  time.Time         `json:"created"`
	Finished *time.Time        `json:"finished,omitempty"`
}

// JobProgress is the live iteration snapshot of a running job.
type JobProgress struct {
	Iterations int     `json:"iterations"`
	Objective  float64 `json:"objective_d1"`
}

// Status snapshots the job for JSON serialization.
func (job *Job) Status() JobStatus {
	job.mu.Lock()
	defer job.mu.Unlock()
	st := JobStatus{
		ID:       job.id,
		State:    job.state,
		Progress: JobProgress{Iterations: job.iterations, Objective: job.objective},
		Result:   job.result,
		Error:    job.errMsg,
		Created:  job.created,
	}
	if !job.finished.IsZero() {
		f := job.finished
		st.Finished = &f
	}
	return st
}

// List snapshots every job, sorted by ID.
func (j *Jobs) List() []JobStatus {
	j.mu.Lock()
	jobs := make([]*Job, 0, len(j.m))
	for _, job := range j.m {
		jobs = append(jobs, job)
	}
	j.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, job := range jobs {
		out[i] = job.Status()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
