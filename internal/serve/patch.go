package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"ugs"
)

// EditSpec is the wire form of one edge edit: op is "insert", "delete" or
// "reweight"; p carries the probability for insert and reweight and is
// ignored for delete.
type EditSpec struct {
	Op string  `json:"op"`
	U  int     `json:"u"`
	V  int     `json:"v"`
	P  float64 `json:"p,omitempty"`
}

// PatchRequest is the body of PATCH /v1/graphs/{name}/edges: one atomic edit
// batch. ExpectVersion, when non-zero, makes the patch conditional on the
// graph currently being at that version (optimistic concurrency — a lost
// race returns 409 conflict instead of silently patching newer state).
type PatchRequest struct {
	Edits         []EditSpec `json:"edits"`
	ExpectVersion int        `json:"expect_version,omitempty"`
	TimeoutMS     int64      `json:"timeout_ms,omitempty"`
}

// PatchResponse reports an applied patch: the graph's new version (the
// generation every cache key embeds, so all pre-patch cached results are
// unreachable) and its post-patch summary.
type PatchResponse struct {
	Graph   string    `json:"graph"`
	Version int       `json:"version"`
	Applied int       `json:"applied"`
	Info    GraphInfo `json:"info"`
}

// decodeEditSpecs maps wire edits to ugs.EdgeEdit, rejecting unknown op
// names; everything else (ranges, duplicates, probabilities) is validated
// atomically by ugs.ApplyEdits against the target graph.
func decodeEditSpecs(specs []EditSpec) ([]ugs.EdgeEdit, error) {
	if len(specs) == 0 {
		return nil, errors.New("empty edit batch")
	}
	edits := make([]ugs.EdgeEdit, len(specs))
	for i, sp := range specs {
		op, err := ugs.ParseEditOp(sp.Op)
		if err != nil {
			return nil, fmt.Errorf("edit %d: %w", i, err)
		}
		edits[i] = ugs.EdgeEdit{Op: op, U: sp.U, V: sp.V, P: sp.P}
	}
	return edits, nil
}

// handlePatchGraph applies a versioned edit batch to a stored graph.
func (s *Server) handlePatchGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req PatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	edits, err := decodeEditSpecs(req.Edits)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	info, gen, err := s.store.Patch(ctx, name, edits, req.ExpectVersion)
	if err != nil {
		s.writePatchErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PatchResponse{Graph: name, Version: gen, Applied: len(edits), Info: info})
}

// writePatchErr maps patch failures: a rejected batch is the caller's fault
// (400 bad_request with the offending edit), a lost race is 409 conflict,
// and acquire failures keep their typed codes.
func (s *Server) writePatchErr(w http.ResponseWriter, err error) {
	var ee *ugs.EditError
	switch {
	case errors.As(err, &ee):
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
	case errors.Is(err, ErrPatchConflict):
		writeError(w, http.StatusConflict, CodeConflict, err.Error(), 0)
	default:
		s.writeAcquireErr(w, err)
	}
}

// Patch applies an edit batch through a Client. Not idempotent — a retry of
// a timed-out patch could apply the batch twice — so failures return
// immediately; callers wanting exactly-once semantics should send
// ExpectVersion and retry only on 409.
func (c *Client) Patch(ctx context.Context, graph string, req *PatchRequest) (*PatchResponse, error) {
	var resp PatchResponse
	if err := c.do(ctx, http.MethodPatch, "/v1/graphs/"+graph+"/edges", req, &resp, false); err != nil {
		return nil, err
	}
	return &resp, nil
}
