package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is returned by Limiter.Acquire when the wait queue is full:
// the server is saturated and the request should be shed, not parked.
var ErrOverloaded = errors.New("overloaded: admission queue full")

// Limiter is a weighted-concurrency admission controller: each request
// declares a cost (for queries, samples × lanes × graph arcs — the work the
// Monte-Carlo engine will actually stream) and Acquire admits it when the
// outstanding cost fits the capacity. Requests that do not fit park in a
// bounded FIFO queue; when the queue is full they are shed immediately with
// ErrOverloaded so the client can back off, instead of piling up goroutines
// until memory or tail latency gives out.
//
// Admission is strictly FIFO — a cheap request never barges past a queued
// expensive one, so heavy adaptive queries cannot be starved by a stream of
// point lookups. A cost larger than the whole capacity is clamped to it:
// oversized work is admitted (alone) when the limiter fully drains rather
// than rejected forever.
type Limiter struct {
	capacity int64
	maxQueue int

	mu      sync.Mutex
	inUse   int64
	waiters *list.List // of *limiterWaiter, FIFO

	admitted  int64
	shed      int64
	cancelled int64
	queuedAcc int64 // total requests that ever queued (for stats)

	// ewmaWait tracks a decaying mean of recent queue waits, feeding the
	// Retry-After hint handed to shed clients.
	ewmaWait time.Duration
}

type limiterWaiter struct {
	cost  int64
	ready chan struct{}
	since time.Time
}

// NewLimiter builds a limiter admitting up to capacity units of outstanding
// cost with at most maxQueue requests waiting. capacity <= 0 disables
// limiting entirely (Acquire always admits); maxQueue < 0 means an unbounded
// queue (never shed).
func NewLimiter(capacity int64, maxQueue int) *Limiter {
	return &Limiter{capacity: capacity, maxQueue: maxQueue, waiters: list.New()}
}

// Acquire admits cost units of work, blocking in FIFO order until capacity
// frees, ctx is done, or the queue is full (ErrOverloaded). On success the
// caller must call the returned release exactly once when the work finishes.
func (l *Limiter) Acquire(ctx context.Context, cost int64) (release func(), err error) {
	if l == nil || l.capacity <= 0 {
		return func() {}, nil
	}
	if cost < 1 {
		cost = 1
	}
	if cost > l.capacity {
		cost = l.capacity
	}

	l.mu.Lock()
	// Admit immediately only when capacity fits AND nobody is ahead of us —
	// the no-barging rule that keeps admission FIFO.
	if l.waiters.Len() == 0 && l.inUse+cost <= l.capacity {
		l.inUse += cost
		l.admitted++
		l.mu.Unlock()
		return l.releaseFunc(cost), nil
	}
	if l.maxQueue >= 0 && l.waiters.Len() >= l.maxQueue {
		l.shed++
		l.mu.Unlock()
		return nil, ErrOverloaded
	}
	w := &limiterWaiter{cost: cost, ready: make(chan struct{}), since: time.Now()}
	elem := l.waiters.PushBack(w)
	l.queuedAcc++
	l.mu.Unlock()

	select {
	case <-w.ready:
		// Admitted by a releaser, which already accounted our cost.
		l.mu.Lock()
		l.noteWait(time.Since(w.since))
		l.mu.Unlock()
		return l.releaseFunc(cost), nil
	case <-ctx.Done():
		l.mu.Lock()
		select {
		case <-w.ready:
			// Lost the race: a release admitted us between ctx firing and
			// taking the lock. Hand the capacity straight back.
			l.inUse -= cost
			l.admitNextLocked()
		default:
			l.waiters.Remove(elem)
			l.cancelled++
		}
		l.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (l *Limiter) releaseFunc(cost int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			l.inUse -= cost
			l.admitNextLocked()
			l.mu.Unlock()
		})
	}
}

// admitNextLocked admits queued waiters in FIFO order while they fit.
func (l *Limiter) admitNextLocked() {
	for e := l.waiters.Front(); e != nil; e = l.waiters.Front() {
		w := e.Value.(*limiterWaiter)
		if l.inUse+w.cost > l.capacity {
			return // head doesn't fit; nobody behind it may barge
		}
		l.inUse += w.cost
		l.admitted++
		l.waiters.Remove(e)
		close(w.ready)
	}
}

// noteWait folds a completed queue wait into the decaying mean (α = 1/4).
func (l *Limiter) noteWait(d time.Duration) {
	if l.ewmaWait == 0 {
		l.ewmaWait = d
		return
	}
	l.ewmaWait += (d - l.ewmaWait) / 4
}

// Pressure reports saturation in [0, +∞): outstanding plus queued cost over
// capacity. ≥ 1 means the limiter is full and new work queues; the server
// starts degrading adaptive budgets well before that (see degradePressure).
func (l *Limiter) Pressure() float64 {
	if l == nil || l.capacity <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	queued := int64(0)
	for e := l.waiters.Front(); e != nil; e = e.Next() {
		queued += e.Value.(*limiterWaiter).cost
	}
	return float64(l.inUse+queued) / float64(l.capacity)
}

// RetryAfter suggests how long a shed client should wait before retrying:
// the recent mean queue wait, clamped to [1s, 30s].
func (l *Limiter) RetryAfter() time.Duration {
	if l == nil {
		return time.Second
	}
	l.mu.Lock()
	d := l.ewmaWait
	l.mu.Unlock()
	if d < time.Second {
		return time.Second
	}
	if d > 30*time.Second {
		return 30 * time.Second
	}
	return d
}

// LimiterStats is a point-in-time snapshot for /v1/stats.
type LimiterStats struct {
	Capacity  int64   `json:"capacity"`
	InUse     int64   `json:"in_use"`
	Queued    int     `json:"queued"`
	MaxQueue  int     `json:"max_queue"`
	Admitted  int64   `json:"admitted"`
	Shed      int64   `json:"shed"`
	Cancelled int64   `json:"cancelled_waits"`
	EverQueue int64   `json:"total_queued"`
	Pressure  float64 `json:"pressure"`
}

// Stats snapshots the limiter. Nil-safe (an unlimited server reports zeroes).
func (l *Limiter) Stats() LimiterStats {
	if l == nil || l.capacity <= 0 {
		return LimiterStats{}
	}
	l.mu.Lock()
	queued := int64(0)
	n := 0
	for e := l.waiters.Front(); e != nil; e = e.Next() {
		queued += e.Value.(*limiterWaiter).cost
		n++
	}
	s := LimiterStats{
		Capacity:  l.capacity,
		InUse:     l.inUse,
		Queued:    n,
		MaxQueue:  l.maxQueue,
		Admitted:  l.admitted,
		Shed:      l.shed,
		Cancelled: l.cancelled,
		EverQueue: l.queuedAcc,
		Pressure:  float64(l.inUse+queued) / float64(l.capacity),
	}
	l.mu.Unlock()
	return s
}
