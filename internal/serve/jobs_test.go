package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"ugs"
)

// waitState polls a job until it leaves JobRunning.
func waitState(t *testing.T, job *Job) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := job.Status()
		if st.State != JobRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJobsLifecycle(t *testing.T) {
	jobs := NewJobs(context.Background())

	// Success path, with progress observed mid-run.
	started := make(chan struct{})
	release := make(chan struct{})
	job := jobs.Start(func(ctx context.Context, progress func(ugs.RunStats)) (*SparsifyResponse, error) {
		progress(ugs.RunStats{Iterations: 3, ObjectiveD1: 1.5})
		close(started)
		<-release
		return &SparsifyResponse{ID: "sp-x"}, nil
	})
	<-started
	if st := job.Status(); st.State != JobRunning || st.Progress.Iterations != 3 || st.Progress.Objective != 1.5 {
		t.Errorf("mid-run status: %+v", st)
	}
	close(release)
	if st := waitState(t, job); st.State != JobDone || st.Result == nil || st.Result.ID != "sp-x" || st.Finished == nil {
		t.Errorf("done status: %+v", st)
	}

	// Failure path.
	fail := jobs.Start(func(ctx context.Context, _ func(ugs.RunStats)) (*SparsifyResponse, error) {
		return nil, errors.New("kaput")
	})
	if st := waitState(t, fail); st.State != JobFailed || st.Error != "kaput" {
		t.Errorf("failed status: %+v", st)
	}

	// Cancellation path: the compute blocks on its context.
	blocked := jobs.Start(func(ctx context.Context, _ func(ugs.RunStats)) (*SparsifyResponse, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if !jobs.Cancel(blocked.id) {
		t.Fatal("cancel reported unknown job")
	}
	if st := waitState(t, blocked); st.State != JobCanceled {
		t.Errorf("canceled status: %+v", st)
	}
	if jobs.Cancel("job-999") {
		t.Error("cancel of unknown job reported true")
	}

	if got := len(jobs.List()); got != 3 {
		t.Errorf("listed %d jobs, want 3", got)
	}
	if !jobs.Wait(time.Second) {
		t.Error("jobs did not drain")
	}
}

// TestJobsPruneFinished: a long-lived service keeps at most maxFinishedJobs
// finished jobs (oldest pruned first) while running jobs are never pruned.
func TestJobsPruneFinished(t *testing.T) {
	jobs := NewJobs(context.Background())
	release := make(chan struct{})
	running := jobs.Start(func(ctx context.Context, _ func(ugs.RunStats)) (*SparsifyResponse, error) {
		<-release
		return nil, nil
	})
	for i := 0; i < maxFinishedJobs+20; i++ {
		j := jobs.Start(func(ctx context.Context, _ func(ugs.RunStats)) (*SparsifyResponse, error) {
			return &SparsifyResponse{}, nil
		})
		waitState(t, j)
	}
	// One more submission triggers the prune of the oldest finished jobs.
	last := jobs.Start(func(ctx context.Context, _ func(ugs.RunStats)) (*SparsifyResponse, error) {
		return &SparsifyResponse{}, nil
	})
	waitState(t, last)

	list := jobs.List()
	if len(list) > maxFinishedJobs+2 { // retained finished + running + last
		t.Errorf("retained %d jobs, want ≤ %d", len(list), maxFinishedJobs+2)
	}
	if _, ok := jobs.Get(running.id); !ok {
		t.Error("running job was pruned")
	}
	// job-1 is the (never-finished) running job; job-2 finished first, so
	// it must be among the pruned.
	if _, ok := jobs.Get("job-2"); ok {
		t.Error("oldest finished job survived the prune")
	}
	close(release)
	if !jobs.Wait(time.Second) {
		t.Error("drain timed out")
	}
}

func TestJobsShutdownCancelsRunning(t *testing.T) {
	base, cancel := context.WithCancel(context.Background())
	jobs := NewJobs(base)
	job := jobs.Start(func(ctx context.Context, _ func(ugs.RunStats)) (*SparsifyResponse, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	cancel() // server shutdown
	if st := waitState(t, job); st.State != JobCanceled {
		t.Errorf("state after shutdown: %s", st.State)
	}
	if !jobs.Wait(time.Second) {
		t.Error("drain timed out")
	}
}

// TestJobEndpoints drives the async path over HTTP: create, poll to done,
// verify the result matches the synchronous endpoint (same cache identity),
// and cancel a second job.
func TestJobEndpoints(t *testing.T) {
	s, _ := newTestServer(t, Config{})

	var created JobStatus
	if w := do(t, s, "POST", "/v1/jobs", sparsifyBody("g", 0.3, "emd", 4), &created); w.Code != 202 {
		t.Fatalf("create job: %d %s", w.Code, w.Body.String())
	}
	if created.ID == "" {
		t.Fatal("no job id")
	}

	deadline := time.Now().Add(15 * time.Second)
	var st JobStatus
	for {
		if w := do(t, s, "GET", "/v1/jobs/"+created.ID, nil, &st); w.Code != 200 {
			t.Fatalf("poll: %d", w.Code)
		}
		if st.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != JobDone || st.Result == nil {
		t.Fatalf("job result: %+v", st)
	}

	// The job populated the shared cache: the synchronous endpoint now
	// hits without recomputing.
	computes := s.Computes()
	var sync SparsifyResponse
	if w := do(t, s, "POST", "/v1/sparsify", sparsifyBody("g", 0.3, "emd", 4), &sync); w.Code != 200 {
		t.Fatalf("sync after job: %d", w.Code)
	}
	if !sync.Cached || sync.ID != st.Result.ID || s.Computes() != computes {
		t.Errorf("job result not shared with sync path: cached=%v id=%s/%s computes %d→%d",
			sync.Cached, sync.ID, st.Result.ID, computes, s.Computes())
	}

	// Unknown job handling.
	if w := do(t, s, "GET", "/v1/jobs/job-999", nil, nil); w.Code != 404 {
		t.Errorf("unknown job: %d", w.Code)
	}
	if w := do(t, s, "DELETE", "/v1/jobs/job-999", nil, nil); w.Code != 404 {
		t.Errorf("cancel unknown job: %d", w.Code)
	}

	// Job listing includes the finished job.
	var list []JobStatus
	if w := do(t, s, "GET", "/v1/jobs", nil, &list); w.Code != 200 || len(list) != 1 {
		t.Errorf("job list: %d %v", w.Code, list)
	}

	// Cancel a job that is deliberately slow (an LP run on an uploaded
	// denser graph would be slow, but blocking on context inside the
	// compute is deterministic: use a held singleflight key).
	if w := do(t, s, "DELETE", "/v1/jobs/"+created.ID, nil, nil); w.Code != 200 {
		t.Errorf("cancel finished job: %d (cancelling a done job is a no-op, not an error)", w.Code)
	}
}
