package serve

import (
	"context"
	"sync"
	"testing"

	"ugs"
)

func bgCtx() context.Context { return context.Background() }

func block(v uint64, n int) []uint64 {
	b := make([]uint64, n)
	for i := range b {
		b[i] = v
	}
	return b
}

func TestWorldCacheHitsAndLRUEviction(t *testing.T) {
	// Budget for exactly two 4-word blocks (32 bytes each).
	c := NewWorldCache(64)
	key := func(i int) ugs.FillKey { return ugs.FillKey{Graph: "g@1", Seed: 7, Block: i} }
	fills := 0
	get := func(i int) []uint64 {
		return c.GetOrFill(key(i), func() []uint64 { fills++; return block(uint64(i), 4) })
	}

	a := get(0)
	if got := get(0); &got[0] != &a[0] || fills != 1 {
		t.Fatalf("repeat GetOrFill refilled (fills=%d) or returned a copy", fills)
	}
	get(1) // cache now holds {0, 1}, 0 least recent after...
	get(0) // ...this touch makes 1 the LRU victim
	get(2) // evicts 1
	fills = 0
	get(0) // still cached
	get(2) // still cached
	if fills != 0 {
		t.Fatalf("resident blocks were refilled %d times", fills)
	}
	get(1) // evicted earlier: must refill
	if fills != 1 {
		t.Fatalf("evicted block not refilled (fills=%d)", fills)
	}

	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 64 || st.Evictions < 2 {
		t.Errorf("stats after eviction churn: %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("counters not advancing: %+v", st)
	}
}

func TestWorldCacheOverBudgetBlockServedUncached(t *testing.T) {
	c := NewWorldCache(16) // two words of budget
	got := c.GetOrFill(ugs.FillKey{Graph: "g@1"}, func() []uint64 { return block(9, 8) })
	if len(got) != 8 || got[0] != 9 {
		t.Fatalf("oversized block mangled: %v", got)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("oversized block was cached: %+v", st)
	}
}

// TestWorldCacheConcurrent hammers overlapping keys from many goroutines
// (the -race half of the contract): every returned slice must carry the
// deterministic content of its key, no matter who filled it.
func TestWorldCacheConcurrent(t *testing.T) {
	c := NewWorldCache(1 << 12)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := ugs.FillKey{Graph: "g@1", Seed: int64(w % 2), Block: i % 17}
				want := uint64(k.Seed)<<32 | uint64(k.Block)
				got := c.GetOrFill(k, func() []uint64 { return block(want, 8) })
				for _, v := range got {
					if v != want {
						t.Errorf("key %+v returned block of %x, want %x", k, v, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Hits == 0 {
		t.Errorf("concurrent churn produced no hits: %+v", st)
	}
}

// TestWorldCacheEndToEndBitIdentical is the integration contract: the same
// estimator with and without the serve world cache must agree bit-for-bit,
// and a second run over the same (graph, seed) stream must hit the cache.
func TestWorldCacheEndToEndBitIdentical(t *testing.T) {
	g := ugs.TwitterLike(70, 5)
	pairs := []ugs.Pair{{S: 0, T: 40}, {S: 3, T: 9}}
	c := NewWorldCache(1 << 20)
	plain := ugs.MCOptions{Seed: 5, Samples: 320}
	cachedOpts := plain
	cachedOpts.FillCache, cachedOpts.FillID = c, "g@1"

	spP, rlP, err := ugs.ShortestDistanceAndReliability(bgCtx(), g, pairs, plain)
	if err != nil {
		t.Fatal(err)
	}
	spC, rlC, err := ugs.ShortestDistanceAndReliability(bgCtx(), g, pairs, cachedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(spP, spC) || !sameFloats(rlP, rlC) {
		t.Fatalf("cached run differs from plain run:\nSP %v vs %v\nRL %v vs %v", spC, spP, rlC, rlP)
	}
	misses := c.Stats().Misses
	if misses == 0 {
		t.Fatal("first cached run filled nothing")
	}
	// A different query kind over the same stream reuses the worlds.
	if _, err := ugs.ConnectedProbability(bgCtx(), g, cachedOpts); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != misses {
		t.Errorf("connectivity re-sampled %d blocks the reliability run already filled", st.Misses-misses)
	}
	if st.Hits == 0 {
		t.Error("cross-kind reuse produced no hits")
	}
}
