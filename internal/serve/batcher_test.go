package serve

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ugs"
)

// gatedBatcher wraps the real pair runner so the test controls flight
// boundaries: the first flight blocks until released, guaranteeing that
// requests submitted meanwhile coalesce into the second flight.
func gatedBatcher(t *testing.T) (b *Batcher, firstStarted chan struct{}, release chan struct{}) {
	t.Helper()
	b = NewBatcher(context.Background(), 0)
	real := b.run
	firstStarted = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	b.run = func(ctx context.Context, g *ugs.Graph, pairs []ugs.Pair, opts ugs.MCOptions) ([]float64, []float64, error) {
		gate := false
		once.Do(func() { gate = true })
		if gate {
			close(firstStarted)
			<-release
		}
		return real(ctx, g, pairs, opts)
	}
	return b, firstStarted, release
}

// sameFloats compares element-wise with NaN == NaN (distance of a
// never-connected pair).
func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

// TestCoalescedMatchesDirect is the tentpole equivalence assertion: pair
// queries served from a shared coalesced flight are bit-identical to direct
// ugs library calls with the same (graph, seed, samples), for every rider.
func TestCoalescedMatchesDirect(t *testing.T) {
	g := ugs.TwitterLike(90, 3)
	rng := rand.New(rand.NewSource(17))
	const seed, samples = 11, 192
	b, firstStarted, release := gatedBatcher(t)

	// Four requests with distinct pair sets (overlapping pairs included).
	reqPairs := [][]ugs.Pair{
		ugs.RandomPairs(g.NumVertices(), 7, rng),
		ugs.RandomPairs(g.NumVertices(), 3, rng),
		ugs.RandomPairs(g.NumVertices(), 5, rng),
		nil,
	}
	reqPairs[3] = append([]ugs.Pair{}, reqPairs[0][:2]...) // duplicates across requests

	type out struct {
		sp, rl []float64
		err    error
	}
	results := make([]out, len(reqPairs))
	var wg sync.WaitGroup
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp, rl, err := b.PairQuery(context.Background(), "g@1", g, reqPairs[i], ugs.MCOptions{Seed: seed, Samples: samples})
			results[i] = out{sp, rl, err}
		}()
	}

	launch(0) // rides flight 1, which blocks on the gate
	<-firstStarted
	for i := 1; i < len(reqPairs); i++ {
		launch(i) // queue while flight 1 is in progress → all share flight 2
	}
	// The queued requests must be pending before flight 1 finishes; poll
	// the batcher state to avoid a timing assumption.
	waitForPending(t, b, groupKey{graph: "g@1", seed: seed, samples: samples}, len(reqPairs)-1)
	close(release)
	wg.Wait()

	for i, res := range results {
		if res.err != nil {
			t.Fatalf("request %d: %v", i, res.err)
		}
		directSP, directRL, err := ugs.ShortestDistanceAndReliability(
			context.Background(), g, reqPairs[i], ugs.MCOptions{Seed: seed, Samples: samples})
		if err != nil {
			t.Fatal(err)
		}
		if !sameFloats(res.sp, directSP) {
			t.Errorf("request %d: coalesced SP differs from direct call\n got %v\nwant %v", i, res.sp, directSP)
		}
		if !sameFloats(res.rl, directRL) {
			t.Errorf("request %d: coalesced RL differs from direct call\n got %v\nwant %v", i, res.rl, directRL)
		}
	}

	st := b.Stats()
	if st.Flights != 2 {
		t.Errorf("flights = %d, want 2 (one solo + one coalesced)", st.Flights)
	}
	if st.Coalesced != int64(len(reqPairs)-2) {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, len(reqPairs)-2)
	}
	if st.MaxFlight != int64(len(reqPairs)-1) {
		t.Errorf("max flight = %d, want %d", st.MaxFlight, len(reqPairs)-1)
	}
	if st.Requests != int64(len(reqPairs)) {
		t.Errorf("requests = %d, want %d", st.Requests, len(reqPairs))
	}
}

// waitForPending blocks until the group has n pending requests.
func waitForPending(t *testing.T, b *Batcher, key groupKey, n int) {
	t.Helper()
	for i := 0; ; i++ {
		b.mu.Lock()
		grp, ok := b.groups[key]
		pending := 0
		if ok {
			pending = len(grp.pending)
		}
		b.mu.Unlock()
		if pending >= n {
			return
		}
		if i > 5000 {
			t.Fatalf("pending stuck at %d, want %d", pending, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatcherGroupsBySeedAndSamples: requests with different sample streams
// must never share worlds, even when concurrent.
func TestBatcherGroupsBySeedAndSamples(t *testing.T) {
	g := ugs.TwitterLike(60, 5)
	rng := rand.New(rand.NewSource(23))
	pairs := ugs.RandomPairs(g.NumVertices(), 4, rng)
	b := NewBatcher(context.Background(), 0)

	type variant struct{ seed, samples int64 }
	var wg sync.WaitGroup
	for _, v := range []variant{{1, 64}, {2, 64}, {1, 128}} {
		wg.Add(1)
		go func(v variant) {
			defer wg.Done()
			sp, rl, err := b.PairQuery(context.Background(), "g@1", g, pairs, ugs.MCOptions{Seed: v.seed, Samples: int(v.samples)})
			if err != nil {
				t.Errorf("seed=%d samples=%d: %v", v.seed, v.samples, err)
				return
			}
			directSP, directRL, err := ugs.ShortestDistanceAndReliability(
				context.Background(), g, pairs, ugs.MCOptions{Seed: v.seed, Samples: int(v.samples)})
			if err != nil {
				t.Errorf("direct: %v", err)
				return
			}
			if !sameFloats(sp, directSP) || !sameFloats(rl, directRL) {
				t.Errorf("seed=%d samples=%d: grouped run differs from direct", v.seed, v.samples)
			}
		}(v)
	}
	wg.Wait()
}

// TestBatcherAbandonedWaiter: a rider whose context dies gets an error
// while the flight itself keeps serving the others.
func TestBatcherAbandonedWaiter(t *testing.T) {
	g := ugs.TwitterLike(60, 9)
	rng := rand.New(rand.NewSource(31))
	pairs := ugs.RandomPairs(g.NumVertices(), 3, rng)
	b, firstStarted, release := gatedBatcher(t)

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderErr error
	go func() {
		defer wg.Done()
		_, _, leaderErr = b.PairQuery(context.Background(), "g@1", g, pairs, ugs.MCOptions{Seed: 1, Samples: 64})
	}()
	<-firstStarted

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := b.PairQuery(ctx, "g@1", g, pairs, ugs.MCOptions{Seed: 1, Samples: 64}); err != context.Canceled {
		t.Errorf("abandoned rider: err = %v, want context.Canceled", err)
	}
	close(release)
	wg.Wait()
	if leaderErr != nil {
		t.Errorf("leader failed after rider abandoned: %v", leaderErr)
	}
}
