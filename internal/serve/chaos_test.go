package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ugs"
	"ugs/internal/faults"
)

// mustFaults parses a fault spec or fails the test.
func mustFaults(t *testing.T, spec string, seed int64) *faults.Injector {
	t.Helper()
	inj, err := faults.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// decodeEnvelope decodes a response body as the typed error envelope,
// failing the test when it is not one.
func decodeEnvelope(t *testing.T, w *httptest.ResponseRecorder) APIError {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code == "" {
		t.Fatalf("not a typed error envelope (%v): %s", err, w.Body.String())
	}
	return env.Error
}

// TestErrorEnvelopeShape: an unknown graph and a quarantined graph must be
// the SAME wire shape — one envelope, differing only in code, status and
// Retry-After — so clients branch on code without special cases.
func TestErrorEnvelopeShape(t *testing.T) {
	dir := t.TempDir()
	writeCorruptUgsb(t, dir, "bad.ugsb")
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s, err := New(ctx, Config{GraphDir: dir, QuarantineBase: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	query := func(graph string) *httptest.ResponseRecorder {
		return do(t, s, "POST", "/v1/query",
			map[string]any{"graph": graph, "kind": "reliability", "pairs": [][2]int{{0, 1}}, "samples": 8}, nil)
	}

	w := query("no-such-graph")
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown graph: %d, want 404", w.Code)
	}
	unknown := decodeEnvelope(t, w)
	if unknown.Code != CodeUnknownGraph {
		t.Fatalf("unknown graph code = %q, want %q", unknown.Code, CodeUnknownGraph)
	}

	w = query("bad")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined graph: %d, want 503", w.Code)
	}
	quar := decodeEnvelope(t, w)
	if quar.Code != CodeQuarantined {
		t.Fatalf("quarantined code = %q, want %q", quar.Code, CodeQuarantined)
	}
	if quar.RetryAfterMS <= 0 || w.Header().Get("Retry-After") == "" {
		t.Fatalf("quarantined response missing Retry-After: %+v, header %q", quar, w.Header().Get("Retry-After"))
	}

	// Same shape: both bodies are a bare {"error":{...}} object.
	for _, body := range []string{query("no-such-graph").Body.String(), query("bad").Body.String()} {
		var outer map[string]json.RawMessage
		if err := json.Unmarshal([]byte(body), &outer); err != nil || len(outer) != 1 {
			t.Fatalf("body is not a bare envelope: %s", body)
		}
		if _, ok := outer["error"]; !ok {
			t.Fatalf("envelope missing \"error\": %s", body)
		}
	}
}

// TestPanicRecoveryMiddleware: an injected handler panic becomes a typed 500
// internal_panic envelope, is counted, and the server keeps serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s, _ := newTestServer(t, Config{Faults: mustFaults(t, "handler.query:panic@0.5", 12)})

	var panics, ok int
	for i := 0; i < 20; i++ {
		w := do(t, s, "POST", "/v1/query",
			map[string]any{"graph": "g", "kind": "reliability", "pairs": [][2]int{{0, 1}}, "samples": 8, "seed": int64(i)}, nil)
		switch w.Code {
		case http.StatusInternalServerError:
			if e := decodeEnvelope(t, w); e.Code != CodePanic {
				t.Fatalf("panic response code = %q, want %q", e.Code, CodePanic)
			}
			panics++
		case http.StatusOK:
			ok++
		default:
			t.Fatalf("unexpected status %d: %s", w.Code, w.Body.String())
		}
	}
	if panics == 0 || ok == 0 {
		t.Fatalf("want a mix of panics and successes at rate 0.5, got %d panics / %d ok", panics, ok)
	}
	if got := s.resilience.handlerPanics.Load(); got != int64(panics) {
		t.Fatalf("handlerPanics = %d, want %d", got, panics)
	}
	var stats StatsResponse
	if w := do(t, s, "GET", "/v1/stats", nil, &stats); w.Code != 200 {
		t.Fatalf("stats after panics: %d", w.Code)
	}
	if stats.Resilience.HandlerPanics != int64(panics) || stats.Resilience.FaultsInjected == 0 {
		t.Fatalf("resilience stats = %+v", stats.Resilience)
	}
}

// TestDrainGate: once draining, every endpoint but /healthz turns work away
// with a typed 503 so balancers fail over, and the rejections are counted.
func TestDrainGate(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	s.StartDrain()

	w := do(t, s, "POST", "/v1/query",
		map[string]any{"graph": "g", "kind": "reliability", "pairs": [][2]int{{0, 1}}, "samples": 8}, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %d, want 503", w.Code)
	}
	if e := decodeEnvelope(t, w); e.Code != CodeDraining {
		t.Fatalf("draining code = %q, want %q", e.Code, CodeDraining)
	}
	if w := do(t, s, "GET", "/healthz", nil, nil); w.Code != 200 {
		t.Fatalf("healthz while draining: %d, want 200", w.Code)
	}
	if got := s.resilience.drainRejected.Load(); got != 1 {
		t.Fatalf("drainRejected = %d, want 1 (healthz must not count)", got)
	}
}

// TestRequestTimeout: a request whose timeout_ms cannot cover the work gets
// a typed 504 deadline_exceeded, not a hang — here the store itself is made
// slow, so the deadline dies during graph acquisition (the 1-byte budget
// evicts the boot-loaded graph, forcing the query through a faulted reload).
func TestRequestTimeout(t *testing.T) {
	dir, _ := writeUgsbDir(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s, err := New(ctx, Config{GraphDir: dir, StoreBudgetBytes: 1,
		Faults: mustFaults(t, "store.read:slow=500ms", 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	// Park a background acquirer as the loader: it stalls inside the
	// injected 500ms read, so the request below queues behind the in-flight
	// load and its 50ms deadline expires while waiting.
	loaderDone := make(chan struct{})
	go func() {
		defer close(loaderDone)
		if _, _, rel, err := s.Store().AcquireCtx(context.Background(), "g0"); err == nil {
			rel()
		}
	}()
	t.Cleanup(func() { <-loaderDone })
	time.Sleep(100 * time.Millisecond) // loader is inside the slow read

	w := do(t, s, "POST", "/v1/query",
		map[string]any{"graph": "g0", "kind": "reliability", "pairs": [][2]int{{0, 1}},
			"samples": 8, "timeout_ms": 50}, nil)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow acquire: %d, want 504\n%s", w.Code, w.Body.String())
	}
	if e := decodeEnvelope(t, w); e.Code != CodeDeadline {
		t.Fatalf("deadline code = %q, want %q", e.Code, CodeDeadline)
	}
	if got := s.resilience.timeouts.Load(); got == 0 {
		t.Fatal("timeouts counter not incremented")
	}
}

// TestOverloadShedsWith429: with capacity held and the wait queue full, new
// queries shed immediately with a retryable typed 429.
func TestOverloadShedsWith429(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxCost: 1000, MaxQueue: 1})

	// Hold the whole capacity, then park one waiter to fill the queue.
	release, err := s.limiter.Acquire(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	waiterCtx, waiterCancel := context.WithCancel(context.Background())
	defer waiterCancel()
	go func() {
		if rel, err := s.limiter.Acquire(waiterCtx, 1); err == nil {
			rel()
		}
	}()
	for i := 0; s.limiter.Stats().Queued != 1; i++ {
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	w := do(t, s, "POST", "/v1/query",
		map[string]any{"graph": "g", "kind": "reliability", "pairs": [][2]int{{0, 1}}, "samples": 8}, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded query: %d, want 429\n%s", w.Code, w.Body.String())
	}
	e := decodeEnvelope(t, w)
	if e.Code != CodeOverloaded || e.RetryAfterMS < 1000 {
		t.Fatalf("shed envelope = %+v, want overloaded with Retry-After >= 1s", e)
	}
	var stats StatsResponse
	do(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Limiter.Shed == 0 || stats.Resilience.Shed == 0 {
		t.Fatalf("shed not counted: limiter %+v resilience %+v", stats.Limiter, stats.Resilience)
	}
}

// TestDegradedAdaptiveQuery: under limiter pressure an adaptive query
// shrinks its budget and answers degraded (with its achieved accuracy)
// instead of queueing at full cost; a repeat hit serves the degraded entry
// stale and kicks off exactly one background full-budget revalidation.
func TestDegradedAdaptiveQuery(t *testing.T) {
	s, g := newTestServer(t, Config{MaxCost: 1 << 40, MaxSamples: 4096})

	// Occupy 80% of capacity so Pressure() crosses the 0.75 default.
	release, err := s.limiter.Acquire(context.Background(), (1<<40)*8/10)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	body := map[string]any{"graph": "g", "kind": "reliability",
		"pairs": [][2]int{{0, g.NumVertices() - 1}}, "seed": 3,
		"confidence": map[string]any{"eps": 0.00001}} // unreachably tight: never converges
	var resp QueryResponse
	if w := do(t, s, "POST", "/v1/query", body, &resp); w.Code != 200 {
		t.Fatalf("degraded query: %d %s", w.Code, w.Body.String())
	}
	if !resp.Degraded || resp.Converged == nil || *resp.Converged {
		t.Fatalf("response not degraded: %+v", resp)
	}
	if resp.AchievedEps <= 0 {
		t.Fatalf("degraded response missing achieved_eps: %+v", resp)
	}
	if resp.Samples > 4096/4 {
		t.Fatalf("degraded run drew %d samples, want at most the shrunk budget %d", resp.Samples, 4096/4)
	}

	// Repeat: served stale from the cache while a single full-budget
	// revalidation runs in the background.
	var again QueryResponse
	if w := do(t, s, "POST", "/v1/query", body, &again); w.Code != 200 || !again.Cached {
		t.Fatalf("repeat degraded query not cached: %d %+v", w.Code, again)
	}
	if s.resilience.staleServed.Load() == 0 {
		t.Fatal("stale hit not counted")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var third QueryResponse
		do(t, s, "POST", "/v1/query", body, &third)
		if third.Samples > 4096/4 {
			break // fresh full-budget entry swapped in via Replace
		}
		if time.Now().After(deadline) {
			t.Fatalf("revalidated entry never appeared (still %d samples)", third.Samples)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.resilience.revalidations.Load(); got != 1 {
		t.Fatalf("revalidations = %d, want exactly 1 (the fresh entry must not respawn recomputes)", got)
	}
	var stats StatsResponse
	do(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Resilience.Degraded == 0 || stats.Resilience.StaleServed == 0 {
		t.Fatalf("resilience stats missing degradation: %+v", stats.Resilience)
	}
}

// TestCoalescedFlightDeadline: when every rider of a batched flight times
// out, the flight is cancelled at batch granularity, all waiters get clean
// typed deadline errors, and no goroutines leak.
func TestCoalescedFlightDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		s, _ := newTestServer(t, Config{Faults: mustFaults(t, "batcher.flight:slow=400ms", 1)})
		body, err := json.Marshal(map[string]any{"graph": "g", "kind": "reliability",
			"pairs": [][2]int{{0, 1}}, "samples": 64, "seed": 5, "timeout_ms": 60})
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		codes := make([]int, 2)
		envs := make([]APIError, 2)
		for i := range codes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r := httptest.NewRequest("POST", "/v1/query", strings.NewReader(string(body)))
				w := httptest.NewRecorder()
				s.Handler().ServeHTTP(w, r)
				codes[i] = w.Code
				var env errorEnvelope
				_ = json.Unmarshal(w.Body.Bytes(), &env)
				envs[i] = env.Error
			}(i)
		}
		wg.Wait()
		for i, code := range codes {
			if code != http.StatusGatewayTimeout || envs[i].Code != CodeDeadline {
				t.Fatalf("rider %d: status %d code %q, want 504 deadline_exceeded", i, code, envs[i].Code)
			}
		}
		// The abandoned flight must be observed once the batcher settles.
		for i := 0; s.batcher.Stats().AbandonedFlights == 0; i++ {
			if i > 1000 {
				t.Fatal("flight never recorded as abandoned")
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Leak check: the slow flight and both riders are gone; allow slack for
	// unrelated runtime goroutines.
	for i := 0; runtime.NumGoroutine() > before+8; i++ {
		if i > 400 {
			t.Fatalf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosMixedTraffic hammers a fault-injected server with concurrent
// mixed traffic under -race: every failure must be a typed envelope (no
// bare 500s), panics must all be recovered and counted, and the server must
// still answer once the storm passes.
func TestChaosMixedTraffic(t *testing.T) {
	s, g := newTestServer(t, Config{
		MaxCost: 1 << 50,
		Faults:  mustFaults(t, "handler.query:panic@0.15;batcher.flight:err@0.2", 99),
	})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, WithRetries(2), WithBackoff(time.Millisecond, 10*time.Millisecond))

	var nonEnvelope atomic.Int64
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch i % 3 {
				case 0:
					_, err := client.Query(context.Background(), &QueryRequest{
						Graph: "g", Kind: "reliability",
						Pairs:   [][2]int{{worker % g.NumVertices(), (worker*7 + i) % g.NumVertices()}},
						Samples: 16, Seed: int64(worker*1000 + i)})
					countNonEnvelope(err, &nonEnvelope)
				case 1:
					_, err := client.Sparsify(context.Background(), &SparsifyRequest{
						Graph: "g", Alpha: 0.4, Spec: ugs.Spec{Method: "emd", Seed: 1}})
					countNonEnvelope(err, &nonEnvelope)
				default:
					_, err := client.Stats(context.Background())
					countNonEnvelope(err, &nonEnvelope)
				}
			}
		}(worker)
	}
	wg.Wait()

	if n := nonEnvelope.Load(); n != 0 {
		t.Fatalf("%d responses were not typed envelopes", n)
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatalf("stats after chaos: %v", err)
	}
	if stats.Resilience.HandlerPanics == 0 {
		t.Fatal("no panics recovered at rate 0.15 over 40 queries")
	}
	if stats.Resilience.FaultsInjected == 0 {
		t.Fatal("fault injector reports zero injections")
	}
	// The server survives: a query after the storm still succeeds (retrying
	// past injected panics/errors, which keep firing at their rate).
	for i := 0; ; i++ {
		resp, err := client.Query(context.Background(), &QueryRequest{
			Graph: "g", Kind: "reliability", Pairs: [][2]int{{0, 1}}, Samples: 16, Seed: 424242})
		if err == nil {
			if len(resp.Values) != 1 {
				t.Fatalf("post-chaos query shape: %+v", resp)
			}
			break
		}
		if i > 50 {
			t.Fatalf("server never recovered: %v", err)
		}
	}
}

// countNonEnvelope increments n when err is a failure that did NOT decode as
// a typed envelope (the client synthesizes those with an "HTTP <status>"
// message).
func countNonEnvelope(err error, n *atomic.Int64) {
	if err == nil {
		return
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || strings.HasPrefix(apiErr.Message, "HTTP ") {
		n.Add(1)
	}
}
