// Package serve implements ugs-serve: a long-lived HTTP JSON service over
// the sparsifier core. It keeps graphs resident in CSR form (Store), caches
// sparsified results keyed by (graph, alpha, Spec) with singleflight
// admission (Cache), coalesces concurrent Monte-Carlo queries into shared
// WorldBatch flights at the planned lane width (Batcher), reuses sampled
// worlds across requests through a byte-bounded fill-block cache
// (WorldCache), and runs long sparsifications as cancellable async jobs
// with progress polling (Jobs).
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ugs"
	"ugs/internal/faults"
)

// Config tunes a Server.
type Config struct {
	// GraphDir, when non-empty, is loaded into the store at startup
	// (every *.ugs / *.txt file).
	GraphDir string
	// SparsifyCacheSize bounds the resident sparsified results (default
	// 128). Evicted results free their graph; re-requesting recomputes.
	SparsifyCacheSize int
	// QueryCacheSize bounds cached query results (default 1024).
	QueryCacheSize int
	// Workers caps Monte-Carlo parallelism per flight (0 = GOMAXPROCS).
	Workers int
	// MaxSamples caps per-request Monte-Carlo sample counts (default
	// 20000).
	MaxSamples int
	// StoreBudgetBytes caps resident graph bytes in the store (0 =
	// unlimited): beyond it, least-recently-used unpinned graphs are
	// evicted and remapped from their .ugsb backing on demand.
	StoreBudgetBytes int64
	// ConvertDir holds .ugsb sidecars for converted text graphs and
	// spilled uploads (default: a temp dir removed on Close).
	ConvertDir string
	// Lanes is the default bit-parallel engine width for queries that do
	// not set "lanes" themselves: 0 = the planner (auto), 1 = the scalar
	// ablation, 64/128/256 = explicit WorldBatch widths.
	Lanes int
	// FanOut is the default source group size for pair queries that do
	// not set "fan_out" themselves: 0 = the planner (auto), 1 = one
	// traversal per source (the per-source ablation), 2..64 = explicit
	// multi-source group sizes.
	FanOut int
	// Confidence, when non-nil, makes queries adaptive by default:
	// requests without an explicit "confidence" field run sequential
	// stopping to this target instead of a fixed sample budget.
	Confidence *Confidence
	// WorldCacheBytes bounds the cross-request sampled-world cache
	// (default 64 MiB; negative disables it).
	WorldCacheBytes int64
	// RequestTimeout caps how long any single query/sparsify request may
	// run (0 = unbounded). A request's own timeout_ms can only tighten it.
	RequestTimeout time.Duration
	// MaxCost enables admission control: the limiter admits up to MaxCost
	// units of outstanding work, where a query costs samples × arcs (the
	// edge-stream length of its Monte-Carlo run). 0 disables limiting.
	MaxCost int64
	// MaxQueue bounds how many requests may wait for admission before the
	// limiter sheds with 429 (default 64 when MaxCost is set; negative =
	// unbounded queue).
	MaxQueue int
	// DegradePressure is the limiter saturation (inUse+queued over
	// capacity) beyond which adaptive queries shrink their sample budget
	// and answer degraded instead of queueing at full cost (default 0.75).
	DegradePressure float64
	// QuarantineBase and QuarantineMax tune the store's load-failure
	// backoff (defaults 1s / 60s).
	QuarantineBase time.Duration
	QuarantineMax  time.Duration
	// Faults enables deterministic fault injection at the serving stack's
	// named points (nil = production no-op).
	Faults *faults.Injector
}

func (c Config) withDefaults() Config {
	if c.SparsifyCacheSize == 0 {
		c.SparsifyCacheSize = 128
	}
	if c.QueryCacheSize == 0 {
		c.QueryCacheSize = 1024
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = 20000
	}
	if c.WorldCacheBytes == 0 {
		c.WorldCacheBytes = 64 << 20
	}
	if c.MaxCost > 0 && c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.DegradePressure == 0 {
		c.DegradePressure = 0.75
	}
	return c
}

// Server is the ugs-serve request handler and its resident state.
type Server struct {
	cfg   Config
	base  context.Context
	store *Store
	// sparse caches sparsified results keyed by derived-graph ID (the
	// truncated SHA-256 of the full request key), so cached outputs are
	// addressable as query targets.
	sparse  *Cache[*sparseEntry]
	queries *Cache[*queryEntry]
	batcher *Batcher
	// worlds is the cross-request sampled-world cache (nil when disabled):
	// every batch-engine query hands it to the Monte-Carlo options, so
	// fills are shared across kinds, widths and requests.
	worlds  *WorldCache
	jobs    *Jobs
	limiter *Limiter
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in drain gate + panic recovery

	// draining flips when shutdown begins: new work is rejected with a
	// typed 503 (health checks still answer) while in-flight requests
	// finish under the drain budget.
	draining atomic.Bool

	// computes counts sparsifier runs actually executed: the cache-hit
	// path must leave it untouched (asserted by tests).
	computes atomic.Int64

	resilience resilienceCounters
}

// resilienceCounters are the server-level overload/failure counters surfaced
// in /v1/stats (the limiter, store, batcher and jobs keep their own).
type resilienceCounters struct {
	handlerPanics atomic.Int64 // panics recovered by the HTTP middleware
	timeouts      atomic.Int64 // requests that ended deadline_exceeded
	degraded      atomic.Int64 // degraded (non-converged adaptive) answers served
	staleServed   atomic.Int64 // cache hits on degraded entries (stale-while-revalidate)
	revalidations atomic.Int64 // background full-budget recomputes started
	retries       atomic.Int64 // compute retries after a foreign owner's cancellation
	drainRejected atomic.Int64 // requests rejected because shutdown had begun
}

type sparseEntry struct {
	resp  SparsifyResponse
	graph *ugs.Graph
}

type queryEntry struct {
	sp, rl    []float64
	connected float64
	values    []float64 // per-vertex results (pagerank, clustering)
	info      ugs.MCRunInfo
	// revalidating guards the stale-while-revalidate path: at most one
	// background full-budget recompute per degraded entry. Set permanently
	// on entries that cannot improve (the budget cap, not pressure, stopped
	// them) so hits don't respawn doomed recomputes.
	revalidating atomic.Bool
}

// New builds a Server. base bounds every background computation (flights,
// jobs): cancel it to initiate shutdown, then DrainJobs.
func New(base context.Context, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		base: base,
		store: NewStore(StoreConfig{BudgetBytes: cfg.StoreBudgetBytes, ConvertDir: cfg.ConvertDir,
			QuarantineBase: cfg.QuarantineBase, QuarantineMax: cfg.QuarantineMax, Faults: cfg.Faults}),
		sparse:  NewCache[*sparseEntry](cfg.SparsifyCacheSize),
		queries: NewCache[*queryEntry](cfg.QueryCacheSize),
		batcher: NewBatcher(base, cfg.Workers),
		jobs:    NewJobs(base),
	}
	s.batcher.faults = cfg.Faults
	s.jobs.faults = cfg.Faults
	if cfg.MaxCost > 0 {
		s.limiter = NewLimiter(cfg.MaxCost, cfg.MaxQueue)
	}
	if cfg.WorldCacheBytes > 0 {
		s.worlds = NewWorldCache(cfg.WorldCacheBytes)
	}
	if cfg.GraphDir != "" {
		if _, err := s.store.LoadDir(cfg.GraphDir); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /v1/graphs/{name}", s.handleGetGraph)
	s.mux.HandleFunc("POST /v1/graphs/{name}", s.handlePutGraph)
	s.mux.HandleFunc("PATCH /v1/graphs/{name}/edges", s.handlePatchGraph)
	s.mux.HandleFunc("POST /v1/sparsify", s.handleSparsify)
	s.mux.HandleFunc("GET /v1/sparsify/{id}/graph", s.handleDownloadSparse)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.handler = recoverPanics(http.HandlerFunc(s.serveGated), func(v any, stack []byte) {
		s.resilience.handlerPanics.Add(1)
	})
	return s, nil
}

// serveGated is the drain gate in front of the mux: once shutdown begins,
// new work is turned away with a typed 503 so load balancers fail over,
// while /healthz keeps answering (it reports the draining state).
func (s *Server) serveGated(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() && r.URL.Path != "/healthz" {
		s.resilience.drainRejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining for shutdown", time.Second)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// Handler returns the HTTP handler: the route mux wrapped in the drain gate
// and panic-recovery middleware.
func (s *Server) Handler() http.Handler { return s.handler }

// StartDrain flips the server into draining mode: subsequent requests are
// rejected with 503/draining while already-admitted ones run to completion.
// Call before http.Server.Shutdown so clients and balancers see an explicit
// signal instead of hanging connections.
func (s *Server) StartDrain() { s.draining.Store(true) }

// CancelJobs force-cancels every running async job — the shutdown backstop
// behind -drain-timeout when cancelling the base context did not drain them.
func (s *Server) CancelJobs() { s.jobs.CancelAll() }

// Store exposes the graph store (startup loading, tests).
func (s *Server) Store() *Store { return s.store }

// Computes reports how many sparsifier runs actually executed — the
// counter behind the "cache hits do zero sparsifier work" guarantee.
func (s *Server) Computes() int64 { return s.computes.Load() }

// DrainJobs waits for async jobs to finish after the base context is
// cancelled, reporting whether the drain completed within the timeout.
func (s *Server) DrainJobs(timeout time.Duration) bool { return s.jobs.Wait(timeout) }

// Close releases the store (mappings, sidecar directory). Call after the
// base context is cancelled and jobs are drained.
func (s *Server) Close() error { return s.store.Close() }

// acquireGraph resolves a request's graph reference: a store name first,
// then a derived (sparsified) graph ID. The returned ID is cache-key safe
// and versioned. On success the graph is pinned against eviction until
// release (idempotent, never nil) is called. ctx bounds any backing-file
// load the acquisition triggers.
func (s *Server) acquireGraph(ctx context.Context, name string) (*ugs.Graph, string, func(), error) {
	g, id, release, err := s.store.AcquireCtx(ctx, name)
	if err == nil {
		return g, id, release, nil
	}
	if e, ok := s.sparse.Get(name); ok {
		// Sparsified results are heap graphs owned by the result cache,
		// not the store; no pin needed.
		return e.graph, e.resp.ID, func() {}, nil
	}
	return nil, "", nil, err
}

// joinContext returns a context cancelled when either a or b is done, so a
// computation can be bounded by the request deadline AND the server lifetime
// at once — shutdown still cancels in-flight work that set no deadline.
func joinContext(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

// requestCtx derives a request's compute context: the tighter of the
// server-wide RequestTimeout and the request's own timeout_ms (which can only
// tighten, never extend), joined with the server base context.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	timeout := s.cfg.RequestTimeout
	if t := time.Duration(timeoutMS) * time.Millisecond; timeoutMS > 0 && (timeout <= 0 || t < timeout) {
		timeout = t
	}
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		joined, jcancel := joinContext(ctx, s.base)
		return joined, func() { jcancel(); cancel() }
	}
	return joinContext(r.Context(), s.base)
}

// ---------------------------------------------------------------- sparsify

// SparsifyRequest asks for graph reduced to alpha·|E| edges with the
// embedded Spec's method and options.
type SparsifyRequest struct {
	Graph string  `json:"graph"`
	Alpha float64 `json:"alpha"`
	// TimeoutMS bounds this request in wall-clock milliseconds. The server's
	// -request-timeout can only be tightened by it, never extended. Ignored
	// for async jobs (their lifecycle is the job's, not the request's).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	ugs.Spec
}

// SparsifyResponse describes a sparsified result. ID addresses the resident
// output graph in later /v1/query and /v1/sparsify/{id}/graph requests.
type SparsifyResponse struct {
	ID              string       `json:"id"`
	Key             string       `json:"key"`
	Original        string       `json:"original"`
	Alpha           float64      `json:"alpha"`
	Graph           GraphInfo    `json:"graph"`
	RelativeEntropy float64      `json:"relative_entropy"`
	Stats           ugs.RunStats `json:"stats"`
	ElapsedMS       float64      `json:"elapsed_ms"`
	Cached          bool         `json:"cached"`
}

// requestKey builds the exact cache identity of a sparsify request and its
// addressable ID.
func requestKey(graphID string, alpha float64, spec ugs.Spec) (key, id string) {
	key = graphID + "|a=" + strconv.FormatFloat(alpha, 'g', -1, 64) + "|" + spec.Key()
	sum := sha256.Sum256([]byte(key))
	return key, "sp-" + hex.EncodeToString(sum[:16])
}

// validateSparsify resolves and validates a sparsify request, pinning the
// input graph. On success the caller owns the release.
func (s *Server) validateSparsify(ctx context.Context, req *SparsifyRequest) (*ugs.Graph, string, func(), error) {
	if req.Graph == "" {
		return nil, "", nil, fmt.Errorf("missing \"graph\"")
	}
	g, gid, release, err := s.acquireGraph(ctx, req.Graph)
	if err != nil {
		return nil, "", nil, err
	}
	if !(req.Alpha > 0 && req.Alpha < 1) {
		release()
		return nil, "", nil, fmt.Errorf("alpha %v outside (0,1)", req.Alpha)
	}
	// Building the sparsifier validates both the option values and the
	// method name against the registry; construction is cheap (the run
	// happens later).
	if _, err := req.Spec.Sparsifier(); err != nil {
		release()
		return nil, "", nil, err
	}
	return g, gid, release, nil
}

// sparsify runs (or reuses) the sparsification described by req. compute
// runs under runCtx — the server base context for synchronous requests, the
// job context for async ones — and progress, when non-nil, observes the run.
func (s *Server) sparsify(runCtx context.Context, req *SparsifyRequest, g *ugs.Graph, gid string, progress func(ugs.RunStats)) (*SparsifyResponse, error) {
	key, id := requestKey(gid, req.Alpha, req.Spec)
	entry, cached, err := s.sparsifyDo(runCtx, id, key, req, g, gid, progress)
	if err != nil {
		return nil, err
	}
	resp := entry.resp
	resp.Cached = cached
	return &resp, nil
}

// sparsifyDo wraps the cache admission with one subtlety: a compute can be
// owned by an async job whose context dies when the job is cancelled, or by
// a request whose deadline expired mid-run. A caller that merely shared that
// flight was not itself cancelled, so on a cancellation error from a foreign
// owner it retries — the failed flight is deregistered, and the retry
// recomputes under this caller's own context. The loop terminates because
// each iteration either succeeds, fails for a non-cancellation reason, or
// observes this caller's own context cancelled.
func (s *Server) sparsifyDo(runCtx context.Context, id, key string, req *SparsifyRequest, g *ugs.Graph, gid string, progress func(ugs.RunStats)) (*sparseEntry, bool, error) {
	for {
		entry, cached, err := s.sparsifyOnce(runCtx, id, key, req, g, gid, progress)
		if foreignCancel(err) && runCtx.Err() == nil {
			s.resilience.retries.Add(1)
			continue
		}
		return entry, cached, err
	}
}

// foreignCancel reports whether err is a context cancellation — which, when
// the caller's own context is still alive, must have come from another
// flight owner's deadline or disconnect.
func foreignCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// queryDo mirrors sparsifyDo for the query cache: a coalesced waiter whose
// own context is still alive retries a flight killed by its owner's deadline
// or disconnect, becoming the new owner under its own context.
func (s *Server) queryDo(ctx context.Context, key string, compute func() (*queryEntry, error)) (*queryEntry, bool, error) {
	for {
		entry, cached, err := s.queries.Do(ctx, key, compute)
		if foreignCancel(err) && ctx.Err() == nil {
			s.resilience.retries.Add(1)
			continue
		}
		return entry, cached, err
	}
}

func (s *Server) sparsifyOnce(runCtx context.Context, id, key string, req *SparsifyRequest, g *ugs.Graph, gid string, progress func(ugs.RunStats)) (*sparseEntry, bool, error) {
	return s.sparse.Do(runCtx, id, func() (*sparseEntry, error) {
		var extra []ugs.Option
		if progress != nil {
			extra = append(extra, ugs.WithProgress(progress))
		}
		sp, err := req.Spec.Sparsifier(extra...)
		if err != nil {
			return nil, err
		}
		s.computes.Add(1)
		start := time.Now()
		res, err := sp.Sparsify(runCtx, g, req.Alpha)
		if err != nil {
			return nil, err
		}
		info := Info(id, res.Graph)
		return &sparseEntry{
			graph: res.Graph,
			resp: SparsifyResponse{
				ID:              id,
				Key:             key,
				Original:        gid,
				Alpha:           req.Alpha,
				Graph:           info,
				RelativeEntropy: ugs.RelativeEntropy(res.Graph, g),
				Stats:           res.Stats,
				ElapsedMS:       float64(time.Since(start)) / float64(time.Millisecond),
			},
		}, nil
	})
}

func (s *Server) handleSparsify(w http.ResponseWriter, r *http.Request) {
	var req SparsifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.cfg.Faults.Check("handler.sparsify"); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	g, gid, release, err := s.validateSparsify(ctx, &req)
	if err != nil {
		s.writeRequestErr(w, err)
		return
	}
	defer release()
	lrelease, err := s.limiter.Acquire(ctx, sparsifyCost(g))
	if err != nil {
		s.writeAdmitErr(w, err)
		return
	}
	defer lrelease()
	resp, err := s.sparsify(ctx, &req, g, gid, nil)
	if err != nil {
		s.writeComputeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// sparsifyCost charges a synchronous sparsify run as a heavyweight query:
// the gradient-descent and expectation rounds stream the whole edge list
// many times, modelled here as a fixed large sample budget.
const sparsifyCostSamples = 1000

func sparsifyCost(g *ugs.Graph) int64 {
	return sparsifyCostSamples * graphArcs(g)
}

// queryCost is a query's admission weight: the Monte-Carlo engine streams
// every arc once per sampled world, so cost = samples × arcs. Adaptive runs
// are charged their worst-case budget (the degraded budget once the server
// is under pressure).
func queryCost(g *ugs.Graph, opts ugs.MCOptions) int64 {
	samples := opts.Samples
	if opts.Target != nil {
		samples = opts.Target.MaxSamples
	}
	if samples < 1 {
		samples = 1
	}
	return int64(samples) * graphArcs(g)
}

func graphArcs(g *ugs.Graph) int64 {
	if arcs := int64(2 * g.NumEdges()); arcs > 0 {
		return arcs
	}
	return 1
}

func (s *Server) handleDownloadSparse(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.sparse.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no resident sparsified graph %q (evicted or never computed; re-POST /v1/sparsify)", id))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := ugs.WriteGraph(w, e.graph); err != nil {
		// Headers are gone; nothing to do beyond logging via the error path.
		return
	}
}

// ------------------------------------------------------------------ query

// Confidence is an adaptive sequential-stopping request: sample until the
// normal-approximation confidence interval of every tracked estimate has
// half-width at most Eps at confidence 1−Delta (Delta 0 means the default
// 0.05). The server caps the adaptive budget at Config.MaxSamples.
type Confidence struct {
	Eps   float64 `json:"eps"`
	Delta float64 `json:"delta,omitempty"`
}

// QueryRequest evaluates a Monte-Carlo query on a resident graph (a store
// name or a sparsified-result ID).
type QueryRequest struct {
	Graph string `json:"graph"`
	// Kind is "reliability", "distance", "connected", "pagerank" or
	// "clustering".
	Kind  string   `json:"kind"`
	Pairs [][2]int `json:"pairs,omitempty"`
	// Samples is the fixed Monte-Carlo sample count (default 500).
	// Mutually exclusive with Confidence.
	Samples int   `json:"samples,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	// Lanes selects the engine width: "auto" (the planner), "1" (the
	// scalar ablation), "64", "128" or "256". Empty uses the server
	// default. The width is an execution choice only — estimates are
	// bit-identical across all of them.
	Lanes string `json:"lanes,omitempty"`
	// FanOut selects how many distinct sources one pair-query traversal
	// carries: "auto" (the planner), "1" (one traversal per source, the
	// per-source ablation) or "2".."64". Empty uses the server default.
	// Like Lanes it is an execution choice only — per-pair estimates are
	// bit-identical across every fan-out.
	FanOut string `json:"fan_out,omitempty"`
	// Confidence switches reliability/distance/connected queries from the
	// fixed Samples budget to sequential stopping. Not supported for the
	// per-vertex kinds (pagerank, clustering), which run scalar worlds.
	Confidence *Confidence `json:"confidence,omitempty"`
	// TimeoutMS bounds this request in wall-clock milliseconds. The server's
	// -request-timeout can only be tightened by it, never extended. Adaptive
	// queries degrade to a coarser answer rather than time out.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// QueryResponse carries per-pair estimates (reliability, distance),
// per-vertex estimates (pagerank, clustering) or the scalar connectivity
// probability. Distance entries are null for pairs never connected in any
// sampled world. Samples is the count actually drawn — for adaptive runs
// the stopped total, with Rounds and Converged reporting the schedule.
type QueryResponse struct {
	Kind      string     `json:"kind"`
	Values    []*float64 `json:"values,omitempty"`
	Value     *float64   `json:"value,omitempty"`
	Samples   int        `json:"samples"`
	Lanes     string     `json:"lanes,omitempty"`
	FanOut    string     `json:"fan_out,omitempty"`
	Rounds    int        `json:"rounds,omitempty"`
	Converged *bool      `json:"converged,omitempty"`
	// Degraded marks an adaptive answer that stopped short of its accuracy
	// target (overload shrank the budget, the deadline cut the rounds, or
	// the budget cap hit first); AchievedEps reports the CI half-width the
	// answer actually carries so the client can decide whether it suffices.
	Degraded    bool    `json:"degraded,omitempty"`
	AchievedEps float64 `json:"achieved_eps,omitempty"`
	Cached      bool    `json:"cached"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.cfg.Faults.Check("handler.query"); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	g, gid, release, err := s.acquireGraph(ctx, req.Graph)
	if err != nil {
		s.writeAcquireErr(w, err)
		return
	}
	defer release()

	lanes := s.cfg.Lanes
	if req.Lanes != "" {
		if lanes, err = ugs.ParseLanes(req.Lanes); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	fanOut := s.cfg.FanOut
	if req.FanOut != "" {
		if fanOut, err = ugs.ParseFanOut(req.FanOut); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	conf := req.Confidence
	if conf == nil {
		conf = s.cfg.Confidence
	}
	opts := ugs.MCOptions{Seed: req.Seed, Workers: s.cfg.Workers, Lanes: lanes, FanOut: fanOut}
	if conf != nil {
		if req.Samples != 0 {
			writeErr(w, http.StatusBadRequest, "samples and confidence are mutually exclusive (confidence decides the budget)")
			return
		}
		target := ugs.WithConfidence(conf.Eps, conf.Delta)
		// The server's sample cap bounds the adaptive budget too; keep
		// the schedule legal when the cap is below the default MinSamples.
		target.MaxSamples = s.cfg.MaxSamples
		if target.MinSamples == 0 && s.cfg.MaxSamples < 128 {
			target.MinSamples = s.cfg.MaxSamples
		}
		opts.Target = target
	} else {
		if req.Samples == 0 {
			req.Samples = 500
		}
		if req.Samples < 1 || req.Samples > s.cfg.MaxSamples {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("samples %d outside [1, %d]", req.Samples, s.cfg.MaxSamples))
			return
		}
		opts.Samples = req.Samples
	}
	if s.worlds != nil {
		opts.FillCache = s.worlds
		opts.FillID = gid
	}
	if err := opts.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}

	// keyOpts is the request's cache identity (the full adaptive budget, no
	// deadline); runOpts is what this execution actually does — possibly a
	// deadline-bounded, pressure-shrunk budget. Keeping them apart means a
	// degraded answer lands under the key later full-budget requests hit, so
	// stale-while-revalidate can swap in the fresh result.
	keyOpts, runOpts := opts, opts
	if opts.Target != nil {
		t := *opts.Target
		if dl, ok := ctx.Deadline(); ok {
			// Back the engine deadline off the request's so encoding and
			// writing the degraded answer still fit inside it.
			t.Deadline = dl.Add(-min(200*time.Millisecond, time.Until(dl)/10))
		}
		if s.limiter != nil && s.limiter.Pressure() >= s.cfg.DegradePressure {
			shrunk := t.MaxSamples / 4
			if shrunk < degradedMinSamples {
				shrunk = degradedMinSamples
			}
			if t.MinSamples > 0 && shrunk < t.MinSamples {
				shrunk = t.MinSamples
			}
			if shrunk < t.MaxSamples {
				t.MaxSamples = shrunk
			}
		}
		runOpts.Target = &t
	}
	lrelease, err := s.limiter.Acquire(ctx, queryCost(g, runOpts))
	if err != nil {
		s.writeAdmitErr(w, err)
		return
	}
	defer lrelease()

	switch req.Kind {
	case "reliability", "distance":
		s.handlePairQuery(ctx, w, &req, g, gid, runOpts, keyOpts)
	case "connected":
		s.handleConnectedQuery(ctx, w, &req, g, gid, runOpts, keyOpts)
	case "pagerank", "clustering":
		s.handleVectorQuery(ctx, w, &req, g, gid, runOpts)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown kind %q (want reliability, distance, connected, pagerank or clustering)", req.Kind))
	}
}

// degradedMinSamples floors the pressure-shrunk adaptive budget: below this
// the normal-approximation CI is meaningless and the answer is noise, so the
// server never degrades past it.
const degradedMinSamples = 128

func (s *Server) handlePairQuery(ctx context.Context, w http.ResponseWriter, req *QueryRequest, g *ugs.Graph, gid string, runOpts, keyOpts ugs.MCOptions) {
	if len(req.Pairs) == 0 {
		writeErr(w, http.StatusBadRequest, "pairs required for reliability/distance queries")
		return
	}
	pairs := make([]ugs.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		if p[0] < 0 || p[0] >= g.NumVertices() || p[1] < 0 || p[1] >= g.NumVertices() {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("pair %d endpoints (%d,%d) outside [0,%d)", i, p[0], p[1], g.NumVertices()))
			return
		}
		pairs[i] = ugs.Pair{S: p[0], T: p[1]}
	}
	// Reliability and distance come from the same merged SP+RL pass, so
	// they share one kind-agnostic cache entry (and, on a miss, one
	// coalesced flight).
	key := pairQueryKey(gid, keyOpts, pairs)
	compute := func(ctx context.Context, g *ugs.Graph, opts ugs.MCOptions) (*queryEntry, error) {
		if opts.Target != nil {
			// Adaptive runs bypass the batcher: the stopping decision
			// depends on every tracked pair, so merging this request's
			// pairs with a stranger's would move its stopping point and
			// break the bit-identical-to-direct-call contract. The world
			// cache still shares the underlying fills.
			sp, rl, info, err := ugs.ShortestDistanceAndReliabilityRun(ctx, g, pairs, opts)
			if err != nil {
				return nil, err
			}
			return &queryEntry{sp: sp, rl: rl, info: info}, nil
		}
		sp, rl, err := s.batcher.PairQuery(ctx, gid, g, pairs, opts)
		if err != nil {
			return nil, err
		}
		return &queryEntry{sp: sp, rl: rl, info: ugs.MCRunInfo{Samples: opts.Samples, Rounds: 1, Converged: true}}, nil
	}
	entry, cached, err := s.queryDo(ctx, key, func() (*queryEntry, error) { return compute(ctx, g, runOpts) })
	if err != nil {
		s.writeComputeErr(w, err)
		return
	}
	s.maybeRevalidate(key, req.Graph, gid, keyOpts, entry, cached, compute)
	src := entry.rl
	if req.Kind == "distance" {
		src = entry.sp
	}
	values := make([]*float64, len(src))
	for i, v := range src {
		if !math.IsNaN(v) {
			v := v
			values[i] = &v
		}
	}
	writeJSON(w, http.StatusOK, s.queryResponse(req.Kind, runOpts, entry, cached, QueryResponse{Values: values}))
}

func (s *Server) handleConnectedQuery(ctx context.Context, w http.ResponseWriter, req *QueryRequest, g *ugs.Graph, gid string, runOpts, keyOpts ugs.MCOptions) {
	if len(req.Pairs) != 0 {
		writeErr(w, http.StatusBadRequest, "connected queries take no pairs")
		return
	}
	key := "cn|" + scalarQueryKey(gid, keyOpts)
	compute := func(ctx context.Context, g *ugs.Graph, opts ugs.MCOptions) (*queryEntry, error) {
		p, info, err := ugs.ConnectedProbabilityRun(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		return &queryEntry{connected: p, info: info}, nil
	}
	entry, cached, err := s.queryDo(ctx, key, func() (*queryEntry, error) { return compute(ctx, g, runOpts) })
	if err != nil {
		s.writeComputeErr(w, err)
		return
	}
	s.maybeRevalidate(key, req.Graph, gid, keyOpts, entry, cached, compute)
	v := entry.connected
	writeJSON(w, http.StatusOK, s.queryResponse(req.Kind, runOpts, entry, cached, QueryResponse{Value: &v}))
}

// maybeRevalidate is the stale-while-revalidate trigger: a cache hit on a
// degraded entry was served immediately (stale), and at most one background
// recompute per entry runs the query at its full budget under the server
// lifetime — no request deadline, no shrunk samples — then swaps the fresh
// result in under the same key.
func (s *Server) maybeRevalidate(key, name, gid string, keyOpts ugs.MCOptions, entry *queryEntry, cached bool, compute func(context.Context, *ugs.Graph, ugs.MCOptions) (*queryEntry, error)) {
	if !cached || keyOpts.Target == nil || entry.info.Converged {
		return
	}
	s.resilience.staleServed.Add(1)
	if !entry.revalidating.CompareAndSwap(false, true) {
		return
	}
	s.resilience.revalidations.Add(1)
	go func() {
		// Reacquire by name: the stale entry must not pin the graph for the
		// whole recompute, and a graph replaced since (new gid) invalidates
		// the key anyway.
		g, id, release, err := s.acquireGraph(s.base, name)
		if err != nil {
			entry.revalidating.Store(false)
			return
		}
		defer release()
		if id != gid {
			entry.revalidating.Store(false)
			return
		}
		fresh, err := compute(s.base, g, keyOpts)
		if err != nil || fresh == nil {
			entry.revalidating.Store(false)
			return
		}
		if !fresh.info.Converged {
			// Still short of the target at the full budget (the MaxSamples
			// cap bites): mark it revalidating so later hits don't spin up
			// a doomed recompute each time.
			fresh.revalidating.Store(true)
		}
		s.queries.Replace(key, fresh)
	}()
}

// handleVectorQuery serves the per-vertex kinds (pagerank, clustering).
// Vector queries run scalar worlds — the planner never routes them to the
// batch engine — and have no per-estimate CI, so confidence targets are
// rejected rather than silently ignored.
func (s *Server) handleVectorQuery(ctx context.Context, w http.ResponseWriter, req *QueryRequest, g *ugs.Graph, gid string, opts ugs.MCOptions) {
	if len(req.Pairs) != 0 {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("%s queries take no pairs", req.Kind))
		return
	}
	if opts.Target != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("confidence is not supported for %s queries (per-vertex estimates run scalar worlds)", req.Kind))
		return
	}
	key := req.Kind + "|" + scalarQueryKey(gid, opts)
	entry, cached, err := s.queryDo(ctx, key, func() (*queryEntry, error) {
		var (
			values []float64
			err    error
		)
		if req.Kind == "pagerank" {
			values, err = ugs.ExpectedPageRank(ctx, g, opts, ugs.PageRankOptions{})
		} else {
			values, err = ugs.ExpectedClusteringCoefficients(ctx, g, opts)
		}
		if err != nil {
			return nil, err
		}
		return &queryEntry{values: values, info: ugs.MCRunInfo{Samples: opts.Samples, Rounds: 1, Converged: true}}, nil
	})
	if err != nil {
		s.writeComputeErr(w, err)
		return
	}
	values := make([]*float64, len(entry.values))
	for i, v := range entry.values {
		v := v
		values[i] = &v
	}
	writeJSON(w, http.StatusOK, s.queryResponse(req.Kind, opts, entry, cached, QueryResponse{Values: values}))
}

// queryResponse fills the run-report fields shared by every query kind.
// Lanes and FanOut echo the requested execution shape (ablation knobs, not
// part of the result); Converged is only meaningful for adaptive runs. An
// adaptive answer that stopped short of its target is flagged degraded and
// counted.
func (s *Server) queryResponse(kind string, opts ugs.MCOptions, entry *queryEntry, cached bool, resp QueryResponse) QueryResponse {
	resp.Kind = kind
	resp.Samples = entry.info.Samples
	resp.Lanes = ugs.FormatLanes(opts.Lanes)
	resp.FanOut = ugs.FormatFanOut(opts.FanOut)
	resp.Cached = cached
	if opts.Target != nil {
		resp.Rounds = entry.info.Rounds
		converged := entry.info.Converged
		resp.Converged = &converged
		if !converged {
			resp.Degraded = true
			resp.AchievedEps = entry.info.AchievedEps
			s.resilience.degraded.Add(1)
		}
	}
	return resp
}

// scalarQueryKey is the cache identity of a pair-free query: the versioned
// graph, the sample stream, and — for adaptive runs — the stopping target
// (which changes the drawn sample count, hence the estimate). Lanes, FanOut
// and Workers are deliberately excluded: every width and source group size
// is bit-identical, so a cached result is valid for all of them.
func scalarQueryKey(gid string, opts ugs.MCOptions) string {
	key := fmt.Sprintf("%s|s=%d|n=%d", gid, opts.Seed, opts.Samples)
	if t := opts.Target; t != nil {
		key += fmt.Sprintf("|eps=%g,delta=%g,max=%d", t.Eps, t.Delta, t.MaxSamples)
	}
	return key
}

// pairQueryKey hashes the pair list so repeat queries with identical pair
// sets hit the cache regardless of length. Like scalarQueryKey it includes
// the adaptive target but neither the lane width nor the source fan-out.
func pairQueryKey(gid string, opts ugs.MCOptions, pairs []ugs.Pair) string {
	h := sha256.New()
	var buf [16]byte
	for _, p := range pairs {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(p.S))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(p.T))
		h.Write(buf[:])
	}
	return fmt.Sprintf("pq|%s|%x", scalarQueryKey(gid, opts), h.Sum(nil)[:16])
}

// ------------------------------------------------------------------- jobs

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var req SparsifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	g, gid, release, err := s.validateSparsify(r.Context(), &req)
	if err != nil {
		s.writeRequestErr(w, err)
		return
	}
	// The pin must outlive this handler: the job goroutine reads the
	// graph until the run finishes, so it owns the release.
	job := s.jobs.Start(func(ctx context.Context, progress func(ugs.RunStats)) (*SparsifyResponse, error) {
		defer release()
		return s.sparsify(ctx, &req, g, gid, progress)
	})
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	if !s.jobs.Cancel(r.PathValue("id")) {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancel requested"})
}

// ------------------------------------------------------------- graphs/misc

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Describe answers from the stored summary without forcing an evicted
	// graph resident.
	if info, ok := s.store.Describe(name); ok {
		writeJSON(w, http.StatusOK, info)
		return
	}
	if e, ok := s.sparse.Get(name); ok {
		writeJSON(w, http.StatusOK, Info(name, e.graph))
		return
	}
	writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q", name))
}

func (s *Server) handlePutGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, 256<<20)
	g, err := s.store.AddReader(name, body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, Info(name, g))
}

// StatsResponse aggregates the service counters.
type StatsResponse struct {
	Graphs        int              `json:"graphs"`
	Computes      int64            `json:"sparsifier_computes"`
	Store         StoreStats       `json:"store"`
	SparsifyCache CacheStats       `json:"sparsify_cache"`
	QueryCache    CacheStats       `json:"query_cache"`
	Batcher       BatcherStats     `json:"batcher"`
	WorldCache    WorldCacheStats  `json:"world_cache"`
	Jobs          map[JobState]int `json:"jobs"`
	Limiter       LimiterStats     `json:"limiter"`
	Resilience    ResilienceStats  `json:"resilience"`
}

// ResilienceStats gathers every overload/failure counter across the serving
// stack in one place, so one /v1/stats read answers "is this server
// degrading, shedding, or eating faults right now".
type ResilienceStats struct {
	Shed              int64 `json:"shed"`
	Timeouts          int64 `json:"timeouts"`
	Degraded          int64 `json:"degraded"`
	StaleServed       int64 `json:"stale_served"`
	Revalidations     int64 `json:"revalidations"`
	Retries           int64 `json:"retries"`
	DrainRejected     int64 `json:"drain_rejected"`
	HandlerPanics     int64 `json:"handler_panics"`
	BatcherPanics     int64 `json:"batcher_panics"`
	JobPanics         int64 `json:"job_panics"`
	AbandonedFlights  int64 `json:"abandoned_flights"`
	Quarantined       int   `json:"quarantined"`
	QuarantineRejects int64 `json:"quarantine_rejects"`
	LoadFailures      int64 `json:"load_failures"`
	FaultsInjected    int64 `json:"faults_injected"`
}

func (s *Server) resilienceStats() ResilienceStats {
	store := s.store.Stats()
	batcher := s.batcher.Stats()
	return ResilienceStats{
		Shed:              s.limiter.Stats().Shed,
		Timeouts:          s.resilience.timeouts.Load(),
		Degraded:          s.resilience.degraded.Load(),
		StaleServed:       s.resilience.staleServed.Load(),
		Revalidations:     s.resilience.revalidations.Load(),
		Retries:           s.resilience.retries.Load(),
		DrainRejected:     s.resilience.drainRejected.Load(),
		HandlerPanics:     s.resilience.handlerPanics.Load(),
		BatcherPanics:     batcher.Panics,
		JobPanics:         s.jobs.Panics(),
		AbandonedFlights:  batcher.AbandonedFlights,
		Quarantined:       store.Quarantined,
		QuarantineRejects: store.QuarantineRejects,
		LoadFailures:      store.LoadFailures,
		FaultsInjected:    s.cfg.Faults.Total(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	jobs := make(map[JobState]int)
	for _, st := range s.jobs.List() {
		jobs[st.State]++
	}
	var worlds WorldCacheStats
	if s.worlds != nil {
		worlds = s.worlds.Stats()
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Graphs:        s.store.Len(),
		Computes:      s.computes.Load(),
		Store:         s.store.Stats(),
		SparsifyCache: s.sparse.Stats(),
		QueryCache:    s.queries.Stats(),
		Batcher:       s.batcher.Stats(),
		WorldCache:    worlds,
		Jobs:          jobs,
		Limiter:       s.limiter.Stats(),
		Resilience:    s.resilienceStats(),
	})
}

// ---------------------------------------------------------------- helpers

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr emits the typed envelope with the code implied by the status —
// the shorthand for validation-shaped failures.
func writeErr(w http.ResponseWriter, status int, msg string) {
	var code ErrorCode
	switch status {
	case http.StatusBadRequest:
		code = CodeBadRequest
	case http.StatusNotFound:
		code = CodeNotFound
	case http.StatusGatewayTimeout:
		code = CodeDeadline
	default:
		code = CodeInternal
	}
	writeError(w, status, code, msg, 0)
}

// writeAcquireErr maps graph-acquisition failures onto their typed codes: an
// unknown name and a quarantined one are deliberately the same envelope
// shape, differing only in code and Retry-After.
func (s *Server) writeAcquireErr(w http.ResponseWriter, err error) {
	var qe *QuarantineError
	switch {
	case errors.As(err, &qe):
		writeError(w, http.StatusServiceUnavailable, CodeQuarantined, err.Error(), time.Until(qe.Until))
	case errors.Is(err, ErrUnknownGraph):
		writeError(w, http.StatusNotFound, CodeUnknownGraph, err.Error(), 0)
	case errors.Is(err, context.DeadlineExceeded):
		s.resilience.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, CodeDeadline, err.Error(), 0)
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
	}
}

// writeRequestErr maps sparsify-validation failures: store errors keep their
// typed codes, anything else is the caller's fault.
func (s *Server) writeRequestErr(w http.ResponseWriter, err error) {
	var qe *QuarantineError
	if errors.As(err, &qe) || errors.Is(err, ErrUnknownGraph) || errors.Is(err, context.DeadlineExceeded) {
		s.writeAcquireErr(w, err)
		return
	}
	writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
}

// writeAdmitErr reports a request that failed admission: shed by the limiter
// (retryable 429) or dead on its own context before capacity freed.
func (s *Server) writeAdmitErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrOverloaded) {
		writeError(w, http.StatusTooManyRequests, CodeOverloaded,
			"server overloaded: admission queue full", s.limiter.RetryAfter())
		return
	}
	s.writeCtxErr(w, err)
}

// writeComputeErr reports a computation that failed after admission.
func (s *Server) writeComputeErr(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.writeCtxErr(w, err)
		return
	}
	writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
}

// writeCtxErr reports a request whose context died: its deadline expired
// (504), or it was cancelled — which, for a response anyone will still read,
// means server shutdown (503 draining; a disconnected client reads nothing).
func (s *Server) writeCtxErr(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.resilience.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, CodeDeadline, "request deadline exceeded", 0)
		return
	}
	writeError(w, http.StatusServiceUnavailable, CodeDraining, "request cancelled: "+err.Error(), time.Second)
}

// decodeJSON parses a bounded JSON body into dst, rejecting unknown fields.
func decodeJSON[T any](w http.ResponseWriter, r *http.Request, dst *T) bool {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	return true
}
