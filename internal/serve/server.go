// Package serve implements ugs-serve: a long-lived HTTP JSON service over
// the sparsifier core. It keeps graphs resident in CSR form (Store), caches
// sparsified results keyed by (graph, alpha, Spec) with singleflight
// admission (Cache), coalesces concurrent Monte-Carlo queries into shared
// WorldBatch flights at the planned lane width (Batcher), reuses sampled
// worlds across requests through a byte-bounded fill-block cache
// (WorldCache), and runs long sparsifications as cancellable async jobs
// with progress polling (Jobs).
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ugs"
)

// Config tunes a Server.
type Config struct {
	// GraphDir, when non-empty, is loaded into the store at startup
	// (every *.ugs / *.txt file).
	GraphDir string
	// SparsifyCacheSize bounds the resident sparsified results (default
	// 128). Evicted results free their graph; re-requesting recomputes.
	SparsifyCacheSize int
	// QueryCacheSize bounds cached query results (default 1024).
	QueryCacheSize int
	// Workers caps Monte-Carlo parallelism per flight (0 = GOMAXPROCS).
	Workers int
	// MaxSamples caps per-request Monte-Carlo sample counts (default
	// 20000).
	MaxSamples int
	// StoreBudgetBytes caps resident graph bytes in the store (0 =
	// unlimited): beyond it, least-recently-used unpinned graphs are
	// evicted and remapped from their .ugsb backing on demand.
	StoreBudgetBytes int64
	// ConvertDir holds .ugsb sidecars for converted text graphs and
	// spilled uploads (default: a temp dir removed on Close).
	ConvertDir string
	// Lanes is the default bit-parallel engine width for queries that do
	// not set "lanes" themselves: 0 = the planner (auto), 1 = the scalar
	// ablation, 64/128/256 = explicit WorldBatch widths.
	Lanes int
	// FanOut is the default source group size for pair queries that do
	// not set "fan_out" themselves: 0 = the planner (auto), 1 = one
	// traversal per source (the per-source ablation), 2..64 = explicit
	// multi-source group sizes.
	FanOut int
	// Confidence, when non-nil, makes queries adaptive by default:
	// requests without an explicit "confidence" field run sequential
	// stopping to this target instead of a fixed sample budget.
	Confidence *Confidence
	// WorldCacheBytes bounds the cross-request sampled-world cache
	// (default 64 MiB; negative disables it).
	WorldCacheBytes int64
}

func (c Config) withDefaults() Config {
	if c.SparsifyCacheSize == 0 {
		c.SparsifyCacheSize = 128
	}
	if c.QueryCacheSize == 0 {
		c.QueryCacheSize = 1024
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = 20000
	}
	if c.WorldCacheBytes == 0 {
		c.WorldCacheBytes = 64 << 20
	}
	return c
}

// Server is the ugs-serve request handler and its resident state.
type Server struct {
	cfg   Config
	base  context.Context
	store *Store
	// sparse caches sparsified results keyed by derived-graph ID (the
	// truncated SHA-256 of the full request key), so cached outputs are
	// addressable as query targets.
	sparse  *Cache[*sparseEntry]
	queries *Cache[*queryEntry]
	batcher *Batcher
	// worlds is the cross-request sampled-world cache (nil when disabled):
	// every batch-engine query hands it to the Monte-Carlo options, so
	// fills are shared across kinds, widths and requests.
	worlds *WorldCache
	jobs   *Jobs
	mux    *http.ServeMux

	// computes counts sparsifier runs actually executed: the cache-hit
	// path must leave it untouched (asserted by tests).
	computes atomic.Int64
}

type sparseEntry struct {
	resp  SparsifyResponse
	graph *ugs.Graph
}

type queryEntry struct {
	sp, rl    []float64
	connected float64
	values    []float64 // per-vertex results (pagerank, clustering)
	info      ugs.MCRunInfo
}

// New builds a Server. base bounds every background computation (flights,
// jobs): cancel it to initiate shutdown, then DrainJobs.
func New(base context.Context, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		base:    base,
		store:   NewStore(StoreConfig{BudgetBytes: cfg.StoreBudgetBytes, ConvertDir: cfg.ConvertDir}),
		sparse:  NewCache[*sparseEntry](cfg.SparsifyCacheSize),
		queries: NewCache[*queryEntry](cfg.QueryCacheSize),
		batcher: NewBatcher(base, cfg.Workers),
		jobs:    NewJobs(base),
	}
	if cfg.WorldCacheBytes > 0 {
		s.worlds = NewWorldCache(cfg.WorldCacheBytes)
	}
	if cfg.GraphDir != "" {
		if _, err := s.store.LoadDir(cfg.GraphDir); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /v1/graphs/{name}", s.handleGetGraph)
	s.mux.HandleFunc("POST /v1/graphs/{name}", s.handlePutGraph)
	s.mux.HandleFunc("POST /v1/sparsify", s.handleSparsify)
	s.mux.HandleFunc("GET /v1/sparsify/{id}/graph", s.handleDownloadSparse)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s, nil
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the graph store (startup loading, tests).
func (s *Server) Store() *Store { return s.store }

// Computes reports how many sparsifier runs actually executed — the
// counter behind the "cache hits do zero sparsifier work" guarantee.
func (s *Server) Computes() int64 { return s.computes.Load() }

// DrainJobs waits for async jobs to finish after the base context is
// cancelled, reporting whether the drain completed within the timeout.
func (s *Server) DrainJobs(timeout time.Duration) bool { return s.jobs.Wait(timeout) }

// Close releases the store (mappings, sidecar directory). Call after the
// base context is cancelled and jobs are drained.
func (s *Server) Close() error { return s.store.Close() }

// acquireGraph resolves a request's graph reference: a store name first,
// then a derived (sparsified) graph ID. The returned ID is cache-key safe
// and versioned. On success the graph is pinned against eviction until
// release (idempotent, never nil) is called.
func (s *Server) acquireGraph(name string) (*ugs.Graph, string, func(), error) {
	g, id, release, err := s.store.Acquire(name)
	if err == nil {
		return g, id, release, nil
	}
	if e, ok := s.sparse.Get(name); ok {
		// Sparsified results are heap graphs owned by the result cache,
		// not the store; no pin needed.
		return e.graph, e.resp.ID, func() {}, nil
	}
	return nil, "", nil, err
}

// ---------------------------------------------------------------- sparsify

// SparsifyRequest asks for graph reduced to alpha·|E| edges with the
// embedded Spec's method and options.
type SparsifyRequest struct {
	Graph string  `json:"graph"`
	Alpha float64 `json:"alpha"`
	ugs.Spec
}

// SparsifyResponse describes a sparsified result. ID addresses the resident
// output graph in later /v1/query and /v1/sparsify/{id}/graph requests.
type SparsifyResponse struct {
	ID              string       `json:"id"`
	Key             string       `json:"key"`
	Original        string       `json:"original"`
	Alpha           float64      `json:"alpha"`
	Graph           GraphInfo    `json:"graph"`
	RelativeEntropy float64      `json:"relative_entropy"`
	Stats           ugs.RunStats `json:"stats"`
	ElapsedMS       float64      `json:"elapsed_ms"`
	Cached          bool         `json:"cached"`
}

// requestKey builds the exact cache identity of a sparsify request and its
// addressable ID.
func requestKey(graphID string, alpha float64, spec ugs.Spec) (key, id string) {
	key = graphID + "|a=" + strconv.FormatFloat(alpha, 'g', -1, 64) + "|" + spec.Key()
	sum := sha256.Sum256([]byte(key))
	return key, "sp-" + hex.EncodeToString(sum[:16])
}

// validateSparsify resolves and validates a sparsify request, pinning the
// input graph. On success the caller owns the release.
func (s *Server) validateSparsify(req *SparsifyRequest) (*ugs.Graph, string, func(), error) {
	if req.Graph == "" {
		return nil, "", nil, fmt.Errorf("missing \"graph\"")
	}
	g, gid, release, err := s.acquireGraph(req.Graph)
	if err != nil {
		return nil, "", nil, err
	}
	if !(req.Alpha > 0 && req.Alpha < 1) {
		release()
		return nil, "", nil, fmt.Errorf("alpha %v outside (0,1)", req.Alpha)
	}
	// Building the sparsifier validates both the option values and the
	// method name against the registry; construction is cheap (the run
	// happens later).
	if _, err := req.Spec.Sparsifier(); err != nil {
		release()
		return nil, "", nil, err
	}
	return g, gid, release, nil
}

// sparsify runs (or reuses) the sparsification described by req. compute
// runs under runCtx — the server base context for synchronous requests, the
// job context for async ones — and progress, when non-nil, observes the run.
func (s *Server) sparsify(runCtx context.Context, req *SparsifyRequest, g *ugs.Graph, gid string, progress func(ugs.RunStats)) (*SparsifyResponse, error) {
	key, id := requestKey(gid, req.Alpha, req.Spec)
	entry, cached, err := s.sparsifyDo(runCtx, id, key, req, g, gid, progress)
	if err != nil {
		return nil, err
	}
	resp := entry.resp
	resp.Cached = cached
	return &resp, nil
}

// sparsifyDo wraps the cache admission with one subtlety: a compute can be
// owned by an async job, whose context dies when the job is cancelled. A
// synchronous request (or another job) that merely shared that flight was
// not itself cancelled, so on a Canceled error from a foreign owner it
// retries — the failed flight is deregistered, and the retry recomputes
// under this caller's own context. The loop terminates because each
// iteration either succeeds, fails for a non-cancellation reason, or
// observes this caller's own context cancelled.
func (s *Server) sparsifyDo(runCtx context.Context, id, key string, req *SparsifyRequest, g *ugs.Graph, gid string, progress func(ugs.RunStats)) (*sparseEntry, bool, error) {
	for {
		entry, cached, err := s.sparsifyOnce(runCtx, id, key, req, g, gid, progress)
		if errors.Is(err, context.Canceled) && runCtx.Err() == nil {
			continue
		}
		return entry, cached, err
	}
}

func (s *Server) sparsifyOnce(runCtx context.Context, id, key string, req *SparsifyRequest, g *ugs.Graph, gid string, progress func(ugs.RunStats)) (*sparseEntry, bool, error) {
	return s.sparse.Do(runCtx, id, func() (*sparseEntry, error) {
		var extra []ugs.Option
		if progress != nil {
			extra = append(extra, ugs.WithProgress(progress))
		}
		sp, err := req.Spec.Sparsifier(extra...)
		if err != nil {
			return nil, err
		}
		s.computes.Add(1)
		start := time.Now()
		res, err := sp.Sparsify(runCtx, g, req.Alpha)
		if err != nil {
			return nil, err
		}
		info := Info(id, res.Graph)
		return &sparseEntry{
			graph: res.Graph,
			resp: SparsifyResponse{
				ID:              id,
				Key:             key,
				Original:        gid,
				Alpha:           req.Alpha,
				Graph:           info,
				RelativeEntropy: ugs.RelativeEntropy(res.Graph, g),
				Stats:           res.Stats,
				ElapsedMS:       float64(time.Since(start)) / float64(time.Millisecond),
			},
		}, nil
	})
}

func (s *Server) handleSparsify(w http.ResponseWriter, r *http.Request) {
	var req SparsifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	g, gid, release, err := s.validateSparsify(&req)
	if err != nil {
		writeErr(w, badRequestOr404(err), err.Error())
		return
	}
	defer release()
	resp, err := s.sparsify(s.base, &req, g, gid, nil)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDownloadSparse(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.sparse.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no resident sparsified graph %q (evicted or never computed; re-POST /v1/sparsify)", id))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := ugs.WriteGraph(w, e.graph); err != nil {
		// Headers are gone; nothing to do beyond logging via the error path.
		return
	}
}

// ------------------------------------------------------------------ query

// Confidence is an adaptive sequential-stopping request: sample until the
// normal-approximation confidence interval of every tracked estimate has
// half-width at most Eps at confidence 1−Delta (Delta 0 means the default
// 0.05). The server caps the adaptive budget at Config.MaxSamples.
type Confidence struct {
	Eps   float64 `json:"eps"`
	Delta float64 `json:"delta,omitempty"`
}

// QueryRequest evaluates a Monte-Carlo query on a resident graph (a store
// name or a sparsified-result ID).
type QueryRequest struct {
	Graph string `json:"graph"`
	// Kind is "reliability", "distance", "connected", "pagerank" or
	// "clustering".
	Kind  string   `json:"kind"`
	Pairs [][2]int `json:"pairs,omitempty"`
	// Samples is the fixed Monte-Carlo sample count (default 500).
	// Mutually exclusive with Confidence.
	Samples int   `json:"samples,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	// Lanes selects the engine width: "auto" (the planner), "1" (the
	// scalar ablation), "64", "128" or "256". Empty uses the server
	// default. The width is an execution choice only — estimates are
	// bit-identical across all of them.
	Lanes string `json:"lanes,omitempty"`
	// FanOut selects how many distinct sources one pair-query traversal
	// carries: "auto" (the planner), "1" (one traversal per source, the
	// per-source ablation) or "2".."64". Empty uses the server default.
	// Like Lanes it is an execution choice only — per-pair estimates are
	// bit-identical across every fan-out.
	FanOut string `json:"fan_out,omitempty"`
	// Confidence switches reliability/distance/connected queries from the
	// fixed Samples budget to sequential stopping. Not supported for the
	// per-vertex kinds (pagerank, clustering), which run scalar worlds.
	Confidence *Confidence `json:"confidence,omitempty"`
}

// QueryResponse carries per-pair estimates (reliability, distance),
// per-vertex estimates (pagerank, clustering) or the scalar connectivity
// probability. Distance entries are null for pairs never connected in any
// sampled world. Samples is the count actually drawn — for adaptive runs
// the stopped total, with Rounds and Converged reporting the schedule.
type QueryResponse struct {
	Kind      string     `json:"kind"`
	Values    []*float64 `json:"values,omitempty"`
	Value     *float64   `json:"value,omitempty"`
	Samples   int        `json:"samples"`
	Lanes     string     `json:"lanes,omitempty"`
	FanOut    string     `json:"fan_out,omitempty"`
	Rounds    int        `json:"rounds,omitempty"`
	Converged *bool      `json:"converged,omitempty"`
	Cached    bool       `json:"cached"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	g, gid, release, err := s.acquireGraph(req.Graph)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownGraph) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err.Error())
		return
	}
	defer release()

	lanes := s.cfg.Lanes
	if req.Lanes != "" {
		if lanes, err = ugs.ParseLanes(req.Lanes); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	fanOut := s.cfg.FanOut
	if req.FanOut != "" {
		if fanOut, err = ugs.ParseFanOut(req.FanOut); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	conf := req.Confidence
	if conf == nil {
		conf = s.cfg.Confidence
	}
	opts := ugs.MCOptions{Seed: req.Seed, Workers: s.cfg.Workers, Lanes: lanes, FanOut: fanOut}
	if conf != nil {
		if req.Samples != 0 {
			writeErr(w, http.StatusBadRequest, "samples and confidence are mutually exclusive (confidence decides the budget)")
			return
		}
		target := ugs.WithConfidence(conf.Eps, conf.Delta)
		// The server's sample cap bounds the adaptive budget too; keep
		// the schedule legal when the cap is below the default MinSamples.
		target.MaxSamples = s.cfg.MaxSamples
		if target.MinSamples == 0 && s.cfg.MaxSamples < 128 {
			target.MinSamples = s.cfg.MaxSamples
		}
		opts.Target = target
	} else {
		if req.Samples == 0 {
			req.Samples = 500
		}
		if req.Samples < 1 || req.Samples > s.cfg.MaxSamples {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("samples %d outside [1, %d]", req.Samples, s.cfg.MaxSamples))
			return
		}
		opts.Samples = req.Samples
	}
	if s.worlds != nil {
		opts.FillCache = s.worlds
		opts.FillID = gid
	}
	if err := opts.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}

	switch req.Kind {
	case "reliability", "distance":
		s.handlePairQuery(w, r, &req, g, gid, opts)
	case "connected":
		s.handleConnectedQuery(w, r, &req, g, gid, opts)
	case "pagerank", "clustering":
		s.handleVectorQuery(w, r, &req, g, gid, opts)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown kind %q (want reliability, distance, connected, pagerank or clustering)", req.Kind))
	}
}

func (s *Server) handlePairQuery(w http.ResponseWriter, r *http.Request, req *QueryRequest, g *ugs.Graph, gid string, opts ugs.MCOptions) {
	if len(req.Pairs) == 0 {
		writeErr(w, http.StatusBadRequest, "pairs required for reliability/distance queries")
		return
	}
	pairs := make([]ugs.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		if p[0] < 0 || p[0] >= g.NumVertices() || p[1] < 0 || p[1] >= g.NumVertices() {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("pair %d endpoints (%d,%d) outside [0,%d)", i, p[0], p[1], g.NumVertices()))
			return
		}
		pairs[i] = ugs.Pair{S: p[0], T: p[1]}
	}
	// Reliability and distance come from the same merged SP+RL pass, so
	// they share one kind-agnostic cache entry (and, on a miss, one
	// coalesced flight).
	key := pairQueryKey(gid, opts, pairs)
	entry, cached, err := s.queries.Do(r.Context(), key, func() (*queryEntry, error) {
		// The flight wait runs under the server context, not the
		// request's: the compute owner's disconnect must not fail the
		// coalesced waiters sharing this cache flight (Cache.Do contract).
		if opts.Target != nil {
			// Adaptive runs bypass the batcher: the stopping decision
			// depends on every tracked pair, so merging this request's
			// pairs with a stranger's would move its stopping point and
			// break the bit-identical-to-direct-call contract. The world
			// cache still shares the underlying fills.
			sp, rl, info, err := ugs.ShortestDistanceAndReliabilityRun(s.base, g, pairs, opts)
			if err != nil {
				return nil, err
			}
			return &queryEntry{sp: sp, rl: rl, info: info}, nil
		}
		sp, rl, err := s.batcher.PairQuery(s.base, gid, g, pairs, opts)
		if err != nil {
			return nil, err
		}
		return &queryEntry{sp: sp, rl: rl, info: ugs.MCRunInfo{Samples: opts.Samples, Rounds: 1, Converged: true}}, nil
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	src := entry.rl
	if req.Kind == "distance" {
		src = entry.sp
	}
	values := make([]*float64, len(src))
	for i, v := range src {
		if !math.IsNaN(v) {
			v := v
			values[i] = &v
		}
	}
	writeJSON(w, http.StatusOK, queryResponse(req.Kind, opts, entry, cached, QueryResponse{Values: values}))
}

func (s *Server) handleConnectedQuery(w http.ResponseWriter, r *http.Request, req *QueryRequest, g *ugs.Graph, gid string, opts ugs.MCOptions) {
	if len(req.Pairs) != 0 {
		writeErr(w, http.StatusBadRequest, "connected queries take no pairs")
		return
	}
	key := "cn|" + scalarQueryKey(gid, opts)
	entry, cached, err := s.queries.Do(r.Context(), key, func() (*queryEntry, error) {
		p, info, err := ugs.ConnectedProbabilityRun(s.base, g, opts)
		if err != nil {
			return nil, err
		}
		return &queryEntry{connected: p, info: info}, nil
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	v := entry.connected
	writeJSON(w, http.StatusOK, queryResponse(req.Kind, opts, entry, cached, QueryResponse{Value: &v}))
}

// handleVectorQuery serves the per-vertex kinds (pagerank, clustering).
// Vector queries run scalar worlds — the planner never routes them to the
// batch engine — and have no per-estimate CI, so confidence targets are
// rejected rather than silently ignored.
func (s *Server) handleVectorQuery(w http.ResponseWriter, r *http.Request, req *QueryRequest, g *ugs.Graph, gid string, opts ugs.MCOptions) {
	if len(req.Pairs) != 0 {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("%s queries take no pairs", req.Kind))
		return
	}
	if opts.Target != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("confidence is not supported for %s queries (per-vertex estimates run scalar worlds)", req.Kind))
		return
	}
	key := req.Kind + "|" + scalarQueryKey(gid, opts)
	entry, cached, err := s.queries.Do(r.Context(), key, func() (*queryEntry, error) {
		var (
			values []float64
			err    error
		)
		if req.Kind == "pagerank" {
			values, err = ugs.ExpectedPageRank(s.base, g, opts, ugs.PageRankOptions{})
		} else {
			values, err = ugs.ExpectedClusteringCoefficients(s.base, g, opts)
		}
		if err != nil {
			return nil, err
		}
		return &queryEntry{values: values, info: ugs.MCRunInfo{Samples: opts.Samples, Rounds: 1, Converged: true}}, nil
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	values := make([]*float64, len(entry.values))
	for i, v := range entry.values {
		v := v
		values[i] = &v
	}
	writeJSON(w, http.StatusOK, queryResponse(req.Kind, opts, entry, cached, QueryResponse{Values: values}))
}

// queryResponse fills the run-report fields shared by every query kind.
// Lanes and FanOut echo the requested execution shape (ablation knobs, not
// part of the result); Converged is only meaningful for adaptive runs.
func queryResponse(kind string, opts ugs.MCOptions, entry *queryEntry, cached bool, resp QueryResponse) QueryResponse {
	resp.Kind = kind
	resp.Samples = entry.info.Samples
	resp.Lanes = ugs.FormatLanes(opts.Lanes)
	resp.FanOut = ugs.FormatFanOut(opts.FanOut)
	resp.Cached = cached
	if opts.Target != nil {
		resp.Rounds = entry.info.Rounds
		converged := entry.info.Converged
		resp.Converged = &converged
	}
	return resp
}

// scalarQueryKey is the cache identity of a pair-free query: the versioned
// graph, the sample stream, and — for adaptive runs — the stopping target
// (which changes the drawn sample count, hence the estimate). Lanes, FanOut
// and Workers are deliberately excluded: every width and source group size
// is bit-identical, so a cached result is valid for all of them.
func scalarQueryKey(gid string, opts ugs.MCOptions) string {
	key := fmt.Sprintf("%s|s=%d|n=%d", gid, opts.Seed, opts.Samples)
	if t := opts.Target; t != nil {
		key += fmt.Sprintf("|eps=%g,delta=%g,max=%d", t.Eps, t.Delta, t.MaxSamples)
	}
	return key
}

// pairQueryKey hashes the pair list so repeat queries with identical pair
// sets hit the cache regardless of length. Like scalarQueryKey it includes
// the adaptive target but neither the lane width nor the source fan-out.
func pairQueryKey(gid string, opts ugs.MCOptions, pairs []ugs.Pair) string {
	h := sha256.New()
	var buf [16]byte
	for _, p := range pairs {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(p.S))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(p.T))
		h.Write(buf[:])
	}
	return fmt.Sprintf("pq|%s|%x", scalarQueryKey(gid, opts), h.Sum(nil)[:16])
}

// ------------------------------------------------------------------- jobs

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var req SparsifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	g, gid, release, err := s.validateSparsify(&req)
	if err != nil {
		writeErr(w, badRequestOr404(err), err.Error())
		return
	}
	// The pin must outlive this handler: the job goroutine reads the
	// graph until the run finishes, so it owns the release.
	job := s.jobs.Start(func(ctx context.Context, progress func(ugs.RunStats)) (*SparsifyResponse, error) {
		defer release()
		return s.sparsify(ctx, &req, g, gid, progress)
	})
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	if !s.jobs.Cancel(r.PathValue("id")) {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancel requested"})
}

// ------------------------------------------------------------- graphs/misc

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Describe answers from the stored summary without forcing an evicted
	// graph resident.
	if info, ok := s.store.Describe(name); ok {
		writeJSON(w, http.StatusOK, info)
		return
	}
	if e, ok := s.sparse.Get(name); ok {
		writeJSON(w, http.StatusOK, Info(name, e.graph))
		return
	}
	writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q", name))
}

func (s *Server) handlePutGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, 256<<20)
	g, err := s.store.AddReader(name, body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, Info(name, g))
}

// StatsResponse aggregates the service counters.
type StatsResponse struct {
	Graphs        int              `json:"graphs"`
	Computes      int64            `json:"sparsifier_computes"`
	Store         StoreStats       `json:"store"`
	SparsifyCache CacheStats       `json:"sparsify_cache"`
	QueryCache    CacheStats       `json:"query_cache"`
	Batcher       BatcherStats     `json:"batcher"`
	WorldCache    WorldCacheStats  `json:"world_cache"`
	Jobs          map[JobState]int `json:"jobs"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	jobs := make(map[JobState]int)
	for _, st := range s.jobs.List() {
		jobs[st.State]++
	}
	var worlds WorldCacheStats
	if s.worlds != nil {
		worlds = s.worlds.Stats()
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Graphs:        s.store.Len(),
		Computes:      s.computes.Load(),
		Store:         s.store.Stats(),
		SparsifyCache: s.sparse.Stats(),
		QueryCache:    s.queries.Stats(),
		Batcher:       s.batcher.Stats(),
		WorldCache:    worlds,
		Jobs:          jobs,
	})
}

// ---------------------------------------------------------------- helpers

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// decodeJSON parses a bounded JSON body into dst, rejecting unknown fields.
func decodeJSON[T any](w http.ResponseWriter, r *http.Request, dst *T) bool {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	return true
}

// badRequestOr404 maps "unknown graph" validation failures to 404 and
// everything else to 400.
func badRequestOr404(err error) int {
	if err != nil && strings.HasPrefix(err.Error(), "unknown graph") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}
