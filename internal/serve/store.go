package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"ugs"
	"ugs/internal/faults"
)

// Store holds the uncertain graphs the service can sparsify and query, under
// a configurable resident-bytes budget.
//
// Graphs are backed by .ugsb files wherever possible: binary files in the
// graph directory are opened as memory mappings (load = mmap + header check,
// no parsing), text files are transparently converted to a .ugsb sidecar on
// first load and then mapped, and uploaded graphs are spilled to a sidecar
// so they too can be evicted. When the resident bytes exceed the budget, the
// least-recently-used unpinned graph is dropped — its mapping is released
// and the page cache reclaims the memory — and reloaded on demand by the
// next request that names it (an mmap, not a re-parse).
//
// Requests access graphs through Acquire, which pins the resident mapping
// with a refcount: an evicted graph is never unmapped while an in-flight
// sparsify or query still reads it; the last release closes it.
//
// Generations survive eviction. A name's generation bumps only when its
// bytes actually change (re-upload, or the backing file's size/mtime
// fingerprint differing on reload), so cached sparsify and query results —
// keyed by "name@gen" — stay coherent across evict/reload cycles.
type Store struct {
	cfg StoreConfig
	now func() time.Time // injectable clock for quarantine tests

	mu            sync.Mutex
	entries       map[string]*storeEntry
	clock         uint64
	residentBytes int64
	loads         int64
	loadFailures  int64
	quarRejects   int64
	evictions     int64
	conversions   int64
	patches       int64
	convertDir    string
	ownsConvert   bool
	closed        bool
}

// StoreConfig tunes a Store.
type StoreConfig struct {
	// BudgetBytes caps the resident graph bytes; 0 means unlimited. The
	// budget is enforced at admission: loading a graph evicts unpinned
	// residents LRU-first until under budget. Pinned graphs are never
	// evicted, so concurrent pins can transiently overshoot.
	BudgetBytes int64
	// ConvertDir holds .ugsb sidecars converted from text graphs and
	// spilled uploads. Empty means a temporary directory created on first
	// use and removed by Close.
	ConvertDir string
	// QuarantineBase and QuarantineMax bound the exponential backoff for
	// load-failure quarantine: after the n-th consecutive failure a name is
	// quarantined for min(Base·2ⁿ⁻¹, Max). Zero means 1s and 60s.
	QuarantineBase time.Duration
	QuarantineMax  time.Duration
	// Faults optionally injects deterministic failures at the store.open
	// and store.read points (nil = no injection).
	Faults *faults.Injector
}

type storeEntry struct {
	name     string
	gen      int
	info     GraphInfo
	path     string // .ugsb backing file; "" = heap-only, unevictable
	sidecar  bool   // path is store-owned (converted/spilled)
	verified bool   // a full-validation open of fp's bytes has succeeded
	fp       fileFP
	res      *resident     // nil while evicted
	loading  chan struct{} // non-nil while a reload is in flight
	quar     *quarantineState
	lastUse  uint64
	// log holds the edit batches applied since path was last written: the
	// backing file plus the log reconstructs the current generation, so
	// patched graphs stay evictable. Compaction rewrites the sidecar and
	// resets the log every patchCompactBatches batches.
	log ugs.EditLog
}

// patchCompactBatches is how many patch batches accumulate against one
// backing file before the store rewrites the sidecar and resets the log
// (bounding replay work on reload).
const patchCompactBatches = 4

// ErrPatchConflict reports that a patch lost a race: the graph it was
// prepared against was replaced, reloaded with changed bytes, or is not at
// the version the caller demanded.
var ErrPatchConflict = errors.New("patch conflict")

// quarantineState is the negative cache for a name whose backing file is
// failing to load: while now < until, Acquire rejects without touching the
// file (a corrupt .ugsb is not re-validated per request). The fingerprint
// recorded at the last failure lets a fixed file clear quarantine early —
// if a stat shows different bytes on disk, the next Acquire probes
// immediately instead of waiting out the backoff.
type quarantineState struct {
	failures int
	lastErr  error
	until    time.Time
	fp       fileFP // fingerprint at the last failed probe (zero if unstattable)
}

// ErrQuarantined reports that a graph's backing file is failing to load and
// the name is under backoff. Returned wrapped in a *QuarantineError.
var ErrQuarantined = errors.New("graph quarantined")

// QuarantineError carries the quarantine details the server needs to build a
// typed 503 with Retry-After.
type QuarantineError struct {
	Name     string
	Failures int
	Until    time.Time
	Err      error // the last load failure
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("graph %q quarantined after %d load failure(s), retry after %s: %v",
		e.Name, e.Failures, e.Until.Format(time.RFC3339), e.Err)
}

// Unwrap makes errors.Is(err, ErrQuarantined) hold.
func (e *QuarantineError) Unwrap() error { return ErrQuarantined }

// resident is the in-memory incarnation of a graph. It is separate from the
// entry so that an evicted-but-pinned graph outlives its slot: eviction
// marks it dropped, and the final release (refs → 0) closes the mapping.
type resident struct {
	g       *ugs.Graph
	bytes   int64
	refs    int
	dropped bool
}

// fileFP fingerprints a backing file; a changed fingerprint on reload means
// the bytes may differ, so the generation bumps and validation reruns.
type fileFP struct {
	size  int64
	mtime int64
}

func statFP(path string) (fileFP, error) {
	st, err := os.Stat(path)
	if err != nil {
		return fileFP{}, err
	}
	return fileFP{size: st.Size(), mtime: st.ModTime().UnixNano()}, nil
}

// ErrUnknownGraph reports that no graph is registered under the given name.
var ErrUnknownGraph = errors.New("unknown graph")

// graphNameRE constrains graph names to path- and cache-key-safe tokens.
var graphNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// NewStore returns an empty store.
func NewStore(cfg StoreConfig) *Store {
	if cfg.QuarantineBase <= 0 {
		cfg.QuarantineBase = time.Second
	}
	if cfg.QuarantineMax <= 0 {
		cfg.QuarantineMax = time.Minute
	}
	return &Store{cfg: cfg, now: time.Now, entries: make(map[string]*storeEntry)}
}

// quarBackoff is the quarantine duration after the n-th consecutive failure.
func (s *Store) quarBackoff(failures int) time.Duration {
	d := s.cfg.QuarantineBase
	for i := 1; i < failures && d < s.cfg.QuarantineMax; i++ {
		d *= 2
	}
	if d > s.cfg.QuarantineMax {
		d = s.cfg.QuarantineMax
	}
	return d
}

// ioFaults evaluates the store's fault-injection points, in order: an open
// failure, then a read stall (or failure). No-ops without an injector.
func (s *Store) ioFaults() error {
	if err := s.cfg.Faults.Check("store.open"); err != nil {
		return err
	}
	return s.cfg.Faults.Check("store.read")
}

func (s *Store) tickLocked() uint64 {
	s.clock++
	return s.clock
}

// convertDirLocked returns (creating if needed) the sidecar directory.
func (s *Store) convertDirLocked() (string, error) {
	if s.convertDir != "" {
		return s.convertDir, nil
	}
	if s.cfg.ConvertDir != "" {
		if err := os.MkdirAll(s.cfg.ConvertDir, 0o755); err != nil {
			return "", err
		}
		s.convertDir = s.cfg.ConvertDir
		return s.convertDir, nil
	}
	dir, err := os.MkdirTemp("", "ugs-store-*")
	if err != nil {
		return "", err
	}
	s.convertDir, s.ownsConvert = dir, true
	return dir, nil
}

// heapGraphBytes estimates the resident footprint of a heap CSR graph: the
// edge records, offset table and arc array (the same sections a .ugsb file
// holds, so heap and mapped charges are comparable).
func heapGraphBytes(g *ugs.Graph) int64 {
	n, m := int64(g.NumVertices()), int64(g.NumEdges())
	return 24*m + 4*(n+1) + 32*m
}

// Add registers (or replaces) a graph under name, bumping its generation.
// When a budget is configured the graph is spilled to a .ugsb sidecar so it
// is evictable; if spilling fails the graph stays resident unevictably.
func (s *Store) Add(name string, g *ugs.Graph) error {
	if !graphNameRE.MatchString(name) {
		return fmt.Errorf("serve: invalid graph name %q (want %s)", name, graphNameRE)
	}
	info := Info(name, g)
	bytes := heapGraphBytes(g)

	// Spill outside the lock: writing a large sidecar must not stall
	// concurrent queries. The temp file is renamed into place under the
	// lock once the generation is known.
	var tmp string
	if s.cfg.BudgetBytes > 0 {
		s.mu.Lock()
		dir, derr := s.convertDirLocked()
		s.mu.Unlock()
		if derr == nil {
			if f, err := os.CreateTemp(dir, name+".*.tmp"); err == nil {
				tmp = f.Name()
				werr := ugs.WriteBinaryGraph(f, g)
				if cerr := f.Close(); werr == nil {
					werr = cerr
				}
				if werr != nil {
					os.Remove(tmp)
					tmp = ""
				}
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		if tmp != "" {
			os.Remove(tmp)
		}
		return errors.New("serve: store closed")
	}
	gen := 1
	if prev, ok := s.entries[name]; ok {
		gen = prev.gen + 1
		s.removeEntryLocked(prev)
	}
	e := &storeEntry{name: name, gen: gen, info: info, lastUse: s.tickLocked()}
	if tmp != "" {
		final := filepath.Join(filepath.Dir(tmp), fmt.Sprintf("%s.g%d.ugsb", name, gen))
		if err := os.Rename(tmp, final); err == nil {
			if fp, err := statFP(final); err == nil {
				e.path, e.sidecar, e.verified, e.fp = final, true, true, fp
				s.conversions++
			} else {
				os.Remove(final)
			}
		} else {
			os.Remove(tmp)
		}
	}
	e.res = &resident{g: g, bytes: bytes}
	s.entries[name] = e
	s.residentBytes += bytes
	s.evictLocked(e)
	return nil
}

// AddReader parses the text interchange format from r and registers the
// graph under name.
func (s *Store) AddReader(name string, r io.Reader) (*ugs.Graph, error) {
	g, err := ugs.ReadGraph(r)
	if err != nil {
		return nil, err
	}
	if err := s.Add(name, g); err != nil {
		return nil, err
	}
	return g, nil
}

// Patch applies one atomic edit batch to the graph registered under name and
// bumps its generation, so every cached result keyed by "name@gen" — sparsify
// plans, query answers, world-cache fill blocks — is unreachable for the
// patched graph. It returns the post-patch summary and generation.
//
// expectGen, when non-zero, is an optimistic-concurrency precondition: the
// patch applies only if the graph is currently at that generation, otherwise
// ErrPatchConflict. The edits are validated and applied outside the store
// lock against a pinned snapshot; if the entry changed in the meantime (a
// re-upload, a concurrent reload with changed bytes) the patch also fails
// with ErrPatchConflict rather than silently applying to the wrong bytes.
//
// A patched graph stays evictable: the edit batch is appended to the entry's
// log, and a reload replays the log over the backing file. Every
// patchCompactBatches batches the store compacts — rewrites the sidecar at
// the current generation and resets the log.
func (s *Store) Patch(ctx context.Context, name string, edits []ugs.EdgeEdit, expectGen int) (GraphInfo, int, error) {
	g, _, release, err := s.AcquireCtx(ctx, name)
	if err != nil {
		return GraphInfo{}, 0, err
	}
	defer release()

	// Evaluate the version precondition before validating the edits: a
	// stale client's batch may well be invalid against the newer state, and
	// it should learn about the race (409), not about validation artifacts
	// of applying its batch to bytes it never saw (400).
	if expectGen != 0 {
		s.mu.Lock()
		e, ok := s.entries[name]
		if ok && e.gen != expectGen {
			gen := e.gen
			s.mu.Unlock()
			return GraphInfo{}, 0, fmt.Errorf("%w: graph %q is at version %d, patch expects %d", ErrPatchConflict, name, gen, expectGen)
		}
		s.mu.Unlock()
	}

	// Validate + apply outside the lock: a large structural batch rebuilds
	// the CSR and must not stall concurrent acquires.
	res, err := ugs.ApplyEdits(g, edits)
	if err != nil {
		return GraphInfo{}, 0, err
	}
	ng := res.Graph
	bytes := heapGraphBytes(ng)

	s.mu.Lock()
	e, ok := s.entries[name]
	switch {
	case s.closed:
		s.mu.Unlock()
		return GraphInfo{}, 0, errors.New("serve: store closed")
	case !ok || e.res == nil || e.res.g != g:
		// The name was re-registered, or evicted and reloaded from changed
		// bytes, after we pinned our snapshot.
		s.mu.Unlock()
		return GraphInfo{}, 0, fmt.Errorf("%w: graph %q changed while the patch was prepared", ErrPatchConflict, name)
	case expectGen != 0 && expectGen != e.gen:
		gen := e.gen
		s.mu.Unlock()
		return GraphInfo{}, 0, fmt.Errorf("%w: graph %q is at version %d, patch expects %d", ErrPatchConflict, name, gen, expectGen)
	}
	s.dropResidentLocked(e) // our pin keeps the old mapping alive until release
	e.gen++
	e.info = Info(name, ng)
	e.res = &resident{g: ng, bytes: bytes}
	e.lastUse = s.tickLocked()
	s.residentBytes += bytes
	s.patches++
	var compactPin *resident
	if e.path != "" {
		e.log.Append(edits)
		if e.log.Batches() >= patchCompactBatches {
			compactPin = e.res
			compactPin.refs++ // keep ng resident while the sidecar is written
		}
	}
	info, gen := e.info, e.gen
	s.evictLocked(e)
	s.mu.Unlock()

	if compactPin != nil {
		s.compactEntry(name, e, ng, gen)
		s.release(compactPin)
	}
	return info, gen, nil
}

// compactEntry rewrites an entry's backing sidecar at generation gen and
// resets its patch log, bounding future reload-replay work. Failures are
// silently tolerated: the old base + log remain a valid reconstruction. The
// swap is abandoned if the entry moved on (replaced, or patched again —
// whichever patch crosses the threshold next re-compacts).
func (s *Store) compactEntry(name string, e *storeEntry, g *ugs.Graph, gen int) {
	s.mu.Lock()
	dir, derr := s.convertDirLocked()
	s.mu.Unlock()
	if derr != nil {
		return
	}
	side := filepath.Join(dir, fmt.Sprintf("%s.g%d.ugsb", name, gen))
	if err := ugs.WriteBinaryGraphFile(side, g); err != nil {
		os.Remove(side)
		return
	}
	fp, err := statFP(side)
	if err != nil {
		os.Remove(side)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.entries[name] != e || e.gen != gen {
		os.Remove(side)
		return
	}
	oldPath, oldOwned := e.path, e.sidecar
	e.path, e.sidecar, e.verified, e.fp = side, true, true, fp
	e.log.Reset()
	s.conversions++
	if oldOwned && oldPath != "" && oldPath != side {
		// Safe while a concurrent reload still has the old file open: the
		// mapping keeps the unlinked inode alive.
		os.Remove(oldPath)
	}
}

// LoadDir loads every *.ugsb, *.ugs and *.txt file in dir (non-recursively),
// naming each graph after its file base without the extension; a .ugsb file
// shadows a text file of the same name. Binary files are opened as mappings
// (fully validated once); text files are parsed, converted to a .ugsb
// sidecar and then served from the mapping. It returns the registered names
// in sorted order. A file that fails to load does NOT abort the boot: its
// name is registered in quarantine (requests get a typed rejection with a
// backoff hint) and re-probed per the quarantine schedule — a flaky or
// corrupt file must not take down the healthy rest of the corpus.
func (s *Store) LoadDir(dir string) ([]string, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// Pick one file per name, preferring the binary form.
	rank := map[string]int{".ugsb": 3, ".ugs": 2, ".txt": 1}
	pick := make(map[string]string)
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		ext := filepath.Ext(f.Name())
		if rank[ext] == 0 {
			continue
		}
		name := strings.TrimSuffix(f.Name(), ext)
		if prev, ok := pick[name]; ok && rank[filepath.Ext(prev)] >= rank[ext] {
			continue
		}
		pick[name] = f.Name()
	}
	names := make([]string, 0, len(pick))
	for name := range pick {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, pick[name])
		if err := s.loadFile(name, path); err != nil {
			if !graphNameRE.MatchString(name) {
				return nil, fmt.Errorf("serve: loading %s: %w", pick[name], err)
			}
			s.admitQuarantined(name, path, err)
		}
	}
	return names, nil
}

// loadFile registers one on-disk graph: .ugsb mapped directly, text parsed
// and converted to a mapped sidecar (falling back to an unevictable heap
// graph if conversion fails).
func (s *Store) loadFile(name, path string) error {
	if !graphNameRE.MatchString(name) {
		return fmt.Errorf("serve: invalid graph name %q (want %s)", name, graphNameRE)
	}
	if err := s.ioFaults(); err != nil {
		return err
	}
	if filepath.Ext(path) == ".ugsb" {
		fp, err := statFP(path)
		if err != nil {
			return err
		}
		g, err := ugs.OpenMappedGraph(path) // full validation, once
		if err != nil {
			return err
		}
		return s.admitLoaded(name, &storeEntry{
			path: path, verified: true, fp: fp, info: Info(name, g),
		}, g, fp.size)
	}

	g, err := ugs.ReadGraphFile(path)
	if err != nil {
		return err
	}
	e := &storeEntry{info: Info(name, g)}
	mapped, bytes, cerr := s.convertToSidecar(name, g, e)
	if cerr == nil {
		g = mapped
	} else {
		bytes = heapGraphBytes(g) // unevictable fallback
	}
	return s.admitLoaded(name, e, g, bytes)
}

// convertToSidecar writes g to a store-owned .ugsb and maps it, filling in
// e's backing-file fields.
func (s *Store) convertToSidecar(name string, g *ugs.Graph, e *storeEntry) (*ugs.Graph, int64, error) {
	s.mu.Lock()
	dir, err := s.convertDirLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, 0, err
	}
	side := filepath.Join(dir, name+".g1.ugsb")
	if err := ugs.WriteBinaryGraphFile(side, g); err != nil {
		return nil, 0, err
	}
	fp, err := statFP(side)
	if err != nil {
		os.Remove(side)
		return nil, 0, err
	}
	mapped, err := ugs.OpenMappedGraphTrusted(side)
	if err != nil {
		os.Remove(side)
		return nil, 0, err
	}
	e.path, e.sidecar, e.verified, e.fp = side, true, true, fp
	s.mu.Lock()
	s.conversions++
	s.mu.Unlock()
	return mapped, fp.size, nil
}

// admitLoaded installs a freshly loaded entry under name (gen 1, or bumped
// if the name already exists) and applies the budget.
func (s *Store) admitLoaded(name string, e *storeEntry, g *ugs.Graph, bytes int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		g.Close()
		return errors.New("serve: store closed")
	}
	e.name, e.gen = name, 1
	if prev, ok := s.entries[name]; ok {
		e.gen = prev.gen + 1
		s.removeEntryLocked(prev)
	}
	e.info.Name = name
	e.lastUse = s.tickLocked()
	e.res = &resident{g: g, bytes: bytes}
	s.entries[name] = e
	s.residentBytes += bytes
	s.loads++
	s.evictLocked(e)
	return nil
}

// admitQuarantined registers name with no resident graph and an active
// quarantine: the backing file failed to load at boot, so requests get the
// typed rejection until a probe (per the backoff schedule, or a changed
// file) succeeds.
func (s *Store) admitQuarantined(name, path string, lerr error) {
	fp, _ := statFP(path) // zero on stat error: any later stat differs → probe
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	gen := 1
	if prev, ok := s.entries[name]; ok {
		gen = prev.gen + 1
		s.removeEntryLocked(prev)
	}
	e := &storeEntry{name: name, gen: gen, path: path, lastUse: s.tickLocked()}
	e.info = GraphInfo{Name: name}
	e.quar = &quarantineState{failures: 1, lastErr: lerr, until: s.now().Add(s.quarBackoff(1)), fp: fp}
	s.loadFailures++
	s.entries[name] = e
}

// Acquire returns the graph registered under name, pinned against eviction,
// together with its versioned identifier. The caller must invoke release
// (idempotent) when done with the graph; until then the mapping stays valid
// even if the graph is evicted or replaced. Evicted graphs are reloaded
// from their backing file — concurrent acquirers share one reload.
func (s *Store) Acquire(name string) (g *ugs.Graph, id string, release func(), err error) {
	return s.AcquireCtx(context.Background(), name)
}

// AcquireCtx is Acquire bounded by ctx: a caller whose deadline expires
// while another goroutine's reload is in flight stops waiting (the reload
// itself continues for the survivors). Names under quarantine are rejected
// with a *QuarantineError without touching the backing file, except when a
// stat shows the bytes changed on disk — then the quarantine clears and
// this caller probes immediately.
func (s *Store) AcquireCtx(ctx context.Context, name string) (g *ugs.Graph, id string, release func(), err error) {
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return nil, "", nil, errors.New("serve: store closed")
		}
		if err := ctx.Err(); err != nil {
			s.mu.Unlock()
			return nil, "", nil, err
		}
		e, ok := s.entries[name]
		if !ok {
			s.mu.Unlock()
			return nil, "", nil, fmt.Errorf("%w %q", ErrUnknownGraph, name)
		}
		if r := e.res; r != nil {
			r.refs++
			e.lastUse = s.tickLocked()
			id := fmt.Sprintf("%s@%d", e.name, e.gen)
			s.mu.Unlock()
			var once sync.Once
			return r.g, id, func() { once.Do(func() { s.release(r) }) }, nil
		}
		if ch := e.loading; ch != nil {
			s.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, "", nil, ctx.Err()
			}
			s.mu.Lock()
			continue
		}
		if e.path == "" {
			s.mu.Unlock()
			return nil, "", nil, fmt.Errorf("serve: graph %q evicted with no backing file", name)
		}
		if q := e.quar; q != nil && s.now().Before(q.until) {
			// Under backoff: reject without opening the file — unless the
			// bytes on disk changed, which clears the quarantine early.
			if fp, ferr := statFP(e.path); ferr != nil || fp == q.fp {
				qerr := &QuarantineError{Name: name, Failures: q.failures, Until: q.until, Err: q.lastErr}
				s.quarRejects++
				s.mu.Unlock()
				return nil, "", nil, qerr
			}
			e.quar = nil
		}

		// Become the loader; other acquirers of this name wait on ch.
		ch := make(chan struct{})
		e.loading = ch
		path, verified, oldFP := e.path, e.verified, e.fp
		pending := e.log.Snapshot() // patches applied since path was written
		s.mu.Unlock()

		g, fp, bytes, lerr := s.reopenBacking(path, verified, oldFP)
		if lerr == nil && len(pending) > 0 {
			// The backing file is the pre-patch base: replay the patch log
			// to reconstruct the current generation. The replayed graph is
			// heap-resident, so the base mapping can be released at once. A
			// replay failure means base + log no longer cohere (the file
			// changed under the log) — quarantine, like any corrupt backing.
			patched, rerr := ugs.ReplayEdits(g, pending)
			g.Close()
			if rerr != nil {
				g, lerr = nil, rerr
			} else {
				g, bytes = patched, heapGraphBytes(patched)
			}
		}

		s.mu.Lock()
		e.loading = nil
		close(ch)
		if lerr != nil {
			// Failed probe: extend (or open) the quarantine with doubled
			// backoff, stamped with the failing fingerprint so a repaired
			// file is probed immediately.
			failures := 1
			if e.quar != nil {
				failures = e.quar.failures + 1
			}
			q := &quarantineState{failures: failures, lastErr: lerr, fp: fp,
				until: s.now().Add(s.quarBackoff(failures))}
			if s.entries[name] == e {
				e.quar = q
			}
			s.loadFailures++
			s.quarRejects++
			s.mu.Unlock()
			return nil, "", nil, &QuarantineError{Name: name, Failures: q.failures, Until: q.until,
				Err: fmt.Errorf("serve: reloading graph %q: %w", name, lerr)}
		}
		if s.closed || s.entries[name] != e {
			// The store closed or the name was re-registered while we
			// loaded; discard this mapping and re-resolve from the top.
			g.Close()
			continue
		}
		e.quar = nil // healthy again
		if fp != oldFP {
			// The backing bytes changed on disk: new generation so stale
			// cached results cannot be served, refreshed summary.
			e.gen++
			e.info = Info(e.name, g)
		}
		e.fp, e.verified = fp, filepath.Ext(path) == ".ugsb"
		e.res = &resident{g: g, bytes: bytes}
		s.residentBytes += bytes
		s.loads++
		s.evictLocked(e)
		// Loop: the next iteration pins the resident we just installed.
	}
}

// reopenBacking loads a backing file, skipping the O(|E|) validation scan
// when an earlier open already validated exactly these bytes. Text backings
// (a quarantined-at-boot .ugs/.txt that later heals) are re-parsed onto the
// heap. The returned fp is valid whenever the stat succeeded, even if the
// open then failed — quarantine records it for change detection.
func (s *Store) reopenBacking(path string, verified bool, old fileFP) (*ugs.Graph, fileFP, int64, error) {
	if err := s.ioFaults(); err != nil {
		fp, _ := statFP(path)
		return nil, fp, 0, err
	}
	fp, err := statFP(path)
	if err != nil {
		return nil, fileFP{}, 0, err
	}
	if filepath.Ext(path) != ".ugsb" {
		g, err := ugs.ReadGraphFile(path)
		if err != nil {
			return nil, fp, 0, err
		}
		return g, fp, heapGraphBytes(g), nil
	}
	if verified && fp == old {
		g, err := ugs.OpenMappedGraphTrusted(path)
		return g, fp, fp.size, err
	}
	g, err := ugs.OpenMappedGraph(path)
	return g, fp, fp.size, err
}

// release unpins r; the last release of a dropped resident closes its
// mapping. Dropping a pin can also make the budget enforceable again (an
// overshoot held only by pins), so eviction reruns here.
func (s *Store) release(r *resident) {
	s.mu.Lock()
	r.refs--
	closeNow := r.dropped && r.refs == 0
	if !r.dropped && !s.closed {
		// May drop (and close) r itself now that it is unpinned; closeNow
		// was computed first, so that path cannot double-close.
		s.evictLocked(nil)
	}
	s.mu.Unlock()
	if closeNow {
		r.g.Close()
	}
}

// evictLocked drops least-recently-used unpinned residents until the budget
// holds. keep (the entry being admitted) and pinned or backing-less entries
// are never victims; if only those remain, the budget transiently
// overshoots rather than failing the admission.
func (s *Store) evictLocked(keep *storeEntry) {
	if s.cfg.BudgetBytes <= 0 {
		return
	}
	for s.residentBytes > s.cfg.BudgetBytes {
		var victim *storeEntry
		for _, e := range s.entries {
			if e == keep || e.res == nil || e.res.refs > 0 || e.path == "" {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		s.dropResidentLocked(victim)
		s.evictions++
	}
}

// dropResidentLocked detaches an entry's resident. Unpinned mappings close
// immediately; pinned ones are closed by their final release.
func (s *Store) dropResidentLocked(e *storeEntry) {
	r := e.res
	e.res = nil
	s.residentBytes -= r.bytes
	r.dropped = true
	if r.refs == 0 {
		r.g.Close()
	}
}

// removeEntryLocked drops an entry being replaced, deleting its store-owned
// sidecar (safe while pinned: the mapping keeps the unlinked file alive).
func (s *Store) removeEntryLocked(e *storeEntry) {
	if e.res != nil {
		s.dropResidentLocked(e)
	}
	if e.sidecar && e.path != "" {
		os.Remove(e.path)
	}
}

// Describe returns the summary of the graph registered under name without
// loading it.
func (s *Store) Describe(name string) (GraphInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return GraphInfo{}, false
	}
	return e.info, true
}

// Len reports the number of registered graphs (resident or evicted).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Close evicts every graph and removes the store-owned sidecar directory.
// Pinned mappings are closed by their final release.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, e := range s.entries {
		s.removeEntryLocked(e)
	}
	dir := ""
	if s.ownsConvert {
		dir = s.convertDir
	}
	s.mu.Unlock()
	if dir != "" {
		return os.RemoveAll(dir)
	}
	return nil
}

// GraphInfo is the JSON shape describing a registered graph.
type GraphInfo struct {
	Name     string  `json:"name"`
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
	MeanProb float64 `json:"mean_prob"`
	Entropy  float64 `json:"entropy_bits"`
}

// Info summarizes a graph for listings and responses.
func Info(name string, g *ugs.Graph) GraphInfo {
	return GraphInfo{
		Name:     name,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		MeanProb: g.MeanProb(),
		Entropy:  g.Entropy(),
	}
}

// List returns summaries of every registered graph, sorted by name.
func (s *Store) List() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := make([]GraphInfo, 0, len(s.entries))
	for _, e := range s.entries {
		infos = append(infos, e.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// StoreStats aggregates the store's budget and traffic counters.
type StoreStats struct {
	Registered    int   `json:"registered"`
	Resident      int   `json:"resident"`
	Pinned        int   `json:"pinned"`
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
	Loads         int64 `json:"loads"`
	LoadFailures  int64 `json:"load_failures"`
	Evictions     int64 `json:"evictions"`
	Conversions   int64 `json:"conversions"`
	// Patches counts applied edit batches across all graphs.
	Patches int64 `json:"patches"`
	// Quarantined counts names currently under load-failure backoff;
	// QuarantineRejects counts requests turned away by the negative cache.
	Quarantined       int   `json:"quarantined"`
	QuarantineRejects int64 `json:"quarantine_rejects"`
}

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Registered:        len(s.entries),
		ResidentBytes:     s.residentBytes,
		BudgetBytes:       s.cfg.BudgetBytes,
		Loads:             s.loads,
		LoadFailures:      s.loadFailures,
		Evictions:         s.evictions,
		Conversions:       s.conversions,
		Patches:           s.patches,
		QuarantineRejects: s.quarRejects,
	}
	now := s.now()
	for _, e := range s.entries {
		if e.res != nil {
			st.Resident++
			if e.res.refs > 0 {
				st.Pinned++
			}
		}
		if e.quar != nil && now.Before(e.quar.until) {
			st.Quarantined++
		}
	}
	return st
}
