package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"ugs"
)

// Store holds the uncertain graphs the service can sparsify and query. Each
// graph is parsed once at load (or upload) time and kept resident in its CSR
// form, so every request against it skips parsing and adjacency construction
// entirely — the operational premise of sparsification: pay once, query many
// times.
//
// Every load of a name bumps its generation, and ID returns a versioned
// identifier ("name@gen"). Cache keys embed the versioned ID, so re-uploading
// a graph under an existing name can never serve results computed against
// the old bytes.
type Store struct {
	mu     sync.RWMutex
	graphs map[string]*storeEntry
}

type storeEntry struct {
	g   *ugs.Graph
	gen int
}

// graphNameRE constrains graph names to path- and cache-key-safe tokens.
var graphNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{graphs: make(map[string]*storeEntry)}
}

// Add registers (or replaces) a graph under name, bumping its generation.
func (s *Store) Add(name string, g *ugs.Graph) error {
	if !graphNameRE.MatchString(name) {
		return fmt.Errorf("serve: invalid graph name %q (want %s)", name, graphNameRE)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.graphs[name]; ok {
		s.graphs[name] = &storeEntry{g: g, gen: prev.gen + 1}
	} else {
		s.graphs[name] = &storeEntry{g: g, gen: 1}
	}
	return nil
}

// AddReader parses the text interchange format from r and registers the
// graph under name.
func (s *Store) AddReader(name string, r io.Reader) (*ugs.Graph, error) {
	g, err := ugs.ReadGraph(r)
	if err != nil {
		return nil, err
	}
	if err := s.Add(name, g); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadDir loads every *.ugs and *.txt file in dir (non-recursively), naming
// each graph after its file base without the extension. It returns the
// loaded names in sorted order; any unparsable file aborts the load.
func (s *Store) LoadDir(dir string) ([]string, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		ext := filepath.Ext(f.Name())
		if ext != ".ugs" && ext != ".txt" {
			continue
		}
		name := strings.TrimSuffix(f.Name(), ext)
		g, err := ugs.ReadGraphFile(filepath.Join(dir, f.Name()))
		if err != nil {
			return nil, fmt.Errorf("serve: loading %s: %w", f.Name(), err)
		}
		if err := s.Add(name, g); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Get returns the graph registered under name together with its versioned
// identifier.
func (s *Store) Get(name string) (g *ugs.Graph, id string, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.graphs[name]
	if !ok {
		return nil, "", false
	}
	return e.g, fmt.Sprintf("%s@%d", name, e.gen), true
}

// Len reports the number of registered graphs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.graphs)
}

// GraphInfo is the JSON shape describing a resident graph.
type GraphInfo struct {
	Name     string  `json:"name"`
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
	MeanProb float64 `json:"mean_prob"`
	Entropy  float64 `json:"entropy_bits"`
}

// Info summarizes a graph for listings and responses.
func Info(name string, g *ugs.Graph) GraphInfo {
	return GraphInfo{
		Name:     name,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		MeanProb: g.MeanProb(),
		Entropy:  g.Entropy(),
	}
}

// List returns summaries of every registered graph, sorted by name.
func (s *Store) List() []GraphInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]GraphInfo, 0, len(s.graphs))
	for name, e := range s.graphs {
		infos = append(infos, Info(name, e.g))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
