package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client is the Go client for ugs-serve. It speaks the typed error envelope
// (failures surface as *APIError, so callers branch on Code) and retries
// retryable rejections — overloaded, quarantined, draining — with capped
// exponential backoff and full jitter, honouring the server's Retry-After
// hint when one is given. Only idempotent calls are ever retried: queries,
// sparsifications (deterministic and cached server-side) and reads. Uploads
// and job creation fail straight back to the caller.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int
	backoff    time.Duration
	maxBackoff time.Duration

	// sleep and rng are injectable so retry schedules are testable without
	// wall-clock waits or nondeterminism.
	sleep func(context.Context, time.Duration) error
	rng   func() float64
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) ClientOption { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a retryable idempotent request is retried
// after its first attempt (default 3; 0 disables retries).
func WithRetries(n int) ClientOption { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the initial and maximum retry backoff (defaults 100ms
// and 5s). The server's Retry-After hint overrides the computed backoff but
// is still capped at max.
func WithBackoff(initial, max time.Duration) ClientOption {
	return func(c *Client) { c.backoff, c.maxBackoff = initial, max }
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:       base,
		hc:         &http.Client{},
		maxRetries: 3,
		backoff:    100 * time.Millisecond,
		maxBackoff: 5 * time.Second,
		rng:        rand.Float64,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Query runs a Monte-Carlo query.
func (c *Client) Query(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	// Queries are pure reads: always safe to retry.
	if err := c.do(ctx, http.MethodPost, "/v1/query", req, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sparsify runs (or fetches the cached result of) a synchronous
// sparsification. Idempotent: the server keys results by the full request,
// so a retried request lands on the cache.
func (c *Client) Sparsify(ctx context.Context, req *SparsifyRequest) (*SparsifyResponse, error) {
	var resp SparsifyResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sparsify", req, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CreateJob starts an async sparsification. Not idempotent — a retry would
// enqueue a second job — so failures return immediately.
func (c *Client) CreateJob(ctx context.Context, req *SparsifyRequest) (*JobStatus, error) {
	var resp JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &resp, false); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var resp JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Graphs lists the registered graphs.
func (c *Client) Graphs(ctx context.Context) ([]GraphInfo, error) {
	var resp []GraphInfo
	if err := c.do(ctx, http.MethodGet, "/v1/graphs", nil, &resp, true); err != nil {
		return nil, err
	}
	return resp, nil
}

// Stats fetches the server counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes /healthz (no retries beyond the idempotent default).
func (c *Client) Health(ctx context.Context) error {
	var resp map[string]string
	return c.do(ctx, http.MethodGet, "/healthz", nil, &resp, true)
}

// retryable reports whether an APIError is worth retrying: the server said
// "come back later", not "this request is wrong".
func retryable(e *APIError) bool {
	switch e.Code {
	case CodeOverloaded, CodeQuarantined, CodeDraining:
		return true
	}
	return false
}

// do runs one logical request through the retry loop. body (when non-nil) is
// marshalled once and replayed on each attempt; out receives the decoded
// 2xx response. Non-2xx responses decode into *APIError; only idempotent
// requests with retryable codes (or transport errors) are retried.
func (c *Client) do(ctx context.Context, method, path string, body, out any, idempotent bool) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	backoff := c.backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		apiErr, err := c.once(ctx, method, path, payload, out)
		if err == nil && apiErr == nil {
			return nil
		}
		retry := idempotent
		wait := backoff
		switch {
		case apiErr != nil:
			lastErr = apiErr
			retry = retry && retryable(apiErr)
			// The server's hint wins over the local schedule when present.
			if ra := time.Duration(apiErr.RetryAfterMS) * time.Millisecond; ra > 0 {
				wait = ra
			}
		default:
			lastErr = err
			// Transport-level failure: the request may never have reached
			// the server, so even "POST" queries are safe only when marked
			// idempotent.
		}
		if !retry || attempt >= c.maxRetries || ctx.Err() != nil {
			return lastErr
		}
		if wait > c.maxBackoff {
			wait = c.maxBackoff
		}
		// Full jitter: sleep uniformly in [wait/2, wait] so synchronized
		// clients spread out instead of retrying in lockstep.
		wait = wait/2 + time.Duration(c.rng()*float64(wait/2))
		if err := c.sleep(ctx, wait); err != nil {
			return lastErr
		}
		backoff *= 2
	}
}

// once performs a single HTTP attempt. A non-2xx status returns the decoded
// envelope as apiErr (falling back to a synthesized APIError for non-envelope
// bodies — which the service itself never produces).
func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any) (apiErr *APIError, err error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var env errorEnvelope
		if jsonErr := json.Unmarshal(raw, &env); jsonErr == nil && env.Error.Code != "" {
			e := env.Error
			if e.RetryAfterMS == 0 {
				// Header-only hint (proxies sometimes strip bodies).
				if secs, _ := strconv.Atoi(resp.Header.Get("Retry-After")); secs > 0 {
					e.RetryAfterMS = int64(secs) * 1000
				}
			}
			return &e, nil
		}
		return &APIError{Code: CodeInternal,
			Message: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, truncate(string(raw), 200))}, nil
	}
	if out == nil {
		return nil, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, fmt.Errorf("decoding %s %s response: %w", method, path, err)
	}
	return nil, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// IsRetryable reports whether err is a server rejection a caller could retry
// later (overloaded, quarantined, draining).
func IsRetryable(err error) bool {
	var e *APIError
	return errors.As(err, &e) && retryable(e)
}
