package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ugs"
	"ugs/internal/faults"
)

// Batcher coalesces concurrent SP/RL queries against the same graph into
// shared Monte-Carlo flights. All requests with the same (graph, seed,
// samples) form a group; a flight concatenates the group's pending pair
// lists and evaluates them in ONE ShortestDistanceAndReliability run — one
// mc.ReduceBatch pass whose WorldBatch fills and traversals are shared by
// every rider. Both amortization axes of the engine therefore work across
// requests, not just within one: each traversal answers 64, 128 or 256
// worlds at once (lanes), and the multi-source kernels walk one shared
// frontier for a whole group of the merged flight's distinct sources
// (fan-out), so riders contributing different sources still split the cost
// of one arc stream.
//
// Merging is exact, not approximate: the engine accumulates each pair's
// counters independently and folds fixed sample blocks in index order, and
// sample i is always drawn from the deterministic stream (seed, i) — so a
// pair's result in a merged flight is bit-identical to a direct library
// call for the same (graph, seed, samples), no matter which other requests
// shared the worlds (asserted by TestCoalescedMatchesDirect).
//
// Scheduling is the timer-free conveyor pattern: the first request of a
// group starts a flight immediately (no added latency at low load); requests
// arriving while that flight runs queue up and are all served by the next
// flight. Throughput under load rises with concurrency while each request
// still observes at most two flight durations of latency.
type Batcher struct {
	// lifetime bounds flights, which deliberately outlive any individual
	// request's context: a rider abandoning its wait must not cancel the
	// worlds other riders are being served from. Each flight runs under a
	// cancellable child of lifetime, though — when EVERY rider of a running
	// flight has abandoned it, the flight is cancelled so the Monte-Carlo
	// engine stops at its next block boundary instead of computing answers
	// nobody will read (that is how request deadlines propagate into merged
	// flights at batch granularity).
	lifetime context.Context
	run      pairRunner
	workers  int
	faults   *faults.Injector

	mu     sync.Mutex
	groups map[groupKey]*batchGroup

	flights          atomic.Int64
	requests         atomic.Int64
	coalesced        atomic.Int64
	maxFlight        atomic.Int64
	abandonedFlights atomic.Int64
	panics           atomic.Int64
}

// pairRunner evaluates the merged pair list; swapped out by tests to gate
// flight timing deterministically.
type pairRunner func(ctx context.Context, g *ugs.Graph, pairs []ugs.Pair, opts ugs.MCOptions) (sp, rl []float64, err error)

// groupKey identifies queries that may share possible worlds: same resident
// graph (versioned ID), same deterministic sample stream, and same engine
// shape. Workers is excluded — it cannot change results. Lanes and fanout
// cannot either (every width and source group size is bit-identical), but
// they are explicit execution choices, so requests pinning different widths
// or fan-outs fly separately rather than silently running at whatever shape
// arrived first.
type groupKey struct {
	graph   string
	seed    int64
	samples int
	lanes   int
	fanout  int
}

type batchGroup struct {
	key     groupKey
	g       *ugs.Graph
	opts    ugs.MCOptions
	pending []*pairReq
	active  bool
}

// flightRun tracks the riders of one running flight. live counts riders
// still waiting on it; the last abandoning rider cancels the flight context.
// All transitions happen under the batcher mutex.
type flightRun struct {
	live   int
	cancel context.CancelFunc
}

type pairReq struct {
	pairs  []ugs.Pair
	done   chan struct{}
	sp, rl []float64
	err    error
	grp    *batchGroup // for removal from pending on early abandon
	flight *flightRun  // non-nil once drafted into a running flight
}

// NewBatcher returns a batcher whose flights live until lifetime is
// cancelled and run with the given Monte-Carlo parallelism (0 = GOMAXPROCS).
func NewBatcher(lifetime context.Context, workers int) *Batcher {
	return &Batcher{
		lifetime: lifetime,
		run:      ugs.ShortestDistanceAndReliability,
		workers:  workers,
		groups:   make(map[groupKey]*batchGroup),
	}
}

// PairQuery evaluates the SP and RL estimates for pairs on g, riding a
// shared flight when other requests with the same (graphID, seed, samples,
// lanes, fan-out) are in the system. opts carries the fixed-budget engine
// options (Seed, Samples, Lanes, FanOut, FillCache/FillID); Workers is
// overridden by the batcher's own setting and opts.Target must be nil —
// adaptive runs bypass the batcher, because merging pair lists would move
// their stopping point. ctx bounds only this caller's wait: giving up
// abandons the results but never the flight.
func (b *Batcher) PairQuery(ctx context.Context, graphID string, g *ugs.Graph, pairs []ugs.Pair, opts ugs.MCOptions) (sp, rl []float64, err error) {
	b.requests.Add(1)
	req := &pairReq{pairs: pairs, done: make(chan struct{})}
	key := groupKey{graph: graphID, seed: opts.Seed, samples: opts.Samples, lanes: opts.Lanes, fanout: opts.FanOut}

	b.mu.Lock()
	grp, ok := b.groups[key]
	if !ok {
		grp = &batchGroup{key: key, g: g, opts: opts}
		b.groups[key] = grp
	}
	req.grp = grp
	grp.pending = append(grp.pending, req)
	if !grp.active {
		grp.active = true
		go b.flightLoop(grp)
	}
	b.mu.Unlock()

	select {
	case <-req.done:
		return req.sp, req.rl, req.err
	case <-ctx.Done():
		b.abandon(req)
		return nil, nil, ctx.Err()
	}
}

// abandon detaches a rider whose context expired: removed from the pending
// queue if not yet drafted, otherwise struck from its flight's live count —
// and the rider whose departure empties a flight cancels it, so a merged
// run whose every requester hit its deadline stops early instead of running
// the full sample budget for nobody.
func (b *Batcher) abandon(req *pairReq) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case <-req.done:
		return // results landed while we took the lock; nothing to undo
	default:
	}
	if fl := req.flight; fl != nil {
		fl.live--
		if fl.live == 0 {
			fl.cancel()
			b.abandonedFlights.Add(1)
		}
		return
	}
	pending := req.grp.pending
	for i, r := range pending {
		if r == req {
			req.grp.pending = append(pending[:i], pending[i+1:]...)
			return
		}
	}
}

// flightLoop drains a group: each iteration takes everything pending and
// serves it in one merged run, until a drain finds the group empty and
// retires it.
func (b *Batcher) flightLoop(grp *batchGroup) {
	for {
		fctx, fcancel := context.WithCancel(b.lifetime)
		b.mu.Lock()
		reqs := grp.pending
		grp.pending = nil
		if len(reqs) == 0 {
			grp.active = false
			delete(b.groups, grp.key)
			b.mu.Unlock()
			fcancel()
			return
		}
		// Draft the riders: from here, an expiring rider decrements live
		// instead of leaving pending, and the last one out cancels fctx.
		fl := &flightRun{live: len(reqs), cancel: fcancel}
		for _, r := range reqs {
			r.flight = fl
		}
		b.mu.Unlock()

		b.flights.Add(1)
		if n := int64(len(reqs)); n > 1 {
			b.coalesced.Add(n - 1)
		}
		for prev := b.maxFlight.Load(); int64(len(reqs)) > prev; prev = b.maxFlight.Load() {
			if b.maxFlight.CompareAndSwap(prev, int64(len(reqs))) {
				break
			}
		}

		total := 0
		for _, r := range reqs {
			total += len(r.pairs)
		}
		merged := make([]ugs.Pair, 0, total)
		for _, r := range reqs {
			merged = append(merged, r.pairs...)
		}
		opts := grp.opts
		opts.Workers = b.workers
		sp, rl, err := b.runFlight(fctx, grp.g, merged, opts)
		fcancel()
		// Detach the riders before delivering: a rider whose deadline fires
		// after this point must not touch the settled flight's counters.
		b.mu.Lock()
		for _, r := range reqs {
			r.flight = nil
		}
		b.mu.Unlock()
		off := 0
		for _, r := range reqs {
			n := len(r.pairs)
			if err != nil {
				r.err = err
			} else {
				r.sp = sp[off : off+n : off+n]
				r.rl = rl[off : off+n : off+n]
			}
			off += n
			close(r.done)
		}
	}
}

// runFlight executes one merged run with panic containment: a panicking
// estimator (or an injected batcher.flight fault) fails this flight's riders
// with a clean error instead of killing the process, and the conveyor keeps
// serving subsequent flights.
func (b *Batcher) runFlight(ctx context.Context, g *ugs.Graph, pairs []ugs.Pair, opts ugs.MCOptions) (sp, rl []float64, err error) {
	defer func() {
		if v := recover(); v != nil {
			b.panics.Add(1)
			sp, rl = nil, nil
			err = fmt.Errorf("batcher: recovered flight panic: %v", v)
		}
	}()
	if err := b.faults.Check("batcher.flight"); err != nil {
		return nil, nil, err
	}
	return b.run(ctx, g, pairs, opts)
}

// BatcherStats is a point-in-time counter snapshot.
type BatcherStats struct {
	Flights   int64 `json:"flights"`
	Requests  int64 `json:"requests"`
	Coalesced int64 `json:"coalesced"`
	MaxFlight int64 `json:"max_flight_requests"`
	// AbandonedFlights counts flights cancelled because every rider's
	// deadline expired; Panics counts estimator panics contained to one
	// flight's riders.
	AbandonedFlights int64 `json:"abandoned_flights"`
	Panics           int64 `json:"panics"`
}

// Stats snapshots the batcher counters. Coalesced counts requests that
// shared a flight started for (or with) another request.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Flights:          b.flights.Load(),
		Requests:         b.requests.Load(),
		Coalesced:        b.coalesced.Load(),
		MaxFlight:        b.maxFlight.Load(),
		AbandonedFlights: b.abandonedFlights.Load(),
		Panics:           b.panics.Load(),
	}
}
