package serve

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ugs"
)

// writeUgsbDir writes count binary graphs g0..g{count-1} into a fresh dir
// and returns the dir and the per-graph file size (identical configs give
// identical sizes).
func writeUgsbDir(t *testing.T, count int) (string, int64) {
	t.Helper()
	dir := t.TempDir()
	var size int64
	for i := 0; i < count; i++ {
		g := ugs.FlickrLike(120, int64(i+1))
		path := filepath.Join(dir, fmt.Sprintf("g%d.ugsb", i))
		if err := ugs.WriteBinaryGraphFile(path, g); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > size {
			size = st.Size()
		}
	}
	return dir, size
}

func TestStoreEvictionUnderBudget(t *testing.T) {
	dir, size := writeUgsbDir(t, 4)
	s := NewStore(StoreConfig{BudgetBytes: 2*size + size/2}) // fits 2, not 3
	t.Cleanup(func() { s.Close() })
	names, err := s.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 {
		t.Fatalf("loaded %v", names)
	}

	// Touch every graph repeatedly: each acquire of an evicted graph must
	// transparently remap it.
	want := make(map[string]float64)
	for _, name := range names {
		g, id, release, err := s.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		if id != name+"@1" {
			t.Fatalf("id %q, want %s@1", id, name)
		}
		want[name] = g.TotalProb()
		release()
	}
	for round := 0; round < 3; round++ {
		for _, name := range names {
			g, id, release, err := s.Acquire(name)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			// Generations survive eviction: the file bytes never changed,
			// so cached results keyed on name@1 stay valid.
			if id != name+"@1" {
				t.Fatalf("round %d: id %q changed", round, id)
			}
			if g.TotalProb() != want[name] {
				t.Fatalf("round %d: %s content changed after remap", round, name)
			}
			release()
		}
	}

	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite budget < working set")
	}
	if st.ResidentBytes > 2*size+size/2 {
		t.Fatalf("resident %d bytes exceeds budget with nothing pinned", st.ResidentBytes)
	}
	if st.Registered != 4 {
		t.Fatalf("registered %d", st.Registered)
	}
}

func TestStorePinnedSurvivesEviction(t *testing.T) {
	dir, size := writeUgsbDir(t, 3)
	s := NewStore(StoreConfig{BudgetBytes: size + size/2}) // fits 1
	t.Cleanup(func() { s.Close() })
	if _, err := s.LoadDir(dir); err != nil {
		t.Fatal(err)
	}

	g0, _, release0, err := s.Acquire("g0")
	if err != nil {
		t.Fatal(err)
	}
	sum := g0.TotalProb()

	// Loading the others overshoots the budget because g0 is pinned; its
	// mapping must stay valid throughout.
	for _, name := range []string{"g1", "g2"} {
		g, _, release, err := s.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		_ = g.TotalProb()
		release()
	}
	if st := s.Stats(); st.Pinned != 1 {
		t.Fatalf("pinned %d, want 1", st.Pinned)
	}
	if got := g0.TotalProb(); got != sum {
		t.Fatalf("pinned graph changed under eviction pressure: %v != %v", got, sum)
	}
	release0()
	release0() // idempotent

	// After the pin drops, re-acquiring g0 still works (remapped if it was
	// dropped at release).
	g0b, _, releaseB, err := s.Acquire("g0")
	if err != nil {
		t.Fatal(err)
	}
	defer releaseB()
	if g0b.TotalProb() != sum {
		t.Fatal("g0 content changed after release/reacquire")
	}
}

func TestStoreGenerationBumpsOnFileChange(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ugsb")
	if err := ugs.WriteBinaryGraphFile(path, ugs.FlickrLike(60, 1)); err != nil {
		t.Fatal(err)
	}
	s := NewStore(StoreConfig{BudgetBytes: 1}) // evict everything unpinned
	t.Cleanup(func() { s.Close() })
	if _, err := s.LoadDir(dir); err != nil {
		t.Fatal(err)
	}

	_, id, release, err := s.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if id != "a@1" {
		t.Fatalf("id %q", id)
	}

	// Same bytes → same generation after the eviction/remap cycle.
	if _, id, release, err = s.Acquire("a"); err != nil {
		t.Fatal(err)
	}
	release()
	if id != "a@1" {
		t.Fatalf("unchanged file bumped generation: %q", id)
	}

	// Replace the file with different content: the next acquire must see a
	// new generation, so cached results against a@1 cannot be served.
	if err := ugs.WriteBinaryGraphFile(path, ugs.FlickrLike(80, 2)); err != nil {
		t.Fatal(err)
	}
	g, id, release, err := s.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if id != "a@2" {
		t.Fatalf("id %q after file change, want a@2", id)
	}
	if g.NumVertices() != 80 {
		t.Fatalf("stale mapping after file change: %v", g)
	}
}

func TestStoreTextConversionAndShadowing(t *testing.T) {
	g := ugs.TwitterLike(70, 3)
	dir := t.TempDir()
	if err := ugs.WriteGraphFile(filepath.Join(dir, "t.ugs"), g); err != nil {
		t.Fatal(err)
	}
	// A same-name binary must shadow the text file.
	shadow := ugs.FlickrLike(50, 9)
	if err := ugs.WriteGraphFile(filepath.Join(dir, "b.ugs"), ugs.TwitterLike(40, 4)); err != nil {
		t.Fatal(err)
	}
	if err := ugs.WriteBinaryGraphFile(filepath.Join(dir, "b.ugsb"), shadow); err != nil {
		t.Fatal(err)
	}

	s := NewStore(StoreConfig{ConvertDir: filepath.Join(dir, "sidecars")})
	t.Cleanup(func() { s.Close() })
	names, err := s.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("names %v", names)
	}

	tg, _, release, err := s.Acquire("t")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if !tg.Mapped() {
		t.Fatal("text graph was not converted to a mapped sidecar")
	}
	if !tg.Equal(g) {
		t.Fatal("converted graph differs from the text original")
	}

	bg, _, releaseB, err := s.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	defer releaseB()
	if bg.NumVertices() != shadow.NumVertices() {
		t.Fatal("binary file did not shadow the same-name text file")
	}

	if st := s.Stats(); st.Conversions != 1 {
		t.Fatalf("conversions %d, want 1", st.Conversions)
	}
}

func TestStoreUploadSpillEvictable(t *testing.T) {
	dir, size := writeUgsbDir(t, 2)
	s := NewStore(StoreConfig{BudgetBytes: size + size/2})
	t.Cleanup(func() { s.Close() })
	if _, err := s.LoadDir(dir); err != nil {
		t.Fatal(err)
	}

	// An added (uploaded) heap graph spills to a sidecar, so it too can be
	// evicted and remapped.
	up := ugs.TwitterLike(150, 5)
	if err := s.Add("up", up); err != nil {
		t.Fatal(err)
	}
	sum := up.TotalProb()
	// Cycle the others to push "up" out.
	for round := 0; round < 2; round++ {
		for _, name := range []string{"g0", "g1"} {
			_, _, release, err := s.Acquire(name)
			if err != nil {
				t.Fatal(err)
			}
			release()
		}
	}
	g, id, release, err := s.Acquire("up")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if id != "up@1" {
		t.Fatalf("id %q", id)
	}
	if g.TotalProb() != sum {
		t.Fatal("spilled upload reloaded with different content")
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("expected evictions under budget pressure")
	}
}

// TestStoreConcurrentChurn hammers Acquire/release across goroutines with a
// budget that forces continuous eviction and remapping; run under -race it
// checks the pinning protocol (no unmap under a reader, no double close).
func TestStoreConcurrentChurn(t *testing.T) {
	dir, size := writeUgsbDir(t, 4)
	s := NewStore(StoreConfig{BudgetBytes: size + size/2})
	t.Cleanup(func() { s.Close() })
	names, err := s.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	want := make(map[string]float64)
	for _, name := range names {
		g, _, release, err := s.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = g.TotalProb()
		release()
	}

	const workers = 8
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				name := names[rng.Intn(len(names))]
				g, _, release, err := s.Acquire(name)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", name, err)
					return
				}
				if g.TotalProb() != want[name] {
					errs <- fmt.Errorf("%s: content changed under churn", name)
					release()
					return
				}
				release()
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("churn produced no evictions; budget not exercised")
	}
	if st.Pinned != 0 {
		t.Errorf("pins leaked: %d", st.Pinned)
	}
}
