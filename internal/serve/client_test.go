package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// testClient wires a deterministic client to a handler: jitter pinned to the
// upper bound (rng → 1), sleeps recorded instead of slept.
func testClient(t *testing.T, h http.Handler, opts ...ClientOption) (*Client, *[]time.Duration) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	var slept []time.Duration
	c := NewClient(srv.URL, opts...)
	c.rng = func() float64 { return 1 }
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	return c, &slept
}

// TestClientRetriesOverloaded: 429 responses are retried with the server's
// Retry-After hint, and the call succeeds once capacity frees.
func TestClientRetriesOverloaded(t *testing.T) {
	var calls atomic.Int64
	c, slept := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeError(w, http.StatusTooManyRequests, CodeOverloaded, "full", 250*time.Millisecond)
			return
		}
		writeJSON(w, http.StatusOK, StatsResponse{Graphs: 7})
	}))
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Graphs != 7 {
		t.Fatalf("graphs = %d, want 7", st.Graphs)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	// Retry-After 250ms beats the default 100ms schedule; jitter pinned to
	// the upper bound keeps the full hint.
	if len(*slept) != 2 || (*slept)[0] != 250*time.Millisecond {
		t.Fatalf("sleeps = %v, want two 250ms waits", *slept)
	}
}

// TestClientDoesNotRetryBadRequest: a 400 is the caller's fault; retrying
// cannot fix it.
func TestClientDoesNotRetryBadRequest(t *testing.T) {
	var calls atomic.Int64
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, "alpha out of range", 0)
	}))
	_, err := c.Query(context.Background(), &QueryRequest{Graph: "g", Kind: "reliability"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeBadRequest {
		t.Fatalf("err = %v, want bad_request APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retries)", calls.Load())
	}
	if IsRetryable(err) {
		t.Fatal("bad_request reported retryable")
	}
}

// TestClientDoesNotRetryNonIdempotent: job creation is never retried, even
// on a retryable rejection — a second attempt could enqueue a second job.
func TestClientDoesNotRetryNonIdempotent(t *testing.T) {
	var calls atomic.Int64
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "shutting down", time.Second)
	}))
	_, err := c.CreateJob(context.Background(), &SparsifyRequest{Graph: "g", Alpha: 0.5})
	if !IsRetryable(err) {
		t.Fatalf("err = %v, want retryable draining APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (non-idempotent)", calls.Load())
	}
}

// TestClientBackoffDoublesAndCaps: without a server hint the local schedule
// doubles from the initial backoff and respects the cap and retry budget.
func TestClientBackoffDoublesAndCaps(t *testing.T) {
	c, slept := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// No Retry-After: force the client onto its own schedule.
		writeError(w, http.StatusServiceUnavailable, CodeQuarantined, "backing off", 0)
	}), WithRetries(4), WithBackoff(100*time.Millisecond, 400*time.Millisecond))
	_, err := c.Stats(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeQuarantined {
		t.Fatalf("err = %v, want quarantined APIError", err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", *slept, want)
	}
	for i := range want {
		if (*slept)[i] != want[i] {
			t.Fatalf("sleeps = %v, want %v", *slept, want)
		}
	}
}

// TestClientJitterSpreadsRetries: with rng at the lower bound the wait
// halves — synchronized clients must not retry in lockstep.
func TestClientJitterSpreadsRetries(t *testing.T) {
	var calls atomic.Int64
	c, slept := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			writeError(w, http.StatusTooManyRequests, CodeOverloaded, "full", 2*time.Second)
			return
		}
		writeJSON(w, http.StatusOK, StatsResponse{})
	}))
	c.rng = func() float64 { return 0 }
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != time.Second {
		t.Fatalf("sleeps = %v, want one 1s wait (half of the 2s hint)", *slept)
	}
}

// TestClientNonEnvelopeError: a non-JSON error body (a proxy, a crash before
// the envelope) still surfaces as an APIError rather than a decode failure.
func TestClientNonEnvelopeError(t *testing.T) {
	c, _ := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	_, err := c.Stats(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeInternal {
		t.Fatalf("err = %v, want synthesized internal APIError", err)
	}
}
