package serve

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ugs"
)

// TestServeOutOfCoreMixedTraffic is the out-of-core acceptance scenario:
// the server's graph directory holds .ugsb and text graphs whose combined
// size exceeds the store budget, and concurrent sparsify + query traffic
// runs against all of them. Every request must succeed — evictions swap
// mappings, never break in-flight work — and the final stats must show the
// budget was actually exercised.
func TestServeOutOfCoreMixedTraffic(t *testing.T) {
	dir := t.TempDir()
	var total int64
	names := []string{"m0", "m1", "m2"}
	for i, name := range names {
		g := ugs.FlickrLike(150, int64(i+1))
		path := filepath.Join(dir, name+".ugsb")
		if err := ugs.WriteBinaryGraphFile(path, g); err != nil {
			t.Fatal(err)
		}
		st, _ := os.Stat(path)
		total += st.Size()
	}
	// One text graph too: conversion + budget accounting must compose.
	if err := ugs.WriteGraphFile(filepath.Join(dir, "txt.ugs"), ugs.TwitterLike(120, 9)); err != nil {
		t.Fatal(err)
	}
	names = append(names, "txt")

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s, err := New(ctx, Config{
		GraphDir:         dir,
		StoreBudgetBytes: total / 2, // roughly 1–2 graphs resident
		ConvertDir:       filepath.Join(dir, "sidecars"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	const workers = 6
	const iters = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				name := names[rng.Intn(len(names))]
				switch i % 3 {
				case 0:
					var resp SparsifyResponse
					w := do(t, s, "POST", "/v1/sparsify",
						sparsifyBody(name, 0.3, "gdb", seed), &resp)
					if w.Code != 200 {
						errs <- fmt.Errorf("sparsify %s: %d %s", name, w.Code, w.Body.String())
					}
				case 1:
					var resp QueryResponse
					body := map[string]any{
						"graph": name, "kind": "reliability",
						"pairs": [][2]int{{0, 5}, {1, 7}}, "samples": 64, "seed": seed,
					}
					w := do(t, s, "POST", "/v1/query", body, &resp)
					if w.Code != 200 {
						errs <- fmt.Errorf("query %s: %d %s", name, w.Code, w.Body.String())
					}
				default:
					var resp QueryResponse
					body := map[string]any{
						"graph": name, "kind": "connected", "samples": 64, "seed": seed,
					}
					w := do(t, s, "POST", "/v1/query", body, &resp)
					if w.Code != 200 {
						errs <- fmt.Errorf("connected %s: %d %s", name, w.Code, w.Body.String())
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var stats StatsResponse
	if w := do(t, s, "GET", "/v1/stats", nil, &stats); w.Code != 200 {
		t.Fatalf("stats: %d", w.Code)
	}
	if stats.Store.Evictions == 0 {
		t.Error("no evictions: the budget was never exercised")
	}
	if stats.Store.Conversions == 0 {
		t.Error("text graph was not converted to a .ugsb sidecar")
	}
	if stats.Store.Registered != 4 {
		t.Errorf("registered %d graphs, want 4", stats.Store.Registered)
	}
	if stats.Store.Pinned != 0 {
		t.Errorf("pins leaked: %d", stats.Store.Pinned)
	}

	// Determinism across eviction: the same query against a possibly
	// remapped graph returns identical values (same generation → served
	// from cache or recomputed bit-identically).
	q := map[string]any{"graph": "m0", "kind": "connected", "samples": 64, "seed": int64(77)}
	var a, b QueryResponse
	if w := do(t, s, "POST", "/v1/query", q, &a); w.Code != 200 {
		t.Fatalf("query a: %d", w.Code)
	}
	for _, name := range names { // churn the store
		_, _, release, err := s.Store().Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if w := do(t, s, "POST", "/v1/query", q, &b); w.Code != 200 {
		t.Fatalf("query b: %d", w.Code)
	}
	if *a.Value != *b.Value {
		t.Errorf("connected probability changed across eviction churn: %v != %v", *a.Value, *b.Value)
	}
}
