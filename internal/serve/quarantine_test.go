package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ugs"
	"ugs/internal/faults"
)

// writeCorruptUgsb writes a file with a .ugsb extension that cannot pass
// header validation.
func writeCorruptUgsb(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte("definitely not a ugsb header"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestQuarantineBootSurvivesCorruptFile: a corrupt .ugsb must not abort
// LoadDir; the healthy graphs serve, the corrupt name is quarantined with a
// typed error, and the file is NOT re-validated per request while under
// backoff.
func TestQuarantineBootSurvivesCorruptFile(t *testing.T) {
	dir, _ := writeUgsbDir(t, 2)
	writeCorruptUgsb(t, dir, "bad.ugsb")

	s := NewStore(StoreConfig{QuarantineBase: time.Hour})
	t.Cleanup(func() { s.Close() })
	names, err := s.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("registered %v, want 3 names", names)
	}

	// Healthy graphs serve normally.
	_, _, release, err := s.Acquire("g0")
	if err != nil {
		t.Fatal(err)
	}
	release()

	// The corrupt one rejects with the typed quarantine error, repeatedly,
	// without extra load attempts (failures stays 1 under backoff).
	for i := 0; i < 5; i++ {
		_, _, _, err := s.Acquire("bad")
		if !errors.Is(err, ErrQuarantined) {
			t.Fatalf("acquire %d: got %v, want ErrQuarantined", i, err)
		}
		var qe *QuarantineError
		if !errors.As(err, &qe) {
			t.Fatalf("error %v is not a *QuarantineError", err)
		}
		if qe.Failures != 1 {
			t.Fatalf("failures = %d, want 1 (no re-probe under backoff)", qe.Failures)
		}
		if !qe.Until.After(time.Now()) {
			t.Fatalf("until %v not in the future", qe.Until)
		}
	}
	st := s.Stats()
	if st.LoadFailures != 1 || st.Quarantined != 1 || st.QuarantineRejects != 5 {
		t.Fatalf("stats = %+v, want 1 failure, 1 quarantined, 5 rejects", st)
	}
}

// TestQuarantineBackoffDoublesAndRecovers: each failed probe doubles the
// backoff; once the file is healthy again a probe clears the quarantine.
func TestQuarantineBackoffDoublesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	path := writeCorruptUgsb(t, dir, "flaky.ugsb")

	s := NewStore(StoreConfig{QuarantineBase: time.Second, QuarantineMax: 8 * time.Second})
	t.Cleanup(func() { s.Close() })
	now := time.Unix(1_000_000, 0)
	s.now = func() time.Time { return now }
	if _, err := s.LoadDir(dir); err != nil {
		t.Fatal(err)
	}

	// Probe at t+1s, t+3s, t+7s: each fails against the same bytes and
	// doubles the window (1s → 2s → 4s).
	wantBackoff := []time.Duration{2 * time.Second, 4 * time.Second}
	for i, wait := range []time.Duration{time.Second, 3 * time.Second} {
		now = now.Add(wait)
		_, _, _, err := s.Acquire("flaky")
		var qe *QuarantineError
		if !errors.As(err, &qe) {
			t.Fatalf("probe %d: %v", i, err)
		}
		if qe.Failures != i+2 {
			t.Fatalf("probe %d: failures = %d, want %d", i, qe.Failures, i+2)
		}
		if got := qe.Until.Sub(now); got != wantBackoff[i] {
			t.Fatalf("probe %d: backoff = %v, want %v", i, got, wantBackoff[i])
		}
	}

	// Repair the file. The changed fingerprint clears quarantine without
	// waiting out the backoff.
	if err := ugs.WriteBinaryGraphFile(path, ugs.FlickrLike(60, 7)); err != nil {
		t.Fatal(err)
	}
	g, id, release, err := s.Acquire("flaky")
	if err != nil {
		t.Fatalf("acquire after repair: %v", err)
	}
	if g.NumVertices() == 0 || id == "" {
		t.Fatal("empty graph after recovery")
	}
	release()
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("still quarantined after recovery: %+v", st)
	}
}

// TestQuarantineBackoffCap: backoff stops doubling at QuarantineMax.
func TestQuarantineBackoffCap(t *testing.T) {
	s := NewStore(StoreConfig{QuarantineBase: time.Second, QuarantineMax: 4 * time.Second})
	t.Cleanup(func() { s.Close() })
	if got := s.quarBackoff(10); got != 4*time.Second {
		t.Fatalf("quarBackoff(10) = %v, want cap 4s", got)
	}
}

// TestQuarantineViaFaultInjection: with store.open erring on every load, a
// post-eviction reload quarantines the graph even though its bytes are fine.
func TestQuarantineViaFaultInjection(t *testing.T) {
	dir, size := writeUgsbDir(t, 2)
	inj, err := faults.Parse("store.open:err@0.5", 3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(StoreConfig{BudgetBytes: size + size/2, // fits 1 of 2
		QuarantineBase: time.Millisecond, Faults: inj})
	t.Cleanup(func() { s.Close() })
	if _, err := s.LoadDir(dir); err != nil {
		t.Fatal(err)
	}

	// Churn acquires across both names: evictions force reloads through the
	// flaky open; every failure must surface as ErrQuarantined and every
	// recovery must serve the graph.
	var failures, successes int
	for i := 0; i < 60; i++ {
		name := "g0"
		if i%2 == 1 {
			name = "g1"
		}
		_, _, release, err := s.Acquire(name)
		switch {
		case err == nil:
			successes++
			release()
		case errors.Is(err, ErrQuarantined):
			failures++
			time.Sleep(2 * time.Millisecond) // let the tiny backoff lapse
		default:
			t.Fatalf("acquire %s: unexpected error %v", name, err)
		}
	}
	if failures == 0 || successes == 0 {
		t.Fatalf("failures=%d successes=%d, want both > 0", failures, successes)
	}
	if st := s.Stats(); st.LoadFailures == 0 {
		t.Fatalf("stats shows no load failures: %+v", st)
	}
}

// TestAcquireCtxHonorsDeadlineDuringSlowLoad: a caller waiting behind a slow
// reload gives up when its context expires; the loader itself finishes and
// serves later callers.
func TestAcquireCtxHonorsDeadlineDuringSlowLoad(t *testing.T) {
	dir, size := writeUgsbDir(t, 2)
	inj, err := faults.Parse("store.read:slow=300ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(StoreConfig{BudgetBytes: size + size/2, Faults: inj})
	t.Cleanup(func() { s.Close() })
	if _, err := s.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	// g0 was evicted when g1 loaded (budget fits one): re-acquiring it goes
	// through the slow open.
	loaderDone := make(chan error, 1)
	go func() {
		_, _, release, err := s.Acquire("g0")
		if err == nil {
			release()
		}
		loaderDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // loader is inside the 300ms stall

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, _, err = s.AcquireCtx(ctx, "g0")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter got %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 200*time.Millisecond {
		t.Fatalf("waiter blocked %v despite 50ms deadline", waited)
	}
	if err := <-loaderDone; err != nil {
		t.Fatalf("loader failed: %v", err)
	}
}
