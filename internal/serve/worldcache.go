package serve

import (
	"container/list"
	"sync"

	"ugs"
)

// WorldCache is the cross-request sampled-world cache: a byte-bounded LRU
// of deterministic 64-lane fill blocks, keyed by (content-versioned graph
// ID, base seed, block index) through ugs.FillKey. The Monte-Carlo batch
// engine asks it for every full block of a run, so concurrent mixed query
// traffic — reliability, distance and connectivity requests over the same
// (graph, seed) stream, at any lane width — re-samples each world group at
// most once and shares the transposed masks from then on. Because blocks
// are pure functions of their key, a hit is bit-identical to a fresh
// sample; the cache changes cost, never results.
//
// Keys embed the versioned graph ID, so a re-uploaded graph never sees a
// predecessor's worlds; blocks of evicted graphs simply age out of the LRU.
type WorldCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	lru     *list.List // front = most recently used; values are *worldEntry
	entries map[ugs.FillKey]*list.Element

	hits, misses, evictions int64
}

type worldEntry struct {
	key   ugs.FillKey
	block []uint64
}

// NewWorldCache returns a cache bounded to budgetBytes of block payload.
func NewWorldCache(budgetBytes int64) *WorldCache {
	return &WorldCache{
		budget:  budgetBytes,
		lru:     list.New(),
		entries: make(map[ugs.FillKey]*list.Element),
	}
}

// GetOrFill implements ugs.FillCache: it returns the cached block for key
// or runs fill, stores the result, and returns it. fill runs outside the
// lock, so concurrent misses on the same key may each sample the block —
// both produce identical bits (fills are deterministic), only one copy is
// retained, and unrelated keys are never serialized behind a slow fill.
func (c *WorldCache) GetOrFill(key ugs.FillKey, fill func() []uint64) []uint64 {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*worldEntry).block
	}
	c.misses++
	c.mu.Unlock()

	block := fill()
	size := int64(len(block)) * 8
	if size > c.budget {
		return block // too big to ever cache; serve it uncached
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent miss filled the same key first; keep the stored
		// copy and let ours be garbage.
		c.lru.MoveToFront(el)
		return el.Value.(*worldEntry).block
	}
	c.entries[key] = c.lru.PushFront(&worldEntry{key: key, block: block})
	c.bytes += size
	for c.bytes > c.budget {
		back := c.lru.Back()
		e := back.Value.(*worldEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.block)) * 8
		c.evictions++
	}
	return block
}

// WorldCacheStats is a point-in-time snapshot of the cache counters.
type WorldCacheStats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
}

// Stats snapshots the cache counters.
func (c *WorldCache) Stats() WorldCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return WorldCacheStats{
		Entries:     len(c.entries),
		Bytes:       c.bytes,
		BudgetBytes: c.budget,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
	}
}
