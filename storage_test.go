package ugs_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"ugs"
)

// openMappedCopy round-trips g through the .ugsb binary format and opens
// the file as a read-only mapped graph.
func openMappedCopy(t *testing.T, g *ugs.Graph) *ugs.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.ugsb")
	if err := ugs.WriteBinaryGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	m, err := ugs.OpenMappedGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestMappedSparsifyEquivalence runs every registered sparsifier over a
// heap graph and its memory-mapped binary copy: the outputs must be Equal
// edge for edge, probability bits included — a mapped view is the same
// graph, not an approximation of it.
func TestMappedSparsifyEquivalence(t *testing.T) {
	g := ugs.FlickrLike(300, 7)
	m := openMappedCopy(t, g)
	if !g.Equal(m) {
		t.Fatal("mapped copy differs from original before sparsifying")
	}

	for _, method := range ugs.Methods() {
		t.Run(method, func(t *testing.T) {
			run := func(in *ugs.Graph) (*ugs.Graph, error) {
				sp, err := ugs.Lookup(method, ugs.WithSeed(5))
				if err != nil {
					t.Fatal(err)
				}
				res, err := sp.Sparsify(context.Background(), in, 0.3)
				if err != nil {
					return nil, err
				}
				return res.Graph, nil
			}
			// The registry is process-global, so Methods() can include
			// always-erroring methods registered by other tests: those must
			// fail identically on both views.
			hg, herr := run(g)
			mg, merr := run(m)
			if (herr == nil) != (merr == nil) {
				t.Fatalf("%s: heap err %v, mapped err %v", method, herr, merr)
			}
			if herr != nil {
				return
			}
			if !hg.Equal(mg) {
				t.Fatalf("%s: heap result %v != mapped result %v", method, hg, mg)
			}
		})
	}
}

// TestMappedQueryEquivalence checks that the Monte-Carlo estimators are
// bit-identical over heap and mapped views of the same graph.
func TestMappedQueryEquivalence(t *testing.T) {
	g := ugs.TwitterLike(250, 11)
	m := openMappedCopy(t, g)
	ctx := context.Background()
	opts := ugs.MCOptions{Seed: 3, Samples: 256}
	pairs := ugs.RandomPairs(g.NumVertices(), 20, rand.New(rand.NewSource(99)))

	hsp, hrl, err := ugs.ShortestDistanceAndReliability(ctx, g, pairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	msp, mrl, err := ugs.ShortestDistanceAndReliability(ctx, m, pairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if hsp[i] != msp[i] && !(hsp[i] != hsp[i] && msp[i] != msp[i]) { // NaN == NaN here
			t.Fatalf("pair %d: distance %v != %v", i, hsp[i], msp[i])
		}
		if hrl[i] != mrl[i] {
			t.Fatalf("pair %d: reliability %v != %v", i, hrl[i], mrl[i])
		}
	}

	hc, err := ugs.ConnectedProbability(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ugs.ConnectedProbability(ctx, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hc != mc {
		t.Fatalf("connected probability %v != %v", hc, mc)
	}

	// Entropy and degree statistics read the probability bits directly.
	if g.Entropy() != m.Entropy() || g.TotalProb() != m.TotalProb() {
		t.Fatal("entropy/total-probability differ between heap and mapped views")
	}
}
